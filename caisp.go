// Package caisp is the public API of the Context-Aware OSINT Intelligence
// Sharing Platform, a complete reproduction of "Enhancing Information
// Sharing and Visualization Capabilities in Security Data Analytic
// Platforms" (DSN 2019).
//
// The platform collects Open Source Intelligence feeds, normalizes and
// deduplicates their records, aggregates and correlates them into composed
// IoCs (cIoCs), stores them in a MISP-format threat-intelligence platform,
// computes a context-aware Threat Score against the monitored
// infrastructure (enriched IoCs, eIoCs), and pushes reduced IoCs (rIoCs)
// to a live dashboard while sharing eIoCs over TAXII.
//
// Quick start:
//
//	p, err := caisp.New(caisp.Config{Feeds: myFeeds})
//	if err != nil { ... }
//	defer p.Close()
//	if err := p.RunBatch(ctx); err != nil { ... }
//	for _, r := range p.Dashboard().RIoCs() {
//		fmt.Println(r.CVE, r.ThreatScore)
//	}
//
// See the examples directory for runnable end-to-end programs.
package caisp

import (
	"time"

	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/report"
	"github.com/caisplatform/caisp/internal/stix"
)

// Core platform types.
type (
	// Platform is a running Context-Aware OSINT Platform instance.
	Platform = core.Platform
	// Config parameterizes New.
	Config = core.Config
	// Stats counts pipeline activity.
	Stats = core.Stats
	// Feed couples a named OSINT source with its fetcher, parser and
	// schedule.
	Feed = feed.Feed
	// Inventory describes the monitored infrastructure.
	Inventory = infra.Inventory
	// Node is one monitored asset.
	Node = infra.Node
	// Alarm is one infrastructure monitoring alert.
	Alarm = infra.Alarm
	// RIoC is a reduced IoC as shown on the dashboard.
	RIoC = heuristic.RIoC
	// ThreatScore is the result of one heuristic evaluation.
	ThreatScore = heuristic.Result
)

// Alarm severities (dashboard colours green/yellow/red).
const (
	SeverityLow    = infra.SeverityLow
	SeverityMedium = infra.SeverityMedium
	SeverityHigh   = infra.SeverityHigh
)

// New assembles a platform. A nil Config.Inventory uses the paper's
// Table III inventory; an empty Config.DataDir keeps the event store in
// memory.
func New(cfg Config) (*Platform, error) { return core.New(cfg) }

// PaperInventory returns the paper's Table III infrastructure inventory.
func PaperInventory() *Inventory { return infra.PaperInventory() }

// SyntheticFeeds generates deterministic synthetic OSINT feeds (the
// offline substitute for live sources): six feeds in heterogeneous formats
// with the given per-feed record count and duplication/overlap rates.
func SyntheticFeeds(seed int64, items int, duplicationRate, overlapRate float64, interval time.Duration) ([]Feed, error) {
	gen := feedgen.New(feedgen.Config{
		Seed:            seed,
		Items:           items,
		DuplicationRate: duplicationRate,
		OverlapRate:     overlapRate,
		DefangRate:      0.3,
	})
	return gen.Feeds(interval)
}

// Score evaluates a single STIX object against the default heuristics and
// an optional infrastructure inventory (nil uses no infrastructure
// context), returning the threat-score breakdown.
func Score(obj stix.Object, inventory *Inventory, at time.Time) (*ThreatScore, error) {
	opts := []heuristic.Option{}
	if inventory != nil {
		collector, err := infra.NewCollector(inventory)
		if err != nil {
			return nil, err
		}
		opts = append(opts, heuristic.WithInfrastructure(collector))
	}
	if !at.IsZero() {
		opts = append(opts, heuristic.WithNow(func() time.Time { return at }))
	}
	return heuristic.NewEngine(opts...).Evaluate(obj)
}

// ParseBundle decodes a STIX 2.0 bundle.
func ParseBundle(data []byte) (*stix.Bundle, error) { return stix.ParseBundle(data) }

// Report is the analyst-facing situation summary.
type Report = report.Report

// BuildReport aggregates the platform's current state into a situation
// report; render it with Report.Markdown. topK bounds the rIoC list.
func BuildReport(p *Platform, topK int, at time.Time) *Report {
	return report.Build(p, topK, at)
}
