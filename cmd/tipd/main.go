// Command tipd runs a standalone threat-intelligence-platform instance
// (the MISP-equivalent of the paper's Operational Module): a MISP-format
// event store with REST API, export modules and a TCP publish socket that
// plays the role of MISP's zeroMQ plugin.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/subscribe"
	"github.com/caisplatform/caisp/internal/tip"
)

// drainDeadline bounds how long shutdown waits for in-flight API
// requests before closing the store anyway.
const drainDeadline = 3 * time.Second

func main() {
	var (
		addr    = flag.String("listen", ":8440", "REST API listen address")
		pubAddr = flag.String("publish", "", "TCP publish-socket address (empty disables)")
		dataDir = flag.String("data", "", "event store directory (empty = in-memory)")
		apiKey  = flag.String("key", "", "API key required in the Authorization header (empty disables auth)")
		name    = flag.String("name", "tipd", "instance name")
		pprof   = flag.Bool("pprof", false, "expose pprof profiles under /debug/pprof/")
	)
	flag.Parse()
	if err := run(*addr, *pubAddr, *dataDir, *apiKey, *name, *pprof); err != nil {
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}
}

func run(addr, pubAddr, dataDir, apiKey, name string, pprof bool) error {
	reg := obs.NewRegistry()
	store, err := storage.Open(dataDir, storage.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer store.Close()

	broker := bus.NewBroker(bus.WithMetrics(reg))
	defer broker.Close()
	if pubAddr != "" {
		listener, err := broker.ListenTCP(pubAddr)
		if err != nil {
			return err
		}
		defer listener.Close()
		fmt.Printf("publishing stored events on tcp://%s (topics %s, %s)\n",
			listener.Addr(), tip.TopicEventAdd, tip.TopicEventEdit)
	}

	service := tip.NewService(store, tip.WithBroker(broker), tip.WithName(name),
		tip.WithMetrics(reg))

	// Streaming detection: clients register STIX patterns over REST and
	// receive match frames on /ws/matches. Every event stored through the
	// API is published on the bus; the drain goroutine evaluates each one
	// against the live pattern set.
	subs := subscribe.NewEngine(
		subscribe.WithMetrics(reg),
		subscribe.WithHubMetrics(reg),
	)
	defer subs.Close()
	busSub := broker.Subscribe(tip.TopicEventPrefix)
	defer busSub.Close()
	go func() {
		for msg := range busSub.C() {
			me, err := misp.UnmarshalWrapped(msg.Payload)
			if err != nil {
				continue
			}
			stage := subscribe.StageCIoC
			if me.HasTag("caisp:eioc") {
				stage = subscribe.StageEIoC
			}
			subs.EvaluateMISP(me, stage, -1)
		}
	}()

	// The API is mounted next to the observability surfaces: /metrics
	// serves the caisp_* families in Prometheus text format. Specific
	// routes (subscriptions, match stream) sit in front of the TIP
	// catch-all.
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	if pprof {
		obs.RegisterPprof(mux)
	}
	subAPI := subscribe.NewAPI(subs)
	mux.Handle("POST /subscriptions", subAPI)
	mux.Handle("GET /subscriptions", subAPI)
	mux.Handle("GET /subscriptions/{rest...}", subAPI)
	mux.Handle("DELETE /subscriptions/{id}", subAPI)
	mux.Handle("GET /ws/matches", subAPI)
	mux.Handle("/", tip.NewAPI(service, apiKey))
	srv := &http.Server{Addr: addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("%s: serving MISP-like REST API on %s (%d events loaded)\n",
		name, addr, service.Len())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests up to
	// the deadline, then let the deferred store/broker closes run so the
	// WAL is cleanly released.
	fmt.Println("\nshutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainDeadline)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}
