// Command tipd runs a standalone threat-intelligence-platform instance
// (the MISP-equivalent of the paper's Operational Module): a MISP-format
// event store with REST API, export modules and a TCP publish socket that
// plays the role of MISP's zeroMQ plugin. With one or more -peer flags it
// also joins a federation mesh, continuously pull-replicating from the
// named peers with durable cursors and echo suppression (internal/mesh).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/lifecycle"
	"github.com/caisplatform/caisp/internal/mesh"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/obs/health"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/subscribe"
	"github.com/caisplatform/caisp/internal/tip"
)

// drainDeadline bounds how long shutdown waits for in-flight API
// requests before closing the store anyway.
const drainDeadline = 3 * time.Second

// peerFlags collects repeatable -peer values ("name=url" or a bare URL,
// in which case the host:port becomes the peer name).
type peerFlags []string

func (p *peerFlags) String() string     { return strings.Join(*p, ",") }
func (p *peerFlags) Set(v string) error { *p = append(*p, v); return nil }

// config is everything run needs, parsed from flags.
type config struct {
	addr, pubAddr, dataDir, apiKey, name string
	pprof                                bool

	peers        peerFlags
	peerKey      string
	syncInterval time.Duration
	syncPage     int
	serialSync   bool
	subsFile     string

	noLifecycle bool
	lcInterval  time.Duration
	lcFloor     float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "listen", ":8440", "REST API listen address")
	flag.StringVar(&cfg.pubAddr, "publish", "", "TCP publish-socket address (empty disables)")
	flag.StringVar(&cfg.dataDir, "data", "", "event store directory (empty = in-memory)")
	flag.StringVar(&cfg.apiKey, "key", "", "API key required in the Authorization header (empty disables auth)")
	flag.StringVar(&cfg.name, "name", "tipd", "instance name")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose pprof profiles under /debug/pprof/")
	flag.Var(&cfg.peers, "peer", "replication peer as name=url or url (repeatable)")
	flag.StringVar(&cfg.peerKey, "peer-key", "", "API key presented to peers")
	flag.DurationVar(&cfg.syncInterval, "sync-interval", mesh.DefaultInterval, "base anti-entropy poll interval per peer (jittered)")
	flag.IntVar(&cfg.syncPage, "sync-page", mesh.DefaultBasePage, "starting sync page size (adapts up to the peer's cap)")
	flag.BoolVar(&cfg.serialSync, "serial-sync", false, "sync one peer at a time (measured ablation; default is concurrent)")
	flag.StringVar(&cfg.subsFile, "subs-file", "", "subscription sidecar path (default <data>/subscriptions.json; empty with no -data disables)")
	flag.BoolVar(&cfg.noLifecycle, "no-lifecycle", false, "disable decay-driven re-scoring and expiry (store grows without bound)")
	flag.DurationVar(&cfg.lcInterval, "lifecycle-interval", 0, "cadence of the background re-score batch (0 = engine default)")
	flag.Float64Var(&cfg.lcFloor, "lifecycle-floor", 0, "expire indicators once their decayed score falls to this (0 = engine default)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}
}

// parsePeers resolves the -peer flags into mesh peers.
func parsePeers(cfg config) ([]mesh.Peer, error) {
	peers := make([]mesh.Peer, 0, len(cfg.peers))
	for _, raw := range cfg.peers {
		name, target := "", raw
		if i := strings.Index(raw, "="); i > 0 && !strings.Contains(raw[:i], "/") {
			name, target = raw[:i], raw[i+1:]
		}
		u, err := url.Parse(target)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("bad -peer %q (want name=url or url)", raw)
		}
		if name == "" {
			name = u.Host
		}
		peers = append(peers, mesh.Peer{
			Name:   name,
			Remote: tip.NewClient(target, cfg.peerKey),
		})
	}
	return peers, nil
}

func run(cfg config) error {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	obs.RegisterRuntime(reg)
	tracer := obs.NewTracer(reg)
	prov := obs.NewProvTable(obs.DefaultProvCap)
	store, err := storage.Open(cfg.dataDir, storage.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer store.Close()

	broker := bus.NewBroker(bus.WithMetrics(reg))
	defer broker.Close()
	if cfg.pubAddr != "" {
		listener, err := broker.ListenTCP(cfg.pubAddr)
		if err != nil {
			return err
		}
		defer listener.Close()
		fmt.Printf("publishing stored events on tcp://%s (topics %s, %s)\n",
			listener.Addr(), tip.TopicEventAdd, tip.TopicEventEdit)
	}

	service := tip.NewService(store, tip.WithBroker(broker), tip.WithName(cfg.name),
		tip.WithMetrics(reg), tip.WithProvenance(prov))

	// Federation: each -peer gets a jittered anti-entropy pull worker.
	// Cursors persist next to the event store so a restarted node
	// resumes from its high-water marks.
	peers, err := parsePeers(cfg)
	if err != nil {
		return err
	}
	var engine *mesh.Engine
	if len(peers) > 0 {
		var cursors mesh.CursorStore = mesh.NewMemCursors()
		if cfg.dataDir != "" {
			cursors = mesh.NewFileCursors(filepath.Join(cfg.dataDir, "mesh-cursors.json"))
		}
		meshOpts := []mesh.Option{
			mesh.WithInterval(cfg.syncInterval),
			mesh.WithPageSize(cfg.syncPage, mesh.DefaultMaxPage),
			mesh.WithMetrics(reg),
			mesh.WithProvenance(cfg.name, prov),
			mesh.WithTracer(tracer),
		}
		if cfg.serialSync {
			meshOpts = append(meshOpts, mesh.WithSerialSync())
		}
		engine, err = mesh.New(service, peers, cursors, meshOpts...)
		if err != nil {
			return err
		}
		engine.Start()
		defer engine.Close()
		names := make([]string, len(peers))
		for i, p := range peers {
			names[i] = p.Name
		}
		fmt.Printf("mesh replication from %d peer(s): %s (interval %s, serial=%v)\n",
			len(peers), strings.Join(names, ", "), cfg.syncInterval, cfg.serialSync)
	}

	// Indicator lifecycle: decay re-scoring over the store, with expiry
	// routed through the TIP service so deletions tombstone the change
	// log and replicate to mesh peers. tipd has no correlator, so ages
	// come from attribute timestamps alone.
	var lifec *lifecycle.Engine
	if !cfg.noLifecycle {
		lcOpts := []lifecycle.Option{
			lifecycle.WithMetrics(reg),
			lifecycle.WithExpireHook(func(uuid string) error {
				err := service.DeleteEvent(uuid)
				if err != nil && errors.Is(err, storage.ErrNotFound) {
					return nil
				}
				return err
			}),
		}
		if cfg.lcInterval > 0 {
			lcOpts = append(lcOpts, lifecycle.WithInterval(cfg.lcInterval))
		}
		if cfg.lcFloor > 0 {
			lcOpts = append(lcOpts, lifecycle.WithFloor(cfg.lcFloor))
		}
		lifec = lifecycle.New(store, lcOpts...)
		lifec.Start()
		defer lifec.Close()
	}

	// Streaming detection: clients register STIX patterns over REST and
	// receive match frames on /ws/matches. Every event stored through the
	// API is published on the bus; the drain goroutine evaluates each one
	// against the live pattern set. The pattern set persists across
	// restarts through the sidecar file.
	subsFile := cfg.subsFile
	if subsFile == "" && cfg.dataDir != "" {
		subsFile = filepath.Join(cfg.dataDir, "subscriptions.json")
	}
	subOpts := []subscribe.Option{
		subscribe.WithMetrics(reg),
		subscribe.WithHubMetrics(reg),
		subscribe.WithSweepInterval(time.Minute),
	}
	if subsFile != "" {
		subOpts = append(subOpts, subscribe.WithPersistPath(subsFile))
	}
	subs := subscribe.NewEngine(subOpts...)
	defer subs.Close()
	if subsFile != "" && subs.Len() > 0 {
		fmt.Printf("restored %d standing subscription(s) from %s\n", subs.Len(), subsFile)
	}
	busSub := broker.Subscribe(tip.TopicEventPrefix)
	defer busSub.Close()
	go func() {
		for msg := range busSub.C() {
			me, err := misp.UnmarshalWrapped(msg.Payload)
			if err != nil {
				continue
			}
			stage := subscribe.StageCIoC
			if me.HasTag("caisp:eioc") {
				stage = subscribe.StageEIoC
			}
			subs.EvaluateMISP(me, stage, -1)
		}
	}()

	// The API is mounted next to the observability surfaces: /metrics
	// serves the caisp_* families in Prometheus text format. Specific
	// routes (subscriptions, match stream) sit in front of the TIP
	// catch-all.
	// Health: WAL writability is liveness (a node that cannot commit must
	// restart); compaction backlog, lifecycle progress and mesh-peer
	// staleness are readiness (alive but degraded, with the reason named
	// in /readyz).
	checks := health.New(reg)
	checks.Register("wal_writable", health.DirWritable(cfg.dataDir))
	checks.Register("compaction_backlog", health.Max("wal ops since snapshot",
		func() float64 { return float64(store.Durability().WALOps) }, 50000))
	if lifec != nil {
		checks.Register("lifecycle_progress", health.Progress(
			func() int64 { return int64(lifec.Stats().Passes) }, 5*time.Minute, nil))
	}
	if engine != nil {
		staleAfter := 5 * cfg.syncInterval
		if staleAfter < 2*time.Minute {
			staleAfter = 2 * time.Minute
		}
		checks.Register("mesh_peers", mesh.PeersCheck(engine, staleAfter))
	}

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/traces", tracer.Handler())
	mux.Handle("GET /healthz", checks.Liveness())
	mux.Handle("GET /readyz", checks.Readiness())
	mux.Handle("GET /cluster/status", health.StatusHandler(func() health.NodeStatus {
		st := health.NodeStatus{
			Node:     cfg.name,
			Role:     "tipd",
			StoreSeq: service.StoreSeq(),
			Events:   service.Len(),
			WALOps:   store.Durability().WALOps,
			// The store sequence advances on every put/edit/delete — the
			// monotonic counter caisp-top differentiates into a rate.
			IngestTotal: int64(service.StoreSeq()),
			Health:      checks.Evaluate(),
		}
		if engine != nil {
			st.Peers = engine.PeerInfos()
		}
		return st
	}))
	if cfg.pprof {
		obs.RegisterPprof(mux)
	}
	subAPI := subscribe.NewAPI(subs)
	mux.Handle("POST /subscriptions", subAPI)
	mux.Handle("GET /subscriptions", subAPI)
	mux.Handle("GET /subscriptions/{rest...}", subAPI)
	mux.Handle("DELETE /subscriptions/{id}", subAPI)
	mux.Handle("GET /ws/matches", subAPI)
	if lifec != nil {
		mux.Handle("GET /lifecycle/{rest...}", lifecycle.NewAPI(lifec))
	}
	mux.Handle("/", tip.NewAPI(service, cfg.apiKey))
	srv := &http.Server{Addr: cfg.addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("%s: serving MISP-like REST API on %s (%d events loaded)\n",
		cfg.name, cfg.addr, service.Len())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests up to
	// the deadline, then let the deferred engine/store/broker closes run
	// so cursors and the WAL are cleanly released.
	fmt.Println("\nshutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainDeadline)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}
