// Command tipd runs a standalone threat-intelligence-platform instance
// (the MISP-equivalent of the paper's Operational Module): a MISP-format
// event store with REST API, export modules and a TCP publish socket that
// plays the role of MISP's zeroMQ plugin.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
)

func main() {
	var (
		addr    = flag.String("listen", ":8440", "REST API listen address")
		pubAddr = flag.String("publish", "", "TCP publish-socket address (empty disables)")
		dataDir = flag.String("data", "", "event store directory (empty = in-memory)")
		apiKey  = flag.String("key", "", "API key required in the Authorization header (empty disables auth)")
		name    = flag.String("name", "tipd", "instance name")
	)
	flag.Parse()
	if err := run(*addr, *pubAddr, *dataDir, *apiKey, *name); err != nil {
		fmt.Fprintln(os.Stderr, "tipd:", err)
		os.Exit(1)
	}
}

func run(addr, pubAddr, dataDir, apiKey, name string) error {
	store, err := storage.Open(dataDir)
	if err != nil {
		return err
	}
	defer store.Close()

	broker := bus.NewBroker()
	defer broker.Close()
	if pubAddr != "" {
		listener, err := broker.ListenTCP(pubAddr)
		if err != nil {
			return err
		}
		defer listener.Close()
		fmt.Printf("publishing stored events on tcp://%s (topics %s, %s)\n",
			listener.Addr(), tip.TopicEventAdd, tip.TopicEventEdit)
	}

	service := tip.NewService(store, tip.WithBroker(broker), tip.WithName(name))
	fmt.Printf("%s: serving MISP-like REST API on %s (%d events loaded)\n",
		name, addr, service.Len())
	return http.ListenAndServe(addr, tip.NewAPI(service, apiKey))
}
