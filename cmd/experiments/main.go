// Command experiments regenerates the paper's tables and figures from the
// implementation. With no flags it prints everything; -artifact selects one
// (table1…table5, fig2, fig3, fig4, reduction).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/caisplatform/caisp/internal/experiments"
)

func main() {
	artifact := flag.String("artifact", "all",
		"artifact to regenerate: all, table1, table2, table3, table4, table5, fig2, fig3, fig4, reduction, detection")
	flag.Parse()
	if err := run(*artifact); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(artifact string) error {
	switch artifact {
	case "all":
		text, err := experiments.RenderAll()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "table1":
		text, err := experiments.RenderTableI()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "table2":
		fmt.Println(experiments.RenderTableII())
		return nil
	case "table3":
		fmt.Println(experiments.RenderTableIII())
		return nil
	case "table4":
		fmt.Println(experiments.RenderTableIV())
		return nil
	case "table5":
		text, err := experiments.RenderTableV()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "fig2", "fig3", "fig4":
		s, err := experiments.NewScenario()
		if err != nil {
			return err
		}
		defer s.Close()
		var text string
		switch artifact {
		case "fig2":
			text = s.RenderFig2()
		case "fig3":
			text, err = s.RenderFig3()
		case "fig4":
			text, err = s.RenderFig4()
		}
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "reduction":
		text, err := experiments.RenderReduction()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	case "detection":
		text, err := experiments.RenderDetection()
		if err != nil {
			return err
		}
		fmt.Println(text)
		return nil
	default:
		return fmt.Errorf("unknown artifact %q", artifact)
	}
}
