package main

import (
	"testing"
)

func TestRunAllArtifacts(t *testing.T) {
	// Every artifact id must render without error; "all" is covered by the
	// experiments package tests and skipped here to keep the test fast.
	for _, artifact := range []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig3", "fig4",
	} {
		artifact := artifact
		t.Run(artifact, func(t *testing.T) {
			if err := run(artifact); err != nil {
				t.Fatalf("run(%q): %v", artifact, err)
			}
		})
	}
	if err := run("bogus"); err == nil {
		t.Fatal("unknown artifact accepted")
	}
}
