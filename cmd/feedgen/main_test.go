package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"github.com/caisplatform/caisp/internal/feedgen"
)

func TestRunWritesDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "", 3, 20, 0.2, 0.1, 0.3); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(feedgen.AllFeeds) {
		t.Fatalf("wrote %d files, want %d", len(entries), len(feedgen.AllFeeds))
	}
}

func TestRunRequiresTarget(t *testing.T) {
	if err := run("", "", 1, 10, 0, 0, 0); err == nil {
		t.Fatal("no target accepted")
	}
}

func TestGeneratedFeedsServeOverHTTP(t *testing.T) {
	// The -listen path uses the same handler; exercise it via httptest.
	gen := feedgen.New(feedgen.Config{Seed: 3, Items: 10})
	handler, err := gen.Handler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/feeds/" + feedgen.FeedMalwareDomains)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
