// Command feedgen generates deterministic synthetic OSINT feeds, either
// into a directory (-out) or served over HTTP (-listen). It is the offline
// substitute for the live feeds the paper's OSINT Data Collector consumes.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/caisplatform/caisp/internal/feedgen"
)

func main() {
	var (
		out     = flag.String("out", "", "directory to write feed files into")
		listen  = flag.String("listen", "", "address to serve feeds on (e.g. :8090)")
		seed    = flag.Int64("seed", 1, "PRNG seed (equal seeds produce equal feeds)")
		items   = flag.Int("items", 200, "records per feed")
		dup     = flag.Float64("dup", 0.2, "intra-feed duplication rate (0-0.9)")
		overlap = flag.Float64("overlap", 0.15, "cross-feed overlap rate (0-0.9)")
		defang  = flag.Float64("defang", 0.3, "fraction of defanged values (0-0.9)")
	)
	flag.Parse()
	if err := run(*out, *listen, *seed, *items, *dup, *overlap, *defang); err != nil {
		fmt.Fprintln(os.Stderr, "feedgen:", err)
		os.Exit(1)
	}
}

func run(out, listen string, seed int64, items int, dup, overlap, defang float64) error {
	gen := feedgen.New(feedgen.Config{
		Seed:            seed,
		Items:           items,
		DuplicationRate: dup,
		OverlapRate:     overlap,
		DefangRate:      defang,
	})
	switch {
	case out != "":
		if err := gen.WriteDir(out); err != nil {
			return err
		}
		fmt.Printf("wrote %d feeds to %s (seed %d, %d items each)\n",
			len(feedgen.AllFeeds), out, seed, items)
		return nil
	case listen != "":
		handler, err := gen.Handler()
		if err != nil {
			return err
		}
		fmt.Printf("serving feeds on %s under /feeds/<name> (seed %d)\n", listen, seed)
		for _, name := range feedgen.AllFeeds {
			fmt.Printf("  /feeds/%s\n", name)
		}
		return http.ListenAndServe(listen, handler)
	default:
		return fmt.Errorf("one of -out or -listen is required")
	}
}
