// Command subload drives the streaming-detection engine with a large
// standing pattern population and a synthetic stream of admitted MISP
// events, and reports evaluation throughput, candidate-set sizes and
// match-push latency percentiles. It backs the fan-out curve in
// EXPERIMENTS.md §X11.
//
// The pattern mix models a SIEM detection estate — mostly hash-dispatched
// point lookups (equality/IN) with small ordered/LIKE/CIDR tails — and the
// -linear flag switches to the O(all-patterns) ablation for the same run.
// Watchers ride net.Pipe like cmd/wsload: the hub-side path (encode-once
// prepared frames, bounded queues) is identical to production.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/subscribe"
	"github.com/caisplatform/caisp/internal/wsock"
)

type config struct {
	patterns  int           // standing subscriptions to register
	linear    bool          // ablation: full scan instead of the index
	clients   int           // WebSocket watchers on the match stream
	events    int           // synthetic admitted events to evaluate
	matchPct  int           // percent of events drawing values from the pattern space
	mixed     bool          // events also carry IP + threat-score fields (per-path tails)
	queue     int           // per-watcher send queue depth (hub evicts on overflow)
	drainWait time.Duration // bound on waiting for frame deliveries
}

func main() {
	var cfg config
	flag.IntVar(&cfg.patterns, "patterns", 1000, "standing pattern subscriptions")
	flag.BoolVar(&cfg.linear, "linear", false, "linear-scan ablation (no index)")
	flag.IntVar(&cfg.clients, "clients", 8, "match-stream watcher connections")
	flag.IntVar(&cfg.events, "events", 5000, "admitted events to evaluate")
	flag.IntVar(&cfg.matchPct, "match-rate", 10, "percent of events that hit a registered value")
	flag.BoolVar(&cfg.mixed, "mixed", false, "events carry IP and threat-score fields too")
	flag.IntVar(&cfg.queue, "queue", 8192, "per-watcher send queue depth")
	flag.DurationVar(&cfg.drainWait, "drain", 10*time.Second, "bound on waiting for deliveries to settle")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "subload:", err)
		os.Exit(1)
	}
}

// pattern mix percentages (of the standing population).
func patternFor(i int) string {
	switch {
	case i%100 < 88:
		return fmt.Sprintf("[domain-name:value = 'd%d.example']", i)
	case i%100 < 96:
		return fmt.Sprintf("[ipv4-addr:value IN ('10.%d.%d.1', '10.%d.%d.2')]",
			i/251%251, i%251, i/251%251, i%251)
	case i%100 < 98:
		return fmt.Sprintf("[x-caisp:threat-score >= 0.%d]", 1+i%9)
	case i%100 < 99:
		return fmt.Sprintf("[url:value LIKE '%%/kit-%d/%%.bin']", i)
	default:
		return fmt.Sprintf("[ipv4-addr:value ISSUBSET '192.%d.%d.0/24']", i/251%251, i%251)
	}
}

func run(cfg config, w io.Writer) error {
	if cfg.patterns < 1 || cfg.events < 1 {
		return fmt.Errorf("need at least one pattern and one event")
	}

	reg := obs.NewRegistry()
	opts := []subscribe.Option{
		subscribe.WithMetrics(reg),
		subscribe.WithHubMetrics(reg),
		subscribe.WithMaxPerClient(cfg.patterns + 1),
		subscribe.WithHubOptions(wsock.WithQueueDepth(cfg.queue)),
	}
	if cfg.linear {
		opts = append(opts, subscribe.WithLinearScan())
	}
	engine := subscribe.NewEngine(opts...)
	defer engine.Close()

	setup := time.Now()
	for i := 0; i < cfg.patterns; i++ {
		if _, err := engine.Register("subload", patternFor(i)); err != nil {
			return fmt.Errorf("register pattern %d: %w", i, err)
		}
	}
	registerDur := time.Since(setup)

	// Watchers: each counts delivered frames and samples push latency from
	// the frame's pushed_unix_nano stamp.
	var (
		delivered atomic.Int64
		readerWG  sync.WaitGroup
		latMu     sync.Mutex
		lats      []time.Duration
		closers   []io.Closer
	)
	for i := 0; i < cfg.clients; i++ {
		sc, cc := net.Pipe()
		closers = append(closers, cc, sc)
		engine.AddWatcher(wsock.NewConnBuffered(sc, false, 2048, 2048))
		readerWG.Add(1)
		go func(nc net.Conn) {
			defer readerWG.Done()
			buf := make([]byte, 4096)
			for {
				op, payload, err := wsock.ReadFrameInto(nc, buf)
				if err != nil {
					return
				}
				if op != wsock.OpText {
					continue
				}
				delivered.Add(1)
				var frame struct {
					PushedUnixNano int64 `json:"pushed_unix_nano"`
				}
				if json.Unmarshal(payload, &frame) == nil && frame.PushedUnixNano > 0 {
					latMu.Lock()
					lats = append(lats, time.Duration(time.Now().UnixNano()-frame.PushedUnixNano))
					latMu.Unlock()
				}
			}
		}(cc)
	}

	// Event stream: one admitted MISP event per iteration, matchPct% of
	// them carrying a value some registered pattern watches.
	start := time.Now()
	matched := 0
	at := time.Unix(1700000000, 0).UTC()
	for i := 0; i < cfg.events; i++ {
		var value string
		if i%100 < cfg.matchPct {
			value = fmt.Sprintf("d%d.example", (i*37)%cfg.patterns)
		} else {
			value = fmt.Sprintf("miss%d.example", i)
		}
		me := &misp.Event{
			UUID:      fmt.Sprintf("00000000-0000-4000-8000-%012d", i),
			Info:      "subload synthetic event",
			Timestamp: misp.UT(at),
		}
		me.AddAttribute("domain", "Network activity", value, at)
		if cfg.mixed {
			me.AddAttribute("ip-dst", "Network activity", fmt.Sprintf("10.%d.%d.1", i%251, (i*13)%251), at)
		}
		score := -1.0
		if cfg.mixed {
			score = float64(i%10) / 10
		}
		matched += engine.EvaluateMISP(me, subscribe.StageCIoC, score)
	}
	evalElapsed := time.Since(start)

	// Drain: wait until frame delivery stops advancing or the bound expires.
	deadline := time.Now().Add(cfg.drainWait)
	last, lastChange := delivered.Load(), time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if n := delivered.Load(); n != last {
			last, lastChange = n, time.Now()
		} else if time.Since(lastChange) > 300*time.Millisecond {
			break
		}
	}
	survived := engine.Watchers()
	for _, c := range closers {
		c.Close()
	}
	readerWG.Wait()

	snap := engine.EvalSnapshot()
	fmt.Fprintf(w, "subload: %d patterns (linear=%v), %d clients, %d events (%d%% hot, mixed=%v)\n",
		cfg.patterns, cfg.linear, cfg.clients, cfg.events, cfg.matchPct, cfg.mixed)
	fmt.Fprintf(w, "register: %v total (%.1fµs/pattern)\n",
		registerDur.Round(time.Millisecond),
		float64(registerDur.Microseconds())/float64(cfg.patterns))
	fmt.Fprintf(w, "evaluate: %d events in %v (%.0f events/s), %d matches\n",
		cfg.events, evalElapsed.Round(time.Millisecond),
		float64(cfg.events)/evalElapsed.Seconds(), matched)
	if snap.Eval != nil {
		fmt.Fprintf(w, "eval latency: mean=%s p50%s p99%s\n",
			seconds(snap.Eval.Sum/float64(snap.Eval.Count)),
			pctLabel(snap.Eval, 50, seconds), pctLabel(snap.Eval, 99, seconds))
		fmt.Fprintf(w, "candidates/event: mean=%.1f p99%s (of %d registered)\n",
			snap.Candidates.Sum/float64(snap.Candidates.Count),
			pctLabel(snap.Candidates, 99, func(v float64) string { return fmt.Sprintf("%.0f", v) }),
			snap.Registered)
	}
	fmt.Fprintf(w, "pushed %d frames to %d clients (%d survived the burst; overflow evicts)\n",
		delivered.Load(), cfg.clients, survived)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Fprintf(w, "push latency (%d samples): p50=%v p99=%v max=%v\n",
			len(lats), pct(lats, 50).Round(time.Microsecond),
			pct(lats, 99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	if cfg.matchPct > 0 && matched == 0 {
		return fmt.Errorf("no matches recorded for a %d%% hot stream", cfg.matchPct)
	}
	if cfg.clients > 0 && cfg.matchPct > 0 && delivered.Load() == 0 {
		return fmt.Errorf("no match frames delivered")
	}
	return nil
}

// pctLabel renders percentile p from a cumulative-bucket histogram as an
// upper estimate ("<=bound"), or ">lastBound" when it falls in the +Inf
// overflow bucket.
func pctLabel(h *obs.HistogramSnapshot, p int, f func(float64) string) string {
	if h == nil || h.Count == 0 {
		return "=0"
	}
	target := (h.Count*int64(p) + 99) / 100
	for i, bound := range h.Bounds {
		if h.Counts[i] >= target {
			return "<=" + f(bound)
		}
	}
	return ">" + f(h.Bounds[len(h.Bounds)-1])
}

func seconds(s float64) string { return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String() }

// pct returns the p-th percentile of a sorted duration slice.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}
