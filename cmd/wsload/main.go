// Command wsload drives the sharded broadcast hub with a large population
// of in-memory WebSocket clients — fast readers plus a deliberately slow
// cohort — and reports delivery throughput, eviction counts and push
// latency percentiles. It backs the fan-out curve in EXPERIMENTS.md §X10.
//
// Clients ride net.Pipe instead of kernel sockets: this box's descriptor
// limit caps TCP at ~10k connections, while in-memory pipes (with small
// bufio buffers via wsock.NewConnBuffered) hold 100k+ clients in a few GB.
// The hub-side code path — queueing, writer goroutines, frame bytes on the
// transport — is identical to production; only the transport is synthetic.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/wsock"
)

type config struct {
	clients      int           // total client connections
	slow         int           // of which: stalled readers (never drain)
	probes       int           // of which: latency-sampled fast readers
	shards       int           // hub shards (0 = hub default)
	queue        int           // per-client send-queue depth (0 = default)
	serial       bool          // ablation: pre-shard synchronous fan-out
	messages     int           // broadcasts to send
	interval     time.Duration // pacing between broadcasts
	payload      int           // payload bytes per message (≥8 for the timestamp)
	bufSize      int           // per-connection bufio buffer bytes
	writeTimeout time.Duration // per-connection write deadline
	drainWait    time.Duration // wall-clock bound on the final drain
}

func main() {
	var cfg config
	flag.IntVar(&cfg.clients, "clients", 1000, "total concurrent clients")
	flag.IntVar(&cfg.slow, "slow", 10, "clients that never read (stalled cohort)")
	flag.IntVar(&cfg.probes, "probes", 100, "fast clients sampled for push latency")
	flag.IntVar(&cfg.shards, "shards", 0, "hub shards (0 = default)")
	flag.IntVar(&cfg.queue, "queue", 0, "per-client queue depth (0 = default)")
	flag.BoolVar(&cfg.serial, "serial", false, "serial broadcast ablation (no shard fan-out)")
	flag.IntVar(&cfg.messages, "messages", 50, "broadcasts to send")
	flag.DurationVar(&cfg.interval, "interval", 5*time.Millisecond, "pause between broadcasts")
	flag.IntVar(&cfg.payload, "payload", 256, "payload bytes per message")
	flag.IntVar(&cfg.bufSize, "bufsize", 512, "bufio buffer bytes per connection side")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 2*time.Second, "per-connection write deadline")
	flag.DurationVar(&cfg.drainWait, "drain", 30*time.Second, "bound on waiting for deliveries to settle")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wsload:", err)
		os.Exit(1)
	}
}

// probe records push latencies for one sampled client. Each broadcast
// payload leads with the send time; the probe's reader stamps arrival.
type probe struct {
	lat []time.Duration
}

func run(cfg config, w io.Writer) error {
	if cfg.clients < 1 {
		return fmt.Errorf("need at least one client")
	}
	if cfg.slow >= cfg.clients {
		return fmt.Errorf("slow cohort (%d) must be smaller than the client count (%d)", cfg.slow, cfg.clients)
	}
	if cfg.payload < 8 {
		cfg.payload = 8 // room for the timestamp
	}
	fast := cfg.clients - cfg.slow
	if cfg.probes > fast {
		cfg.probes = fast
	}

	var opts []wsock.HubOption
	if cfg.shards > 0 {
		opts = append(opts, wsock.WithShards(cfg.shards))
	}
	if cfg.queue > 0 {
		opts = append(opts, wsock.WithQueueDepth(cfg.queue))
	}
	if cfg.serial {
		opts = append(opts, wsock.WithSerialBroadcast())
	}
	opts = append(opts, wsock.WithHubWriteTimeout(cfg.writeTimeout))
	hub := wsock.NewHub(opts...)
	defer hub.Close()

	var (
		delivered atomic.Int64 // data frames read by fast clients
		readerWG  sync.WaitGroup
		probes    = make([]*probe, cfg.probes)
		closers   = make([]io.Closer, 0, cfg.clients)
	)
	setup := time.Now()
	for i := 0; i < cfg.clients; i++ {
		sc, cc := net.Pipe()
		closers = append(closers, cc, sc)
		if i < cfg.slow {
			// Stalled cohort: a tiny write buffer and no reader, so the
			// writer goroutine blocks almost immediately.
			hub.Add(wsock.NewConnBuffered(sc, false, 0, 16))
			continue
		}
		hub.Add(wsock.NewConnBuffered(sc, false, cfg.bufSize, cfg.bufSize))
		var p *probe
		if pi := i - cfg.slow; pi < cfg.probes {
			p = &probe{lat: make([]time.Duration, 0, cfg.messages)}
			probes[pi] = p
		}
		readerWG.Add(1)
		go func(nc net.Conn, p *probe) {
			defer readerWG.Done()
			// bufSize also bounds the reader's scratch: frames larger than
			// the buffer still decode, at the cost of an allocation.
			// No bufio on the read side: ReadFrameInto issues few, large
			// reads, and skipping the per-client reader buffer trims
			// harness memory at 100k clients.
			buf := make([]byte, cfg.bufSize)
			for {
				op, payload, err := wsock.ReadFrameInto(nc, buf)
				if err != nil {
					return
				}
				if op != wsock.OpBinary && op != wsock.OpText {
					continue
				}
				delivered.Add(1)
				if p != nil && len(payload) >= 8 {
					sent := int64(binary.BigEndian.Uint64(payload))
					p.lat = append(p.lat, time.Duration(time.Now().UnixNano()-sent))
				}
			}
		}(cc, p)
	}
	setupDur := time.Since(setup)

	payload := make([]byte, cfg.payload)
	start := time.Now()
	for i := 0; i < cfg.messages; i++ {
		binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
		hub.BroadcastPrepared(wsock.PrepareBinary(payload))
		if cfg.interval > 0 {
			time.Sleep(cfg.interval)
		}
	}

	// Drain: wait until delivery stops advancing (or the bound expires).
	// The target is dynamic — fast clients evicted under overload stop
	// receiving — so settling beats a fixed count.
	deadline := time.Now().Add(cfg.drainWait)
	last, lastChange := delivered.Load(), time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if n := delivered.Load(); n != last {
			last, lastChange = n, time.Now()
		} else if time.Since(lastChange) > 500*time.Millisecond {
			break
		}
	}
	elapsed := time.Since(start)

	for _, c := range closers {
		c.Close()
	}
	readerWG.Wait()

	var lats []time.Duration
	for _, p := range probes {
		if p != nil {
			lats = append(lats, p.lat...)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	total := int64(fast) * int64(cfg.messages)
	fmt.Fprintf(w, "wsload: %d clients (%d fast, %d slow), shards=%d queue=%d serial=%v payload=%dB\n",
		cfg.clients, fast, cfg.slow, cfg.shards, cfg.queue, cfg.serial, cfg.payload)
	fmt.Fprintf(w, "setup: %v to connect all clients\n", setupDur.Round(time.Millisecond))
	fmt.Fprintf(w, "delivered %d/%d frames in %v (%.0f deliveries/s), evicted %d\n",
		delivered.Load(), total, elapsed.Round(time.Millisecond),
		float64(delivered.Load())/elapsed.Seconds(), hub.Evicted())
	if len(lats) > 0 {
		fmt.Fprintf(w, "push latency (%d samples): p50=%v p99=%v max=%v\n",
			len(lats), pct(lats, 50).Round(time.Microsecond),
			pct(lats, 99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	return nil
}

// pct returns the p-th percentile of a sorted duration slice.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}
