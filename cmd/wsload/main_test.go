package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke drives a small load end-to-end: every fast client receives
// every broadcast, the stalled cohort is evicted, and latency percentiles
// are reported.
func TestRunSmoke(t *testing.T) {
	cfg := config{
		clients:      64,
		slow:         2,
		probes:       8,
		queue:        16,
		messages:     10,
		interval:     time.Millisecond,
		payload:      128,
		bufSize:      512,
		writeTimeout: 2 * time.Second,
		drainWait:    10 * time.Second,
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	t.Log(report)
	if !strings.Contains(report, "delivered 620/620 frames") {
		t.Fatalf("fast clients did not receive every frame:\n%s", report)
	}
	if !strings.Contains(report, "evicted 2") {
		t.Fatalf("stalled cohort not evicted:\n%s", report)
	}
	if !strings.Contains(report, "push latency") {
		t.Fatalf("no latency report:\n%s", report)
	}
}

// TestRunSerialAblation exercises the -serial path.
func TestRunSerialAblation(t *testing.T) {
	cfg := config{
		clients:      16,
		slow:         1,
		probes:       4,
		serial:       true,
		messages:     5,
		interval:     time.Millisecond,
		payload:      64,
		bufSize:      256,
		writeTimeout: 100 * time.Millisecond,
		drainWait:    10 * time.Second,
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "delivered 75/75 frames") {
		t.Fatalf("serial ablation dropped frames:\n%s", out.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(config{clients: 0}, &bytes.Buffer{}); err == nil {
		t.Fatal("clients=0 accepted")
	}
	if err := run(config{clients: 4, slow: 4}, &bytes.Buffer{}); err == nil {
		t.Fatal("all-slow population accepted")
	}
}
