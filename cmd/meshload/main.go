// Command meshload is the federation load harness: it spins up an
// in-process N-node TIP mesh over real HTTP (loopback listeners, the
// production tip.API/tip.Client/mesh.Engine stack), sustains ingest at
// one node, optionally crash/restarts another mid-run, and reports
// time-to-convergence and replication throughput.
//
//	meshload -nodes 5 -topology ring -events 5000 -crash
//	meshload -nodes 5 -topology fanin -events 20000 -serial   # ablation
//
// Topologies:
//
//	ring   node i pulls from node i-1 — worst-case propagation depth
//	star   node 0 is the hub; leaves pull from it and it pulls from them
//	full   every node pulls from every other node
//	fanin  nodes 0..N-2 are preloaded producers; node N-1 starts cold and
//	       pulls from all of them at once — the concurrent-vs-serial
//	       sync measurement reported in EXPERIMENTS.md §X12
//
// Convergence is verified two ways, per the mesh acceptance criteria:
// the caisp_tip_events gauge scraped over each node's real /metrics
// endpoint, and an order-independent store digest (FNV over every
// event's uuid+timestamp). The process exits nonzero if the mesh fails
// to converge within -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"encoding/json"

	"github.com/caisplatform/caisp/internal/mesh"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/obs/health"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
)

type options struct {
	nodes    int
	topology string
	events   int
	batch    int
	interval time.Duration
	page     int
	serial   bool
	crash    bool
	drain    time.Duration
	latency  time.Duration
	hold     time.Duration
}

func main() {
	var o options
	flag.IntVar(&o.nodes, "nodes", 5, "mesh size")
	flag.StringVar(&o.topology, "topology", "ring", "ring, star, full or fanin")
	flag.IntVar(&o.events, "events", 5000, "events ingested (at node 0, or spread over producers for fanin)")
	flag.IntVar(&o.batch, "batch", 100, "ingest batch size")
	flag.DurationVar(&o.interval, "interval", 25*time.Millisecond, "mesh poll interval")
	flag.IntVar(&o.page, "page", mesh.DefaultBasePage, "starting sync page size")
	flag.BoolVar(&o.serial, "serial", false, "serial one-peer-at-a-time sync (ablation)")
	flag.BoolVar(&o.crash, "crash", true, "crash/restart one node mid-ingest (ring/star/full)")
	flag.DurationVar(&o.drain, "drain", 60*time.Second, "max wait for convergence")
	flag.DurationVar(&o.latency, "latency", 0, "simulated one-way link latency added to every API request (WAN model)")
	flag.DurationVar(&o.hold, "hold", 0, "keep the mesh serving after the run for this long (point caisp-top at the printed endpoints)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "meshload:", err)
		os.Exit(1)
	}
}

// node is one in-process TIP instance: durable store, REST API on a real
// loopback listener, and a mesh engine pulling from its peers.
type node struct {
	idx    int
	dir    string
	addr   string
	opts   options
	peers  []mesh.Peer
	noPoll bool // fanin sink: leave the pollers off so SyncOnce is the only pull
	store  *storage.Store
	svc    *tip.Service
	engine *mesh.Engine
	srv    *http.Server
}

// start opens the store, binds the node's address and launches the mesh
// engine. On restart it rebinds the same address so peers reconnect.
func (n *node) start() error {
	store, err := storage.Open(n.dir)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("node%d", n.idx)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg)
	prov := obs.NewProvTable(obs.DefaultProvCap)
	n.store = store
	n.svc = tip.NewService(store, tip.WithName(name),
		tip.WithMetrics(reg), tip.WithProvenance(prov))

	var ln net.Listener
	for i := 0; ; i++ {
		addr := n.addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			return fmt.Errorf("node %d: rebind %s: %w", n.idx, n.addr, err)
		}
		time.Sleep(20 * time.Millisecond) // freshly closed port, retry
	}
	n.addr = ln.Addr().String()

	meshOpts := []mesh.Option{
		mesh.WithInterval(n.opts.interval),
		mesh.WithBackoff(n.opts.interval, 20*n.opts.interval),
		mesh.WithPageSize(n.opts.page, mesh.DefaultMaxPage),
		mesh.WithMetrics(reg),
		mesh.WithProvenance(name, prov),
		mesh.WithTracer(tracer),
	}
	if n.opts.serial {
		meshOpts = append(meshOpts, mesh.WithSerialSync())
	}
	engine, err := mesh.New(n.svc, n.peers,
		mesh.NewFileCursors(filepath.Join(n.dir, "mesh-cursors.json")), meshOpts...)
	if err != nil {
		ln.Close()
		return err
	}
	n.engine = engine

	// Each node carries the full observability surface the daemons do,
	// so caisp-top and the acceptance checks drive the real endpoints.
	checks := health.New(reg)
	checks.Register("wal_writable", health.DirWritable(n.dir))
	staleAfter := 40 * n.opts.interval
	if staleAfter < 2*time.Second {
		staleAfter = 2 * time.Second
	}
	checks.Register("mesh_peers", mesh.PeersCheck(engine, staleAfter))

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/traces", tracer.Handler())
	mux.Handle("GET /healthz", checks.Liveness())
	mux.Handle("GET /readyz", checks.Readiness())
	mux.Handle("GET /cluster/status", health.StatusHandler(func() health.NodeStatus {
		return health.NodeStatus{
			Node:        name,
			Role:        "meshload",
			StoreSeq:    n.svc.StoreSeq(),
			Events:      n.svc.Len(),
			WALOps:      n.store.Durability().WALOps,
			IngestTotal: int64(n.svc.StoreSeq()),
			Peers:       engine.PeerInfos(),
			Health:      checks.Evaluate(),
		}
	}))
	mux.Handle("/", tip.NewAPI(n.svc, ""))
	var handler http.Handler = mux
	if n.opts.latency > 0 {
		// WAN model: every request pays the configured one-way latency
		// before being served, so sync concurrency across peers matters
		// the way it does between real organizations.
		delay := n.opts.latency
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			mux.ServeHTTP(w, r)
		})
	}
	n.srv = &http.Server{Handler: handler}
	go n.srv.Serve(ln)

	if !n.noPoll {
		engine.Start()
	}
	return nil
}

// stop simulates a crash/shutdown: engine, API and store all go away;
// the WAL and cursor sidecar stay on disk for the restart.
func (n *node) stop() {
	n.engine.Close()
	n.srv.Close()
	n.store.Close()
}

// peersFor wires the pull topology.
func peersFor(i, nodes int, topology string, addrs []string) ([]mesh.Peer, error) {
	peer := func(j int) mesh.Peer {
		return mesh.Peer{
			Name:   fmt.Sprintf("node%d", j),
			Remote: tip.NewClient("http://"+addrs[j], "", tip.WithRequestTimeout(10*time.Second)),
		}
	}
	var out []mesh.Peer
	switch topology {
	case "ring":
		out = append(out, peer((i-1+nodes)%nodes))
	case "star":
		if i == 0 {
			for j := 1; j < nodes; j++ {
				out = append(out, peer(j))
			}
		} else {
			out = append(out, peer(0))
		}
	case "full":
		for j := 0; j < nodes; j++ {
			if j != i {
				out = append(out, peer(j))
			}
		}
	case "fanin":
		// Producers have no peers; the last node pulls from all of them.
		if i == nodes-1 {
			for j := 0; j < nodes-1; j++ {
				out = append(out, peer(j))
			}
		}
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
	return out, nil
}

func run(o options) error {
	if o.nodes < 2 {
		return fmt.Errorf("need at least 2 nodes")
	}
	root, err := os.MkdirTemp("", "meshload-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Reserve addresses first so every node knows its peers up front.
	addrs := make([]string, o.nodes)
	listeners := make([]net.Listener, o.nodes)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		listeners[i] = ln
	}
	for _, ln := range listeners {
		ln.Close()
	}

	nodes := make([]*node, o.nodes)
	for i := range nodes {
		peers, err := peersFor(i, o.nodes, o.topology, addrs)
		if err != nil {
			return err
		}
		nodes[i] = &node{
			idx:    i,
			dir:    filepath.Join(root, fmt.Sprintf("node%d", i)),
			addr:   addrs[i],
			opts:   o,
			peers:  peers,
			noPoll: o.topology == "fanin" && i == o.nodes-1,
		}
		if err := os.MkdirAll(nodes[i].dir, 0o755); err != nil {
			return err
		}
		if err := nodes[i].start(); err != nil {
			return err
		}
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	fmt.Printf("meshload: %d nodes, topology=%s, events=%d, interval=%s, serial=%v, crash=%v\n",
		o.nodes, o.topology, o.events, o.interval, o.serial, o.crash)

	if o.topology == "fanin" {
		err = runFanin(o, nodes)
	} else {
		err = runConvergence(o, nodes)
	}
	if err == nil && o.hold > 0 {
		fmt.Printf("holding the mesh for %s; fleet endpoints:\n", o.hold)
		for _, n := range nodes {
			fmt.Printf("  -node node%d=http://%s\n", n.idx, n.addr)
		}
		time.Sleep(o.hold)
	}
	return err
}

// runConvergence sustains ingest at node 0, crash/restarts a follower
// mid-ingest, and measures how long the mesh takes to converge to
// identical event sets after ingest stops.
func runConvergence(o options, nodes []*node) error {
	crashIdx := -1
	if o.crash && o.nodes > 2 {
		crashIdx = 1 // a node in the propagation path for every topology
	}

	ingestStart := time.Now()
	ingested := 0
	for ingested < o.events {
		n := min(o.batch, o.events-ingested)
		batch := makeBatch(ingested, n)
		if _, err := nodes[0].svc.AddEvents(batch); err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
		ingested += n
		if crashIdx >= 0 && ingested >= o.events/2 && nodes[crashIdx].engine != nil {
			fmt.Printf("crashing node %d at %d/%d events ingested\n", crashIdx, ingested, o.events)
			nodes[crashIdx].stop()
			nodes[crashIdx].engine = nil
		}
	}
	ingestDur := time.Since(ingestStart)
	fmt.Printf("ingested %d events at node 0 in %s (%.0f events/s)\n",
		o.events, ingestDur.Round(time.Millisecond), float64(o.events)/ingestDur.Seconds())

	if crashIdx >= 0 {
		if err := nodes[crashIdx].start(); err != nil {
			return fmt.Errorf("restart node %d: %w", crashIdx, err)
		}
		cur := nodes[crashIdx].engine.Cursor(fmt.Sprintf("node%d", (crashIdx-1+o.nodes)%o.nodes))
		fmt.Printf("restarted node %d (resumes from durable cursor seq=%d)\n", crashIdx, cur.Seq)
	}

	convStart := time.Now()
	deadline := time.Now().Add(o.drain)
	for {
		if converged, detail := checkConverged(nodes, o.events); converged {
			convDur := time.Since(convStart)
			replicated := o.events * (o.nodes - 1)
			fmt.Printf("converged: %s\n", detail)
			fmt.Printf("time-to-convergence after ingest: %s (%d replicated imports, %.0f events/s across the mesh)\n",
				convDur.Round(time.Millisecond), replicated, float64(replicated)/(ingestDur+convDur).Seconds())
			break
		}
		if time.Now().After(deadline) {
			_, detail := checkConverged(nodes, o.events)
			return fmt.Errorf("mesh did not converge within %s: %s", o.drain, detail)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Echo check: let the steady-state mesh run a few more rounds, then
	// confirm no node re-imported anything it already owned.
	before := totalImported(nodes)
	time.Sleep(5 * o.interval)
	after := totalImported(nodes)
	var t mesh.Totals
	for _, n := range nodes {
		tt := n.engine.Totals()
		t.Pulled += tt.Pulled
		t.Imported += tt.Imported
		t.EchoSuppressed += tt.EchoSuppressed
		t.ConflictLocal += tt.ConflictLocal
		t.ConflictRemote += tt.ConflictRemote
		t.Errors += tt.Errors
	}
	fmt.Printf("mesh totals: pulled=%d imported=%d echo_suppressed=%d conflicts(local=%d remote=%d) errors=%d\n",
		t.Pulled, t.Imported, t.EchoSuppressed, t.ConflictLocal, t.ConflictRemote, t.Errors)
	if after != before {
		return fmt.Errorf("echo amplification: %d re-imports after convergence", after-before)
	}
	fmt.Println("steady state: zero re-imports after convergence (echo suppression holds)")
	if o.topology == "ring" {
		if err := checkProvenance(nodes); err != nil {
			return err
		}
	}
	return nil
}

// checkProvenance asserts cross-node trace propagation on the ring: the
// terminal node (deepest in the pull chain from node 0) must expose, on
// its real /debug/traces endpoint, an import record originating at
// node0 whose hop list walks the intermediate nodes. This is the
// multi-hop acceptance check — it fails if any hop on the way dropped
// or re-originated the provenance.
func checkProvenance(nodes []*node) error {
	term := nodes[len(nodes)-1]
	resp, err := http.Get("http://" + term.addr + "/debug/traces")
	if err != nil {
		return fmt.Errorf("provenance: %w", err)
	}
	defer resp.Body.Close()
	var records []struct {
		Origin string `json:"origin"`
		Hops   []struct {
			Node string `json:"node"`
		} `json:"hops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&records); err != nil {
		return fmt.Errorf("provenance: decode traces: %w", err)
	}
	wantHops := len(nodes) - 1 // 0→1→…→N-1 on the pull ring
	best := 0
	for _, r := range records {
		if r.Origin != "node0" {
			continue
		}
		if len(r.Hops) > best {
			best = len(r.Hops)
		}
		if len(r.Hops) == wantHops && r.Hops[len(r.Hops)-1].Node == term.svc.Name() {
			fmt.Printf("provenance: terminal node%d sees origin=node0 across %d hops\n",
				term.idx, len(r.Hops))
			return nil
		}
	}
	return fmt.Errorf("provenance: no %d-hop trace from node0 on node%d's /debug/traces (deepest seen: %d)",
		wantHops, term.idx, best)
}

// runFanin preloads every producer, then measures one cold node draining
// all of them — the serial-vs-concurrent sync comparison.
func runFanin(o options, nodes []*node) error {
	producers := o.nodes - 1
	per := o.events / producers
	for i := 0; i < producers; i++ {
		if _, err := nodes[i].svc.AddEvents(makeBatch(i*per, per)); err != nil {
			return fmt.Errorf("preload node %d: %w", i, err)
		}
	}
	total := per * producers
	fmt.Printf("preloaded %d producers with %d events each\n", producers, per)

	sink := nodes[o.nodes-1]
	start := time.Now()
	imported, err := sink.engine.SyncOnce(context.Background())
	if err != nil {
		return fmt.Errorf("fan-in sync: %w", err)
	}
	dur := time.Since(start)
	if imported != total {
		return fmt.Errorf("fan-in imported %d, want %d", imported, total)
	}
	mode := "concurrent"
	if o.serial {
		mode = "serial"
	}
	fmt.Printf("fan-in (%s): drained %d peers / %d events in %s (%.0f events/s)\n",
		mode, producers, total, dur.Round(time.Millisecond), float64(total)/dur.Seconds())
	return nil
}

// checkConverged verifies all nodes hold identical event sets: the
// caisp_tip_events gauge scraped over real /metrics, plus an
// order-independent FNV digest of (uuid, timestamp) over each store.
func checkConverged(nodes []*node, want int) (bool, string) {
	var parts []string
	ok := true
	var digest0 uint64
	for i, n := range nodes {
		if n.engine == nil { // crashed
			ok = false
			parts = append(parts, fmt.Sprintf("node%d=down", i))
			continue
		}
		count, err := scrapeEvents(n.addr)
		if err != nil {
			ok = false
			parts = append(parts, fmt.Sprintf("node%d=err(%v)", i, err))
			continue
		}
		d := digest(n.svc)
		if i == 0 {
			digest0 = d
		}
		parts = append(parts, fmt.Sprintf("node%d=%d/%x", i, count, d&0xffff))
		if count != want || d != digest0 {
			ok = false
		}
	}
	return ok, strings.Join(parts, " ")
}

// eventsGauge is the scraped caisp_tip_events family, assembled so
// metrics-lint counts only registration-site literals.
const eventsGauge = "caisp" + "_tip_events"

// scrapeEvents reads the event-count gauge off a node's /metrics.
func scrapeEvents(addr string) (int, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, found := strings.CutPrefix(line, eventsGauge+" "); found {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return int(v), err
		}
	}
	return 0, fmt.Errorf("%s not exposed", eventsGauge)
}

// digest folds every event's identity and revision into one
// order-independent hash.
func digest(svc *tip.Service) uint64 {
	events, err := svc.EventsSince(time.Time{})
	if err != nil {
		return 0
	}
	var sum uint64
	for _, e := range events {
		h := fnv.New64a()
		io.WriteString(h, e.UUID)
		io.WriteString(h, strconv.FormatInt(e.Timestamp.Unix(), 10))
		sum ^= h.Sum64()
	}
	return sum
}

func totalImported(nodes []*node) int64 {
	var total int64
	for _, n := range nodes {
		if n.engine != nil {
			total += n.engine.Totals().Imported
		}
	}
	return total
}

// makeBatch builds n synthetic events with distinct correlation values.
func makeBatch(offset, n int) []*misp.Event {
	now := time.Now().UTC()
	batch := make([]*misp.Event, n)
	for i := range batch {
		e := misp.NewEvent(fmt.Sprintf("meshload event %d", offset+i), now)
		e.AddAttribute("domain", "Network activity",
			fmt.Sprintf("host-%d.mesh.example", offset+i), now)
		e.AddAttribute("ip-dst", "Network activity",
			fmt.Sprintf("10.%d.%d.%d", (offset+i)>>16&0xff, (offset+i)>>8&0xff, (offset+i)&0xff), now)
		batch[i] = e
	}
	return batch
}
