package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/caisplatform/caisp/internal/experiments"
	"github.com/caisplatform/caisp/internal/stix"
)

func writeBundle(t *testing.T, objs ...stix.Object) string {
	t.Helper()
	bundle := stix.NewBundle(objs...)
	data, err := json.Marshal(bundle)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScoresBundle(t *testing.T) {
	path := writeBundle(t, experiments.UseCaseIoC())
	if err := run(path, "", "", "2018-06-01T12:00:00Z", false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", "", "2018-06-01T12:00:00Z", true); err != nil {
		t.Fatalf("verbose: %v", err)
	}
}

func TestRunWithWeights(t *testing.T) {
	path := writeBundle(t, experiments.UseCaseIoC())
	weights := filepath.Join(t.TempDir(), "weights.json")
	if err := os.WriteFile(weights, []byte(`{
	  "vulnerability": {"cve": {"relevance": 40, "accuracy": 20, "timeliness": 4, "variety": 4}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", weights, "2018-06-01T12:00:00Z", false); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad-weights.json")
	if err := os.WriteFile(bad, []byte(`{"grouping": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", bad, "", false); err == nil {
		t.Fatal("bad weights accepted")
	}
	if err := run(path, "", filepath.Join(t.TempDir(), "absent"), "", false); err == nil {
		t.Fatal("missing weights file accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "absent.json"), "", "", "", false); err == nil {
		t.Fatal("missing bundle accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", "", "", false); err == nil {
		t.Fatal("garbage bundle accepted")
	}
	// A bundle with only unscorable objects fails loudly.
	rel := stix.NewRelationship("indicates",
		stix.NewID(stix.TypeIndicator), stix.NewID(stix.TypeMalware),
		experiments.EvalTime)
	relOnly := writeBundle(t, rel)
	if err := run(relOnly, "", "", "", false); err == nil {
		t.Fatal("unscorable bundle accepted")
	}
	// Bad -at flag.
	good := writeBundle(t, experiments.UseCaseIoC())
	if err := run(good, "", "", "yesterday", false); err == nil {
		t.Fatal("bad -at accepted")
	}
	// Bad inventory file.
	if err := run(good, filepath.Join(t.TempDir(), "absent-inv.json"), "", "", false); err == nil {
		t.Fatal("missing inventory accepted")
	}
}
