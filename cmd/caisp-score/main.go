// Command caisp-score computes the context-aware threat score of every
// supported SDO in a STIX 2.0 bundle read from a file or stdin, optionally
// against an infrastructure inventory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/stix"
)

func main() {
	var (
		inventoryPath = flag.String("inventory", "", "inventory JSON (empty = paper's Table III inventory)")
		weightsPath   = flag.String("weights", "", "criteria-points override JSON (empty = paper's expert weights)")
		atRaw         = flag.String("at", "", "evaluation instant, RFC 3339 (empty = now)")
		verbose       = flag.Bool("v", false, "print the per-feature breakdown")
	)
	flag.Parse()
	if err := run(flag.Arg(0), *inventoryPath, *weightsPath, *atRaw, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "caisp-score:", err)
		os.Exit(1)
	}
}

func run(bundlePath, inventoryPath, weightsPath, atRaw string, verbose bool) error {
	var data []byte
	var err error
	if bundlePath == "" || bundlePath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(bundlePath)
	}
	if err != nil {
		return err
	}
	bundle, err := stix.ParseBundle(data)
	if err != nil {
		return err
	}

	inventory := infra.PaperInventory()
	if inventoryPath != "" {
		raw, err := os.ReadFile(inventoryPath)
		if err != nil {
			return err
		}
		inventory, err = infra.ParseInventory(raw)
		if err != nil {
			return err
		}
	}
	collector, err := infra.NewCollector(inventory)
	if err != nil {
		return err
	}

	opts := []heuristic.Option{heuristic.WithInfrastructure(collector)}
	if weightsPath != "" {
		raw, err := os.ReadFile(weightsPath)
		if err != nil {
			return err
		}
		cfg, err := heuristic.ParseWeights(raw)
		if err != nil {
			return err
		}
		opt, err := heuristic.WithWeights(cfg)
		if err != nil {
			return err
		}
		opts = append(opts, opt)
	}
	if atRaw != "" {
		at, err := time.Parse(time.RFC3339, atRaw)
		if err != nil {
			return fmt.Errorf("bad -at: %w", err)
		}
		opts = append(opts, heuristic.WithNow(func() time.Time { return at }))
	}
	engine := heuristic.NewEngine(opts...)

	scored := 0
	for _, obj := range bundle.Objects {
		res, err := engine.Evaluate(obj)
		if err != nil {
			continue // SDO type without a heuristic
		}
		scored++
		c := obj.GetCommon()
		fmt.Printf("%s  TS=%.4f  Cp=%.4f  priority=%s  (%s)\n",
			c.ID, res.Score, res.Completeness, res.Priority(), res.SDOType)
		if verbose {
			breakdown, err := json.MarshalIndent(res.Features, "  ", "  ")
			if err != nil {
				return err
			}
			fmt.Printf("  %s\n", breakdown)
		}
	}
	if scored == 0 {
		return fmt.Errorf("bundle contains no scorable SDOs (supported: %v)", engine.SupportedTypes())
	}
	return nil
}
