// Command caisp-top is the fleet status view: it polls each node's
// GET /cluster/status endpoint and renders one row per node — ingest
// rate, store watermarks, replication lag against every peer, and the
// health verdict with its degraded reasons. Point it at an N-node mesh
// (caispd, tipd or meshload instances) and watch replication converge:
//
//	caisp-top -node a=http://localhost:9101 -node b=http://localhost:9102
//
// With -once it prints a single snapshot and exits (scripts, smoke
// tests); otherwise it redraws on every poll interval like top(1).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/caisplatform/caisp/internal/obs/health"
)

// nodeFlags collects repeatable -node values ("name=url" or a bare URL,
// in which case the host:port becomes the display name).
type nodeFlags []string

func (n *nodeFlags) String() string     { return strings.Join(*n, ",") }
func (n *nodeFlags) Set(v string) error { *n = append(*n, v); return nil }

// target is one node to poll.
type target struct {
	name string
	url  string
}

// sample is one poll of one node: its status, or the error that kept
// us from getting it.
type sample struct {
	target target
	status health.NodeStatus
	err    error
	at     time.Time
}

func main() {
	var nodes nodeFlags
	flag.Var(&nodes, "node", "node status endpoint as name=url or url (repeatable)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	timeout := flag.Duration("timeout", 3*time.Second, "per-node request timeout")
	flag.Parse()
	if err := run(nodes, *interval, *timeout, *once, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caisp-top:", err)
		os.Exit(1)
	}
}

func run(nodes nodeFlags, interval, timeout time.Duration, once bool, out io.Writer) error {
	targets, err := parseTargets(nodes)
	if err != nil {
		return err
	}
	if len(targets) == 0 {
		return fmt.Errorf("no -node targets given")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: timeout}

	// prev holds the previous round's samples so rates can be
	// differentiated from the monotonic ingest counters.
	prev := map[string]sample{}
	for {
		samples := pollAll(ctx, client, targets)
		frame := render(samples, prev)
		if !once {
			// Clear and re-home like top(1); plain append when piped.
			fmt.Fprint(out, "\x1b[H\x1b[2J")
		}
		fmt.Fprint(out, frame)
		if once {
			return nil
		}
		for _, s := range samples {
			if s.err == nil {
				prev[s.target.name] = s
			}
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

// parseTargets resolves the -node flags, defaulting names to host:port.
func parseTargets(nodes nodeFlags) ([]target, error) {
	targets := make([]target, 0, len(nodes))
	seen := map[string]bool{}
	for _, raw := range nodes {
		name, endpoint := "", raw
		if i := strings.Index(raw, "="); i > 0 && !strings.Contains(raw[:i], "/") {
			name, endpoint = raw[:i], raw[i+1:]
		}
		u, err := url.Parse(endpoint)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("bad -node %q (want name=url or url)", raw)
		}
		if name == "" {
			name = u.Host
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate node name %q", name)
		}
		seen[name] = true
		targets = append(targets, target{name: name, url: strings.TrimSuffix(endpoint, "/")})
	}
	return targets, nil
}

// pollAll fetches every target's status concurrently.
func pollAll(ctx context.Context, client *http.Client, targets []target) []sample {
	samples := make([]sample, len(targets))
	done := make(chan int, len(targets))
	for i, t := range targets {
		go func(i int, t target) {
			st, err := fetchStatus(ctx, client, t.url)
			samples[i] = sample{target: t, status: st, err: err, at: time.Now()}
			done <- i
		}(i, t)
	}
	for range targets {
		<-done
	}
	return samples
}

func fetchStatus(ctx context.Context, client *http.Client, base string) (health.NodeStatus, error) {
	var st health.NodeStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/cluster/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("decode: %w", err)
	}
	return st, nil
}

// render formats one frame of the fleet view. prev (keyed by node name)
// supplies the previous round's counters for rate differentiation.
func render(samples []sample, prev map[string]sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "caisp-top  %s  (%d nodes)\n\n",
		time.Now().Format("15:04:05"), len(samples))
	fmt.Fprintf(&b, "%-10s %-10s %9s %10s %8s %8s %7s  %-9s %s\n",
		"NODE", "ROLE", "EVENTS", "STORESEQ", "ING/S", "WALOPS", "CLIENTS", "HEALTH", "PEER LAG")
	for _, s := range samples {
		if s.err != nil {
			fmt.Fprintf(&b, "%-10s %-10s %s\n", s.target.name, "-", "unreachable: "+s.err.Error())
			continue
		}
		st := s.status
		rate := "-"
		if p, ok := prev[s.target.name]; ok && s.at.After(p.at) {
			dt := s.at.Sub(p.at).Seconds()
			if dt > 0 && st.IngestTotal >= p.status.IngestTotal {
				rate = fmt.Sprintf("%.1f", float64(st.IngestTotal-p.status.IngestTotal)/dt)
			}
		}
		fmt.Fprintf(&b, "%-10s %-10s %9d %10d %8s %8d %7d  %-9s %s\n",
			st.Node, st.Role, st.Events, st.StoreSeq, rate, st.WALOps, st.Clients,
			st.Health.Status, peerLagSummary(st.Peers))
		for _, c := range st.Health.Checks {
			if c.Status != health.OK.String() {
				fmt.Fprintf(&b, "%-10s   ! %s: %s (%s)\n", "", c.Name, c.Status, c.Detail)
			}
		}
	}
	return b.String()
}

// peerLagSummary compresses the per-peer watermarks into one cell:
// "peer:lag" pairs, failing peers marked with their failure count.
func peerLagSummary(peers []health.PeerInfo) string {
	if len(peers) == 0 {
		return "-"
	}
	sorted := append([]health.PeerInfo(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	parts := make([]string, 0, len(sorted))
	for _, p := range sorted {
		cell := fmt.Sprintf("%s:%.1fs", p.Name, p.LagSeconds)
		if p.Failures > 0 {
			cell += fmt.Sprintf("(x%d)", p.Failures)
		}
		parts = append(parts, cell)
	}
	return strings.Join(parts, " ")
}
