// Command heuristicd runs the heuristic component as a standalone process,
// the paper's deployment shape: it subscribes to a TIP's publish socket
// (the zeroMQ channel of §IV-A), scores incoming cIoCs against its local
// inventory, and writes enriched events back through the TIP REST API.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/tip"
	"github.com/caisplatform/caisp/internal/worker"
)

func main() {
	var (
		busAddr = flag.String("bus", "127.0.0.1:8441", "TIP publish socket address")
		tipURL  = flag.String("tip", "http://127.0.0.1:8440", "TIP REST API base URL")
		apiKey  = flag.String("key", "", "TIP API key")
		invPath = flag.String("inventory", "", "inventory JSON (empty = paper's Table III inventory)")
	)
	flag.Parse()
	if err := run(*busAddr, *tipURL, *apiKey, *invPath); err != nil {
		fmt.Fprintln(os.Stderr, "heuristicd:", err)
		os.Exit(1)
	}
}

func run(busAddr, tipURL, apiKey, invPath string) error {
	inventory := infra.PaperInventory()
	if invPath != "" {
		raw, err := os.ReadFile(invPath)
		if err != nil {
			return err
		}
		inventory, err = infra.ParseInventory(raw)
		if err != nil {
			return err
		}
	}
	collector, err := infra.NewCollector(inventory)
	if err != nil {
		return err
	}
	w, err := worker.New(worker.Config{
		BusAddr:   busAddr,
		TIP:       tip.NewClient(tipURL, apiKey),
		Collector: collector,
		RIoCSink: func(r heuristic.RIoC) {
			fmt.Printf("rIoC %s TS=%.4f (%s) nodes=%v\n", r.CVE, r.ThreatScore, r.Priority, r.NodeIDs)
		},
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("heuristic component: bus %s, TIP %s\n", busAddr, tipURL)

	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	ticker := time.NewTicker(15 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			<-done
			st := w.Stats()
			fmt.Printf("\nshutting down: received=%d enriched=%d riocs=%d failures=%d\n",
				st.Received, st.Enriched, st.RIoCs, st.Failures)
			return nil
		case <-done:
			return nil
		case <-ticker.C:
			st := w.Stats()
			fmt.Printf("received=%d skipped=%d enriched=%d riocs=%d failures=%d reconnects=%d\n",
				st.Received, st.Skipped, st.Enriched, st.RIoCs, st.Failures, st.Reconnect)
		}
	}
}
