// Command heuristicd runs the heuristic component as a standalone process,
// the paper's deployment shape: it subscribes to a TIP's publish socket
// (the zeroMQ channel of §IV-A), scores incoming cIoCs against its local
// inventory, and writes enriched events back through the TIP REST API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/tip"
	"github.com/caisplatform/caisp/internal/worker"
)

// drainDeadline bounds how long shutdown waits for the analyzer shards
// to drain their queues after the bus subscription closes.
const drainDeadline = 5 * time.Second

func main() {
	var (
		busAddr = flag.String("bus", "127.0.0.1:8441", "TIP publish socket address")
		tipURL  = flag.String("tip", "http://127.0.0.1:8440", "TIP REST API base URL")
		apiKey  = flag.String("key", "", "TIP API key")
		invPath = flag.String("inventory", "", "inventory JSON (empty = paper's Table III inventory)")
		obsAddr = flag.String("metrics", "", "observability listen address serving /metrics (empty disables)")
		pprofOn = flag.Bool("pprof", false, "expose pprof profiles under /debug/pprof/ on the metrics address")
	)
	flag.Parse()
	if err := run(*busAddr, *tipURL, *apiKey, *invPath, *obsAddr, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "heuristicd:", err)
		os.Exit(1)
	}
}

func run(busAddr, tipURL, apiKey, invPath, obsAddr string, pprofOn bool) error {
	inventory := infra.PaperInventory()
	if invPath != "" {
		raw, err := os.ReadFile(invPath)
		if err != nil {
			return err
		}
		inventory, err = infra.ParseInventory(raw)
		if err != nil {
			return err
		}
	}
	collector, err := infra.NewCollector(inventory)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	w, err := worker.New(worker.Config{
		BusAddr:   busAddr,
		TIP:       tip.NewClient(tipURL, apiKey),
		Collector: collector,
		Metrics:   reg,
		RIoCSink: func(r heuristic.RIoC) {
			fmt.Printf("rIoC %s TS=%.4f (%s) nodes=%v\n", r.CVE, r.ThreatScore, r.Priority, r.NodeIDs)
		},
	})
	if err != nil {
		return err
	}

	var obsSrv *http.Server
	if obsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		if pprofOn {
			obs.RegisterPprof(mux)
		}
		obsSrv = &http.Server{Addr: obsAddr, Handler: mux}
		go func() { _ = obsSrv.ListenAndServe() }()
		fmt.Printf("metrics: http://localhost%s/metrics\n", obsAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("heuristic component: bus %s, TIP %s\n", busAddr, tipURL)

	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	ticker := time.NewTicker(15 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: Run's context is cancelled; wait up to the
			// drain deadline for the analyzer shards to finish in-flight
			// scores, then report and exit either way.
			drained := true
			select {
			case <-done:
			case <-time.After(drainDeadline):
				drained = false
			}
			if obsSrv != nil {
				shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
				_ = obsSrv.Shutdown(shutdownCtx)
				cancel()
			}
			st := w.Stats()
			fmt.Printf("\nshutting down (drained=%v): received=%d enriched=%d riocs=%d failures=%d\n",
				drained, st.Received, st.Enriched, st.RIoCs, st.Failures)
			return nil
		case <-done:
			return nil
		case <-ticker.C:
			st := w.Stats()
			fmt.Printf("received=%d skipped=%d enriched=%d riocs=%d failures=%d reconnects=%d\n",
				st.Received, st.Skipped, st.Enriched, st.RIoCs, st.Failures, st.Reconnect)
		}
	}
}
