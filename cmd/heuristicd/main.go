// Command heuristicd runs the heuristic component as a standalone process,
// the paper's deployment shape: it subscribes to a TIP's publish socket
// (the zeroMQ channel of §IV-A), scores incoming cIoCs against its local
// inventory, and writes enriched events back through the TIP REST API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/obs/health"
	"github.com/caisplatform/caisp/internal/tip"
	"github.com/caisplatform/caisp/internal/worker"
)

// drainDeadline bounds how long shutdown waits for the analyzer shards
// to drain their queues after the bus subscription closes.
const drainDeadline = 5 * time.Second

// busStableCheck degrades while the bus subscription is flapping: a
// reconnect since the previous evaluation means the publish socket
// dropped us at least once in the interval.
func busStableCheck(w *worker.Worker) health.Check {
	var lastReconnects atomic.Int64 // evaluations may run concurrently (probe + scrape)
	return func() health.Result {
		n := int64(w.Stats().Reconnect)
		if prev := lastReconnects.Swap(n); n > prev {
			return health.Degradedf(fmt.Sprintf("bus reconnecting (%d reconnects total)", n))
		}
		return health.Pass()
	}
}

func main() {
	var (
		busAddr = flag.String("bus", "127.0.0.1:8441", "TIP publish socket address")
		tipURL  = flag.String("tip", "http://127.0.0.1:8440", "TIP REST API base URL")
		apiKey  = flag.String("key", "", "TIP API key")
		invPath = flag.String("inventory", "", "inventory JSON (empty = paper's Table III inventory)")
		obsAddr = flag.String("metrics", "", "observability listen address serving /metrics (empty disables)")
		pprofOn = flag.Bool("pprof", false, "expose pprof profiles under /debug/pprof/ on the metrics address")
		node    = flag.String("node", "heuristicd", "node name in the fleet status view")
	)
	flag.Parse()
	if err := run(*busAddr, *tipURL, *apiKey, *invPath, *obsAddr, *node, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "heuristicd:", err)
		os.Exit(1)
	}
}

func run(busAddr, tipURL, apiKey, invPath, obsAddr, node string, pprofOn bool) error {
	inventory := infra.PaperInventory()
	if invPath != "" {
		raw, err := os.ReadFile(invPath)
		if err != nil {
			return err
		}
		inventory, err = infra.ParseInventory(raw)
		if err != nil {
			return err
		}
	}
	collector, err := infra.NewCollector(inventory)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	obs.RegisterRuntime(reg)
	client := tip.NewClient(tipURL, apiKey)
	w, err := worker.New(worker.Config{
		BusAddr:   busAddr,
		TIP:       client,
		Collector: collector,
		Metrics:   reg,
		RIoCSink: func(r heuristic.RIoC) {
			fmt.Printf("rIoC %s TS=%.4f (%s) nodes=%v\n", r.CVE, r.ThreatScore, r.Priority, r.NodeIDs)
		},
	})
	if err != nil {
		return err
	}

	// Health: the worker is ready when its upstream TIP answers and the
	// bus subscription is not flapping. Both degrade readiness — the
	// process itself stays live so the orchestrator does not restart it
	// while the TIP recovers.
	checks := health.New(reg)
	checks.Register("tip_reachable", func() health.Result {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if _, err := client.Stats(ctx); err != nil {
			return health.Degradedf(fmt.Sprintf("tip unreachable: %v", err))
		}
		return health.Pass()
	})
	checks.Register("bus_stable", busStableCheck(w))

	var obsSrv *http.Server
	if obsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /healthz", checks.Liveness())
		mux.Handle("GET /readyz", checks.Readiness())
		mux.Handle("GET /cluster/status", health.StatusHandler(func() health.NodeStatus {
			st := w.Stats()
			return health.NodeStatus{
				Node:        node,
				Role:        "heuristicd",
				IngestTotal: int64(st.Received),
				Health:      checks.Evaluate(),
			}
		}))
		if pprofOn {
			obs.RegisterPprof(mux)
		}
		obsSrv = &http.Server{Addr: obsAddr, Handler: mux}
		go func() { _ = obsSrv.ListenAndServe() }()
		fmt.Printf("metrics: http://localhost%s/metrics\n", obsAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("heuristic component: bus %s, TIP %s\n", busAddr, tipURL)

	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	ticker := time.NewTicker(15 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: Run's context is cancelled; wait up to the
			// drain deadline for the analyzer shards to finish in-flight
			// scores, then report and exit either way.
			drained := true
			select {
			case <-done:
			case <-time.After(drainDeadline):
				drained = false
			}
			if obsSrv != nil {
				shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
				_ = obsSrv.Shutdown(shutdownCtx)
				cancel()
			}
			st := w.Stats()
			fmt.Printf("\nshutting down (drained=%v): received=%d enriched=%d riocs=%d failures=%d\n",
				drained, st.Received, st.Enriched, st.RIoCs, st.Failures)
			return nil
		case <-done:
			return nil
		case <-ticker.C:
			st := w.Stats()
			fmt.Printf("received=%d skipped=%d enriched=%d riocs=%d failures=%d reconnects=%d\n",
				st.Received, st.Skipped, st.Enriched, st.RIoCs, st.Failures, st.Reconnect)
		}
	}
}
