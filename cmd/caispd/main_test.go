package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/sessions"
)

func TestBuildFeedsSynthetic(t *testing.T) {
	feeds, err := buildFeeds("", 1, 10, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != len(feedgen.AllFeeds) {
		t.Fatalf("feeds = %d", len(feeds))
	}
}

func TestBuildFeedsFromDirectory(t *testing.T) {
	dir := t.TempDir()
	gen := feedgen.New(feedgen.Config{Seed: 1, Items: 10})
	if err := gen.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	feeds, err := buildFeeds(dir, 1, 10, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != len(feedgen.AllFeeds) {
		t.Fatalf("feeds = %d", len(feeds))
	}
	byName := make(map[string]feed.Feed)
	for _, f := range feeds {
		byName[f.Name] = f
	}
	if byName["vuln-advisories"].Category != normalize.CategoryVulnExploit {
		t.Fatalf("advisory category = %q", byName["vuln-advisories"].Category)
	}
	if _, ok := byName["osint-misp"].Parser.(feed.MISPFeedParser); !ok {
		t.Fatalf("misp feed parser = %T", byName["osint-misp"].Parser)
	}
	if _, ok := byName["botnet-ips"].Parser.(feed.CSVParser); !ok {
		t.Fatalf("csv feed parser = %T", byName["botnet-ips"].Parser)
	}
	if _, err := buildFeeds(t.TempDir(), 1, 10, time.Minute); err == nil {
		t.Fatal("empty directory accepted")
	}
}

func TestIngestAlarmsAndSessions(t *testing.T) {
	platform, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()

	alarmPath := filepath.Join(t.TempDir(), "alerts.log")
	alarmData := "Jun 24 12:00:01 node4 snort[99]: [1:2019401:3] struts RCE {TCP} 198.51.100.9:4444 -> 10.0.0.14:8080 [Priority: 1]\nbroken line\n"
	if err := os.WriteFile(alarmPath, []byte(alarmData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ingestAlarms(platform, alarmPath); err != nil {
		t.Fatal(err)
	}
	if got := len(platform.Collector().AlarmsForNode("node4")); got != 1 {
		t.Fatalf("node4 alarms = %d", got)
	}
	if err := ingestAlarms(platform, filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing alarm file accepted")
	}

	sessPath := filepath.Join(t.TempDir(), "sessions.json")
	recorded := []sessions.Session{
		{ID: "s1", User: "alice", Actions: []sessions.Action{{Name: "login"}, {Name: "logout"}}},
		{ID: "", User: "broken"}, // skipped, not fatal
	}
	data, err := json.Marshal(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sessPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadSessions(platform, sessPath); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadSessions(platform, badPath); err == nil {
		t.Fatal("bad sessions file accepted")
	}
}

func TestParserAndCategoryMapping(t *testing.T) {
	if _, ok := parserForFile("x.txt").(feed.PlaintextParser); !ok {
		t.Fatal("txt parser wrong")
	}
	if _, ok := parserForFile("x.csv").(feed.CSVParser); !ok {
		t.Fatal("csv parser wrong")
	}
	if _, ok := parserForFile("vuln-advisories.json").(feed.AdvisoryParser); !ok {
		t.Fatal("advisory parser wrong")
	}
	if got := categoryForFile("phishing-urls"); got != normalize.CategoryPhishing {
		t.Fatalf("category = %q", got)
	}
	if got := categoryForFile("anything-else"); got != normalize.CategoryUnknown {
		t.Fatalf("fallback category = %q", got)
	}
}

func TestWithReportEndpoint(t *testing.T) {
	platform, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()
	srv := httptest.NewServer(withReport(platform, buildHealth(platform, ""), true))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "# CAISP situation report") {
		t.Fatalf("report body unexpected:\n%s", body)
	}
	// The dashboard still answers underneath.
	resp2, err := http.Get(srv.URL + "/api/topology")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("topology status = %d", resp2.StatusCode)
	}

	// The observability surfaces are mounted next to it.
	for path, wantBody := range map[string]string{
		"/metrics":        "# TYPE caisp_",
		"/debug/traces":   "[",
		"/debug/pprof/":   "profiles",
		"/stats":          "events_collected",
		"/healthz":        "ok",
		"/readyz":         `"status":"ok"`,
		"/cluster/status": `"role":"caispd"`,
	} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, r.StatusCode)
		}
		if !strings.Contains(string(b), wantBody) {
			t.Fatalf("%s body missing %q:\n%s", path, wantBody, b)
		}
	}
}
