// Command caispd runs the full Context-Aware OSINT Platform: OSINT
// collection (synthetic feeds by default, or a directory of feed files),
// the TIP operational module with its REST API, the heuristic component,
// the live dashboard, and the TAXII sharing endpoint.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/obs/health"
	"github.com/caisplatform/caisp/internal/report"
	"github.com/caisplatform/caisp/internal/sessions"
	"github.com/caisplatform/caisp/internal/tip"
)

// Health thresholds: the compaction backlog degrades once the WAL holds
// ten uncompacted trigger-intervals (the background compactor has fallen
// far behind), and the dashboard hub degrades when its deepest client
// queue passes 90% — the next broadcast starts evicting slow clients.
const (
	healthMaxWALBacklog   = 50000
	healthMaxHubFill      = 0.9
	healthLifecycleWithin = 5 * time.Minute
)

func main() {
	var (
		dashAddr  = flag.String("dashboard", ":8450", "dashboard listen address")
		tipAddr   = flag.String("tip", ":8440", "TIP REST API listen address")
		taxiiAddr = flag.String("taxii", ":8460", "TAXII listen address (empty disables)")
		dataDir   = flag.String("data", "", "event store directory (empty = in-memory)")
		invPath   = flag.String("inventory", "", "inventory JSON (empty = paper's Table III inventory)")
		feedDir   = flag.String("feeds", "", "directory of feed files (empty = built-in synthetic feeds)")
		seed      = flag.Int64("seed", 1, "synthetic feed seed")
		items     = flag.Int("items", 200, "synthetic feed records per feed")
		interval  = flag.Duration("interval", time.Minute, "feed polling interval")
		apiKey    = flag.String("key", "", "TIP API key (empty disables auth)")
		alarmLog  = flag.String("alarms", "", "syslog-style alarm file ingested at startup")
		sessLog   = flag.String("sessions", "", "JSON file of user sessions for the §II-B summary endpoints")
		pprof     = flag.Bool("pprof", false, "expose pprof profiles under /debug/pprof/ on the dashboard address")
		slowOp    = flag.Duration("slow-op", 0, "log heuristic evaluations and dashboard pushes slower than this (0 disables)")
		lcOff     = flag.Bool("no-lifecycle", false, "disable decay-driven re-scoring and expiry (store grows without bound)")
		lcEvery   = flag.Duration("lifecycle-interval", 0, "cadence of the background re-score batch (0 = engine default)")
		lcFloor   = flag.Float64("lifecycle-floor", 0, "expire indicators once their decayed score falls to this (0 = engine default)")
		nodeName  = flag.String("node", "", "node name in provenance and the fleet view (empty = caisp)")
	)
	flag.Parse()
	if err := run(*dashAddr, *tipAddr, *taxiiAddr, *dataDir, *invPath, *feedDir,
		*seed, *items, *interval, *apiKey, *alarmLog, *sessLog, *pprof, *slowOp,
		*lcOff, *lcEvery, *lcFloor, *nodeName); err != nil {
		fmt.Fprintln(os.Stderr, "caispd:", err)
		os.Exit(1)
	}
}

func run(dashAddr, tipAddr, taxiiAddr, dataDir, invPath, feedDir string,
	seed int64, items int, interval time.Duration, apiKey, alarmLog, sessLog string,
	pprof bool, slowOp time.Duration, lcOff bool, lcEvery time.Duration, lcFloor float64,
	nodeName string) error {
	var inventory *infra.Inventory
	if invPath != "" {
		raw, err := os.ReadFile(invPath)
		if err != nil {
			return err
		}
		inventory, err = infra.ParseInventory(raw)
		if err != nil {
			return err
		}
	}

	feeds, err := buildFeeds(feedDir, seed, items, interval)
	if err != nil {
		return err
	}

	platform, err := core.New(core.Config{
		DataDir:           dataDir,
		NodeName:          nodeName,
		Inventory:         inventory,
		Feeds:             feeds,
		ShareTAXII:        taxiiAddr != "",
		SlowOpThreshold:   slowOp,
		DisableLifecycle:  lcOff,
		LifecycleInterval: lcEvery,
		LifecycleFloor:    lcFloor,
	})
	if err != nil {
		return err
	}
	defer platform.Close()
	obs.RegisterBuildInfo(platform.Metrics())
	obs.RegisterRuntime(platform.Metrics())
	checks := buildHealth(platform, dataDir)

	if alarmLog != "" {
		if err := ingestAlarms(platform, alarmLog); err != nil {
			return err
		}
	}
	if sessLog != "" {
		if err := loadSessions(platform, sessLog); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := platform.Start(ctx, 2*time.Second); err != nil {
		return err
	}

	servers := []*http.Server{
		{Addr: dashAddr, Handler: withReport(platform, checks, pprof)},
		{Addr: tipAddr, Handler: tip.NewAPI(platform.TIP(), apiKey)},
	}
	fmt.Printf("dashboard:  http://localhost%s\n", dashAddr)
	fmt.Printf("TIP API:    http://localhost%s\n", tipAddr)
	if taxiiAddr != "" {
		servers = append(servers, &http.Server{Addr: taxiiAddr, Handler: platform.TAXII()})
		fmt.Printf("TAXII:      http://localhost%s/taxii2/\n", taxiiAddr)
	}
	errCh := make(chan error, len(servers))
	for _, srv := range servers {
		srv := srv
		go func() { errCh <- srv.ListenAndServe() }()
	}

	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			for _, srv := range servers {
				shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				_ = srv.Shutdown(shutdownCtx)
				cancel()
			}
			platform.Stop()
			return nil
		case err := <-errCh:
			if err != nil && err != http.ErrServerClosed {
				return err
			}
		case <-ticker.C:
			st := platform.Stats()
			fmt.Printf("collected=%d unique=%d ciocs=%d edits=%d merges=%d eiocs=%d riocs=%d stored=%d dropped=%d\n",
				st.EventsCollected, st.EventsUnique, st.CIoCs, st.ClusterEdits,
				st.ClusterMerges, st.EIoCs, st.RIoCs, st.StoredEvents, st.BusDropped)
		}
	}
}

// withReport mounts the analyst situation report, the platform counters
// and the observability surfaces next to the dashboard. /stats surfaces
// the full pipeline Stats — including the streaming correlator's cluster
// add/edit/merge counters and broker-wide drop-oldest losses, which are
// otherwise silent; /metrics serves the same values (and the latency
// histograms) in Prometheus text format, and /debug/traces the slowest
// end-to-end IoC journeys with per-stage breakdowns.
func withReport(platform *core.Platform, checks *health.Registry, pprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		_, _ = w.Write([]byte(report.Build(platform, 10, time.Now()).Markdown()))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(platform.Stats())
	})
	mux.Handle("GET /metrics", platform.Metrics().Handler())
	mux.Handle("GET /debug/traces", platform.Tracer().Handler())
	mux.Handle("GET /healthz", checks.Liveness())
	mux.Handle("GET /readyz", checks.Readiness())
	mux.Handle("GET /cluster/status", health.StatusHandler(func() health.NodeStatus {
		d := platform.Durability()
		return health.NodeStatus{
			Node:     platform.NodeName(),
			Role:     "caispd",
			StoreSeq: platform.TIP().StoreSeq(),
			Events:   platform.TIP().Len(),
			WALOps:   d.WALOps,
			// The store sequence advances on every put/edit/delete, so it
			// doubles as the monotonic ingest counter caisp-top
			// differentiates into a rate.
			IngestTotal: int64(platform.TIP().StoreSeq()),
			Clients:     platform.Dashboard().ClientCount(),
			Health:      checks.Evaluate(),
		}
	}))
	if pprof {
		obs.RegisterPprof(mux)
	}
	mux.Handle("/", platform.Dashboard())
	return mux
}

// buildHealth assembles caispd's component checks: WAL writability
// (liveness — a node that cannot commit must restart), compaction
// backlog, lifecycle-scheduler progress and dashboard hub saturation
// (readiness — degraded but alive).
func buildHealth(platform *core.Platform, dataDir string) *health.Registry {
	checks := health.New(platform.Metrics())
	checks.Register("wal_writable", health.DirWritable(dataDir))
	checks.Register("compaction_backlog", health.Max("wal ops since snapshot",
		func() float64 { return float64(platform.Durability().WALOps) }, healthMaxWALBacklog))
	if lc := platform.Lifecycle(); lc != nil {
		checks.Register("lifecycle_progress", health.Progress(
			func() int64 { return int64(lc.Stats().Passes) }, healthLifecycleWithin, nil))
	}
	checks.Register("hub_saturation", health.Max("dashboard hub queue fill",
		platform.Dashboard().HubSaturation, healthMaxHubFill))
	return checks
}

// ingestAlarms replays a syslog-style alert file into the collector.
func ingestAlarms(platform *core.Platform, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stored, failed := platform.Collector().IngestAlarmLines(
		strings.Split(string(data), "\n"), time.Now())
	fmt.Printf("ingested %d alarms from %s (%d lines failed)\n", len(stored), path, len(failed))
	for i, err := range failed {
		fmt.Printf("  line %d: %v\n", i+1, err)
	}
	return nil
}

// loadSessions reads a JSON array of user sessions and enables the
// dashboard's /api/sessions endpoints.
func loadSessions(platform *core.Platform, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var recorded []sessions.Session
	if err := json.Unmarshal(data, &recorded); err != nil {
		return fmt.Errorf("parse sessions file: %w", err)
	}
	analyzer := sessions.NewAnalyzer()
	loaded := 0
	for _, s := range recorded {
		if err := analyzer.Add(s); err != nil {
			fmt.Printf("  session %s skipped: %v\n", s.ID, err)
			continue
		}
		loaded++
	}
	platform.Dashboard().SetSessionAnalyzer(analyzer)
	fmt.Printf("loaded %d user sessions from %s\n", loaded, path)
	return nil
}

// buildFeeds loads feed files from a directory (inferring category and
// parser from the file name/extension) or falls back to the synthetic
// generator.
func buildFeeds(feedDir string, seed int64, items int, interval time.Duration) ([]feed.Feed, error) {
	if feedDir == "" {
		gen := feedgen.New(feedgen.Config{
			Seed: seed, Items: items,
			DuplicationRate: 0.2, OverlapRate: 0.15, DefangRate: 0.3,
		})
		return gen.Feeds(interval)
	}
	entries, err := os.ReadDir(feedDir)
	if err != nil {
		return nil, err
	}
	var feeds []feed.Feed
	for _, entry := range entries {
		if entry.IsDir() {
			continue
		}
		name := entry.Name()
		path := filepath.Join(feedDir, name)
		base := name[:len(name)-len(filepath.Ext(name))]
		feeds = append(feeds, feed.Feed{
			Name:     base,
			Category: categoryForFile(base),
			Fetcher:  &feed.FileFetcher{Path: path},
			Parser:   parserForFile(name),
			Interval: interval,
		})
	}
	if len(feeds) == 0 {
		return nil, fmt.Errorf("no feed files in %s", feedDir)
	}
	return feeds, nil
}

func parserForFile(name string) feed.Parser {
	switch filepath.Ext(name) {
	case ".csv":
		return feed.CSVParser{ValueColumn: 0, HasHeader: true}
	case ".json":
		if filepath.Base(name) == "osint-misp.json" {
			return feed.MISPFeedParser{}
		}
		return feed.AdvisoryParser{}
	default:
		return feed.PlaintextParser{}
	}
}

func categoryForFile(base string) string {
	switch base {
	case feedgen.FeedMalwareDomains, feedgen.FeedMISP:
		return normalize.CategoryMalwareDomain
	case feedgen.FeedBotnetIPs:
		return normalize.CategoryBotnetC2
	case feedgen.FeedPhishingURLs:
		return normalize.CategoryPhishing
	case feedgen.FeedMalwareHashes:
		return normalize.CategoryMalwareHash
	case feedgen.FeedAdvisories:
		return normalize.CategoryVulnExploit
	default:
		return normalize.CategoryUnknown
	}
}
