// Command lifeload is the indicator-lifecycle load harness: it drives
// sustained ingest against a store with the decay engine attached and
// asserts that "runs forever under heavy traffic" holds literally — the
// event count and heap plateau once expiry engages, instead of growing
// linearly the way the unbounded baseline does.
//
//	lifeload                      # bounded: assert count + heap plateau
//	lifeload -mode unbounded      # baseline: report linear growth
//	lifeload -mode compare        # incremental vs -rescan-all per-pass cost
//	lifeload -mode mesh           # expiry tombstones converge across 3 nodes
//
// Time is virtual: every tick advances the clock by -step and ingests
// -rate indicator events stamped at the virtual now, then runs one
// bounded re-score batch. A multi-week decay horizon therefore runs in
// seconds without waiting on wall time.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/lifecycle"
	"github.com/caisplatform/caisp/internal/mesh"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
)

type options struct {
	mode   string
	ticks  int
	rate   int
	step   time.Duration
	tau    time.Duration
	batch  int
	events int // compare/mesh mode store size
	drain  time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.mode, "mode", "bounded", "bounded, unbounded, compare or mesh")
	flag.IntVar(&o.ticks, "ticks", 1000, "virtual-clock ticks to run")
	flag.IntVar(&o.rate, "rate", 50, "events ingested per tick")
	flag.DurationVar(&o.step, "step", time.Hour, "virtual time per tick")
	flag.DurationVar(&o.tau, "tau", 200*time.Hour, "decay lifetime for the ingested category")
	flag.IntVar(&o.batch, "batch", 2048, "re-score batch size per tick")
	flag.IntVar(&o.events, "events", 100000, "store size for -mode compare (and ingest size for mesh)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "max wait for mesh convergence")
	flag.Parse()
	var err error
	switch o.mode {
	case "bounded", "unbounded":
		err = runIngest(o)
	case "compare":
		err = runCompare(o)
	case "mesh":
		err = runMesh(o)
	default:
		err = fmt.Errorf("unknown mode %q", o.mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lifeload:", err)
		os.Exit(1)
	}
}

// virtual epoch: any fixed instant works, the decay model only sees ages.
var epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// indicator builds one scored eIoC-shaped event at the given virtual time.
func indicator(i int, category string, at time.Time) *misp.Event {
	e := misp.NewEvent(fmt.Sprintf("lifeload indicator %d", i), at)
	e.AddTag("caisp:cioc")
	e.AddTag("caisp:eioc")
	e.AddTag("caisp:category=\"" + category + "\"")
	e.AddAttribute("domain", "Network activity",
		fmt.Sprintf("host-%d.life.example", i), at)
	heuristic.SetBaseScore(e, 4.0, at)
	return e
}

func heapMiB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// runIngest is the plateau measurement: infinite ingest against a store
// with (bounded) or without (unbounded) the lifecycle engine attached.
func runIngest(o options) error {
	s, err := storage.Open("")
	if err != nil {
		return err
	}
	defer s.Close()

	bounded := o.mode == "bounded"
	var eng *lifecycle.Engine
	if bounded {
		eng = lifecycle.New(s,
			lifecycle.WithPolicies(map[string]lifecycle.Policy{
				"scanner": {Tau: o.tau, Delta: 1},
				"unknown": {Tau: o.tau, Delta: 1},
			}),
			lifecycle.WithBatchSize(o.batch))
	}

	// The floor (0.3 of base 4.0) expires an indicator at ~92.5% of τ, so
	// the steady-state population is rate × (0.925·τ/step), plus scheduler
	// lag of up to one full cursor pass.
	liveTicks := float64(o.tau) / float64(o.step) * (1 - lifecycle.DefaultFloor/4.0)
	plateau := int(liveTicks * float64(o.rate))
	fmt.Printf("lifeload: mode=%s ticks=%d rate=%d/tick step=%s tau=%s batch=%d (plateau estimate %d)\n",
		o.mode, o.ticks, o.rate, o.step, o.tau, o.batch, plateau)

	ingested := 0
	samples := make(map[int]int) // tick → store length
	heaps := make(map[int]float64)
	sampleAt := func(t int) bool {
		return t == o.ticks/2 || t == 3*o.ticks/4 || t == o.ticks
	}
	start := time.Now()
	for tick := 1; tick <= o.ticks; tick++ {
		vnow := epoch.Add(time.Duration(tick) * o.step)
		batch := make([]*misp.Event, o.rate)
		for i := range batch {
			batch[i] = indicator(ingested+i, "scanner", vnow)
		}
		if err := s.PutBatch(batch); err != nil {
			return err
		}
		ingested += o.rate
		if eng != nil {
			if _, err := eng.RunOnce(vnow); err != nil {
				return err
			}
		}
		if sampleAt(tick) {
			samples[tick] = s.Len()
			heaps[tick] = heapMiB()
			fmt.Printf("tick %4d: ingested=%d stored=%d heap=%.1fMiB\n",
				tick, ingested, samples[tick], heaps[tick])
		}
	}
	dur := time.Since(start)
	fmt.Printf("%d ticks in %s (%.0f events/s ingest)\n",
		o.ticks, dur.Round(time.Millisecond), float64(ingested)/dur.Seconds())
	if eng != nil {
		st := eng.Stats()
		fmt.Printf("lifecycle: scanned=%d rescored=%d expired=%d passes=%d tracked=%d\n",
			st.Scanned, st.Rescored, st.Expired, st.Passes, st.Tracked)
	}

	mid, threeQ, end := samples[o.ticks/2], samples[3*o.ticks/4], samples[o.ticks]
	if !bounded {
		if end != ingested {
			return fmt.Errorf("unbounded baseline lost events: stored %d of %d", end, ingested)
		}
		fmt.Printf("unbounded baseline: store grew linearly to %d events (heap %.1fMiB) — no plateau\n",
			end, heaps[o.ticks])
		return nil
	}

	// Plateau assertions. The run must be long enough that expiry engaged
	// well before the midpoint sample.
	if float64(o.ticks) < 1.5*liveTicks {
		return fmt.Errorf("run too short for a plateau: %d ticks < 1.5× live window %.0f", o.ticks, liveTicks)
	}
	// One full cursor pass of lag on top of the analytic plateau.
	bound := plateau + (plateau/o.batch+2)*o.rate
	for tick, got := range samples {
		if got > bound {
			return fmt.Errorf("tick %d: stored %d exceeds plateau bound %d", tick, got, bound)
		}
	}
	// Flat, not growing: the last half of the run may drift only ~10%.
	drift := func(a, b int) float64 { return float64(b-a) / float64(a) }
	if d := drift(mid, end); d > 0.10 {
		return fmt.Errorf("store still growing after plateau: %d → %d (+%.0f%%)", mid, end, 100*d)
	}
	if d := heaps[o.ticks] / heaps[o.ticks/2]; d > 2.0 {
		return fmt.Errorf("heap still growing after plateau: %.1f → %.1f MiB", heaps[o.ticks/2], heaps[o.ticks])
	}
	fmt.Printf("bounded: plateau holds (stored %d/%d/%d at 50/75/100%% of run, bound %d; ingested %d total)\n",
		mid, threeQ, end, bound, ingested)
	return nil
}

// runCompare measures steady-state per-pass scheduler cost: one bounded
// incremental batch vs the WithRescanAll full walk, on the same warmed
// store. Both modes land zero edits (the clock is frozen), so the
// numbers isolate pure scan cost — O(batch) vs O(store).
func runCompare(o options) error {
	s, err := storage.Open("")
	if err != nil {
		return err
	}
	defer s.Close()
	pols := map[string]lifecycle.Policy{
		"scanner": {Tau: o.tau, Delta: 1},
		"unknown": {Tau: o.tau, Delta: 1},
	}

	// Sightings spread over the first half of τ so nothing expires.
	fmt.Printf("lifeload: preloading %d indicators\n", o.events)
	const chunk = 1024
	for off := 0; off < o.events; off += chunk {
		n := min(chunk, o.events-off)
		batch := make([]*misp.Event, n)
		for i := range batch {
			age := time.Duration(int64(o.tau) / 2 * int64(off+i) / int64(o.events))
			batch[i] = indicator(off+i, "scanner", epoch.Add(age))
		}
		if err := s.PutBatch(batch); err != nil {
			return err
		}
	}
	now := epoch.Add(o.tau / 2)

	// Warm: land every decayed score once so measurement passes are
	// pure scans for both schedulers.
	warm := lifecycle.New(s, lifecycle.WithPolicies(pols), lifecycle.WithRescanAll(true))
	if _, err := warm.RunOnce(now); err != nil {
		return err
	}

	inc := lifecycle.New(s, lifecycle.WithPolicies(pols), lifecycle.WithBatchSize(512))
	incRuns := 20
	start := time.Now()
	for i := 0; i < incRuns; i++ {
		if _, err := inc.RunOnce(now); err != nil {
			return err
		}
	}
	incPer := time.Since(start) / time.Duration(incRuns)

	rescan := lifecycle.New(s, lifecycle.WithPolicies(pols), lifecycle.WithRescanAll(true))
	rescanRuns := 3
	start = time.Now()
	for i := 0; i < rescanRuns; i++ {
		if _, err := rescan.RunOnce(now); err != nil {
			return err
		}
	}
	rescanPer := time.Since(start) / time.Duration(rescanRuns)

	ratio := float64(rescanPer) / float64(incPer)
	fmt.Printf("per-pass cost at %d events: incremental(batch=512) %s, rescan-all %s — %.0f× cheaper\n",
		o.events, incPer.Round(time.Microsecond), rescanPer.Round(time.Microsecond), ratio)
	if ratio < 10 {
		return fmt.Errorf("incremental scheduler only %.1f× cheaper than rescan-all, want ≥10×", ratio)
	}
	return nil
}

// --- mesh mode: expiry tombstones converge across a 3-node ring ---

type node struct {
	idx   int
	addr  string
	store *storage.Store
	svc   *tip.Service
	eng   *mesh.Engine
	srv   *http.Server
}

func (n *node) digest() uint64 {
	events, err := n.svc.EventsSince(time.Time{})
	if err != nil {
		return 0
	}
	var sum uint64
	for _, e := range events {
		h := fnv.New64a()
		io.WriteString(h, e.UUID)
		io.WriteString(h, strconv.FormatInt(e.Timestamp.Unix(), 10))
		sum ^= h.Sum64()
	}
	return sum
}

// runMesh ingests a mixed-lifetime population at node 0 of a 3-node
// ring, lets it replicate, then advances virtual time so the short-lived
// category decays through the floor. The expiry deletions must tombstone
// through the change feed and converge on every node.
func runMesh(o options) error {
	const nodes = 3
	root, err := os.MkdirTemp("", "lifeload-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	addrs := make([]string, nodes)
	lns := make([]net.Listener, nodes)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		lns[i] = ln
	}
	all := make([]*node, nodes)
	for i := range all {
		dir := filepath.Join(root, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		store, err := storage.Open(dir)
		if err != nil {
			return err
		}
		n := &node{idx: i, addr: addrs[i], store: store}
		n.svc = tip.NewService(store, tip.WithName(fmt.Sprintf("node%d", i)))
		mux := http.NewServeMux()
		mux.Handle("/", tip.NewAPI(n.svc, ""))
		n.srv = &http.Server{Handler: mux}
		go n.srv.Serve(lns[i])
		all[i] = n
	}
	defer func() {
		for _, n := range all {
			n.eng.Close()
			n.srv.Close()
			n.store.Close()
		}
	}()
	for i, n := range all {
		prev := all[(i-1+nodes)%nodes]
		peers := []mesh.Peer{{
			Name:   fmt.Sprintf("node%d", prev.idx),
			Remote: tip.NewClient("http://"+prev.addr, "", tip.WithRequestTimeout(10*time.Second)),
		}}
		eng, err := mesh.New(n.svc, peers, mesh.NewMemCursors(),
			mesh.WithInterval(25*time.Millisecond))
		if err != nil {
			return err
		}
		n.eng = eng
		eng.Start()
	}

	// Mixed population: 2/3 short-lived scanners, 1/3 long-lived hashes.
	total := min(o.events, 600)
	keep := 0
	batch := make([]*misp.Event, 0, total)
	for i := 0; i < total; i++ {
		cat := "scanner"
		if i%3 == 0 {
			cat = "malware-hash"
			keep++
		}
		batch = append(batch, indicator(i, cat, epoch))
	}
	if _, err := all[0].svc.AddEvents(batch); err != nil {
		return err
	}
	fmt.Printf("lifeload mesh: ingested %d indicators at node 0 (%d long-lived)\n", total, keep)

	wait := func(want int, what string) error {
		deadline := time.Now().Add(o.drain)
		for {
			ok := true
			var parts []string
			d0 := all[0].digest()
			for _, n := range all {
				c := n.svc.Len()
				parts = append(parts, fmt.Sprintf("node%d=%d", n.idx, c))
				if c != want || n.digest() != d0 {
					ok = false
				}
			}
			if ok {
				fmt.Printf("%s converged: %s\n", what, strings.Join(parts, " "))
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s did not converge within %s: %s", what, o.drain, strings.Join(parts, " "))
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if err := wait(total, "ingest"); err != nil {
		return err
	}

	// Advance virtual time past the scanner lifetime and expire at node 0.
	// Deletions route through the TIP so they tombstone the change feed.
	lc := lifecycle.New(all[0].store,
		lifecycle.WithPolicies(map[string]lifecycle.Policy{
			"scanner":      {Tau: o.tau, Delta: 1},
			"malware-hash": {Tau: 1000 * o.tau, Delta: 1},
			"unknown":      {Tau: 1000 * o.tau, Delta: 1},
		}),
		lifecycle.WithBatchSize(o.batch),
		lifecycle.WithExpireHook(all[0].svc.DeleteEvent))
	vnow := epoch.Add(2 * o.tau)
	for {
		res, err := lc.RunOnce(vnow)
		if err != nil {
			return err
		}
		if res.Wrapped {
			break
		}
	}
	fmt.Printf("node 0 expired %d short-lived indicators\n", total-keep)
	if got := all[0].svc.Len(); got != keep {
		return fmt.Errorf("node 0 holds %d events after expiry, want %d", got, keep)
	}
	if err := wait(keep, "expiry"); err != nil {
		return err
	}
	fmt.Println("deletion tombstones replicated: all nodes converged on the expired set")
	return nil
}
