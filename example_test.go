package caisp_test

import (
	"fmt"
	"time"

	"github.com/caisplatform/caisp"
	"github.com/caisplatform/caisp/internal/stix"
)

// ExampleScore evaluates the paper's §IV use-case IoC against the Table III
// inventory at the paper's evaluation instant.
func ExampleScore() {
	created := time.Date(2017, 9, 13, 0, 0, 0, 0, time.UTC)
	vuln := stix.NewVulnerability("CVE-2017-9805",
		"Apache Struts REST plugin XStream RCE via crafted POST body", created)
	vuln.ExternalReferences = []stix.ExternalReference{
		{SourceName: "capec", ExternalID: "CAPEC-248"},
		{SourceName: "cve", ExternalID: "CVE-2017-9805"},
	}
	vuln.SetExtra("x_caisp_os", "debian")
	vuln.SetExtra("x_caisp_products", "apache struts,apache")
	vuln.SetExtra("x_caisp_cvss_vector", "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H")
	vuln.SetExtra("x_caisp_source_type", "osint")

	at := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	res, err := caisp.Score(vuln, caisp.PaperInventory(), at)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("TS = %.4f (Cp = %.4f, priority %s)\n", res.Score, res.Completeness, res.Priority())
	// Output: TS = 2.7407 (Cp = 0.8889, priority medium)
}

// ExampleInventory_Match demonstrates the §IV matching rule that decides
// which nodes a reduced IoC is associated with.
func ExampleInventory_Match() {
	inv := caisp.PaperInventory()

	specific := inv.Match([]string{"apache struts", "apache"})
	fmt.Println("apache struts →", specific.NodeIDs)

	common := inv.Match([]string{"linux"})
	fmt.Println("linux → all nodes:", common.AllNodes)

	none := inv.Match([]string{"windows", "iis"})
	fmt.Println("windows/iis matched:", none.Matched())
	// Output:
	// apache struts → [node4]
	// linux → all nodes: true
	// windows/iis matched: false
}
