// Benchmarks regenerating the paper's artifacts (one per table and figure)
// plus ablations of the design choices called out in DESIGN.md: the Bloom
// filter in the deduplicator, the secondary indexes in the event store,
// and points-derived versus static feature weighting.
package caisp_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/correlate"
	"github.com/caisplatform/caisp/internal/dedup"
	"github.com/caisplatform/caisp/internal/experiments"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/stix"
	"github.com/caisplatform/caisp/internal/stixpattern"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
	"github.com/caisplatform/caisp/internal/worker"
)

// --- Table I: static threat-score computation ----------------------------

func BenchmarkTableIStaticScore(b *testing.B) {
	values := []float64{3, 4, 3, 1, 5}
	weights := []float64{0.10, 0.25, 0.40, 0.15, 0.10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := heuristic.StaticScore(values, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II: heuristic registry construction ---------------------------

func BenchmarkTableIIRegistry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(heuristic.DefaultHeuristics()); got != 6 {
			b.Fatalf("heuristics = %d", got)
		}
	}
}

// --- Table III: inventory matching (the §IV rule) ------------------------

func BenchmarkTableIIIInventoryMatch(b *testing.B) {
	inv := infra.PaperInventory()
	terms := []string{"apache struts", "apache"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !inv.Match(terms).Matched() {
			b.Fatal("no match")
		}
	}
}

// --- Table IV/V: full heuristic evaluation of the use-case IoC -----------

func BenchmarkTableVUseCaseEvaluation(b *testing.B) {
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		b.Fatal(err)
	}
	engine := heuristic.NewEngine(
		heuristic.WithInfrastructure(collector),
		heuristic.WithNow(func() time.Time { return experiments.EvalTime }),
	)
	ioc := experiments.UseCaseIoC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := engine.Evaluate(ioc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Score != 2.7407 {
			b.Fatalf("TS = %v", res.Score)
		}
	}
}

// --- Fig. 2: dashboard topology assembly ---------------------------------

func BenchmarkFig2Topology(b *testing.B) {
	s, err := experiments.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	dash := s.Platform.Dashboard()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if topo := dash.BuildTopology(); len(topo.Nodes) != 4 {
			b.Fatal("bad topology")
		}
	}
}

// --- Fig. 3/4: reduction of an enriched IoC into an rIoC -----------------

func BenchmarkFig4Reduce(b *testing.B) {
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		b.Fatal(err)
	}
	engine := heuristic.NewEngine(
		heuristic.WithInfrastructure(collector),
		heuristic.WithNow(func() time.Time { return experiments.EvalTime }),
	)
	ioc := experiments.UseCaseIoC()
	res, err := engine.Evaluate(ioc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := heuristic.Reduce(ioc, res, collector, experiments.EvalTime)
		if err != nil || r == nil {
			b.Fatal(err)
		}
	}
}

// --- X2: the full pipeline (feeds → dashboard) ---------------------------

func BenchmarkPipelineRunBatch(b *testing.B) {
	for _, items := range []int{50, 200} {
		b.Run(fmt.Sprintf("items=%d", items), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gen := feedgen.New(feedgen.Config{
					Seed: int64(i), Items: items,
					DuplicationRate: 0.2, OverlapRate: 0.15,
				})
				feeds, err := gen.Feeds(time.Hour)
				if err != nil {
					b.Fatal(err)
				}
				p, err := core.New(core.Config{
					Feeds: feeds,
					Clock: clock.NewFake(experiments.EvalTime),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := p.RunBatch(context.Background()); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				p.Close()
			}
		})
	}
}

// --- X1: deduplication throughput and its Bloom ablation -----------------

func benchmarkDedup(b *testing.B, useBloom bool) {
	events := make([]normalize.Event, 10000)
	for i := range events {
		e, err := normalize.New(fmt.Sprintf("host-%d.example", i%2000),
			normalize.CategoryMalwareDomain, "bench", normalize.SourceOSINT, experiments.EvalTime)
		if err != nil {
			b.Fatal(err)
		}
		events[i] = e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dedup.New(dedup.WithBloom(useBloom), dedup.WithExpectedItems(4000))
		for _, e := range events {
			d.Offer(e)
		}
		if d.Len() != 2000 {
			b.Fatalf("unique = %d", d.Len())
		}
	}
}

func BenchmarkAblationDedupBloomOn(b *testing.B)  { benchmarkDedup(b, true) }
func BenchmarkAblationDedupBloomOff(b *testing.B) { benchmarkDedup(b, false) }

// --- Ablation: secondary indexes in the event store ----------------------

func benchmarkStoreSearch(b *testing.B, indexed bool) {
	store, err := storage.Open("", storage.WithIndexes(indexed))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	now := experiments.EvalTime
	for i := 0; i < 2000; i++ {
		e := misp.NewEvent(fmt.Sprintf("evt-%d", i), now)
		e.AddAttribute("domain", "Network activity", fmt.Sprintf("h%d.example", i), now)
		if err := store.Put(e); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := store.SearchValue(fmt.Sprintf("h%d.example", i%2000))
		if err != nil || len(hits) != 1 {
			b.Fatalf("hits=%d err=%v", len(hits), err)
		}
	}
}

func BenchmarkAblationStoreSearchIndexed(b *testing.B) { benchmarkStoreSearch(b, true) }
func BenchmarkAblationStoreSearchScan(b *testing.B)    { benchmarkStoreSearch(b, false) }

// --- Ablation: points-derived vs static weighting ------------------------

func BenchmarkAblationWeightingPoints(b *testing.B) {
	engine := heuristic.NewEngine(heuristic.WithNow(func() time.Time { return experiments.EvalTime }))
	ioc := experiments.UseCaseIoC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Evaluate(ioc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWeightingStatic(b *testing.B) {
	values := []float64{3, 1, 2, 1, 2, 1, 0, 5, 4}
	weights := []float64{8, 8, 12, 8, 4, 4, 4, 23, 17}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i := range weights {
		weights[i] /= sum
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := heuristic.StaticScore(values, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate microbenchmarks -------------------------------------------

func BenchmarkSTIXPatternParse(b *testing.B) {
	const pattern = "[domain-name:value = 'evil.example' OR ipv4-addr:value = '203.0.113.7'] WITHIN 300 SECONDS"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stixpattern.Parse(pattern); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSTIXPatternMatch(b *testing.B) {
	p, err := stixpattern.Parse("[domain-name:value = 'evil.example' OR ipv4-addr:value = '203.0.113.7']")
	if err != nil {
		b.Fatal(err)
	}
	obs := []stixpattern.Observation{{
		Fields: map[string][]string{"ipv4-addr:value": {"203.0.113.7"}},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := p.Match(obs)
		if err != nil || !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkCorrelate(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			events := make([]normalize.Event, 0, n)
			for i := 0; i < n; i++ {
				value := fmt.Sprintf("host-%d.example", i/3) // ~3 events per host cluster
				if i%3 == 1 {
					value = "http://" + value + "/path"
				}
				e, err := normalize.New(value, normalize.CategoryMalwareDomain,
					"bench", normalize.SourceOSINT, experiments.EvalTime)
				if err != nil {
					b.Fatal(err)
				}
				events = append(events, e)
			}
			c := correlate.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := c.Correlate(events); len(got) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

func BenchmarkSTIXBundleRoundTrip(b *testing.B) {
	bundle := stix.NewBundle()
	for i := 0; i < 50; i++ {
		v := stix.NewVulnerability(fmt.Sprintf("CVE-2020-%04d", i), "bench", experiments.EvalTime)
		v.SetExtra("x_caisp_threat_score", 2.5)
		bundle.Add(v)
	}
	data, err := bundle.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := stix.ParseBundle(data)
		if err != nil || len(back.Objects) != 50 {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISPToSTIX(b *testing.B) {
	e := misp.NewEvent("bench", experiments.EvalTime)
	e.AddAttribute("vulnerability", "External analysis", "CVE-2017-9805", experiments.EvalTime)
	e.AddAttribute("domain", "Network activity", "evil.example", experiments.EvalTime)
	e.AddAttribute("ip-dst", "Network activity", "203.0.113.7", experiments.EvalTime)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := misp.ToSTIX(e); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Distributed heuristic component throughput ---------------------------

func BenchmarkWorkerAnalyze(b *testing.B) {
	store, err := storage.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	service := tip.NewService(store)
	api := httptest.NewServer(tip.NewAPI(service, ""))
	defer api.Close()
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		b.Fatal(err)
	}
	w, err := worker.New(worker.Config{
		BusAddr:   "127.0.0.1:1", // Analyze is called directly; the bus stays idle
		TIP:       tip.NewClient(api.URL, ""),
		Collector: collector,
		Now:       func() time.Time { return experiments.EvalTime },
	})
	if err != nil {
		b.Fatal(err)
	}
	event, err := normalize.New("CVE-2017-9805", normalize.CategoryVulnExploit,
		"bench", normalize.SourceOSINT, experiments.EvalTime.AddDate(0, -3, 0))
	if err != nil {
		b.Fatal(err)
	}
	event.Context = map[string]string{
		"cvss-vector": "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
		"products":    "apache struts,apache",
		"os":          "debian",
	}
	ciocs := correlate.New().Correlate([]normalize.Event{event})
	me, err := correlate.ToMISP(&ciocs[0], experiments.EvalTime)
	if err != nil {
		b.Fatal(err)
	}
	// Analyze mutates the event (score attribute, eIoC tag); decode a fresh
	// copy per iteration, mirroring the worker's real receive path.
	wire, err := misp.MarshalWrapped(me)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := misp.UnmarshalWrapped(wire)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Analyze(fresh); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel ingestion pipeline ------------------------------------------

// latencyFetcher simulates a network feed: every fetch costs a fixed
// round-trip delay before the document is returned.
type latencyFetcher struct {
	data  []byte
	delay time.Duration
}

func (f *latencyFetcher) Fetch(ctx context.Context) ([]byte, bool, error) {
	select {
	case <-time.After(f.delay):
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	return f.data, false, nil
}

// latencyFeeds builds n independent OSINT feeds, each behind a simulated
// network round trip, each carrying its own slice of indicators.
func latencyFeeds(n, itemsPerFeed int, delay time.Duration) []feed.Feed {
	feeds := make([]feed.Feed, 0, n)
	for i := 0; i < n; i++ {
		var doc []byte
		for j := 0; j < itemsPerFeed; j++ {
			doc = append(doc, fmt.Sprintf("bench-%d-%d.example\n", i, j)...)
		}
		feeds = append(feeds, feed.Feed{
			Name:     fmt.Sprintf("bench-feed-%d", i),
			Category: normalize.CategoryMalwareDomain,
			Fetcher:  &latencyFetcher{data: doc, delay: delay},
			Parser:   feed.PlaintextParser{},
			Interval: time.Hour,
		})
	}
	return feeds
}

// benchmarkPipeline measures one full collect→store→analyze pass over 16
// feeds sitting behind a 2 ms simulated round trip each. Serial polls and
// analyzes one at a time; parallel uses the bounded feed worker pool and
// the analyzer pool.
func benchmarkPipeline(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := core.New(core.Config{
			Feeds:           latencyFeeds(16, 20, 2*time.Millisecond),
			Clock:           clock.NewFake(experiments.EvalTime),
			AnalyzerPool:    workers,
			FeedConcurrency: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := p.RunBatch(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if st := p.Stats(); st.EventsUnique != 320 || st.CIoCs == 0 {
			b.Fatalf("pipeline accounting off: %+v", st)
		}
		p.Close()
	}
}

func BenchmarkPipelineSerial(b *testing.B)   { benchmarkPipeline(b, 1) }
func BenchmarkPipelineParallel(b *testing.B) { benchmarkPipeline(b, 8) }

// --- Group-commit storage: PutBatch vs per-event Put ----------------------

func storeBenchEvents(b *testing.B, n int) []*misp.Event {
	b.Helper()
	events := make([]*misp.Event, n)
	for i := range events {
		e := misp.NewEvent(fmt.Sprintf("evt-%d", i), experiments.EvalTime)
		e.AddAttribute("domain", "Network activity", fmt.Sprintf("h%d.example", i), experiments.EvalTime)
		e.AddTag("caisp:cioc")
		events[i] = e
	}
	return events
}

// The durable (fsync-per-commit) configuration is where group commit
// pays: Put fsyncs once per event, PutBatch once per batch.
func BenchmarkPutSerialSync(b *testing.B) {
	store, err := storage.Open(b.TempDir(), storage.WithSync(true))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	events := storeBenchEvents(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Put(events[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutBatchSync(b *testing.B) {
	const batchSize = 64
	store, err := storage.Open(b.TempDir(), storage.WithSync(true))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	events := storeBenchEvents(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for lo := 0; lo < len(events); lo += batchSize {
		hi := lo + batchSize
		if hi > len(events) {
			hi = len(events)
		}
		if err := store.PutBatch(events[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
}

// Memory-only variants isolate the encode/copy savings from fsync.
func BenchmarkPutSerialMemory(b *testing.B) {
	store, err := storage.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	events := storeBenchEvents(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Put(events[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutBatchMemory(b *testing.B) {
	const batchSize = 64
	store, err := storage.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	events := storeBenchEvents(b, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for lo := 0; lo < len(events); lo += batchSize {
		hi := lo + batchSize
		if hi > len(events) {
			hi = len(events)
		}
		if err := store.PutBatch(events[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Event copy: hand-written Clone vs the old JSON round trip ------------

func cloneBenchEvent() *misp.Event {
	e := misp.NewEvent("clone bench", experiments.EvalTime)
	e.AddAttribute("vulnerability", "External analysis", "CVE-2017-9805", experiments.EvalTime)
	e.AddAttribute("domain", "Network activity", "evil.example", experiments.EvalTime)
	e.AddAttribute("ip-dst", "Network activity", "203.0.113.7", experiments.EvalTime)
	o := e.AddObject("vulnerability", "vulnerability")
	o.AddAttribute("cvss-string", "External analysis",
		"CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", experiments.EvalTime)
	e.AddTag("caisp:cioc")
	e.AddTag("tlp:amber")
	return e
}

func BenchmarkEventClone(b *testing.B) {
	e := cloneBenchEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cp := e.Clone(); cp.UUID != e.UUID {
			b.Fatal("bad clone")
		}
	}
}

func BenchmarkEventCloneJSON(b *testing.B) {
	e := cloneBenchEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(e)
		if err != nil {
			b.Fatal(err)
		}
		var cp misp.Event
		if err := json.Unmarshal(data, &cp); err != nil {
			b.Fatal(err)
		}
		if cp.UUID != e.UUID {
			b.Fatal("bad copy")
		}
	}
}

// --- Ablation: temporal constraint in correlation -------------------------

func benchmarkCorrelateWindow(b *testing.B, window time.Duration) {
	events := make([]normalize.Event, 0, 600)
	for i := 0; i < 600; i++ {
		value := fmt.Sprintf("host-%d.example", i/4)
		if i%4 != 0 {
			value = fmt.Sprintf("http://host-%d.example/p%d", i/4, i%4)
		}
		e, err := normalize.New(value, normalize.CategoryMalwareDomain,
			"bench", normalize.SourceOSINT,
			experiments.EvalTime.Add(time.Duration(i)*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		events = append(events, e)
	}
	c := correlate.New(correlate.WithTimeWindow(window))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.Correlate(events); len(got) == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkAblationCorrelateUnwindowed(b *testing.B) { benchmarkCorrelateWindow(b, 0) }
func BenchmarkAblationCorrelateWindowed(b *testing.B) {
	benchmarkCorrelateWindow(b, 2*time.Hour)
}

// --- X6: snapshot-isolated read path --------------------------------------
//
// Each BenchmarkRead* pair compares the copy-free snapshot read path
// against the clone-on-read baseline (storage.WithCloneReads restores the
// pre-snapshot behavior: deep copies on every read, scan-based
// UpdatedSince). Run via `make bench-read`.

// readBenchEvent builds a realistically sized event (3 loose attributes,
// one object, 2 tags — like the use-case cIoC) so the baseline's per-read
// clone cost is representative.
func readBenchEvent(i int, ts time.Time) *misp.Event {
	e := misp.NewEvent(fmt.Sprintf("read-%d", i), ts)
	e.AddAttribute("domain", "Network activity", fmt.Sprintf("r%d.example", i), ts)
	e.AddAttribute("ip-dst", "Network activity", fmt.Sprintf("203.0.%d.%d", i/250%250, i%250), ts)
	e.AddAttribute("vulnerability", "External analysis", fmt.Sprintf("CVE-2019-%04d", i%10000), ts)
	o := e.AddObject("vulnerability", "vulnerability")
	o.AddAttribute("cvss-string", "External analysis",
		"CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", ts)
	e.AddTag("caisp:cioc")
	e.AddTag("tlp:amber")
	return e
}

const readBenchStoreSize = 5000

func seedReadStore(b *testing.B, opts ...storage.Option) *storage.Store {
	b.Helper()
	store, err := storage.Open("", opts...)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]*misp.Event, 0, 250)
	for i := 0; i < readBenchStoreSize; i++ {
		batch = append(batch, readBenchEvent(i, experiments.EvalTime.Add(time.Duration(i)*time.Second)))
		if len(batch) == cap(batch) {
			if err := store.PutBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	return store
}

// startIngest keeps committing fresh 64-event batches until stopped —
// the sustained write load the readers contend with. Writer events carry
// timestamps far in the past so the UpdatedSince result set stays fixed.
func startIngest(b *testing.B, store *storage.Store) (stop func()) {
	b.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 1 << 20
		old := experiments.EvalTime.Add(-24 * time.Hour)
		for {
			select {
			case <-done:
				return
			default:
			}
			batch := make([]*misp.Event, 64)
			for j := range batch {
				batch[j] = readBenchEvent(i, old)
				i++
			}
			if err := store.PutBatch(batch); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

func benchmarkReadSearchUnderIngest(b *testing.B, opts ...storage.Option) {
	store := seedReadStore(b, opts...)
	defer store.Close()
	stop := startIngest(b, store)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			hits, err := store.SearchValue(fmt.Sprintf("r%d.example", i%readBenchStoreSize))
			if err != nil || len(hits) != 1 {
				b.Fatalf("hits=%d err=%v", len(hits), err)
			}
			i++
		}
	})
	b.StopTimer()
	stop()
}

func BenchmarkReadSearchUnderIngestSnapshot(b *testing.B) {
	benchmarkReadSearchUnderIngest(b)
}

func BenchmarkReadSearchUnderIngestCloneBaseline(b *testing.B) {
	benchmarkReadSearchUnderIngest(b, storage.WithCloneReads(true))
}

func benchmarkReadUpdatedSinceUnderIngest(b *testing.B, opts ...storage.Option) {
	store := seedReadStore(b, opts...)
	defer store.Close()
	stop := startIngest(b, store)
	// The sync cut keeps the last 100 seeded events in range (k=100).
	cut := experiments.EvalTime.Add(time.Duration(readBenchStoreSize-100) * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			hits, err := store.UpdatedSince(cut)
			if err != nil || len(hits) != 100 {
				b.Fatalf("hits=%d err=%v", len(hits), err)
			}
		}
	})
	b.StopTimer()
	stop()
}

func BenchmarkReadUpdatedSinceUnderIngestIndexed(b *testing.B) {
	benchmarkReadUpdatedSinceUnderIngest(b)
}

func BenchmarkReadUpdatedSinceUnderIngestScanBaseline(b *testing.B) {
	benchmarkReadUpdatedSinceUnderIngest(b, storage.WithCloneReads(true))
}

func benchmarkReadGet(b *testing.B, opts ...storage.Option) {
	store := seedReadStore(b, opts...)
	defer store.Close()
	uuids := make([]string, 0, readBenchStoreSize)
	all, err := store.All()
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range all {
		uuids = append(uuids, e.UUID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := store.Get(uuids[i%len(uuids)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkReadGetSnapshot(b *testing.B) { benchmarkReadGet(b) }
func BenchmarkReadGetCloneBaseline(b *testing.B) {
	benchmarkReadGet(b, storage.WithCloneReads(true))
}

// Encode-once publishing: the cached wire encoding vs a fresh marshal per
// publish/GET.
func BenchmarkReadWrappedJSONCached(b *testing.B) {
	store, err := storage.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	e := cloneBenchEvent()
	if err := store.Put(e); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := store.WrappedJSON(e.UUID)
		if err != nil || len(data) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadWrappedJSONMarshalBaseline(b *testing.B) {
	e := cloneBenchEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := misp.MarshalWrapped(e)
		if err != nil || len(data) == 0 {
			b.Fatal(err)
		}
	}
}

// --- X7: pause-free durability --------------------------------------------
//
// Write-tail latency during checkpoints and recovery speed after them.
// Each BenchmarkDurabilityPut* variant measures per-operation latency
// percentiles for Put (or PutBatch) against a ≥50k-event store while a
// compaction loop runs concurrently; the Blocking variant restores the
// old stop-the-world Compact (storage.WithBlockingCompaction) as the
// ablation baseline. BenchmarkDurabilityOpenRecovery* measures cold
// Open on the same store with the parallel decoder vs the serial
// ablation (storage.WithRecoveryWorkers(1)). Run via
// `make bench-durability`.

const durabilityStoreSize = 50000

// seedDurabilityStore fills a store with durabilityStoreSize events in
// group-committed batches.
func seedDurabilityStore(b *testing.B, store *storage.Store) {
	b.Helper()
	batch := make([]*misp.Event, 0, 500)
	for i := 0; i < durabilityStoreSize; i++ {
		batch = append(batch, readBenchEvent(i, experiments.EvalTime.Add(time.Duration(i)*time.Second)))
		if len(batch) == cap(batch) {
			if err := store.PutBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
}

// reportLatencyPercentiles attaches p50/p99/max per-op latency metrics to
// the benchmark result — the stall profile ns/op alone averages away.
func reportLatencyPercentiles(b *testing.B, lats []time.Duration) {
	b.Helper()
	if len(lats) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), lats...)
	slices.Sort(sorted)
	b.ReportMetric(float64(sorted[len(sorted)*50/100]), "p50-ns")
	b.ReportMetric(float64(sorted[len(sorted)*99/100]), "p99-ns")
	b.ReportMetric(float64(sorted[len(sorted)*999/1000]), "p999-ns")
	b.ReportMetric(float64(sorted[len(sorted)-1]), "max-ns")
}

// durabilityBenchEvents builds n write-load events whose timestamps
// continue the seeded store's monotonic range, matching real ingest
// (fresh indicators arrive newest-last, appending to the time index).
func durabilityBenchEvents(b *testing.B, n int) []*misp.Event {
	b.Helper()
	events := make([]*misp.Event, n)
	for i := range events {
		events[i] = readBenchEvent(durabilityStoreSize+i,
			experiments.EvalTime.Add(time.Duration(durabilityStoreSize+i)*time.Second))
	}
	return events
}

// startCompactLoop runs checkpoints concurrently with the measured
// writes: a compaction every 20 ms, mirroring a threshold-triggered
// background compactor rather than a disk-saturating busy loop. The
// returned stop function reports how many snapshots completed so runs
// that never overlapped a checkpoint are detectable.
func startCompactLoop(b *testing.B, store *storage.Store, mode string) (stop func()) {
	b.Helper()
	if mode == "steady" {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				if err := store.Compact(); err != nil {
					b.Error(err)
					return
				}
				select {
				case <-done:
					return
				case <-time.After(20 * time.Millisecond):
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		b.ReportMetric(float64(store.Durability().Compactions), "compactions")
	}
}

// benchmarkDurabilityPut measures single-Put latency against a seeded
// store. mode selects the concurrent checkpoint activity: "steady" (no
// compaction), "compact" (the streaming off-lock Compact looping in the
// background) or "blocking" (the stop-the-world ablation looping).
func benchmarkDurabilityPut(b *testing.B, mode string) {
	var opts []storage.Option
	if mode == "blocking" {
		opts = append(opts, storage.WithBlockingCompaction(true))
	}
	store, err := storage.Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	seedDurabilityStore(b, store)

	stop := startCompactLoop(b, store, mode)
	events := durabilityBenchEvents(b, b.N)
	lats := make([]time.Duration, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := store.Put(events[i]); err != nil {
			b.Fatal(err)
		}
		lats[i] = time.Since(t0)
	}
	b.StopTimer()
	stop()
	reportLatencyPercentiles(b, lats)
}

func BenchmarkDurabilityPutSteady(b *testing.B)          { benchmarkDurabilityPut(b, "steady") }
func BenchmarkDurabilityPutUnderCompaction(b *testing.B) { benchmarkDurabilityPut(b, "compact") }
func BenchmarkDurabilityPutUnderBlockingCompaction(b *testing.B) {
	benchmarkDurabilityPut(b, "blocking")
}

// benchmarkDurabilityPutBatch is the batch analogue: per-batch (64
// events) commit latency with the streaming or blocking compactor
// racing it.
func benchmarkDurabilityPutBatch(b *testing.B, mode string) {
	const batchSize = 64
	var opts []storage.Option
	if mode == "blocking" {
		opts = append(opts, storage.WithBlockingCompaction(true))
	}
	store, err := storage.Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	seedDurabilityStore(b, store)

	stop := startCompactLoop(b, store, mode)
	events := durabilityBenchEvents(b, b.N*batchSize)
	lats := make([]time.Duration, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := store.PutBatch(events[i*batchSize : (i+1)*batchSize]); err != nil {
			b.Fatal(err)
		}
		lats[i] = time.Since(t0)
	}
	b.StopTimer()
	stop()
	reportLatencyPercentiles(b, lats)
}

func BenchmarkDurabilityPutBatchSteady(b *testing.B) { benchmarkDurabilityPutBatch(b, "steady") }
func BenchmarkDurabilityPutBatchUnderCompaction(b *testing.B) {
	benchmarkDurabilityPutBatch(b, "compact")
}
func BenchmarkDurabilityPutBatchUnderBlockingCompaction(b *testing.B) {
	benchmarkDurabilityPutBatch(b, "blocking")
}

// benchmarkDurabilityOpen measures cold recovery of a 50k-event store —
// a streamed snapshot plus a 5k-operation WAL tail — with the given
// number of decode workers (0 = GOMAXPROCS, 1 = serial ablation).
func benchmarkDurabilityOpen(b *testing.B, workers int) {
	dir := b.TempDir()
	store, err := storage.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	seedDurabilityStore(b, store)
	if err := store.Compact(); err != nil {
		b.Fatal(err)
	}
	tail := durabilityBenchEvents(b, 5000)
	for len(tail) > 0 {
		n := min(500, len(tail))
		if err := store.PutBatch(tail[:n]); err != nil {
			b.Fatal(err)
		}
		tail = tail[n:]
	}
	if err := store.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := storage.Open(dir, storage.WithRecoveryWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != durabilityStoreSize+5000 {
			b.Fatalf("recovered %d events", s.Len())
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkDurabilityOpenRecoveryParallel(b *testing.B) { benchmarkDurabilityOpen(b, 0) }
func BenchmarkDurabilityOpenRecoverySerial(b *testing.B)   { benchmarkDurabilityOpen(b, 1) }

// --- X8: incremental cross-batch correlation -------------------------------
//
// The streaming correlator folds each flush into a persistent cluster
// index in amortized O(keys-in-batch); the WithRecorrelateAll ablation
// restores the old behavior of re-correlating the full event history on
// every flush (O(history) per flush, superlinear over a run). Run via
// `make bench-correlate`.

// streamBenchEvents builds n malware-domain events starting at index
// base. In the merge-heavy shape hosts share one of 64 registered
// domains, so flushes continuously grow and merge existing clusters; in
// the singleton-heavy shape every host is unique and flushes mostly open
// fresh clusters.
func streamBenchEvents(b *testing.B, base, n int, mergeHeavy bool) []normalize.Event {
	b.Helper()
	events := make([]normalize.Event, 0, n)
	for i := base; i < base+n; i++ {
		var v string
		if mergeHeavy {
			v = fmt.Sprintf("s%d.camp%d.example", i, i%64)
		} else {
			v = fmt.Sprintf("host-%d.unique-%d.example", i, i)
		}
		e, err := normalize.New(v, normalize.CategoryMalwareDomain,
			"bench", normalize.SourceOSINT,
			experiments.EvalTime.Add(time.Duration(i)*time.Second))
		if err != nil {
			b.Fatal(err)
		}
		events = append(events, e)
	}
	return events
}

const correlateFlushSize = 256

// BenchmarkCorrelateStream drives a whole stream through the correlator
// in flush-sized batches, incremental vs the recorrelate-all ablation,
// across stream sizes and cluster shapes. ns/op is the cost of the full
// stream; the events/s metric makes the scaling comparable across sizes
// (incremental stays ~flat, recorrelate-all degrades with size).
func BenchmarkCorrelateStream(b *testing.B) {
	modes := []struct {
		name string
		opts []correlate.Option
	}{
		{"incremental", nil},
		{"recorrelate-all", []correlate.Option{correlate.WithRecorrelateAll(true)}},
	}
	shapes := []struct {
		name       string
		mergeHeavy bool
	}{
		{"merge-heavy", true},
		{"singleton-heavy", false},
	}
	for _, mode := range modes {
		for _, shape := range shapes {
			for _, n := range []int{1000, 10000, 50000} {
				name := fmt.Sprintf("%s/%s/events=%d", mode.name, shape.name, n)
				b.Run(name, func(b *testing.B) {
					events := streamBenchEvents(b, 0, n, shape.mergeHeavy)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						inc := correlate.NewIncremental(mode.opts...)
						b.StartTimer()
						clusters := 0
						for lo := 0; lo < len(events); lo += correlateFlushSize {
							hi := min(lo+correlateFlushSize, len(events))
							d := inc.Add(events[lo:hi])
							clusters += len(d.New) - len(d.Removed)
						}
						if clusters == 0 {
							b.Fatal("no clusters")
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
				})
			}
		}
	}
}

// BenchmarkCorrelateFlush isolates the per-flush cost: one 256-event
// flush of fresh indicators folded into a correlator that already holds
// `preload` clustered events. The acceptance bar is that the
// 50k-preloaded flush stays within ~2× of the empty-correlator flush —
// per-flush work must not scale with the stored history. (A flush that
// grows an existing cluster additionally pays O(members) to compose that
// cluster's MISP edit; that is output-size cost, not history cost, so
// the measured flushes are singleton batches.)
func BenchmarkCorrelateFlush(b *testing.B) {
	for _, preload := range []int{0, 50000} {
		b.Run(fmt.Sprintf("preload=%d", preload), func(b *testing.B) {
			inc := correlate.NewIncremental()
			pre := streamBenchEvents(b, 0, preload, true)
			for lo := 0; lo < len(pre); lo += correlateFlushSize {
				hi := min(lo+correlateFlushSize, len(pre))
				inc.Add(pre[lo:hi])
			}
			fresh := streamBenchEvents(b, preload, b.N*correlateFlushSize, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := inc.Add(fresh[i*correlateFlushSize : (i+1)*correlateFlushSize])
				if d.Empty() {
					b.Fatal("empty delta")
				}
			}
		})
	}
}
