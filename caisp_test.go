package caisp_test

import (
	"context"
	"testing"
	"time"

	"github.com/caisplatform/caisp"
	"github.com/caisplatform/caisp/internal/experiments"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	feeds, err := caisp.SyntheticFeeds(42, 60, 0.2, 0.1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 6 {
		t.Fatalf("feeds = %d", len(feeds))
	}
	platform, err := caisp.New(caisp.Config{Feeds: feeds})
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()

	if _, err := platform.ReportAlarm(caisp.Alarm{
		NodeID:      "node4",
		Severity:    caisp.SeverityHigh,
		Description: "struts probe",
		Application: "apache",
	}); err != nil {
		t.Fatal(err)
	}
	if err := platform.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := platform.Stats()
	if stats.EventsCollected == 0 || stats.EIoCs == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(platform.Dashboard().RIoCs()) == 0 {
		t.Fatal("no rIoCs through the public API")
	}
}

func TestPublicScore(t *testing.T) {
	ioc := experiments.UseCaseIoC()

	// With the paper inventory and the paper's evaluation instant, Score
	// reproduces the use case.
	res, err := caisp.Score(ioc, caisp.PaperInventory(), experiments.EvalTime)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 2.7407 {
		t.Fatalf("Score = %v, want 2.7407", res.Score)
	}
	// Without an inventory the accuracy-style features degrade and the
	// score drops.
	bare, err := caisp.Score(ioc, nil, experiments.EvalTime)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Score >= res.Score {
		t.Fatalf("no-inventory score %v not below %v", bare.Score, res.Score)
	}
}

func TestPublicParseBundle(t *testing.T) {
	raw := `{"type":"bundle","id":"bundle--6ba7b810-9dad-11d1-80b4-00c04fd430c8",
	  "spec_version":"2.0","objects":[
	  {"type":"vulnerability","id":"vulnerability--6ba7b810-9dad-11d1-80b4-00c04fd430c8",
	   "created":"2017-09-13T00:00:00.000Z","modified":"2017-09-13T00:00:00.000Z",
	   "name":"CVE-2017-9805"}]}`
	bundle, err := caisp.ParseBundle([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Objects) != 1 {
		t.Fatalf("objects = %d", len(bundle.Objects))
	}
}

func TestPaperInventoryExported(t *testing.T) {
	inv := caisp.PaperInventory()
	if len(inv.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(inv.Nodes))
	}
	if got := inv.Match([]string{"apache"}); len(got.NodeIDs) != 1 {
		t.Fatalf("match = %+v", got)
	}
}

func TestPublicBuildReport(t *testing.T) {
	feeds, err := caisp.SyntheticFeeds(7, 30, 0.1, 0.1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := caisp.New(caisp.Config{Feeds: feeds})
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()
	if err := platform.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	r := caisp.BuildReport(platform, 5, time.Now())
	md := r.Markdown()
	if len(md) == 0 || r.Pipeline.EventsCollected == 0 {
		t.Fatalf("report = %+v", r)
	}
}
