// Instrumentation-overhead ablation (EXPERIMENTS.md §X9): the same
// end-to-end pipeline batch with the observability layer live
// (registry + per-event tracer) versus disabled (every metric handle
// nil, so each instrumentation site is a single pointer check).
package caisp_test

import (
	"context"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/experiments"
	"github.com/caisplatform/caisp/internal/feedgen"
)

func benchmarkObsPipeline(b *testing.B, disable bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gen := feedgen.New(feedgen.Config{
			Seed: int64(i), Items: 200,
			DuplicationRate: 0.2, OverlapRate: 0.15,
		})
		feeds, err := gen.Feeds(time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.New(core.Config{
			Feeds:          feeds,
			Clock:          clock.NewFake(experiments.EvalTime),
			DisableMetrics: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := p.RunBatch(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if !disable {
			// The instrumented run must actually have traced events, or
			// the comparison is vacuous.
			if p.Metrics() == nil || p.Tracer() == nil {
				b.Fatal("instrumented run has no observability layer")
			}
		}
		p.Close()
	}
}

func BenchmarkObsPipelineInstrumented(b *testing.B) { benchmarkObsPipeline(b, false) }
func BenchmarkObsPipelineNoop(b *testing.B)         { benchmarkObsPipeline(b, true) }
