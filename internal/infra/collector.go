package infra

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/stixpattern"
	"github.com/caisplatform/caisp/internal/uuid"
)

// Collector aggregates infrastructure-side threat data: the inventory,
// alarms and internal IoCs. Safe for concurrent use.
type Collector struct {
	mu        sync.RWMutex
	inventory *Inventory
	alarms    []Alarm
	internal  []normalize.Event
}

// NewCollector wraps an inventory.
func NewCollector(inv *Inventory) (*Collector, error) {
	if inv == nil {
		return nil, fmt.Errorf("infra: nil inventory")
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return &Collector{inventory: inv}, nil
}

// Inventory returns the wrapped inventory (treat as read-only).
func (c *Collector) Inventory() *Inventory {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inventory
}

// AddAlarm records an alarm; the node must exist. An empty ID is assigned.
func (c *Collector) AddAlarm(a Alarm) (Alarm, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inventory.Node(a.NodeID) == nil {
		return Alarm{}, fmt.Errorf("infra: alarm references unknown node %q", a.NodeID)
	}
	if a.Severity < SeverityLow || a.Severity > SeverityHigh {
		return Alarm{}, fmt.Errorf("infra: alarm has invalid severity %d", a.Severity)
	}
	if a.ID == "" {
		a.ID = uuid.NewV4().String()
	}
	if a.At.IsZero() {
		a.At = time.Now().UTC()
	}
	c.alarms = append(c.alarms, a)
	return a, nil
}

// Alarms returns all alarms, newest last.
func (c *Collector) Alarms() []Alarm {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Alarm, len(c.alarms))
	copy(out, c.alarms)
	return out
}

// AlarmsForNode returns the node's alarms.
func (c *Collector) AlarmsForNode(nodeID string) []Alarm {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Alarm
	for _, a := range c.alarms {
		if a.NodeID == nodeID {
			out = append(out, a)
		}
	}
	return out
}

// AlarmsMatchingApplication returns alarms whose application or description
// mentions the keyword — the vuln_app_in_alarm feature ("check if
// incidents/alarms are related to specific applications", Table IV).
func (c *Collector) AlarmsMatchingApplication(keyword string) []Alarm {
	keyword = strings.ToLower(strings.TrimSpace(keyword))
	if keyword == "" {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Alarm
	for _, a := range c.alarms {
		if strings.Contains(strings.ToLower(a.Application), keyword) ||
			strings.Contains(strings.ToLower(a.Description), keyword) {
			out = append(out, a)
		}
	}
	return out
}

// SeverityCounts tallies a node's alarms per severity (the dashboard's
// circle indicator).
func (c *Collector) SeverityCounts(nodeID string) map[Severity]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[Severity]int, 3)
	for _, a := range c.alarms {
		if a.NodeID == nodeID {
			out[a.Severity]++
		}
	}
	return out
}

// AddInternalIoC records an indicator produced inside the infrastructure
// (hashes, signatures, IPs, domains, URLs — §III-A2). The value is
// normalized; the event is tagged with SourceInfrastructure.
func (c *Collector) AddInternalIoC(value, category, source string, seen time.Time) (normalize.Event, error) {
	e, err := normalize.New(value, category, source, normalize.SourceInfrastructure, seen)
	if err != nil {
		return normalize.Event{}, err
	}
	c.mu.Lock()
	c.internal = append(c.internal, e)
	c.mu.Unlock()
	return e, nil
}

// InternalEvents returns the recorded internal IoCs.
func (c *Collector) InternalEvents() []normalize.Event {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]normalize.Event, len(c.internal))
	copy(out, c.internal)
	return out
}

// HasInternalSighting reports whether the infrastructure itself has
// reported the given canonical indicator value (any category) — the
// source_diversity feature's "infrastructure_source" attribute.
func (c *Collector) HasInternalSighting(canonicalValue string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, e := range c.internal {
		if e.Value == canonicalValue {
			return true
		}
	}
	return false
}

// Observations renders internal IoCs and alarms as STIX pattern
// observations so indicator patterns can be matched against the
// infrastructure's own telemetry.
func (c *Collector) Observations() []stixpattern.Observation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]stixpattern.Observation, 0, len(c.internal)+len(c.alarms))
	for _, e := range c.internal {
		out = append(out, stixpattern.Observation{
			At:     e.LastSeen,
			Fields: e.ObservationFields(),
		})
	}
	for _, a := range c.alarms {
		fields := make(map[string][]string, 2)
		if a.SrcIP != "" {
			fields["ipv4-addr:value"] = append(fields["ipv4-addr:value"], a.SrcIP)
		}
		if a.DstIP != "" {
			fields["ipv4-addr:value"] = append(fields["ipv4-addr:value"], a.DstIP)
		}
		if len(fields) == 0 {
			continue
		}
		out = append(out, stixpattern.Observation{At: a.At, Fields: fields})
	}
	return out
}

// ApplicationKeywords returns the union of all inventory application
// keywords plus common keywords, sorted — the vocabulary the heuristic
// extracts product terms against.
func (c *Collector) ApplicationKeywords() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := make(map[string]bool)
	for _, n := range c.inventory.Nodes {
		for _, app := range n.Applications {
			set[strings.ToLower(app)] = true
		}
		if n.OS != "" {
			set[strings.ToLower(n.OS)] = true
		}
	}
	for _, k := range c.inventory.CommonKeywords {
		set[strings.ToLower(k)] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
