// Package infra implements the Infrastructure Data Collector (paper
// §III-A2): the system inventory (nodes and their installed applications),
// alarms raised by monitoring devices, and internal indicators of
// compromise. The heuristic component contrasts OSINT IoCs against this
// data ("a system inventory containing the nodes and their installed
// applications is required to perform the match", §III-C1), and the
// matching rule of §IV applies: an application match associates the rIoC
// with specific nodes, a common-keyword match (e.g. "linux") with all
// nodes, no match suppresses the rIoC.
package infra

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one asset of the monitored infrastructure.
type Node struct {
	// ID is a short unique identifier ("node1").
	ID string `json:"id"`
	// Name is the human-readable asset name ("OwnCloud").
	Name string `json:"name"`
	// Type classifies the asset (e.g. "Server", "Workstation").
	Type string `json:"type,omitempty"`
	// OS is the operating system keyword ("ubuntu", "debian").
	OS string `json:"os,omitempty"`
	// IPs are the node's addresses.
	IPs []string `json:"ips,omitempty"`
	// Networks lists connected networks ("LAN", "WAN").
	Networks []string `json:"networks,omitempty"`
	// Applications are installed-application keywords, lower-case.
	Applications []string `json:"applications"`
}

// HasApplication reports whether the node lists the (case-insensitive)
// application keyword.
func (n *Node) HasApplication(app string) bool {
	app = strings.ToLower(strings.TrimSpace(app))
	for _, a := range n.Applications {
		if strings.ToLower(a) == app {
			return true
		}
	}
	return false
}

// Inventory is the set of monitored nodes plus keywords that apply to every
// node (paper Table III's "All Nodes: linux" row).
type Inventory struct {
	// Nodes are the monitored assets.
	Nodes []Node `json:"nodes"`
	// CommonKeywords match every node.
	CommonKeywords []string `json:"common_keywords,omitempty"`
}

// MatchResult reports how a set of search terms matched the inventory.
type MatchResult struct {
	// NodeIDs are the specific nodes whose applications matched.
	NodeIDs []string
	// AllNodes is true when a common keyword matched: the result applies
	// to the whole infrastructure.
	AllNodes bool
	// MatchedTerms are the terms that hit, lower-cased.
	MatchedTerms []string
}

// Matched reports whether anything matched at all.
func (m MatchResult) Matched() bool { return m.AllNodes || len(m.NodeIDs) > 0 }

// Nodes resolves the result to concrete node IDs against inv.
func (m MatchResult) Nodes(inv *Inventory) []string {
	if m.AllNodes {
		ids := make([]string, 0, len(inv.Nodes))
		for _, n := range inv.Nodes {
			ids = append(ids, n.ID)
		}
		sort.Strings(ids)
		return ids
	}
	out := make([]string, len(m.NodeIDs))
	copy(out, m.NodeIDs)
	sort.Strings(out)
	return out
}

// Match applies the paper's §IV matching rule to a set of terms (typically
// product names extracted from an IoC): terms matching node applications
// select those nodes; terms matching a common keyword select all nodes.
func (inv *Inventory) Match(terms []string) MatchResult {
	var res MatchResult
	nodeSet := make(map[string]bool)
	matched := make(map[string]bool)
	for _, raw := range terms {
		term := strings.ToLower(strings.TrimSpace(raw))
		if term == "" {
			continue
		}
		for _, common := range inv.CommonKeywords {
			if strings.ToLower(common) == term {
				res.AllNodes = true
				matched[term] = true
			}
		}
		for i := range inv.Nodes {
			if inv.Nodes[i].HasApplication(term) || strings.ToLower(inv.Nodes[i].OS) == term {
				nodeSet[inv.Nodes[i].ID] = true
				matched[term] = true
			}
		}
	}
	for id := range nodeSet {
		res.NodeIDs = append(res.NodeIDs, id)
	}
	sort.Strings(res.NodeIDs)
	for term := range matched {
		res.MatchedTerms = append(res.MatchedTerms, term)
	}
	sort.Strings(res.MatchedTerms)
	return res
}

// Node returns the node with the given ID, or nil.
func (inv *Inventory) Node(id string) *Node {
	for i := range inv.Nodes {
		if inv.Nodes[i].ID == id {
			return &inv.Nodes[i]
		}
	}
	return nil
}

// Validate checks inventory invariants.
func (inv *Inventory) Validate() error {
	seen := make(map[string]bool, len(inv.Nodes))
	for _, n := range inv.Nodes {
		if n.ID == "" {
			return fmt.Errorf("infra: node %q has empty id", n.Name)
		}
		if seen[n.ID] {
			return fmt.Errorf("infra: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		if len(n.Applications) == 0 {
			return fmt.Errorf("infra: node %q lists no applications", n.ID)
		}
	}
	return nil
}

// ParseInventory decodes an inventory from JSON and validates it.
func ParseInventory(data []byte) (*Inventory, error) {
	var inv Inventory
	if err := json.Unmarshal(data, &inv); err != nil {
		return nil, fmt.Errorf("infra: decode inventory: %w", err)
	}
	if err := inv.Validate(); err != nil {
		return nil, err
	}
	return &inv, nil
}

// PaperInventory reproduces Table III of the paper: four nodes plus the
// common keyword "linux" that matches all nodes.
func PaperInventory() *Inventory {
	return &Inventory{
		Nodes: []Node{
			{
				ID: "node1", Name: "OwnCloud", Type: "Server", OS: "ubuntu",
				IPs: []string{"10.0.0.11"}, Networks: []string{"LAN"},
				Applications: []string{"ubuntu", "owncloud", "ossec", "snort", "suricata", "nids", "hids"},
			},
			{
				ID: "node2", Name: "GitLab", Type: "Server", OS: "ubuntu",
				IPs: []string{"10.0.0.12"}, Networks: []string{"LAN"},
				Applications: []string{"ubuntu", "gitlab", "ossec", "snort", "suricata", "nids", "hids"},
			},
			{
				ID: "node3", Name: "XL-SIEM", Type: "Server", OS: "ubuntu",
				IPs: []string{"10.0.0.13"}, Networks: []string{"LAN", "WAN"},
				Applications: []string{"ubuntu", "snort", "suricata", "nids", "php"},
			},
			{
				ID: "node4", Name: "XL-SIEM", Type: "Server", OS: "debian",
				IPs: []string{"10.0.0.14"}, Networks: []string{"LAN", "WAN"},
				Applications: []string{"debian", "apache", "apache storm", "apache zookeeper", "server"},
			},
		},
		CommonKeywords: []string{"linux"},
	}
}

// Severity bands an alarm. The dashboard renders them as green, yellow and
// red circles (paper §III-C1).
type Severity int

// Alarm severities.
const (
	SeverityLow Severity = iota + 1
	SeverityMedium
	SeverityHigh
)

// String returns the dashboard colour name of the severity.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "green"
	case SeverityMedium:
		return "yellow"
	case SeverityHigh:
		return "red"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its colour name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts colour names and severity words.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch strings.ToLower(name) {
	case "green", "low":
		*s = SeverityLow
	case "yellow", "medium":
		*s = SeverityMedium
	case "red", "high":
		*s = SeverityHigh
	default:
		return fmt.Errorf("infra: unknown severity %q", name)
	}
	return nil
}

// Alarm is one issue raised by the infrastructure's monitoring devices.
// "Alarms will indicate the number of issues, IP source and destination, as
// well as a brief description of the issue" (§III-C1).
type Alarm struct {
	ID          string    `json:"id"`
	NodeID      string    `json:"node_id"`
	Severity    Severity  `json:"severity"`
	SrcIP       string    `json:"src_ip,omitempty"`
	DstIP       string    `json:"dst_ip,omitempty"`
	Description string    `json:"description"`
	Application string    `json:"application,omitempty"`
	At          time.Time `json:"at"`
}
