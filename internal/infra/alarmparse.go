package infra

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// alarmLineRE matches the snort-style syslog alert lines emitted by the
// paper's monitoring devices (snort/suricata on the Table III nodes):
//
//	Jun 24 12:00:01 node4 snort[1234]: [1:2019401:3] ET WEB Apache Struts
//	RCE attempt {TCP} 198.51.100.9:4444 -> 10.0.0.14:8080 [Priority: 1]
//
// Capture groups: timestamp, host, program, signature ids, message, proto,
// source ip:port, destination ip:port, priority.
var alarmLineRE = regexp.MustCompile(
	`^(\w{3} {1,2}\d{1,2} \d{2}:\d{2}:\d{2}) (\S+) (\w+)(?:\[\d+\])?: ` +
		`\[([\d:]+)\] (.*?) \{(\w+)\} ` +
		`(\d{1,3}(?:\.\d{1,3}){3})(?::\d+)? -> (\d{1,3}(?:\.\d{1,3}){3})(?::\d+)?` +
		`(?: \[Priority: (\d)\])?\s*$`)

// ParseAlarmLine parses one snort-style syslog alert line into an Alarm.
// Priorities map 1 → red, 2 → yellow, anything else → green; a missing
// priority defaults to yellow. The year (absent from syslog timestamps) is
// taken from refTime, as is the location.
func ParseAlarmLine(line string, refTime time.Time) (Alarm, error) {
	m := alarmLineRE.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Alarm{}, fmt.Errorf("infra: unparsable alarm line %q", line)
	}
	ts, err := time.ParseInLocation("Jan 2 15:04:05", squeezeSpaces(m[1]), refTime.Location())
	if err != nil {
		return Alarm{}, fmt.Errorf("infra: bad alarm timestamp %q: %w", m[1], err)
	}
	ts = ts.AddDate(refTime.Year(), 0, 0)
	if ts.After(refTime.AddDate(0, 0, 1)) {
		// A December line read in January belongs to the previous year.
		ts = ts.AddDate(-1, 0, 0)
	}

	severity := SeverityMedium
	if m[9] != "" {
		prio, err := strconv.Atoi(m[9])
		if err == nil {
			switch prio {
			case 1:
				severity = SeverityHigh
			case 2:
				severity = SeverityMedium
			default:
				severity = SeverityLow
			}
		}
	}
	return Alarm{
		NodeID:      m[2],
		Severity:    severity,
		SrcIP:       m[7],
		DstIP:       m[8],
		Description: fmt.Sprintf("%s [%s] %s", m[3], m[4], m[5]),
		At:          ts,
	}, nil
}

// IngestAlarmLines parses a batch of alert lines and records each alarm
// whose node exists in the inventory, returning the stored alarms and the
// lines that failed (unparsable or unknown node) keyed by line number.
func (c *Collector) IngestAlarmLines(lines []string, refTime time.Time) ([]Alarm, map[int]error) {
	var stored []Alarm
	failed := make(map[int]error)
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		alarm, err := ParseAlarmLine(line, refTime)
		if err != nil {
			failed[i] = err
			continue
		}
		saved, err := c.AddAlarm(alarm)
		if err != nil {
			failed[i] = err
			continue
		}
		stored = append(stored, saved)
	}
	if len(failed) == 0 {
		return stored, nil
	}
	return stored, failed
}

func squeezeSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
