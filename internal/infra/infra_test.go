package infra

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/stixpattern"
)

var now = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

func TestPaperInventoryTableIII(t *testing.T) {
	inv := PaperInventory()
	if err := inv.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inv.Nodes) != 4 {
		t.Fatalf("got %d nodes, want 4 (Table III)", len(inv.Nodes))
	}
	tests := []struct {
		id   string
		name string
		app  string
	}{
		{id: "node1", name: "OwnCloud", app: "owncloud"},
		{id: "node2", name: "GitLab", app: "gitlab"},
		{id: "node3", name: "XL-SIEM", app: "php"},
		{id: "node4", name: "XL-SIEM", app: "apache"},
	}
	for _, tt := range tests {
		n := inv.Node(tt.id)
		if n == nil {
			t.Fatalf("node %s missing", tt.id)
		}
		if n.Name != tt.name || !n.HasApplication(tt.app) {
			t.Errorf("node %s = %+v, want name %s with app %s", tt.id, n, tt.name, tt.app)
		}
	}
	if len(inv.CommonKeywords) != 1 || inv.CommonKeywords[0] != "linux" {
		t.Fatalf("common keywords = %v", inv.CommonKeywords)
	}
}

func TestMatchRuleFromSectionIV(t *testing.T) {
	inv := PaperInventory()
	tests := []struct {
		name      string
		terms     []string
		wantNodes []string
		wantAll   bool
	}{
		{
			name:      "apache struts matches node4 via apache",
			terms:     []string{"apache struts", "apache"},
			wantNodes: []string{"node4"},
		},
		{
			name:    "common keyword linux matches all nodes",
			terms:   []string{"linux"},
			wantAll: true,
		},
		{
			name:  "no match produces nothing",
			terms: []string{"windows", "iis"},
		},
		{
			name:      "os keyword matches",
			terms:     []string{"debian"},
			wantNodes: []string{"node4"},
		},
		{
			name:      "shared app matches several nodes",
			terms:     []string{"snort"},
			wantNodes: []string{"node1", "node2", "node3"},
		},
		{
			name:      "case insensitive",
			terms:     []string{"GitLab"},
			wantNodes: []string{"node2"},
		},
		{
			name:  "empty terms",
			terms: []string{"", "   "},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := inv.Match(tt.terms)
			if res.AllNodes != tt.wantAll {
				t.Fatalf("AllNodes = %v, want %v", res.AllNodes, tt.wantAll)
			}
			if len(res.NodeIDs) != len(tt.wantNodes) {
				t.Fatalf("NodeIDs = %v, want %v", res.NodeIDs, tt.wantNodes)
			}
			for i := range tt.wantNodes {
				if res.NodeIDs[i] != tt.wantNodes[i] {
					t.Fatalf("NodeIDs = %v, want %v", res.NodeIDs, tt.wantNodes)
				}
			}
			if res.Matched() != (tt.wantAll || len(tt.wantNodes) > 0) {
				t.Fatal("Matched() inconsistent")
			}
		})
	}
}

func TestMatchResultNodes(t *testing.T) {
	inv := PaperInventory()
	all := inv.Match([]string{"linux"})
	got := all.Nodes(inv)
	if len(got) != 4 {
		t.Fatalf("all-nodes resolution = %v", got)
	}
	one := inv.Match([]string{"owncloud"})
	if got := one.Nodes(inv); len(got) != 1 || got[0] != "node1" {
		t.Fatalf("single resolution = %v", got)
	}
}

func TestInventoryValidation(t *testing.T) {
	bad := &Inventory{Nodes: []Node{{ID: "", Name: "x", Applications: []string{"a"}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty id accepted")
	}
	dup := &Inventory{Nodes: []Node{
		{ID: "n", Applications: []string{"a"}},
		{ID: "n", Applications: []string{"b"}},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate id accepted")
	}
	noApps := &Inventory{Nodes: []Node{{ID: "n"}}}
	if err := noApps.Validate(); err == nil {
		t.Fatal("empty applications accepted")
	}
}

func TestParseInventory(t *testing.T) {
	data, err := json.Marshal(PaperInventory())
	if err != nil {
		t.Fatal(err)
	}
	inv, err := ParseInventory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Nodes) != 4 {
		t.Fatalf("round trip lost nodes: %d", len(inv.Nodes))
	}
	if _, err := ParseInventory([]byte(`{"nodes":[{"id":""}]}`)); err == nil {
		t.Fatal("invalid inventory accepted")
	}
	if _, err := ParseInventory([]byte(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{SeverityLow, SeverityMedium, SeverityHigh} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("round trip %v -> %v", s, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"high"`), &s); err != nil || s != SeverityHigh {
		t.Fatalf("severity word decode: %v %v", s, err)
	}
	if err := json.Unmarshal([]byte(`"purple"`), &s); err == nil {
		t.Fatal("unknown severity accepted")
	}
	if SeverityLow.String() != "green" || SeverityMedium.String() != "yellow" || SeverityHigh.String() != "red" {
		t.Fatal("severity colours wrong")
	}
}

func collector(t *testing.T) *Collector {
	t.Helper()
	c, err := NewCollector(PaperInventory())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddAlarmValidation(t *testing.T) {
	c := collector(t)
	if _, err := c.AddAlarm(Alarm{NodeID: "ghost", Severity: SeverityLow, Description: "x"}); err == nil {
		t.Fatal("alarm for unknown node accepted")
	}
	if _, err := c.AddAlarm(Alarm{NodeID: "node1", Severity: 0, Description: "x"}); err == nil {
		t.Fatal("invalid severity accepted")
	}
	a, err := c.AddAlarm(Alarm{NodeID: "node1", Severity: SeverityHigh, Description: "port scan"})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || a.At.IsZero() {
		t.Fatalf("defaults not applied: %+v", a)
	}
}

func TestAlarmQueries(t *testing.T) {
	c := collector(t)
	mustAlarm := func(nodeID string, sev Severity, app, desc string) {
		t.Helper()
		if _, err := c.AddAlarm(Alarm{NodeID: nodeID, Severity: sev, Application: app, Description: desc, At: now}); err != nil {
			t.Fatal(err)
		}
	}
	mustAlarm("node1", SeverityHigh, "owncloud", "brute force against owncloud login")
	mustAlarm("node1", SeverityLow, "", "ping sweep")
	mustAlarm("node4", SeverityMedium, "apache", "suspicious POST to apache struts endpoint")

	if got := len(c.Alarms()); got != 3 {
		t.Fatalf("Alarms = %d", got)
	}
	if got := len(c.AlarmsForNode("node1")); got != 2 {
		t.Fatalf("AlarmsForNode(node1) = %d", got)
	}
	if got := len(c.AlarmsForNode("node3")); got != 0 {
		t.Fatalf("AlarmsForNode(node3) = %d", got)
	}
	if got := c.AlarmsMatchingApplication("apache"); len(got) != 1 || got[0].NodeID != "node4" {
		t.Fatalf("AlarmsMatchingApplication(apache) = %+v", got)
	}
	if got := c.AlarmsMatchingApplication("struts"); len(got) != 1 {
		t.Fatalf("description match failed: %+v", got)
	}
	if got := c.AlarmsMatchingApplication(""); got != nil {
		t.Fatalf("empty keyword matched: %+v", got)
	}
	counts := c.SeverityCounts("node1")
	if counts[SeverityHigh] != 1 || counts[SeverityLow] != 1 || counts[SeverityMedium] != 0 {
		t.Fatalf("SeverityCounts = %+v", counts)
	}
}

func TestInternalIoCs(t *testing.T) {
	c := collector(t)
	e, err := c.AddInternalIoC("EVIL[.]example", normalize.CategoryMalwareDomain, "nids", now)
	if err != nil {
		t.Fatal(err)
	}
	if e.SourceType != normalize.SourceInfrastructure {
		t.Fatalf("source type = %q", e.SourceType)
	}
	if e.Value != "evil.example" {
		t.Fatalf("not normalized: %q", e.Value)
	}
	if !c.HasInternalSighting("evil.example") {
		t.Fatal("sighting not found")
	}
	if c.HasInternalSighting("other.example") {
		t.Fatal("phantom sighting")
	}
	if got := c.InternalEvents(); len(got) != 1 {
		t.Fatalf("InternalEvents = %d", len(got))
	}
	if _, err := c.AddInternalIoC("  ", normalize.CategoryUnknown, "nids", now); err == nil {
		t.Fatal("empty IoC accepted")
	}
}

func TestObservationsMatchableByPatterns(t *testing.T) {
	c := collector(t)
	if _, err := c.AddInternalIoC("203.0.113.7", normalize.CategoryScanner, "nids", now); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddAlarm(Alarm{
		NodeID: "node3", Severity: SeverityHigh,
		SrcIP: "198.51.100.9", DstIP: "10.0.0.13",
		Description: "ssh brute force", At: now,
	}); err != nil {
		t.Fatal(err)
	}
	obs := c.Observations()
	if len(obs) != 2 {
		t.Fatalf("Observations = %d, want 2", len(obs))
	}
	p, err := stixpattern.Parse("[ipv4-addr:value = '198.51.100.9']")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Match(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("alarm source IP not matchable")
	}
	p2, err := stixpattern.Parse("[ipv4-addr:value = '203.0.113.7']")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := p2.Match(obs); !ok {
		t.Fatal("internal IoC not matchable")
	}
}

func TestApplicationKeywords(t *testing.T) {
	c := collector(t)
	keywords := c.ApplicationKeywords()
	joined := strings.Join(keywords, ",")
	for _, want := range []string{"apache", "owncloud", "gitlab", "php", "linux", "debian", "ubuntu"} {
		if !strings.Contains(joined, want) {
			t.Errorf("keyword %q missing from %v", want, keywords)
		}
	}
	// Sorted and unique.
	for i := 1; i < len(keywords); i++ {
		if keywords[i-1] >= keywords[i] {
			t.Fatalf("keywords not sorted/unique at %d: %v", i, keywords)
		}
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil); err == nil {
		t.Fatal("nil inventory accepted")
	}
	if _, err := NewCollector(&Inventory{Nodes: []Node{{ID: ""}}}); err == nil {
		t.Fatal("invalid inventory accepted")
	}
}
