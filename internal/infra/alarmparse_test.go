package infra

import (
	"strings"
	"testing"
	"time"
)

var refTime = time.Date(2019, 6, 24, 23, 0, 0, 0, time.UTC)

func TestParseAlarmLine(t *testing.T) {
	line := "Jun 24 12:00:01 node4 snort[1234]: [1:2019401:3] ET WEB Apache Struts RCE attempt {TCP} 198.51.100.9:4444 -> 10.0.0.14:8080 [Priority: 1]"
	alarm, err := ParseAlarmLine(line, refTime)
	if err != nil {
		t.Fatal(err)
	}
	if alarm.NodeID != "node4" {
		t.Fatalf("node = %q", alarm.NodeID)
	}
	if alarm.Severity != SeverityHigh {
		t.Fatalf("severity = %v", alarm.Severity)
	}
	if alarm.SrcIP != "198.51.100.9" || alarm.DstIP != "10.0.0.14" {
		t.Fatalf("ips = %s -> %s", alarm.SrcIP, alarm.DstIP)
	}
	if !strings.Contains(alarm.Description, "Apache Struts RCE attempt") ||
		!strings.Contains(alarm.Description, "snort") {
		t.Fatalf("description = %q", alarm.Description)
	}
	want := time.Date(2019, 6, 24, 12, 0, 1, 0, time.UTC)
	if !alarm.At.Equal(want) {
		t.Fatalf("at = %v, want %v", alarm.At, want)
	}
}

func TestParseAlarmLineVariants(t *testing.T) {
	tests := []struct {
		name     string
		line     string
		wantSev  Severity
		wantNode string
		wantErr  bool
	}{
		{
			name:     "priority 2 is yellow",
			line:     "Jun  1 08:15:30 node1 suricata: [1:100:1] port scan detected {UDP} 203.0.113.5:53 -> 10.0.0.11:53 [Priority: 2]",
			wantSev:  SeverityMedium,
			wantNode: "node1",
		},
		{
			name:     "priority 3 is green",
			line:     "Jun  1 08:15:30 node2 snort: [1:100:1] ping sweep {ICMP} 203.0.113.5 -> 10.0.0.12 [Priority: 3]",
			wantSev:  SeverityLow,
			wantNode: "node2",
		},
		{
			name:     "missing priority defaults to yellow",
			line:     "Jun  1 08:15:30 node3 snort: [1:100:1] odd traffic {TCP} 203.0.113.5:1 -> 10.0.0.13:2",
			wantSev:  SeverityMedium,
			wantNode: "node3",
		},
		{
			name:     "no ports",
			line:     "Jun  1 08:15:30 node1 hids: [5:1:1] file integrity change {TCP} 10.0.0.11 -> 10.0.0.11 [Priority: 2]",
			wantSev:  SeverityMedium,
			wantNode: "node1",
		},
		{name: "garbage", line: "not an alarm at all", wantErr: true},
		{name: "empty", line: "", wantErr: true},
		{name: "missing arrow", line: "Jun  1 08:15:30 node1 snort: [1:1:1] x {TCP} 1.2.3.4", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			alarm, err := ParseAlarmLine(tt.line, refTime)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parsed: %+v", alarm)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if alarm.Severity != tt.wantSev || alarm.NodeID != tt.wantNode {
				t.Fatalf("alarm = %+v", alarm)
			}
		})
	}
}

func TestParseAlarmLineYearWrap(t *testing.T) {
	// A December line read on January 2nd belongs to the previous year.
	janRef := time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC)
	alarm, err := ParseAlarmLine(
		"Dec 31 23:59:00 node1 snort: [1:1:1] late alert {TCP} 1.2.3.4:1 -> 5.6.7.8:2 [Priority: 1]", janRef)
	if err != nil {
		t.Fatal(err)
	}
	if alarm.At.Year() != 2019 {
		t.Fatalf("year = %d, want 2019", alarm.At.Year())
	}
}

func TestIngestAlarmLines(t *testing.T) {
	c := collector(t)
	lines := []string{
		"Jun 24 12:00:01 node4 snort[99]: [1:2019401:3] struts RCE attempt {TCP} 198.51.100.9:4444 -> 10.0.0.14:8080 [Priority: 1]",
		"", // blank lines skipped silently
		"completely broken line",
		"Jun 24 12:00:05 ghost snort: [1:1:1] unknown node {TCP} 1.2.3.4:1 -> 5.6.7.8:2 [Priority: 2]",
		"Jun 24 12:00:09 node1 suricata: [1:100:1] scan {UDP} 203.0.113.5:53 -> 10.0.0.11:53 [Priority: 3]",
	}
	stored, failed := c.IngestAlarmLines(lines, refTime)
	if len(stored) != 2 {
		t.Fatalf("stored = %d, want 2", len(stored))
	}
	if len(failed) != 2 {
		t.Fatalf("failed = %v, want 2 failures", failed)
	}
	if _, ok := failed[2]; !ok {
		t.Fatal("broken line not reported")
	}
	if _, ok := failed[3]; !ok {
		t.Fatal("unknown-node line not reported")
	}
	if got := len(c.AlarmsForNode("node4")); got != 1 {
		t.Fatalf("node4 alarms = %d", got)
	}
	// All-good batch returns a nil failure map.
	_, failed = c.IngestAlarmLines([]string{lines[0]}, refTime)
	if failed != nil {
		t.Fatalf("failures on clean batch: %v", failed)
	}
}
