package core

// End-to-end coverage of the streaming-detection wiring: patterns
// registered on the platform engine fire when the batch pipeline admits
// matching cIoCs and eIoCs, match frames reach /ws/matches watchers through
// the dashboard-mounted surface, and the analyzer's threat score is visible
// to score-gated patterns.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/subscribe"
	"github.com/caisplatform/caisp/internal/wsock"
)

func TestPlatformStreamsSubscriptionMatches(t *testing.T) {
	p := newPlatform(t, Config{
		Feeds: []feed.Feed{advisoryFeed(strutsAdvisory)},
	})
	engine := p.Subscriptions()

	cveSub, err := engine.Register("siem", "[vulnerability:name = 'CVE-2017-9805']")
	if err != nil {
		t.Fatal(err)
	}
	scoreSub, err := engine.Register("siem", "[x-caisp:threat-score > 0]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Register("siem", "[domain-name:value = 'unrelated.example']"); err != nil {
		t.Fatal(err)
	}

	// Watch the match stream through the dashboard mux, exactly as an
	// external SIEM would.
	srv := httptest.NewServer(p.Dashboard())
	defer srv.Close()
	conn, err := wsock.Dial("ws" + strings.TrimPrefix(srv.URL, "http") + "/ws/matches")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, _, err := conn.ReadMessage(); err != nil { // hello greeting
		t.Fatal(err)
	}
	frames := make(chan subscribe.EventFrame, 8)
	go func() {
		for {
			_, payload, err := conn.ReadMessage()
			if err != nil {
				close(frames)
				return
			}
			var frame subscribe.EventFrame
			if json.Unmarshal(payload, &frame) == nil {
				frames <- frame
			}
		}
	}()

	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The admitted cIoC fires the CVE pattern at the cioc stage; the
	// scored eIoC re-fires it and additionally satisfies the score gate.
	seen := map[string]map[subscribe.Stage]bool{}
	deadline := time.After(5 * time.Second)
	for len(seen[cveSub.ID]) < 2 || !seen[scoreSub.ID][subscribe.StageEIoC] {
		select {
		case frame, ok := <-frames:
			if !ok {
				t.Fatal("match stream closed early")
			}
			for _, m := range frame.Matches {
				if seen[m.SubscriptionID] == nil {
					seen[m.SubscriptionID] = map[subscribe.Stage]bool{}
				}
				seen[m.SubscriptionID][frame.Stage] = true
			}
		case <-deadline:
			t.Fatalf("incomplete match coverage: %v", seen)
		}
	}
	if seen[cveSub.ID][subscribe.StageCIoC] != true {
		t.Fatalf("CVE pattern never fired at the cioc stage: %v", seen)
	}
	if seen[scoreSub.ID][subscribe.StageCIoC] {
		t.Fatalf("score-gated pattern fired before analysis: %v", seen)
	}

	// Per-subscription counters reflect both stages.
	got, ok := engine.Get(cveSub.ID)
	if !ok || got.Matches < 2 {
		t.Fatalf("cve subscription snapshot = %+v, want >= 2 matches", got)
	}
	if st := engine.Stats(); st.Registered != 3 || st.Matches < 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPlatformSubscriptionAPIOnDashboard pins the REST mounting: the
// dashboard listener serves registration and unsubscription.
func TestPlatformSubscriptionAPIOnDashboard(t *testing.T) {
	p := newPlatform(t, Config{})
	srv := httptest.NewServer(p.Dashboard())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/subscriptions", "application/json",
		strings.NewReader(`{"client_id": "c", "pattern": "[a:b = 'x']"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("register via dashboard = %d, want 201", resp.StatusCode)
	}
	var sub subscribe.Subscription
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if p.Subscriptions().Len() != 1 {
		t.Fatal("engine did not register")
	}
}
