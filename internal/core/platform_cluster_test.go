package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/tip"
)

// ctxEvent builds a normalized event with extra correlation/heuristic
// context, the way the advisory parser would.
func ctxEvent(t *testing.T, value, category string, ctx map[string]string) normalize.Event {
	t.Helper()
	e, err := normalize.New(value, category, "test-feed", normalize.SourceOSINT, batchTime)
	if err != nil {
		t.Fatal(err)
	}
	if e.Context == nil {
		e.Context = make(map[string]string, len(ctx))
	}
	for k, v := range ctx {
		e.Context[k] = v
	}
	return e
}

// TestCrossBatchClusterEdit is the issue's end-to-end acceptance check:
// indicators of one campaign arriving in two separate flush batches must
// end up as ONE cluster under ONE stable MISP event — the second flush
// publishes an edit, not a second add — and the dashboard re-scores the
// existing rIoC in place instead of double-counting it.
func TestCrossBatchClusterEdit(t *testing.T) {
	p := newPlatform(t, Config{})
	strutsCtx := map[string]string{
		"campaign":    "op-struts-wave",
		"description": "Apache Struts exploitation campaign",
		"products":    "apache struts,apache",
		"os":          "debian",
		"cvss-vector": "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
	}

	// Flush batch 1: one CVE sighting of the campaign.
	stored, err := p.composeAndStore([]normalize.Event{
		ctxEvent(t, "CVE-2017-9805", normalize.CategoryVulnExploit, strutsCtx),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 {
		t.Fatalf("batch 1 stored %d events", len(stored))
	}
	clusterUUID := stored[0].UUID
	if err := p.analyzeAll(stored); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.CIoCs != 1 || st.ClusterEdits != 0 || st.ClustersLive != 1 {
		t.Fatalf("after batch 1: %+v", st)
	}
	riocs := p.Dashboard().RIoCs()
	if len(riocs) != 1 || riocs[0].Revision != 0 || riocs[0].EventUUID != clusterUUID {
		t.Fatalf("after batch 1 riocs = %+v", riocs)
	}

	// Flush batch 2: a different CVE of the same campaign. It must grow
	// the existing cluster and go out as a MISP edit, not a second add.
	sub := p.Broker().Subscribe(tip.TopicEventEdit)
	defer sub.Close()
	stored, err = p.composeAndStore([]normalize.Event{
		ctxEvent(t, "CVE-2017-5638", normalize.CategoryVulnExploit, strutsCtx),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 || stored[0].UUID != clusterUUID {
		t.Fatalf("batch 2 stored %+v, want edit of %s", stored, clusterUUID)
	}
	st = p.Stats()
	if st.CIoCs != 1 || st.ClusterEdits != 1 || st.ClustersLive != 1 {
		t.Fatalf("after batch 2: %+v", st)
	}
	select {
	case msg := <-sub.C():
		me, err := misp.UnmarshalWrapped(msg.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if me.UUID != clusterUUID || !me.HasTag("caisp:cioc") {
			t.Fatalf("edit topic carried %s, want cluster %s", me.UUID, clusterUUID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no misp.event.edit published for the grown cluster")
	}

	// One stored cIoC event carrying both member CVEs.
	ciocs, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:cioc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ciocs) != 1 || ciocs[0].UUID != clusterUUID {
		t.Fatalf("stored cIoCs = %d, want 1 under the stable UUID", len(ciocs))
	}
	vulns := 0
	for _, a := range ciocs[0].Attributes {
		if a.Type == "vulnerability" {
			vulns++
		}
	}
	if vulns != 2 {
		t.Fatalf("cluster event carries %d vulnerability attributes, want 2", vulns)
	}

	// Re-analysis re-scores the grown cluster: the first CVE's rIoC is
	// updated in place (revision bumped), the second appears once, and no
	// (cluster, rIoC) pair is counted twice.
	if err := p.analyzeAll(stored); err != nil {
		t.Fatal(err)
	}
	riocs = p.Dashboard().RIoCs()
	if len(riocs) != 2 {
		t.Fatalf("after re-score riocs = %+v", riocs)
	}
	seen := make(map[string]int, len(riocs))
	var rescored *heuristic.RIoC
	for i := range riocs {
		if riocs[i].EventUUID != clusterUUID {
			t.Fatalf("rIoC %s bound to %q, want %s", riocs[i].ID, riocs[i].EventUUID, clusterUUID)
		}
		seen[riocs[i].ID]++
		if riocs[i].CVE == "CVE-2017-9805" {
			rescored = &riocs[i]
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("rIoC %s counted %d times", id, n)
		}
	}
	if rescored == nil || rescored.Revision < 1 {
		t.Fatalf("first CVE not re-scored in place: %+v", rescored)
	}
}

// TestCorrelationIndexRebuildAfterRestart covers the recovery acceptance
// check: after a restart, a new sighting that correlates with a pre-crash
// cluster must merge into it — same stable UUID, edit not add — because
// New rebuilds the streaming correlator's index from the store.
func TestCorrelationIndexRebuildAfterRestart(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{DataDir: dir, Clock: clock.NewFake(batchTime)})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := p.composeAndStore([]normalize.Event{
		ctxEvent(t, "a.campaign.example", normalize.CategoryMalwareDomain, nil),
	})
	if err != nil || len(stored) != 1 {
		t.Fatalf("pre-crash flush: %v, %d stored", err, len(stored))
	}
	preCrashUUID := stored[0].UUID
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := New(Config{DataDir: dir, Clock: clock.NewFake(batchTime)})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if live := p2.Stats().ClustersLive; live != 1 {
		t.Fatalf("rebuilt clusters = %d, want 1", live)
	}
	// A post-restart sighting sharing the registered domain must land in
	// the pre-crash cluster.
	stored, err = p2.composeAndStore([]normalize.Event{
		ctxEvent(t, "b.campaign.example", normalize.CategoryMalwareDomain, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 1 || stored[0].UUID != preCrashUUID {
		t.Fatalf("post-restart flush stored %+v, want edit of %s", stored, preCrashUUID)
	}
	st := p2.Stats()
	if st.CIoCs != 0 || st.ClusterEdits != 1 || st.ClustersLive != 1 {
		t.Fatalf("post-restart stats = %+v", st)
	}
	ciocs, err := p2.TIP().Search(tip.SearchQuery{Tag: "caisp:cioc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ciocs) != 1 || ciocs[0].UUID != preCrashUUID {
		t.Fatalf("stored cIoCs = %d, want 1 under pre-crash UUID", len(ciocs))
	}
	domains := 0
	for _, a := range ciocs[0].Attributes {
		if a.Type == "domain" {
			domains++
		}
	}
	if domains != 2 {
		t.Fatalf("merged cluster carries %d domain members, want 2", domains)
	}
}

// TestStreamingClusterStress exercises the incremental correlator under
// -race: concurrent flushes growing and merging clusters, the sharded
// analyzer pool re-scoring edited clusters, dashboard reads, and
// background compaction all run at once. Values share registered domains
// so flushes continuously hit the cluster-edit path.
func TestStreamingClusterStress(t *testing.T) {
	const (
		producers = 4
		campaigns = 8
		perProd   = 50
	)
	p := newPlatform(t, Config{
		DataDir:         t.TempDir(),
		Clock:           clock.Real(),
		AnalyzerPool:    4,
		CompactEveryOps: 40,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Producers feed sightings that cluster by registered domain.
	var prodWG sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		prodWG.Add(1)
		go func(pr int) {
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				v := fmt.Sprintf("s%d-%d.camp%d.example", pr, i, (pr*perProd+i)%campaigns)
				e, err := normalize.New(v, normalize.CategoryMalwareDomain,
					"stress", normalize.SourceOSINT, time.Now())
				if err != nil {
					t.Errorf("producer %d: %v", pr, err)
					return
				}
				p.ingest(e)
				if i%10 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(pr)
	}

	// Dashboard and stats readers racing with analyzer pushes and edits.
	readCtx, stopReaders := context.WithCancel(context.Background())
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for readCtx.Err() == nil {
				p.Dashboard().RIoCs()
				p.Stats()
				if _, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:cioc"}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}

	prodWG.Wait()
	// Every producer value folds into one of the campaign clusters.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := p.Stats()
		if st.EventsUnique == producers*perProd && st.ClustersLive == campaigns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stress pipeline stalled: %+v (want %d unique, %d clusters)",
				st, producers*perProd, campaigns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopReaders()
	readers.Wait()
	p.Stop()

	st := p.Stats()
	if st.StoreFailures != 0 {
		t.Fatalf("store failures under stress: %+v", st)
	}
	// The edit path dominated: far more flushes grew clusters than opened
	// them, and exactly one stored event exists per campaign cluster.
	if st.CIoCs != campaigns {
		t.Fatalf("CIoCs = %d, want %d stable clusters", st.CIoCs, campaigns)
	}
	if st.ClusterEdits == 0 {
		t.Fatalf("no cluster edits despite cross-flush growth: %+v", st)
	}
	ciocs, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:cioc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ciocs) != campaigns {
		t.Fatalf("stored cIoC events = %d, want %d", len(ciocs), campaigns)
	}
}
