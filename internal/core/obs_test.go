package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
)

// scrape renders the platform registry as Prometheus text.
func scrape(t *testing.T, p *Platform) string {
	t.Helper()
	var sb strings.Builder
	if err := p.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// metricValue extracts the value of an exact sample line ("name value" or
// "name{labels} value").
func metricValue(t *testing.T, exposition, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, sample+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("sample %q not found in exposition:\n%s", sample, exposition)
	return 0
}

// TestMetricsEndToEnd runs a full synthetic pipeline pass and asserts the
// ISSUE acceptance criteria on the /metrics surface: at least 20 distinct
// caisp_* families spanning every pipeline stage, counters that agree with
// Stats(), and per-stage trace histograms populated end to end.
func TestMetricsEndToEnd(t *testing.T) {
	gen := feedgen.New(feedgen.Config{
		Seed: 7, Items: 60, DuplicationRate: 0.2, OverlapRate: 0.2, DefangRate: 0.3,
		Now: batchTime.Add(-24 * time.Hour),
	})
	feeds, err := gen.Feeds(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// A real data dir so the WAL commit path (caisp_store_commit_seconds)
	// is exercised too.
	p := newPlatform(t, Config{Feeds: feeds, DataDir: t.TempDir()})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}

	names := p.Metrics().Names()
	distinct := make(map[string]bool, len(names))
	for _, n := range names {
		if !strings.HasPrefix(n, "caisp_") {
			t.Fatalf("non-caisp family %q registered", n)
		}
		if distinct[n] {
			t.Fatalf("family %q listed twice", n)
		}
		distinct[n] = true
	}
	if len(distinct) < 20 {
		t.Fatalf("only %d caisp_* families registered: %v", len(distinct), names)
	}
	// Every pipeline stage contributes at least one family.
	for _, prefix := range []string{
		"caisp_feed_", "caisp_dedup_", "caisp_correlate_", "caisp_store_",
		"caisp_bus_", "caisp_tip_", "caisp_heuristic_", "caisp_dashboard_",
		"caisp_pipeline_", "caisp_trace_",
	} {
		found := false
		for n := range distinct {
			if strings.HasPrefix(n, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no %s* family registered; have %v", prefix, names)
		}
	}

	out := scrape(t, p)
	stats := p.Stats()

	// The registry views read the same atomics as Stats(): they must agree.
	if got := metricValue(t, out, "caisp_pipeline_collected_total"); got != float64(stats.EventsCollected) {
		t.Fatalf("collected metric = %g, stats = %d", got, stats.EventsCollected)
	}
	if got := metricValue(t, out, "caisp_pipeline_duplicates_total"); got != float64(stats.Duplicates) {
		t.Fatalf("duplicates metric = %g, stats = %d", got, stats.Duplicates)
	}
	if got := metricValue(t, out, "caisp_store_events"); got != float64(stats.StoredEvents) {
		t.Fatalf("store events metric = %g, stats = %d", got, stats.StoredEvents)
	}

	// The write path and analysis latency histograms saw traffic.
	for _, sample := range []string{
		"caisp_dedup_offer_seconds_count",
		"caisp_correlate_add_seconds_count",
		"caisp_store_put_batch_seconds_count",
		"caisp_store_commit_seconds_count",
		"caisp_pipeline_flush_seconds_count",
		"caisp_pipeline_analyze_seconds_count",
		"caisp_heuristic_eval_seconds_count",
	} {
		if metricValue(t, out, sample) == 0 {
			t.Fatalf("%s = 0 after an end-to-end batch", sample)
		}
	}

	// Per-stage trace histograms are populated across the whole journey,
	// and at least one end-to-end trace finished.
	for _, stage := range []string{"ingest", "correlate", "store_commit", "analyze", "publish"} {
		sample := fmt.Sprintf("caisp_trace_stage_seconds_count{stage=%q}", stage)
		if metricValue(t, out, sample) == 0 {
			t.Fatalf("trace stage %s never observed", stage)
		}
	}
	if metricValue(t, out, "caisp_trace_end_to_end_seconds_count") == 0 {
		t.Fatal("no end-to-end trace finished")
	}
	if len(p.Tracer().Slowest()) == 0 {
		t.Fatal("no slow traces retained for /debug/traces")
	}
}

// TestDisableMetrics asserts the ablation baseline: no registry, no
// tracer, and an otherwise fully working pipeline.
func TestDisableMetrics(t *testing.T) {
	p := newPlatform(t, Config{
		Feeds:          []feed.Feed{advisoryFeed(strutsAdvisory)},
		DisableMetrics: true,
	})
	if p.Metrics() != nil || p.Tracer() != nil {
		t.Fatal("DisableMetrics left instrumentation active")
	}
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.EIoCs == 0 || st.RIoCs == 0 {
		t.Fatalf("uninstrumented pipeline stalled: %+v", st)
	}
}

// TestSharedRegistryAcrossPlatform asserts a caller-supplied registry is
// used as-is (daemons mount it on their own mux).
func TestSharedRegistryAcrossPlatform(t *testing.T) {
	p := newPlatform(t, Config{Feeds: []feed.Feed{advisoryFeed(strutsAdvisory)}})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := scrape(t, p)
	// The bus drop counter is exported live even when nothing dropped.
	if !strings.Contains(out, "caisp_bus_dropped_total 0") {
		t.Fatalf("bus drop counter missing:\n%s", out)
	}
}
