package core

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/stix"
	"github.com/caisplatform/caisp/internal/taxii"
	"github.com/caisplatform/caisp/internal/tip"
)

var batchTime = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

func advisoryFeed(doc string) feed.Feed {
	return feed.Feed{
		Name:     "advisories",
		Category: normalize.CategoryVulnExploit,
		Fetcher:  &feed.StaticFetcher{Data: []byte(doc)},
		Parser:   feed.AdvisoryParser{},
		Interval: time.Hour,
	}
}

const strutsAdvisory = `[{
  "cve": "CVE-2017-9805",
  "description": "Apache Struts REST plugin XStream RCE",
  "cvss3": "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
  "products": ["apache struts", "apache"],
  "os": "debian",
  "published": "2017-09-13"
}]`

func newPlatform(t *testing.T, cfg Config) *Platform {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = clock.NewFake(batchTime)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestRunBatchEndToEndRCE(t *testing.T) {
	p := newPlatform(t, Config{
		Feeds:      []feed.Feed{advisoryFeed(strutsAdvisory)},
		ShareTAXII: true,
	})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}

	stats := p.Stats()
	if stats.EventsCollected != 1 || stats.EventsUnique != 1 || stats.CIoCs != 1 || stats.EIoCs != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The rIoC must land on node4 (apache) per the §IV matching rule.
	riocs := p.Dashboard().RIoCs()
	if len(riocs) != 1 {
		t.Fatalf("riocs = %d", len(riocs))
	}
	r := riocs[0]
	if r.CVE != "CVE-2017-9805" || len(r.NodeIDs) != 1 || r.NodeIDs[0] != "node4" || r.AllNodes {
		t.Fatalf("rIoC = %+v", r)
	}
	if r.ThreatScore <= 0 || r.ThreatScore > 5 {
		t.Fatalf("threat score = %v", r.ThreatScore)
	}

	// The stored event became an eIoC: threat-score attribute + tag.
	events, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:eioc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("eIoC events = %d", len(events))
	}
	found := false
	for _, a := range events[0].Attributes {
		if a.Type == "comment" && strings.HasPrefix(a.Value, "threat-score:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("threat-score attribute missing: %+v", events[0].Attributes)
	}

	// The eIoC was shared into the TAXII collection.
	if p.TAXII().ObjectCount(TAXIICollection) == 0 {
		t.Fatal("taxii collection empty")
	}
}

func TestRunBatchNoMatchNoRIoC(t *testing.T) {
	const advisory = `[{
	  "cve": "CVE-2020-0601",
	  "description": "Windows CryptoAPI spoofing",
	  "cvss3": "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:N",
	  "products": ["windows crypto"],
	  "os": "windows"
	}]`
	p := newPlatform(t, Config{Feeds: []feed.Feed{advisoryFeed(advisory)}})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Dashboard().RIoCs()); got != 0 {
		t.Fatalf("riocs = %d, want 0 (no inventory match)", got)
	}
	// The eIoC still exists for storage/sharing.
	if p.Stats().EIoCs != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestRunBatchCommonKeywordAllNodes(t *testing.T) {
	const advisory = `[{
	  "cve": "CVE-2016-5195",
	  "description": "Dirty COW privilege escalation",
	  "cvss3": "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
	  "products": ["linux"],
	  "os": "linux"
	}]`
	p := newPlatform(t, Config{Feeds: []feed.Feed{advisoryFeed(advisory)}})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	riocs := p.Dashboard().RIoCs()
	if len(riocs) != 1 || !riocs[0].AllNodes || len(riocs[0].NodeIDs) != 4 {
		t.Fatalf("riocs = %+v, want all-nodes match", riocs)
	}
}

func TestRunBatchDeduplicatesAcrossFeeds(t *testing.T) {
	f1 := feed.Feed{
		Name: "feed-a", Category: normalize.CategoryMalwareDomain,
		Fetcher: &feed.StaticFetcher{Data: []byte("evil.example\nshared.example\n")},
		Parser:  feed.PlaintextParser{}, Interval: time.Hour,
	}
	f2 := feed.Feed{
		Name: "feed-b", Category: normalize.CategoryMalwareDomain,
		Fetcher: &feed.StaticFetcher{Data: []byte("SHARED[.]example\nother.example\n")},
		Parser:  feed.PlaintextParser{}, Interval: time.Hour,
	}
	p := newPlatform(t, Config{Feeds: []feed.Feed{f1, f2}})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if stats.EventsCollected != 4 || stats.EventsUnique != 3 || stats.Duplicates != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	ds := p.DedupStats()
	if ds.Duplicates != 1 {
		t.Fatalf("dedup stats = %+v", ds)
	}
}

func TestSyntheticFeedsFullPipeline(t *testing.T) {
	gen := feedgen.New(feedgen.Config{
		Seed: 99, Items: 60, DuplicationRate: 0.2, OverlapRate: 0.2, DefangRate: 0.3,
		Now: batchTime.Add(-24 * time.Hour),
	})
	feeds, err := gen.Feeds(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlatform(t, Config{Feeds: feeds, ShareTAXII: true})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := p.Stats()
	if stats.EventsCollected < 200 {
		t.Fatalf("collected only %d events", stats.EventsCollected)
	}
	if stats.Duplicates == 0 {
		t.Fatal("no duplicates despite duplication+overlap")
	}
	if stats.CIoCs == 0 || stats.EIoCs == 0 {
		t.Fatalf("pipeline stalled: %+v", stats)
	}
	if stats.StoredEvents == 0 {
		t.Fatal("nothing stored in TIP")
	}
	// The advisory feed leads with the Struts use case → at least one rIoC.
	if stats.RIoCs == 0 {
		t.Fatalf("no rIoCs: %+v", stats)
	}
}

func TestStreamingModeProcessesOverBus(t *testing.T) {
	// Real clock so scheduler and flusher tick on their own.
	p := newPlatform(t, Config{
		Feeds: []feed.Feed{advisoryFeed(strutsAdvisory)},
		Clock: clock.Real(),
	})
	if err := p.Start(context.Background(), 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background(), time.Second); err == nil {
		t.Fatal("double start accepted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().EIoCs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("streaming pipeline never produced an eIoC: %+v", p.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()
	if got := len(p.Dashboard().RIoCs()); got == 0 {
		t.Fatal("no rIoC reached the dashboard in streaming mode")
	}
}

func TestAnalyzeIdempotent(t *testing.T) {
	p := newPlatform(t, Config{Feeds: []feed.Feed{advisoryFeed(strutsAdvisory)}})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := p.Stats()
	// Re-analyzing the same stored event must be a no-op.
	events, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:cioc"})
	if err != nil || len(events) == 0 {
		t.Fatalf("no stored cIoCs: %v", err)
	}
	if err := p.analyze(events[0]); err != nil {
		t.Fatal(err)
	}
	after := p.Stats()
	if after.EIoCs != before.EIoCs || after.RIoCs != before.RIoCs {
		t.Fatalf("analyze not idempotent: %+v vs %+v", before, after)
	}
}

func TestReportAlarmAndInternalIoC(t *testing.T) {
	p := newPlatform(t, Config{})
	alarm, err := p.ReportAlarm(infra.Alarm{
		NodeID: "node1", Severity: infra.SeverityHigh, Description: "probe",
	})
	if err != nil {
		t.Fatal(err)
	}
	if alarm.ID == "" {
		t.Fatal("alarm id not assigned")
	}
	if _, err := p.ReportAlarm(infra.Alarm{NodeID: "ghost", Severity: infra.SeverityLow, Description: "x"}); err == nil {
		t.Fatal("alarm for unknown node accepted")
	}
	e, correlated, err := p.ReportInternalIoC("evil.example", normalize.CategoryMalwareDomain, "nids")
	if err != nil {
		t.Fatal(err)
	}
	if e.SourceType != normalize.SourceInfrastructure {
		t.Fatalf("internal IoC source type = %q", e.SourceType)
	}
	if len(correlated) != 0 {
		t.Fatalf("fresh sighting correlated with %v", correlated)
	}
	// The sighting is stored org-only in the TIP for automatic correlation.
	stored, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:infrastructure"})
	if err != nil || len(stored) != 1 {
		t.Fatalf("infrastructure events = %d, %v", len(stored), err)
	}
	if stored[0].Distribution != misp.DistributionOrganisation {
		t.Fatalf("infrastructure sighting distribution = %d, must stay org-only", stored[0].Distribution)
	}
	// A second sighting of the same value correlates with the first.
	_, correlated, err = p.ReportInternalIoC("evil.example", normalize.CategoryMalwareDomain, "hids")
	if err != nil {
		t.Fatal(err)
	}
	if len(correlated) != 1 {
		t.Fatalf("second sighting correlated = %v, want the first event", correlated)
	}
}

func TestInfrastructureSightingChangesScore(t *testing.T) {
	// Run the same advisory twice: once cold, once with the CVE already
	// sighted by the infrastructure; the second score must be higher
	// (source_diversity 1 → 3).
	run := func(withSighting bool) float64 {
		p := newPlatform(t, Config{Feeds: []feed.Feed{advisoryFeed(strutsAdvisory)}})
		if withSighting {
			if _, _, err := p.ReportInternalIoC("CVE-2017-9805", normalize.CategoryVulnExploit, "vuln-scanner"); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.RunBatch(context.Background()); err != nil {
			t.Fatal(err)
		}
		riocs := p.Dashboard().RIoCs()
		if len(riocs) != 1 {
			t.Fatalf("riocs = %d", len(riocs))
		}
		return riocs[0].ThreatScore
	}
	cold := run(false)
	hot := run(true)
	if hot <= cold {
		t.Fatalf("sighted score %v not above cold score %v", hot, cold)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		DataDir: dir,
		Feeds:   []feed.Feed{advisoryFeed(strutsAdvisory)},
		Clock:   clock.NewFake(batchTime),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	stored := p.TIP().Len()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if stored == 0 {
		t.Fatal("nothing stored before restart")
	}

	p2, err := New(Config{DataDir: dir, Clock: clock.NewFake(batchTime)})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.TIP().Len() != stored {
		t.Fatalf("after restart: %d events, want %d", p2.TIP().Len(), stored)
	}
	events, err := p2.TIP().Search(tip.SearchQuery{Tag: "caisp:eioc"})
	if err != nil || len(events) == 0 {
		t.Fatalf("eIoC lost across restart: %v", err)
	}
}

func TestExportedEIoCCarriesScore(t *testing.T) {
	p := newPlatform(t, Config{Feeds: []feed.Feed{advisoryFeed(strutsAdvisory)}, ShareTAXII: true})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Objects shared over TAXII must carry the threat-score custom
	// property (they are eIoCs, not plain cIoCs).
	srvObjects := p.TAXII().ObjectCount(TAXIICollection)
	if srvObjects == 0 {
		t.Fatal("nothing shared")
	}
	events, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:eioc"})
	if err != nil || len(events) != 1 {
		t.Fatal("eIoC missing")
	}
	bundle, err := misp.ToSTIX(events[0])
	if err != nil {
		t.Fatal(err)
	}
	vulns := bundle.ByType(stix.TypeVulnerability)
	if len(vulns) != 1 {
		t.Fatalf("vulnerabilities = %d", len(vulns))
	}
	// Score attribute round-trips through the MISP event as a comment; the
	// STIX custom property is applied during analysis, so check the live
	// score from a fresh evaluation matches the recorded one.
	res, err := p.Engine().Evaluate(vulns[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("score = %v", res.Score)
	}
	_ = heuristic.ThreatScoreOf // referenced to document intent
}

func TestClassifierTagsUnknownCategories(t *testing.T) {
	// A plaintext feed of IPs with no category; descriptions arrive via a
	// CSV column so the classifier has text to work with.
	doc := "ip,description\n203.0.113.5,massive ddos flood from botnet\n203.0.113.6,ransomware trojan dropper observed\n203.0.113.7,\n"
	f := feed.Feed{
		Name:     "uncategorized",
		Category: normalize.CategoryUnknown,
		Fetcher:  &feed.StaticFetcher{Data: []byte(doc)},
		Parser:   feed.CSVParser{ValueColumn: 0, HasHeader: true},
		Interval: time.Hour,
	}
	p := newPlatform(t, Config{Feeds: []feed.Feed{f}})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Classified; got != 2 {
		t.Fatalf("classified = %d, want 2", got)
	}
	ddos, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:category=\"ddos\""})
	if err != nil {
		t.Fatal(err)
	}
	if len(ddos) != 1 {
		t.Fatalf("ddos events = %d", len(ddos))
	}
	// The confidence is visible to SIEM consumers as an attribute.
	foundVerdict := false
	for _, a := range ddos[0].Attributes {
		if a.Type == "text" && strings.HasPrefix(a.Value, "classification:ddos confidence:") {
			foundVerdict = true
		}
	}
	if !foundVerdict {
		t.Fatalf("classification attribute missing: %+v", ddos[0].Attributes)
	}
	// The classifier can be disabled.
	p2 := newPlatform(t, Config{Feeds: []feed.Feed{f}, DisableClassifier: true})
	if err := p2.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p2.Classifier() != nil || p2.Stats().Classified != 0 {
		t.Fatalf("classifier not disabled: %+v", p2.Stats())
	}
}

func TestAutoCompaction(t *testing.T) {
	gen := feedgen.New(feedgen.Config{Seed: 5, Items: 40, DuplicationRate: 0, OverlapRate: 0})
	feeds, err := gen.Feeds(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlatform(t, Config{DataDir: t.TempDir(), Feeds: feeds, CompactEveryOps: 50})
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	// RunBatch stores well over 50 events (puts + enrichment edits), so the
	// threshold was crossed and a snapshot was requested. Compaction now
	// runs on a background goroutine — poll until it lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.TIP().Stats()
		if st.Compactions >= 1 && st.WALOps <= p.compactAfter {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p.TIP().Len() < 100 {
		t.Fatalf("stored = %d", p.TIP().Len())
	}
	// The drained compactor leaves a loadable snapshot behind on Close;
	// a reopened store recovers everything without the full WAL.
	n := p.TIP().Len()
	dir := p.cfg.DataDir
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := newPlatform(t, Config{DataDir: dir})
	if p2.TIP().Len() != n {
		t.Fatalf("reopened store has %d events, want %d", p2.TIP().Len(), n)
	}
}

func TestFederationViaTAXII(t *testing.T) {
	// Org A processes the advisory and shares its eIoC over TAXII.
	orgA := newPlatform(t, Config{
		Feeds:      []feed.Feed{advisoryFeed(strutsAdvisory)},
		ShareTAXII: true,
	})
	if err := orgA.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	taxiiSrv := httptest.NewServer(orgA.TAXII())
	defer taxiiSrv.Close()

	// Org B runs a different infrastructure (a struts-heavy shop) and
	// consumes A's collection as one of its OSINT feeds.
	orgBInventory := &infra.Inventory{
		Nodes: []infra.Node{
			{ID: "web1", Name: "storefront", OS: "debian",
				Applications: []string{"debian", "apache", "apache struts"}},
			{ID: "db1", Name: "database", OS: "debian",
				Applications: []string{"debian", "postgresql"}},
		},
	}
	orgB := newPlatform(t, Config{
		Inventory: orgBInventory,
		Feeds: []feed.Feed{{
			Name:     "org-a-taxii",
			Category: normalize.CategoryVulnExploit,
			Fetcher: &feed.TAXIIFetcher{
				Client:       taxii.NewClient(taxiiSrv.URL, ""),
				APIRoot:      "caisp",
				CollectionID: "eiocs",
			},
			Parser:   feed.STIXBundleParser{},
			Interval: time.Minute,
		}},
	})
	if err := orgB.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	riocs := orgB.Dashboard().RIoCs()
	if len(riocs) != 1 {
		t.Fatalf("org B riocs = %d", len(riocs))
	}
	r := riocs[0]
	if r.CVE != "CVE-2017-9805" {
		t.Fatalf("cve = %q", r.CVE)
	}
	// Org B's own inventory drives the match: the struts host web1.
	if len(r.NodeIDs) != 1 || r.NodeIDs[0] != "web1" {
		t.Fatalf("org B nodes = %v", r.NodeIDs)
	}
	if r.ThreatScore <= 0 {
		t.Fatalf("score = %v", r.ThreatScore)
	}
}
