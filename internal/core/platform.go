// Package core wires the three modules of the Context-Aware OSINT Platform
// (paper §III) into one pipeline:
//
//	Input:       feeds → normalize → dedup → aggregate/correlate → cIoC
//	Operational: cIoC → TIP (MISP-format store, auto-correlation, bus
//	             publish) → heuristic analysis → threat score → eIoC
//	Output:      eIoC → reduction → rIoC → dashboard push; eIoC → TAXII
//	             collection for external sharing
//
// The platform runs either in streaming mode (Start: feed scheduler +
// heuristic worker on the bus) or in batch mode (RunBatch: one synchronous
// pass, used by the examples and the experiment harness).
package core

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/correlate"
	"github.com/caisplatform/caisp/internal/dashboard"
	"github.com/caisplatform/caisp/internal/dedup"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/taxii"
	"github.com/caisplatform/caisp/internal/textclass"
	"github.com/caisplatform/caisp/internal/tip"
)

// TAXIICollection is the collection eIoCs are shared into.
const TAXIICollection = "eiocs"

// defaultCompactAfterOps triggers event-store compaction once this many
// WAL operations accumulated since the last snapshot, bounding both WAL
// growth and restart-replay time.
const defaultCompactAfterOps = 5000

// Config parameterizes a Platform.
type Config struct {
	// DataDir is the event-store directory; empty means in-memory.
	DataDir string
	// Inventory describes the monitored infrastructure; nil uses the
	// paper's Table III inventory.
	Inventory *infra.Inventory
	// Feeds are the OSINT feeds to poll.
	Feeds []feed.Feed
	// Clock drives polling and evaluation; nil uses the system clock.
	Clock clock.Clock
	// Logger receives pipeline logs; nil uses slog.Default().
	Logger *slog.Logger
	// ShareTAXII enables the TAXII server and publishes every eIoC into
	// its collection.
	ShareTAXII bool
	// DisableClassifier turns off the NLP keyword classifier that tags
	// unknown-category events from their text (§II-A enhancement).
	DisableClassifier bool
}

// Stats counts pipeline activity.
type Stats struct {
	EventsCollected int `json:"events_collected"`
	EventsUnique    int `json:"events_unique"`
	Duplicates      int `json:"duplicates"`
	CIoCs           int `json:"ciocs"`
	EIoCs           int `json:"eiocs"`
	RIoCs           int `json:"riocs"`
	Classified      int `json:"classified"`
	Unscorable      int `json:"unscorable"`
	StoredEvents    int `json:"stored_events"`
}

// Platform is a running Context-Aware OSINT Platform instance.
type Platform struct {
	cfg    Config
	clk    clock.Clock
	logger *slog.Logger

	// Input module.
	scheduler  *feed.Scheduler
	deduper    *dedup.Deduper
	corr       *correlate.Correlator
	classifier *textclass.Classifier

	// Operational module.
	store  *storage.Store
	broker *bus.Broker
	tip    *tip.Service
	engine *heuristic.Engine

	// Output module.
	collector *infra.Collector
	dash      *dashboard.Server
	taxiiSrv  *taxii.Server

	mu        sync.Mutex
	pending   []normalize.Event
	processed map[string]bool // event UUIDs already analyzed
	stats     Stats

	compactAfter int

	runMu   sync.Mutex
	started bool
	cancel  context.CancelFunc
	workers sync.WaitGroup
	sub     *bus.Subscription
}

// New assembles a platform from the configuration.
func New(cfg Config) (*Platform, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	inventory := cfg.Inventory
	if inventory == nil {
		inventory = infra.PaperInventory()
	}
	collector, err := infra.NewCollector(inventory)
	if err != nil {
		return nil, err
	}
	store, err := storage.Open(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	broker := bus.NewBroker()

	p := &Platform{
		cfg:       cfg,
		clk:       cfg.Clock,
		logger:    cfg.Logger,
		deduper:   dedup.New(),
		corr:      correlate.New(),
		store:     store,
		broker:    broker,
		collector: collector,
		processed: make(map[string]bool),

		compactAfter: defaultCompactAfterOps,
	}
	if !cfg.DisableClassifier {
		p.classifier = textclass.New()
	}
	p.tip = tip.NewService(store, tip.WithBroker(broker), tip.WithLogger(cfg.Logger))
	p.engine = heuristic.NewEngine(
		heuristic.WithInfrastructure(collector),
		heuristic.WithNow(cfg.Clock.Now),
	)
	p.dash = dashboard.NewServer(collector)
	if cfg.ShareTAXII {
		p.taxiiSrv = taxii.NewServer("CAISP sharing", "caisp", taxii.WithNow(cfg.Clock.Now))
		p.taxiiSrv.AddCollection(TAXIICollection, "Enriched IoCs",
			"eIoCs produced by the heuristic component", false)
	}
	p.scheduler = feed.NewScheduler(p.ingest,
		feed.WithClock(cfg.Clock), feed.WithLogger(cfg.Logger))
	for _, f := range cfg.Feeds {
		if err := p.scheduler.Add(f); err != nil {
			store.Close()
			broker.Close()
			return nil, err
		}
	}
	return p, nil
}

// Accessors for the composed services.

// TIP returns the operational module's TIP service.
func (p *Platform) TIP() *tip.Service { return p.tip }

// Broker returns the internal message bus.
func (p *Platform) Broker() *bus.Broker { return p.broker }

// Collector returns the infrastructure collector.
func (p *Platform) Collector() *infra.Collector { return p.collector }

// Dashboard returns the output module's dashboard server.
func (p *Platform) Dashboard() *dashboard.Server { return p.dash }

// TAXII returns the sharing server, or nil when disabled.
func (p *Platform) TAXII() *taxii.Server { return p.taxiiSrv }

// Engine returns the heuristic engine.
func (p *Platform) Engine() *heuristic.Engine { return p.engine }

// FeedStats returns per-feed collection counters.
func (p *Platform) FeedStats() map[string]feed.Stats { return p.scheduler.Stats() }

// DedupStats returns the deduplication counters.
func (p *Platform) DedupStats() dedup.Stats { return p.deduper.Stats() }

// Stats returns pipeline counters.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.StoredEvents = p.tip.Len()
	return st
}

// ReportAlarm records an infrastructure alarm and pushes it to the
// dashboard.
func (p *Platform) ReportAlarm(a infra.Alarm) (infra.Alarm, error) {
	stored, err := p.collector.AddAlarm(a)
	if err != nil {
		return infra.Alarm{}, err
	}
	p.dash.PushAlarm(stored)
	return stored, nil
}

// ReportInternalIoC records an indicator detected inside the
// infrastructure (§III-A2). Besides feeding the heuristic context, the
// event is stored in the TIP as an organisation-only MISP event — "data
// received from the monitored infrastructures could be stored in the MISP
// database, in order to perform basic automated correlation steps, when
// some cIoCs are received" (§III-B1) — and the correlated UUIDs of already
// stored events are returned.
func (p *Platform) ReportInternalIoC(value, category, source string) (normalize.Event, []string, error) {
	e, err := p.collector.AddInternalIoC(value, category, source, p.clk.Now())
	if err != nil {
		return normalize.Event{}, nil, err
	}
	me := misp.NewEvent(fmt.Sprintf("infrastructure sighting [%s] %s", source, e.Value), p.clk.Now())
	me.Distribution = misp.DistributionOrganisation // never shared outward
	me.AddTag("caisp:infrastructure")
	typ := mispTypeFor(e.Type)
	me.AddAttribute(typ, "Internal reference", e.Value, e.LastSeen).Comment = "detected by " + source
	correlated, err := p.tip.AddEvent(me)
	if err != nil {
		return normalize.Event{}, nil, fmt.Errorf("core: store infrastructure sighting: %w", err)
	}
	return e, correlated, nil
}

// mispTypeFor maps a normalized IoC type to the MISP attribute type used
// for infrastructure sightings.
func mispTypeFor(typ normalize.IoCType) string {
	switch typ {
	case normalize.TypeIPv4, normalize.TypeIPv6, normalize.TypeCIDR:
		return "ip-dst"
	case normalize.TypeDomain:
		return "domain"
	case normalize.TypeURL:
		return "url"
	case normalize.TypeMD5:
		return "md5"
	case normalize.TypeSHA1:
		return "sha1"
	case normalize.TypeSHA256:
		return "sha256"
	case normalize.TypeSHA512:
		return "sha512"
	case normalize.TypeCVE:
		return "vulnerability"
	case normalize.TypeEmail:
		return "email-dst"
	case normalize.TypeFilename:
		return "filename"
	default:
		return "text"
	}
}

// Classifier returns the NLP text classifier, or nil when disabled.
func (p *Platform) Classifier() *textclass.Classifier { return p.classifier }

// ingest is the feed scheduler sink: classify → normalize → dedup →
// pending buffer.
func (p *Platform) ingest(e normalize.Event) {
	p.classify(&e)
	stored, isNew := p.deduper.Offer(e)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.EventsCollected++
	if !isNew {
		p.stats.Duplicates++
		return
	}
	p.stats.EventsUnique++
	p.pending = append(p.pending, stored)
}

// classify tags unknown-category events from their textual context using
// the keyword classifier (§II-A: "tag OSINT data as relevant or
// irrelevant"; the prediction confidence rides along for SIEM consumers).
// It must run before deduplication: the category is part of the
// deterministic event identity.
func (p *Platform) classify(e *normalize.Event) {
	if p.classifier == nil || e.Category != normalize.CategoryUnknown {
		return
	}
	text := strings.TrimSpace(e.Context["description"] + " " + e.Context["event_info"])
	if text == "" {
		return
	}
	pred := p.classifier.Classify(text)
	if !pred.Relevant || pred.Confidence < 0.5 {
		return
	}
	e.Category = pred.Category
	if e.Context == nil {
		e.Context = make(map[string]string, 2)
	}
	e.Context["classified_as"] = pred.Category
	e.Context["classifier_confidence"] = strconv.FormatFloat(pred.Confidence, 'f', 2, 64)
	if err := normalize.Canonicalize(e); err != nil {
		return
	}
	p.mu.Lock()
	p.stats.Classified++
	p.mu.Unlock()
}

// drainPending takes the buffered unique events for correlation.
func (p *Platform) drainPending() []normalize.Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.pending
	p.pending = nil
	return out
}

// composeAndStore correlates a batch of events into cIoCs and stores each
// as a MISP event in the TIP (which publishes it on the bus).
func (p *Platform) composeAndStore(events []normalize.Event) ([]*misp.Event, error) {
	if len(events) == 0 {
		return nil, nil
	}
	ciocs := p.corr.Correlate(events)
	stored := make([]*misp.Event, 0, len(ciocs))
	for i := range ciocs {
		me, err := correlate.ToMISP(&ciocs[i], p.clk.Now())
		if err != nil {
			return stored, fmt.Errorf("core: compose cIoC: %w", err)
		}
		if _, err := p.tip.AddEvent(me); err != nil {
			return stored, fmt.Errorf("core: store cIoC: %w", err)
		}
		stored = append(stored, me)
	}
	p.mu.Lock()
	p.stats.CIoCs += len(ciocs)
	p.mu.Unlock()
	p.maybeCompact()
	return stored, nil
}

// maybeCompact snapshots the store once enough WAL operations accumulated.
func (p *Platform) maybeCompact() {
	if p.store.WALOps() <= p.compactAfter {
		return
	}
	if err := p.store.Compact(); err != nil {
		p.logger.Warn("store compaction failed", "error", err)
	}
}

// analyze runs the heuristic stage for one stored cIoC event: convert to
// STIX, score each supported SDO, enrich, write the eIoC back, reduce and
// push rIoCs, share over TAXII.
func (p *Platform) analyze(me *misp.Event) error {
	p.mu.Lock()
	if p.processed[me.UUID] {
		p.mu.Unlock()
		return nil
	}
	p.processed[me.UUID] = true
	p.mu.Unlock()

	bundle, err := misp.ToSTIX(me)
	if err != nil {
		return fmt.Errorf("core: convert %s: %w", me.UUID, err)
	}
	now := p.clk.Now()
	scored := 0
	var topScore float64
	for _, obj := range bundle.Objects {
		res, err := p.engine.Evaluate(obj)
		if err != nil {
			continue // SDO type without a heuristic (relationships, identities of orgs…)
		}
		scored++
		heuristic.Enrich(obj, res)
		if res.Score > topScore {
			topScore = res.Score
		}
		rioc, err := heuristic.Reduce(obj, res, p.collector, now)
		if err != nil {
			return err
		}
		if rioc != nil {
			p.dash.PushRIoC(*rioc)
			p.mu.Lock()
			p.stats.RIoCs++
			p.mu.Unlock()
		}
		if p.taxiiSrv != nil {
			if err := p.taxiiSrv.AddObjects(TAXIICollection, obj); err != nil {
				p.logger.Warn("taxii share failed", "error", err)
			}
		}
	}
	if scored == 0 {
		p.mu.Lock()
		p.stats.Unscorable++
		p.mu.Unlock()
		return nil
	}
	// Write the threat score back into the stored MISP event — "adding the
	// threat score as a new MISP attribute" (§IV-A) — turning it into the
	// stored eIoC.
	me.AddAttribute("comment", "Other",
		"threat-score:"+strconv.FormatFloat(topScore, 'f', 4, 64), now)
	me.AddTag("caisp:eioc")
	if _, err := p.tip.AddEvent(me); err != nil {
		return fmt.Errorf("core: store eIoC %s: %w", me.UUID, err)
	}
	p.mu.Lock()
	p.stats.EIoCs++
	p.mu.Unlock()
	p.maybeCompact()
	return nil
}

// RunBatch performs one synchronous pipeline pass: poll every feed once,
// dedup, correlate, store, analyze. Not for use while Start is running.
func (p *Platform) RunBatch(ctx context.Context) error {
	p.scheduler.PollOnce(ctx)
	stored, err := p.composeAndStore(p.drainPending())
	if err != nil {
		return err
	}
	for _, me := range stored {
		if err := p.analyze(me); err != nil {
			return err
		}
	}
	return nil
}

// Start launches streaming mode: the feed scheduler polls on its
// intervals, a composer goroutine flushes pending events every
// flushInterval, and a worker consumes the bus to run heuristic analysis.
func (p *Platform) Start(ctx context.Context, flushInterval time.Duration) error {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.started {
		return fmt.Errorf("core: platform already started")
	}
	if flushInterval <= 0 {
		flushInterval = time.Second
	}
	ctx, p.cancel = context.WithCancel(ctx)
	p.started = true

	p.sub = p.broker.Subscribe(tip.TopicEventAdd)
	p.workers.Add(1)
	go func() {
		defer p.workers.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case msg, ok := <-p.sub.C():
				if !ok {
					return
				}
				me, err := misp.UnmarshalWrapped(msg.Payload)
				if err != nil {
					p.logger.Warn("bus payload undecodable", "error", err)
					continue
				}
				if !me.HasTag("caisp:cioc") {
					continue // infrastructure data is stored, not analyzed
				}
				if err := p.analyze(me); err != nil {
					p.logger.Warn("heuristic analysis failed", "uuid", me.UUID, "error", err)
				}
			}
		}
	}()

	p.workers.Add(1)
	go func() {
		defer p.workers.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-p.clk.After(flushInterval):
				if _, err := p.composeAndStore(p.drainPending()); err != nil {
					p.logger.Warn("composition failed", "error", err)
				}
			}
		}
	}()

	return p.scheduler.Start(ctx)
}

// Stop ends streaming mode and flushes remaining pending events.
func (p *Platform) Stop() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if !p.started {
		return
	}
	p.cancel()
	p.scheduler.Stop()
	if p.sub != nil {
		p.sub.Close()
	}
	p.workers.Wait()
	p.started = false
	// Final flush so nothing collected is lost.
	if stored, err := p.composeAndStore(p.drainPending()); err == nil {
		for _, me := range stored {
			if err := p.analyze(me); err != nil {
				p.logger.Warn("final analysis failed", "uuid", me.UUID, "error", err)
			}
		}
	}
}

// Close releases resources (store, broker, dashboard sockets).
func (p *Platform) Close() error {
	p.Stop()
	p.dash.Close()
	p.broker.Close()
	return p.store.Close()
}
