// Package core wires the three modules of the Context-Aware OSINT Platform
// (paper §III) into one pipeline:
//
//	Input:       feeds → normalize → dedup → aggregate/correlate → cIoC
//	Operational: cIoC → TIP (MISP-format store, auto-correlation, bus
//	             publish) → heuristic analysis → threat score → eIoC
//	Output:      eIoC → reduction → rIoC → dashboard push; eIoC → TAXII
//	             collection for external sharing
//
// The platform runs either in streaming mode (Start: feed scheduler +
// a sharded pool of heuristic analyzers on the bus) or in batch mode
// (RunBatch: one synchronous pass, used by the examples and the
// experiment harness). Every stage is concurrent: feeds poll in
// parallel, cIoC batches are stored with one group-committed WAL write,
// and analysis fans out over N goroutines sharded by event UUID.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/correlate"
	"github.com/caisplatform/caisp/internal/dashboard"
	"github.com/caisplatform/caisp/internal/dedup"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/lifecycle"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/ringset"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/subscribe"
	"github.com/caisplatform/caisp/internal/taxii"
	"github.com/caisplatform/caisp/internal/textclass"
	"github.com/caisplatform/caisp/internal/tip"
)

// TAXIICollection is the collection eIoCs are shared into.
const TAXIICollection = "eiocs"

// defaultCompactAfterOps triggers event-store compaction once this many
// WAL operations accumulated since the last snapshot, bounding both WAL
// growth and restart-replay time.
const defaultCompactAfterOps = 5000

// defaultCompactAfterBytes triggers compaction once the on-disk WAL
// crosses this footprint regardless of the operation count, so a burst
// of large events cannot grow the log unboundedly between op-count
// triggers.
const defaultCompactAfterBytes = 32 << 20

// maxProcessedTracked bounds the analyzed-UUID memory: the platform
// remembers this many recently analyzed events for idempotency and evicts
// the oldest beyond it (re-analysis of an evicted event is idempotent by
// construction — the eIoC tag check and score overwrite converge).
const maxProcessedTracked = 1 << 16

// analyzerQueueDepth is the per-shard buffer between the bus dispatcher
// and an analyzer goroutine.
const analyzerQueueDepth = 64

// Config parameterizes a Platform.
type Config struct {
	// DataDir is the event-store directory; empty means in-memory.
	DataDir string
	// NodeName identifies this node in cross-node trace provenance and
	// the fleet status view. Empty uses "caisp".
	NodeName string
	// Inventory describes the monitored infrastructure; nil uses the
	// paper's Table III inventory.
	Inventory *infra.Inventory
	// Feeds are the OSINT feeds to poll.
	Feeds []feed.Feed
	// Clock drives polling and evaluation; nil uses the system clock.
	Clock clock.Clock
	// Logger receives pipeline logs; nil uses slog.Default().
	Logger *slog.Logger
	// ShareTAXII enables the TAXII server and publishes every eIoC into
	// its collection.
	ShareTAXII bool
	// DisableClassifier turns off the NLP keyword classifier that tags
	// unknown-category events from their text (§II-A enhancement).
	DisableClassifier bool
	// AnalyzerPool sets how many heuristic analyzer goroutines consume
	// the bus in streaming mode (and analyze stored events in RunBatch).
	// Values below 1 use GOMAXPROCS. Work is sharded by event UUID, so
	// the same event is never analyzed by two goroutines at once.
	AnalyzerPool int
	// FeedConcurrency bounds how many feeds PollOnce fetches in
	// parallel. Values below 1 use GOMAXPROCS.
	FeedConcurrency int
	// CompactEveryOps triggers background store compaction once this many
	// WAL operations accumulated since the last snapshot. Values below 1
	// use the default (5000).
	CompactEveryOps int
	// CompactEveryBytes triggers background store compaction once the
	// on-disk WAL crosses this many bytes. Values below 1 use the default
	// (32 MiB).
	CompactEveryBytes int64
	// CorrelationWindow only connects events whose sightings lie within
	// this duration of each other (correlate.WithTimeWindow). Zero imposes
	// no temporal constraint.
	CorrelationWindow time.Duration
	// RecorrelateAll switches the streaming correlator into the ablation
	// mode that re-correlates the full event history on every flush —
	// the O(history) baseline the incremental index replaces. For
	// benchmarking only.
	RecorrelateAll bool
	// RecoveryWorkers bounds the worker pool that rebuilds the correlation
	// index from the store on restart. Values below 1 use GOMAXPROCS.
	RecoveryWorkers int
	// Metrics is the observability registry every stage registers its
	// caisp_* families into. Nil creates a private registry unless
	// DisableMetrics is set.
	Metrics *obs.Registry
	// DisableMetrics runs the platform without any instrumentation (the
	// overhead-ablation baseline): no registry, no tracer, and every
	// per-observation nil check short-circuits.
	DisableMetrics bool
	// SlowOpThreshold logs a warning (with stage and event UUID) for any
	// heuristic evaluation or dashboard push slower than this. Zero
	// disables slow-op logging.
	SlowOpThreshold time.Duration
	// SubscriptionLinearScan switches the streaming-detection engine into
	// the O(all-patterns) ablation (subscribe.WithLinearScan) instead of
	// the pattern index. For benchmarking only.
	SubscriptionLinearScan bool
	// DisableLifecycle turns off decay-driven re-scoring and expiry: the
	// store grows without bound under continuous ingest (the unbounded
	// baseline cmd/lifeload measures against).
	DisableLifecycle bool
	// LifecycleInterval is the cadence of the background re-score batch.
	// Zero uses the lifecycle default (one minute).
	LifecycleInterval time.Duration
	// LifecycleBatch bounds how many time-index entries one re-score run
	// visits. Zero uses the lifecycle default (512).
	LifecycleBatch int
	// LifecycleFloor expires indicators whose decayed score falls to or
	// below it. Zero uses the lifecycle default (0.3).
	LifecycleFloor float64
	// LifecycleRescanAll switches the re-scorer into the full-scan
	// ablation (lifecycle.WithRescanAll): every run walks the whole store
	// instead of one bounded batch. For benchmarking only.
	LifecycleRescanAll bool
}

// Stats counts pipeline activity.
type Stats struct {
	EventsCollected int `json:"events_collected"`
	EventsUnique    int `json:"events_unique"`
	Duplicates      int `json:"duplicates"`
	// CIoCs counts clusters stored for the first time; ClusterEdits counts
	// re-stores of grown or merged clusters under their stable UUID, and
	// ClusterMerges counts absorbed cluster identities retracted from the
	// TIP. ClustersLive is the current number of emitted clusters.
	CIoCs         int `json:"ciocs"`
	ClusterEdits  int `json:"cluster_edits"`
	ClusterMerges int `json:"cluster_merges"`
	ClustersLive  int `json:"clusters_live"`
	EIoCs         int `json:"eiocs"`
	RIoCs         int `json:"riocs"`
	Classified    int `json:"classified"`
	Unscorable    int `json:"unscorable"`
	StoreFailures int `json:"store_failures"`
	StoredEvents  int `json:"stored_events"`
	// BusDropped surfaces broker-wide drop-oldest losses from lagging
	// subscribers, which are otherwise silent.
	BusDropped int64 `json:"bus_dropped"`
}

// counters is the lock-free backing of Stats: every pipeline stage bumps
// its own atomic, so the analyzer pool never serializes on a stats mutex.
type counters struct {
	collected     atomic.Int64
	unique        atomic.Int64
	duplicates    atomic.Int64
	ciocs         atomic.Int64
	clusterEdits  atomic.Int64
	clusterMerges atomic.Int64
	eiocs         atomic.Int64
	riocs         atomic.Int64
	classified    atomic.Int64
	unscorable    atomic.Int64
	storeFailures atomic.Int64
}

// Platform is a running Context-Aware OSINT Platform instance.
type Platform struct {
	cfg    Config
	clk    clock.Clock
	logger *slog.Logger

	// Observability: reg holds every stage's caisp_* families; tracer
	// stamps each admitted event's journey through the pipeline. Both are
	// nil under Config.DisableMetrics (every use is nil-checked or
	// nil-safe).
	reg        *obs.Registry
	tracer     *obs.Tracer
	prov       *obs.ProvTable // origin provenance for locally ingested events
	nodeName   string
	flushDur   *obs.Histogram // caisp_pipeline_flush_seconds
	analyzeDur *obs.Histogram // caisp_pipeline_analyze_seconds

	// Input module. corr is the stateful streaming correlator: cluster
	// membership accumulates across flush batches (and across restarts,
	// via the recovery-time index rebuild in New).
	scheduler  *feed.Scheduler
	deduper    *dedup.Deduper
	corr       *correlate.Incremental
	classifier *textclass.Classifier

	// Operational module. lifec is the indicator-lifecycle engine: decay
	// re-scoring, floor expiry and score history (nil under
	// Config.DisableLifecycle).
	store     *storage.Store
	broker    *bus.Broker
	tip       *tip.Service
	engine    *heuristic.Engine
	lifec     *lifecycle.Engine
	analyzers int

	// Output module. subs is the streaming-detection engine: standing
	// STIX-pattern subscriptions evaluated against every admitted
	// cIoC/eIoC, with matches pushed over its own WebSocket hub.
	collector *infra.Collector
	dash      *dashboard.Server
	subs      *subscribe.Engine
	taxiiSrv  *taxii.Server

	mu      sync.Mutex // guards pending
	pending []normalize.Event

	procMu    sync.Mutex
	processed *ringset.Set // event UUIDs already analyzed (bounded FIFO)

	counters counters

	// Background compaction: maybeCompact posts a request into the
	// capacity-1 compactCh (singleflight — a request while one is queued
	// or running coalesces into it); the dedicated compactLoop goroutine
	// drains it so snapshots never run on the ingest path.
	compactAfter      int
	compactAfterBytes int64
	compactCh         chan struct{}
	compactStop       chan struct{}
	compactStopOnce   sync.Once
	compactWG         sync.WaitGroup

	runMu   sync.Mutex
	started bool
	cancel  context.CancelFunc
	workers sync.WaitGroup
	sub     *bus.Subscription
}

// New assembles a platform from the configuration.
func New(cfg Config) (*Platform, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	inventory := cfg.Inventory
	if inventory == nil {
		inventory = infra.PaperInventory()
	}
	collector, err := infra.NewCollector(inventory)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil && !cfg.DisableMetrics {
		reg = obs.NewRegistry()
	}
	store, err := storage.Open(cfg.DataDir, storage.WithMetrics(reg))
	if err != nil {
		return nil, err
	}
	broker := bus.NewBroker(bus.WithMetrics(reg))

	analyzers := cfg.AnalyzerPool
	if analyzers < 1 {
		analyzers = runtime.GOMAXPROCS(0)
	}

	corrOpts := []correlate.Option{correlate.WithMetrics(reg)}
	if cfg.CorrelationWindow > 0 {
		corrOpts = append(corrOpts, correlate.WithTimeWindow(cfg.CorrelationWindow))
	}
	if cfg.RecorrelateAll {
		corrOpts = append(corrOpts, correlate.WithRecorrelateAll(true))
	}

	p := &Platform{
		cfg:       cfg,
		clk:       cfg.Clock,
		logger:    cfg.Logger,
		reg:       reg,
		tracer:    obs.NewTracer(reg),
		deduper:   dedup.New(dedup.WithMetrics(reg)),
		corr:      correlate.NewIncremental(corrOpts...),
		store:     store,
		broker:    broker,
		collector: collector,
		analyzers: analyzers,
		processed: ringset.New(maxProcessedTracked),

		compactAfter:      defaultCompactAfterOps,
		compactAfterBytes: defaultCompactAfterBytes,
		compactCh:         make(chan struct{}, 1),
		compactStop:       make(chan struct{}),
	}
	p.nodeName = cfg.NodeName
	if p.nodeName == "" {
		p.nodeName = "caisp"
	}
	if !cfg.DisableMetrics {
		// Origin provenance rides the observability switch: the ablation
		// baseline must not pay the per-ingest record either.
		p.prov = obs.NewProvTable(obs.DefaultProvCap)
	}
	p.registerPipelineMetrics()
	if cfg.CompactEveryOps > 0 {
		p.compactAfter = cfg.CompactEveryOps
	}
	if cfg.CompactEveryBytes > 0 {
		p.compactAfterBytes = cfg.CompactEveryBytes
	}
	if !cfg.DisableClassifier {
		p.classifier = textclass.New()
	}
	p.tip = tip.NewService(store, tip.WithBroker(broker), tip.WithLogger(cfg.Logger),
		tip.WithMetrics(reg), tip.WithName(p.nodeName), tip.WithProvenance(p.prov))
	p.engine = heuristic.NewEngine(
		heuristic.WithInfrastructure(collector),
		heuristic.WithNow(cfg.Clock.Now),
		heuristic.WithMetrics(reg),
		heuristic.WithLogger(cfg.Logger),
		heuristic.WithSlowThreshold(cfg.SlowOpThreshold),
	)
	subOpts := []subscribe.Option{
		subscribe.WithMetrics(reg),
		subscribe.WithLogger(cfg.Logger),
		subscribe.WithNow(cfg.Clock.Now),
	}
	if cfg.SubscriptionLinearScan {
		subOpts = append(subOpts, subscribe.WithLinearScan())
	}
	p.subs = subscribe.NewEngine(subOpts...)
	p.dash = dashboard.NewServer(collector,
		dashboard.WithMetrics(reg),
		dashboard.WithLogger(cfg.Logger),
		dashboard.WithSlowThreshold(cfg.SlowOpThreshold))
	// The streaming-detection surface rides the dashboard listener:
	// /subscriptions REST plus the /ws/matches push stream.
	p.dash.SetSubscriptions(subscribe.NewAPI(p.subs))
	if !cfg.DisableLifecycle {
		lcOpts := []lifecycle.Option{
			lifecycle.WithNow(cfg.Clock.Now),
			lifecycle.WithLogger(cfg.Logger),
			lifecycle.WithMetrics(reg),
			// Sightings come from the live correlator so a cluster that
			// keeps growing keeps its score fresh; expiry routes through
			// the TIP so the deletion lands in the replicated change log
			// and the dashboard forgets the indicator's rIoCs.
			lifecycle.WithSightings(p.corr.LastSightings),
			lifecycle.WithExpireHook(p.expireEvent),
		}
		if cfg.LifecycleInterval > 0 {
			lcOpts = append(lcOpts, lifecycle.WithInterval(cfg.LifecycleInterval))
		}
		if cfg.LifecycleBatch > 0 {
			lcOpts = append(lcOpts, lifecycle.WithBatchSize(cfg.LifecycleBatch))
		}
		if cfg.LifecycleFloor > 0 {
			lcOpts = append(lcOpts, lifecycle.WithFloor(cfg.LifecycleFloor))
		}
		if cfg.LifecycleRescanAll {
			lcOpts = append(lcOpts, lifecycle.WithRescanAll(true))
		}
		p.lifec = lifecycle.New(store, lcOpts...)
		p.dash.SetLifecycle(lifecycle.NewAPI(p.lifec))
		p.lifec.Start()
	}
	if cfg.ShareTAXII {
		p.taxiiSrv = taxii.NewServer("CAISP sharing", "caisp", taxii.WithNow(cfg.Clock.Now))
		p.taxiiSrv.AddCollection(TAXIICollection, "Enriched IoCs",
			"eIoCs produced by the heuristic component", false)
	}
	p.scheduler = feed.NewScheduler(p.ingest,
		feed.WithClock(cfg.Clock), feed.WithLogger(cfg.Logger),
		feed.WithConcurrency(cfg.FeedConcurrency),
		feed.WithMetrics(reg))
	for _, f := range cfg.Feeds {
		if err := p.scheduler.Add(f); err != nil {
			store.Close()
			broker.Close()
			return nil, err
		}
	}
	if store.Len() > 0 {
		p.rebuildCorrelationIndex()
	}
	p.compactWG.Add(1)
	go p.compactLoop()
	return p, nil
}

// registerPipelineMetrics exposes the platform's lock-free stage counters
// and queue gauges as scrape-time views — the same atomics back Stats(),
// so /stats and /metrics can never disagree.
func (p *Platform) registerPipelineMetrics() {
	reg := p.reg
	if reg == nil {
		return
	}
	counter := func(name, help string, v *atomic.Int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("caisp_pipeline_collected_total", "Events delivered by the feed scheduler.",
		&p.counters.collected)
	counter("caisp_pipeline_unique_total", "Events admitted as unique by the deduper.",
		&p.counters.unique)
	counter("caisp_pipeline_duplicates_total", "Events folded into already admitted ones.",
		&p.counters.duplicates)
	counter("caisp_pipeline_ciocs_total", "Clusters stored for the first time.",
		&p.counters.ciocs)
	counter("caisp_pipeline_cluster_edits_total", "Grown or merged clusters re-stored under their stable UUID.",
		&p.counters.clusterEdits)
	counter("caisp_pipeline_cluster_merges_total", "Absorbed cluster identities retracted from the TIP.",
		&p.counters.clusterMerges)
	counter("caisp_pipeline_eiocs_total", "Events enriched with a threat score.",
		&p.counters.eiocs)
	counter("caisp_pipeline_riocs_total", "Reduced IoCs pushed to the dashboard.",
		&p.counters.riocs)
	counter("caisp_pipeline_classified_total", "Unknown-category events tagged by the NLP classifier.",
		&p.counters.classified)
	counter("caisp_pipeline_unscorable_total", "Stored events without a scorable SDO.",
		&p.counters.unscorable)
	counter("caisp_pipeline_store_failures_total", "cIoCs that failed composition or storage.",
		&p.counters.storeFailures)
	reg.GaugeFunc("caisp_pipeline_pending_events",
		"Unique events buffered for the next correlation flush.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.pending))
		})
	p.flushDur = reg.Histogram("caisp_pipeline_flush_seconds",
		"composeAndStore latency: correlation delta plus group-committed store.")
	p.analyzeDur = reg.Histogram("caisp_pipeline_analyze_seconds",
		"Heuristic analysis of one stored cIoC, including write-back and pushes.")
}

// Metrics returns the observability registry, or nil when disabled.
func (p *Platform) Metrics() *obs.Registry { return p.reg }

// Tracer returns the per-event stage tracer, or nil when disabled.
func (p *Platform) Tracer() *obs.Tracer { return p.tracer }

// NodeName returns this node's identity in provenance and fleet views.
func (p *Platform) NodeName() string { return p.nodeName }

// Provenance returns the origin-provenance table, or nil when metrics
// are disabled.
func (p *Platform) Provenance() *obs.ProvTable { return p.prov }

// Durability reports the store's WAL watermarks (compaction backlog).
func (p *Platform) Durability() storage.DurabilityStats { return p.store.Durability() }

// rebuildCorrelationIndex reconstructs the streaming correlator's state
// from the persisted cIoC events after a restart, so a post-crash sighting
// still merges into its pre-crash cluster instead of opening a disjoint
// one. Member reconstruction fans out over the store's parallel iterator
// (the same worker budget as WAL recovery); seeding is ordered by the
// stored (timestamp, UUID) so merge survivors are chosen deterministically.
// Stale cluster identities uncovered by seeding (e.g. a crash between a
// merge's edit and its retraction) are deleted from the store.
func (p *Platform) rebuildCorrelationIndex() {
	type seedRecord struct {
		uuid    string
		ts      time.Time
		members []normalize.Event
	}
	var (
		mu    sync.Mutex
		seeds []seedRecord
	)
	p.store.ForEachParallel(p.cfg.RecoveryWorkers, func(e *misp.Event) {
		members := correlate.MembersFromMISP(e)
		if len(members) == 0 {
			return
		}
		mu.Lock()
		seeds = append(seeds, seedRecord{uuid: e.UUID, ts: e.Timestamp.Time, members: members})
		mu.Unlock()
	})
	sort.Slice(seeds, func(i, j int) bool {
		if !seeds[i].ts.Equal(seeds[j].ts) {
			return seeds[i].ts.Before(seeds[j].ts)
		}
		return seeds[i].uuid < seeds[j].uuid
	})
	var stale []string
	for _, s := range seeds {
		stale = append(stale, p.corr.Seed(s.uuid, s.members)...)
	}
	for _, uuid := range stale {
		if err := p.store.Delete(uuid); err != nil && !errors.Is(err, storage.ErrNotFound) {
			p.logger.Warn("stale cluster cleanup failed", "uuid", uuid, "error", err)
		}
	}
	if len(seeds) > 0 {
		p.logger.Info("correlation index rebuilt",
			"clusters", len(seeds), "stale_removed", len(stale))
	}
}

// Accessors for the composed services.

// TIP returns the operational module's TIP service.
func (p *Platform) TIP() *tip.Service { return p.tip }

// Broker returns the internal message bus.
func (p *Platform) Broker() *bus.Broker { return p.broker }

// Collector returns the infrastructure collector.
func (p *Platform) Collector() *infra.Collector { return p.collector }

// Dashboard returns the output module's dashboard server.
func (p *Platform) Dashboard() *dashboard.Server { return p.dash }

// Subscriptions returns the streaming-detection engine.
func (p *Platform) Subscriptions() *subscribe.Engine { return p.subs }

// Lifecycle returns the indicator-lifecycle engine, or nil when disabled.
func (p *Platform) Lifecycle() *lifecycle.Engine { return p.lifec }

// expireEvent is the lifecycle engine's expiry hook: the deletion goes
// through the TIP (tombstoning the replicated change log so mesh peers
// and subscription engines converge on the removal) and the dashboard
// forgets the indicator's rIoCs.
func (p *Platform) expireEvent(uuid string) error {
	if err := p.tip.DeleteEvent(uuid); err != nil && !errors.Is(err, storage.ErrNotFound) {
		return err
	}
	p.dash.DropEventRIoCs(uuid)
	p.tracer.Drop(uuid)
	return nil
}

// TAXII returns the sharing server, or nil when disabled.
func (p *Platform) TAXII() *taxii.Server { return p.taxiiSrv }

// Engine returns the heuristic engine.
func (p *Platform) Engine() *heuristic.Engine { return p.engine }

// FeedStats returns per-feed collection counters.
func (p *Platform) FeedStats() map[string]feed.Stats { return p.scheduler.Stats() }

// DedupStats returns the deduplication counters.
func (p *Platform) DedupStats() dedup.Stats { return p.deduper.Stats() }

// Stats returns pipeline counters.
func (p *Platform) Stats() Stats {
	return Stats{
		EventsCollected: int(p.counters.collected.Load()),
		EventsUnique:    int(p.counters.unique.Load()),
		Duplicates:      int(p.counters.duplicates.Load()),
		CIoCs:           int(p.counters.ciocs.Load()),
		ClusterEdits:    int(p.counters.clusterEdits.Load()),
		ClusterMerges:   int(p.counters.clusterMerges.Load()),
		ClustersLive:    p.corr.Stats().Clusters,
		EIoCs:           int(p.counters.eiocs.Load()),
		RIoCs:           int(p.counters.riocs.Load()),
		Classified:      int(p.counters.classified.Load()),
		Unscorable:      int(p.counters.unscorable.Load()),
		StoreFailures:   int(p.counters.storeFailures.Load()),
		StoredEvents:    p.tip.Len(),
		BusDropped:      p.broker.Dropped(),
	}
}

// ReportAlarm records an infrastructure alarm and pushes it to the
// dashboard.
func (p *Platform) ReportAlarm(a infra.Alarm) (infra.Alarm, error) {
	stored, err := p.collector.AddAlarm(a)
	if err != nil {
		return infra.Alarm{}, err
	}
	p.dash.PushAlarm(stored)
	return stored, nil
}

// ReportInternalIoC records an indicator detected inside the
// infrastructure (§III-A2). Besides feeding the heuristic context, the
// event is stored in the TIP as an organisation-only MISP event — "data
// received from the monitored infrastructures could be stored in the MISP
// database, in order to perform basic automated correlation steps, when
// some cIoCs are received" (§III-B1) — and the correlated UUIDs of already
// stored events are returned.
func (p *Platform) ReportInternalIoC(value, category, source string) (normalize.Event, []string, error) {
	e, err := p.collector.AddInternalIoC(value, category, source, p.clk.Now())
	if err != nil {
		return normalize.Event{}, nil, err
	}
	me := misp.NewEvent(fmt.Sprintf("infrastructure sighting [%s] %s", source, e.Value), p.clk.Now())
	me.Distribution = misp.DistributionOrganisation // never shared outward
	me.AddTag("caisp:infrastructure")
	typ := mispTypeFor(e.Type)
	me.AddAttribute(typ, "Internal reference", e.Value, e.LastSeen).Comment = "detected by " + source
	correlated, err := p.tip.AddEvent(me)
	if err != nil {
		return normalize.Event{}, nil, fmt.Errorf("core: store infrastructure sighting: %w", err)
	}
	return e, correlated, nil
}

// mispTypeFor maps a normalized IoC type to the MISP attribute type used
// for infrastructure sightings.
func mispTypeFor(typ normalize.IoCType) string {
	switch typ {
	case normalize.TypeIPv4, normalize.TypeIPv6, normalize.TypeCIDR:
		return "ip-dst"
	case normalize.TypeDomain:
		return "domain"
	case normalize.TypeURL:
		return "url"
	case normalize.TypeMD5:
		return "md5"
	case normalize.TypeSHA1:
		return "sha1"
	case normalize.TypeSHA256:
		return "sha256"
	case normalize.TypeSHA512:
		return "sha512"
	case normalize.TypeCVE:
		return "vulnerability"
	case normalize.TypeEmail:
		return "email-dst"
	case normalize.TypeFilename:
		return "filename"
	default:
		return "text"
	}
}

// Classifier returns the NLP text classifier, or nil when disabled.
func (p *Platform) Classifier() *textclass.Classifier { return p.classifier }

// ingest is the feed scheduler sink: classify → normalize → dedup →
// pending buffer. It is called concurrently by the feed worker pool.
func (p *Platform) ingest(e normalize.Event) {
	p.classify(&e)
	stored, isNew := p.deduper.Offer(e)
	p.counters.collected.Add(1)
	if !isNew {
		// A duplicate never starts a trace: its original may still be
		// in flight under the same ID.
		p.counters.duplicates.Add(1)
		return
	}
	p.counters.unique.Add(1)
	// Trace from the admitted identity (classification may have re-keyed
	// the event); the correlator adopts this ID at the next flush.
	p.tracer.Start(stored.ID)
	p.tracer.Mark(stored.ID, obs.StageIngest)
	p.mu.Lock()
	p.pending = append(p.pending, stored)
	p.mu.Unlock()
}

// classify tags unknown-category events from their textual context using
// the keyword classifier (§II-A: "tag OSINT data as relevant or
// irrelevant"; the prediction confidence rides along for SIEM consumers).
// It must run before deduplication: the category is part of the
// deterministic event identity.
func (p *Platform) classify(e *normalize.Event) {
	if p.classifier == nil || e.Category != normalize.CategoryUnknown {
		return
	}
	text := strings.TrimSpace(e.Context["description"] + " " + e.Context["event_info"])
	if text == "" {
		return
	}
	pred := p.classifier.Classify(text)
	if !pred.Relevant || pred.Confidence < 0.5 {
		return
	}
	e.Category = pred.Category
	if e.Context == nil {
		e.Context = make(map[string]string, 2)
	}
	e.Context["classified_as"] = pred.Category
	e.Context["classifier_confidence"] = strconv.FormatFloat(pred.Confidence, 'f', 2, 64)
	if err := normalize.Canonicalize(e); err != nil {
		return
	}
	p.counters.classified.Add(1)
}

// drainPending takes the buffered unique events for correlation.
func (p *Platform) drainPending() []normalize.Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.pending
	p.pending = nil
	return out
}

// composeAndStore folds a batch of events into the streaming correlator
// and applies the resulting delta to the TIP through the group-commit
// batch path (one WAL write and fsync for the whole flush): clusters
// emitted for the first time land as MISP event adds, grown or merged
// clusters as edits under their stable UUID, and absorbed cluster
// identities are retracted from both the TIP and the dashboard. It stores
// what it can: a cIoC that fails composition or validation is counted as
// a store failure and its error aggregated, while the rest of the batch
// still lands. The stored events are returned alongside the joined error,
// so callers can keep analyzing partial batches.
func (p *Platform) composeAndStore(events []normalize.Event) ([]*misp.Event, error) {
	if len(events) == 0 {
		return nil, nil
	}
	if p.flushDur != nil {
		defer func(start time.Time) {
			p.flushDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	delta := p.corr.Add(events)
	if delta.Empty() {
		return nil, nil
	}
	// Re-key member traces to their cluster identity: the journey of the
	// earliest member continues under the cluster UUID from here on.
	if p.tracer != nil {
		adopt := func(ciocs []correlate.ComposedIoC) {
			for i := range ciocs {
				memberIDs := make([]string, len(ciocs[i].Events))
				for j := range ciocs[i].Events {
					memberIDs[j] = ciocs[i].Events[j].ID
				}
				p.tracer.Adopt(ciocs[i].ID, obs.StageCorrelate, memberIDs)
			}
		}
		adopt(delta.New)
		adopt(delta.Updated)
	}
	var errs []error
	// Retract absorbed identities first: their members are already carried
	// by the surviving cluster's edit in the same delta, so the TIP and
	// the dashboard never count them twice.
	for _, uuid := range delta.Removed {
		if err := p.tip.DeleteEvent(uuid); err != nil && !errors.Is(err, storage.ErrNotFound) {
			errs = append(errs, fmt.Errorf("core: retract merged cluster %s: %w", uuid, err))
		}
		p.dash.DropEventRIoCs(uuid)
		p.tracer.Drop(uuid)
	}
	now := p.clk.Now()
	batch := make([]*misp.Event, 0, len(delta.New)+len(delta.Updated))
	newUUIDs := make(map[string]bool, len(delta.New))
	compose := func(ciocs []correlate.ComposedIoC) {
		for i := range ciocs {
			me, err := correlate.ToMISP(&ciocs[i], now)
			if err != nil {
				errs = append(errs, fmt.Errorf("core: compose cIoC: %w", err))
				continue
			}
			batch = append(batch, me)
		}
	}
	compose(delta.New)
	for i := range delta.New {
		newUUIDs[delta.New[i].ID] = true
	}
	compose(delta.Updated)
	stored, err := p.tip.AddEvents(batch)
	if err != nil {
		errs = append(errs, fmt.Errorf("core: store cIoCs: %w", err))
	}
	for _, me := range stored {
		p.tracer.Mark(me.UUID, obs.StageStore)
	}
	// Streaming detection: every admitted cIoC runs against the live
	// subscription set. Direct dispatch on the flush path — the same
	// loss-free route the incremental correlator uses — so standing
	// detections never drop under bus backpressure.
	for _, me := range stored {
		p.subs.EvaluateMISP(me, subscribe.StageCIoC, -1)
	}
	var added, edited int64
	for _, me := range stored {
		if newUUIDs[me.UUID] {
			added++
		} else {
			edited++
		}
	}
	p.counters.ciocs.Add(added)
	p.counters.clusterEdits.Add(edited)
	p.counters.clusterMerges.Add(int64(len(delta.Removed)))
	p.counters.storeFailures.Add(int64(len(delta.New) + len(delta.Updated) - len(stored)))
	p.maybeCompact()
	return stored, errors.Join(errs...)
}

// maybeCompact requests a background snapshot once enough WAL operations
// or bytes accumulated. It never blocks: a request while a compaction is
// already queued or running coalesces into it.
func (p *Platform) maybeCompact() {
	d := p.store.Durability()
	if d.WALOps <= p.compactAfter && d.WALBytes <= p.compactAfterBytes {
		return
	}
	select {
	case p.compactCh <- struct{}{}:
	default:
	}
}

// compactLoop is the dedicated compaction goroutine: it serializes
// snapshot publication off the ingest path and drains a pending request
// before exiting so a shutdown-time trigger is not lost.
func (p *Platform) compactLoop() {
	defer p.compactWG.Done()
	for {
		select {
		case <-p.compactStop:
			select {
			case <-p.compactCh:
				p.compactStore()
			default:
			}
			return
		case <-p.compactCh:
			p.compactStore()
		}
	}
}

func (p *Platform) compactStore() {
	if err := p.store.Compact(); err != nil {
		p.logger.Warn("store compaction failed", "error", err)
	}
}

// stopCompactor shuts the compaction goroutine down, waiting for an
// in-flight snapshot to finish. Idempotent.
func (p *Platform) stopCompactor() {
	p.compactStopOnce.Do(func() { close(p.compactStop) })
	p.compactWG.Wait()
}

// analyze runs the heuristic stage for one stored cIoC event: convert to
// STIX, score each supported SDO, enrich, write the eIoC back, reduce and
// push rIoCs, share over TAXII. Safe for concurrent use across distinct
// events; the analyzer pool shards by UUID so the same event never runs
// twice at once. The event must be caller-owned (bus-decoded or a
// pre-store composition), never a shared frozen view from the store's
// copy-free read path: the eIoC write-back below mutates me in place
// (AddAttribute/AddTag) before re-storing it — callers holding a store
// view must pass storage.GetClone output instead (DESIGN.md §8).
func (p *Platform) analyze(me *misp.Event) error {
	// A cluster absorbed by a concurrent merge has been retracted from the
	// store; analyzing its stale revision would resurrect its rIoCs.
	if !p.store.Has(me.UUID) {
		p.tracer.Drop(me.UUID)
		return nil
	}
	if p.analyzeDur != nil {
		defer func(start time.Time) {
			p.analyzeDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	// Idempotency is keyed by (UUID, membership hash): a replayed revision
	// of the same cluster is skipped, while a grown cluster — same stable
	// UUID, new content hash — is re-scored.
	key := me.UUID
	if h := correlate.ClusterContentOf(me); h != "" {
		key += "\x00" + h
	}
	p.procMu.Lock()
	fresh := p.processed.Add(key)
	p.procMu.Unlock()
	if !fresh {
		return nil
	}

	bundle, err := misp.ToSTIX(me)
	if err != nil {
		return fmt.Errorf("core: convert %s: %w", me.UUID, err)
	}
	now := p.clk.Now()
	scored := 0
	var topScore float64
	for _, obj := range bundle.Objects {
		res, err := p.engine.Evaluate(obj)
		if err != nil {
			continue // SDO type without a heuristic (relationships, identities of orgs…)
		}
		scored++
		heuristic.Enrich(obj, res)
		if res.Score > topScore {
			topScore = res.Score
		}
		rioc, err := heuristic.Reduce(obj, res, p.collector, now)
		if err != nil {
			return err
		}
		if rioc != nil {
			p.dash.PushRIoC(*rioc)
			p.counters.riocs.Add(1)
		}
		if p.taxiiSrv != nil {
			if err := p.taxiiSrv.AddObjects(TAXIICollection, obj); err != nil {
				p.logger.Warn("taxii share failed", "error", err)
			}
		}
	}
	if scored == 0 {
		p.counters.unscorable.Add(1)
		p.tracer.Drop(me.UUID)
		return nil
	}
	p.tracer.Mark(me.UUID, obs.StageAnalyze)
	// Write the threat score back into the stored MISP event — "adding the
	// threat score as a new MISP attribute" (§IV-A) — turning it into the
	// stored eIoC. Upsert: re-analysis of a grown cluster refreshes the
	// attribute instead of stacking duplicates.
	heuristic.SetBaseScore(me, topScore, now)
	me.AddTag("caisp:eioc")
	if _, err := p.tip.AddEvent(me); err != nil {
		p.tracer.Drop(me.UUID)
		return fmt.Errorf("core: store eIoC %s: %w", me.UUID, err)
	}
	p.counters.eiocs.Add(1)
	// Streaming detection: the scored eIoC re-runs against the live
	// subscription set with its threat score exposed as
	// x-caisp:threat-score, so score-gated patterns can fire.
	p.subs.EvaluateMISP(me, subscribe.StageEIoC, topScore)
	p.tracer.Finish(me.UUID, obs.StagePublish)
	p.maybeCompact()
	return nil
}

// analyzeAll fans heuristic analysis of stored events out over the
// analyzer pool. The events come from one composeAndStore batch, so their
// UUIDs are distinct and no sharding is needed; errors are joined.
func (p *Platform) analyzeAll(events []*misp.Event) error {
	workers := p.analyzers
	if workers > len(events) {
		workers = len(events)
	}
	if workers <= 1 {
		var errs []error
		for _, me := range events {
			if err := p.analyze(me); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	queue := make(chan *misp.Event)
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		errs  []error
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for me := range queue {
				if err := p.analyze(me); err != nil {
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
				}
			}
		}()
	}
	for _, me := range events {
		queue <- me
	}
	close(queue)
	wg.Wait()
	return errors.Join(errs...)
}

// RunBatch performs one synchronous pipeline pass: poll every feed once
// (in parallel), dedup, correlate, group-commit the cIoC batch, and
// analyze the stored events with the analyzer pool. Not for use while
// Start is running.
func (p *Platform) RunBatch(ctx context.Context) error {
	p.scheduler.PollOnce(ctx)
	stored, storeErr := p.composeAndStore(p.drainPending())
	if err := p.analyzeAll(stored); err != nil {
		return errors.Join(storeErr, err)
	}
	return storeErr
}

// shardOf maps an event UUID onto one of n analyzer shards (FNV-1a), so
// republished events (eIoC edits) of the same UUID always land on the
// same goroutine and never race with themselves.
func shardOf(uuid string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(uuid); i++ {
		h = (h ^ uint32(uuid[i])) * 16777619
	}
	return int(h % uint32(n))
}

// Start launches streaming mode: the feed scheduler polls on its
// intervals, a composer goroutine flushes pending events every
// flushInterval, and a sharded pool of analyzer goroutines consumes the
// bus to run heuristic analysis concurrently.
func (p *Platform) Start(ctx context.Context, flushInterval time.Duration) error {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.started {
		return fmt.Errorf("core: platform already started")
	}
	if flushInterval <= 0 {
		flushInterval = time.Second
	}
	ctx, p.cancel = context.WithCancel(ctx)
	p.started = true

	// Adds and edits both need analysis: a grown cluster is re-published
	// on the edit topic under its stable UUID and must be re-scored.
	p.sub = p.broker.Subscribe(tip.TopicEventPrefix)

	// Analyzer pool: one channel per shard, one goroutine per channel.
	shards := make([]chan *misp.Event, p.analyzers)
	for i := range shards {
		shards[i] = make(chan *misp.Event, analyzerQueueDepth)
		ch := shards[i]
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for me := range ch {
				if err := p.analyze(me); err != nil {
					p.logger.Warn("heuristic analysis failed", "uuid", me.UUID, "error", err)
				}
			}
		}()
	}

	// dispatch routes one event to its UUID shard, blocking when the
	// shard queue is full (backpressure, never loss).
	dispatch := func(me *misp.Event) bool {
		select {
		case shards[shardOf(me.UUID, len(shards))] <- me:
			return true
		case <-ctx.Done():
			return false
		}
	}
	// Both the bus dispatcher and the flusher send into the shards;
	// close them only after both exited, letting the analyzers drain
	// their queues and terminate cleanly.
	var senders sync.WaitGroup
	senders.Add(2)
	p.workers.Add(1)
	go func() {
		defer p.workers.Done()
		senders.Wait()
		for _, ch := range shards {
			close(ch)
		}
	}()

	// Dispatcher: decode bus payloads and shard them by UUID.
	p.workers.Add(1)
	go func() {
		defer p.workers.Done()
		defer senders.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case msg, ok := <-p.sub.C():
				if !ok {
					return
				}
				me, err := misp.UnmarshalWrapped(msg.Payload)
				if err != nil {
					p.logger.Warn("bus payload undecodable", "error", err)
					continue
				}
				if !me.HasTag("caisp:cioc") {
					continue // infrastructure data is stored, not analyzed
				}
				if me.HasTag("caisp:eioc") {
					// The analyzer's own eIoC write-back republishes on the
					// edit topic; re-analyzing it would loop.
					continue
				}
				if !dispatch(me) {
					return
				}
			}
		}
	}()

	// Flusher: locally composed clusters are handed to the analyzer
	// shards directly — the flusher already owns the stored events, and
	// the bus's drop-oldest buffer must not be a loss point for our own
	// flushes (it remains the path for externally injected events: TIP
	// sync imports and REST posts; the bus copy of a locally dispatched
	// event is deduplicated by the analyzer's idempotency key).
	p.workers.Add(1)
	go func() {
		defer p.workers.Done()
		defer senders.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-p.clk.After(flushInterval):
				stored, err := p.composeAndStore(p.drainPending())
				if err != nil {
					p.logger.Warn("composition failed", "error", err)
				}
				for _, me := range stored {
					if !dispatch(me) {
						return
					}
				}
			}
		}
	}()

	return p.scheduler.Start(ctx)
}

// Stop ends streaming mode and flushes remaining pending events.
func (p *Platform) Stop() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if !p.started {
		return
	}
	p.cancel()
	p.scheduler.Stop()
	if p.sub != nil {
		p.sub.Close()
	}
	p.workers.Wait()
	p.started = false
	// Final flush so nothing collected is lost.
	stored, err := p.composeAndStore(p.drainPending())
	if err != nil {
		p.logger.Warn("final composition failed", "error", err)
	}
	if err := p.analyzeAll(stored); err != nil {
		p.logger.Warn("final analysis failed", "error", err)
	}
}

// Close releases resources (store, broker, dashboard sockets). The
// compaction goroutine is drained before the store closes, so a
// snapshot triggered by the final flush still completes.
func (p *Platform) Close() error {
	p.Stop()
	if p.lifec != nil {
		p.lifec.Close()
	}
	p.stopCompactor()
	p.dash.Close()
	p.subs.Close()
	p.broker.Close()
	return p.store.Close()
}
