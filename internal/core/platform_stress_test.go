package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/tip"
)

// TestStreamingStressNoLostEvents drives the full concurrent pipeline —
// parallel feed polling, group-committed storage flushes, the sharded
// analyzer pool — while hammering the TIP with concurrent reads, then
// verifies that every unique collected indicator is queryable in the
// store and that shutdown is clean. Run under -race (`make race`).
func TestStreamingStressNoLostEvents(t *testing.T) {
	const (
		feedCount      = 6
		domainsPerFeed = 40
	)
	feeds := make([]feed.Feed, 0, feedCount)
	values := make([]string, 0, feedCount*domainsPerFeed)
	for i := 0; i < feedCount; i++ {
		var doc strings.Builder
		for j := 0; j < domainsPerFeed; j++ {
			v := fmt.Sprintf("stress-%d-%d.example", i, j)
			values = append(values, v)
			doc.WriteString(v + "\n")
		}
		feeds = append(feeds, feed.Feed{
			Name:     fmt.Sprintf("stress-feed-%d", i),
			Category: normalize.CategoryMalwareDomain,
			Fetcher:  &feed.StaticFetcher{Data: []byte(doc.String())},
			Parser:   feed.PlaintextParser{},
			Interval: 10 * time.Millisecond,
		})
	}
	p := newPlatform(t, Config{
		Feeds:           feeds,
		Clock:           clock.Real(),
		AnalyzerPool:    4,
		FeedConcurrency: 4,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Start(ctx, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Concurrent TIP readers racing with storage writes and analysis.
	readCtx, stopReaders := context.WithCancel(context.Background())
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; readCtx.Err() == nil; i++ {
				switch i % 3 {
				case 0:
					if _, err := p.TIP().Search(tip.SearchQuery{Tag: "caisp:cioc"}); err != nil {
						t.Errorf("reader %d: search: %v", r, err)
						return
					}
				case 1:
					p.TIP().Len()
				case 2:
					if _, err := p.TIP().EventsSince(time.Time{}); err != nil {
						t.Errorf("reader %d: list: %v", r, err)
						return
					}
				}
			}
		}(r)
	}

	// Let the pipeline churn until everything was collected and analyzed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := p.Stats()
		if st.EventsUnique == len(values) && st.EIoCs > 0 && st.EIoCs+st.Unscorable >= st.CIoCs && st.CIoCs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline stalled: %+v (want %d unique)", st, len(values))
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopReaders()
	readers.Wait()
	p.Stop()

	st := p.Stats()
	if st.EventsCollected != st.EventsUnique+st.Duplicates {
		t.Fatalf("collected %d != unique %d + duplicates %d",
			st.EventsCollected, st.EventsUnique, st.Duplicates)
	}
	if st.StoreFailures != 0 {
		t.Fatalf("store failures under stress: %+v", st)
	}
	// No lost events: every collected indicator is queryable in the TIP.
	for _, v := range values {
		events, err := p.TIP().Search(tip.SearchQuery{Value: v})
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			t.Fatalf("indicator %q lost between collection and storage", v)
		}
	}
	// Clean shutdown: a second Stop is a no-op and Close succeeds.
	p.Stop()
}

// TestRunBatchParallelMatchesSerial runs the same corpus through a serial
// (AnalyzerPool=1, FeedConcurrency=1) and a parallel platform and expects
// identical pipeline counters — concurrency must not change semantics.
func TestRunBatchParallelMatchesSerial(t *testing.T) {
	corpus := func() []feed.Feed {
		feeds := make([]feed.Feed, 0, 4)
		for i := 0; i < 4; i++ {
			var doc strings.Builder
			for j := 0; j < 25; j++ {
				doc.WriteString(fmt.Sprintf("par-%d-%d.example\n", i, j))
			}
			doc.WriteString("shared.example\n") // cross-feed duplicate
			feeds = append(feeds, feed.Feed{
				Name:     fmt.Sprintf("par-feed-%d", i),
				Category: normalize.CategoryMalwareDomain,
				Fetcher:  &feed.StaticFetcher{Data: []byte(doc.String())},
				Parser:   feed.PlaintextParser{},
				Interval: time.Hour,
			})
		}
		return feeds
	}
	run := func(pool, conc int) Stats {
		p := newPlatform(t, Config{Feeds: corpus(), AnalyzerPool: pool, FeedConcurrency: conc})
		if err := p.RunBatch(context.Background()); err != nil {
			t.Fatal(err)
		}
		return p.Stats()
	}
	serial := run(1, 1)
	parallel := run(4, 4)
	if serial != parallel {
		t.Fatalf("parallel pipeline diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial.EventsUnique != 101 || serial.Duplicates != 3 {
		t.Fatalf("corpus accounting off: %+v", serial)
	}
}

// TestComposeAndStorePartialBatch verifies the errors.Join satellite: a
// cIoC that cannot be composed is skipped and counted, the rest of the
// batch still lands.
func TestComposeAndStorePartialBatch(t *testing.T) {
	p := newPlatform(t, Config{})
	good1, err := normalize.New("good-1.example", normalize.CategoryMalwareDomain,
		"t", normalize.SourceOSINT, batchTime)
	if err != nil {
		t.Fatal(err)
	}
	good2, err := normalize.New("good-2.example", normalize.CategoryMalwareDomain,
		"t", normalize.SourceOSINT, batchTime)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := p.composeAndStore([]normalize.Event{good1, good2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 2 {
		t.Fatalf("stored = %d", len(stored))
	}
	st := p.Stats()
	if st.CIoCs != 2 || st.StoreFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
