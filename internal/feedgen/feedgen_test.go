package feedgen

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/dedup"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/normalize"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Items: 50, DuplicationRate: 0.2, OverlapRate: 0.1, DefangRate: 0.3}
	d1, err := New(cfg).Documents()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(cfg).Documents()
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(AllFeeds) {
		t.Fatalf("got %d feeds, want %d", len(d1), len(AllFeeds))
	}
	for name := range d1 {
		if !bytes.Equal(d1[name], d2[name]) {
			t.Fatalf("feed %s not deterministic", name)
		}
	}
	d3, err := New(Config{Seed: 43, Items: 50}).Documents()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(d1[FeedMalwareDomains], d3[FeedMalwareDomains]) {
		t.Fatal("different seeds produced identical output")
	}
}

func TestDocumentsParseWithTheirParsers(t *testing.T) {
	g := New(Config{Seed: 7, Items: 40, DefangRate: 0.5})
	feeds, err := g.Feeds(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != len(AllFeeds) {
		t.Fatalf("got %d feeds", len(feeds))
	}
	for _, f := range feeds {
		data, _, err := f.Fetcher.Fetch(context.Background())
		if err != nil {
			t.Fatalf("%s: fetch: %v", f.Name, err)
		}
		records, err := f.Parser.Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		if len(records) == 0 {
			t.Fatalf("%s: no records", f.Name)
		}
		// Every record must normalize into a typed event.
		unknown := 0
		for _, rec := range records {
			e, err := normalize.New(rec.Value, f.Category, f.Name, normalize.SourceOSINT, time.Now())
			if err != nil {
				t.Fatalf("%s: normalize %q: %v", f.Name, rec.Value, err)
			}
			if e.Type == normalize.TypeUnknown {
				unknown++
			}
		}
		if unknown > 0 {
			t.Errorf("%s: %d records with unknown type", f.Name, unknown)
		}
	}
}

func TestAdvisoryFeedLeadsWithUseCase(t *testing.T) {
	docs, err := New(Config{Seed: 1, Items: 5}).Documents()
	if err != nil {
		t.Fatal(err)
	}
	records, err := (feed.AdvisoryParser{}).Parse(docs[FeedAdvisories])
	if err != nil {
		t.Fatal(err)
	}
	if records[0].Value != "CVE-2017-9805" {
		t.Fatalf("first advisory = %q, want the paper's use case", records[0].Value)
	}
	if !strings.Contains(records[0].Context["products"], "apache struts") {
		t.Fatalf("use-case products = %q", records[0].Context["products"])
	}
}

func TestDuplicationRateDrivesDedup(t *testing.T) {
	// With heavy duplication, the deduper must fold a large share of the
	// malware-domain feed; with zero duplication it folds almost nothing
	// (the overlap pool is off too).
	run := func(dupRate float64) float64 {
		g := New(Config{Seed: 11, Items: 400, DuplicationRate: dupRate})
		docs, err := g.Documents()
		if err != nil {
			t.Fatal(err)
		}
		records, err := (feed.PlaintextParser{}).Parse(docs[FeedMalwareDomains])
		if err != nil {
			t.Fatal(err)
		}
		d := dedup.New()
		for _, rec := range records {
			e, err := normalize.New(rec.Value, normalize.CategoryMalwareDomain, "f", normalize.SourceOSINT, time.Now())
			if err != nil {
				t.Fatal(err)
			}
			d.Offer(e)
		}
		return d.Stats().ReductionRatio()
	}
	low := run(0)
	high := run(0.5)
	if low > 0.05 {
		t.Fatalf("zero duplication rate still produced %.2f reduction", low)
	}
	if high < 0.3 {
		t.Fatalf("50%% duplication rate produced only %.2f reduction", high)
	}
}

func TestOverlapCreatesCrossFeedDuplicates(t *testing.T) {
	g := New(Config{Seed: 3, Items: 200, OverlapRate: 0.6})
	docs, err := g.Documents()
	if err != nil {
		t.Fatal(err)
	}
	domains := make(map[string]bool)
	records, err := (feed.PlaintextParser{}).Parse(docs[FeedMalwareDomains])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		domains[normalize.CanonicalValue(normalize.TypeDomain, normalize.Refang(r.Value))] = true
	}
	mispRecords, err := (feed.MISPFeedParser{}).Parse(docs[FeedMISP])
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, r := range mispRecords {
		if domains[r.Value] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no cross-feed overlap despite OverlapRate 0.6")
	}
}

func TestWriteDir(t *testing.T) {
	dir := t.TempDir()
	g := New(Config{Seed: 5, Items: 10})
	if err := g.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"malware-domains.txt", "botnet-ips.csv", "phishing-urls.txt",
		"malware-hashes.csv", "vuln-advisories.json", "osint-misp.json",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestHandlerServesAndSupportsConditionalGet(t *testing.T) {
	g := New(Config{Seed: 9, Items: 10})
	h, err := g.Handler()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	fetcher := &feed.HTTPFetcher{URL: srv.URL + "/feeds/" + FeedMalwareDomains}
	data, notModified, err := fetcher.Fetch(context.Background())
	if err != nil || notModified {
		t.Fatalf("first fetch: %v %v", notModified, err)
	}
	if len(data) == 0 {
		t.Fatal("empty document")
	}
	_, notModified, err = fetcher.Fetch(context.Background())
	if err != nil || !notModified {
		t.Fatalf("conditional fetch: notModified=%v err=%v", notModified, err)
	}
	resp, err := http.Get(srv.URL + "/feeds/absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent feed status = %d", resp.StatusCode)
	}
}

func TestEndToEndThroughScheduler(t *testing.T) {
	g := New(Config{Seed: 21, Items: 30, DuplicationRate: 0.2, OverlapRate: 0.2, DefangRate: 0.4})
	feeds, err := g.Feeds(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []normalize.Event
	s := feed.NewScheduler(func(e normalize.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	for _, f := range feeds {
		if err := s.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	s.PollOnce(context.Background())
	if len(events) < 100 {
		t.Fatalf("only %d events from full poll", len(events))
	}
	stats := s.Stats()
	for name, st := range stats {
		if st.Errors != 0 || st.Malformed != 0 {
			t.Errorf("feed %s: %+v", name, st)
		}
	}
}

func TestConfigClamping(t *testing.T) {
	g := New(Config{Seed: 1, Items: -5, DuplicationRate: 5, OverlapRate: -1, DefangRate: 2})
	if g.cfg.Items != 100 {
		t.Fatalf("Items = %d", g.cfg.Items)
	}
	if g.cfg.DuplicationRate != 0.9 || g.cfg.OverlapRate != 0 || g.cfg.DefangRate != 0.9 {
		t.Fatalf("rates not clamped: %+v", g.cfg)
	}
}

func TestUnknownFeedKind(t *testing.T) {
	g := New(Config{Seed: 1, Feeds: []string{"bogus"}})
	if _, err := g.Documents(); err == nil {
		t.Fatal("unknown feed kind accepted")
	}
}

func TestMISPFeedEventsValid(t *testing.T) {
	docs, err := New(Config{Seed: 2, Items: 50}).Documents()
	if err != nil {
		t.Fatal(err)
	}
	records, err := (feed.MISPFeedParser{}).Parse(docs[FeedMISP])
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("misp feed empty")
	}
}
