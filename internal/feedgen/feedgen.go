// Package feedgen generates deterministic synthetic OSINT feeds. The paper
// collects live feeds ("malware domains, vulnerability exploitation …
// provided by several sources"); an offline reproduction cannot, so this
// package synthesizes feeds with the properties that matter to the
// pipeline: heterogeneous formats (plaintext, CSV, MISP JSON, advisory
// JSON), defanged values, intra-feed duplication and cross-feed overlap at
// configurable rates. Determinism (a seed fully fixes the output) makes
// dedup/correlation results exactly reproducible.
package feedgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
)

// Feed kind names produced by the generator.
const (
	FeedMalwareDomains = "malware-domains"
	FeedBotnetIPs      = "botnet-ips"
	FeedPhishingURLs   = "phishing-urls"
	FeedMalwareHashes  = "malware-hashes"
	FeedAdvisories     = "vuln-advisories"
	FeedMISP           = "osint-misp"
)

// AllFeeds lists every feed kind in a stable order.
var AllFeeds = []string{
	FeedMalwareDomains, FeedBotnetIPs, FeedPhishingURLs,
	FeedMalwareHashes, FeedAdvisories, FeedMISP,
}

// Config parameterizes the generator.
type Config struct {
	// Seed fixes the pseudo-random stream; equal configs generate equal
	// feeds.
	Seed int64
	// Items is the number of records per feed (default 100).
	Items int
	// DuplicationRate is the fraction of records within a feed that repeat
	// an earlier record of the same feed (0–0.9).
	DuplicationRate float64
	// OverlapRate is the fraction of records drawn from a pool shared by
	// all feeds, creating cross-feed duplicates and correlation fodder
	// (0–0.9).
	OverlapRate float64
	// DefangRate is the fraction of domain/URL values emitted defanged.
	DefangRate float64
	// Now stamps generated MISP events and advisories.
	Now time.Time
	// Feeds selects the generated kinds; nil means AllFeeds.
	Feeds []string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Items <= 0 {
		out.Items = 100
	}
	clamp := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 0.9 {
			*v = 0.9
		}
	}
	clamp(&out.DuplicationRate)
	clamp(&out.OverlapRate)
	clamp(&out.DefangRate)
	if out.Now.IsZero() {
		out.Now = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)
	}
	if len(out.Feeds) == 0 {
		out.Feeds = AllFeeds
	}
	return out
}

// Generator produces synthetic feed documents.
type Generator struct {
	cfg Config
	rng *rand.Rand

	sharedDomains []string
	sharedIPs     []string
}

// New constructs a Generator.
func New(cfg Config) *Generator {
	c := cfg.withDefaults()
	g := &Generator{cfg: c, rng: rand.New(rand.NewSource(c.Seed))}
	poolSize := c.Items/2 + 1
	for i := 0; i < poolSize; i++ {
		g.sharedDomains = append(g.sharedDomains, g.domain())
		g.sharedIPs = append(g.sharedIPs, g.ipv4())
	}
	return g
}

// Documents renders every configured feed to its document bytes, keyed by
// feed name. The result is deterministic for a given Config.
func (g *Generator) Documents() (map[string][]byte, error) {
	out := make(map[string][]byte, len(g.cfg.Feeds))
	for _, name := range g.cfg.Feeds {
		doc, err := g.document(name)
		if err != nil {
			return nil, err
		}
		out[name] = doc
	}
	return out, nil
}

// Feeds builds feed definitions (with static fetchers over the generated
// documents) ready for a scheduler.
func (g *Generator) Feeds(interval time.Duration) ([]feed.Feed, error) {
	docs, err := g.Documents()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]feed.Feed, 0, len(names))
	for _, name := range names {
		out = append(out, feed.Feed{
			Name:     name,
			Category: feedCategory(name),
			Fetcher:  &feed.StaticFetcher{Data: docs[name]},
			Parser:   feedParser(name),
			Interval: interval,
		})
	}
	return out, nil
}

// WriteDir writes each feed document to dir/<name>.<ext>.
func (g *Generator) WriteDir(dir string) error {
	docs, err := g.Documents()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("feedgen: create dir: %w", err)
	}
	for name, doc := range docs {
		path := filepath.Join(dir, name+feedExt(name))
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			return fmt.Errorf("feedgen: write %s: %w", path, err)
		}
	}
	return nil
}

// Handler serves the generated documents over HTTP at /feeds/<name>.
func (g *Generator) Handler() (http.Handler, error) {
	docs, err := g.Documents()
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	for name, doc := range docs {
		doc := doc
		mux.HandleFunc("/feeds/"+name, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("ETag", fmt.Sprintf(`"seed-%d"`, g.cfg.Seed))
			if r.Header.Get("If-None-Match") == fmt.Sprintf(`"seed-%d"`, g.cfg.Seed) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			_, _ = w.Write(doc)
		})
	}
	return mux, nil
}

func (g *Generator) document(name string) ([]byte, error) {
	switch name {
	case FeedMalwareDomains:
		return g.domainFeed(), nil
	case FeedBotnetIPs:
		return g.ipFeed(), nil
	case FeedPhishingURLs:
		return g.urlFeed(), nil
	case FeedMalwareHashes:
		return g.hashFeed(), nil
	case FeedAdvisories:
		return g.advisoryFeed()
	case FeedMISP:
		return g.mispFeed()
	default:
		return nil, fmt.Errorf("feedgen: unknown feed kind %q", name)
	}
}

// pick applies the duplication/overlap policy: with OverlapRate the value
// comes from the shared pool, with DuplicationRate a previously emitted
// value repeats, otherwise fresh() supplies a new one.
func (g *Generator) pick(emitted []string, shared []string, fresh func() string) string {
	if len(shared) > 0 && g.rng.Float64() < g.cfg.OverlapRate {
		return shared[g.rng.Intn(len(shared))]
	}
	if len(emitted) > 0 && g.rng.Float64() < g.cfg.DuplicationRate {
		return emitted[g.rng.Intn(len(emitted))]
	}
	return fresh()
}

func (g *Generator) domainFeed() []byte {
	var sb strings.Builder
	sb.WriteString("# synthetic malware domain list\n")
	var emitted []string
	for i := 0; i < g.cfg.Items; i++ {
		d := g.pick(emitted, g.sharedDomains, g.domain)
		emitted = append(emitted, d)
		sb.WriteString(g.maybeDefangDomain(d))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func (g *Generator) ipFeed() []byte {
	var sb strings.Builder
	sb.WriteString("ip,port,category,last_seen\n")
	var emitted []string
	for i := 0; i < g.cfg.Items; i++ {
		ip := g.pick(emitted, g.sharedIPs, g.ipv4)
		emitted = append(emitted, ip)
		port := []string{"22", "23", "80", "443", "8080"}[g.rng.Intn(5)]
		cat := []string{"c2", "scanner", "bruteforce"}[g.rng.Intn(3)]
		fmt.Fprintf(&sb, "%s,%s,%s,%s\n", ip, port, cat, g.cfg.Now.Format("2006-01-02"))
	}
	return []byte(sb.String())
}

func (g *Generator) urlFeed() []byte {
	var sb strings.Builder
	sb.WriteString("# synthetic phishing URL list\n")
	var emitted []string
	for i := 0; i < g.cfg.Items; i++ {
		u := g.pick(emitted, nil, func() string {
			// Half the URLs sit on shared malware domains: cross-feed
			// correlation fodder.
			host := g.domain()
			if g.rng.Float64() < 0.5 {
				host = g.sharedDomains[g.rng.Intn(len(g.sharedDomains))]
			}
			return fmt.Sprintf("http://%s/%s", host, g.word())
		})
		emitted = append(emitted, u)
		sb.WriteString(g.maybeDefangURL(u))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func (g *Generator) hashFeed() []byte {
	var sb strings.Builder
	sb.WriteString("sha256,malware,first_seen\n")
	var emitted []string
	for i := 0; i < g.cfg.Items; i++ {
		h := g.pick(emitted, nil, g.sha256)
		emitted = append(emitted, h)
		family := []string{"emotet", "trickbot", "wannacry", "dridex"}[g.rng.Intn(4)]
		fmt.Fprintf(&sb, "%s,%s,%s\n", h, family, g.cfg.Now.Format("2006-01-02"))
	}
	return []byte(sb.String())
}

func (g *Generator) advisoryFeed() ([]byte, error) {
	advisories := []feed.Advisory{{
		// The paper's §IV use case leads the feed so the end-to-end example
		// always exercises it.
		CVE:         "CVE-2017-9805",
		Description: "Apache Struts REST plugin XStream RCE via crafted POST body",
		CVSS3:       "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
		Products:    []string{"apache struts", "apache"},
		OS:          "debian",
		Published:   "2017-09-13",
		References:  []string{"https://capec.mitre.example/248", "https://cve.mitre.example/CVE-2017-9805"},
	}}
	oses := []string{"windows", "linux", "debian", "centos", "unknown"}
	products := []string{"apache", "nginx", "owncloud", "gitlab", "php", "openssh", "postgresql", "wordpress"}
	for i := 1; i < g.cfg.Items; i++ {
		year := 2015 + g.rng.Intn(5)
		adv := feed.Advisory{
			CVE:         fmt.Sprintf("CVE-%d-%04d", year, 1000+g.rng.Intn(9000)),
			Description: fmt.Sprintf("synthetic %s vulnerability in %s", g.word(), products[g.rng.Intn(len(products))]),
			Products:    []string{products[g.rng.Intn(len(products))]},
			OS:          oses[g.rng.Intn(len(oses))],
			Published:   g.cfg.Now.AddDate(0, 0, -g.rng.Intn(400)).Format("2006-01-02"),
		}
		if g.rng.Float64() < 0.8 {
			adv.CVSS3 = g.cvssVector()
		}
		if g.rng.Float64() < 0.6 {
			adv.References = []string{"https://nvd.example/" + adv.CVE}
		}
		advisories = append(advisories, adv)
	}
	return json.MarshalIndent(advisories, "", "  ")
}

func (g *Generator) mispFeed() ([]byte, error) {
	var wrapped []misp.Wrapped
	events := g.cfg.Items/10 + 1
	for i := 0; i < events; i++ {
		e := misp.NewEvent(fmt.Sprintf("OSINT synthetic campaign %s", g.word()), g.cfg.Now)
		// Deterministic UUIDs: derive from the seed and index so repeated
		// generation is stable.
		e.UUID = deterministicUUID(g.cfg.Seed, i)
		for j := 0; j < 10 && len(e.Attributes) < 10; j++ {
			switch g.rng.Intn(3) {
			case 0:
				d := g.sharedDomains[g.rng.Intn(len(g.sharedDomains))]
				e.AddAttribute("domain", "Network activity", d, g.cfg.Now)
			case 1:
				ip := g.sharedIPs[g.rng.Intn(len(g.sharedIPs))]
				e.AddAttribute("ip-dst", "Network activity", ip, g.cfg.Now)
			case 2:
				e.AddAttribute("sha256", "Payload delivery", g.sha256(), g.cfg.Now)
			}
		}
		// Attribute UUIDs are also derived from the seed so the document is
		// byte-stable across runs.
		for j := range e.Attributes {
			e.Attributes[j].UUID = deterministicUUID(g.cfg.Seed, (i+1)*1000+j)
		}
		wrapped = append(wrapped, misp.Wrapped{Event: e})
	}
	return json.MarshalIndent(wrapped, "", "  ")
}

var words = []string{
	"amber", "basilisk", "cobalt", "drifter", "ember", "falcon", "gryphon",
	"harbor", "icicle", "jackal", "kraken", "lumen", "mirage", "nomad",
	"onyx", "pylon", "quartz", "raven", "sable", "tundra", "umbra",
	"vortex", "wisp", "xenon", "yonder", "zephyr",
}

var tlds = []string{"example", "test", "invalid"}

func (g *Generator) word() string { return words[g.rng.Intn(len(words))] }

func (g *Generator) domain() string {
	return fmt.Sprintf("%s-%s%d.%s", g.word(), g.word(), g.rng.Intn(1000), tlds[g.rng.Intn(len(tlds))])
}

func (g *Generator) ipv4() string {
	// TEST-NET ranges keep synthetic data clearly synthetic.
	bases := []string{"192.0.2", "198.51.100", "203.0.113"}
	return fmt.Sprintf("%s.%d", bases[g.rng.Intn(len(bases))], 1+g.rng.Intn(254))
}

const hexDigits = "0123456789abcdef"

func (g *Generator) sha256() string {
	b := make([]byte, 64)
	for i := range b {
		b[i] = hexDigits[g.rng.Intn(16)]
	}
	return string(b)
}

func (g *Generator) cvssVector() string {
	pick := func(opts ...string) string { return opts[g.rng.Intn(len(opts))] }
	return fmt.Sprintf("CVSS:3.1/AV:%s/AC:%s/PR:%s/UI:%s/S:%s/C:%s/I:%s/A:%s",
		pick("N", "A", "L"), pick("L", "H"), pick("N", "L", "H"),
		pick("N", "R"), pick("U", "C"), pick("H", "L", "N"),
		pick("H", "L", "N"), pick("H", "L", "N"))
}

func (g *Generator) maybeDefangDomain(d string) string {
	if g.rng.Float64() >= g.cfg.DefangRate {
		return d
	}
	if i := strings.LastIndexByte(d, '.'); i > 0 {
		return d[:i] + "[.]" + d[i+1:]
	}
	return d
}

func (g *Generator) maybeDefangURL(u string) string {
	if g.rng.Float64() >= g.cfg.DefangRate {
		return u
	}
	return strings.Replace(u, "http://", "hxxp://", 1)
}

func feedCategory(name string) string {
	switch name {
	case FeedMalwareDomains:
		return normalize.CategoryMalwareDomain
	case FeedBotnetIPs:
		return normalize.CategoryBotnetC2
	case FeedPhishingURLs:
		return normalize.CategoryPhishing
	case FeedMalwareHashes:
		return normalize.CategoryMalwareHash
	case FeedAdvisories:
		return normalize.CategoryVulnExploit
	case FeedMISP:
		return normalize.CategoryMalwareDomain
	default:
		return normalize.CategoryUnknown
	}
}

func feedParser(name string) feed.Parser {
	switch name {
	case FeedBotnetIPs:
		return feed.CSVParser{ValueColumn: 0, HasHeader: true}
	case FeedMalwareHashes:
		return feed.CSVParser{ValueColumn: 0, HasHeader: true}
	case FeedAdvisories:
		return feed.AdvisoryParser{}
	case FeedMISP:
		return feed.MISPFeedParser{}
	default:
		return feed.PlaintextParser{}
	}
}

func feedExt(name string) string {
	switch name {
	case FeedBotnetIPs, FeedMalwareHashes:
		return ".csv"
	case FeedAdvisories, FeedMISP:
		return ".json"
	default:
		return ".txt"
	}
}

func deterministicUUID(seed int64, i int) string {
	r := rand.New(rand.NewSource(seed ^ int64(i)*2654435761))
	var b [16]byte
	for j := range b {
		b[j] = byte(r.Intn(256))
	}
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}
