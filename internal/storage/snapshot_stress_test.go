package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// TestSnapshotIsolationUnderConcurrentIngest hammers the copy-free read
// path with concurrent readers while a writer commits batches, asserting
// the two snapshot-isolation invariants (DESIGN.md §8):
//
//   - batch atomicity: every event of a PutBatch becomes visible at once,
//     so a reader never observes a partial batch (SearchValue over a
//     batch-shared value returns 0 or batchSize hits, all from the same
//     revision pass; UpdatedSince counts stay multiples of batchSize);
//   - immutability: an event captured by a reader keeps its contents
//     unchanged even after the writer overwrites the same UUIDs.
//
// Meant to run under -race (make race), where any lock-discipline slip in
// the shared-pointer read path turns into a report.
func TestSnapshotIsolationUnderConcurrentIngest(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		batches   = 60
		batchSize = 8
		readers   = 4
	)

	// Pre-build every batch. All events of batch i share one attribute
	// value and one timestamp; pass 2 overwrites the same UUIDs with new
	// Info ("rev2-…") but the same value and timestamp.
	batchValue := func(i int) string { return fmt.Sprintf("batch-%d.example", i) }
	batchTime := func(i int) time.Time { return now.Add(time.Duration(i) * time.Second) }
	rev1 := make([][]*misp.Event, batches)
	rev2 := make([][]*misp.Event, batches)
	for i := 0; i < batches; i++ {
		for j := 0; j < batchSize; j++ {
			e := misp.NewEvent(fmt.Sprintf("rev1-%d-%d", i, j), batchTime(i))
			e.AddAttribute("domain", "Network activity", batchValue(i), batchTime(i))
			rev1[i] = append(rev1[i], e)
			e2 := misp.NewEvent(fmt.Sprintf("rev2-%d-%d", i, j), batchTime(i))
			e2.UUID = e.UUID
			e2.AddAttribute("domain", "Network activity", batchValue(i), batchTime(i))
			rev2[i] = append(rev2[i], e2)
		}
	}

	var committed atomic.Int64 // rev1 batches fully committed
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: commit every batch twice (install, then overwrite)
		defer wg.Done()
		defer close(done)
		for i := 0; i < batches; i++ {
			if err := s.PutBatch(rev1[i]); err != nil {
				t.Error(err)
				return
			}
			committed.Store(int64(i + 1))
		}
		for i := 0; i < batches; i++ {
			if err := s.PutBatch(rev2[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	type capture struct {
		event *misp.Event
		info  string
		value string
	}
	captures := make([][]capture, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			probe := misp.NewEvent("probe", now)
			for {
				select {
				case <-done:
					return
				default:
				}
				i := rng.Intn(batches)

				// Atomicity over the value index: 0 or batchSize hits, and
				// every hit from the same write pass.
				hits, err := s.SearchValue(batchValue(i))
				if err != nil {
					t.Error(err)
					return
				}
				if len(hits) != 0 && len(hits) != batchSize {
					t.Errorf("partial batch visible: SearchValue(%s) = %d hits", batchValue(i), len(hits))
					return
				}
				if len(hits) == batchSize {
					pass := hits[0].Info[:4]
					for _, h := range hits {
						if !strings.HasPrefix(h.Info, pass) {
							t.Errorf("mixed revisions in one read: %q vs %q", hits[0].Info, h.Info)
							return
						}
					}
					if len(captures[r]) < batches {
						captures[r] = append(captures[r], capture{
							event: hits[0],
							info:  hits[0].Info,
							value: hits[0].Attributes[0].Value,
						})
					}
				}

				// Atomicity over the time index: batches land whole.
				since, err := s.UpdatedSince(batchTime(i))
				if err != nil {
					t.Error(err)
					return
				}
				if len(since)%batchSize != 0 {
					t.Errorf("partial batch visible: UpdatedSince = %d events, not a multiple of %d", len(since), batchSize)
					return
				}

				// Correlation sees the whole batch or none of it.
				probe.Attributes = probe.Attributes[:0]
				probe.AddAttribute("domain", "Network activity", batchValue(i), now)
				if got := s.Correlated(probe); len(got) != 0 && len(got) != batchSize {
					t.Errorf("partial batch visible: Correlated = %d uuids", len(got))
					return
				}

				// Point reads on a committed batch must always succeed.
				if n := committed.Load(); n > 0 {
					j := rng.Intn(int(n))
					if !s.Has(rev1[j][0].UUID) {
						t.Errorf("committed event %s missing", rev1[j][0].UUID)
						return
					}
					if _, err := s.Get(rev1[j][0].UUID); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}

	wg.Wait()
	if t.Failed() {
		return
	}

	// Immutability: everything captured mid-run still reads exactly as it
	// did, even though the writer overwrote every UUID afterwards.
	for r, caps := range captures {
		for _, c := range caps {
			if c.event.Info != c.info || c.event.Attributes[0].Value != c.value {
				t.Fatalf("reader %d: captured snapshot mutated: Info=%q (was %q)", r, c.event.Info, c.info)
			}
		}
	}

	// The final state is pass-2 everywhere.
	for i := 0; i < batches; i++ {
		e, err := s.Get(rev1[i][0].UUID)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(e.Info, "rev2-") {
			t.Fatalf("final revision = %q, want rev2", e.Info)
		}
	}
	if s.Len() != batches*batchSize {
		t.Fatalf("Len = %d, want %d", s.Len(), batches*batchSize)
	}
}
