package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// TestCompactSnapshotFailureKeepsStoreUsable is the regression test for
// the error path that used to leave the store holding a closed or stale
// WAL handle after a failed compaction: a snapshot that cannot be
// written must leave the WAL appendable, the overlay merged back, and a
// later compaction able to succeed.
func TestCompactSnapshotFailureKeepsStoreUsable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(event(t, "before", [2]string{"domain", "a.example"})); err != nil {
		t.Fatal(err)
	}
	// A directory squatting on the temp path makes os.Create fail even
	// for root, which a chmod-based injection would not.
	blocker := filepath.Join(dir, snapshotFile+".tmp")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact succeeded despite blocked snapshot temp file")
	}
	if s.overlay != nil {
		t.Fatal("overlay left active after failed compaction")
	}
	// The WAL must still accept writes after the failure.
	after := event(t, "after", [2]string{"domain", "b.example"})
	if err := s.Put(after); err != nil {
		t.Fatalf("Put after failed compaction: %v", err)
	}
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact after clearing blocker: %v", err)
	}
	if got := s.Durability().Compactions; got != 1 {
		t.Fatalf("Compactions = %d, want 1 (failed attempt must not count)", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len after reopen = %d, want 2", s2.Len())
	}
	if _, err := s2.Get(after.UUID); err != nil {
		t.Fatalf("post-failure write lost: %v", err)
	}
}

// TestSegmentRotationAndPruning drives enough writes through a tiny
// segment bound to force several rotations, then checks that compaction
// deletes exactly the sealed segments the snapshot covers.
func TestSegmentRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 40; i++ {
		if err := s.Put(event(t, fmt.Sprintf("evt-%d", i), [2]string{"domain", fmt.Sprintf("h%d.example", i)})); err != nil {
			t.Fatal(err)
		}
	}
	d := s.Durability()
	if d.WALSegments < 3 {
		t.Fatalf("WALSegments = %d, want several with a 1 KiB bound", d.WALSegments)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	d = s.Durability()
	if d.WALSegments != 1 {
		t.Fatalf("WALSegments after compact = %d, want 1 (sealed segments pruned)", d.WALSegments)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segment files on disk after compact, want 1", len(segs))
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 40 {
		t.Fatalf("Len after reopen = %d, want 40", s2.Len())
	}
}

// TestWritesDuringCompactionVisible checks the copy-on-write overlay:
// puts and deletes racing a slowed-down snapshot must be visible
// immediately and survive the merge.
func TestWritesDuringCompactionVisible(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keep := event(t, "keep", [2]string{"domain", "keep.example"})
	drop := event(t, "drop", [2]string{"domain", "drop.example"})
	for _, e := range []*misp.Event{keep, drop} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	// Install the overlay by hand — the capture phase of Compact — and
	// exercise the read/write paths while it is active.
	s.mu.Lock()
	s.overlay = make(map[string]*storedEvent)
	s.mu.Unlock()

	during := event(t, "during", [2]string{"domain", "during.example"})
	if err := s.Put(during); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(drop.UUID); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len with overlay = %d, want 2", s.Len())
	}
	if _, err := s.Get(during.UUID); err != nil {
		t.Fatalf("overlay write invisible: %v", err)
	}
	if s.Has(drop.UUID) {
		t.Fatal("tombstoned event still visible")
	}
	hits, err := s.SearchValue("during.example")
	if err != nil || len(hits) != 1 {
		t.Fatalf("index lookup through overlay = %v, %v", hits, err)
	}
	all, err := s.All()
	if err != nil || len(all) != 2 {
		t.Fatalf("All through overlay = %d events, %v", len(all), err)
	}

	// Merge — the finish phase of Compact.
	s.mu.Lock()
	for uuid, se := range s.overlay {
		if se == nil {
			delete(s.events, uuid)
		} else {
			s.events[uuid] = se
		}
	}
	s.overlay = nil
	s.mu.Unlock()

	if s.Len() != 2 || s.Has(drop.UUID) {
		t.Fatal("overlay merge lost state")
	}
	if _, err := s.Get(during.UUID); err != nil {
		t.Fatalf("overlay write lost by merge: %v", err)
	}
}

// TestLegacyFormatMigration opens a store laid out in the
// pre-segmentation format (monolithic snapshot + JSON-lines events.wal)
// and checks that recovery reads it and the first compaction replaces
// it with the streaming snapshot and removes the legacy WAL.
func TestLegacyFormatMigration(t *testing.T) {
	dir := t.TempDir()
	snap := event(t, "from-snapshot", [2]string{"domain", "snap.example"})
	walE := event(t, "from-wal", [2]string{"domain", "wal.example"})
	legacy := struct {
		Seq    uint64        `json:"seq"`
		Events []*misp.Event `json:"events"`
	}{Seq: 1, Events: []*misp.Event{snap}}
	blob, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := json.Marshal(walRecord{Seq: 2, Op: "put", Event: walE})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, legacyWALFile), append(rec, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("Len after legacy recovery = %d, want 2", s.Len())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyWALFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy wal not removed by compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len after migrated reopen = %d, want 2", s2.Len())
	}
}

// TestConcurrentBatchesDuringBackgroundCompaction is the -race stress
// test from the acceptance criteria: concurrent PutBatch writers and
// readers race a compaction loop; after reopening, every committed batch
// must be present in full — nothing lost, nothing partial.
func TestConcurrentBatchesDuringBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentSize(8<<10))
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers    = 4
		batches    = 25
		batchSize  = 4
		compactors = 1
	)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		want = make(map[string]string) // uuid -> info of every committed event
	)
	stop := make(chan struct{})
	for c := 0; c < compactors; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if err := s.Compact(); err != nil {
						t.Errorf("Compact: %v", err)
						return
					}
				}
			}
		}()
	}
	// Readers hammer the overlay-aware read paths while snapshots run.
	readerStop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-readerStop:
					return
				default:
					s.Len()
					if _, err := s.UpdatedSince(now.Add(-time.Hour)); err != nil {
						t.Errorf("UpdatedSince: %v", err)
						return
					}
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for b := 0; b < batches; b++ {
				batch := make([]*misp.Event, batchSize)
				for i := range batch {
					batch[i] = event(t, fmt.Sprintf("w%d-b%d-i%d", w, b, i),
						[2]string{"domain", fmt.Sprintf("w%d-b%d-i%d.example", w, b, i)})
				}
				if err := s.PutBatch(batch); err != nil {
					t.Errorf("PutBatch: %v", err)
					return
				}
				mu.Lock()
				for _, e := range batch {
					want[e.UUID] = e.Info
				}
				mu.Unlock()
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	close(readerStop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("recovered %d events, want %d", s2.Len(), len(want))
	}
	for uuid, info := range want {
		e, err := s2.Get(uuid)
		if err != nil {
			t.Fatalf("committed event %s lost: %v", uuid, err)
		}
		if e.Info != info {
			t.Fatalf("event %s recovered with info %q, want %q", uuid, e.Info, info)
		}
	}
}
