package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

var now = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

func event(t testing.TB, info string, attrs ...[2]string) *misp.Event {
	t.Helper()
	e := misp.NewEvent(info, now)
	for _, kv := range attrs {
		e.AddAttribute(kv[0], "Network activity", kv[1], now)
	}
	return e
}

func openTemp(t *testing.T, opts ...Option) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Info != "evt" || len(got.Attributes) != 1 {
		t.Fatalf("Get = %+v", got)
	}
	if err := s.Delete(e.UUID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(e.UUID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete(e.UUID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s, _ := openTemp(t)
	bad := event(t, "x")
	bad.UUID = "not-a-uuid"
	if err := s.Put(bad); err == nil {
		t.Fatal("invalid event stored")
	}
}

func TestGetCloneReturnsCopy(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetClone(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	got.Info = "mutated"
	got.Attributes[0].Value = "mutated.example"
	again, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Info != "evt" || again.Attributes[0].Value != "evil.example" {
		t.Fatal("GetClone result aliases internal state")
	}
	if _, err := s.GetClone("00000000-0000-4000-8000-00000000dead"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetClone(missing) = %v, want ErrNotFound", err)
	}
}

func TestGetReturnsSharedFrozenView(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	first, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("Get allocated a copy; want the shared frozen revision")
	}
	// Replacing the event installs a fresh revision; the captured pointer
	// keeps describing the old one, unchanged.
	e2 := event(t, "evt v2", [2]string{"domain", "new.example"})
	e2.UUID = e.UUID
	if err := s.Put(e2); err != nil {
		t.Fatal(err)
	}
	if first.Info != "evt" || first.Attributes[0].Value != "evil.example" {
		t.Fatal("captured snapshot mutated by a later Put")
	}
	current, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if current == first || current.Info != "evt v2" {
		t.Fatalf("Get after replace = %+v", current)
	}
}

func TestCloneReadsOption(t *testing.T) {
	s, _ := openTemp(t, WithCloneReads(true))
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	got.Info = "mutated"
	got.Attributes[0].Value = "mutated.example"
	hits, err := s.SearchValue("evil.example")
	if err != nil || len(hits) != 1 {
		t.Fatalf("SearchValue = %v, %v", hits, err)
	}
	hits[0].Info = "also mutated"
	again, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Info != "evt" || again.Attributes[0].Value != "evil.example" {
		t.Fatal("WithCloneReads result aliases internal state")
	}
	since, err := s.UpdatedSince(now.Add(-time.Minute))
	if err != nil || len(since) != 1 {
		t.Fatalf("UpdatedSince under clone reads = %v, %v", since, err)
	}
}

func TestHas(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if s.Has(e.UUID) {
		t.Fatal("Has before Put")
	}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if !s.Has(e.UUID) {
		t.Fatal("Has after Put")
	}
	if err := s.Delete(e.UUID); err != nil {
		t.Fatal(err)
	}
	if s.Has(e.UUID) {
		t.Fatal("Has after Delete")
	}
}

func TestPutReplacesAndReindexes(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "old.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	e2 := event(t, "evt v2", [2]string{"domain", "new.example"})
	e2.UUID = e.UUID
	if err := s.Put(e2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	hits, err := s.SearchValue("old.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("old value still indexed: %d hits", len(hits))
	}
	hits, err = s.SearchValue("new.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("new value not indexed: %d hits", len(hits))
	}
}

func TestSearches(t *testing.T) {
	s, _ := openTemp(t)
	a := event(t, "a", [2]string{"domain", "evil.example"}, [2]string{"ip-dst", "203.0.113.7"})
	b := event(t, "b", [2]string{"domain", "other.example"})
	b.AddTag("tlp:red")
	for _, e := range []*misp.Event{a, b} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	byVal, err := s.SearchValue("evil.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(byVal) != 1 || byVal[0].UUID != a.UUID {
		t.Fatalf("SearchValue = %+v", byVal)
	}
	byType, err := s.SearchType("domain")
	if err != nil {
		t.Fatal(err)
	}
	if len(byType) != 2 {
		t.Fatalf("SearchType(domain) = %d hits, want 2", len(byType))
	}
	byTag, err := s.SearchTag("tlp:red")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTag) != 1 || byTag[0].UUID != b.UUID {
		t.Fatalf("SearchTag = %+v", byTag)
	}
	since, err := s.UpdatedSince(now.Add(-time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(since) != 2 {
		t.Fatalf("UpdatedSince = %d hits, want 2", len(since))
	}
	since, err = s.UpdatedSince(now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(since) != 0 {
		t.Fatalf("UpdatedSince(future) = %d hits, want 0", len(since))
	}
}

func TestSearchesWithoutIndexes(t *testing.T) {
	s, _ := openTemp(t, WithIndexes(false))
	a := event(t, "a", [2]string{"domain", "evil.example"})
	a.AddTag("tlp:amber")
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	hits, err := s.SearchValue("evil.example")
	if err != nil || len(hits) != 1 {
		t.Fatalf("SearchValue without indexes = %v, %v", hits, err)
	}
	hits, err = s.SearchType("domain")
	if err != nil || len(hits) != 1 {
		t.Fatalf("SearchType without indexes = %v, %v", hits, err)
	}
	hits, err = s.SearchTag("tlp:amber")
	if err != nil || len(hits) != 1 {
		t.Fatalf("SearchTag without indexes = %v, %v", hits, err)
	}
}

func TestCorrelated(t *testing.T) {
	s, _ := openTemp(t)
	a := event(t, "a", [2]string{"domain", "shared.example"})
	b := event(t, "b", [2]string{"hostname", "shared.example"})
	c := event(t, "c", [2]string{"domain", "unrelated.example"})
	for _, e := range []*misp.Event{a, b, c} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Correlated(a)
	if len(got) != 1 || got[0] != b.UUID {
		t.Fatalf("Correlated = %v, want [%s]", got, b.UUID)
	}
	// Without indexes the same answer comes from a scan.
	s2, _ := openTemp(t, WithIndexes(false))
	for _, e := range []*misp.Event{a, b, c} {
		if err := s2.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := s2.Correlated(a); len(got) != 1 || got[0] != b.UUID {
		t.Fatalf("Correlated (no index) = %v", got)
	}
}

func TestReplayAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var uuids []string
	for i := 0; i < 10; i++ {
		e := event(t, fmt.Sprintf("evt-%d", i), [2]string{"domain", fmt.Sprintf("h%d.example", i)})
		uuids = append(uuids, e.UUID)
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(uuids[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 9 {
		t.Fatalf("replayed Len = %d, want 9", s2.Len())
	}
	if _, err := s2.Get(uuids[3]); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted event resurrected by replay")
	}
	hits, err := s2.SearchValue("h5.example")
	if err != nil || len(hits) != 1 {
		t.Fatalf("indexes not rebuilt on replay: %v, %v", hits, err)
	}
}

func TestCompactAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(event(t, fmt.Sprintf("evt-%d", i), [2]string{"domain", fmt.Sprintf("h%d.example", i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.WALOps() != 0 {
		t.Fatalf("WALOps after compact = %d", s.WALOps())
	}
	// Writes after the snapshot land in the fresh WAL.
	post := event(t, "post-compact", [2]string{"domain", "late.example"})
	if err := s.Put(post); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The WAL should be small (one record) across all live segments.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		fs, _, err := scanSegment(data, i == len(segs)-1)
		if err != nil {
			t.Fatal(err)
		}
		frames += len(fs)
	}
	if frames != 1 {
		t.Fatalf("wal has %d records after compaction, want 1", frames)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 6 {
		t.Fatalf("Len after snapshot+wal replay = %d, want 6", s2.Len())
	}
	if _, err := s2.Get(post.UUID); err != nil {
		t.Fatalf("post-compact event lost: %v", err)
	}
}

func TestTornWALTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final write: a frame header promising more payload
	// than ever reached the disk, at the tail of the active segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, frameHdrLen+4)
	torn[0] = 200 // header claims a 200-byte payload; only 4 follow
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

func TestCorruptWALMiddleRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(event(t, "evt", [2]string{"domain", "a.example"})); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(event(t, "evt2", [2]string{"domain", "b.example"})); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first frame's payload: a CRC mismatch with an
	// intact frame after it is corruption, not a torn tail → must fail loudly.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	path := segs[len(segs)-1].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHdrLen+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact on memory store: %v", err)
	}
}

func TestWithSync(t *testing.T) {
	s, _ := openTemp(t, WithSync(true))
	if err := s.Put(event(t, "evt", [2]string{"domain", "evil.example"})); err != nil {
		t.Fatal(err)
	}
}

func TestAllSorted(t *testing.T) {
	s, _ := openTemp(t)
	for i := 0; i < 20; i++ {
		if err := s.Put(event(t, fmt.Sprintf("evt-%d", i), [2]string{"domain", fmt.Sprintf("h%d.example", i)})); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("All = %d events", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].UUID >= all[i].UUID {
			t.Fatal("All not sorted by UUID")
		}
	}
}

func TestConcurrentPutsAndReads(t *testing.T) {
	s, _ := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e := event(t, fmt.Sprintf("g%d-%d", g, i), [2]string{"domain", fmt.Sprintf("g%d-%d.example", g, i)})
				if err := s.Put(e); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.SearchType("domain"); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
}

func TestObjectAttributesIndexed(t *testing.T) {
	s, _ := openTemp(t)
	e := misp.NewEvent("with object", now)
	obj := e.AddObject("vulnerability", "vulnerability")
	obj.AddAttribute("vulnerability", "External analysis", "CVE-2021-44228", now)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	hits, err := s.SearchValue("CVE-2021-44228")
	if err != nil || len(hits) != 1 {
		t.Fatalf("SearchValue over object attrs = %d, %v", len(hits), err)
	}
	hits, err = s.SearchType("vulnerability")
	if err != nil || len(hits) != 1 {
		t.Fatalf("SearchType over object attrs = %d, %v", len(hits), err)
	}
	// Correlation across loose and object attributes.
	loose := misp.NewEvent("loose", now)
	loose.AddAttribute("vulnerability", "External analysis", "CVE-2021-44228", now)
	if err := s.Put(loose); err != nil {
		t.Fatal(err)
	}
	if got := s.Correlated(loose); len(got) != 1 || got[0] != e.UUID {
		t.Fatalf("Correlated = %v", got)
	}
}

func TestUpdatedSinceTimeOrdered(t *testing.T) {
	s, _ := openTemp(t)
	// Insert out of timestamp order.
	var uuids [5]string
	for _, i := range []int{3, 0, 4, 1, 2} {
		e := misp.NewEvent(fmt.Sprintf("evt-%d", i), now.Add(time.Duration(i)*time.Hour))
		e.AddAttribute("domain", "Network activity", fmt.Sprintf("h%d.example", i), now)
		uuids[i] = e.UUID
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	since, err := s.UpdatedSince(now.Add(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(since) != 3 {
		t.Fatalf("UpdatedSince = %d hits, want 3", len(since))
	}
	for i, want := range []string{uuids[2], uuids[3], uuids[4]} {
		if since[i].UUID != want {
			t.Fatalf("UpdatedSince[%d] = %s (%s), want %s (oldest first)", i, since[i].UUID, since[i].Info, want)
		}
	}
	// Replacing an event with a later timestamp moves it in the index
	// without duplicating it.
	moved := misp.NewEvent("evt-0 v2", now.Add(10*time.Hour))
	moved.UUID = uuids[0]
	moved.AddAttribute("domain", "Network activity", "h0.example", now)
	if err := s.Put(moved); err != nil {
		t.Fatal(err)
	}
	since, err = s.UpdatedSince(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(since) != 5 {
		t.Fatalf("UpdatedSince after move = %d hits, want 5", len(since))
	}
	if since[len(since)-1].UUID != uuids[0] {
		t.Fatal("replaced event not moved to its new timestamp position")
	}
	// Deletions leave the index consistent.
	if err := s.Delete(uuids[4]); err != nil {
		t.Fatal(err)
	}
	since, err = s.UpdatedSince(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(since) != 4 {
		t.Fatalf("UpdatedSince after delete = %d hits, want 4", len(since))
	}
}

func TestWrappedJSONCache(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	first, err := s.WrappedJSON(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	var w misp.Wrapped
	if err := json.Unmarshal(first, &w); err != nil || w.Event == nil || w.Event.Info != "evt" {
		t.Fatalf("WrappedJSON decode = %+v, %v", w.Event, err)
	}
	second, err := s.WrappedJSON(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Fatal("WrappedJSON re-encoded; want the cached bytes")
	}
	// A new revision invalidates the cache by replacing the stored entry.
	e2 := event(t, "evt v2", [2]string{"domain", "new.example"})
	e2.UUID = e.UUID
	if err := s.Put(e2); err != nil {
		t.Fatal(err)
	}
	third, err := s.WrappedJSON(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(third, &w); err != nil || w.Event.Info != "evt v2" {
		t.Fatalf("WrappedJSON after replace = %+v, %v", w.Event, err)
	}
	if _, err := s.WrappedJSON("00000000-0000-4000-8000-00000000dead"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("WrappedJSON(missing) = %v, want ErrNotFound", err)
	}
}

func TestWrappedJSONFor(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "evil.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	stored, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := s.WrappedJSONFor(stored)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.WrappedJSON(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if &cached[0] != &again[0] {
		t.Fatal("WrappedJSONFor(stored revision) missed the cache")
	}
	// A foreign event with the same UUID (e.g. a caller's pre-Put copy) is
	// encoded fresh, never served a different revision's bytes.
	foreign := stored.Clone()
	foreign.Info = "caller copy"
	fresh, err := s.WrappedJSONFor(foreign)
	if err != nil {
		t.Fatal(err)
	}
	var w misp.Wrapped
	if err := json.Unmarshal(fresh, &w); err != nil || w.Event.Info != "caller copy" {
		t.Fatalf("WrappedJSONFor(foreign) = %+v, %v", w.Event, err)
	}
}
