// Package storage implements the embedded event store backing the
// operational module — the stand-in for the relational database of the
// paper's MISP instance. Events are MISP events keyed by UUID; writes go
// through an append-only JSON-lines write-ahead log, reads are served from
// in-memory maps with secondary indexes over attribute values, attribute
// types and tags (MISP's "correlation" lookups). Snapshots bound recovery
// time; a truncated or corrupted WAL tail is tolerated on replay.
//
// The read side is snapshot-isolated: Put/PutBatch install events that are
// never mutated afterwards, so Get/Search*/All/UpdatedSince return shared
// frozen revisions instead of deep copies, and the lock-held critical
// sections shrink to map lookups. Callers that intend to mutate a result
// must take GetClone (see DESIGN.md §8). A time-ordered index makes
// UpdatedSince O(log n + k); postings are map-backed sets with lazily
// rebuilt sorted slices; and the wrapped-MISP wire encoding is cached once
// per stored revision (WrappedJSON).
package storage

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

const (
	walFile      = "events.wal"
	snapshotFile = "snapshot.json"
)

// ErrNotFound is returned when the requested event does not exist.
var ErrNotFound = errors.New("storage: event not found")

// storedEvent is one installed revision: the frozen event plus its lazily
// computed wrapped-MISP wire encoding. A Put of the same UUID installs a
// fresh storedEvent, so cached bytes can never describe a stale revision.
type storedEvent struct {
	event   *misp.Event
	wrapped atomic.Pointer[[]byte]
}

// wrappedJSON returns the {"Event": …} encoding of this revision,
// computing it at most once. Safe for concurrent use; never called with
// the store lock held — the event is frozen, so no lock is needed.
func (se *storedEvent) wrappedJSON() ([]byte, error) {
	if p := se.wrapped.Load(); p != nil {
		return *p, nil
	}
	data, err := misp.MarshalWrapped(se.event)
	if err != nil {
		return nil, err
	}
	se.wrapped.Store(&data)
	return data, nil
}

// postings is one secondary-index entry: the set of event UUIDs for a key,
// plus a lazily rebuilt UUID-sorted slice. The set is only mutated under
// the store's write lock; the sorted cache is an atomic pointer so readers
// holding the read lock can rebuild it concurrently without racing.
type postings struct {
	set    map[string]struct{}
	sorted atomic.Pointer[[]string]
}

// uuids returns the members in sorted order, rebuilding the cache if a
// write invalidated it. Concurrent rebuilds are idempotent.
func (p *postings) uuids() []string {
	if sp := p.sorted.Load(); sp != nil {
		return *sp
	}
	out := make([]string, 0, len(p.set))
	for uuid := range p.set {
		out = append(out, uuid)
	}
	sort.Strings(out)
	p.sorted.Store(&out)
	return out
}

func addPosting(m map[string]*postings, key, uuid string) {
	p := m[key]
	if p == nil {
		p = &postings{set: make(map[string]struct{}, 1)}
		m[key] = p
	}
	p.set[uuid] = struct{}{}
	p.sorted.Store(nil)
}

func removePosting(m map[string]*postings, key, uuid string) {
	p := m[key]
	if p == nil {
		return
	}
	delete(p.set, uuid)
	if len(p.set) == 0 {
		delete(m, key)
		return
	}
	p.sorted.Store(nil)
}

// timeEntry is one element of the time-ordered sync index, sorted by
// (timestamp, uuid).
type timeEntry struct {
	ts   time.Time
	uuid string
}

// Store is a concurrency-safe embedded event store. Construct with Open.
type Store struct {
	mu sync.RWMutex

	dir  string
	wal  *os.File
	walW *bufio.Writer
	seq  uint64
	sync bool

	events     map[string]*storedEvent // by event UUID
	byValue    map[string]*postings    // attribute value -> event UUIDs
	byType     map[string]*postings    // attribute type  -> event UUIDs
	byTag      map[string]*postings    // tag name        -> event UUIDs
	byTime     []timeEntry             // ascending (timestamp, uuid)
	walOps     int                     // operations appended since last snapshot
	indexing   bool
	cloneReads bool
}

// Option configures Open.
type Option interface{ apply(*Store) }

type syncOption bool

func (o syncOption) apply(s *Store) { s.sync = bool(o) }

// WithSync forces an fsync after every WAL append (durable but slow).
// Default is buffered writes flushed on every append without fsync.
func WithSync(enabled bool) Option { return syncOption(enabled) }

type indexOption bool

func (o indexOption) apply(s *Store) { s.indexing = bool(o) }

// WithIndexes toggles secondary-index maintenance (ablation benchmarks
// disable it to measure the cost of full scans). Default on.
func WithIndexes(enabled bool) Option { return indexOption(enabled) }

type cloneReadsOption bool

func (o cloneReadsOption) apply(s *Store) { s.cloneReads = bool(o) }

// WithCloneReads restores the pre-snapshot read path — every read deep
// copies its results and UpdatedSince falls back to a full scan — as the
// ablation baseline for the read-path benchmarks. Default off.
func WithCloneReads(enabled bool) Option { return cloneReadsOption(enabled) }

// walRecord is one WAL entry.
type walRecord struct {
	Seq   uint64      `json:"seq"`
	Op    string      `json:"op"` // "put" or "delete"
	UUID  string      `json:"uuid,omitempty"`
	Event *misp.Event `json:"event,omitempty"`
}

// snapshot is the persisted full state.
type snapshot struct {
	Seq    uint64        `json:"seq"`
	Events []*misp.Event `json:"events"`
}

// Open loads (or creates) a store in dir. An empty dir opens a memory-only
// store with no durability.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:      dir,
		events:   make(map[string]*storedEvent),
		byValue:  make(map[string]*postings),
		byType:   make(map[string]*postings),
		byTag:    make(map[string]*postings),
		indexing: true,
	}
	for _, o := range opts {
		o.apply(s)
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	s.wal = wal
	s.walW = bufio.NewWriter(wal)
	return s, nil
}

// Put stores (or replaces) an event. The store keeps a private copy taken
// before the write lock; the caller retains ownership of e.
func (s *Store) Put(e *misp.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	cp := e.Clone() // unlocked: the caller's event is copied before the write lock
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if err := s.appendWAL(walRecord{Seq: s.seq, Op: "put", Event: cp}); err != nil {
		return err
	}
	s.apply(cp)
	return nil
}

// PutBatch stores a batch of events with group-commit semantics: every
// event is validated and cloned first, then all WAL records are encoded
// into one buffer and written with a single flush (and, with WithSync, a
// single fsync) before the in-memory state is updated. Amortizing the
// write-path fixed costs over the batch is what makes high-volume ingest
// keep up with parallel feed polling. The batch is all-or-nothing: a
// validation or WAL error leaves the store unchanged, and the whole batch
// becomes visible atomically — readers never observe a partial batch.
func (s *Store) PutBatch(events []*misp.Event) error {
	if len(events) == 0 {
		return nil
	}
	cps := make([]*misp.Event, len(events))
	for i, e := range events {
		if e == nil {
			return fmt.Errorf("storage: nil event in batch")
		}
		if err := e.Validate(); err != nil {
			return err
		}
		cps[i] = e.Clone() // unlocked: caller events are copied before the write lock
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]walRecord, len(cps))
	for i, cp := range cps {
		s.seq++
		recs[i] = walRecord{Seq: s.seq, Op: "put", Event: cp}
	}
	if err := s.appendWALGroup(recs); err != nil {
		s.seq -= uint64(len(cps)) // nothing was written; roll the sequence back
		return err
	}
	for _, cp := range cps {
		s.apply(cp)
	}
	return nil
}

// Get returns the current revision of the event with the given UUID as a
// shared frozen view: the result must not be mutated. Callers that need a
// private copy take GetClone.
func (s *Store) Get(uuid string) (*misp.Event, error) {
	s.mu.RLock()
	se, ok := s.events[uuid]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	if s.cloneReads {
		return se.event.Clone(), nil // unlocked: ablation copy taken after the lock was released
	}
	return se.event, nil
}

// GetClone returns a private deep copy of the event — the read for callers
// that intend to mutate the result.
func (s *Store) GetClone(uuid string) (*misp.Event, error) {
	e, err := s.Get(uuid)
	if err != nil {
		return nil, err
	}
	return e.Clone(), nil // unlocked: private copy taken after the lock was released
}

// Has reports whether an event with the given UUID is stored, without
// materializing it.
func (s *Store) Has(uuid string) bool {
	s.mu.RLock()
	_, ok := s.events[uuid]
	s.mu.RUnlock()
	return ok
}

// WrappedJSON returns the {"Event": …} wire encoding of the current
// revision of the event, computed at most once per revision and shared
// between the bus publisher and the HTTP read paths. The returned bytes
// are read-only.
func (s *Store) WrappedJSON(uuid string) ([]byte, error) {
	s.mu.RLock()
	se, ok := s.events[uuid]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	return se.wrappedJSON()
}

// WrappedJSONFor returns the cached wire encoding when e is a stored
// revision (as returned by the copy-free read methods), and a fresh
// encoding of e otherwise. The returned bytes are read-only.
func (s *Store) WrappedJSONFor(e *misp.Event) ([]byte, error) {
	s.mu.RLock()
	se, ok := s.events[e.UUID]
	s.mu.RUnlock()
	if ok && se.event == e {
		return se.wrappedJSON()
	}
	return misp.MarshalWrapped(e)
}

// Delete removes the event with the given UUID.
func (s *Store) Delete(uuid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.events[uuid]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	s.seq++
	if err := s.appendWAL(walRecord{Seq: s.seq, Op: "delete", UUID: uuid}); err != nil {
		return err
	}
	s.applyDelete(uuid)
	return nil
}

// Len returns the number of stored events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// All returns every event, sorted by UUID, as shared frozen views.
func (s *Store) All() ([]*misp.Event, error) {
	s.mu.RLock()
	out := make([]*misp.Event, 0, len(s.events))
	for _, se := range s.events {
		out = append(out, se.event)
	}
	s.mu.RUnlock()
	return s.finish(out, false), nil
}

// SearchValue returns events carrying an attribute with exactly this value.
func (s *Store) SearchValue(value string) ([]*misp.Event, error) {
	if s.indexing {
		s.mu.RLock()
		out := s.collect(s.byValue[value])
		s.mu.RUnlock()
		return s.finish(out, true), nil
	}
	return s.scanMatch(func(e *misp.Event) bool {
		for _, a := range allAttributes(e) {
			if a.Value == value {
				return true
			}
		}
		return false
	})
}

// SearchType returns events carrying at least one attribute of this type.
func (s *Store) SearchType(attrType string) ([]*misp.Event, error) {
	if s.indexing {
		s.mu.RLock()
		out := s.collect(s.byType[attrType])
		s.mu.RUnlock()
		return s.finish(out, true), nil
	}
	return s.scanMatch(func(e *misp.Event) bool {
		for _, a := range allAttributes(e) {
			if a.Type == attrType {
				return true
			}
		}
		return false
	})
}

// SearchTag returns events carrying the given tag.
func (s *Store) SearchTag(tag string) ([]*misp.Event, error) {
	if s.indexing {
		s.mu.RLock()
		out := s.collect(s.byTag[tag])
		s.mu.RUnlock()
		return s.finish(out, true), nil
	}
	return s.scanMatch(func(e *misp.Event) bool { return e.HasTag(tag) })
}

// UpdatedSince returns events whose timestamp is at or after t, oldest
// first (the natural order for pull synchronization). The time-ordered
// index makes this O(log n + k) instead of a full scan.
func (s *Store) UpdatedSince(t time.Time) ([]*misp.Event, error) {
	if s.cloneReads {
		// Ablation baseline: the pre-snapshot scan-and-copy read path.
		return s.scanMatch(func(e *misp.Event) bool { return !e.Timestamp.Before(t) })
	}
	s.mu.RLock()
	i := sort.Search(len(s.byTime), func(i int) bool { return !s.byTime[i].ts.Before(t) })
	out := make([]*misp.Event, 0, len(s.byTime)-i)
	for _, ent := range s.byTime[i:] {
		if se, ok := s.events[ent.uuid]; ok {
			out = append(out, se.event)
		}
	}
	s.mu.RUnlock()
	return out, nil
}

// Correlated returns the UUIDs of events sharing at least one attribute
// value with the given event — MISP's automatic correlation.
func (s *Store) Correlated(e *misp.Event) []string {
	s.mu.RLock()
	seen := make(map[string]bool)
	var out []string
	for _, a := range e.Attributes {
		s.correlateValue(e, a.Value, seen, &out)
	}
	for _, o := range e.Objects {
		for _, a := range o.Attributes {
			s.correlateValue(e, a.Value, seen, &out)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// correlateValue accumulates UUIDs of stored events carrying value.
// Caller holds at least the read lock.
func (s *Store) correlateValue(e *misp.Event, value string, seen map[string]bool, out *[]string) {
	if s.indexing {
		p := s.byValue[value]
		if p == nil {
			return
		}
		for uuid := range p.set {
			if uuid != e.UUID && !seen[uuid] {
				seen[uuid] = true
				*out = append(*out, uuid)
			}
		}
		return
	}
	for uuid, se := range s.events {
		if uuid == e.UUID || seen[uuid] {
			continue
		}
		for _, oa := range allAttributes(se.event) {
			if oa.Value == value {
				seen[uuid] = true
				*out = append(*out, uuid)
				break
			}
		}
	}
}

// Compact writes a snapshot of the current state and truncates the WAL.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	snap := snapshot{Seq: s.seq}
	for _, se := range s.events {
		snap.Events = append(snap.Events, se.event)
	}
	sort.Slice(snap.Events, func(i, j int) bool { return snap.Events[i].UUID < snap.Events[j].UUID })
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("storage: encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	// Truncate the WAL now that the snapshot covers it.
	if s.wal != nil {
		if err := s.walW.Flush(); err != nil {
			return err
		}
		if err := s.wal.Close(); err != nil {
			return err
		}
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: reopen wal: %w", err)
	}
	s.wal = wal
	s.walW = bufio.NewWriter(wal)
	s.walOps = 0
	return nil
}

// WALOps reports operations appended since the last snapshot (compaction
// policy input).
func (s *Store) WALOps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walOps
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if err := s.walW.Flush(); err != nil {
		return err
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

func (s *Store) appendWAL(rec walRecord) error {
	return s.appendWALGroup([]walRecord{rec})
}

// appendWALGroup writes a group of records as one buffered write, one
// flush and (with WithSync) one fsync — the group commit. Caller holds the
// write lock.
func (s *Store) appendWALGroup(recs []walRecord) error {
	if s.walW == nil {
		s.walOps += len(recs)
		return nil // memory-only store
	}
	var buf []byte
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("storage: encode wal record: %w", err)
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
	}
	if _, err := s.walW.Write(buf); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	if err := s.walW.Flush(); err != nil {
		return fmt.Errorf("storage: flush wal: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("storage: sync wal: %w", err)
		}
	}
	s.walOps += len(recs)
	return nil
}

// apply installs a put into memory state as a fresh frozen revision.
// Caller holds the write lock.
func (s *Store) apply(e *misp.Event) {
	if old, ok := s.events[e.UUID]; ok {
		s.unindex(old.event)
		s.timeRemove(old.event.Timestamp.Time, e.UUID)
	}
	s.events[e.UUID] = &storedEvent{event: e}
	s.index(e)
	s.timeInsert(e.Timestamp.Time, e.UUID)
}

func (s *Store) applyDelete(uuid string) {
	if old, ok := s.events[uuid]; ok {
		s.unindex(old.event)
		s.timeRemove(old.event.Timestamp.Time, uuid)
		delete(s.events, uuid)
	}
}

func (s *Store) index(e *misp.Event) {
	if !s.indexing {
		return
	}
	for _, a := range allAttributes(e) {
		addPosting(s.byValue, a.Value, e.UUID)
		addPosting(s.byType, a.Type, e.UUID)
	}
	for _, t := range e.Tags {
		addPosting(s.byTag, t.Name, e.UUID)
	}
}

func (s *Store) unindex(e *misp.Event) {
	if !s.indexing {
		return
	}
	for _, a := range allAttributes(e) {
		removePosting(s.byValue, a.Value, e.UUID)
		removePosting(s.byType, a.Type, e.UUID)
	}
	for _, t := range e.Tags {
		removePosting(s.byTag, t.Name, e.UUID)
	}
}

// timeIdx returns the position of (ts, uuid) in the time-ordered index:
// the first entry not ordered before it. Caller holds the write lock.
func (s *Store) timeIdx(ts time.Time, uuid string) int {
	return sort.Search(len(s.byTime), func(i int) bool {
		ent := s.byTime[i]
		if ent.ts.Equal(ts) {
			return ent.uuid >= uuid
		}
		return ent.ts.After(ts)
	})
}

func (s *Store) timeInsert(ts time.Time, uuid string) {
	i := s.timeIdx(ts, uuid)
	s.byTime = append(s.byTime, timeEntry{})
	copy(s.byTime[i+1:], s.byTime[i:])
	s.byTime[i] = timeEntry{ts: ts, uuid: uuid}
}

func (s *Store) timeRemove(ts time.Time, uuid string) {
	i := s.timeIdx(ts, uuid)
	if i < len(s.byTime) && s.byTime[i].uuid == uuid && s.byTime[i].ts.Equal(ts) {
		s.byTime = append(s.byTime[:i], s.byTime[i+1:]...)
	}
}

// allAttributes enumerates loose and object-grouped attributes alike.
func allAttributes(e *misp.Event) []misp.Attribute {
	if len(e.Objects) == 0 {
		return e.Attributes
	}
	out := make([]misp.Attribute, 0, len(e.Attributes)+8)
	out = append(out, e.Attributes...)
	for _, o := range e.Objects {
		out = append(out, o.Attributes...)
	}
	return out
}

func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("storage: decode snapshot: %w", err)
	}
	s.seq = snap.Seq
	for _, e := range snap.Events {
		s.apply(e)
	}
	return nil
}

// replayWAL applies WAL records past the snapshot sequence. A corrupted or
// truncated trailing record ends the replay without error (torn final
// write); corruption mid-file is reported.
func (s *Store) replayWAL() error {
	f, err := os.Open(filepath.Join(s.dir, walFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<20), 16<<20)
	var pendingError error
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		if pendingError != nil {
			// A bad record followed by a good one is real corruption, not a
			// torn tail.
			return pendingError
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingError = fmt.Errorf("storage: corrupt wal record: %w", err)
			continue
		}
		if rec.Seq <= s.seq {
			continue // covered by the snapshot
		}
		s.seq = rec.Seq
		switch rec.Op {
		case "put":
			if rec.Event != nil {
				s.apply(rec.Event)
			}
		case "delete":
			s.applyDelete(rec.UUID)
		default:
			pendingError = fmt.Errorf("storage: unknown wal op %q", rec.Op)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("storage: scan wal: %w", err)
	}
	return nil // trailing pendingError tolerated as torn write
}

// collect resolves a postings set to its events in UUID order. Caller
// holds at least the read lock; the slice is freshly allocated but the
// events are the shared frozen revisions.
func (s *Store) collect(p *postings) []*misp.Event {
	if p == nil {
		return nil
	}
	uuids := p.uuids()
	out := make([]*misp.Event, 0, len(uuids))
	for _, uuid := range uuids {
		if se, ok := s.events[uuid]; ok {
			out = append(out, se.event)
		}
	}
	return out
}

// scanMatch is the unindexed fallback: a full scan under the read lock,
// sorted and materialized outside it.
func (s *Store) scanMatch(match func(*misp.Event) bool) ([]*misp.Event, error) {
	s.mu.RLock()
	var out []*misp.Event
	for _, se := range s.events {
		if match(se.event) {
			out = append(out, se.event)
		}
	}
	s.mu.RUnlock()
	return s.finish(out, false), nil
}

// finish post-processes read results after the lock was released: it
// restores UUID order for unsorted scans and, under WithCloneReads, deep
// copies every result (the ablation baseline).
func (s *Store) finish(events []*misp.Event, sorted bool) []*misp.Event {
	if !sorted {
		sort.Slice(events, func(i, j int) bool { return events[i].UUID < events[j].UUID })
	}
	if !s.cloneReads {
		return events
	}
	out := make([]*misp.Event, len(events))
	for i, e := range events {
		out[i] = e.Clone() // unlocked: ablation copies taken after the lock was released
	}
	return out
}
