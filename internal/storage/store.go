// Package storage implements the embedded event store backing the
// operational module — the stand-in for the relational database of the
// paper's MISP instance. Events are MISP events keyed by UUID; writes go
// through a segmented, CRC-framed write-ahead log, reads are served from
// in-memory maps with secondary indexes over attribute values, attribute
// types and tags (MISP's "correlation" lookups). Snapshots bound recovery
// time; a truncated WAL tail is repaired on replay while corruption
// mid-file is detected and reported.
//
// The read side is snapshot-isolated: Put/PutBatch install events that are
// never mutated afterwards, so Get/Search*/All/UpdatedSince return shared
// frozen revisions instead of deep copies, and the lock-held critical
// sections shrink to map lookups. Callers that intend to mutate a result
// must take GetClone (see DESIGN.md §8). A time-ordered index makes
// UpdatedSince O(log n + k); postings are map-backed sets with lazily
// rebuilt sorted slices; and the wrapped-MISP wire encoding is cached once
// per stored revision (WrappedJSON).
//
// Durability is pause-free (DESIGN.md §9): Compact freezes the current
// event map behind a copy-on-write overlay under a brief lock, then
// streams the snapshot record-by-record to disk entirely outside the
// lock while writers and readers proceed; the WAL rotates into
// size-bounded segments and compaction deletes the sealed segments the
// published snapshot covers. Recovery decodes snapshot and WAL records
// across a worker pool.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
)

const (
	legacyWALFile = "events.wal"
	snapshotFile  = "snapshot.json"

	// defaultTombstoneRetention bounds the deletion tombstones kept for
	// replication (WithTombstoneRetention).
	defaultTombstoneRetention = 1 << 16
)

// ErrNotFound is returned when the requested event does not exist.
var ErrNotFound = errors.New("storage: event not found")

// storedEvent is one installed revision: the frozen event plus its lazily
// computed wrapped-MISP wire encoding. A Put of the same UUID installs a
// fresh storedEvent, so cached bytes can never describe a stale revision.
type storedEvent struct {
	event   *misp.Event
	seq     uint64 // WAL sequence of the operation that installed this revision
	wrapped atomic.Pointer[[]byte]
}

// wrappedJSON returns the {"Event": …} encoding of this revision,
// computing it at most once. Safe for concurrent use; never called with
// the store lock held — the event is frozen, so no lock is needed.
func (se *storedEvent) wrappedJSON() ([]byte, error) {
	if p := se.wrapped.Load(); p != nil {
		return *p, nil
	}
	data, err := misp.MarshalWrapped(se.event)
	if err != nil {
		return nil, err
	}
	se.wrapped.Store(&data)
	return data, nil
}

// postings is one secondary-index entry: the set of event UUIDs for a key,
// plus a lazily rebuilt UUID-sorted slice. The set is only mutated under
// the store's write lock; the sorted cache is an atomic pointer so readers
// holding the read lock can rebuild it concurrently without racing.
type postings struct {
	set    map[string]struct{}
	sorted atomic.Pointer[[]string]
}

// uuids returns the members in sorted order, rebuilding the cache if a
// write invalidated it. Concurrent rebuilds are idempotent.
func (p *postings) uuids() []string {
	if sp := p.sorted.Load(); sp != nil {
		return *sp
	}
	out := make([]string, 0, len(p.set))
	for uuid := range p.set {
		out = append(out, uuid)
	}
	sort.Strings(out)
	p.sorted.Store(&out)
	return out
}

func addPosting(m map[string]*postings, key, uuid string) {
	p := m[key]
	if p == nil {
		p = &postings{set: make(map[string]struct{}, 1)}
		m[key] = p
	}
	p.set[uuid] = struct{}{}
	p.sorted.Store(nil)
}

func removePosting(m map[string]*postings, key, uuid string) {
	p := m[key]
	if p == nil {
		return
	}
	delete(p.set, uuid)
	if len(p.set) == 0 {
		delete(m, key)
		return
	}
	p.sorted.Store(nil)
}

// timeEntry is one element of the time-ordered sync index, sorted by
// (timestamp, uuid).
type timeEntry struct {
	ts   time.Time
	uuid string
}

// changeEntry is one element of the ingest-sequence change log.
type changeEntry struct {
	seq  uint64
	uuid string
	del  bool // deletion marker: the entry tombstones uuid instead of installing it
}

// tombstone records one deletion the change feed must keep visible: the
// sequence that removed the event and the wall-clock deletion time peers
// compare against a concurrent edit (newest wins).
type tombstone struct {
	seq uint64
	at  time.Time
}

// Store is a concurrency-safe embedded event store. Construct with Open.
type Store struct {
	mu sync.RWMutex

	dir  string
	wal  *walWriter
	seq  uint64
	sync bool

	events map[string]*storedEvent // base map: the compacted live state
	// overlay diverts writes while a streaming snapshot reads the base
	// map off-lock. Non-nil only between a compaction's capture and its
	// merge; a nil value is a delete tombstone. Readers consult overlay
	// first (lookup/forEach), so the view stays exact throughout.
	overlay map[string]*storedEvent
	count   int // live events across base+overlay

	byValue map[string]*postings // attribute value -> event UUIDs
	byType  map[string]*postings // attribute type  -> event UUIDs
	byTag   map[string]*postings // tag name        -> event UUIDs
	byTime  []timeEntry          // ascending (timestamp, uuid)

	// changes is the ingest-sequence change log: one entry per applied
	// put, ascending by seq. It is what replication cursors page over
	// (ChangesPage) — unlike the (timestamp, uuid) time index, a
	// late-imported event always lands at the log's tail, so a peer
	// cursor can never skip it. An entry is live while the installed
	// revision still carries its seq; re-puts and deletes leave stale
	// entries behind, compacted away once they outnumber the live ones.
	changes      []changeEntry
	staleChanges int

	// tombstones maps deleted UUIDs to their deletion record while the
	// deletion is still replicable. Bounded by tombstoneCap: once the map
	// overflows, the oldest deletions are forgotten (a peer whose cursor
	// predates them re-syncs from the live set instead).
	tombstones   map[string]tombstone
	tombstoneCap int

	walOps     int // operations appended since last snapshot
	indexing   bool
	cloneReads bool
	// loading marks snapshot bulk-load during Open: events stream in map
	// order, so per-event sorted inserts into byTime would be O(n²);
	// instead entries are appended and sorted once afterwards.
	loading bool

	segmentSize     int64
	recoveryWorkers int
	blockingCompact bool
	legacyWAL       bool // a pre-segmentation events.wal exists on disk

	compactMu      sync.Mutex // serializes Compact; taken before mu
	compactions    int64
	lastCompactDur time.Duration

	metrics *storeMetrics // nil without WithMetrics
}

// storeMetrics are the caisp_store_* latency histograms; scrape-time
// gauge/counter views over the durability counters are registered
// alongside them (see WithMetrics).
type storeMetrics struct {
	putDur      *obs.Histogram // caisp_store_put_seconds
	putBatchDur *obs.Histogram // caisp_store_put_batch_seconds
	batchSize   *obs.Histogram // caisp_store_batch_size_events
	commitDur   *obs.Histogram // caisp_store_commit_seconds (WAL write+flush+fsync)
	compactDur  *obs.Histogram // caisp_store_compaction_seconds
}

// Option configures Open.
type Option interface{ apply(*Store) }

type syncOption bool

func (o syncOption) apply(s *Store) { s.sync = bool(o) }

// WithSync forces an fsync after every WAL append (durable but slow).
// Default is buffered writes flushed on every append without fsync.
func WithSync(enabled bool) Option { return syncOption(enabled) }

type indexOption bool

func (o indexOption) apply(s *Store) { s.indexing = bool(o) }

// WithIndexes toggles secondary-index maintenance (ablation benchmarks
// disable it to measure the cost of full scans). Default on.
func WithIndexes(enabled bool) Option { return indexOption(enabled) }

type cloneReadsOption bool

func (o cloneReadsOption) apply(s *Store) { s.cloneReads = bool(o) }

// WithCloneReads restores the pre-snapshot read path — every read deep
// copies its results and UpdatedSince falls back to a full scan — as the
// ablation baseline for the read-path benchmarks. Default off.
func WithCloneReads(enabled bool) Option { return cloneReadsOption(enabled) }

type segmentSizeOption int64

func (o segmentSizeOption) apply(s *Store) {
	if o > 0 {
		s.segmentSize = int64(o)
	}
}

// WithSegmentSize bounds WAL segment files to roughly n bytes; crossing
// the bound after a commit group seals the segment. Default 4 MiB.
func WithSegmentSize(n int64) Option { return segmentSizeOption(n) }

type recoveryWorkersOption int

func (o recoveryWorkersOption) apply(s *Store) { s.recoveryWorkers = int(o) }

// WithRecoveryWorkers sets how many goroutines decode snapshot and WAL
// records during Open. Values below 1 use GOMAXPROCS; 1 is the serial
// ablation baseline.
func WithRecoveryWorkers(n int) Option { return recoveryWorkersOption(n) }

type blockingCompactOption bool

func (o blockingCompactOption) apply(s *Store) { s.blockingCompact = bool(o) }

// WithBlockingCompaction restores the stop-the-world Compact — the
// whole snapshot is encoded and written while the write lock is held —
// as the ablation baseline for the durability benchmarks. Default off.
func WithBlockingCompaction(enabled bool) Option { return blockingCompactOption(enabled) }

type tombstoneRetentionOption int

func (o tombstoneRetentionOption) apply(s *Store) {
	if o > 0 {
		s.tombstoneCap = int(o)
	}
}

// WithTombstoneRetention bounds how many deletion tombstones the change
// feed retains (default 65536). Keeping every deletion forever would
// reintroduce the unbounded growth expiry exists to prevent; overflow
// forgets the oldest deletions first.
func WithTombstoneRetention(n int) Option { return tombstoneRetentionOption(n) }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(s *Store) { s.registerMetrics(o.reg) }

// WithMetrics registers the store's caisp_store_* families into reg:
// write-path and compaction latency histograms plus scrape-time views
// over the durability counters (WAL footprint, segment count, event
// count). A nil registry disables instrumentation.
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg: reg} }

func (s *Store) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.metrics = &storeMetrics{
		putDur: reg.Histogram("caisp_store_put_seconds",
			"Single-event Put latency (validate, clone, WAL append, index)."),
		putBatchDur: reg.Histogram("caisp_store_put_batch_seconds",
			"Group-committed PutBatch latency for the whole batch."),
		batchSize: reg.Histogram("caisp_store_batch_size_events",
			"Events per group-committed batch.", obs.SizeBuckets...),
		commitDur: reg.Histogram("caisp_store_commit_seconds",
			"WAL group append latency: frame, write, flush and (with WithSync) fsync."),
		compactDur: reg.Histogram("caisp_store_compaction_seconds",
			"Wall time of one compaction (capture, stream, merge)."),
	}
	reg.GaugeFunc("caisp_store_events",
		"Live events in the store.",
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("caisp_store_wal_bytes",
		"On-disk WAL footprint across all segments.",
		func() float64 { return float64(s.Durability().WALBytes) })
	reg.GaugeFunc("caisp_store_wal_segments",
		"WAL segment files (sealed plus active).",
		func() float64 { return float64(s.Durability().WALSegments) })
	reg.GaugeFunc("caisp_store_wal_ops",
		"Operations appended since the last snapshot.",
		func() float64 { return float64(s.WALOps()) })
	reg.CounterFunc("caisp_store_compactions_total",
		"Snapshots published since Open.",
		func() float64 { return float64(s.Durability().Compactions) })
}

// walRecord is one WAL entry. At carries a delete's wall-clock time
// (Unix seconds) so the tombstone replays with its original conflict
// timestamp; put records leave it zero.
type walRecord struct {
	Seq   uint64      `json:"seq"`
	Op    string      `json:"op"` // "put" or "delete"
	UUID  string      `json:"uuid,omitempty"`
	At    int64       `json:"at,omitempty"`
	Event *misp.Event `json:"event,omitempty"`
}

// Open loads (or creates) a store in dir. An empty dir opens a memory-only
// store with no durability. Recovery decodes the snapshot and the sealed
// WAL segments across a worker pool (WithRecoveryWorkers) and repairs a
// torn tail on the active segment.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:          dir,
		events:       make(map[string]*storedEvent),
		byValue:      make(map[string]*postings),
		byType:       make(map[string]*postings),
		byTag:        make(map[string]*postings),
		tombstones:   make(map[string]tombstone),
		tombstoneCap: defaultTombstoneRetention,
		indexing:     true,
		segmentSize:  defaultSegmentSize,
	}
	for _, o := range opts {
		o.apply(s)
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	workers := s.recoveryWorkers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := s.loadSnapshot(workers); err != nil {
		return nil, err
	}
	if err := s.replayLegacyWAL(); err != nil {
		return nil, err
	}
	segs, err := s.replaySegments(workers)
	if err != nil {
		return nil, err
	}
	wal, err := openWALWriter(dir, segs, s.seq, s.sync, s.segmentSize)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// Put stores (or replaces) an event. The store keeps a private copy taken
// before the write lock; the caller retains ownership of e.
func (s *Store) Put(e *misp.Event) error {
	if s.metrics != nil {
		defer func(start time.Time) {
			s.metrics.putDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	if err := e.Validate(); err != nil {
		return err
	}
	cp := e.Clone() // unlocked: the caller's event is copied before the write lock
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if err := s.appendWALGroup([]walRecord{{Seq: s.seq, Op: "put", Event: cp}}); err != nil {
		s.seq--
		return err
	}
	s.apply(cp, s.seq)
	return nil
}

// PutBatch stores a batch of events with group-commit semantics: every
// event is validated and cloned first, then all WAL records are framed
// into one buffer and written with a single flush (and, with WithSync, a
// single fsync) before the in-memory state is updated. Amortizing the
// write-path fixed costs over the batch is what makes high-volume ingest
// keep up with parallel feed polling. The batch is all-or-nothing — in
// memory and across a crash: the commit flag rides on the batch's final
// WAL frame, so recovery either replays the whole group or none of it.
func (s *Store) PutBatch(events []*misp.Event) error {
	if len(events) == 0 {
		return nil
	}
	if s.metrics != nil {
		s.metrics.batchSize.Observe(float64(len(events)))
		defer func(start time.Time) {
			s.metrics.putBatchDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	cps := make([]*misp.Event, len(events))
	for i, e := range events {
		if e == nil {
			return fmt.Errorf("storage: nil event in batch")
		}
		if err := e.Validate(); err != nil {
			return err
		}
		cps[i] = e.Clone() // unlocked: caller events are copied before the write lock
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]walRecord, len(cps))
	for i, cp := range cps {
		s.seq++
		recs[i] = walRecord{Seq: s.seq, Op: "put", Event: cp}
	}
	if err := s.appendWALGroup(recs); err != nil {
		s.seq -= uint64(len(cps)) // nothing was committed; roll the sequence back
		return err
	}
	for i, cp := range cps {
		s.apply(cp, recs[i].Seq) // each event at its own record's seq
	}
	return nil
}

// lookup resolves a UUID through the compaction overlay (if one is
// active) and the base map. Caller holds at least the read lock.
func (s *Store) lookup(uuid string) (*storedEvent, bool) {
	if s.overlay != nil {
		if se, ok := s.overlay[uuid]; ok {
			return se, se != nil
		}
	}
	se, ok := s.events[uuid]
	return se, ok
}

// forEach visits every live event exactly once, overlay first. Caller
// holds at least the read lock.
func (s *Store) forEach(fn func(uuid string, se *storedEvent)) {
	if s.overlay != nil {
		for uuid, se := range s.overlay {
			if se != nil {
				fn(uuid, se)
			}
		}
		for uuid, se := range s.events {
			if _, shadowed := s.overlay[uuid]; !shadowed {
				fn(uuid, se)
			}
		}
		return
	}
	for uuid, se := range s.events {
		fn(uuid, se)
	}
}

// Get returns the current revision of the event with the given UUID as a
// shared frozen view: the result must not be mutated. Callers that need a
// private copy take GetClone.
func (s *Store) Get(uuid string) (*misp.Event, error) {
	s.mu.RLock()
	se, ok := s.lookup(uuid)
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	if s.cloneReads {
		return se.event.Clone(), nil // unlocked: ablation copy taken after the lock was released
	}
	return se.event, nil
}

// GetClone returns a private deep copy of the event — the read for callers
// that intend to mutate the result.
func (s *Store) GetClone(uuid string) (*misp.Event, error) {
	e, err := s.Get(uuid)
	if err != nil {
		return nil, err
	}
	return e.Clone(), nil // unlocked: private copy taken after the lock was released
}

// Has reports whether an event with the given UUID is stored, without
// materializing it.
func (s *Store) Has(uuid string) bool {
	s.mu.RLock()
	_, ok := s.lookup(uuid)
	s.mu.RUnlock()
	return ok
}

// WrappedJSON returns the {"Event": …} wire encoding of the current
// revision of the event, computed at most once per revision and shared
// between the bus publisher and the HTTP read paths. The returned bytes
// are read-only.
func (s *Store) WrappedJSON(uuid string) ([]byte, error) {
	s.mu.RLock()
	se, ok := s.lookup(uuid)
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	return se.wrappedJSON()
}

// WrappedJSONFor returns the cached wire encoding when e is a stored
// revision (as returned by the copy-free read methods), and a fresh
// encoding of e otherwise. The returned bytes are read-only.
func (s *Store) WrappedJSONFor(e *misp.Event) ([]byte, error) {
	s.mu.RLock()
	se, ok := s.lookup(e.UUID)
	s.mu.RUnlock()
	if ok && se.event == e {
		return se.wrappedJSON()
	}
	return misp.MarshalWrapped(e)
}

// Delete removes the event with the given UUID, stamping the tombstone
// with the current wall clock.
func (s *Store) Delete(uuid string) error {
	return s.DeleteAt(uuid, time.Now())
}

// DeleteAt removes the event with the given UUID and records at as the
// deletion time on its tombstone. Replication uses it to re-apply a
// peer's deletion at its original time, so newest-wins conflict
// resolution stays transitive across hops; local deletions go through
// Delete. The deletion lands in the WAL and the ingest-sequence change
// log, so it survives compaction + restart and reaches every
// replication cursor.
func (s *Store) DeleteAt(uuid string, at time.Time) error {
	at = at.UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.lookup(uuid); !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	s.seq++
	if err := s.appendWALGroup([]walRecord{{Seq: s.seq, Op: "delete", UUID: uuid, At: at.Unix()}}); err != nil {
		s.seq--
		return err
	}
	s.applyDelete(uuid, s.seq, at)
	return nil
}

// Len returns the number of stored events.
// Seq reports the store's ingest-sequence high-water mark: the sequence
// of the newest change-log entry. Peer cursors chase this value, so it
// is the watermark GET /cluster/status publishes for lag accounting.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// All returns every event, sorted by UUID, as shared frozen views.
func (s *Store) All() ([]*misp.Event, error) {
	s.mu.RLock()
	out := make([]*misp.Event, 0, s.count)
	s.forEach(func(_ string, se *storedEvent) {
		out = append(out, se.event)
	})
	s.mu.RUnlock()
	return s.finish(out, false), nil
}

// ForEachParallel streams every live event through fn across a pool of
// workers — the rebuild hook consumers use to reconstruct derived indexes
// (e.g. the platform's incremental correlation state) after a restart.
// Events are shared frozen revisions: fn must not mutate them. fn runs
// outside the store lock and may be called concurrently from workers
// workers (≤ 1 means GOMAXPROCS).
func (s *Store) ForEachParallel(workers int, fn func(*misp.Event)) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	s.mu.RLock()
	events := make([]*misp.Event, 0, s.count)
	s.forEach(func(_ string, se *storedEvent) {
		events = append(events, se.event)
	})
	s.mu.RUnlock()
	if workers > len(events) {
		workers = len(events)
	}
	if workers <= 1 {
		for _, e := range events {
			fn(e)
		}
		return
	}
	ch := make(chan *misp.Event)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range ch {
				fn(e)
			}
		}()
	}
	for _, e := range events {
		ch <- e
	}
	close(ch)
	wg.Wait()
}

// SearchValue returns events carrying an attribute with exactly this value.
func (s *Store) SearchValue(value string) ([]*misp.Event, error) {
	if s.indexing {
		s.mu.RLock()
		out := s.collect(s.byValue[value])
		s.mu.RUnlock()
		return s.finish(out, true), nil
	}
	return s.scanMatch(func(e *misp.Event) bool {
		for _, a := range allAttributes(e) {
			if a.Value == value {
				return true
			}
		}
		return false
	})
}

// SearchType returns events carrying at least one attribute of this type.
func (s *Store) SearchType(attrType string) ([]*misp.Event, error) {
	if s.indexing {
		s.mu.RLock()
		out := s.collect(s.byType[attrType])
		s.mu.RUnlock()
		return s.finish(out, true), nil
	}
	return s.scanMatch(func(e *misp.Event) bool {
		for _, a := range allAttributes(e) {
			if a.Type == attrType {
				return true
			}
		}
		return false
	})
}

// SearchTag returns events carrying the given tag.
func (s *Store) SearchTag(tag string) ([]*misp.Event, error) {
	if s.indexing {
		s.mu.RLock()
		out := s.collect(s.byTag[tag])
		s.mu.RUnlock()
		return s.finish(out, true), nil
	}
	return s.scanMatch(func(e *misp.Event) bool { return e.HasTag(tag) })
}

// UpdatedSince returns events whose timestamp is at or after t, oldest
// first (the natural order for pull synchronization). The time-ordered
// index makes this O(log n + k) instead of a full scan.
func (s *Store) UpdatedSince(t time.Time) ([]*misp.Event, error) {
	if s.cloneReads {
		// Ablation baseline: the pre-snapshot scan-and-copy read path.
		return s.scanMatch(func(e *misp.Event) bool { return !e.Timestamp.Before(t) })
	}
	events, _, err := s.UpdatedSincePage(t, "", 0)
	return events, err
}

// UpdatedSincePage is the paginated form of UpdatedSince: it returns up
// to limit events in (timestamp, uuid) order starting at t, and whether
// more remain. A non-empty afterUUID resumes strictly past the cursor
// (t, afterUUID) — the (timestamp, uuid) of the previous page's last
// event — so pages never skip or repeat ties on equal timestamps. A
// limit of 0 or less returns everything.
func (s *Store) UpdatedSincePage(t time.Time, afterUUID string, limit int) ([]*misp.Event, bool, error) {
	s.mu.RLock()
	i := sort.Search(len(s.byTime), func(i int) bool {
		ent := s.byTime[i]
		if afterUUID != "" && ent.ts.Equal(t) {
			return ent.uuid > afterUUID
		}
		return !ent.ts.Before(t)
	})
	n := len(s.byTime) - i
	if limit > 0 && n > limit {
		n = limit
	}
	out := make([]*misp.Event, 0, n)
	for _, ent := range s.byTime[i:] {
		if limit > 0 && len(out) == limit {
			break
		}
		if se, ok := s.lookup(ent.uuid); ok {
			out = append(out, se.event)
		}
	}
	more := limit > 0 && i+len(out) < len(s.byTime)
	s.mu.RUnlock()
	if s.cloneReads {
		cloned := make([]*misp.Event, len(out))
		for j, e := range out {
			cloned[j] = e.Clone() // unlocked: ablation copies taken after the lock was released
		}
		return cloned, more, nil
	}
	return out, more, nil
}

// ChangesPage returns up to limit live events from the ingest-sequence
// change log, strictly after afterSeq, oldest-ingested first. It also
// returns the sequence to resume from (the last log entry scanned —
// stale entries advance it too, so pages over a churned log still make
// progress) and whether entries remain beyond the returned page. This
// is the sound replication feed: an event imported late still appears
// after every cursor handed out before it, which the (timestamp, uuid)
// index cannot guarantee. A limit of 0 or less returns everything.
func (s *Store) ChangesPage(afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error) {
	s.mu.RLock()
	i := sort.Search(len(s.changes), func(i int) bool {
		return s.changes[i].seq > afterSeq
	})
	out := make([]*misp.Event, 0, min(len(s.changes)-i, max(limit, 0)))
	next := afterSeq
	more := false
	for _, ent := range s.changes[i:] {
		if limit > 0 && len(out) == limit {
			more = true
			break
		}
		next = ent.seq
		if se, ok := s.lookup(ent.uuid); ok && se.seq == ent.seq {
			out = append(out, se.event)
		}
	}
	s.mu.RUnlock()
	if s.cloneReads {
		cloned := make([]*misp.Event, len(out))
		for j, e := range out {
			cloned[j] = e.Clone() // unlocked: ablation copies taken after the lock was released
		}
		return cloned, next, more, nil
	}
	return out, next, more, nil
}

// Change is one entry of the tombstone-aware change feed (Changes):
// either a live event revision or a deletion marker a replication peer
// applies to drop its copy.
type Change struct {
	// Seq is the ingest sequence of the change (zero when the change was
	// decoded from a wire page, which carries only the page cursor).
	Seq uint64
	// UUID identifies the event either way.
	UUID string
	// Event is the live revision; nil marks a deletion.
	Event *misp.Event
	// DeletedAt is the deletion wall time when Event is nil — the
	// timestamp newest-wins conflict resolution compares against a
	// concurrent edit.
	DeletedAt time.Time
	// Prov is the cross-node trace context attached at the serving or
	// decoding layer (the store itself does not track provenance): the
	// origin node, its ingest sequence there, and the per-hop pull
	// timestamps accumulated along the replication path. Nil when the
	// serving side predates provenance or the entry is a tombstone.
	Prov *obs.Provenance
}

// Changes is ChangesPage with deletions included: up to limit entries
// strictly after afterSeq, oldest first, where a tombstoned UUID yields
// a deletion marker instead of being silently skipped. Replication
// pulls this feed so deletes propagate; dashboards and exports that
// only want live events keep using ChangesPage.
func (s *Store) Changes(afterSeq uint64, limit int) ([]Change, uint64, bool, error) {
	s.mu.RLock()
	i := sort.Search(len(s.changes), func(i int) bool {
		return s.changes[i].seq > afterSeq
	})
	out := make([]Change, 0, min(len(s.changes)-i, max(limit, 0)))
	next := afterSeq
	more := false
	for _, ent := range s.changes[i:] {
		if limit > 0 && len(out) == limit {
			more = true
			break
		}
		next = ent.seq
		if ent.del {
			if t, ok := s.tombstones[ent.uuid]; ok && t.seq == ent.seq {
				out = append(out, Change{Seq: ent.seq, UUID: ent.uuid, DeletedAt: t.at})
			}
			continue
		}
		if se, ok := s.lookup(ent.uuid); ok && se.seq == ent.seq {
			out = append(out, Change{Seq: ent.seq, UUID: ent.uuid, Event: se.event})
		}
	}
	s.mu.RUnlock()
	if s.cloneReads {
		for j := range out {
			if out[j].Event != nil {
				out[j].Event = out[j].Event.Clone() // unlocked: ablation copies taken after the lock was released
			}
		}
	}
	return out, next, more, nil
}

// Correlated returns the UUIDs of events sharing at least one attribute
// value with the given event — MISP's automatic correlation. With
// indexing disabled the fallback builds a transient set of the queried
// values once and makes a single pass over the store, instead of one full
// scan per value.
func (s *Store) Correlated(e *misp.Event) []string {
	values := make(map[string]bool, len(e.Attributes))
	for _, a := range e.Attributes {
		values[a.Value] = true
	}
	for _, o := range e.Objects {
		for _, a := range o.Attributes {
			values[a.Value] = true
		}
	}

	s.mu.RLock()
	seen := make(map[string]bool)
	var out []string
	if s.indexing {
		for value := range values {
			p := s.byValue[value]
			if p == nil {
				continue
			}
			for uuid := range p.set {
				if uuid != e.UUID && !seen[uuid] {
					seen[uuid] = true
					out = append(out, uuid)
				}
			}
		}
	} else {
		s.forEach(func(uuid string, se *storedEvent) {
			if uuid == e.UUID || seen[uuid] {
				return
			}
			for _, oa := range allAttributes(se.event) {
				if values[oa.Value] {
					seen[uuid] = true
					out = append(out, uuid)
					return
				}
			}
		})
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Compact publishes a snapshot of the current state and prunes the WAL
// segments it covers. The write lock is held only for the capture (an
// O(1) overlay install plus a segment rotation) and the merge; the
// snapshot itself is encoded record-by-record and streamed to a temp
// file with writers and readers proceeding concurrently, then renamed
// into place atomically. Concurrent Compact calls serialize.
func (s *Store) Compact() error {
	if s.dir == "" {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	start := time.Now()

	if s.blockingCompact {
		// Ablation baseline: the stop-the-world path — encode and write the
		// whole snapshot under the write lock.
		s.mu.Lock()
		snapSeq, base, ops := s.seq, s.events, s.walOps
		if err := s.rotateWALLocked(snapSeq); err != nil {
			s.mu.Unlock()
			return err
		}
		err := s.writeSnapshotFile(base, s.tombstones, snapSeq)
		var covered []string
		if err == nil {
			covered = s.finishCompactionLocked(snapSeq, ops, start)
		}
		s.mu.Unlock()
		s.removeFiles(covered)
		return err
	}

	// Capture: freeze the base map behind an empty overlay and seal the
	// active WAL segment, all under a brief lock. Tombstones are copied
	// at capture (the live map keeps mutating while the snapshot
	// streams); the copy is bounded by the retention cap.
	s.mu.Lock()
	snapSeq, base, ops := s.seq, s.events, s.walOps
	if err := s.rotateWALLocked(snapSeq); err != nil {
		s.mu.Unlock()
		return err
	}
	tombs := make(map[string]tombstone, len(s.tombstones))
	for uuid, t := range s.tombstones {
		tombs[uuid] = t
	}
	s.overlay = make(map[string]*storedEvent)
	s.mu.Unlock()

	// Stream: base is immutable while the overlay is up — encode it
	// record-by-record entirely outside the lock.
	err := s.writeSnapshotFile(base, tombs, snapSeq)

	// Merge: fold the writes that happened meanwhile back into the base
	// map and, on success, drop the WAL segments the snapshot covers.
	s.mu.Lock()
	for uuid, se := range s.overlay {
		if se == nil {
			delete(s.events, uuid)
		} else {
			s.events[uuid] = se
		}
	}
	s.overlay = nil
	var covered []string
	if err == nil {
		covered = s.finishCompactionLocked(snapSeq, ops, start)
	}
	s.mu.Unlock()
	s.removeFiles(covered)
	return err
}

// rotateWALLocked seals the active segment so everything at or below
// snapSeq lives in sealed segments. Caller holds the write lock.
func (s *Store) rotateWALLocked(snapSeq uint64) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.rotate(snapSeq + 1)
}

// finishCompactionLocked updates counters and collects the sealed
// segments (and legacy files) the published snapshot covers. Caller
// holds the write lock; the returned paths are deleted outside it.
func (s *Store) finishCompactionLocked(snapSeq uint64, ops int, start time.Time) []string {
	s.walOps -= ops
	s.compactions++
	s.lastCompactDur = time.Since(start)
	if s.metrics != nil {
		s.metrics.compactDur.Observe(s.lastCompactDur.Seconds())
	}
	var covered []string
	if s.wal != nil {
		covered = s.wal.dropCovered(snapSeq)
	}
	if s.legacyWAL {
		covered = append(covered, filepath.Join(s.dir, legacyWALFile))
		s.legacyWAL = false
	}
	return covered
}

func (s *Store) removeFiles(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}

// WALOps reports operations appended since the last snapshot (compaction
// policy input).
func (s *Store) WALOps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walOps
}

// DurabilityStats describes the persistence layer for observability
// surfaces (tip.Stats, GET /stats) and compaction policy.
type DurabilityStats struct {
	// WALOps counts operations appended since the last snapshot.
	WALOps int `json:"wal_ops"`
	// WALBytes is the on-disk WAL footprint across all segments.
	WALBytes int64 `json:"wal_bytes"`
	// WALSegments counts segment files (sealed plus the active one).
	WALSegments int `json:"wal_segments"`
	// Compactions counts snapshots published since Open.
	Compactions int64 `json:"compactions"`
	// LastCompactionDuration is the wall time of the latest compaction.
	LastCompactionDuration time.Duration `json:"last_compaction_ns"`
	// Tombstones counts retained deletion markers in the change feed.
	Tombstones int `json:"tombstones"`
}

// Durability returns persistence counters. All zero for a memory-only
// store.
func (s *Store) Durability() DurabilityStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := DurabilityStats{
		WALOps:                 s.walOps,
		Compactions:            s.compactions,
		LastCompactionDuration: s.lastCompactDur,
		Tombstones:             len(s.tombstones),
	}
	if s.wal != nil {
		d.WALBytes = s.wal.bytes()
		d.WALSegments = s.wal.segments()
	}
	return d
}

// Close flushes and closes the WAL. It waits for an in-flight
// compaction to finish first.
func (s *Store) Close() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}

// appendWALGroup writes a group of records as one buffered write, one
// flush and (with WithSync) one fsync — the group commit. The final
// record's frame carries the commit flag that makes the group atomic
// across recovery. Caller holds the write lock.
func (s *Store) appendWALGroup(recs []walRecord) error {
	if s.wal != nil {
		var start time.Time
		if s.metrics != nil {
			start = time.Now()
		}
		if err := s.wal.append(recs); err != nil {
			return err
		}
		if s.metrics != nil {
			s.metrics.commitDur.Observe(time.Since(start).Seconds())
		}
	}
	s.walOps += len(recs)
	return nil
}

// apply installs a put into memory state as a fresh frozen revision at
// sequence seq (each put consumes one WAL sequence, so within a batch
// every event applies at its own record's seq). Caller holds the write
// lock and must only apply ascending sequences, which keeps the change
// log sorted.
func (s *Store) apply(e *misp.Event, seq uint64) {
	if t, dead := s.tombstones[e.UUID]; dead && e.Timestamp.Unix() <= t.at.Unix() {
		// Newest-wins holds against deletions too: a write stamped at or
		// before the deletion time is a stale revision arriving late (for
		// example an old copy pulled off a mesh peer) and must not
		// resurrect the tombstone. Ties go to the deletion. The skipped
		// revision gets no change entry — the tombstone stays the UUID's
		// latest fact in the feed.
		return
	}
	old, existed := s.lookup(e.UUID)
	if existed {
		s.unindex(old.event)
		s.timeRemove(old.event.Timestamp.Time, e.UUID)
		s.staleChanges++ // the old revision's change entry is now dead
	} else {
		s.count++
	}
	se := &storedEvent{event: e, seq: seq}
	if s.overlay != nil {
		s.overlay[e.UUID] = se
	} else {
		s.events[e.UUID] = se
	}
	if _, dead := s.tombstones[e.UUID]; dead {
		// A re-put over a tombstoned UUID resurrects it: the deletion is
		// no longer the latest fact, so its change entry dies.
		delete(s.tombstones, e.UUID)
		s.staleChanges++
	}
	s.index(e)
	s.timeInsert(e.Timestamp.Time, e.UUID)
	s.changes = append(s.changes, changeEntry{seq: seq, uuid: e.UUID})
	s.compactChanges()
}

func (s *Store) applyDelete(uuid string, seq uint64, at time.Time) {
	old, existed := s.lookup(uuid)
	if !existed {
		return
	}
	s.unindex(old.event)
	s.timeRemove(old.event.Timestamp.Time, uuid)
	s.count--
	s.staleChanges++ // the deleted revision's change entry is now dead
	if s.overlay != nil {
		s.overlay[uuid] = nil // tombstone shadowing the frozen base
	} else {
		delete(s.events, uuid)
	}
	s.recordTombstone(uuid, seq, at)
	s.compactChanges()
}

// recordTombstone appends the deletion to the change log and the
// tombstone map, evicting the oldest tombstones past the retention cap.
// Caller holds the write lock (or is the single-threaded loader).
func (s *Store) recordTombstone(uuid string, seq uint64, at time.Time) {
	s.tombstones[uuid] = tombstone{seq: seq, at: at}
	s.changes = append(s.changes, changeEntry{seq: seq, uuid: uuid, del: true})
	if len(s.tombstones) <= s.tombstoneCap {
		return
	}
	// Prune to 3/4 of the cap so the O(n log n) sort amortizes across the
	// next cap/4 deletions.
	all := make([]changeEntry, 0, len(s.tombstones))
	for u, t := range s.tombstones {
		all = append(all, changeEntry{seq: t.seq, uuid: u})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	drop := len(all) - (s.tombstoneCap - s.tombstoneCap/4)
	for _, ent := range all[:drop] {
		delete(s.tombstones, ent.uuid)
		s.staleChanges++ // the forgotten deletion's change entry is now dead
	}
}

// compactChanges drops stale change-log entries once they outnumber the
// live ones (amortized O(1) per apply). Skipped during snapshot
// bulk-load, where every entry is live anyway. Caller holds the write
// lock.
func (s *Store) compactChanges() {
	if s.loading || s.staleChanges < 1024 || s.staleChanges*2 < len(s.changes) {
		return
	}
	live := s.changes[:0]
	for _, ent := range s.changes {
		if ent.del {
			if t, ok := s.tombstones[ent.uuid]; ok && t.seq == ent.seq {
				live = append(live, ent)
			}
			continue
		}
		if se, ok := s.lookup(ent.uuid); ok && se.seq == ent.seq {
			live = append(live, ent)
		}
	}
	clear(s.changes[len(live):])
	s.changes = live
	s.staleChanges = 0
}

func (s *Store) index(e *misp.Event) {
	if !s.indexing {
		return
	}
	for _, a := range allAttributes(e) {
		addPosting(s.byValue, a.Value, e.UUID)
		addPosting(s.byType, a.Type, e.UUID)
	}
	for _, t := range e.Tags {
		addPosting(s.byTag, t.Name, e.UUID)
	}
}

func (s *Store) unindex(e *misp.Event) {
	if !s.indexing {
		return
	}
	for _, a := range allAttributes(e) {
		removePosting(s.byValue, a.Value, e.UUID)
		removePosting(s.byType, a.Type, e.UUID)
	}
	for _, t := range e.Tags {
		removePosting(s.byTag, t.Name, e.UUID)
	}
}

// timeIdx returns the position of (ts, uuid) in the time-ordered index:
// the first entry not ordered before it. Caller holds the write lock.
func (s *Store) timeIdx(ts time.Time, uuid string) int {
	return sort.Search(len(s.byTime), func(i int) bool {
		ent := s.byTime[i]
		if ent.ts.Equal(ts) {
			return ent.uuid >= uuid
		}
		return ent.ts.After(ts)
	})
}

func (s *Store) timeInsert(ts time.Time, uuid string) {
	if s.loading {
		// Snapshot bulk-load: defer ordering to one sort in sortTimeIndex.
		s.byTime = append(s.byTime, timeEntry{ts: ts, uuid: uuid})
		return
	}
	i := s.timeIdx(ts, uuid)
	s.byTime = append(s.byTime, timeEntry{})
	copy(s.byTime[i+1:], s.byTime[i:])
	s.byTime[i] = timeEntry{ts: ts, uuid: uuid}
}

// sortTimeIndex orders byTime after a snapshot bulk-load. Snapshot UUIDs
// are unique, so append-then-sort is equivalent to sorted inserts.
func (s *Store) sortTimeIndex() {
	sort.Slice(s.byTime, func(i, j int) bool {
		a, b := s.byTime[i], s.byTime[j]
		if a.ts.Equal(b.ts) {
			return a.uuid < b.uuid
		}
		return a.ts.Before(b.ts)
	})
}

func (s *Store) timeRemove(ts time.Time, uuid string) {
	i := s.timeIdx(ts, uuid)
	if i < len(s.byTime) && s.byTime[i].uuid == uuid && s.byTime[i].ts.Equal(ts) {
		s.byTime = append(s.byTime[:i], s.byTime[i+1:]...)
	}
}

// allAttributes enumerates loose and object-grouped attributes alike.
func allAttributes(e *misp.Event) []misp.Attribute {
	if len(e.Objects) == 0 {
		return e.Attributes
	}
	out := make([]misp.Attribute, 0, len(e.Attributes)+8)
	out = append(out, e.Attributes...)
	for _, o := range e.Objects {
		out = append(out, o.Attributes...)
	}
	return out
}

// collect resolves a postings set to its events in UUID order. Caller
// holds at least the read lock; the slice is freshly allocated but the
// events are the shared frozen revisions.
func (s *Store) collect(p *postings) []*misp.Event {
	if p == nil {
		return nil
	}
	uuids := p.uuids()
	out := make([]*misp.Event, 0, len(uuids))
	for _, uuid := range uuids {
		if se, ok := s.lookup(uuid); ok {
			out = append(out, se.event)
		}
	}
	return out
}

// scanMatch is the unindexed fallback: a full scan under the read lock,
// sorted and materialized outside it.
func (s *Store) scanMatch(match func(*misp.Event) bool) ([]*misp.Event, error) {
	s.mu.RLock()
	var out []*misp.Event
	s.forEach(func(_ string, se *storedEvent) {
		if match(se.event) {
			out = append(out, se.event)
		}
	})
	s.mu.RUnlock()
	return s.finish(out, false), nil
}

// finish post-processes read results after the lock was released: it
// restores UUID order for unsorted scans and, under WithCloneReads, deep
// copies every result (the ablation baseline).
func (s *Store) finish(events []*misp.Event, sorted bool) []*misp.Event {
	if !sorted {
		sort.Slice(events, func(i, j int) bool { return events[i].UUID < events[j].UUID })
	}
	if !s.cloneReads {
		return events
	}
	out := make([]*misp.Event, len(events))
	for i, e := range events {
		out[i] = e.Clone() // unlocked: ablation copies taken after the lock was released
	}
	return out
}
