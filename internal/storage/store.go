// Package storage implements the embedded event store backing the
// operational module — the stand-in for the relational database of the
// paper's MISP instance. Events are MISP events keyed by UUID; writes go
// through an append-only JSON-lines write-ahead log, reads are served from
// in-memory maps with secondary indexes over attribute values, attribute
// types and tags (MISP's "correlation" lookups). Snapshots bound recovery
// time; a truncated or corrupted WAL tail is tolerated on replay.
package storage

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

const (
	walFile      = "events.wal"
	snapshotFile = "snapshot.json"
)

// ErrNotFound is returned when the requested event does not exist.
var ErrNotFound = errors.New("storage: event not found")

// Store is a concurrency-safe embedded event store. Construct with Open.
type Store struct {
	mu sync.RWMutex

	dir  string
	wal  *os.File
	walW *bufio.Writer
	seq  uint64
	sync bool

	events   map[string]*misp.Event // by event UUID
	byValue  map[string][]string    // attribute value -> event UUIDs
	byType   map[string][]string    // attribute type  -> event UUIDs
	byTag    map[string][]string    // tag name        -> event UUIDs
	walOps   int                    // operations appended since last snapshot
	indexing bool
}

// Option configures Open.
type Option interface{ apply(*Store) }

type syncOption bool

func (o syncOption) apply(s *Store) { s.sync = bool(o) }

// WithSync forces an fsync after every WAL append (durable but slow).
// Default is buffered writes flushed on every append without fsync.
func WithSync(enabled bool) Option { return syncOption(enabled) }

type indexOption bool

func (o indexOption) apply(s *Store) { s.indexing = bool(o) }

// WithIndexes toggles secondary-index maintenance (ablation benchmarks
// disable it to measure the cost of full scans). Default on.
func WithIndexes(enabled bool) Option { return indexOption(enabled) }

// walRecord is one WAL entry.
type walRecord struct {
	Seq   uint64      `json:"seq"`
	Op    string      `json:"op"` // "put" or "delete"
	UUID  string      `json:"uuid,omitempty"`
	Event *misp.Event `json:"event,omitempty"`
}

// snapshot is the persisted full state.
type snapshot struct {
	Seq    uint64        `json:"seq"`
	Events []*misp.Event `json:"events"`
}

// Open loads (or creates) a store in dir. An empty dir opens a memory-only
// store with no durability.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:      dir,
		events:   make(map[string]*misp.Event),
		byValue:  make(map[string][]string),
		byType:   make(map[string][]string),
		byTag:    make(map[string][]string),
		indexing: true,
	}
	for _, o := range opts {
		o.apply(s)
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	s.wal = wal
	s.walW = bufio.NewWriter(wal)
	return s, nil
}

// Put stores (or replaces) an event.
func (s *Store) Put(e *misp.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	cp := e.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if err := s.appendWAL(walRecord{Seq: s.seq, Op: "put", Event: cp}); err != nil {
		return err
	}
	s.apply(cp)
	return nil
}

// PutBatch stores a batch of events with group-commit semantics: every
// event is validated and cloned first, then all WAL records are encoded
// into one buffer and written with a single flush (and, with WithSync, a
// single fsync) before the in-memory state is updated. Amortizing the
// write-path fixed costs over the batch is what makes high-volume ingest
// keep up with parallel feed polling. The batch is all-or-nothing: a
// validation or WAL error leaves the store unchanged.
func (s *Store) PutBatch(events []*misp.Event) error {
	if len(events) == 0 {
		return nil
	}
	cps := make([]*misp.Event, len(events))
	for i, e := range events {
		if e == nil {
			return fmt.Errorf("storage: nil event in batch")
		}
		if err := e.Validate(); err != nil {
			return err
		}
		cps[i] = e.Clone()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]walRecord, len(cps))
	for i, cp := range cps {
		s.seq++
		recs[i] = walRecord{Seq: s.seq, Op: "put", Event: cp}
	}
	if err := s.appendWALGroup(recs); err != nil {
		s.seq -= uint64(len(cps)) // nothing was written; roll the sequence back
		return err
	}
	for _, cp := range cps {
		s.apply(cp)
	}
	return nil
}

// Get returns a copy of the event with the given UUID.
func (s *Store) Get(uuid string) (*misp.Event, error) {
	s.mu.RLock()
	e, ok := s.events[uuid]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	return e.Clone(), nil
}

// Delete removes the event with the given UUID.
func (s *Store) Delete(uuid string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.events[uuid]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, uuid)
	}
	s.seq++
	if err := s.appendWAL(walRecord{Seq: s.seq, Op: "delete", UUID: uuid}); err != nil {
		return err
	}
	s.applyDelete(uuid)
	return nil
}

// Len returns the number of stored events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// All returns copies of every event, sorted by UUID.
func (s *Store) All() ([]*misp.Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*misp.Event, 0, len(s.events))
	for _, e := range s.events {
		out = append(out, e.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	return out, nil
}

// SearchValue returns events carrying an attribute with exactly this value.
func (s *Store) SearchValue(value string) ([]*misp.Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.indexing {
		return s.copyAll(s.byValue[value])
	}
	return s.scan(func(e *misp.Event) bool {
		for _, a := range allAttributes(e) {
			if a.Value == value {
				return true
			}
		}
		return false
	})
}

// SearchType returns events carrying at least one attribute of this type.
func (s *Store) SearchType(attrType string) ([]*misp.Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.indexing {
		return s.copyAll(s.byType[attrType])
	}
	return s.scan(func(e *misp.Event) bool {
		for _, a := range allAttributes(e) {
			if a.Type == attrType {
				return true
			}
		}
		return false
	})
}

// SearchTag returns events carrying the given tag.
func (s *Store) SearchTag(tag string) ([]*misp.Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.indexing {
		return s.copyAll(s.byTag[tag])
	}
	return s.scan(func(e *misp.Event) bool { return e.HasTag(tag) })
}

// UpdatedSince returns events whose timestamp is at or after t.
func (s *Store) UpdatedSince(t time.Time) ([]*misp.Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scan(func(e *misp.Event) bool { return !e.Timestamp.Before(t) })
}

// Correlated returns the UUIDs of events sharing at least one attribute
// value with the given event — MISP's automatic correlation.
func (s *Store) Correlated(e *misp.Event) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, a := range allAttributes(e) {
		var candidates []string
		if s.indexing {
			candidates = s.byValue[a.Value]
		} else {
			for uuid, other := range s.events {
				for _, oa := range allAttributes(other) {
					if oa.Value == a.Value {
						candidates = append(candidates, uuid)
						break
					}
				}
			}
		}
		for _, uuid := range candidates {
			if uuid != e.UUID && !seen[uuid] {
				seen[uuid] = true
				out = append(out, uuid)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Compact writes a snapshot of the current state and truncates the WAL.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	snap := snapshot{Seq: s.seq}
	for _, e := range s.events {
		snap.Events = append(snap.Events, e)
	}
	sort.Slice(snap.Events, func(i, j int) bool { return snap.Events[i].UUID < snap.Events[j].UUID })
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("storage: encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	// Truncate the WAL now that the snapshot covers it.
	if s.wal != nil {
		if err := s.walW.Flush(); err != nil {
			return err
		}
		if err := s.wal.Close(); err != nil {
			return err
		}
	}
	wal, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: reopen wal: %w", err)
	}
	s.wal = wal
	s.walW = bufio.NewWriter(wal)
	s.walOps = 0
	return nil
}

// WALOps reports operations appended since the last snapshot (compaction
// policy input).
func (s *Store) WALOps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walOps
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	if err := s.walW.Flush(); err != nil {
		return err
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

func (s *Store) appendWAL(rec walRecord) error {
	return s.appendWALGroup([]walRecord{rec})
}

// appendWALGroup writes a group of records as one buffered write, one
// flush and (with WithSync) one fsync — the group commit. Caller holds the
// write lock.
func (s *Store) appendWALGroup(recs []walRecord) error {
	if s.walW == nil {
		s.walOps += len(recs)
		return nil // memory-only store
	}
	var buf []byte
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("storage: encode wal record: %w", err)
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
	}
	if _, err := s.walW.Write(buf); err != nil {
		return fmt.Errorf("storage: append wal: %w", err)
	}
	if err := s.walW.Flush(); err != nil {
		return fmt.Errorf("storage: flush wal: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("storage: sync wal: %w", err)
		}
	}
	s.walOps += len(recs)
	return nil
}

// apply installs a put into memory state. Caller holds the write lock.
func (s *Store) apply(e *misp.Event) {
	if old, ok := s.events[e.UUID]; ok {
		s.unindex(old)
	}
	s.events[e.UUID] = e
	s.index(e)
}

func (s *Store) applyDelete(uuid string) {
	if old, ok := s.events[uuid]; ok {
		s.unindex(old)
		delete(s.events, uuid)
	}
}

func (s *Store) index(e *misp.Event) {
	if !s.indexing {
		return
	}
	for _, a := range allAttributes(e) {
		s.byValue[a.Value] = appendUnique(s.byValue[a.Value], e.UUID)
		s.byType[a.Type] = appendUnique(s.byType[a.Type], e.UUID)
	}
	for _, t := range e.Tags {
		s.byTag[t.Name] = appendUnique(s.byTag[t.Name], e.UUID)
	}
}

func (s *Store) unindex(e *misp.Event) {
	if !s.indexing {
		return
	}
	for _, a := range allAttributes(e) {
		s.byValue[a.Value] = remove(s.byValue[a.Value], e.UUID)
		s.byType[a.Type] = remove(s.byType[a.Type], e.UUID)
	}
	for _, t := range e.Tags {
		s.byTag[t.Name] = remove(s.byTag[t.Name], e.UUID)
	}
}

// allAttributes enumerates loose and object-grouped attributes alike.
func allAttributes(e *misp.Event) []misp.Attribute {
	if len(e.Objects) == 0 {
		return e.Attributes
	}
	out := make([]misp.Attribute, 0, len(e.Attributes)+8)
	out = append(out, e.Attributes...)
	for _, o := range e.Objects {
		out = append(out, o.Attributes...)
	}
	return out
}

func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("storage: decode snapshot: %w", err)
	}
	s.seq = snap.Seq
	for _, e := range snap.Events {
		s.apply(e)
	}
	return nil
}

// replayWAL applies WAL records past the snapshot sequence. A corrupted or
// truncated trailing record ends the replay without error (torn final
// write); corruption mid-file is reported.
func (s *Store) replayWAL() error {
	f, err := os.Open(filepath.Join(s.dir, walFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<20), 16<<20)
	var pendingError error
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		if pendingError != nil {
			// A bad record followed by a good one is real corruption, not a
			// torn tail.
			return pendingError
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingError = fmt.Errorf("storage: corrupt wal record: %w", err)
			continue
		}
		if rec.Seq <= s.seq {
			continue // covered by the snapshot
		}
		s.seq = rec.Seq
		switch rec.Op {
		case "put":
			if rec.Event != nil {
				s.apply(rec.Event)
			}
		case "delete":
			s.applyDelete(rec.UUID)
		default:
			pendingError = fmt.Errorf("storage: unknown wal op %q", rec.Op)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("storage: scan wal: %w", err)
	}
	return nil // trailing pendingError tolerated as torn write
}

func (s *Store) copyAll(uuids []string) ([]*misp.Event, error) {
	out := make([]*misp.Event, 0, len(uuids))
	for _, uuid := range uuids {
		e, ok := s.events[uuid]
		if !ok {
			continue
		}
		out = append(out, e.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	return out, nil
}

func (s *Store) scan(match func(*misp.Event) bool) ([]*misp.Event, error) {
	var out []*misp.Event
	for _, e := range s.events {
		if match(e) {
			out = append(out, e.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	return out, nil
}

func appendUnique(list []string, v string) []string {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}

func remove(list []string, v string) []string {
	for i, x := range list {
		if x == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
