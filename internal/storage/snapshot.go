// Streaming snapshots and parallel recovery (DESIGN.md §9). A snapshot
// is JSON-lines: one header record followed by one event per line, so
// the writer streams record-by-record through a buffered encoder (no
// whole-store Marshal buffer) and the loader can fan the per-line
// decodes out across a worker pool. The legacy monolithic
// {"seq":…,"events":[…]} format is still read for migration; the first
// post-upgrade compaction replaces it.
package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// snapshotHeader is the first line of a streaming snapshot.
type snapshotHeader struct {
	Version int    `json:"caisp_snapshot"`
	Seq     uint64 `json:"seq"`
	Count   int    `json:"count"`
}

// snapshotRecord is one snapshot line: the event plus the WAL sequence
// that installed it. Persisting the per-event seq keeps the
// ingest-sequence change log — and every replication cursor a peer
// holds against this node — stable across a compaction + restart.
// Version-3 snapshots additionally persist deletion tombstones as
// event-less lines carrying the deleted UUID and deletion time, so a
// delete survives compaction + restart instead of resurrecting from the
// last snapshot. Version-1 snapshots carried bare event lines; they
// load with synthesized sequences (cursors predating the change feed
// never referenced them).
type snapshotRecord struct {
	Seq   uint64      `json:"seq"`
	Event *misp.Event `json:"event,omitempty"`
	// UUID and DeletedAt describe a tombstone line (Event is nil).
	UUID      string `json:"uuid,omitempty"`
	DeletedAt int64  `json:"deleted_at,omitempty"`
}

// parallelDecode runs decode(0..n-1) across a worker pool, joining any
// errors. Workers stride over the index space so the output order is
// the caller's to define (each decode writes its own slot).
func parallelDecode(n, workers int, decode func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := decode(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := decode(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// writeSnapshotFile streams the event set to snapshot.json.tmp and
// atomically renames it into place. It never touches store state, so
// the caller may run it without holding the store lock as long as the
// map it passes is not being mutated (the compaction overlay guarantees
// that).
func (s *Store) writeSnapshotFile(events map[string]*storedEvent, tombs map[string]tombstone, seq uint64) error {
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: create snapshot temp: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	err = enc.Encode(snapshotHeader{Version: 3, Seq: seq, Count: len(events) + len(tombs)})
	for _, se := range events {
		if err != nil {
			break
		}
		err = enc.Encode(snapshotRecord{Seq: se.seq, Event: se.event})
	}
	for uuid, t := range tombs {
		if err != nil {
			break
		}
		err = enc.Encode(snapshotRecord{Seq: t.seq, UUID: uuid, DeletedAt: t.at.Unix()})
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	return nil
}

// loadSnapshot restores the persisted base state, decoding event lines
// across the recovery worker pool. Only called from Open, before the
// store is shared — applies need no lock.
func (s *Store) loadSnapshot(workers int) error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read snapshot: %w", err)
	}
	first := data
	if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
		first = data[:nl]
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(first, &hdr); err != nil || hdr.Version == 0 {
		return s.loadLegacySnapshot(data)
	}
	lines := make([][]byte, 0, hdr.Count)
	rest := data[len(first)+1:]
	for len(lines) < hdr.Count {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			if len(bytes.TrimSpace(rest)) == 0 {
				break
			}
			lines = append(lines, rest)
			break
		}
		lines = append(lines, rest[:nl])
		rest = rest[nl+1:]
	}
	if len(lines) != hdr.Count {
		return fmt.Errorf("storage: snapshot truncated: %d of %d events", len(lines), hdr.Count)
	}
	recs := make([]snapshotRecord, hdr.Count)
	if err := parallelDecode(hdr.Count, workers, func(i int) error {
		if hdr.Version == 1 {
			// Bare event lines; sequences are synthesized by line order
			// below.
			e := new(misp.Event)
			if err := json.Unmarshal(lines[i], e); err != nil {
				return fmt.Errorf("storage: decode snapshot event %d: %w", i, err)
			}
			recs[i] = snapshotRecord{Event: e}
			return nil
		}
		if err := json.Unmarshal(lines[i], &recs[i]); err != nil {
			return fmt.Errorf("storage: decode snapshot event %d: %w", i, err)
		}
		if recs[i].Event == nil && (hdr.Version < 3 || recs[i].UUID == "") {
			return fmt.Errorf("storage: decode snapshot event %d: missing event", i)
		}
		return nil
	}); err != nil {
		return err
	}
	if hdr.Version == 1 {
		for i := range recs {
			recs[i].Seq = uint64(i) + 1
		}
	} else {
		// Applies must run in sequence order so the change log rebuilds
		// sorted; the writer streams the event map in arbitrary order.
		sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	}
	s.loading = true
	for _, rec := range recs {
		s.seq = rec.Seq
		if rec.Event != nil {
			s.apply(rec.Event, rec.Seq)
		} else {
			// Version-3 tombstone line: rebuild the deletion marker in the
			// change feed without ever having seen the event.
			s.recordTombstone(rec.UUID, rec.Seq, time.Unix(rec.DeletedAt, 0).UTC())
		}
	}
	s.loading = false
	if hdr.Seq > s.seq {
		s.seq = hdr.Seq
	}
	s.sortTimeIndex()
	return nil
}

// loadLegacySnapshot reads the pre-segmentation monolithic format.
func (s *Store) loadLegacySnapshot(data []byte) error {
	var snap struct {
		Seq    uint64        `json:"seq"`
		Events []*misp.Event `json:"events"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("storage: decode snapshot: %w", err)
	}
	s.loading = true
	for _, e := range snap.Events {
		s.seq++ // synthesized: the legacy format kept no per-event seq
		s.apply(e, s.seq)
	}
	s.loading = false
	if snap.Seq > s.seq {
		s.seq = snap.Seq
	}
	s.sortTimeIndex()
	return nil
}

// replaySegments scans, decodes and applies every WAL segment in
// sequence order. Frame payloads are JSON-decoded across the worker
// pool; applies stay strictly sequential in sequence order, buffered
// per commit group so an uncommitted tail group is never applied. The
// final segment's torn tail (if any) is repaired by truncating the file
// back to its last committed group. Returns the segment list with
// repaired sizes for the WAL writer to resume from.
func (s *Store) replaySegments(workers int) ([]walSegment, error) {
	segs, err := listSegments(s.dir)
	if err != nil {
		return nil, err
	}
	for i := range segs {
		final := i == len(segs)-1
		data, err := os.ReadFile(segs[i].path)
		if err != nil {
			return nil, fmt.Errorf("storage: read wal segment: %w", err)
		}
		frames, committedEnd, err := scanSegment(data, final)
		if err != nil {
			return nil, fmt.Errorf("%w (%s)", err, filepath.Base(segs[i].path))
		}
		recs := make([]walRecord, len(frames))
		if err := parallelDecode(len(frames), workers, func(j int) error {
			if err := json.Unmarshal(frames[j].payload, &recs[j]); err != nil {
				return fmt.Errorf("storage: corrupt wal record in %s: %w", filepath.Base(segs[i].path), err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		group := 0
		for j := range frames {
			if !frames[j].commit {
				continue
			}
			for k := group; k <= j; k++ {
				if err := s.applyWALRecord(recs[k]); err != nil {
					return nil, fmt.Errorf("%w (%s)", err, filepath.Base(segs[i].path))
				}
			}
			group = j + 1
		}
		if final && committedEnd < int64(len(data)) {
			if err := os.Truncate(segs[i].path, committedEnd); err != nil {
				return nil, fmt.Errorf("storage: repair wal tail: %w", err)
			}
		}
		if final {
			segs[i].size = committedEnd
		}
	}
	return segs, nil
}

// applyWALRecord applies one replayed record, skipping records the
// snapshot already covers. Applied records count toward walOps so the
// ops-based compaction threshold survives a restart.
func (s *Store) applyWALRecord(rec walRecord) error {
	if rec.Seq <= s.seq {
		return nil
	}
	s.seq = rec.Seq
	s.walOps++
	switch rec.Op {
	case "put":
		if rec.Event != nil {
			s.apply(rec.Event, rec.Seq)
		}
	case "delete":
		s.applyDelete(rec.UUID, rec.Seq, time.Unix(rec.At, 0).UTC())
	default:
		return fmt.Errorf("storage: unknown wal op %q", rec.Op)
	}
	return nil
}

// replayLegacyWAL applies records from the pre-segmentation single
// events.wal file (JSON lines, per-record commit semantics). A
// truncated trailing record is tolerated; corruption mid-file is
// reported. The file is removed by the first successful compaction.
func (s *Store) replayLegacyWAL() error {
	f, err := os.Open(filepath.Join(s.dir, legacyWALFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()
	s.legacyWAL = true
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<20), 16<<20)
	var pendingError error
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if pendingError != nil {
			// A bad record followed by a good one is real corruption, not a
			// torn tail.
			return pendingError
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingError = fmt.Errorf("storage: corrupt wal record: %w", err)
			continue
		}
		if err := s.applyWALRecord(rec); err != nil {
			pendingError = err
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("storage: scan wal: %w", err)
	}
	return nil // trailing pendingError tolerated as torn write
}
