package storage

import (
	"fmt"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// drainChanges pages the whole change feed from afterSeq and returns the
// events in feed order plus the final resume sequence.
func drainChanges(t *testing.T, s *Store, afterSeq uint64, limit int) ([]*misp.Event, uint64) {
	t.Helper()
	var out []*misp.Event
	for {
		events, next, more, err := s.ChangesPage(afterSeq, limit)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, events...)
		afterSeq = next
		if !more {
			return out, afterSeq
		}
	}
}

func TestChangesPageAssignsPerEventSeqInBatches(t *testing.T) {
	s, _ := openTemp(t)
	batch := make([]*misp.Event, 1200)
	for i := range batch {
		batch[i] = event(t, fmt.Sprintf("evt-%d", i))
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	var (
		after uint64
		total int
		pages int
	)
	for {
		events, next, more, err := s.ChangesPage(after, 500)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		total += len(events)
		if next <= after && len(events) > 0 {
			t.Fatalf("page %d did not advance: after=%d next=%d", pages, after, next)
		}
		after = next
		if !more {
			break
		}
	}
	if total != 1200 || pages != 3 {
		t.Fatalf("drained %d events in %d pages, want 1200 in 3", total, pages)
	}
}

func TestChangesFeedServesLateArrivalsPastOldCursors(t *testing.T) {
	// The scenario that makes a (timestamp, uuid) cursor unsound: the
	// cursor drains to head, then an event with an *older* timestamp is
	// imported (e.g. relayed late from a third mesh node). The time index
	// inserts it behind the cursor forever; the change feed must serve it.
	s, _ := openTemp(t)
	for i := 0; i < 5; i++ {
		if err := s.Put(event(t, fmt.Sprintf("evt-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_, head := drainChanges(t, s, 0, 2)

	late := misp.NewEvent("late import", now.Add(-time.Hour))
	late.Timestamp = misp.UT(now.Add(-time.Hour))
	if err := s.Put(late); err != nil {
		t.Fatal(err)
	}

	fresh, _ := drainChanges(t, s, head, 10)
	if len(fresh) != 1 || fresh[0].UUID != late.UUID {
		t.Fatalf("cursor at %d missed the late import: got %d events", head, len(fresh))
	}

	// Contrast: the time index hides it from any cursor at or past `now`.
	byTime, _, err := s.UpdatedSincePage(now, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range byTime {
		if e.UUID == late.UUID {
			t.Fatal("UpdatedSincePage unexpectedly served the older-timestamp event")
		}
	}
}

func TestChangesFeedReputMovesEventToTail(t *testing.T) {
	s, _ := openTemp(t)
	a := event(t, "a")
	b := event(t, "b")
	for _, e := range []*misp.Event{a, b} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	_, head := drainChanges(t, s, 0, 10)

	edited := a.Clone()
	edited.Info = "a v2"
	if err := s.Put(edited); err != nil {
		t.Fatal(err)
	}
	fresh, _ := drainChanges(t, s, head, 10)
	if len(fresh) != 1 || fresh[0].UUID != a.UUID || fresh[0].Info != "a v2" {
		t.Fatalf("re-put not served at tail: %+v", fresh)
	}

	// A full drain serves the edited revision exactly once: the stale
	// entry for the first revision is skipped.
	all, _ := drainChanges(t, s, 0, 10)
	seen := map[string]int{}
	for _, e := range all {
		seen[e.UUID]++
	}
	if len(all) != 2 || seen[a.UUID] != 1 || seen[b.UUID] != 1 {
		t.Fatalf("full drain = %d events, counts %v", len(all), seen)
	}
}

func TestChangesFeedSkipsDeleted(t *testing.T) {
	s, _ := openTemp(t)
	a := event(t, "a")
	b := event(t, "b")
	for _, e := range []*misp.Event{a, b} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(a.UUID); err != nil {
		t.Fatal(err)
	}
	all, _ := drainChanges(t, s, 0, 10)
	if len(all) != 1 || all[0].UUID != b.UUID {
		t.Fatalf("feed after delete = %d events", len(all))
	}
}

func TestChangesFeedStableAcrossRestartAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]*misp.Event, 40)
	for i := range first {
		first[i] = event(t, fmt.Sprintf("evt-%d", i))
	}
	if err := s.PutBatch(first); err != nil {
		t.Fatal(err)
	}
	// A peer drains to head and durably remembers this sequence.
	_, head := drainChanges(t, s, 0, 16)

	// Compact (events move WAL -> snapshot) and crash/restart.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The old cursor must still mean "everything already seen": nothing
	// new yet, and events stored after the restart appear past it.
	fresh, next := drainChanges(t, s, head, 16)
	if len(fresh) != 0 {
		t.Fatalf("cursor %d re-served %d events after restart", head, len(fresh))
	}
	late := event(t, "post-restart")
	if err := s.Put(late); err != nil {
		t.Fatal(err)
	}
	fresh, _ = drainChanges(t, s, next, 16)
	if len(fresh) != 1 || fresh[0].UUID != late.UUID {
		t.Fatalf("post-restart put not served: got %d events", len(fresh))
	}
	// And a from-scratch drain still yields the full set exactly once.
	all, _ := drainChanges(t, s, 0, 16)
	if len(all) != 41 {
		t.Fatalf("full drain after restart = %d events, want 41", len(all))
	}
}

func TestChangesLogCompactsStaleEntries(t *testing.T) {
	s, _ := openTemp(t)
	events := make([]*misp.Event, 50)
	for i := range events {
		events[i] = event(t, fmt.Sprintf("evt-%d", i))
		if err := s.Put(events[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Churn far past the compaction threshold.
	for round := 0; round < 60; round++ {
		for _, e := range events {
			edited := e.Clone()
			edited.Info = fmt.Sprintf("round %d", round)
			if err := s.Put(edited); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.mu.RLock()
	logLen, stale := len(s.changes), s.staleChanges
	s.mu.RUnlock()
	if logLen > 2*len(events)+2048 {
		t.Fatalf("change log grew unbounded: %d entries (%d stale) for %d live events",
			logLen, stale, len(events))
	}
	all, _ := drainChanges(t, s, 0, 16)
	if len(all) != len(events) {
		t.Fatalf("drain after churn = %d events, want %d", len(all), len(events))
	}
}
