package storage

import (
	"fmt"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// drainFullChanges pages the tombstone-bearing feed from afterSeq and
// returns every entry in feed order plus the final resume sequence.
func drainFullChanges(t *testing.T, s *Store, afterSeq uint64, limit int) ([]Change, uint64) {
	t.Helper()
	var out []Change
	for {
		page, next, more, err := s.Changes(afterSeq, limit)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, page...)
		afterSeq = next
		if !more {
			return out, afterSeq
		}
	}
}

func TestDeleteSurvivesWALReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := event(t, "a")
	b := event(t, "b")
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(a.UUID); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Get(a.UUID); err == nil {
		t.Fatal("deleted event resurrected by WAL replay")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after replayed delete, want 1", s.Len())
	}
}

func TestDeleteSurvivesCompactionAndRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := event(t, "a")
	b := event(t, "b")
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	// Compact first so the doomed event lives in the snapshot, then
	// delete and compact again: the deletion must carry into the new
	// snapshot as a tombstone, not vanish with the WAL.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(a.UUID); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Get(a.UUID); err == nil {
		t.Fatal("delete lost across compaction + restart")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// The tombstone still rides the change feed so a peer resuming an
	// old cursor after our restart still learns about the deletion.
	all, _ := drainFullChanges(t, s, 0, 16)
	var sawTomb bool
	for _, ch := range all {
		if ch.Event == nil && ch.UUID == a.UUID {
			sawTomb = true
		}
	}
	if !sawTomb {
		t.Fatal("tombstone missing from change feed after restart")
	}
}

func TestChangesFeedCarriesTombstones(t *testing.T) {
	s, _ := openTemp(t)
	a := event(t, "a")
	b := event(t, "b")
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	_, head := drainFullChanges(t, s, 0, 16)

	when := time.Date(2020, 3, 1, 10, 0, 0, 0, time.UTC)
	if err := s.DeleteAt(a.UUID, when); err != nil {
		t.Fatal(err)
	}
	fresh, _ := drainFullChanges(t, s, head, 16)
	if len(fresh) != 1 {
		t.Fatalf("feed after delete = %d entries, want 1 tombstone", len(fresh))
	}
	if fresh[0].Event != nil || fresh[0].UUID != a.UUID || !fresh[0].DeletedAt.Equal(when) {
		t.Fatalf("tombstone entry = %+v", fresh[0])
	}

	// Re-putting the UUID with a revision newer than the deletion
	// resurrects it: the tombstone disappears from the feed and the live
	// revision is served instead. An older revision must stay dead.
	stale := event(t, "a stale")
	stale.UUID = a.UUID
	if err := s.Put(stale); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(a.UUID); err == nil {
		t.Fatal("revision older than the deletion resurrected the event")
	}
	revived := event(t, "a reborn")
	revived.UUID = a.UUID
	revived.Timestamp = misp.UT(when.Add(time.Hour))
	if err := s.Put(revived); err != nil {
		t.Fatal(err)
	}
	all, _ := drainFullChanges(t, s, 0, 16)
	for _, ch := range all {
		if ch.Event == nil && ch.UUID == a.UUID {
			t.Fatal("stale tombstone served after re-put")
		}
	}
	if _, err := s.Get(a.UUID); err != nil {
		t.Fatal("re-put after delete did not resurrect the event")
	}
}

func TestTombstoneRetentionBounded(t *testing.T) {
	s, _ := openTemp(t, WithTombstoneRetention(64))
	for i := 0; i < 300; i++ {
		e := event(t, fmt.Sprintf("evt-%d", i))
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(e.UUID); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Durability().Tombstones; got > 64 {
		t.Fatalf("tombstone set grew past retention cap: %d > 64", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}
