package storage

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"github.com/caisplatform/caisp/internal/misp"
)

// storeState captures the logical store content at one commit point.
type storeState map[string]string // uuid -> info

func captureState(t *testing.T, s *Store) storeState {
	t.Helper()
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	st := make(storeState, len(all))
	for _, e := range all {
		st[e.UUID] = e.Info
	}
	return st
}

func statesEqual(a, b storeState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// runRandomWorkload drives a seeded mix of Put, PutBatch, Delete, update
// and Compact against a store with tiny segments, recording the logical
// state after every commit point. It returns the recorded states
// (states[0] is the empty store) and leaves the store closed.
func runRandomWorkload(t *testing.T, dir string, rng *rand.Rand, ops int) []storeState {
	t.Helper()
	s, err := Open(dir, WithSegmentSize(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	states := []storeState{{}}
	var live []string
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 4: // single put
			e := event(t, fmt.Sprintf("put-%d", i), [2]string{"domain", fmt.Sprintf("p%d.example", i)})
			if err := s.Put(e); err != nil {
				t.Fatal(err)
			}
			live = append(live, e.UUID)
		case r < 7: // batch put, all-or-nothing
			n := 2 + rng.Intn(4)
			batch := make([]*misp.Event, n)
			for j := range batch {
				batch[j] = event(t, fmt.Sprintf("batch-%d-%d", i, j), [2]string{"domain", fmt.Sprintf("b%d-%d.example", i, j)})
			}
			if err := s.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
			for _, e := range batch {
				live = append(live, e.UUID)
			}
		case r < 8 && len(live) > 0: // update an existing event in place
			uuid := live[rng.Intn(len(live))]
			if s.Has(uuid) {
				e := event(t, fmt.Sprintf("update-%d", i), [2]string{"domain", fmt.Sprintf("u%d.example", i)})
				e.UUID = uuid
				if err := s.Put(e); err != nil {
					t.Fatal(err)
				}
			}
		case r < 9 && len(live) > 0: // delete
			uuid := live[rng.Intn(len(live))]
			if s.Has(uuid) {
				if err := s.Delete(uuid); err != nil {
					t.Fatal(err)
				}
			}
		default: // checkpoint
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, captureState(t, s))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return states
}

// assertPrefixState reopens the store and requires its content to equal
// one of the recorded commit points — the per-op (and per-batch)
// atomicity property: a crash may lose a suffix of commits, never a
// middle slice or a partial batch.
func assertPrefixState(t *testing.T, dir string, states []storeState, context string) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("%s: reopen failed: %v", context, err)
	}
	defer s.Close()
	got := captureState(t, s)
	for i := len(states) - 1; i >= 0; i-- {
		if statesEqual(got, states[i]) {
			return
		}
	}
	t.Fatalf("%s: recovered state (%d events) matches no commit point", context, len(got))
}

// TestCrashRecoveryTruncatedTail truncates the active WAL segment at
// arbitrary byte offsets — simulating a crash mid-write — and checks
// that recovery always lands exactly on a committed prefix.
func TestCrashRecoveryTruncatedTail(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			states := runRandomWorkload(t, dir, rng, 60)
			segs, err := listSegments(dir)
			if err != nil || len(segs) == 0 {
				t.Fatalf("no wal segments: %v", err)
			}
			last := segs[len(segs)-1]
			if last.size == 0 {
				t.Skip("final segment empty after workload")
			}
			cut := int64(rng.Intn(int(last.size)))
			if err := os.Truncate(last.path, cut); err != nil {
				t.Fatal(err)
			}
			assertPrefixState(t, dir, states, fmt.Sprintf("truncate at %d/%d", cut, last.size))
		})
	}
}

// TestCrashRecoveryCorruptedByte flips one byte at an arbitrary offset
// in an arbitrary segment. Recovery must either refuse to open (detected
// corruption) or — when the flip lands in the reparable tail — recover a
// committed prefix. It must never silently produce a state that was
// never committed.
func TestCrashRecoveryCorruptedByte(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2000 + trial)))
			dir := t.TempDir()
			states := runRandomWorkload(t, dir, rng, 60)
			segs, err := listSegments(dir)
			if err != nil || len(segs) == 0 {
				t.Fatalf("no wal segments: %v", err)
			}
			nonEmpty := segs[:0]
			for _, sg := range segs {
				if sg.size > 0 {
					nonEmpty = append(nonEmpty, sg)
				}
			}
			if len(nonEmpty) == 0 {
				t.Skip("all segments empty after workload")
			}
			seg := nonEmpty[rng.Intn(len(nonEmpty))]
			data, err := os.ReadFile(seg.path)
			if err != nil {
				t.Fatal(err)
			}
			off := rng.Intn(len(data))
			data[off] ^= 1 << uint(rng.Intn(8))
			if err := os.WriteFile(seg.path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				return // detected corruption: the honest outcome
			}
			got := captureState(t, s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			for i := len(states) - 1; i >= 0; i-- {
				if statesEqual(got, states[i]) {
					return
				}
			}
			t.Fatalf("flip at %s:%d silently recovered a state that was never committed", seg.path, off)
		})
	}
}
