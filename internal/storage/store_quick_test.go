package storage

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// TestRandomOpsReplayEquivalence drives the store with random put/delete
// sequences and verifies that closing and reopening reproduces exactly the
// same state — the WAL replay invariant.
func TestRandomOpsReplayEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			base := time.Date(2019, 6, 24, 0, 0, 0, 0, time.UTC)
			var live []string
			for op := 0; op < 200; op++ {
				switch {
				case len(live) > 0 && r.Intn(4) == 0: // delete
					idx := r.Intn(len(live))
					if err := s.Delete(live[idx]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:idx], live[idx+1:]...)
				case len(live) > 0 && r.Intn(4) == 0: // update
					e := misp.NewEvent(fmt.Sprintf("updated-%d", op), base.Add(time.Duration(op)*time.Minute))
					e.UUID = live[r.Intn(len(live))]
					e.AddAttribute("domain", "Network activity", fmt.Sprintf("u%d.example", op), base)
					if err := s.Put(e); err != nil {
						t.Fatal(err)
					}
				default: // insert
					e := misp.NewEvent(fmt.Sprintf("evt-%d", op), base.Add(time.Duration(op)*time.Minute))
					e.AddAttribute("domain", "Network activity", fmt.Sprintf("h%d.example", op), base)
					if err := s.Put(e); err != nil {
						t.Fatal(err)
					}
					live = append(live, e.UUID)
				}
				// Occasionally compact mid-stream.
				if op%67 == 66 {
					if err := s.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			before, err := s.All()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			after, err := s2.All()
			if err != nil {
				t.Fatal(err)
			}
			if len(before) != len(after) {
				t.Fatalf("replay size %d, want %d", len(after), len(before))
			}
			for i := range before {
				if !reflect.DeepEqual(before[i], after[i]) {
					t.Fatalf("event %d differs after replay:\n%+v\n%+v", i, before[i], after[i])
				}
			}
			// Secondary indexes answer identically after replay.
			for _, e := range after {
				for _, a := range e.Attributes {
					hits, err := s2.SearchValue(a.Value)
					if err != nil || len(hits) == 0 {
						t.Fatalf("index lookup of %q after replay: %d hits, %v", a.Value, len(hits), err)
					}
				}
			}
		})
	}
}
