package storage

import (
	"fmt"
	"sync"

	"github.com/caisplatform/caisp/internal/misp"
	"testing"
)

// TestForEachParallelVisitsAllOnce checks that every stored event is
// visited exactly once, for worker counts below, at and above the event
// count, and that the callback runs outside the store lock (a visitor
// may issue reads against the store without deadlocking).
func TestForEachParallelVisitsAllOnce(t *testing.T) {
	s, _ := openTemp(t)
	const n = 57
	uuids := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		e := event(t, fmt.Sprintf("evt-%d", i),
			[2]string{"domain", fmt.Sprintf("h%d.example", i)})
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		uuids[e.UUID] = true
	}
	for _, workers := range []int{0, 1, 4, n + 10} {
		var mu sync.Mutex
		seen := make(map[string]int, n)
		s.ForEachParallel(workers, func(e *misp.Event) {
			// Reads against the store must not deadlock: the callback
			// runs on a frozen snapshot outside the store lock.
			if !s.Has(e.UUID) {
				t.Errorf("workers=%d: visited event %s not in store", workers, e.UUID)
			}
			mu.Lock()
			seen[e.UUID]++
			mu.Unlock()
		})
		if len(seen) != n {
			t.Fatalf("workers=%d: visited %d events, want %d", workers, len(seen), n)
		}
		for u, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: event %s visited %d times", workers, u, c)
			}
			if !uuids[u] {
				t.Fatalf("workers=%d: unknown event %s visited", workers, u)
			}
		}
	}
}

// TestCorrelatedWithoutIndexesMultiValue exercises the non-indexed
// fallback with a query event carrying several attribute values: the
// scan must match stored events against the full value set, not just
// one value per pass.
func TestCorrelatedWithoutIndexesMultiValue(t *testing.T) {
	s, _ := openTemp(t, WithIndexes(false))
	a := event(t, "a", [2]string{"domain", "one.example"})
	b := event(t, "b", [2]string{"ip-dst", "198.51.100.7"})
	c := event(t, "c", [2]string{"domain", "other.example"})
	for _, e := range []*misp.Event{a, b, c} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	q := event(t, "q",
		[2]string{"domain", "one.example"},
		[2]string{"ip-dst", "198.51.100.7"})
	got := s.Correlated(q)
	found := make(map[string]bool, len(got))
	for _, u := range got {
		found[u] = true
	}
	if !found[a.UUID] || !found[b.UUID] || found[c.UUID] || len(got) != 2 {
		t.Fatalf("Correlated = %v", got)
	}
}
