package storage

import (
	"fmt"
	"strings"
	"testing"

	"github.com/caisplatform/caisp/internal/misp"
)

func TestPutBatchStoresAndIndexes(t *testing.T) {
	s, _ := openTemp(t)
	batch := []*misp.Event{
		event(t, "a", [2]string{"domain", "a.example"}),
		event(t, "b", [2]string{"domain", "b.example"}),
		event(t, "c", [2]string{"ip-dst", "203.0.113.9"}),
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.WALOps() != 3 {
		t.Fatalf("wal ops = %d", s.WALOps())
	}
	hits, err := s.SearchValue("b.example")
	if err != nil || len(hits) != 1 || hits[0].UUID != batch[1].UUID {
		t.Fatalf("indexed lookup after batch: %d, %v", len(hits), err)
	}
}

func TestPutBatchIsAllOrNothing(t *testing.T) {
	s, _ := openTemp(t)
	bad := event(t, "bad", [2]string{"domain", "bad.example"})
	bad.UUID = "not-a-uuid"
	batch := []*misp.Event{
		event(t, "good", [2]string{"domain", "good.example"}),
		bad,
	}
	err := s.PutBatch(batch)
	if err == nil || !strings.Contains(err.Error(), "invalid uuid") {
		t.Fatalf("err = %v", err)
	}
	if s.Len() != 0 || s.WALOps() != 0 {
		t.Fatalf("partial batch applied: len=%d walops=%d", s.Len(), s.WALOps())
	}
	if err := s.PutBatch([]*misp.Event{nil}); err == nil {
		t.Fatal("nil event accepted")
	}
	if err := s.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestPutBatchIsolatesCaller(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "evt", [2]string{"domain", "before.example"})
	if err := s.PutBatch([]*misp.Event{e}); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's event after the batch must not leak into the
	// stored copy (PutBatch clones, like Put).
	e.Attributes[0].Value = "after.example"
	got, err := s.Get(e.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attributes[0].Value != "before.example" {
		t.Fatalf("stored copy mutated through caller: %q", got.Attributes[0].Value)
	}
}

func TestPutBatchDurableAcrossRestart(t *testing.T) {
	s, dir := openTemp(t, WithSync(true))
	batch := make([]*misp.Event, 20)
	for i := range batch {
		batch[i] = event(t, fmt.Sprintf("evt-%d", i),
			[2]string{"domain", fmt.Sprintf("h%d.example", i)})
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(batch) {
		t.Fatalf("after replay: %d events, want %d", re.Len(), len(batch))
	}
	for _, e := range batch {
		if _, err := re.Get(e.UUID); err != nil {
			t.Fatalf("event %s lost: %v", e.UUID, err)
		}
	}
}

func TestPutBatchReplacesExisting(t *testing.T) {
	s, _ := openTemp(t)
	e := event(t, "original", [2]string{"domain", "old.example"})
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	update := event(t, "updated", [2]string{"domain", "new.example"})
	update.UUID = e.UUID
	if err := s.PutBatch([]*misp.Event{update}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if hits, _ := s.SearchValue("old.example"); len(hits) != 0 {
		t.Fatal("stale index entry survived batch replace")
	}
	if hits, _ := s.SearchValue("new.example"); len(hits) != 1 {
		t.Fatal("replacement not indexed")
	}
}
