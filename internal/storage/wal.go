// Segmented write-ahead log (DESIGN.md §9). The WAL is a sequence of
// size-bounded segment files named wal-<firstseq>.seg, each holding
// CRC32C-framed records:
//
//	offset 0  uint32 LE  payload length
//	offset 4  uint32 LE  CRC32-Castagnoli over (flags byte ‖ payload)
//	offset 8  byte       flags (bit 0: group commit)
//	offset 9  payload    JSON-encoded walRecord
//
// Every append group (one Put/Delete, or one whole PutBatch) marks its
// final frame with the commit flag; recovery applies records only up to
// the last committed group, which is what makes PutBatch all-or-nothing
// across a crash. Rotation happens strictly between groups, so a group
// never spans segments. Compaction seals the active segment and later
// deletes the sealed segments the published snapshot covers — no
// truncate-in-place, no stop-the-world rewrite.
package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	walSegPrefix = "wal-"
	walSegSuffix = ".seg"

	frameHdrLen     = 9
	frameCommit     = 1 << 0
	maxFramePayload = 64 << 20

	// defaultSegmentSize bounds a segment; crossing it after an append
	// group seals the segment and opens a fresh one.
	defaultSegmentSize = 4 << 20
)

var (
	castagnoli   = crc32.MakeTable(crc32.Castagnoli)
	errWALClosed = errors.New("storage: wal is closed")
)

// frameCRC covers the flags byte and the payload, so a bit flip in
// either is detected.
func frameCRC(flags byte, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, []byte{flags})
	return crc32.Update(crc, castagnoli, payload)
}

// walSegment describes one sealed (read-only) segment on disk.
type walSegment struct {
	path  string
	first uint64 // first sequence number the segment may contain
	size  int64
}

func segmentPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", walSegPrefix, first, walSegSuffix))
}

// listSegments returns the WAL segments in dir, ascending by first
// sequence number. Files not matching the naming scheme are ignored.
func listSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list wal segments: %w", err)
	}
	var segs []walSegment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegSuffix), 10, 64)
		if err != nil {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, fmt.Errorf("storage: stat wal segment %s: %w", name, err)
		}
		segs = append(segs, walSegment{path: filepath.Join(dir, name), first: first, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// walWriter owns the active segment plus the list of sealed ones. All
// methods are called with the store's write lock held (or during Open,
// before the store is shared).
type walWriter struct {
	dir     string
	sync    bool
	maxSize int64

	f      *os.File
	w      *bufio.Writer
	path   string
	first  uint64 // first sequence number of the active segment
	last   uint64 // last sequence number appended
	size   int64
	sealed []walSegment

	encBuf []byte // reused group-encode buffer
	failed bool   // a truncate-back after a failed append also failed
}

// openWALWriter resumes appending to the last recovered segment, or
// starts a fresh one at nextSeq+1 when none exist. segs must be the
// replayed (and tail-repaired) segment list from recovery.
func openWALWriter(dir string, segs []walSegment, nextSeq uint64, syncEach bool, maxSize int64) (*walWriter, error) {
	w := &walWriter{dir: dir, sync: syncEach, maxSize: maxSize, last: nextSeq}
	var active walSegment
	if len(segs) > 0 {
		active = segs[len(segs)-1]
		w.sealed = append(w.sealed, segs[:len(segs)-1]...)
	} else {
		active = walSegment{path: segmentPath(dir, nextSeq + 1), first: nextSeq + 1}
	}
	f, err := os.OpenFile(active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal segment: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 64<<10)
	w.path = active.path
	w.first = active.first
	w.size = active.size
	return w, nil
}

// append writes one commit group: every record framed, the last one
// carrying the commit flag, all in a single buffered write, one flush
// and (in sync mode) one fsync. On a write error the segment is
// truncated back to the last good group boundary so later appends never
// land behind torn garbage.
func (w *walWriter) append(recs []walRecord) error {
	if w.f == nil {
		return errWALClosed
	}
	if w.failed {
		return fmt.Errorf("storage: wal unusable after failed truncate-back")
	}
	buf := w.encBuf[:0]
	for i := range recs {
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			return fmt.Errorf("storage: encode wal record: %w", err)
		}
		var flags byte
		if i == len(recs)-1 {
			flags = frameCommit
		}
		var hdr [frameHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(flags, payload))
		hdr[8] = flags
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	w.encBuf = buf
	err := func() error {
		if _, err := w.w.Write(buf); err != nil {
			return fmt.Errorf("storage: append wal: %w", err)
		}
		if err := w.w.Flush(); err != nil {
			return fmt.Errorf("storage: flush wal: %w", err)
		}
		if w.sync {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("storage: sync wal: %w", err)
			}
		}
		return nil
	}()
	if err != nil {
		// Part of the group may have reached the file; cut it back to the
		// previous committed boundary so the segment stays replayable.
		w.w.Reset(w.f)
		if terr := w.f.Truncate(w.size); terr != nil {
			w.failed = true
		}
		return err
	}
	w.size += int64(len(buf))
	w.last = recs[len(recs)-1].Seq
	if w.size >= w.maxSize {
		// The group is committed either way; a rotation failure only means
		// the segment keeps growing until the next attempt.
		_ = w.rotate(w.last + 1)
	}
	return nil
}

// rotate seals the active segment and opens a fresh one whose first
// sequence number is first. A failure leaves the writer exactly as it
// was — the active segment remains valid and appendable.
func (w *walWriter) rotate(first uint64) error {
	if w.f == nil {
		return errWALClosed
	}
	if w.size == 0 {
		return nil // nothing to seal
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush wal before rotate: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync wal before rotate: %w", err)
		}
	}
	nf, err := os.OpenFile(segmentPath(w.dir, first), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open next wal segment: %w", err)
	}
	_ = w.f.Close() // already flushed (and fsynced in sync mode)
	w.sealed = append(w.sealed, walSegment{path: w.path, first: w.first, size: w.size})
	w.f = nf
	w.w.Reset(nf)
	w.path = segmentPath(w.dir, first)
	w.first = first
	w.size = 0
	return nil
}

// dropCovered removes sealed segments fully covered by a snapshot at
// seq from the writer's bookkeeping and returns their paths for
// deletion. A sealed segment is covered when its successor's first
// sequence number is at most seq+1 (every record in it is ≤ seq).
func (w *walWriter) dropCovered(seq uint64) []string {
	var dropped []string
	for len(w.sealed) > 0 {
		next := w.first
		if len(w.sealed) > 1 {
			next = w.sealed[1].first
		}
		if next > seq+1 {
			break
		}
		dropped = append(dropped, w.sealed[0].path)
		w.sealed = w.sealed[1:]
	}
	return dropped
}

// bytes reports the total on-disk WAL footprint (active + sealed).
func (w *walWriter) bytes() int64 {
	total := w.size
	for _, s := range w.sealed {
		total += s.size
	}
	return total
}

// segments reports how many segment files the WAL spans.
func (w *walWriter) segments() int {
	return len(w.sealed) + 1
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	ferr := w.w.Flush()
	cerr := w.f.Close()
	w.f = nil
	return errors.Join(ferr, cerr)
}

// walFrame is one scanned record frame.
type walFrame struct {
	payload []byte
	commit  bool
}

// scanSegment parses the frames of one segment. For the final (active)
// segment a torn tail — an incomplete header, a payload cut short, or a
// CRC mismatch on the very last frame — ends the scan at the previous
// committed group, and committedEnd tells the caller where to truncate
// the file for repair. Any anomaly in a sealed segment, or a corrupt
// frame with intact data after it, is real corruption and an error.
func scanSegment(data []byte, final bool) (frames []walFrame, committedEnd int64, err error) {
	corrupt := func(format string, args ...any) ([]walFrame, int64, error) {
		return nil, 0, fmt.Errorf("storage: corrupt wal segment: "+format, args...)
	}
	off := 0
	committed := 0 // frames in the committed prefix
	for off < len(data) {
		if len(data)-off < frameHdrLen {
			if !final {
				return corrupt("truncated frame header at offset %d", off)
			}
			break // torn tail
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		flags := data[off+8]
		if plen > maxFramePayload {
			if !final {
				return corrupt("implausible frame length %d at offset %d", plen, off)
			}
			break // torn header bytes
		}
		end := off + frameHdrLen + plen
		if end > len(data) {
			if !final {
				return corrupt("truncated frame payload at offset %d", off)
			}
			break // torn tail
		}
		payload := data[off+frameHdrLen : end]
		if frameCRC(flags, payload) != crc {
			if final && end == len(data) {
				break // torn final frame
			}
			return corrupt("crc mismatch at offset %d", off)
		}
		frames = append(frames, walFrame{payload: payload, commit: flags&frameCommit != 0})
		off = end
		if flags&frameCommit != 0 {
			committedEnd = int64(off)
			committed = len(frames)
		}
	}
	frames = frames[:committed]
	if !final && committedEnd != int64(len(data)) {
		return corrupt("segment ends mid-group at offset %d", committedEnd)
	}
	return frames, committedEnd, nil
}
