// Package detecteval implements the paper's stated future work of
// comparing the platform "with other existing tools in terms of detection,
// false positive and false negative rates" (§VI). It generates a labelled
// synthetic advisory corpus, runs three prioritization strategies over it —
// the context-aware threat score, the same score without infrastructure
// context, and the static CVSS-severity rule the paper's introduction calls
// no longer sufficient — and reports detection (recall), false-positive and
// false-negative rates per strategy.
package detecteval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/cvss"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/stix"
)

// Sample is one labelled advisory.
type Sample struct {
	// IoC is the STIX vulnerability built from the advisory.
	IoC *stix.Vulnerability
	// Severity is the CVSS band of the advisory.
	Severity cvss.Severity
	// Applicable is true when the advisory's products run in the
	// monitored infrastructure.
	Applicable bool
	// Actionable is the ground truth: the analyst should act — the
	// advisory is applicable AND at least high severity.
	Actionable bool
}

// Dataset is a labelled corpus over one inventory.
type Dataset struct {
	Inventory *infra.Inventory
	Samples   []Sample
	// Now is the evaluation instant used for every sample.
	Now time.Time
}

// Generate builds a deterministic corpus of n advisories: roughly half
// affect applications from the inventory and severities span the CVSS
// bands. Information quality (references, dates, operating system) is held
// constant across samples so the comparison isolates what the experiment
// varies — applicability to the monitored infrastructure and severity —
// rather than drowning it in per-advisory completeness noise.
func Generate(seed int64, n int, inventory *infra.Inventory) (*Dataset, error) {
	if inventory == nil {
		inventory = infra.PaperInventory()
	}
	if err := inventory.Validate(); err != nil {
		return nil, err
	}
	now := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)
	r := rand.New(rand.NewSource(seed))

	var inventoryApps []string
	seen := make(map[string]bool)
	for _, node := range inventory.Nodes {
		for _, app := range node.Applications {
			if !seen[app] {
				seen[app] = true
				inventoryApps = append(inventoryApps, app)
			}
		}
	}
	sort.Strings(inventoryApps)
	foreignApps := []string{
		"iis", "exchange", "sharepoint", "coldfusion", "weblogic",
		"jboss", "citrix", "fortigate", "solarwinds",
	}
	vectors := map[cvss.Severity][]string{
		cvss.SeverityLow:      {"CVSS:3.1/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N"},
		cvss.SeverityMedium:   {"CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:L/I:L/A:N", "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N"},
		cvss.SeverityHigh:     {"CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"},
		cvss.SeverityCritical: {"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"},
	}
	severities := []cvss.Severity{
		cvss.SeverityLow, cvss.SeverityMedium, cvss.SeverityHigh, cvss.SeverityCritical,
	}

	ds := &Dataset{Inventory: inventory, Now: now}
	for i := 0; i < n; i++ {
		applicable := r.Intn(2) == 0
		var product string
		if applicable {
			product = inventoryApps[r.Intn(len(inventoryApps))]
		} else {
			product = foreignApps[r.Intn(len(foreignApps))]
		}
		severity := severities[r.Intn(len(severities))]
		vecs := vectors[severity]
		vector := vecs[r.Intn(len(vecs))]

		created := now.AddDate(0, 0, -200)
		cveID := fmt.Sprintf("CVE-%d-%04d", 2016+r.Intn(3), 1000+i)
		v := stix.NewVulnerability(cveID,
			fmt.Sprintf("synthetic %s vulnerability in %s", severity, product), created)
		v.ExternalReferences = append(v.ExternalReferences,
			stix.ExternalReference{SourceName: "cve", ExternalID: cveID},
			stix.ExternalReference{SourceName: "nvd", URL: "https://nvd.example/" + cveID})
		v.SetExtra(heuristic.PropProducts, product)
		v.SetExtra(heuristic.PropOS, "debian")
		v.SetExtra(heuristic.PropCVSSVector, vector)
		v.SetExtra(heuristic.PropSourceType, "osint")

		ds.Samples = append(ds.Samples, Sample{
			IoC:        v,
			Severity:   severity,
			Applicable: applicable,
			Actionable: applicable && severity >= cvss.SeverityHigh,
		})
	}
	return ds, nil
}

// Metrics are the confusion-matrix rates of one strategy.
type Metrics struct {
	Strategy      string  `json:"strategy"`
	TP            int     `json:"tp"`
	FP            int     `json:"fp"`
	TN            int     `json:"tn"`
	FN            int     `json:"fn"`
	DetectionRate float64 `json:"detection_rate"` // recall = TP/(TP+FN)
	FPRate        float64 `json:"fp_rate"`        // FP/(FP+TN)
	FNRate        float64 `json:"fn_rate"`        // FN/(TP+FN)
	Precision     float64 `json:"precision"`      // TP/(TP+FP)
}

func (m *Metrics) finalize() {
	if m.TP+m.FN > 0 {
		m.DetectionRate = float64(m.TP) / float64(m.TP+m.FN)
		m.FNRate = float64(m.FN) / float64(m.TP+m.FN)
	}
	if m.FP+m.TN > 0 {
		m.FPRate = float64(m.FP) / float64(m.FP+m.TN)
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
}

// Strategy decides whether an advisory deserves analyst attention.
type Strategy struct {
	// Name labels the strategy in reports.
	Name string
	// Flag returns true when the sample should be raised.
	Flag func(Sample) (bool, error)
}

// ContextAwareStrategy flags samples whose context-aware threat score
// reaches threshold — the platform's approach. The engine sees the
// infrastructure inventory, so applicability raises the score.
func ContextAwareStrategy(ds *Dataset, threshold float64) (Strategy, error) {
	collector, err := infra.NewCollector(ds.Inventory)
	if err != nil {
		return Strategy{}, err
	}
	engine := heuristic.NewEngine(
		heuristic.WithInfrastructure(collector),
		heuristic.WithNow(func() time.Time { return ds.Now }),
	)
	return Strategy{
		Name: fmt.Sprintf("context-aware TS ≥ %.2f", threshold),
		Flag: func(s Sample) (bool, error) {
			res, err := engine.Evaluate(s.IoC)
			if err != nil {
				return false, err
			}
			return res.Score >= threshold, nil
		},
	}, nil
}

// NoContextStrategy is the ablation: the same threat score computed
// without any infrastructure knowledge.
func NoContextStrategy(ds *Dataset, threshold float64) Strategy {
	engine := heuristic.NewEngine(
		heuristic.WithNow(func() time.Time { return ds.Now }),
	)
	return Strategy{
		Name: fmt.Sprintf("no-context TS ≥ %.2f", threshold),
		Flag: func(s Sample) (bool, error) {
			res, err := engine.Evaluate(s.IoC)
			if err != nil {
				return false, err
			}
			return res.Score >= threshold, nil
		},
	}
}

// CVSSOnlyStrategy is the static baseline the paper's introduction
// criticizes: raise everything of at least high CVSS severity, regardless
// of the monitored infrastructure.
func CVSSOnlyStrategy() Strategy {
	return Strategy{
		Name: "static CVSS ≥ high",
		Flag: func(s Sample) (bool, error) {
			return s.Severity >= cvss.SeverityHigh, nil
		},
	}
}

// Run evaluates one strategy over the dataset.
func Run(ds *Dataset, strategy Strategy) (Metrics, error) {
	m := Metrics{Strategy: strategy.Name}
	for _, s := range ds.Samples {
		flagged, err := strategy.Flag(s)
		if err != nil {
			return Metrics{}, err
		}
		switch {
		case flagged && s.Actionable:
			m.TP++
		case flagged && !s.Actionable:
			m.FP++
		case !flagged && s.Actionable:
			m.FN++
		default:
			m.TN++
		}
	}
	m.finalize()
	return m, nil
}

// Compare runs the three strategies (context-aware and no-context at the
// given threshold, plus the CVSS baseline) over a fresh corpus.
func Compare(seed int64, n int, threshold float64) ([]Metrics, error) {
	ds, err := Generate(seed, n, nil)
	if err != nil {
		return nil, err
	}
	contextAware, err := ContextAwareStrategy(ds, threshold)
	if err != nil {
		return nil, err
	}
	strategies := []Strategy{contextAware, NoContextStrategy(ds, threshold), CVSSOnlyStrategy()}
	out := make([]Metrics, 0, len(strategies))
	for _, st := range strategies {
		m, err := Run(ds, st)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ThresholdSweep evaluates the context-aware strategy across thresholds,
// tracing its detection/false-positive trade-off.
func ThresholdSweep(seed int64, n int, thresholds []float64) ([]Metrics, error) {
	ds, err := Generate(seed, n, nil)
	if err != nil {
		return nil, err
	}
	var out []Metrics
	for _, th := range thresholds {
		st, err := ContextAwareStrategy(ds, th)
		if err != nil {
			return nil, err
		}
		m, err := Run(ds, st)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Render prints a metrics table.
func Render(title string, metrics []Metrics) string {
	var sb strings.Builder
	sb.WriteString(title + "\n\n")
	fmt.Fprintf(&sb, "%-28s %-5s %-5s %-5s %-5s %-10s %-8s %-8s %s\n",
		"strategy", "TP", "FP", "TN", "FN", "detection", "FP rate", "FN rate", "precision")
	for _, m := range metrics {
		fmt.Fprintf(&sb, "%-28s %-5d %-5d %-5d %-5d %-10.3f %-8.3f %-8.3f %.3f\n",
			m.Strategy, m.TP, m.FP, m.TN, m.FN,
			m.DetectionRate, m.FPRate, m.FNRate, m.Precision)
	}
	return sb.String()
}
