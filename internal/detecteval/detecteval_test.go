package detecteval

import (
	"strings"
	"testing"

	"github.com/caisplatform/caisp/internal/cvss"
	"github.com/caisplatform/caisp/internal/infra"
)

func TestGenerateDeterministicAndLabelled(t *testing.T) {
	a, err := Generate(7, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != 200 || len(b.Samples) != 200 {
		t.Fatalf("sizes %d/%d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].IoC.Name != b.Samples[i].IoC.Name ||
			a.Samples[i].Actionable != b.Samples[i].Actionable {
			t.Fatalf("sample %d differs across equal seeds", i)
		}
	}
	// Ground truth must be consistent with its definition.
	actionable := 0
	for _, s := range a.Samples {
		if s.Actionable != (s.Applicable && s.Severity >= cvss.SeverityHigh) {
			t.Fatalf("label inconsistent: %+v", s)
		}
		if s.Actionable {
			actionable++
		}
	}
	if actionable == 0 || actionable == len(a.Samples) {
		t.Fatalf("degenerate corpus: %d/%d actionable", actionable, len(a.Samples))
	}
}

func TestGenerateRejectsInvalidInventory(t *testing.T) {
	bad := &infra.Inventory{Nodes: []infra.Node{{ID: ""}}}
	if _, err := Generate(1, 10, bad); err == nil {
		t.Fatal("invalid inventory accepted")
	}
}

func TestCVSSBaselineHasPerfectRecallButPoorPrecision(t *testing.T) {
	ds, err := Generate(11, 400, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(ds, CVSSOnlyStrategy())
	if err != nil {
		t.Fatal(err)
	}
	// Every actionable sample is ≥ high severity by construction, so the
	// static rule misses nothing …
	if m.DetectionRate != 1.0 || m.FNRate != 0 {
		t.Fatalf("baseline recall = %+v", m)
	}
	// … but it also raises every non-applicable high/critical advisory.
	if m.FP == 0 || m.FPRate < 0.2 {
		t.Fatalf("baseline FP rate suspiciously low: %+v", m)
	}
}

func TestContextAwareBeatsBaselinePrecision(t *testing.T) {
	metrics, err := Compare(11, 400, 2.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 3 {
		t.Fatalf("metrics = %d", len(metrics))
	}
	contextAware, noContext, baseline := metrics[0], metrics[1], metrics[2]

	if contextAware.Precision <= baseline.Precision {
		t.Fatalf("context-aware precision %.3f not above baseline %.3f",
			contextAware.Precision, baseline.Precision)
	}
	if contextAware.FPRate >= baseline.FPRate {
		t.Fatalf("context-aware FP rate %.3f not below baseline %.3f",
			contextAware.FPRate, baseline.FPRate)
	}
	// The ablation shows the context matters: without infrastructure the
	// score cannot separate applicable from non-applicable advisories as
	// well.
	if contextAware.Precision <= noContext.Precision {
		t.Fatalf("context-aware precision %.3f not above no-context %.3f",
			contextAware.Precision, noContext.Precision)
	}
	// Detection must stay useful.
	if contextAware.DetectionRate < 0.8 {
		t.Fatalf("context-aware detection %.3f too low", contextAware.DetectionRate)
	}
}

func TestThresholdSweepTradeoff(t *testing.T) {
	metrics, err := ThresholdSweep(11, 300, []float64{1.0, 2.0, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 3 {
		t.Fatalf("metrics = %d", len(metrics))
	}
	// Raising the threshold must not increase detection or FP rate.
	for i := 1; i < len(metrics); i++ {
		if metrics[i].DetectionRate > metrics[i-1].DetectionRate+1e-9 {
			t.Fatalf("detection not monotone: %+v", metrics)
		}
		if metrics[i].FPRate > metrics[i-1].FPRate+1e-9 {
			t.Fatalf("FP rate not monotone: %+v", metrics)
		}
	}
}

func TestMetricsFinalizeEdgeCases(t *testing.T) {
	m := Metrics{TP: 0, FP: 0, TN: 0, FN: 0}
	m.finalize()
	if m.DetectionRate != 0 || m.FPRate != 0 || m.Precision != 0 {
		t.Fatalf("zero confusion matrix produced rates: %+v", m)
	}
}

func TestRender(t *testing.T) {
	metrics, err := Compare(3, 100, 2.7)
	if err != nil {
		t.Fatal(err)
	}
	text := Render("X3 — detection comparison", metrics)
	for _, want := range []string{"context-aware", "no-context", "static CVSS", "detection", "precision"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}
