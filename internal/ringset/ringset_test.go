package ringset

import (
	"fmt"
	"testing"
)

func TestAddContains(t *testing.T) {
	s := New(3)
	if !s.Add("a") || !s.Add("b") {
		t.Fatal("fresh adds rejected")
	}
	if s.Add("a") {
		t.Fatal("duplicate add accepted")
	}
	if !s.Contains("a") || !s.Contains("b") || s.Contains("c") {
		t.Fatal("membership wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestFIFOEviction(t *testing.T) {
	s := New(3)
	for _, k := range []string{"a", "b", "c"} {
		s.Add(k)
	}
	s.Add("d") // evicts a, the oldest
	if s.Contains("a") {
		t.Fatal("oldest member survived eviction")
	}
	for _, k := range []string{"b", "c", "d"} {
		if !s.Contains(k) {
			t.Fatalf("%q evicted out of order", k)
		}
	}
	if s.Len() != 3 || s.Evicted() != 1 {
		t.Fatalf("len=%d evicted=%d", s.Len(), s.Evicted())
	}
	s.Add("e") // evicts b
	if s.Contains("b") || !s.Contains("c") {
		t.Fatal("second eviction out of order")
	}
}

func TestBoundedUnderSustainedTraffic(t *testing.T) {
	const capacity = 128
	s := New(capacity)
	for i := 0; i < 10_000; i++ {
		s.Add(fmt.Sprintf("uuid-%d", i))
		if s.Len() > capacity {
			t.Fatalf("set grew past capacity: %d", s.Len())
		}
	}
	if s.Len() != capacity {
		t.Fatalf("len = %d, want %d", s.Len(), capacity)
	}
	// The newest window survives.
	for i := 10_000 - capacity; i < 10_000; i++ {
		if !s.Contains(fmt.Sprintf("uuid-%d", i)) {
			t.Fatalf("recent member uuid-%d missing", i)
		}
	}
}

func TestDegenerateCapacity(t *testing.T) {
	s := New(0)
	s.Add("a")
	s.Add("b")
	if s.Contains("a") || !s.Contains("b") || s.Len() != 1 {
		t.Fatalf("capacity-1 semantics broken: %+v", s)
	}
}
