// Package ringset provides a capacity-bounded string set with FIFO
// eviction. The platform and the standalone worker use it to remember
// which event UUIDs they already analyzed: an unbounded map leaks memory
// under sustained feed traffic, while a bounded window keeps the
// idempotency guarantee for every recently seen event and degrades to an
// extra (harmless, idempotent) re-analysis only for events older than the
// window. Not safe for concurrent use; callers hold their own lock.
package ringset

// Set is a bounded set of strings with first-in-first-out eviction.
// Construct with New.
type Set struct {
	capacity int
	items    map[string]struct{}
	ring     []string
	next     int
	evicted  int
}

// New returns a Set that holds at most capacity members; capacity < 1 is
// normalized to 1.
func New(capacity int) *Set {
	if capacity < 1 {
		capacity = 1
	}
	return &Set{
		capacity: capacity,
		items:    make(map[string]struct{}, capacity),
		ring:     make([]string, 0, capacity),
	}
}

// Contains reports whether k is currently a member.
func (s *Set) Contains(k string) bool {
	_, ok := s.items[k]
	return ok
}

// Add inserts k, evicting the oldest member when the set is full. It
// reports whether k was newly added (false when already present).
func (s *Set) Add(k string) bool {
	if s.Contains(k) {
		return false
	}
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, k)
	} else {
		delete(s.items, s.ring[s.next])
		s.ring[s.next] = k
		s.evicted++
	}
	s.next = (s.next + 1) % s.capacity
	s.items[k] = struct{}{}
	return true
}

// Len returns the current number of members.
func (s *Set) Len() int { return len(s.items) }

// Evicted returns how many members were displaced by capacity pressure.
func (s *Set) Evicted() int { return s.evicted }
