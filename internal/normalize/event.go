// Package normalize converts raw OSINT feed records into canonical security
// events — the common representation the paper's OSINT Data Collector
// requires before deduplication and aggregation ("to process correctly the
// security events received, it is necessary that they should be in a common
// format"). Normalization infers the IoC type of a value, refangs defanged
// indicators, and canonicalizes the value so that equal indicators from
// different feeds compare equal.
package normalize

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/uuid"
)

// IoCType classifies an indicator value.
type IoCType string

// Indicator types recognised by the platform.
const (
	TypeUnknown  IoCType = "unknown"
	TypeIPv4     IoCType = "ipv4"
	TypeIPv6     IoCType = "ipv6"
	TypeCIDR     IoCType = "cidr"
	TypeDomain   IoCType = "domain"
	TypeURL      IoCType = "url"
	TypeEmail    IoCType = "email"
	TypeMD5      IoCType = "md5"
	TypeSHA1     IoCType = "sha1"
	TypeSHA256   IoCType = "sha256"
	TypeSHA512   IoCType = "sha512"
	TypeCVE      IoCType = "cve"
	TypeFilename IoCType = "filename"
)

// Threat categories used for aggregation (paper §III-A1: "aggregates the
// security events by threat category").
const (
	CategoryMalwareDomain = "malware-domain"
	CategoryBotnetC2      = "botnet-c2"
	CategoryPhishing      = "phishing"
	CategoryVulnExploit   = "vulnerability-exploitation"
	CategoryBruteForce    = "brute-force"
	CategoryScanner       = "scanner"
	CategorySpam          = "spam"
	CategoryMalwareHash   = "malware-hash"
	CategoryUnknown       = "unknown"
)

// Source types distinguishing where an event was produced.
const (
	SourceOSINT          = "osint"
	SourceInfrastructure = "infrastructure"
)

// Event is the canonical, normalized form of one observed security datum.
type Event struct {
	// ID is deterministic over (Type, Value, Category): the same indicator
	// reported twice — by the same or another feed — has the same ID.
	ID string `json:"id"`
	// Type is the inferred indicator type.
	Type IoCType `json:"type"`
	// Value is the canonical indicator value.
	Value string `json:"value"`
	// Category is the threat category used for aggregation.
	Category string `json:"category"`
	// Source is the name of the feed or collector that produced the event.
	Source string `json:"source"`
	// SourceType is "osint" or "infrastructure".
	SourceType string `json:"source_type"`
	// FirstSeen and LastSeen bound the observation window.
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	// Context carries source-specific extras (description, cvss, ports…).
	Context map[string]string `json:"context,omitempty"`
}

// New builds a normalized event from a raw value: the value is refanged,
// its type inferred (unless forced via typ != ""), canonicalized, and the
// deterministic ID assigned.
func New(rawValue, category, source, sourceType string, seen time.Time) (Event, error) {
	value := Refang(strings.TrimSpace(rawValue))
	if value == "" {
		return Event{}, fmt.Errorf("normalize: empty value")
	}
	typ := InferType(value)
	canonical := CanonicalValue(typ, value)
	if category == "" {
		category = CategoryUnknown
	}
	e := Event{
		Type:       typ,
		Value:      canonical,
		Category:   category,
		Source:     source,
		SourceType: sourceType,
		FirstSeen:  seen.UTC(),
		LastSeen:   seen.UTC(),
	}
	e.ID = EventID(typ, canonical, category)
	return e, nil
}

// EventID derives the deterministic identifier shared by duplicate events.
func EventID(typ IoCType, canonicalValue, category string) string {
	return uuid.NewV5(uuid.NamespaceCAISP,
		[]byte(string(typ)+"\x00"+canonicalValue+"\x00"+category)).String()
}

// Canonicalize re-normalizes an event in place (idempotent): refangs and
// canonicalizes the value, re-infers the type if unknown, and recomputes the
// ID. It returns an error for events that lose their value entirely.
func Canonicalize(e *Event) error {
	value := Refang(strings.TrimSpace(e.Value))
	if value == "" {
		return fmt.Errorf("normalize: event %s has empty value", e.ID)
	}
	typ := e.Type
	if typ == "" || typ == TypeUnknown {
		typ = InferType(value)
	}
	e.Type = typ
	e.Value = CanonicalValue(typ, value)
	if e.Category == "" {
		e.Category = CategoryUnknown
	}
	if e.SourceType == "" {
		e.SourceType = SourceOSINT
	}
	e.FirstSeen = e.FirstSeen.UTC()
	e.LastSeen = e.LastSeen.UTC()
	if e.LastSeen.Before(e.FirstSeen) {
		e.FirstSeen, e.LastSeen = e.LastSeen, e.FirstSeen
	}
	e.ID = EventID(e.Type, e.Value, e.Category)
	return nil
}

// Merge folds other into e: widens the observation window and unions the
// context, recording extra sources under the "sources" context key. Both
// events must share the same ID.
func Merge(e *Event, other Event) error {
	if e.ID != other.ID {
		return fmt.Errorf("normalize: cannot merge %s into %s", other.ID, e.ID)
	}
	if other.FirstSeen.Before(e.FirstSeen) {
		e.FirstSeen = other.FirstSeen
	}
	if other.LastSeen.After(e.LastSeen) {
		e.LastSeen = other.LastSeen
	}
	if other.Source != "" && other.Source != e.Source {
		set := make(map[string]bool)
		for _, s := range strings.Split(e.contextGet("sources"), ",") {
			if s != "" {
				set[s] = true
			}
		}
		set[e.Source] = true
		set[other.Source] = true
		names := make([]string, 0, len(set))
		for s := range set {
			names = append(names, s)
		}
		sort.Strings(names)
		e.contextSet("sources", strings.Join(names, ","))
	}
	for k, v := range other.Context {
		if _, exists := e.Context[k]; !exists {
			e.contextSet(k, v)
		}
	}
	return nil
}

// Sources lists every feed that reported the event (the primary source plus
// any merged in from duplicates).
func (e *Event) Sources() []string {
	merged := e.contextGet("sources")
	if merged == "" {
		if e.Source == "" {
			return nil
		}
		return []string{e.Source}
	}
	return strings.Split(merged, ",")
}

func (e *Event) contextGet(key string) string {
	return e.Context[key]
}

func (e *Event) contextSet(key, value string) {
	if e.Context == nil {
		e.Context = make(map[string]string)
	}
	e.Context[key] = value
}

// ObservationFields renders the event as STIX-pattern observation fields so
// indicator patterns can be evaluated against it.
func (e *Event) ObservationFields() map[string][]string {
	path := ""
	switch e.Type {
	case TypeIPv4, TypeCIDR:
		path = "ipv4-addr:value"
	case TypeIPv6:
		path = "ipv6-addr:value"
	case TypeDomain:
		path = "domain-name:value"
	case TypeURL:
		path = "url:value"
	case TypeEmail:
		path = "email-addr:value"
	case TypeMD5:
		path = "file:hashes.'MD5'"
	case TypeSHA1:
		path = "file:hashes.'SHA-1'"
	case TypeSHA256:
		path = "file:hashes.'SHA-256'"
	case TypeSHA512:
		path = "file:hashes.'SHA-512'"
	case TypeFilename:
		path = "file:name"
	case TypeCVE:
		path = "vulnerability:name"
	default:
		path = "artifact:payload"
	}
	return map[string][]string{path: {e.Value}}
}
