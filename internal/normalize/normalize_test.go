package normalize

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var seen = time.Date(2019, 6, 24, 10, 0, 0, 0, time.UTC)

func TestInferType(t *testing.T) {
	tests := []struct {
		give string
		want IoCType
	}{
		{give: "evil.example", want: TypeDomain},
		{give: "sub.domain.evil.example", want: TypeDomain},
		{give: "203.0.113.7", want: TypeIPv4},
		{give: "2001:db8::1", want: TypeIPv6},
		{give: "10.0.0.0/8", want: TypeCIDR},
		{give: "http://evil.example/path", want: TypeURL},
		{give: "https://evil.example:8443/x?q=1", want: TypeURL},
		{give: "user@evil.example", want: TypeEmail},
		{give: strings.Repeat("a", 32), want: TypeMD5},
		{give: strings.Repeat("b", 40), want: TypeSHA1},
		{give: strings.Repeat("c", 64), want: TypeSHA256},
		{give: strings.Repeat("d", 128), want: TypeSHA512},
		{give: "CVE-2017-9805", want: TypeCVE},
		{give: "cve-2017-9805", want: TypeCVE},
		{give: "dropper.exe", want: TypeFilename},
		{give: "invoice.pdf", want: TypeFilename},
		{give: "", want: TypeUnknown},
		{give: "just some words", want: TypeUnknown},
		{give: strings.Repeat("e", 33), want: TypeUnknown}, // odd hex length
		{give: "singleword", want: TypeUnknown},
	}
	for _, tt := range tests {
		if got := InferType(tt.give); got != tt.want {
			t.Errorf("InferType(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRefang(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "hxxp://evil[.]example/x", want: "http://evil.example/x"},
		{give: "hxxps://evil(.)example", want: "https://evil.example"},
		{give: "evil[dot]example", want: "evil.example"},
		{give: "user[@]evil[.]example", want: "user@evil.example"},
		{give: "user[at]evil.example", want: "user@evil.example"},
		{give: "<203.0.113.7>", want: "203.0.113.7"},
		{give: "plain.example", want: "plain.example"},
		{give: "hXXp://x[.]y", want: "http://x.y"},
	}
	for _, tt := range tests {
		if got := Refang(tt.give); got != tt.want {
			t.Errorf("Refang(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestRefangIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Refang(s)
		return Refang(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalValue(t *testing.T) {
	tests := []struct {
		typ  IoCType
		give string
		want string
	}{
		{typ: TypeDomain, give: "EVIL.Example.", want: "evil.example"},
		{typ: TypeSHA256, give: strings.ToUpper(strings.Repeat("ab", 32)), want: strings.Repeat("ab", 32)},
		{typ: TypeCVE, give: "cve-2017-9805", want: "CVE-2017-9805"},
		{typ: TypeEmail, give: "User@Evil.Example", want: "user@evil.example"},
		{typ: TypeIPv4, give: "203.000.113.007", want: "203.000.113.007"}, // unparsable octal-ish left as-is
		{typ: TypeIPv4, give: "203.0.113.7", want: "203.0.113.7"},
		{typ: TypeIPv6, give: "2001:DB8:0:0:0:0:0:1", want: "2001:db8::1"},
		{typ: TypeCIDR, give: "10.0.0.5/8", want: "10.0.0.0/8"},
		{typ: TypeURL, give: "HTTP://Evil.Example:80/Path?q=1#frag", want: "http://evil.example/Path?q=1"},
		{typ: TypeURL, give: "https://evil.example:443/", want: "https://evil.example/"},
		{typ: TypeURL, give: "https://evil.example:8443/", want: "https://evil.example:8443/"},
		{typ: TypeFilename, give: "dropper.exe", want: "dropper.exe"},
	}
	for _, tt := range tests {
		if got := CanonicalValue(tt.typ, tt.give); got != tt.want {
			t.Errorf("CanonicalValue(%v, %q) = %q, want %q", tt.typ, tt.give, got, tt.want)
		}
	}
}

func TestCanonicalValueIdempotentQuick(t *testing.T) {
	// Canonicalization must be a projection: applying it twice equals once.
	values := []string{
		"EVIL.Example.", "203.0.113.7", "2001:DB8::1", "10.1.2.3/16",
		"HTTP://Evil.Example:80/Path", "User@Evil.Example", "CVE-2017-9805",
		strings.Repeat("AB", 32), "dropper.exe", "random text",
	}
	for _, v := range values {
		typ := InferType(Refang(v))
		once := CanonicalValue(typ, v)
		twice := CanonicalValue(typ, once)
		if once != twice {
			t.Errorf("CanonicalValue not idempotent for %q: %q -> %q", v, once, twice)
		}
	}
}

func TestNewEventDeterministicID(t *testing.T) {
	a, err := New("EVIL[.]example", CategoryMalwareDomain, "feed-a", SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("evil.example", CategoryMalwareDomain, "feed-b", SourceOSINT, seen.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("same indicator, different ids: %s vs %s", a.ID, b.ID)
	}
	if a.Type != TypeDomain || a.Value != "evil.example" {
		t.Fatalf("normalization wrong: %+v", a)
	}
	c, err := New("evil.example", CategoryPhishing, "feed-a", SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("different categories must produce different ids")
	}
}

func TestNewEventEmptyValue(t *testing.T) {
	if _, err := New("   ", CategoryUnknown, "feed", SourceOSINT, seen); err == nil {
		t.Fatal("empty value accepted")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	e, err := New("hxxp://bad[.]example/mal.exe", CategoryMalwareDomain, "feed", SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	before := e
	if err := Canonicalize(&e); err != nil {
		t.Fatal(err)
	}
	if e.ID != before.ID || e.Value != before.Value || e.Type != before.Type {
		t.Fatalf("Canonicalize changed an already-canonical event:\n%+v\n%+v", before, e)
	}
}

func TestCanonicalizeRepairs(t *testing.T) {
	e := Event{
		Value:     "EVIL[.]Example",
		Category:  "",
		FirstSeen: seen.Add(time.Hour),
		LastSeen:  seen, // reversed window
	}
	if err := Canonicalize(&e); err != nil {
		t.Fatal(err)
	}
	if e.Type != TypeDomain || e.Value != "evil.example" {
		t.Fatalf("repair failed: %+v", e)
	}
	if e.Category != CategoryUnknown || e.SourceType != SourceOSINT {
		t.Fatalf("defaults not applied: %+v", e)
	}
	if e.LastSeen.Before(e.FirstSeen) {
		t.Fatalf("window not repaired: %+v", e)
	}
	if e.ID == "" {
		t.Fatal("id not assigned")
	}
}

func TestCanonicalizeEmpty(t *testing.T) {
	e := Event{Value: "  "}
	if err := Canonicalize(&e); err == nil {
		t.Fatal("empty event canonicalized")
	}
}

func TestMerge(t *testing.T) {
	a, err := New("evil.example", CategoryMalwareDomain, "feed-a", SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("evil.example", CategoryMalwareDomain, "feed-b", SourceOSINT, seen.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b.Context = map[string]string{"description": "c2 host"}
	if err := Merge(&a, b); err != nil {
		t.Fatal(err)
	}
	if !a.LastSeen.Equal(seen.Add(2 * time.Hour)) {
		t.Fatalf("window not widened: %+v", a)
	}
	srcs := a.Sources()
	if len(srcs) != 2 || srcs[0] != "feed-a" || srcs[1] != "feed-b" {
		t.Fatalf("Sources() = %v", srcs)
	}
	if a.Context["description"] != "c2 host" {
		t.Fatalf("context not merged: %+v", a.Context)
	}
	// Merging an unrelated event must fail.
	c, err := New("other.example", CategoryMalwareDomain, "feed-c", SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	if err := Merge(&a, c); err == nil {
		t.Fatal("merge of unrelated events succeeded")
	}
}

func TestMergeIsCommutativeOnWindow(t *testing.T) {
	early, err := New("evil.example", CategoryMalwareDomain, "a", SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	late, err := New("evil.example", CategoryMalwareDomain, "b", SourceOSINT, seen.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	x, y := early, late
	if err := Merge(&x, late); err != nil {
		t.Fatal(err)
	}
	if err := Merge(&y, early); err != nil {
		t.Fatal(err)
	}
	if !x.FirstSeen.Equal(y.FirstSeen) || !x.LastSeen.Equal(y.LastSeen) {
		t.Fatalf("merge windows differ: %+v vs %+v", x, y)
	}
}

func TestSourcesSingle(t *testing.T) {
	e, err := New("evil.example", CategoryMalwareDomain, "only-feed", SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Sources(); len(got) != 1 || got[0] != "only-feed" {
		t.Fatalf("Sources() = %v", got)
	}
	var empty Event
	if got := empty.Sources(); got != nil {
		t.Fatalf("Sources() on empty event = %v", got)
	}
}

func TestObservationFields(t *testing.T) {
	tests := []struct {
		value    string
		category string
		wantPath string
	}{
		{value: "evil.example", wantPath: "domain-name:value"},
		{value: "203.0.113.7", wantPath: "ipv4-addr:value"},
		{value: "2001:db8::1", wantPath: "ipv6-addr:value"},
		{value: "http://x.example/", wantPath: "url:value"},
		{value: strings.Repeat("ab", 32), wantPath: "file:hashes.'SHA-256'"},
		{value: "CVE-2017-9805", wantPath: "vulnerability:name"},
		{value: "dropper.exe", wantPath: "file:name"},
	}
	for _, tt := range tests {
		e, err := New(tt.value, CategoryUnknown, "f", SourceOSINT, seen)
		if err != nil {
			t.Fatal(err)
		}
		fields := e.ObservationFields()
		if _, ok := fields[tt.wantPath]; !ok {
			t.Errorf("ObservationFields(%q) missing path %q: %v", tt.value, tt.wantPath, fields)
		}
	}
}
