package normalize

import (
	"net"
	"net/url"
	"regexp"
	"strings"
)

var (
	cveRE    = regexp.MustCompile(`^CVE-\d{4}-\d{4,}$`)
	hexRE    = regexp.MustCompile(`^[0-9a-fA-F]+$`)
	domainRE = regexp.MustCompile(`^([a-zA-Z0-9]([a-zA-Z0-9-]{0,61}[a-zA-Z0-9])?\.)+[a-zA-Z]{2,}$`)
	emailRE  = regexp.MustCompile(`^[^@\s]+@[^@\s]+\.[a-zA-Z]{2,}$`)
)

// InferType classifies a (refanged) indicator value.
func InferType(value string) IoCType {
	v := strings.TrimSpace(value)
	switch {
	case v == "":
		return TypeUnknown
	case cveRE.MatchString(strings.ToUpper(v)):
		return TypeCVE
	case strings.Contains(v, "://"):
		if u, err := url.Parse(v); err == nil && u.Host != "" {
			return TypeURL
		}
		return TypeUnknown
	case strings.Contains(v, "/") && isCIDR(v):
		return TypeCIDR
	case net.ParseIP(v) != nil:
		if strings.Contains(v, ":") {
			return TypeIPv6
		}
		return TypeIPv4
	case emailRE.MatchString(v):
		return TypeEmail
	case hexRE.MatchString(v):
		switch len(v) {
		case 32:
			return TypeMD5
		case 40:
			return TypeSHA1
		case 64:
			return TypeSHA256
		case 128:
			return TypeSHA512
		}
		return TypeUnknown
	case looksLikeFilename(v):
		// Checked before domains: "dropper.exe" is lexically a valid
		// domain name but a well-known executable extension wins.
		return TypeFilename
	case domainRE.MatchString(v):
		return TypeDomain
	default:
		return TypeUnknown
	}
}

// Refang undoes the common "defanging" conventions OSINT feeds apply to
// neuter indicators: hxxp:// → http://, [.] and (.) → ., [@] → @,
// [:] → : (for URLs), and surrounding angle brackets.
func Refang(value string) string {
	v := strings.TrimSpace(value)
	v = strings.TrimPrefix(v, "<")
	v = strings.TrimSuffix(v, ">")
	replacements := []struct{ from, to string }{
		{from: "hxxps://", to: "https://"},
		{from: "hXXps://", to: "https://"},
		{from: "hxxp://", to: "http://"},
		{from: "hXXp://", to: "http://"},
		{from: "[.]", to: "."},
		{from: "(.)", to: "."},
		{from: "{.}", to: "."},
		{from: "[dot]", to: "."},
		{from: "(dot)", to: "."},
		{from: "[@]", to: "@"},
		{from: "(@)", to: "@"},
		{from: "[at]", to: "@"},
		{from: "[://]", to: "://"},
		{from: "[:]", to: ":"},
	}
	for _, r := range replacements {
		v = strings.ReplaceAll(v, r.from, r.to)
	}
	return v
}

// CanonicalValue normalizes a value within its type so equal indicators
// compare equal: domains and hashes are lowercased, URLs get lowercase
// scheme/host and stripped default ports, CVE ids are uppercased, IPs are
// re-rendered from their parsed form.
func CanonicalValue(typ IoCType, value string) string {
	v := strings.TrimSpace(value)
	switch typ {
	case TypeDomain:
		return strings.ToLower(strings.TrimSuffix(v, "."))
	case TypeMD5, TypeSHA1, TypeSHA256, TypeSHA512:
		return strings.ToLower(v)
	case TypeCVE:
		return strings.ToUpper(v)
	case TypeEmail:
		return strings.ToLower(v)
	case TypeIPv4, TypeIPv6:
		if ip := net.ParseIP(v); ip != nil {
			return ip.String()
		}
		return v
	case TypeCIDR:
		if _, ipnet, err := net.ParseCIDR(v); err == nil {
			return ipnet.String()
		}
		return v
	case TypeURL:
		u, err := url.Parse(v)
		if err != nil || u.Host == "" {
			return v
		}
		u.Scheme = strings.ToLower(u.Scheme)
		host := strings.ToLower(u.Host)
		switch {
		case u.Scheme == "http" && strings.HasSuffix(host, ":80"):
			host = strings.TrimSuffix(host, ":80")
		case u.Scheme == "https" && strings.HasSuffix(host, ":443"):
			host = strings.TrimSuffix(host, ":443")
		}
		u.Host = host
		u.Fragment = ""
		return u.String()
	default:
		return v
	}
}

func isCIDR(v string) bool {
	_, _, err := net.ParseCIDR(v)
	return err == nil
}

func looksLikeFilename(v string) bool {
	if strings.ContainsAny(v, " \t/\\") {
		return false
	}
	dot := strings.LastIndexByte(v, '.')
	if dot <= 0 || dot == len(v)-1 {
		return false
	}
	ext := v[dot+1:]
	switch strings.ToLower(ext) {
	case "exe", "dll", "pdf", "doc", "docx", "xls", "xlsx", "js", "vbs",
		"bat", "ps1", "sh", "jar", "zip", "rar", "7z", "scr", "apk", "bin":
		return true
	default:
		return false
	}
}
