package lifecycle

import (
	"fmt"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/storage"
)

var t0 = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

func openStore(t testing.TB) *storage.Store {
	t.Helper()
	s, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// eioc builds a scored indicator event: category tag, analyzer
// write-back, last sighting at `seen`.
func eioc(info, category string, base float64, seen time.Time) *misp.Event {
	e := misp.NewEvent(info, seen)
	e.AddTag("caisp:cioc")
	e.AddTag("caisp:eioc")
	e.AddTag("caisp:category=\"" + category + "\"")
	e.AddAttribute("domain", "Network activity", info+".example", seen)
	heuristic.SetBaseScore(e, base, seen)
	return e
}

func testPolicies() map[string]Policy {
	return map[string]Policy{
		"botnet-c2": {Tau: 100 * time.Hour, Delta: 1},
		"unknown":   {Tau: 200 * time.Hour, Delta: 1},
	}
}

func TestRescoreLandsDecayedScoreWithoutBumpingTimestamp(t *testing.T) {
	s := openStore(t)
	ev := eioc("c2", "botnet-c2", 4.0, t0)
	if err := s.Put(ev); err != nil {
		t.Fatal(err)
	}
	e := New(s, WithPolicies(testPolicies()), WithFloor(0.3))

	now := t0.Add(50 * time.Hour) // linear τ=100h: half decayed
	res, err := e.RunOnce(now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescored != 1 || res.Expired != 0 {
		t.Fatalf("result = %+v, want 1 rescore", res)
	}
	got, err := s.Get(ev.UUID)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := heuristic.DecayedScoreOf(got)
	if !ok || d != 2.0 {
		t.Fatalf("decayed score = %v (%v), want 2.0", d, ok)
	}
	if b, _ := heuristic.BaseScoreOf(got); b != 4.0 {
		t.Fatalf("base score mutated to %v", b)
	}
	if !got.Timestamp.Time.Equal(t0) {
		t.Fatalf("re-score bumped the event timestamp to %v", got.Timestamp.Time)
	}
	if hist := e.History(ev.UUID); len(hist) != 1 || hist[0].Score != 2.0 {
		t.Fatalf("history = %+v", hist)
	}

	// A second run at the same instant is a no-op: quantized score is
	// unchanged, so nothing is written.
	res, err = e.RunOnce(now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescored != 0 {
		t.Fatalf("idempotent re-run wrote %d edits", res.Rescored)
	}
}

func TestExpiryBelowFloorDeletesAndDropsHistory(t *testing.T) {
	s := openStore(t)
	fresh := eioc("fresh", "botnet-c2", 4.0, t0.Add(90*time.Hour))
	doomed := eioc("doomed", "botnet-c2", 4.0, t0)
	for _, ev := range []*misp.Event{fresh, doomed} {
		if err := s.Put(ev); err != nil {
			t.Fatal(err)
		}
	}
	e := New(s, WithPolicies(testPolicies()), WithFloor(0.3))
	if _, err := e.RunOnce(t0.Add(50 * time.Hour)); err != nil {
		t.Fatal(err) // tracks both while alive
	}
	res, err := e.RunOnce(t0.Add(99 * time.Hour)) // doomed ~0.04 < floor
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 1 {
		t.Fatalf("result = %+v, want 1 expiry", res)
	}
	if _, err := s.Get(doomed.UUID); err == nil {
		t.Fatal("expired event still stored")
	}
	if _, err := s.Get(fresh.UUID); err != nil {
		t.Fatal("fresh event expired")
	}
	if e.History(doomed.UUID) != nil {
		t.Fatal("expired event kept its history ring")
	}
	if st := e.Stats(); st.Expired != 1 || st.StoreLen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExpireHookRoutesDeletion(t *testing.T) {
	s := openStore(t)
	doomed := eioc("doomed", "botnet-c2", 4.0, t0)
	if err := s.Put(doomed); err != nil {
		t.Fatal(err)
	}
	var hooked []string
	e := New(s, WithPolicies(testPolicies()),
		WithExpireHook(func(uuid string) error {
			hooked = append(hooked, uuid)
			return s.Delete(uuid)
		}))
	if _, err := e.RunOnce(t0.Add(500 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != doomed.UUID {
		t.Fatalf("hook saw %v", hooked)
	}
}

func TestSightingRefreshResetsDecay(t *testing.T) {
	s := openStore(t)
	ev := eioc("c2", "botnet-c2", 4.0, t0)
	if err := s.Put(ev); err != nil {
		t.Fatal(err)
	}
	sighted := t0.Add(80 * time.Hour)
	e := New(s, WithPolicies(testPolicies()), WithFloor(0.3),
		WithSightings(func() map[string]time.Time {
			return map[string]time.Time{ev.UUID: sighted}
		}))
	// At t0+99h the unrefreshed score (~0.04) would expire; the sighting
	// at +80h makes the age 19h instead.
	res, err := e.RunOnce(t0.Add(99 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 0 || res.Rescored != 1 || res.Refreshed != 1 {
		t.Fatalf("result = %+v, want a refreshed rescore", res)
	}
	got, err := s.Get(ev.UUID)
	if err != nil {
		t.Fatal(err)
	}
	want := quantize(Score(4.0, 19*time.Hour, testPolicies()["botnet-c2"]))
	if d, _ := heuristic.DecayedScoreOf(got); d != want {
		t.Fatalf("decayed = %v, want %v (age from sighting)", d, want)
	}
}

func TestUnscoredAndMidPipelineEvents(t *testing.T) {
	s := openStore(t)
	// cioc without eioc: analyzer has not run; skipped until τ.
	cioc := misp.NewEvent("pending cluster", t0)
	cioc.AddTag("caisp:cioc")
	cioc.AddTag("caisp:category=\"botnet-c2\"")
	cioc.AddAttribute("domain", "Network activity", "pending.example", t0)
	// Plain unscored event (REST add): no decay attribute, ages out at τ.
	plain := misp.NewEvent("manual note", t0)
	plain.AddAttribute("comment", "Other", "analyst note", t0)
	for _, ev := range []*misp.Event{cioc, plain} {
		if err := s.Put(ev); err != nil {
			t.Fatal(err)
		}
	}
	e := New(s, WithPolicies(testPolicies()))

	// Young: both survive untouched.
	if _, err := e.RunOnce(t0.Add(50 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after young scan, want 2", s.Len())
	}
	got, _ := s.Get(plain.UUID)
	if _, ok := heuristic.DecayedScoreOf(got); ok {
		t.Fatal("unscored event got a decayed-score attribute")
	}

	// Past the cluster τ (100h) but inside the unknown τ (200h): the
	// stale cluster expires, the plain event lives on.
	if _, err := e.RunOnce(t0.Add(150 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(cioc.UUID); err == nil {
		t.Fatal("stale unscored cluster survived past its lifetime")
	}
	if _, err := s.Get(plain.UUID); err != nil {
		t.Fatal("plain event expired before the unknown-category lifetime")
	}
	if _, err := e.RunOnce(t0.Add(250 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d past every lifetime, want 0", s.Len())
	}
}

// TestDecayIsPureOverSchedule is the batch-boundary property: however
// the scheduler chops the store into batches — and however often the
// engine is restarted with a fresh cursor — once every indicator has
// been visited at instant T, its decayed score is exactly
// quantize(Score(base, T - lastSighting, policy)).
func TestDecayIsPureOverSchedule(t *testing.T) {
	events := make([]*misp.Event, 60)
	for i := range events {
		base := 1.0 + float64(i%9)*0.45
		seen := t0.Add(time.Duration(i%13) * time.Hour)
		events[i] = eioc(fmt.Sprintf("ind-%03d", i), "botnet-c2", base, seen)
	}
	build := func() *storage.Store {
		s := openStore(t)
		for _, ev := range events {
			if err := s.Put(ev.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	finalNow := t0.Add(40 * time.Hour)

	// Schedule A: one big batch, single engine.
	sa := build()
	ea := New(sa, WithPolicies(testPolicies()), WithFloor(0.01), WithBatchSize(1000))
	for i := 0; i < 3; i++ {
		if _, err := ea.RunOnce(finalNow); err != nil {
			t.Fatal(err)
		}
	}

	// Schedule B: batch of 7, clock creeping forward run by run, and an
	// engine restart (fresh cursor, empty history) midway. Finish with
	// full passes at finalNow so every indicator's latest visit is at T.
	sb := build()
	eb := New(sb, WithPolicies(testPolicies()), WithFloor(0.01), WithBatchSize(7))
	for i := 0; i < 10; i++ {
		if _, err := eb.RunOnce(t0.Add(time.Duration(20+i) * time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	eb = New(sb, WithPolicies(testPolicies()), WithFloor(0.01), WithBatchSize(7))
	for i := 0; i < 30; i++ {
		if _, err := eb.RunOnce(finalNow); err != nil {
			t.Fatal(err)
		}
	}

	pol := testPolicies()["botnet-c2"]
	for _, orig := range events {
		base, _ := heuristic.BaseScoreOf(orig)
		seen := orig.Timestamp.Time
		want := quantize(Score(base, finalNow.Sub(seen), pol))
		for name, s := range map[string]*storage.Store{"A": sa, "B": sb} {
			got, err := s.Get(orig.UUID)
			if err != nil {
				t.Fatalf("schedule %s lost %s", name, orig.Info)
			}
			d, ok := heuristic.DecayedScoreOf(got)
			if !ok || d != want {
				t.Fatalf("schedule %s: %s decayed=%v ok=%v, want %v",
					name, orig.Info, d, ok, want)
			}
		}
	}
}

func TestRescanAllMatchesIncremental(t *testing.T) {
	s := openStore(t)
	for i := 0; i < 25; i++ {
		ev := eioc(fmt.Sprintf("ind-%d", i), "botnet-c2", 3.5, t0.Add(time.Duration(i)*time.Hour))
		if err := s.Put(ev); err != nil {
			t.Fatal(err)
		}
	}
	e := New(s, WithPolicies(testPolicies()), WithFloor(0.01), WithRescanAll(true), WithBatchSize(4))
	res, err := e.RunOnce(t0.Add(30 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// One ablation run covers the whole store.
	if res.Scanned != 25 || !res.Wrapped {
		t.Fatalf("rescan-all result = %+v, want full coverage in one run", res)
	}
	pol := testPolicies()["botnet-c2"]
	for i := 0; i < 25; i++ {
		all, err := s.All()
		if err != nil {
			t.Fatal(err)
		}
		for _, got := range all {
			base, _ := heuristic.BaseScoreOf(got)
			want := quantize(Score(base, t0.Add(30*time.Hour).Sub(got.Timestamp.Time), pol))
			if d, _ := heuristic.DecayedScoreOf(got); d != want {
				t.Fatalf("%s decayed=%v want %v", got.Info, d, want)
			}
		}
	}
}

func TestHistoryRingBoundedAndOrdered(t *testing.T) {
	s := openStore(t)
	ev := eioc("c2", "botnet-c2", 5.0, t0)
	if err := s.Put(ev); err != nil {
		t.Fatal(err)
	}
	e := New(s, WithPolicies(map[string]Policy{
		"botnet-c2": {Tau: 10000 * time.Hour, Delta: 1},
		"unknown":   {Tau: 10000 * time.Hour, Delta: 1},
	}), WithFloor(0.01), WithHistoryDepth(4))
	for i := 1; i <= 12; i++ {
		if _, err := e.RunOnce(t0.Add(time.Duration(i*100) * time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	hist := e.History(ev.UUID)
	if len(hist) != 4 {
		t.Fatalf("ring holds %d samples, want depth 4", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if !hist[i].At.After(hist[i-1].At) {
			t.Fatalf("ring out of order: %+v", hist)
		}
		if hist[i].Score >= hist[i-1].Score {
			t.Fatalf("scores not decaying in ring: %+v", hist)
		}
	}
}
