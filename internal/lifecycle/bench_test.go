package lifecycle

import (
	"fmt"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// benchEngine preloads n scored indicators (sightings spread over the
// first half of τ so nothing expires) and warms the decayed scores, so
// the measured passes are pure scans for both schedulers.
func benchEngine(b *testing.B, n int, rescan bool) (*Engine, time.Time) {
	b.Helper()
	s := openStore(b)
	pols := map[string]Policy{
		"botnet-c2": {Tau: 1000 * time.Hour, Delta: 1},
		"unknown":   {Tau: 1000 * time.Hour, Delta: 1},
	}
	const chunk = 1024
	for off := 0; off < n; off += chunk {
		m := min(chunk, n-off)
		batch := make([]*misp.Event, m)
		for i := range batch {
			seen := t0.Add(time.Duration(int64(500*time.Hour) * int64(off+i) / int64(n)))
			batch[i] = eioc(fmt.Sprintf("b-%06d", off+i), "botnet-c2", 4.0, seen)
		}
		if err := s.PutBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	now := t0.Add(500 * time.Hour)
	warm := New(s, WithPolicies(pols), WithRescanAll(true))
	if _, err := warm.RunOnce(now); err != nil {
		b.Fatal(err)
	}
	e := New(s, WithPolicies(pols), WithBatchSize(512), WithRescanAll(rescan))
	return e, now
}

// BenchmarkIncrementalPass measures one bounded re-score run: the
// O(batch) steady-state cost of the production scheduler.
func BenchmarkIncrementalPass(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("events-%d", n), func(b *testing.B) {
			e, now := benchEngine(b, n, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunOnce(now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRescanAllPass measures the ablation: every run re-walks the
// whole store, so per-run cost is O(store) instead of O(batch).
func BenchmarkRescanAllPass(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("events-%d", n), func(b *testing.B) {
			e, now := benchEngine(b, n, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunOnce(now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
