package lifecycle

import (
	"testing"
	"time"
)

func TestScoreCurve(t *testing.T) {
	p := Policy{Tau: 100 * time.Hour, Delta: 1}
	if got := Score(4, 0, p); got != 4 {
		t.Fatalf("age 0: %g, want base", got)
	}
	if got := Score(4, -time.Hour, p); got != 4 {
		t.Fatalf("future sighting: %g, want base", got)
	}
	if got := Score(4, 100*time.Hour, p); got != 0 {
		t.Fatalf("age τ: %g, want 0", got)
	}
	if got := Score(4, 200*time.Hour, p); got != 0 {
		t.Fatalf("past τ: %g, want 0", got)
	}
	if got := Score(4, 50*time.Hour, p); got < 1.99 || got > 2.01 {
		t.Fatalf("linear midpoint: %g, want 2", got)
	}
	// δ < 1 holds the score up (late plunge), δ > 1 front-loads the drop.
	slow := Score(4, 50*time.Hour, Policy{Tau: 100 * time.Hour, Delta: 0.3})
	steep := Score(4, 50*time.Hour, Policy{Tau: 100 * time.Hour, Delta: 3})
	if slow <= 2 || steep >= 2 {
		t.Fatalf("midpoints slow=%g steep=%g, want slow>2>steep", slow, steep)
	}
	// Monotone non-increasing in age.
	prev := 5.0
	for h := 0; h <= 100; h += 5 {
		s := Score(4, time.Duration(h)*time.Hour, p)
		if s > prev {
			t.Fatalf("score rose with age at %dh: %g > %g", h, s, prev)
		}
		prev = s
	}
	if got := Score(0, time.Hour, p); got != 0 {
		t.Fatalf("zero base: %g", got)
	}
	if got := Score(4, time.Hour, Policy{Tau: 0}); got != 0 {
		t.Fatalf("zero τ: %g, want immediate 0", got)
	}
}

func TestDefaultPoliciesCoverKnownCategories(t *testing.T) {
	pols := DefaultPolicies()
	for cat, p := range pols {
		if p.Tau <= 0 || p.Delta <= 0 {
			t.Fatalf("category %s has degenerate policy %+v", cat, p)
		}
	}
	if _, ok := pols["unknown"]; !ok {
		t.Fatal("no fallback policy for unknown")
	}
}
