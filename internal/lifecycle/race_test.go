package lifecycle

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
)

// TestConcurrentRescoreIngestReads drives re-scoring, ingest, point
// reads, the time-index walk and the history API concurrently — the
// interleaving `go test -race` exists for. Correctness bar: no data
// race, no error, and a final full pass leaves every surviving score a
// pure function of its base and age.
func TestConcurrentRescoreIngestReads(t *testing.T) {
	s := openStore(t)
	pols := map[string]Policy{
		"botnet-c2": {Tau: 1000 * time.Hour, Delta: 1},
		"unknown":   {Tau: 1000 * time.Hour, Delta: 1},
	}
	e := New(s, WithPolicies(pols), WithFloor(0.01), WithBatchSize(16))
	for i := 0; i < 64; i++ {
		if err := s.Put(eioc(fmt.Sprintf("seed-%03d", i), "botnet-c2", 3.0,
			t0.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 200
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	wg.Add(4)
	go func() { // re-score scheduler
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := e.RunOnce(t0.Add(time.Duration(i) * time.Hour)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() { // concurrent ingest
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ev := eioc(fmt.Sprintf("live-%03d", i), "botnet-c2", 4.0,
				t0.Add(time.Duration(i)*time.Hour))
			if err := s.Put(ev); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() { // point reads + stats
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_, _, _ = s.UpdatedSincePage(t0, "", 32)
			_ = e.Stats()
		}
	}()
	go func() { // history API
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for _, uuid := range e.Tracked() {
				e.History(uuid)
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Settle: full passes at one instant, then check purity.
	finalNow := t0.Add(2000 * time.Hour)
	fin := New(s, WithPolicies(pols), WithFloor(0.01), WithBatchSize(10000))
	for i := 0; i < 3; i++ {
		if _, err := fin.RunOnce(finalNow); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range all {
		base, ok := heuristic.BaseScoreOf(ev)
		if !ok {
			t.Fatalf("%s lost its base score", ev.Info)
		}
		var seen time.Time
		for i := range ev.Attributes {
			a := &ev.Attributes[i]
			if a.Type == "domain" && a.Timestamp.After(seen) {
				seen = a.Timestamp.Time
			}
		}
		want := quantize(Score(base, finalNow.Sub(seen), pols["botnet-c2"]))
		if d, _ := heuristic.DecayedScoreOf(ev); d != want {
			t.Fatalf("%s decayed=%v want %v", ev.Info, d, want)
		}
	}
}
