// Package lifecycle bounds the operational store: a decay model drops
// the effective score of every stored indicator as its last sighting
// ages, a background scheduler re-scores the store in bounded
// incremental batches, and indicators that decay below the expiry
// floor are deleted — tombstones ride the replication feed so the
// whole mesh converges on the removal.
//
// The decay curve is the polynomial model of the MISP / CIRCL
// decaying-indicators work (Iklody et al., "Decaying Indicators of
// Compromise"): with τ the category lifetime and δ the decay speed,
//
//	score(t) = base · (1 − (t/τ)^(1/δ)),  0 ≤ t ≤ τ
//
// so a freshly sighted indicator keeps its analyzer score and an
// unsighted one slides to zero at τ — slowly at first for δ < 1
// (the exponent 1/δ grows, holding the curve up until a late plunge),
// front-loaded for δ > 1. Every sighting resets t to zero, which is
// how the paper's static TS = Cp × Σ Xi·Pi score (heuristic package)
// gains the time dimension the paper leaves open.
package lifecycle

import (
	"math"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
)

// Policy is one category's decay behaviour.
type Policy struct {
	// Tau is the indicator lifetime: the age at which an unsighted
	// indicator's score reaches zero.
	Tau time.Duration
	// Delta shapes the curve: 1 is linear, <1 holds the score up before
	// a late drop, >1 drops steeply early then tails off (MISP's
	// decay_speed, default 0.3 there).
	Delta float64
}

// Score evaluates the decay curve: the effective score of an indicator
// with the given base score whose last sighting is age old. Clamped to
// [0, base]; a negative age (sighting in the future, clock skew) keeps
// the base score.
func Score(base float64, age time.Duration, p Policy) float64 {
	if base <= 0 {
		return 0
	}
	if age <= 0 {
		return base
	}
	if p.Tau <= 0 || age >= p.Tau {
		return 0
	}
	delta := p.Delta
	if delta <= 0 {
		delta = 1
	}
	s := base * (1 - math.Pow(age.Seconds()/p.Tau.Seconds(), 1/delta))
	if s < 0 {
		return 0
	}
	return s
}

// DefaultPolicies maps the normalize threat categories onto decay
// behaviours mirroring common MISP decaying-model taxonomies: network
// infrastructure indicators (C2s, scanners, brute-forcers) age out in
// days to weeks because attackers rotate them; file hashes barely
// decay because a hash match stays a true positive; vulnerability
// indicators live long because patch lag keeps them exploitable.
func DefaultPolicies() map[string]Policy {
	const day = 24 * time.Hour
	return map[string]Policy{
		normalize.CategoryMalwareDomain: {Tau: 60 * day, Delta: 0.5},
		normalize.CategoryBotnetC2:      {Tau: 30 * day, Delta: 1},
		normalize.CategoryPhishing:      {Tau: 14 * day, Delta: 1},
		normalize.CategoryVulnExploit:   {Tau: 365 * day, Delta: 0.3},
		normalize.CategoryBruteForce:    {Tau: 7 * day, Delta: 1},
		normalize.CategoryScanner:       {Tau: 7 * day, Delta: 1},
		normalize.CategorySpam:          {Tau: 14 * day, Delta: 1.5},
		normalize.CategoryMalwareHash:   {Tau: 3 * 365 * day, Delta: 0.25},
		normalize.CategoryUnknown:       {Tau: 90 * day, Delta: 1},
	}
}
