package lifecycle

import (
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/correlate"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
)

// Store is the slice of the storage API the lifecycle engine drives:
// the (timestamp, uuid) time index for the oldest-first scan, clone
// reads for in-place edits, group-committed batch writes, and
// deletion. *storage.Store satisfies it.
type Store interface {
	UpdatedSincePage(t time.Time, afterUUID string, limit int) ([]*misp.Event, bool, error)
	GetClone(uuid string) (*misp.Event, error)
	PutBatch(events []*misp.Event) error
	Delete(uuid string) error
	Len() int
}

// Defaults; every one has a With… override. DefaultFloor is exported so
// load harnesses can derive the expiry age analytically.
const (
	defaultBatch        = 512
	defaultInterval     = time.Minute
	DefaultFloor        = 0.3
	defaultHistoryDepth = 32
)

// Sample is one point of an indicator's score history.
type Sample struct {
	At    time.Time `json:"at"`
	Score float64   `json:"score"`
}

// history is the bounded per-indicator score ring.
type history struct {
	pass    uint64 // last full-scan pass that saw the indicator live
	samples []Sample
	next    int
	full    bool
}

func (h *history) add(s Sample, depth int) {
	if len(h.samples) < depth && !h.full {
		h.samples = append(h.samples, s)
		h.next = len(h.samples) % depth
		h.full = len(h.samples) == depth && h.next == 0
		return
	}
	h.samples[h.next] = s
	h.next = (h.next + 1) % len(h.samples)
	h.full = true
}

// lastIndex is the slot of the most recently written sample; callers
// guarantee the ring is non-empty.
func (h *history) lastIndex() int {
	if h.full {
		return (h.next - 1 + len(h.samples)) % len(h.samples)
	}
	return len(h.samples) - 1
}

// ordered returns the ring oldest-first.
func (h *history) ordered() []Sample {
	if !h.full {
		return append([]Sample(nil), h.samples...)
	}
	out := make([]Sample, 0, len(h.samples))
	out = append(out, h.samples[h.next:]...)
	return append(out, h.samples[:h.next]...)
}

// Engine is the background re-score scheduler. One RunOnce processes a
// bounded batch of the store's time index, oldest last-update first,
// re-computing every visited indicator's decayed score and expiring
// the ones that fell through the floor; Start runs RunOnce on an
// interval. The incremental cursor makes a full pass cost O(store)
// spread over store/batch runs — the WithRescanAll ablation re-walks
// everything each run instead, which is the O(store) per-run behaviour
// the scheduler exists to avoid.
type Engine struct {
	store    Store
	policies map[string]Policy
	floor    float64
	batch    int
	interval time.Duration
	rescan   bool
	depth    int
	now      func() time.Time
	sight    func() map[string]time.Time
	expire   func(uuid string) error
	logger   *slog.Logger

	mu     sync.Mutex // serializes RunOnce: scan cursor + pass counter
	curT   time.Time
	curID  string
	pass   uint64
	closed bool

	histMu sync.RWMutex
	hist   map[string]*history

	scanned   atomic.Int64
	rescored  atomic.Int64
	expired   atomic.Int64
	refreshes atomic.Int64
	passes    atomic.Int64

	mRescored  *obs.Counter
	mExpired   *obs.Counter
	mRefreshes *obs.Counter
	mScan      *obs.Histogram

	stop chan struct{}
	wg   sync.WaitGroup
}

// Option configures the engine.
type Option func(*Engine)

// WithPolicies replaces the per-category decay table.
func WithPolicies(p map[string]Policy) Option { return func(e *Engine) { e.policies = p } }

// WithFloor sets the expiry floor: an indicator whose decayed score
// reaches it (or whose unscored age exceeds its category lifetime) is
// deleted.
func WithFloor(f float64) Option { return func(e *Engine) { e.floor = f } }

// WithBatchSize bounds how many time-index entries one RunOnce visits.
func WithBatchSize(n int) Option { return func(e *Engine) { e.batch = n } }

// WithInterval sets the Start loop period.
func WithInterval(d time.Duration) Option { return func(e *Engine) { e.interval = d } }

// WithRescanAll switches to the ablation scheduler that re-walks the
// whole store on every run instead of resuming the incremental cursor.
func WithRescanAll(on bool) Option { return func(e *Engine) { e.rescan = on } }

// WithNow injects the clock (virtual time in tests and load harnesses).
func WithNow(now func() time.Time) Option { return func(e *Engine) { e.now = now } }

// WithSightings wires the sighting-refresh clock: a function returning
// the latest member sighting per cluster UUID (one call per RunOnce —
// correlate.Incremental.LastSightings). A sighting newer than the
// event's own attribute timestamps resets the decay age.
func WithSightings(fn func() map[string]time.Time) Option {
	return func(e *Engine) { e.sight = fn }
}

// WithExpireHook replaces the default store deletion with a caller
// route (the platform deletes through the TIP service so the deletion
// is published, dropped from dashboards and tombstoned for the mesh).
func WithExpireHook(fn func(uuid string) error) Option {
	return func(e *Engine) { e.expire = fn }
}

// WithHistoryDepth bounds the per-indicator score-history ring.
func WithHistoryDepth(n int) Option { return func(e *Engine) { e.depth = n } }

// WithLogger routes scan warnings.
func WithLogger(l *slog.Logger) Option { return func(e *Engine) { e.logger = l } }

// WithMetrics registers the caisp_lifecycle_* metric family.
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) {
		e.mRescored = reg.Counter("caisp_lifecycle_rescored_total",
			"Indicators whose decayed score was re-computed and landed.")
		e.mExpired = reg.Counter("caisp_lifecycle_expired_total",
			"Indicators expired (deleted) after decaying through the floor.")
		e.mRefreshes = reg.Counter("caisp_lifecycle_sighting_refreshes_total",
			"Decay ages reset by a correlator sighting newer than the stored event.")
		e.mScan = reg.Histogram("caisp_lifecycle_scan_seconds",
			"RunOnce latency: one bounded re-score batch (or a full rescan in ablation mode).")
		reg.GaugeFunc("caisp_lifecycle_tracked",
			"Indicators with a live score-history ring.",
			func() float64 {
				e.histMu.RLock()
				defer e.histMu.RUnlock()
				return float64(len(e.hist))
			})
	}
}

// New builds an engine over the store. Call Start for the background
// loop or RunOnce directly (load harnesses, tests).
func New(store Store, opts ...Option) *Engine {
	e := &Engine{
		store:    store,
		policies: DefaultPolicies(),
		floor:    DefaultFloor,
		batch:    defaultBatch,
		interval: defaultInterval,
		depth:    defaultHistoryDepth,
		now:      time.Now,
		logger:   slog.Default(),
		hist:     make(map[string]*history),
		stop:     make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	if e.batch < 1 {
		e.batch = defaultBatch
	}
	if e.depth < 1 {
		e.depth = defaultHistoryDepth
	}
	return e
}

// Start launches the background re-score loop.
func (e *Engine) Start() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := time.NewTicker(e.interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				if _, err := e.RunOnce(e.now()); err != nil {
					e.logger.Warn("lifecycle: re-score batch failed", "error", err)
				}
			}
		}
	}()
}

// Close stops the background loop. Idempotent via sync once-like guard
// under mu.
func (e *Engine) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.stop)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// Result summarizes one RunOnce.
type Result struct {
	// Scanned is how many time-index entries the run visited.
	Scanned int `json:"scanned"`
	// Rescored counts landed decayed-score edits, Expired deletions, and
	// Refreshed decay ages reset by a newer correlator sighting.
	Rescored  int `json:"rescored"`
	Expired   int `json:"expired"`
	Refreshed int `json:"refreshed"`
	// Wrapped reports that the incremental cursor completed a full pass
	// over the store and reset.
	Wrapped bool `json:"wrapped"`
}

// RunOnce executes one scheduler step at the given instant: a bounded
// batch in incremental mode, the whole store under WithRescanAll.
// Decayed scores are a pure function of (base score, last sighting,
// now) — the cursor position and batch boundaries only decide *when* a
// score is refreshed, never its value.
func (e *Engine) RunOnce(now time.Time) (Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer func(start time.Time) {
		if e.mScan != nil {
			e.mScan.Observe(time.Since(start).Seconds())
		}
	}(time.Now())

	var sight map[string]time.Time
	if e.sight != nil {
		sight = e.sight()
	}
	if e.rescan {
		return e.runFull(now, sight)
	}

	var res Result
	page, more, err := e.store.UpdatedSincePage(e.curT, e.curID, e.batch)
	if err != nil {
		return res, err
	}
	if err := e.processPage(page, now, sight, &res); err != nil {
		return res, err
	}
	if len(page) > 0 {
		last := page[len(page)-1]
		e.curT, e.curID = last.Timestamp.Time, last.UUID
	}
	if !more {
		e.wrap(&res)
	}
	return res, nil
}

// runFull is the WithRescanAll ablation: every run pages the entire
// time index from the start.
func (e *Engine) runFull(now time.Time, sight map[string]time.Time) (Result, error) {
	var res Result
	var curT time.Time
	var curID string
	for {
		page, more, err := e.store.UpdatedSincePage(curT, curID, e.batch)
		if err != nil {
			return res, err
		}
		if err := e.processPage(page, now, sight, &res); err != nil {
			return res, err
		}
		if len(page) > 0 {
			last := page[len(page)-1]
			curT, curID = last.Timestamp.Time, last.UUID
		}
		if !more {
			e.wrap(&res)
			return res, nil
		}
	}
}

// wrap finishes a full pass: reset the cursor and prune history rings
// of indicators not seen live for two consecutive passes (deleted
// behind our back — mesh tombstones, merges).
func (e *Engine) wrap(res *Result) {
	e.curT, e.curID = time.Time{}, ""
	e.pass++
	e.passes.Add(1)
	res.Wrapped = true
	e.histMu.Lock()
	for uuid, h := range e.hist {
		if h.pass+2 <= e.pass {
			delete(e.hist, uuid)
		}
	}
	e.histMu.Unlock()
}

// processPage re-scores one page of store views. Edits are cloned and
// landed through a single group-committed PutBatch; expirations go
// through the expire hook one by one (each is a WAL-logged tombstone).
func (e *Engine) processPage(page []*misp.Event, now time.Time, sight map[string]time.Time, res *Result) error {
	var puts []*misp.Event
	for _, ev := range page {
		res.Scanned++
		e.scanned.Add(1)
		decayed, action := e.evaluate(ev, now, sight, res)
		switch action {
		case actionSkip:
		case actionExpire:
			e.expireOne(ev.UUID)
			res.Expired++
			e.expired.Add(1)
			if e.mExpired != nil {
				e.mExpired.Inc()
			}
		case actionRescore:
			clone, err := e.store.GetClone(ev.UUID)
			if err != nil {
				continue // raced with a concurrent delete; next pass settles it
			}
			if heuristic.SetDecayedScore(clone, decayed, now) {
				puts = append(puts, clone)
			}
			e.record(ev.UUID, Sample{At: now, Score: decayed})
		}
	}
	if len(puts) > 0 {
		if err := e.store.PutBatch(puts); err != nil {
			return err
		}
		res.Rescored += len(puts)
		e.rescored.Add(int64(len(puts)))
		if e.mRescored != nil {
			e.mRescored.Add(int64(len(puts)))
		}
	}
	return nil
}

type action int

const (
	actionSkip action = iota
	actionRescore
	actionExpire
)

// evaluate decides one indicator's fate at instant now. Pure over the
// event content, the sighting clock and now — nothing scheduler-shaped
// leaks in, which is what the batch-boundary property test pins down.
func (e *Engine) evaluate(ev *misp.Event, now time.Time, sight map[string]time.Time, res *Result) (float64, action) {
	if ev.HasTag("caisp:cioc") && !ev.HasTag("caisp:eioc") {
		// A cluster the analyzer has not scored yet (or could not score).
		// Mid-pipeline events must not be raced; they still age out on the
		// category lifetime so unscorable clusters cannot pin the store.
		if age := now.Sub(e.lastActivity(ev, sight, res)); age >= e.policy(ev).Tau {
			return 0, actionExpire
		}
		return 0, actionSkip
	}
	base, scored := heuristic.BaseScoreOf(ev)
	pol := e.policy(ev)
	age := now.Sub(e.lastActivity(ev, sight, res))
	if !scored {
		// No analyzer score to decay: plain events (REST adds, mesh
		// imports of foreign events) live one category lifetime.
		if age >= pol.Tau {
			return 0, actionExpire
		}
		return 0, actionSkip
	}
	decayed := quantize(Score(base, age, pol))
	if decayed <= e.floor {
		return 0, actionExpire
	}
	if cur, ok := heuristic.DecayedScoreOf(ev); ok && quantize(cur) == decayed {
		// Unchanged at quantization granularity: no write, no churn. The
		// ring still notes the visit so history survives quiet periods.
		e.record(ev.UUID, Sample{At: now, Score: decayed})
		return decayed, actionSkip
	}
	return decayed, actionRescore
}

// quantize rounds to 2 decimals — the write granularity. Coarser than
// the 4 decimals stored, it turns near-identical re-computations into
// no-ops instead of WAL churn.
func quantize(v float64) float64 { return math.Round(v*100) / 100 }

// policy resolves the event's category decay policy.
func (e *Engine) policy(ev *misp.Event) Policy {
	if cat := correlate.CategoryOf(ev); cat != "" {
		if p, ok := e.policies[cat]; ok {
			return p
		}
	}
	if p, ok := e.policies["unknown"]; ok {
		return p
	}
	return Policy{Tau: 90 * 24 * time.Hour, Delta: 2}
}

// lastActivity is the indicator's most recent sighting: the newest
// attribute timestamp (member sightings, analyzer write-backs) — the
// engine's own decayed-score attribute excluded, or decay would feed
// itself — possibly advanced by the correlator's sighting clock.
func (e *Engine) lastActivity(ev *misp.Event, sight map[string]time.Time, res *Result) time.Time {
	var last time.Time
	for i := range ev.Attributes {
		a := &ev.Attributes[i]
		if a.Type == "comment" && strings.HasPrefix(a.Value, heuristic.DecayedScorePrefix) {
			continue
		}
		if a.Timestamp.After(last) {
			last = a.Timestamp.Time
		}
	}
	if last.IsZero() {
		last = ev.Timestamp.Time
	}
	if s, ok := sight[ev.UUID]; ok && s.After(last) {
		last = s
		res.Refreshed++
		e.refreshes.Add(1)
		if e.mRefreshes != nil {
			e.mRefreshes.Inc()
		}
	}
	return last
}

func (e *Engine) expireOne(uuid string) {
	var err error
	if e.expire != nil {
		err = e.expire(uuid)
	} else {
		err = e.store.Delete(uuid)
	}
	if err != nil {
		e.logger.Warn("lifecycle: expiry failed", "uuid", uuid, "error", err)
		return
	}
	e.histMu.Lock()
	delete(e.hist, uuid)
	e.histMu.Unlock()
}

// record notes a score observation. Consecutive identical scores
// collapse into one sample whose At slides forward, so a ring of depth
// k holds the last k score *changes*, not the last k scans.
func (e *Engine) record(uuid string, s Sample) {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	h := e.hist[uuid]
	if h == nil {
		h = &history{}
		e.hist[uuid] = h
	}
	h.pass = e.pass
	if len(h.samples) > 0 {
		if last := &h.samples[h.lastIndex()]; last.Score == s.Score {
			last.At = s.At
			return
		}
	}
	h.add(s, e.depth)
}

// History returns the indicator's score samples oldest-first, or nil
// when untracked.
func (e *Engine) History(uuid string) []Sample {
	e.histMu.RLock()
	defer e.histMu.RUnlock()
	h := e.hist[uuid]
	if h == nil {
		return nil
	}
	return h.ordered()
}

// Tracked lists the UUIDs with a live history ring, sorted.
func (e *Engine) Tracked() []string {
	e.histMu.RLock()
	out := make([]string, 0, len(e.hist))
	for uuid := range e.hist {
		out = append(out, uuid)
	}
	e.histMu.RUnlock()
	sort.Strings(out)
	return out
}

// Stats is the cumulative counter snapshot.
type Stats struct {
	Scanned   int64 `json:"scanned"`
	Rescored  int64 `json:"rescored"`
	Expired   int64 `json:"expired"`
	Refreshes int64 `json:"sighting_refreshes"`
	Passes    int64 `json:"passes"`
	Tracked   int   `json:"tracked"`
	StoreLen  int   `json:"store_events"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.histMu.RLock()
	tracked := len(e.hist)
	e.histMu.RUnlock()
	return Stats{
		Scanned:   e.scanned.Load(),
		Rescored:  e.rescored.Load(),
		Expired:   e.expired.Load(),
		Refreshes: e.refreshes.Load(),
		Passes:    e.passes.Load(),
		Tracked:   tracked,
		StoreLen:  e.store.Len(),
	}
}
