package lifecycle

import (
	"encoding/json"
	"net/http"
)

// API is the read-only HTTP surface of the lifecycle engine: cumulative
// stats and the per-indicator score-history ring the dashboard charts.
type API struct {
	engine *Engine
	mux    *http.ServeMux
}

// NewAPI wraps an engine.
func NewAPI(e *Engine) *API {
	a := &API{engine: e, mux: http.NewServeMux()}
	a.mux.HandleFunc("GET /lifecycle/stats", a.handleStats)
	a.mux.HandleFunc("GET /lifecycle/history", a.handleTracked)
	a.mux.HandleFunc("GET /lifecycle/history/{uuid}", a.handleHistory)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, a.engine.Stats())
}

func (a *API) handleTracked(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Tracked []string `json:"tracked"`
	}{a.engine.Tracked()})
}

func (a *API) handleHistory(w http.ResponseWriter, r *http.Request) {
	uuid := r.PathValue("uuid")
	samples := a.engine.History(uuid)
	if samples == nil {
		http.Error(w, `{"error":"no score history for uuid"}`, http.StatusNotFound)
		return
	}
	writeJSON(w, struct {
		UUID    string   `json:"uuid"`
		Samples []Sample `json:"samples"`
	}{uuid, samples})
}
