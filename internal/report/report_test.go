package report

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/normalize"
)

var now = time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)

func runPlatform(t *testing.T) *core.Platform {
	t.Helper()
	const advisory = `[
	  {"cve":"CVE-2017-9805","description":"Apache Struts RCE",
	   "cvss3":"CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
	   "products":["apache struts","apache"],"os":"debian","published":"2017-09-13",
	   "references":["https://capec.mitre.example/248","https://cve.mitre.example/CVE-2017-9805"]},
	  {"cve":"CVE-2016-5195","description":"Dirty COW",
	   "cvss3":"CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
	   "products":["linux"],"os":"linux","published":"2016-10-20"}
	]`
	p, err := core.New(core.Config{
		Clock: clock.NewFake(now),
		Feeds: []feed.Feed{{
			Name:     "advisories",
			Category: normalize.CategoryVulnExploit,
			Fetcher:  &feed.StaticFetcher{Data: []byte(advisory)},
			Parser:   feed.AdvisoryParser{},
			Interval: time.Hour,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if _, err := p.ReportAlarm(infra.Alarm{
		NodeID: "node4", Severity: infra.SeverityHigh, Description: "struts probe", Application: "apache",
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.RunBatch(context.Background()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAggregates(t *testing.T) {
	p := runPlatform(t)
	r := Build(p, 5, now)
	if r.Pipeline.EIoCs != 2 || r.Pipeline.RIoCs != 2 {
		t.Fatalf("pipeline = %+v", r.Pipeline)
	}
	if len(r.TopRIoCs) != 2 {
		t.Fatalf("top riocs = %d", len(r.TopRIoCs))
	}
	// Sorted by descending score.
	if r.TopRIoCs[0].ThreatScore < r.TopRIoCs[1].ThreatScore {
		t.Fatalf("riocs not sorted: %v", r.TopRIoCs)
	}
	if len(r.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(r.Nodes))
	}
	var node4 nodeRow
	for _, n := range r.Nodes {
		if n.ID == "node4" {
			node4 = n
		}
	}
	if node4.Alarms != 1 || node4.Red != 1 || node4.RIoCs < 1 {
		t.Fatalf("node4 row = %+v", node4)
	}
	if r.Feeds["advisories"].Records != 2 {
		t.Fatalf("feed row = %+v", r.Feeds["advisories"])
	}
	total := 0
	for _, n := range r.Priority {
		total += n
	}
	if total != 2 {
		t.Fatalf("priority histogram = %+v", r.Priority)
	}
}

func TestBuildTopKBounds(t *testing.T) {
	p := runPlatform(t)
	r := Build(p, 1, now)
	if len(r.TopRIoCs) != 1 {
		t.Fatalf("topK not applied: %d", len(r.TopRIoCs))
	}
	// Degenerate topK falls back.
	r2 := Build(p, 0, now)
	if len(r2.TopRIoCs) != 2 {
		t.Fatalf("fallback topK = %d", len(r2.TopRIoCs))
	}
}

func TestMarkdownRendering(t *testing.T) {
	p := runPlatform(t)
	text := Build(p, 5, now).Markdown()
	for _, want := range []string{
		"# CAISP situation report",
		"## Pipeline", "## Priorities", "## Top reduced IoCs",
		"## Nodes", "## Feeds",
		"CVE-2017-9805", "all nodes", "node4", "advisories",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown missing %q:\n%s", want, text)
		}
	}
}
