// Package report renders analyst-facing summaries of the platform state —
// the reporting module every security data analytic platform carries
// (paper §I lists "reporting" among the SIEM building blocks). The report
// aggregates collection, deduplication, scoring and visualization counters
// into one Markdown document an analyst (or a ticketing system) can
// consume.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
)

// Report is the aggregated platform summary.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`

	Pipeline core.Stats         `json:"pipeline"`
	Feeds    map[string]feedRow `json:"feeds"`
	TopRIoCs []heuristic.RIoC   `json:"top_riocs"`
	Nodes    []nodeRow          `json:"nodes"`
	Dedup    dedupRow           `json:"dedup"`
	Priority map[string]int     `json:"priority_histogram"`
}

type feedRow struct {
	Fetches     int `json:"fetches"`
	NotModified int `json:"not_modified"`
	Records     int `json:"records"`
	Errors      int `json:"errors"`
}

type nodeRow struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Alarms int    `json:"alarms"`
	Red    int    `json:"red"`
	RIoCs  int    `json:"riocs"`
}

type dedupRow struct {
	Seen      int     `json:"seen"`
	Unique    int     `json:"unique"`
	Reduction float64 `json:"reduction"`
}

// Build assembles a report from a platform. topK bounds the rIoC list.
func Build(p *core.Platform, topK int, now time.Time) *Report {
	if topK < 1 {
		topK = 10
	}
	r := &Report{
		GeneratedAt: now.UTC(),
		Pipeline:    p.Stats(),
		Feeds:       make(map[string]feedRow),
		Priority:    map[string]int{"low": 0, "medium": 0, "high": 0},
	}
	for name, st := range p.FeedStats() {
		r.Feeds[name] = feedRow{
			Fetches:     st.Fetches,
			NotModified: st.NotModified,
			Records:     st.Records,
			Errors:      st.Errors,
		}
	}
	ds := p.DedupStats()
	r.Dedup = dedupRow{Seen: ds.Seen, Unique: ds.Unique, Reduction: ds.ReductionRatio()}

	riocs := p.Dashboard().RIoCs()
	for _, rioc := range riocs {
		r.Priority[rioc.Priority]++
	}
	sort.Slice(riocs, func(i, j int) bool {
		if riocs[i].ThreatScore != riocs[j].ThreatScore {
			return riocs[i].ThreatScore > riocs[j].ThreatScore
		}
		return riocs[i].ID < riocs[j].ID
	})
	if len(riocs) > topK {
		riocs = riocs[:topK]
	}
	r.TopRIoCs = riocs

	collector := p.Collector()
	for _, n := range collector.Inventory().Nodes {
		counts := collector.SeverityCounts(n.ID)
		total := counts[infra.SeverityLow] + counts[infra.SeverityMedium] + counts[infra.SeverityHigh]
		r.Nodes = append(r.Nodes, nodeRow{
			ID:     n.ID,
			Name:   n.Name,
			Alarms: total,
			Red:    counts[infra.SeverityHigh],
			RIoCs:  len(p.Dashboard().RIoCsForNode(n.ID)),
		})
	}
	return r
}

// Markdown renders the report as a Markdown document.
func (r *Report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# CAISP situation report — %s\n\n", r.GeneratedAt.Format(time.RFC3339))

	fmt.Fprintf(&sb, "## Pipeline\n\n")
	fmt.Fprintf(&sb, "- events collected: %d (%d unique, %d duplicates folded",
		r.Pipeline.EventsCollected, r.Pipeline.EventsUnique, r.Pipeline.Duplicates)
	if r.Dedup.Seen > 0 {
		fmt.Fprintf(&sb, ", %.1f%% reduction", r.Dedup.Reduction*100)
	}
	sb.WriteString(")\n")
	fmt.Fprintf(&sb, "- composed IoCs: %d, enriched: %d, reduced to dashboard: %d\n",
		r.Pipeline.CIoCs, r.Pipeline.EIoCs, r.Pipeline.RIoCs)
	if r.Pipeline.Classified > 0 {
		fmt.Fprintf(&sb, "- NLP-classified events: %d\n", r.Pipeline.Classified)
	}
	fmt.Fprintf(&sb, "- stored events: %d\n\n", r.Pipeline.StoredEvents)

	fmt.Fprintf(&sb, "## Priorities\n\n")
	fmt.Fprintf(&sb, "| priority | rIoCs |\n|---|---|\n")
	for _, prio := range []string{"high", "medium", "low"} {
		fmt.Fprintf(&sb, "| %s | %d |\n", prio, r.Priority[prio])
	}
	sb.WriteString("\n")

	if len(r.TopRIoCs) > 0 {
		fmt.Fprintf(&sb, "## Top reduced IoCs\n\n")
		fmt.Fprintf(&sb, "| score | cve | affected | application |\n|---|---|---|---|\n")
		for _, rioc := range r.TopRIoCs {
			affected := strings.Join(rioc.NodeIDs, ", ")
			if rioc.AllNodes {
				affected = "all nodes"
			}
			title := rioc.CVE
			if title == "" {
				title = rioc.Title
			}
			fmt.Fprintf(&sb, "| %.4f | %s | %s | %s |\n",
				rioc.ThreatScore, title, affected, rioc.Application)
		}
		sb.WriteString("\n")
	}

	fmt.Fprintf(&sb, "## Nodes\n\n")
	fmt.Fprintf(&sb, "| node | name | alarms | red | rIoCs |\n|---|---|---|---|---|\n")
	for _, n := range r.Nodes {
		fmt.Fprintf(&sb, "| %s | %s | %d | %d | %d |\n", n.ID, n.Name, n.Alarms, n.Red, n.RIoCs)
	}
	sb.WriteString("\n")

	fmt.Fprintf(&sb, "## Feeds\n\n")
	fmt.Fprintf(&sb, "| feed | fetches | 304s | records | errors |\n|---|---|---|---|---|\n")
	names := make([]string, 0, len(r.Feeds))
	for name := range r.Feeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row := r.Feeds[name]
		fmt.Fprintf(&sb, "| %s | %d | %d | %d | %d |\n",
			name, row.Fetches, row.NotModified, row.Records, row.Errors)
	}
	return sb.String()
}
