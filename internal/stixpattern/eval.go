package stixpattern

import (
	"fmt"
	"net"
	"regexp"
	"strconv"
	"strings"
)

// Match evaluates the pattern against a time-ordered sequence of
// observations. A bracketed test matches if any single observation
// satisfies it; AND requires both operands to match (possibly on different
// observations); OR requires either; FOLLOWEDBY requires the right operand
// to match on an observation strictly later in the sequence than one
// matching the left operand. Qualifiers constrain the matching
// observations' timestamps (WITHIN, START-STOP) or multiplicity (REPEATS).
func (p *Pattern) Match(observations []Observation) (bool, error) {
	idx, err := evalObs(p.Root, observations)
	if err != nil {
		return false, err
	}
	return len(idx) > 0, nil
}

// MatchOne is a convenience for matching a single observation.
func (p *Pattern) MatchOne(obs Observation) (bool, error) {
	return p.Match([]Observation{obs})
}

// evalObs returns the sorted indexes of observations that participate in a
// match of expr, or an empty slice if expr does not match.
func evalObs(expr ObservationExpr, observations []Observation) ([]int, error) {
	switch e := expr.(type) {
	case ObsTest:
		var idx []int
		for i, obs := range observations {
			ok, err := evalBool(e.Expr, obs)
			if err != nil {
				return nil, err
			}
			if ok {
				idx = append(idx, i)
			}
		}
		return idx, nil
	case ObsCombine:
		left, err := evalObs(e.Left, observations)
		if err != nil {
			return nil, err
		}
		right, err := evalObs(e.Right, observations)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "AND":
			if len(left) > 0 && len(right) > 0 {
				return union(left, right), nil
			}
			return nil, nil
		case "OR":
			if len(left) > 0 || len(right) > 0 {
				return union(left, right), nil
			}
			return nil, nil
		case "FOLLOWEDBY":
			if len(left) == 0 || len(right) == 0 {
				return nil, nil
			}
			// The earliest left match must be strictly before some right
			// match.
			first := left[0]
			for _, r := range right {
				if r > first {
					return union(left, right), nil
				}
			}
			return nil, nil
		default:
			return nil, fmt.Errorf("stixpattern: unknown observation operator %q", e.Op)
		}
	case ObsQualified:
		idx, err := evalObs(e.Expr, observations)
		if err != nil {
			return nil, err
		}
		if len(idx) == 0 {
			return nil, nil
		}
		q := e.Qualifier
		switch q.Kind {
		case "REPEATS":
			if len(idx) >= q.Times {
				return idx, nil
			}
			return nil, nil
		case "WITHIN":
			minAt, maxAt := observations[idx[0]].At, observations[idx[0]].At
			for _, i := range idx[1:] {
				at := observations[i].At
				if at.Before(minAt) {
					minAt = at
				}
				if at.After(maxAt) {
					maxAt = at
				}
			}
			if maxAt.Sub(minAt).Seconds() <= q.Seconds {
				return idx, nil
			}
			return nil, nil
		case "START-STOP":
			var kept []int
			for _, i := range idx {
				at := observations[i].At
				if !at.Before(q.Start) && at.Before(q.Stop) {
					kept = append(kept, i)
				}
			}
			return kept, nil
		default:
			return nil, fmt.Errorf("stixpattern: unknown qualifier %q", q.Kind)
		}
	default:
		return nil, fmt.Errorf("stixpattern: unknown observation expression %T", expr)
	}
}

func evalBool(expr CompareExpr, obs Observation) (bool, error) {
	switch e := expr.(type) {
	case BoolCombine:
		left, err := evalBool(e.Left, obs)
		if err != nil {
			return false, err
		}
		// Short-circuit.
		if e.Op == "AND" && !left {
			return false, nil
		}
		if e.Op == "OR" && left {
			return true, nil
		}
		return evalBool(e.Right, obs)
	case Comparison:
		return evalComparison(e, obs)
	default:
		return false, fmt.Errorf("stixpattern: unknown comparison expression %T", expr)
	}
}

func evalComparison(cmp Comparison, obs Observation) (bool, error) {
	values, present := lookup(obs, cmp.Path)
	if !present || len(values) == 0 {
		// Absent object path: the comparison (and its negation) is false,
		// per the STIX patterning semantics for non-existent objects.
		return false, nil
	}
	for _, v := range values {
		ok, err := cmp.compareValue(v)
		if err != nil {
			return false, err
		}
		if ok != cmp.Negated { // ok && !negated, or !ok && negated
			return true, nil
		}
	}
	return false, nil
}

// lookup fetches the values for an object path. A trailing [*] or [N] index
// selector on the pattern path selects within the value list of the base
// path.
func lookup(obs Observation, path string) ([]string, bool) {
	if vals, ok := obs.Fields[path]; ok {
		return vals, true
	}
	// Try index-selector handling: base[N] or base[*].
	if i := strings.LastIndexByte(path, '['); i > 0 && strings.HasSuffix(path, "]") {
		base := path[:i]
		sel := path[i+1 : len(path)-1]
		vals, ok := obs.Fields[base]
		if !ok {
			return nil, false
		}
		if sel == "*" {
			return vals, true
		}
		n, err := strconv.Atoi(sel)
		if err != nil || n < 0 || n >= len(vals) {
			return nil, false
		}
		return vals[n : n+1], true
	}
	return nil, false
}

func (cmp Comparison) compareValue(value string) (bool, error) {
	literals := cmp.Values
	switch cmp.Op {
	case OpEq:
		return equalValue(value, literals[0]), nil
	case OpNeq:
		return !equalValue(value, literals[0]), nil
	case OpLt, OpGt, OpLe, OpGe:
		return compareOrdered(value, cmp.Op, literals[0])
	case OpIn:
		for _, lit := range literals {
			if equalValue(value, lit) {
				return true, nil
			}
		}
		return false, nil
	case OpLike:
		if cmp.matcher != nil {
			return cmp.matcher.MatchString(value), nil
		}
		return likeMatch(value, literals[0].text()), nil
	case OpMatches:
		if cmp.matcher != nil {
			return cmp.matcher.MatchString(value), nil
		}
		// Hand-built AST without a precompiled matcher: compile ad hoc.
		re, err := regexp.Compile(literals[0].text())
		if err != nil {
			return false, fmt.Errorf("stixpattern: bad MATCHES regexp: %w", err)
		}
		return re.MatchString(value), nil
	case OpIsSubset:
		return cidrContains(literals[0].text(), value)
	case OpIsSuperset:
		return cidrContains(value, literals[0].text())
	default:
		return false, fmt.Errorf("stixpattern: unknown operator %q", cmp.Op)
	}
}

func equalValue(value string, lit Literal) bool {
	if lit.Kind == LitNumber {
		n, err := strconv.ParseFloat(value, 64)
		if err == nil {
			return n == lit.Num
		}
	}
	return value == lit.text()
}

func compareOrdered(value, op string, lit Literal) (bool, error) {
	var c int
	if lit.Kind == LitNumber {
		n, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return false, nil // non-numeric observed value never orders against a number
		}
		switch {
		case n < lit.Num:
			c = -1
		case n > lit.Num:
			c = 1
		}
	} else {
		c = strings.Compare(value, lit.text())
	}
	switch op {
	case OpLt:
		return c < 0, nil
	case OpGt:
		return c > 0, nil
	case OpLe:
		return c <= 0, nil
	default: // OpGe
		return c >= 0, nil
	}
}

// likeMatch implements the STIX LIKE operator: '%' matches any run of
// characters, '_' matches exactly one. Fallback path for hand-built ASTs;
// parsed patterns carry the compiled form on the Comparison node.
func likeMatch(value, pattern string) bool {
	matched, err := regexp.MatchString(likeRegexpSource(pattern), value)
	return err == nil && matched
}

// likeRegexpSource translates a LIKE pattern into an anchored regexp.
func likeRegexpSource(pattern string) string {
	var re strings.Builder
	re.WriteString("^(?s)")
	for _, r := range pattern {
		switch r {
		case '%':
			re.WriteString(".*")
		case '_':
			re.WriteString(".")
		default:
			re.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	re.WriteString("$")
	return re.String()
}

// cidrContains reports whether the network `outer` (CIDR or single IP)
// contains `inner` (CIDR or single IP).
func cidrContains(outer, inner string) (bool, error) {
	_, outerNet, err := parseCIDRish(outer)
	if err != nil {
		return false, err
	}
	innerIP, innerNet, err := parseCIDRish(inner)
	if err != nil {
		return false, err
	}
	if !outerNet.Contains(innerIP) {
		return false, nil
	}
	outerOnes, _ := outerNet.Mask.Size()
	innerOnes, _ := innerNet.Mask.Size()
	return innerOnes >= outerOnes, nil
}

func parseCIDRish(s string) (net.IP, *net.IPNet, error) {
	if strings.ContainsRune(s, '/') {
		ip, ipnet, err := net.ParseCIDR(s)
		if err != nil {
			return nil, nil, fmt.Errorf("stixpattern: bad CIDR %q: %w", s, err)
		}
		return ip, ipnet, nil
	}
	ip := net.ParseIP(s)
	if ip == nil {
		return nil, nil, fmt.Errorf("stixpattern: bad IP %q", s)
	}
	bits := 32
	if ip.To4() == nil {
		bits = 128
	}
	return ip, &net.IPNet{IP: ip, Mask: net.CIDRMask(bits, bits)}, nil
}

func union(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, lists := range [][]int{a, b} {
		for _, i := range lists {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	// Keep ascending order for deterministic qualifier evaluation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
