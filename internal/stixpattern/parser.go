package stixpattern

import (
	"strconv"
	"time"
)

// Parse compiles a STIX pattern string into its AST.
//
// Observation operator precedence (loosest to tightest): OR, AND,
// FOLLOWEDBY. Inside brackets: OR, then AND. Parentheses override.
func Parse(input string) (*Pattern, error) {
	p := &parser{lex: lexer{input: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	root, err := p.parseObsOr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, syntaxErrf(p.cur.pos, "trailing input starting with %q", p.cur.text)
	}
	return &Pattern{Root: root, Source: input}, nil
}

type parser struct {
	lex lexer
	cur token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, syntaxErrf(p.cur.pos, "expected %s, found %q", kind, p.cur.text)
	}
	tok := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return tok, nil
}

func (p *parser) parseObsOr() (ObservationExpr, error) {
	left, err := p.parseObsAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseObsAnd()
		if err != nil {
			return nil, err
		}
		left = ObsCombine{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseObsAnd() (ObservationExpr, error) {
	left, err := p.parseObsFollowedBy()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseObsFollowedBy()
		if err != nil {
			return nil, err
		}
		left = ObsCombine{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseObsFollowedBy() (ObservationExpr, error) {
	left, err := p.parseObsUnit()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokFollowedBy {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseObsUnit()
		if err != nil {
			return nil, err
		}
		left = ObsCombine{Op: "FOLLOWEDBY", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseObsUnit() (ObservationExpr, error) {
	var expr ObservationExpr
	switch p.cur.kind {
	case tokLBracket:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseBoolOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		expr = ObsTest{Expr: inner}
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseObsOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		expr = inner
	default:
		return nil, syntaxErrf(p.cur.pos, "expected '[' or '(', found %q", p.cur.text)
	}
	// Zero or more qualifiers bind to this unit.
	for {
		q, ok, err := p.tryParseQualifier()
		if err != nil {
			return nil, err
		}
		if !ok {
			return expr, nil
		}
		expr = ObsQualified{Expr: expr, Qualifier: q}
	}
}

func (p *parser) tryParseQualifier() (Qualifier, bool, error) {
	switch p.cur.kind {
	case tokWithin:
		if err := p.advance(); err != nil {
			return Qualifier{}, false, err
		}
		num, err := p.expect(tokNumber)
		if err != nil {
			return Qualifier{}, false, err
		}
		secs, err := strconv.ParseFloat(num.text, 64)
		if err != nil || secs <= 0 {
			return Qualifier{}, false, syntaxErrf(num.pos, "WITHIN requires a positive number, found %q", num.text)
		}
		if _, err := p.expect(tokSeconds); err != nil {
			return Qualifier{}, false, err
		}
		return Qualifier{Kind: "WITHIN", Seconds: secs}, true, nil
	case tokRepeats:
		if err := p.advance(); err != nil {
			return Qualifier{}, false, err
		}
		num, err := p.expect(tokNumber)
		if err != nil {
			return Qualifier{}, false, err
		}
		times, err := strconv.Atoi(num.text)
		if err != nil || times < 1 {
			return Qualifier{}, false, syntaxErrf(num.pos, "REPEATS requires a positive integer, found %q", num.text)
		}
		if _, err := p.expect(tokTimes); err != nil {
			return Qualifier{}, false, err
		}
		return Qualifier{Kind: "REPEATS", Times: times}, true, nil
	case tokStart:
		if err := p.advance(); err != nil {
			return Qualifier{}, false, err
		}
		startTok, err := p.expect(tokTimestampT)
		if err != nil {
			return Qualifier{}, false, err
		}
		start, err := parseTimestampLit(startTok)
		if err != nil {
			return Qualifier{}, false, err
		}
		if _, err := p.expect(tokStop); err != nil {
			return Qualifier{}, false, err
		}
		stopTok, err := p.expect(tokTimestampT)
		if err != nil {
			return Qualifier{}, false, err
		}
		stop, err := parseTimestampLit(stopTok)
		if err != nil {
			return Qualifier{}, false, err
		}
		if !stop.After(start) {
			return Qualifier{}, false, syntaxErrf(stopTok.pos, "STOP must be after START")
		}
		return Qualifier{Kind: "START-STOP", Start: start, Stop: stop}, true, nil
	default:
		return Qualifier{}, false, nil
	}
}

func (p *parser) parseBoolOr() (CompareExpr, error) {
	left, err := p.parseBoolAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBoolAnd()
		if err != nil {
			return nil, err
		}
		left = BoolCombine{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseBoolAnd() (CompareExpr, error) {
	left, err := p.parseBoolUnit()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBoolUnit()
		if err != nil {
			return nil, err
		}
		left = BoolCombine{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseBoolUnit() (CompareExpr, error) {
	if p.cur.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseBoolOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (CompareExpr, error) {
	pathTok, err := p.expect(tokPath)
	if err != nil {
		return nil, err
	}
	var negated bool
	if p.cur.kind == tokNot {
		negated = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	var op string
	switch p.cur.kind {
	case tokEq:
		op = OpEq
	case tokNeq:
		op = OpNeq
	case tokLt:
		op = OpLt
	case tokGt:
		op = OpGt
	case tokLe:
		op = OpLe
	case tokGe:
		op = OpGe
	case tokIn:
		op = OpIn
	case tokLike:
		op = OpLike
	case tokMatches:
		op = OpMatches
	case tokIsSubset:
		op = OpIsSubset
	case tokIsSuperset:
		op = OpIsSuperset
	default:
		return nil, syntaxErrf(p.cur.pos, "expected comparison operator, found %q", p.cur.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}

	cmp := Comparison{Path: pathTok.text, Op: op, Negated: negated}
	if op == OpIn {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			cmp.Values = append(cmp.Values, lit)
			if p.cur.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return cmp, nil
	}
	litPos := p.cur.pos
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	cmp.Values = []Literal{lit}
	// Compile LIKE/MATCHES once here so evaluation never recompiles, and so
	// an unparsable MATCHES regexp is a positioned parse error rather than a
	// per-evaluation failure.
	if err := cmp.compileMatcher(); err != nil {
		return nil, syntaxErrf(litPos, "%v", err)
	}
	return cmp, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	switch p.cur.kind {
	case tokString:
		lit := StringLit(p.cur.text)
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		return lit, nil
	case tokNumber:
		n, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return Literal{}, syntaxErrf(p.cur.pos, "bad number %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		return NumberLit(n), nil
	case tokTimestampT:
		ts, err := parseTimestampLit(p.cur)
		if err != nil {
			return Literal{}, err
		}
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		return Literal{Kind: LitTimestamp, Time: ts}, nil
	default:
		return Literal{}, syntaxErrf(p.cur.pos, "expected literal, found %q", p.cur.text)
	}
}

func parseTimestampLit(tok token) (time.Time, error) {
	ts, err := time.Parse(time.RFC3339Nano, tok.text)
	if err != nil {
		return time.Time{}, syntaxErrf(tok.pos, "bad timestamp %q", tok.text)
	}
	return ts.UTC(), nil
}
