package stixpattern

// Table-driven coverage of the evaluator's operator matrix: EQ/NEQ (string,
// numeric and negated forms), the ordered operators, IN, LIKE with %/_ edge
// cases, MATCHES on the precompiled path, and CIDR ISSUBSET/ISSUPERSET
// boundary conditions.

import "testing"

func TestEvalOperatorMatrix(t *testing.T) {
	tests := []struct {
		name    string
		pattern string
		fields  map[string][]string
		want    bool
		wantErr bool
	}{
		// EQ / NEQ
		{"eq string hit", "[domain-name:value = 'evil.example']",
			map[string][]string{"domain-name:value": {"evil.example"}}, true, false},
		{"eq string miss", "[domain-name:value = 'evil.example']",
			map[string][]string{"domain-name:value": {"ok.example"}}, false, false},
		{"eq absent path is false", "[domain-name:value = 'evil.example']",
			map[string][]string{"url:value": {"http://x"}}, false, false},
		{"eq numeric canonicalises observed value", "[x:port = 443]",
			map[string][]string{"x:port": {"0443.0"}}, true, false},
		{"eq numeric literal vs non-numeric value", "[x:port = 443]",
			map[string][]string{"x:port": {"https"}}, false, false},
		{"neq hit", "[x:proto != 'udp']",
			map[string][]string{"x:proto": {"tcp"}}, true, false},
		{"neq miss", "[x:proto != 'udp']",
			map[string][]string{"x:proto": {"udp"}}, false, false},
		{"neq absent path still false", "[x:proto != 'udp']",
			map[string][]string{}, false, false},
		{"negated eq", "[x:proto NOT = 'udp']",
			map[string][]string{"x:proto": {"tcp"}}, true, false},
		{"negated eq any-value semantics", "[x:proto NOT = 'udp']",
			map[string][]string{"x:proto": {"udp", "tcp"}}, true, false},

		// Ordered
		{"lt numeric", "[x:score < 5]", map[string][]string{"x:score": {"4.5"}}, true, false},
		{"lt numeric boundary", "[x:score < 5]", map[string][]string{"x:score": {"5"}}, false, false},
		{"le boundary", "[x:score <= 5]", map[string][]string{"x:score": {"5"}}, true, false},
		{"gt numeric", "[x:score > 5]", map[string][]string{"x:score": {"5.01"}}, true, false},
		{"ge boundary", "[x:score >= 5]", map[string][]string{"x:score": {"5"}}, true, false},
		{"ordered non-numeric value never orders", "[x:score > 5]",
			map[string][]string{"x:score": {"high"}}, false, false},
		{"ordered string comparison", "[x:name > 'alpha']",
			map[string][]string{"x:name": {"beta"}}, true, false},

		// IN
		{"in hit", "[ipv4-addr:value IN ('10.0.0.1', '10.0.0.2')]",
			map[string][]string{"ipv4-addr:value": {"10.0.0.2"}}, true, false},
		{"in miss", "[ipv4-addr:value IN ('10.0.0.1', '10.0.0.2')]",
			map[string][]string{"ipv4-addr:value": {"10.0.0.3"}}, false, false},
		{"in mixed numeric literal", "[x:port IN (80, 443)]",
			map[string][]string{"x:port": {"443.0"}}, true, false},
		{"not in", "[x:port NOT IN (80, 443)]",
			map[string][]string{"x:port": {"8080"}}, true, false},

		// LIKE: % any run (incl. empty), _ exactly one.
		{"like percent empty run", "[url:value LIKE 'http%://x/']",
			map[string][]string{"url:value": {"http://x/"}}, true, false},
		{"like percent long run", "[url:value LIKE '%/mal/%']",
			map[string][]string{"url:value": {"http://a/mal/b.bin"}}, true, false},
		{"like underscore exactly one", "[file:name LIKE 'a_c']",
			map[string][]string{"file:name": {"abc"}}, true, false},
		{"like underscore not zero", "[file:name LIKE 'a_c']",
			map[string][]string{"file:name": {"ac"}}, false, false},
		{"like underscore not two", "[file:name LIKE 'a_c']",
			map[string][]string{"file:name": {"abbc"}}, false, false},
		{"like is anchored", "[file:name LIKE 'mal']",
			map[string][]string{"file:name": {"malware.exe"}}, false, false},
		{"like regexp metachars are literal", "[file:name LIKE 'a.b+c']",
			map[string][]string{"file:name": {"a.b+c"}}, true, false},
		{"like regexp metachars do not expand", "[file:name LIKE 'a.b+c']",
			map[string][]string{"file:name": {"aXbbc"}}, false, false},
		{"like percent crosses newline", "[x:body LIKE 'a%b']",
			map[string][]string{"x:body": {"a\nb"}}, true, false},

		// MATCHES (precompiled at parse time).
		{"matches unanchored", "[file:name MATCHES 'mal.*\\\\.exe']",
			map[string][]string{"file:name": {"prefix-malware.exe"}}, true, false},
		{"matches anchored miss", "[file:name MATCHES '^mal']",
			map[string][]string{"file:name": {"not-mal"}}, false, false},
		{"matches alternation", "[domain-name:value MATCHES '(evil|bad)\\\\.example']",
			map[string][]string{"domain-name:value": {"bad.example"}}, true, false},

		// ISSUBSET boundaries: value must fall inside the literal network
		// with an equal-or-narrower mask.
		{"issubset ip inside", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"198.51.100.7"}}, true, false},
		{"issubset network boundary low", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"198.51.100.0"}}, true, false},
		{"issubset network boundary high", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"198.51.100.255"}}, true, false},
		{"issubset just outside", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"198.51.101.0"}}, false, false},
		{"issubset narrower cidr value", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"198.51.100.128/25"}}, true, false},
		{"issubset same cidr", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"198.51.100.0/24"}}, true, false},
		{"issubset broader cidr value", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"198.51.0.0/16"}}, false, false},
		{"issubset bad value errors", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
			map[string][]string{"ipv4-addr:value": {"not-an-ip"}}, false, true},
		{"issuperset value contains literal", "[ipv4-addr:value ISSUPERSET '198.51.100.7']",
			map[string][]string{"ipv4-addr:value": {"198.51.100.0/24"}}, true, false},
		{"issuperset miss", "[ipv4-addr:value ISSUPERSET '203.0.113.1']",
			map[string][]string{"ipv4-addr:value": {"198.51.100.0/24"}}, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := mustParse(t, tt.pattern)
			got, err := p.MatchOne(obs(tt.fields))
			if tt.wantErr {
				if err == nil {
					t.Fatalf("MatchOne(%q) did not error", tt.pattern)
				}
				return
			}
			if err != nil {
				t.Fatalf("MatchOne(%q): %v", tt.pattern, err)
			}
			if got != tt.want {
				t.Fatalf("MatchOne(%q) = %v, want %v", tt.pattern, got, tt.want)
			}
		})
	}
}

// TestParsedMatchersPrecompiled pins the satellite fix: parsing stores the
// compiled LIKE/MATCHES regexp on the Comparison node.
func TestParsedMatchersPrecompiled(t *testing.T) {
	for _, src := range []string{
		"[file:name LIKE '%.exe']",
		"[file:name MATCHES '^mal.*']",
	} {
		p := mustParse(t, src)
		cmp, ok := p.Root.(ObsTest).Expr.(Comparison)
		if !ok {
			t.Fatalf("%q: root is not a Comparison", src)
		}
		if cmp.matcher == nil {
			t.Fatalf("%q: matcher not compiled at parse time", src)
		}
	}
}
