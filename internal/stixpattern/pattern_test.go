package stixpattern

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustParse(t *testing.T, src string) *Pattern {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func obs(fields map[string][]string) Observation {
	return Observation{Fields: fields}
}

func TestParseValidPatterns(t *testing.T) {
	tests := []string{
		"[domain-name:value = 'evil.example']",
		"[ipv4-addr:value = '203.0.113.7' OR domain-name:value = 'evil.example']",
		"[file:hashes.'SHA-256' = 'aec070645fe53ee3b3763059376134f058cc337247c978add178b6ccdfb0019f']",
		"[network-traffic:dst_port IN (80, 443, 8080)]",
		"[url:value LIKE 'http://%.example/%']",
		"[file:name MATCHES '^report_[0-9]+\\\\.pdf$']",
		"[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
		"[user-account:display_name NOT = 'root']",
		"[a:b = 'x'] AND [c:d = 'y']",
		"[a:b = 'x'] FOLLOWEDBY [c:d = 'y'] WITHIN 300 SECONDS",
		"([a:b = 'x'] OR [c:d = 'y']) AND [e:f = 'z']",
		"[a:b = 'x'] REPEATS 3 TIMES",
		"[a:b = 'x'] START t'2017-09-13T00:00:00Z' STOP t'2017-09-14T00:00:00Z'",
		"[process:arguments[0] = '-c' AND process:arguments[1] = 'rm']",
		"[(a:b = 'x' OR c:d = 'y') AND e:f = 'z']",
		"[network-traffic:src_byte_count > 1000000]",
		"[indicator:score >= 2.5]",
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			mustParse(t, src)
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{give: "", want: "expected '['"},
		{give: "[a:b = 'x'", want: "expected ]"},
		{give: "[a:b 'x']", want: "expected comparison operator"},
		{give: "[a:b = ]", want: "expected literal"},
		{give: "[a:b = 'x'] AND", want: "expected '['"},
		{give: "[a:b = 'unterminated]", want: "unterminated string"},
		{give: "[a:b = 'x'] trailing", want: "trailing input"},
		{give: "[a:b ! 'x']", want: "unexpected"},
		{give: "[a:b = 'x'] WITHIN -5 SECONDS", want: "positive number"},
		{give: "[a:b = 'x'] REPEATS 0 TIMES", want: "positive integer"},
		{give: "[a:b = 'x'] START t'2017-09-14T00:00:00Z' STOP t'2017-09-13T00:00:00Z'", want: "STOP must be after START"},
		{give: "[a:b IN (1, 2", want: "expected )"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			_, err := Parse(tt.give)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tt.give, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestCanonicalStringReparses(t *testing.T) {
	sources := []string{
		"[domain-name:value = 'evil.example']",
		"[a:b = 'x' AND c:d != 'y' OR e:f > 3]",
		"[a:b IN ('x', 'y', 'z')]",
		"[a:b = 'x'] FOLLOWEDBY [c:d = 'y'] WITHIN 300 SECONDS",
		"[a:b NOT LIKE 'x%']",
	}
	for _, src := range sources {
		p := mustParse(t, src)
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, src, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, p2.String())
		}
	}
}

func TestMatchBasicOperators(t *testing.T) {
	observation := obs(map[string][]string{
		"domain-name:value":        {"evil.example"},
		"ipv4-addr:value":          {"198.51.100.20"},
		"network-traffic:dst_port": {"443"},
		"url:value":                {"http://phish.example/login"},
		"file:hashes.'SHA-256'":    {"aec070645fe53ee3b3763059376134f058cc337247c978add178b6ccdfb0019f"},
		"file:size":                {"2048"},
	})
	tests := []struct {
		pattern string
		want    bool
	}{
		{pattern: "[domain-name:value = 'evil.example']", want: true},
		{pattern: "[domain-name:value = 'good.example']", want: false},
		{pattern: "[domain-name:value != 'good.example']", want: true},
		{pattern: "[domain-name:value NOT = 'evil.example']", want: false},
		{pattern: "[network-traffic:dst_port IN (80, 443)]", want: true},
		{pattern: "[network-traffic:dst_port IN (22, 23)]", want: false},
		{pattern: "[file:size > 1024]", want: true},
		{pattern: "[file:size < 1024]", want: false},
		{pattern: "[file:size >= 2048]", want: true},
		{pattern: "[file:size <= 2047]", want: false},
		{pattern: "[url:value LIKE 'http://%.example/%']", want: true},
		{pattern: "[url:value LIKE 'https://%']", want: false},
		{pattern: "[domain-name:value MATCHES '^evil\\\\.']", want: true},
		{pattern: "[ipv4-addr:value ISSUBSET '198.51.100.0/24']", want: true},
		{pattern: "[ipv4-addr:value ISSUBSET '203.0.113.0/24']", want: false},
		{pattern: "[file:hashes.'SHA-256' = 'aec070645fe53ee3b3763059376134f058cc337247c978add178b6ccdfb0019f']", want: true},
		{pattern: "[missing:path = 'x']", want: false},
		// Negation of an absent path is still false per STIX semantics.
		{pattern: "[missing:path NOT = 'x']", want: false},
		{pattern: "[domain-name:value = 'evil.example' AND file:size > 1024]", want: true},
		{pattern: "[domain-name:value = 'nope' AND file:size > 1024]", want: false},
		{pattern: "[domain-name:value = 'nope' OR file:size > 1024]", want: true},
		{pattern: "[(domain-name:value = 'nope' OR file:size > 9999) AND url:value LIKE '%phish%']", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.pattern, func(t *testing.T) {
			p := mustParse(t, tt.pattern)
			got, err := p.MatchOne(observation)
			if err != nil {
				t.Fatalf("Match: %v", err)
			}
			if got != tt.want {
				t.Fatalf("Match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchMultiValuedPath(t *testing.T) {
	observation := obs(map[string][]string{
		"domain-name:resolves_to_refs": {"1.2.3.4", "5.6.7.8"},
		"process:arguments":            {"-c", "rm -rf /"},
	})
	tests := []struct {
		pattern string
		want    bool
	}{
		{pattern: "[domain-name:resolves_to_refs = '5.6.7.8']", want: true},
		{pattern: "[process:arguments[0] = '-c']", want: true},
		{pattern: "[process:arguments[1] = '-c']", want: false},
		{pattern: "[process:arguments[*] LIKE '%rm%']", want: true},
		{pattern: "[process:arguments[9] = '-c']", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.pattern, func(t *testing.T) {
			p := mustParse(t, tt.pattern)
			got, err := p.MatchOne(observation)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchObservationCombinators(t *testing.T) {
	base := time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)
	seq := []Observation{
		{At: base, Fields: map[string][]string{"a:b": {"x"}}},
		{At: base.Add(1 * time.Minute), Fields: map[string][]string{"c:d": {"y"}}},
		{At: base.Add(10 * time.Minute), Fields: map[string][]string{"a:b": {"x"}}},
	}
	tests := []struct {
		pattern string
		want    bool
	}{
		{pattern: "[a:b = 'x'] AND [c:d = 'y']", want: true},
		{pattern: "[a:b = 'x'] AND [c:d = 'z']", want: false},
		{pattern: "[a:b = 'x'] OR [c:d = 'z']", want: true},
		{pattern: "[a:b = 'x'] FOLLOWEDBY [c:d = 'y']", want: true},
		{pattern: "[c:d = 'y'] FOLLOWEDBY [a:b = 'x']", want: true}, // third obs is after
		{pattern: "[c:d = 'y'] FOLLOWEDBY [c:d = 'y']", want: false},
		{pattern: "[a:b = 'x'] REPEATS 2 TIMES", want: true},
		{pattern: "[a:b = 'x'] REPEATS 3 TIMES", want: false},
		{pattern: "([a:b = 'x'] AND [c:d = 'y']) WITHIN 120 SECONDS", want: false}, // spread over 10m via union
		{pattern: "([a:b = 'x'] FOLLOWEDBY [c:d = 'y']) WITHIN 3600 SECONDS", want: true},
		{pattern: "[c:d = 'y'] START t'2019-06-24T12:00:30Z' STOP t'2019-06-24T12:02:00Z'", want: true},
		{pattern: "[c:d = 'y'] START t'2019-06-24T13:00:00Z' STOP t'2019-06-24T14:00:00Z'", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.pattern, func(t *testing.T) {
			p := mustParse(t, tt.pattern)
			got, err := p.Match(seq)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatchBadRegexpReportsError(t *testing.T) {
	// Since regexps compile at parse time, a bad MATCHES literal is a
	// positioned parse error rather than a per-evaluation failure.
	_, err := Parse("[a:b MATCHES '(']")
	if err == nil {
		t.Fatal("bad regexp did not error at parse time")
	}
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("Parse error = %T, want *SyntaxError", err)
	}
	if serr.Pos != 13 {
		t.Fatalf("SyntaxError.Pos = %d, want 13 (the literal)", serr.Pos)
	}

	// Hand-built ASTs skip parse-time compilation; the evaluator still
	// reports the bad regexp as an error.
	p := &Pattern{Root: ObsTest{Expr: Comparison{
		Path: "a:b", Op: OpMatches, Values: []Literal{StringLit("(")},
	}}}
	if _, err := p.MatchOne(obs(map[string][]string{"a:b": {"x"}})); err == nil {
		t.Fatal("bad regexp did not error at eval time")
	}
}

func TestMatchEmptyObservations(t *testing.T) {
	p := mustParse(t, "[a:b = 'x']")
	got, err := p.Match(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("match against no observations succeeded")
	}
}

func TestLikeMatchEdgeCases(t *testing.T) {
	tests := []struct {
		value, pattern string
		want           bool
	}{
		{value: "abc", pattern: "abc", want: true},
		{value: "abc", pattern: "a_c", want: true},
		{value: "abc", pattern: "a__c", want: false},
		{value: "abc", pattern: "%", want: true},
		{value: "", pattern: "%", want: true},
		{value: "a.c", pattern: "a.c", want: true},
		{value: "axc", pattern: "a.c", want: false},   // '.' is literal
		{value: "a%b", pattern: "a\\%b", want: false}, // backslash is literal too
	}
	for _, tt := range tests {
		if got := likeMatch(tt.value, tt.pattern); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.value, tt.pattern, got, tt.want)
		}
	}
}

func TestEqualityRoundTripQuick(t *testing.T) {
	// Property: for any simple string value, the pattern built from it
	// matches an observation carrying exactly that value.
	f := func(raw string) bool {
		if strings.ContainsAny(raw, "\x00") {
			return true
		}
		lit := StringLit(raw)
		src := "[x:y = " + lit.String() + "]"
		p, err := Parse(src)
		if err != nil {
			// Values with characters the lexer treats as escapes must still
			// parse; report failure.
			return false
		}
		ok, err := p.MatchOne(obs(map[string][]string{"x:y": {raw}}))
		return err == nil && ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCIDRContains(t *testing.T) {
	tests := []struct {
		outer, inner string
		want         bool
	}{
		{outer: "10.0.0.0/8", inner: "10.1.2.3", want: true},
		{outer: "10.0.0.0/8", inner: "11.1.2.3", want: false},
		{outer: "10.0.0.0/8", inner: "10.0.0.0/16", want: true},
		{outer: "10.0.0.0/16", inner: "10.0.0.0/8", want: false},
		{outer: "10.1.2.3", inner: "10.1.2.3", want: true},
		{outer: "2001:db8::/32", inner: "2001:db8::1", want: true},
	}
	for _, tt := range tests {
		got, err := cidrContains(tt.outer, tt.inner)
		if err != nil {
			t.Fatalf("cidrContains(%q, %q): %v", tt.outer, tt.inner, err)
		}
		if got != tt.want {
			t.Errorf("cidrContains(%q, %q) = %v, want %v", tt.outer, tt.inner, got, tt.want)
		}
	}
	if _, err := cidrContains("not-an-ip", "10.0.0.1"); err == nil {
		t.Error("cidrContains with bad outer did not error")
	}
}
