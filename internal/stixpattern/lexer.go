// Package stixpattern implements the STIX 2.0 patterning language: a lexer,
// a recursive-descent parser producing an AST, and an evaluator that matches
// patterns against observations. Indicators collected from OSINT carry
// patterns such as
//
//	[domain-name:value = 'evil.example' OR ipv4-addr:value = '203.0.113.7']
//
// and the platform evaluates them against observations reported by the
// monitored infrastructure when computing accuracy/timeliness criteria.
package stixpattern

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokIn
	tokLike
	tokMatches
	tokIsSubset
	tokIsSuperset
	tokFollowedBy
	tokWithin
	tokRepeats
	tokTimes
	tokSeconds
	tokStart
	tokStop
	tokEq
	tokNeq
	tokLt
	tokGt
	tokLe
	tokGe
	tokComma
	tokString     // 'single quoted'
	tokNumber     // integer or float literal
	tokPath       // object path like file:hashes.'SHA-256'
	tokTimestampT // t'2017-...' timestamp literal
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "EOF", tokLBracket: "[", tokRBracket: "]",
		tokLParen: "(", tokRParen: ")", tokAnd: "AND", tokOr: "OR",
		tokNot: "NOT", tokIn: "IN", tokLike: "LIKE", tokMatches: "MATCHES",
		tokIsSubset: "ISSUBSET", tokIsSuperset: "ISSUPERSET",
		tokFollowedBy: "FOLLOWEDBY", tokWithin: "WITHIN",
		tokRepeats: "REPEATS", tokTimes: "TIMES", tokSeconds: "SECONDS",
		tokStart: "START", tokStop: "STOP",
		tokEq: "=", tokNeq: "!=", tokLt: "<", tokGt: ">", tokLe: "<=",
		tokGe: ">=", tokComma: ",", tokString: "string",
		tokNumber: "number", tokPath: "path", tokTimestampT: "timestamp",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("tokenKind(%d)", int(k))
}

// token is a single lexical unit with its source position.
type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]tokenKind{
	"AND": tokAnd, "OR": tokOr, "NOT": tokNot, "IN": tokIn,
	"LIKE": tokLike, "MATCHES": tokMatches, "ISSUBSET": tokIsSubset,
	"ISSUPERSET": tokIsSuperset, "FOLLOWEDBY": tokFollowedBy,
	"WITHIN": tokWithin, "REPEATS": tokRepeats, "TIMES": tokTimes,
	"SECONDS": tokSeconds, "START": tokStart, "STOP": tokStop,
}

// lexer turns a pattern string into tokens.
type lexer struct {
	input string
	pos   int
}

// SyntaxError describes a lexical or parse failure with its position.
type SyntaxError struct {
	Pos     int
	Message string
}

// Error formats the failure with its byte offset.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("stixpattern: %s at offset %d", e.Message, e.Pos)
}

func syntaxErrf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Message: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && isSpace(l.input[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.input[l.pos]
	switch c {
	case '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '!':
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokNeq, text: "!=", pos: start}, nil
		}
		return token{}, syntaxErrf(start, "unexpected %q", "!")
	case '<':
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case '>':
		if l.peekAt(1) == '=' {
			l.pos += 2
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case '\'':
		return l.lexString()
	}
	if c == 't' && l.peekAt(1) == '\'' {
		// Timestamp literal t'...'.
		l.pos++
		tok, err := l.lexString()
		if err != nil {
			return token{}, err
		}
		tok.kind = tokTimestampT
		tok.pos = start
		return tok, nil
	}
	if isDigit(c) || (c == '-' && isDigit(l.peekAt(1))) {
		return l.lexNumber()
	}
	if isPathStart(c) {
		return l.lexPathOrKeyword()
	}
	return token{}, syntaxErrf(start, "unexpected character %q", string(c))
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\\' && l.pos+1 < len(l.input) {
			nxt := l.input[l.pos+1]
			if nxt == '\'' || nxt == '\\' {
				sb.WriteByte(nxt)
				l.pos += 2
				continue
			}
		}
		if c == '\'' {
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, syntaxErrf(start, "unterminated string literal")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.input[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.input) && (isDigit(l.input[l.pos]) || l.input[l.pos] == '.') {
		l.pos++
	}
	return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
}

// lexPathOrKeyword consumes an identifier-ish run. Object paths may contain
// colons, dots, dashes, underscores, indexes like [0] or [*], and quoted
// path components such as hashes.'SHA-256'.
func (l *lexer) lexPathOrKeyword() (token, error) {
	start := l.pos
	var sb strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case isPathChar(c):
			sb.WriteByte(c)
			l.pos++
		case c == '\'':
			// Quoted path component; keep the quotes in the canonical path.
			tok, err := l.lexString()
			if err != nil {
				return token{}, err
			}
			sb.WriteString("'" + tok.text + "'")
		case c == '[':
			// List index selector [0] or [*] — only valid mid-path (after a
			// property name), which is exactly when sb is non-empty and the
			// previous char was not an operator.
			end := strings.IndexByte(l.input[l.pos:], ']')
			if end < 0 {
				return token{}, syntaxErrf(l.pos, "unterminated index selector")
			}
			sel := l.input[l.pos : l.pos+end+1]
			if !isIndexSelector(sel) {
				// Not an index: this '[' starts a new observation
				// expression; stop the path here.
				goto done
			}
			sb.WriteString(sel)
			l.pos += end + 1
		default:
			goto done
		}
	}
done:
	text := sb.String()
	upper := strings.ToUpper(text)
	if kind, ok := keywords[upper]; ok {
		return token{kind: kind, text: upper, pos: start}, nil
	}
	return token{kind: tokPath, text: text, pos: start}, nil
}

func (l *lexer) peekAt(offset int) byte {
	if l.pos+offset < len(l.input) {
		return l.input[l.pos+offset]
	}
	return 0
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isPathStart(c byte) bool {
	return unicode.IsLetter(rune(c)) || c == '_'
}

func isPathChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || isDigit(c) || c == '_' || c == '-' ||
		c == ':' || c == '.'
}

// isIndexSelector reports whether sel (including brackets) is [N] or [*].
func isIndexSelector(sel string) bool {
	inner := strings.TrimSuffix(strings.TrimPrefix(sel, "["), "]")
	if inner == "*" {
		return true
	}
	if inner == "" {
		return false
	}
	for i := 0; i < len(inner); i++ {
		if !isDigit(inner[i]) {
			return false
		}
	}
	return true
}
