package stixpattern

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestParseNeverPanics feeds the parser random garbage: it must return an
// error or an AST, never panic, and every accepted AST must render to a
// canonical form that reparses.
func TestParseNeverPanics(t *testing.T) {
	f := func(input string) bool {
		p, err := Parse(input)
		if err != nil {
			return true
		}
		canon := p.String()
		p2, err := Parse(canon)
		return err == nil && p2.String() == canon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseMatch is a native fuzz target over the full parse→match path.
// Its seed corpus runs under plain `go test` and includes LIKE/MATCHES
// entries that exercise the parse-time-compiled regexp path.
func FuzzParseMatch(f *testing.F) {
	seeds := []string{
		"[domain-name:value = 'evil.example']",
		"[ipv4-addr:value ISSUBSET '198.51.100.0/24']",
		// Compiled-regexp path: LIKE with %/_ runs and quoted metachars,
		// MATCHES with anchors and alternation.
		"[file:name LIKE '%mal_ware.v_']",
		"[url:value LIKE 'http%://x.y/%.bin']",
		"[file:name MATCHES '^mal(ware)?\\\\.exe$']",
		"[domain-name:value MATCHES '(evil|bad)\\\\.example' AND x:score > 2.5]",
		"[a:b MATCHES '('", // unbalanced regexp AND bracket: must just error
	}
	for _, s := range seeds {
		f.Add(s)
	}
	obs := Observation{At: time.Unix(0, 0), Fields: map[string][]string{
		"a:b": {"x"}, "domain-name:value": {"evil.example"},
		"file:name": {"malware.exe"}, "url:value": {"http://x.y/a.bin"},
		"ipv4-addr:value": {"198.51.100.7"},
	}}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		_, _ = p.Match([]Observation{obs})
		canon := p.String()
		if _, err := Parse(canon); err != nil {
			t.Fatalf("canonical form of %q does not reparse: %q: %v", input, canon, err)
		}
	})
}

// TestParseStructuredFuzz builds random-ish pattern strings from valid
// fragments, which reach much deeper into the grammar than raw random
// bytes.
func TestParseStructuredFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	paths := []string{"a:b", "domain-name:value", "file:hashes.'SHA-256'", "process:arguments[0]"}
	ops := []string{"=", "!=", "<", ">", "<=", ">=", "LIKE", "MATCHES", "ISSUBSET", "IN"}
	literals := []string{"'x'", "'evil.example'", "5", "2.5", "('a', 'b')", "t'2019-06-24T00:00:00Z'"}
	joins := []string{" AND ", " OR ", " FOLLOWEDBY "}
	quals := []string{"", " WITHIN 30 SECONDS", " REPEATS 2 TIMES"}

	obs := Observation{At: time.Unix(0, 0), Fields: map[string][]string{
		"a:b": {"x"}, "domain-name:value": {"evil.example"},
	}}
	for i := 0; i < 500; i++ {
		var sb []byte
		terms := 1 + r.Intn(3)
		for j := 0; j < terms; j++ {
			if j > 0 {
				sb = append(sb, joins[r.Intn(len(joins))]...)
			}
			op := ops[r.Intn(len(ops))]
			lit := literals[r.Intn(len(literals))]
			if op == "IN" && lit[0] != '(' {
				lit = "(" + lit + ")"
			}
			sb = append(sb, '[')
			sb = append(sb, paths[r.Intn(len(paths))]...)
			sb = append(sb, ' ')
			sb = append(sb, op...)
			sb = append(sb, ' ')
			sb = append(sb, lit...)
			sb = append(sb, ']')
		}
		sb = append(sb, quals[r.Intn(len(quals))]...)
		src := string(sb)
		p, err := Parse(src)
		if err != nil {
			continue // some combinations are legitimately invalid (e.g. IN (t'…'))
		}
		// Matching must not panic either; MATCHES with non-regexp literals
		// may error, which is fine.
		_, _ = p.Match([]Observation{obs})
		canon := p.String()
		if _, err := Parse(canon); err != nil {
			t.Fatalf("canonical form of %q does not reparse: %q: %v", src, canon, err)
		}
	}
}
