package stixpattern_test

import (
	"fmt"

	"github.com/caisplatform/caisp/internal/stixpattern"
)

// ExampleParse matches an OSINT indicator pattern against an observation
// reported by the monitored infrastructure.
func ExampleParse() {
	pattern, err := stixpattern.Parse(
		"[domain-name:value = 'evil.example' OR ipv4-addr:value = '203.0.113.7']")
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	observation := stixpattern.Observation{
		Fields: map[string][]string{
			"ipv4-addr:value": {"203.0.113.7"},
		},
	}
	matched, err := pattern.MatchOne(observation)
	if err != nil {
		fmt.Println("match error:", err)
		return
	}
	fmt.Println("matched:", matched)
	// Output: matched: true
}
