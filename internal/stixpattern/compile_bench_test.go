package stixpattern

// Benchmarks for the compile-once satellite: parsed patterns carry their
// LIKE/MATCHES regexp on the AST node, so evaluation no longer rebuilds and
// recompiles it per call. The *Recompile variants pin the legacy cost by
// evaluating hand-built Comparisons (nil matcher → ad-hoc compilation),
// which is exactly the pre-fix per-evaluation path.

import "testing"

var benchSink bool

func benchEvalPattern(b *testing.B, p *Pattern, o Observation) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := p.MatchOne(o)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ok
	}
}

func BenchmarkSubsEvalLikePrecompiled(b *testing.B) {
	p, err := Parse("[url:value LIKE '%/malware-kit/%_payload.bin']")
	if err != nil {
		b.Fatal(err)
	}
	benchEvalPattern(b, p, obs(map[string][]string{
		"url:value": {"http://cdn.example/malware-kit/x_payload.bin"},
	}))
}

func BenchmarkSubsEvalLikeRecompile(b *testing.B) {
	p := &Pattern{Root: ObsTest{Expr: Comparison{
		Path: "url:value", Op: OpLike,
		Values: []Literal{StringLit("%/malware-kit/%_payload.bin")},
	}}}
	benchEvalPattern(b, p, obs(map[string][]string{
		"url:value": {"http://cdn.example/malware-kit/x_payload.bin"},
	}))
}

func BenchmarkSubsEvalMatchesPrecompiled(b *testing.B) {
	p, err := Parse("[domain-name:value MATCHES '^(evil|bad|mal)[a-z0-9-]*\\\\.example$']")
	if err != nil {
		b.Fatal(err)
	}
	benchEvalPattern(b, p, obs(map[string][]string{
		"domain-name:value": {"malvertising-7.example"},
	}))
}

func BenchmarkSubsEvalMatchesRecompile(b *testing.B) {
	p := &Pattern{Root: ObsTest{Expr: Comparison{
		Path: "domain-name:value", Op: OpMatches,
		Values: []Literal{StringLit(`^(evil|bad|mal)[a-z0-9-]*\.example$`)},
	}}}
	benchEvalPattern(b, p, obs(map[string][]string{
		"domain-name:value": {"malvertising-7.example"},
	}))
}
