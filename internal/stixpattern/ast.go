package stixpattern

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Pattern is a parsed STIX pattern: one observation expression, possibly
// qualified.
type Pattern struct {
	Root ObservationExpr
	// Source is the original pattern text.
	Source string
}

// String renders the canonical form of the pattern.
func (p *Pattern) String() string { return p.Root.String() }

// ObservationExpr is a node in the observation-expression tree.
type ObservationExpr interface {
	fmt.Stringer
	isObservationExpr()
}

// Observation carries the field values of one observed data instance, keyed
// by object path (e.g. "domain-name:value" → ["evil.example"]). A path may
// have several values (e.g. multiple resolved IPs).
type Observation struct {
	// At is when the observation occurred; used by WITHIN/START-STOP
	// qualifiers.
	At time.Time
	// Fields maps object paths to their observed values.
	Fields map[string][]string
}

// ObsTest is a bracketed observation expression: a boolean comparison tree
// evaluated against a single observation.
type ObsTest struct {
	Expr CompareExpr
}

func (ObsTest) isObservationExpr() {}

// String renders the bracketed test.
func (o ObsTest) String() string { return "[" + o.Expr.String() + "]" }

// ObsCombine combines two observation expressions with AND, OR or
// FOLLOWEDBY.
type ObsCombine struct {
	Op          string // "AND", "OR", "FOLLOWEDBY"
	Left, Right ObservationExpr
}

func (ObsCombine) isObservationExpr() {}

// String renders the combination with explicit parentheses.
func (o ObsCombine) String() string {
	return "(" + o.Left.String() + " " + o.Op + " " + o.Right.String() + ")"
}

// Qualifier restricts when/how often an observation expression must match.
type Qualifier struct {
	Kind    string // "WITHIN", "REPEATS", "START-STOP"
	Seconds float64
	Times   int
	Start   time.Time
	Stop    time.Time
}

// String renders the qualifier in pattern syntax.
func (q Qualifier) String() string {
	switch q.Kind {
	case "WITHIN":
		return fmt.Sprintf("WITHIN %s SECONDS", trimFloat(q.Seconds))
	case "REPEATS":
		return fmt.Sprintf("REPEATS %d TIMES", q.Times)
	case "START-STOP":
		return fmt.Sprintf("START t'%s' STOP t'%s'",
			q.Start.UTC().Format("2006-01-02T15:04:05.000Z"),
			q.Stop.UTC().Format("2006-01-02T15:04:05.000Z"))
	default:
		return q.Kind
	}
}

// ObsQualified attaches a qualifier to an observation expression.
type ObsQualified struct {
	Expr      ObservationExpr
	Qualifier Qualifier
}

func (ObsQualified) isObservationExpr() {}

// String renders the qualified expression.
func (o ObsQualified) String() string {
	return o.Expr.String() + " " + o.Qualifier.String()
}

// CompareExpr is a node in the boolean tree inside one bracket pair.
type CompareExpr interface {
	fmt.Stringer
	isCompareExpr()
}

// BoolCombine joins two comparison expressions with AND or OR.
type BoolCombine struct {
	Op          string // "AND" or "OR"
	Left, Right CompareExpr
}

func (BoolCombine) isCompareExpr() {}

// String renders the boolean combination with explicit parentheses.
func (b BoolCombine) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// Comparison operators.
const (
	OpEq         = "="
	OpNeq        = "!="
	OpLt         = "<"
	OpGt         = ">"
	OpLe         = "<="
	OpGe         = ">="
	OpIn         = "IN"
	OpLike       = "LIKE"
	OpMatches    = "MATCHES"
	OpIsSubset   = "ISSUBSET"
	OpIsSuperset = "ISSUPERSET"
)

// Comparison is a single test of an object path against literal value(s).
type Comparison struct {
	Path    string
	Op      string
	Negated bool
	// Values holds one literal, or several for IN.
	Values []Literal
	// matcher is the LIKE/MATCHES regexp, compiled once at parse time.
	// Hand-built Comparisons leave it nil and fall back to per-evaluation
	// compilation in the evaluator.
	matcher *regexp.Regexp
}

// compileMatcher precompiles the LIKE/MATCHES regexp so evaluation never
// recompiles it. A no-op for other operators or empty value lists.
func (c *Comparison) compileMatcher() error {
	if len(c.Values) == 0 {
		return nil
	}
	var src string
	switch c.Op {
	case OpLike:
		src = likeRegexpSource(c.Values[0].text())
	case OpMatches:
		src = c.Values[0].text()
	default:
		return nil
	}
	re, err := regexp.Compile(src)
	if err != nil {
		return fmt.Errorf("bad %s regexp %q: %v", c.Op, c.Values[0].text(), err)
	}
	c.matcher = re
	return nil
}

func (Comparison) isCompareExpr() {}

// String renders the comparison in pattern syntax.
func (c Comparison) String() string {
	var sb strings.Builder
	sb.WriteString(c.Path)
	sb.WriteByte(' ')
	if c.Negated {
		sb.WriteString("NOT ")
	}
	sb.WriteString(c.Op)
	sb.WriteByte(' ')
	if c.Op == OpIn {
		sb.WriteByte('(')
		for i, v := range c.Values {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte(')')
	} else {
		sb.WriteString(c.Values[0].String())
	}
	return sb.String()
}

// LiteralKind distinguishes literal value categories.
type LiteralKind int

// Literal kinds.
const (
	LitString LiteralKind = iota + 1
	LitNumber
	LitTimestamp
)

// Literal is a constant value in a comparison.
type Literal struct {
	Kind LiteralKind
	Str  string
	Num  float64
	Time time.Time
}

// StringLit builds a string literal.
func StringLit(s string) Literal { return Literal{Kind: LitString, Str: s} }

// NumberLit builds a numeric literal.
func NumberLit(n float64) Literal { return Literal{Kind: LitNumber, Num: n} }

// String renders the literal in pattern syntax.
func (l Literal) String() string {
	switch l.Kind {
	case LitString:
		return "'" + strings.ReplaceAll(strings.ReplaceAll(l.Str, `\`, `\\`), "'", `\'`) + "'"
	case LitNumber:
		return trimFloat(l.Num)
	case LitTimestamp:
		return "t'" + l.Time.UTC().Format("2006-01-02T15:04:05.000Z") + "'"
	default:
		return "?"
	}
}

// text returns the literal's comparable string form.
func (l Literal) text() string {
	switch l.Kind {
	case LitString:
		return l.Str
	case LitNumber:
		return trimFloat(l.Num)
	case LitTimestamp:
		return l.Time.UTC().Format(time.RFC3339Nano)
	default:
		return ""
	}
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
