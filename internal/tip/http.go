package tip

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/storage"
)

// API is the HTTP front of a Service, mirroring the MISP REST surface the
// platform uses (PyMISP in the paper):
//
//	POST   /events                      store an event (wrapped or bare)
//	POST   /events/batch                store an array of events (group commit)
//	GET    /events?since=RFC3339&after=UUID&limit=N
//	                                    list events, paginated (default
//	                                    limit 1000, max 5000); the
//	                                    X-CAISP-More response header
//	                                    reports whether pages remain
//	GET    /events/{uuid}               fetch one event
//	DELETE /events/{uuid}               remove one event
//	GET    /events/{uuid}/export?format=misp|stix2|csv
//	POST   /events/search               run a SearchQuery
//	POST   /import/stix                 import a STIX 2.0 bundle
//	GET    /stats                       instance counters
//
// Authentication follows MISP: an API key in the Authorization header.
type API struct {
	service *Service
	apiKey  string
	mux     *http.ServeMux
}

// NewAPI builds the HTTP handler. An empty apiKey disables authentication.
func NewAPI(service *Service, apiKey string) *API {
	a := &API{service: service, apiKey: apiKey, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /events", a.handleAddEvent)
	a.mux.HandleFunc("POST /events/batch", a.handleAddEventBatch)
	a.mux.HandleFunc("GET /events", a.handleListEvents)
	a.mux.HandleFunc("GET /events/changes", a.handleListChanges)
	a.mux.HandleFunc("GET /events/{uuid}", a.handleGetEvent)
	a.mux.HandleFunc("DELETE /events/{uuid}", a.handleDeleteEvent)
	a.mux.HandleFunc("GET /events/{uuid}/export", a.handleExport)
	a.mux.HandleFunc("POST /events/search", a.handleSearch)
	a.mux.HandleFunc("POST /import/stix", a.handleImportSTIX)
	a.mux.HandleFunc("GET /stats", a.handleStats)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if a.apiKey != "" && r.Header.Get("Authorization") != a.apiKey {
		httpError(w, http.StatusUnauthorized, "invalid or missing API key")
		return
	}
	a.mux.ServeHTTP(w, r)
}

func (a *API) handleAddEvent(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	e, err := misp.UnmarshalWrapped(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	correlated, err := a.service.AddEvent(e)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"uuid":       e.UUID,
		"correlated": correlated,
	})
}

// handleAddEventBatch stores a JSON array of (wrapped or bare) events via
// the group-commit path. The response reports the stored UUIDs and any
// per-event rejection messages; the batch succeeds as long as the valid
// subset was committed.
func (a *API) handleAddEventBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		httpError(w, http.StatusBadRequest, "batch must be a JSON array: "+err.Error())
		return
	}
	events := make([]*misp.Event, 0, len(raw))
	var rejected []string
	for _, item := range raw {
		e, err := misp.UnmarshalWrapped(item)
		if err != nil {
			rejected = append(rejected, err.Error())
			continue
		}
		events = append(events, e)
	}
	stored, err := a.service.AddEvents(events)
	if err != nil && len(stored) == 0 && len(events) > 0 {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err != nil {
		rejected = append(rejected, err.Error())
	}
	uuids := make([]string, 0, len(stored))
	for _, e := range stored {
		uuids = append(uuids, e.UUID)
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"stored":   uuids,
		"rejected": rejected,
	})
}

// Pagination bounds for GET /events: requests without a limit get
// defaultPageLimit, and no request may ask for more than maxPageLimit
// events in one response.
const (
	defaultPageLimit = 1000
	maxPageLimit     = 5000
)

// MoreHeader is the GET /events response header reporting whether pages
// remain beyond the returned one ("true"/"false").
const MoreHeader = "X-CAISP-More"

// SeqHeader is the GET /events/changes response header carrying the
// ingest sequence the next page should resume after.
const SeqHeader = "X-CAISP-Seq"

func (a *API) handleListEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since := time.Time{}
	if raw := q.Get("since"); raw != "" {
		parsed, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad since parameter")
			return
		}
		since = parsed
	}
	limit := defaultPageLimit
	if raw := q.Get("limit"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad limit parameter")
			return
		}
		limit = parsed
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	events, more, err := a.service.EventsPage(since, q.Get("after"), limit)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set(MoreHeader, strconv.FormatBool(more))
	a.writeEventList(w, r, events)
}

// wireTombstone is the deletion item on GET /events/changes pages: the
// tombstoned UUID plus the deletion wall time (Unix seconds) importers
// compare against a concurrent edit. It rides under an "EventTombstone"
// key, so clients predating tombstones decode it as a wrapped item with
// a nil Event and skip it.
type wireTombstone struct {
	UUID      string `json:"uuid"`
	DeletedAt int64  `json:"deleted_at"`
}

// wireTombstoneItem is one tombstone element of a change-page array.
type wireTombstoneItem struct {
	EventTombstone wireTombstone `json:"EventTombstone"`
}

// handleListChanges serves the ingest-sequence change feed the mesh
// replicates over: GET /events/changes?after=<seq>&limit=<n>. The
// response carries the resume sequence in SeqHeader and the usual
// MoreHeader pagination flag. Page items are either wrapped events or
// EventTombstone deletion markers.
func (a *API) handleListChanges(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var after uint64
	if raw := q.Get("after"); raw != "" {
		parsed, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad after parameter")
			return
		}
		after = parsed
	}
	limit := defaultPageLimit
	if raw := q.Get("limit"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad limit parameter")
			return
		}
		limit = parsed
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	changes, next, more, err := a.service.Changes(after, limit)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set(SeqHeader, strconv.FormatUint(next, 10))
	w.Header().Set(MoreHeader, strconv.FormatBool(more))
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, c := range changes {
		var data []byte
		var err error
		if c.Event != nil {
			data, err = a.service.WrappedJSONFor(c.Event)
			if err == nil && c.Prov != nil {
				data, err = spliceProvenance(data, c.Prov)
			}
		} else {
			data, err = json.Marshal(wireTombstoneItem{EventTombstone: wireTombstone{
				UUID: c.UUID, DeletedAt: c.DeletedAt.Unix()}})
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(data)
	}
	buf.WriteString("]\n")
	a.writeListBuffer(w, r, &buf)
}

// spliceProvenance grafts a "Provenance" sibling onto a cached
// {"Event":…} wire object without re-marshaling the event, preserving
// the encode-once read path. Clients that predate provenance ignore the
// extra key; tombstone-aware clients decode it next to the Event.
func spliceProvenance(wrapped []byte, p *obs.Provenance) ([]byte, error) {
	pj, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimRight(wrapped, " \t\r\n")
	if len(trimmed) < 2 || trimmed[len(trimmed)-1] != '}' {
		return nil, fmt.Errorf("tip: malformed cached event encoding")
	}
	out := make([]byte, 0, len(trimmed)+len(pj)+len(provenanceKey)+4)
	out = append(out, trimmed[:len(trimmed)-1]...)
	out = append(out, ',', '"')
	out = append(out, provenanceKey...)
	out = append(out, '"', ':')
	out = append(out, pj...)
	out = append(out, '}')
	return out, nil
}

// provenanceKey is the change-page sibling key carrying an event's
// cross-node trace context.
const provenanceKey = "Provenance"

func (a *API) handleGetEvent(w http.ResponseWriter, r *http.Request) {
	e, err := a.service.GetEvent(r.PathValue("uuid"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotFound) {
			status = http.StatusNotFound
		}
		httpError(w, status, err.Error())
		return
	}
	data, err := a.service.WrappedJSONFor(e)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeRawJSON(w, http.StatusOK, data)
}

func (a *API) handleDeleteEvent(w http.ResponseWriter, r *http.Request) {
	err := a.service.DeleteEvent(r.PathValue("uuid"))
	if errors.Is(err, storage.ErrNotFound) {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("uuid")})
}

func (a *API) handleExport(w http.ResponseWriter, r *http.Request) {
	e, err := a.service.GetEvent(r.PathValue("uuid"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, storage.ErrNotFound) {
			status = http.StatusNotFound
		}
		httpError(w, status, err.Error())
		return
	}
	format := r.URL.Query().Get("format")
	if format == FormatMISPJSON || format == "" {
		// The native format is served straight from the store's
		// encode-once cache.
		data, err := a.service.WrappedJSONFor(e)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeRawJSON(w, http.StatusOK, data)
		return
	}
	data, contentType, err := Export(e, format)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (a *API) handleSearch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	var q SearchQuery
	if err := json.Unmarshal(body, &q); err != nil {
		httpError(w, http.StatusBadRequest, "bad search query: "+err.Error())
		return
	}
	events, err := a.service.Search(q)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	a.writeEventList(w, r, events)
}

func (a *API) handleImportSTIX(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	e, err := ImportSTIX(body, time.Now().UTC())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	correlated, err := a.service.AddEvent(e)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"uuid":       e.UUID,
		"correlated": correlated,
	})
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(MarshalStats(a.service.Stats()))
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return nil, err
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		httpError(w, http.StatusBadRequest, "empty body")
		return nil, fmt.Errorf("tip: empty body")
	}
	return body, nil
}

// gzipMinBytes is the smallest event-list payload worth compressing:
// below it the gzip header and flush overhead outweigh the wire savings.
const gzipMinBytes = 1 << 10

// writeEventList streams a JSON array of wrapped events, splicing each
// event's cached wire encoding instead of re-marshaling it. Payloads
// above gzipMinBytes are gzip-compressed when the request advertises
// Accept-Encoding: gzip — replication pages are highly repetitive JSON,
// so sync traffic between mesh peers typically shrinks ~10×.
func (a *API) writeEventList(w http.ResponseWriter, r *http.Request, events []*misp.Event) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, e := range events {
		data, err := a.service.WrappedJSONFor(e)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(data)
	}
	buf.WriteString("]\n")
	a.writeListBuffer(w, r, &buf)
}

// writeListBuffer flushes an assembled JSON list, gzip-compressing
// payloads above gzipMinBytes when the request allows it.
func (a *API) writeListBuffer(w http.ResponseWriter, r *http.Request, buf *bytes.Buffer) {
	w.Header().Set("Content-Type", "application/json")
	if buf.Len() >= gzipMinBytes && acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		w.WriteHeader(http.StatusOK)
		gz := gzip.NewWriter(w)
		_, _ = gz.Write(buf.Bytes())
		_ = gz.Close()
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// acceptsGzip reports whether the request allows a gzip response body.
func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc = strings.TrimSpace(enc)
		if enc == "gzip" || strings.HasPrefix(enc, "gzip;") {
			return true
		}
	}
	return false
}

// writeRawJSON writes pre-encoded (possibly cached, shared) JSON bytes.
func writeRawJSON(w http.ResponseWriter, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
	_, _ = w.Write([]byte{'\n'})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
