package tip

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/stix"
)

// Export formats provided by the instance's export modules. MISP "comes
// out with the possibility of exporting internal stored information" in
// several standards (§III-C2); the converters here are the equivalents.
const (
	FormatMISPJSON = "misp"
	FormatSTIX2    = "stix2"
	FormatCSV      = "csv"
)

// ExportFormats lists supported formats.
var ExportFormats = []string{FormatMISPJSON, FormatSTIX2, FormatCSV}

// Export renders an event in the requested format.
func Export(e *misp.Event, format string) ([]byte, string, error) {
	switch format {
	case FormatMISPJSON, "":
		data, err := misp.MarshalWrapped(e)
		return data, "application/json", err
	case FormatSTIX2:
		bundle, err := misp.ToSTIX(e)
		if err != nil {
			return nil, "", err
		}
		data, err := json.Marshal(bundle)
		return data, "application/json", err
	case FormatCSV:
		data, err := exportCSV(e)
		return data, "text/csv", err
	default:
		return nil, "", fmt.Errorf("tip: unknown export format %q", format)
	}
}

// ImportSTIX converts a STIX 2.0 bundle into a MISP event for storage.
func ImportSTIX(data []byte, now time.Time) (*misp.Event, error) {
	bundle, err := stix.ParseBundle(data)
	if err != nil {
		return nil, err
	}
	return misp.FromSTIX(bundle, now)
}

func exportCSV(e *misp.Event) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write([]string{"uuid", "type", "category", "value", "comment", "to_ids", "timestamp"}); err != nil {
		return nil, err
	}
	for _, a := range e.Attributes {
		toIDS := "0"
		if a.ToIDS {
			toIDS = "1"
		}
		row := []string{
			a.UUID, a.Type, a.Category, a.Value, a.Comment, toIDS,
			a.Timestamp.UTC().Format(time.RFC3339),
		}
		if err := w.Write(row); err != nil {
			return nil, err
		}
	}
	w.Flush()
	return buf.Bytes(), w.Error()
}
