package tip

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// Client talks to a TIP instance's REST API — the role PyMISP plays in the
// paper's information-sharing process (§IV-A).
type Client struct {
	baseURL string
	apiKey  string
	http    *http.Client
}

// NewClient builds a client for the instance at baseURL.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{
		baseURL: baseURL,
		apiKey:  apiKey,
		http:    &http.Client{Timeout: 30 * time.Second},
	}
}

// AddEvent stores an event remotely and returns the correlated UUIDs.
func (c *Client) AddEvent(e *misp.Event) ([]string, error) {
	body, err := misp.MarshalWrapped(e)
	if err != nil {
		return nil, err
	}
	var resp struct {
		UUID       string   `json:"uuid"`
		Correlated []string `json:"correlated"`
	}
	if err := c.do(http.MethodPost, "/events", body, &resp); err != nil {
		return nil, err
	}
	return resp.Correlated, nil
}

// AddEvents stores a batch of events remotely through the group-commit
// endpoint and returns the UUIDs actually stored. Per-event rejections do
// not fail the call; they are reported as a joined error alongside the
// stored UUIDs.
func (c *Client) AddEvents(events []*misp.Event) ([]string, error) {
	wrapped := make([]misp.Wrapped, 0, len(events))
	for _, e := range events {
		wrapped = append(wrapped, misp.Wrapped{Event: e})
	}
	body, err := json.Marshal(wrapped)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Stored   []string `json:"stored"`
		Rejected []string `json:"rejected"`
	}
	if err := c.do(http.MethodPost, "/events/batch", body, &resp); err != nil {
		return nil, err
	}
	if len(resp.Rejected) > 0 {
		return resp.Stored, fmt.Errorf("tip: batch rejected %d event(s): %s",
			len(resp.Rejected), strings.Join(resp.Rejected, "; "))
	}
	return resp.Stored, nil
}

// GetEvent fetches one event by UUID.
func (c *Client) GetEvent(uuid string) (*misp.Event, error) {
	var wrapped misp.Wrapped
	if err := c.do(http.MethodGet, "/events/"+url.PathEscape(uuid), nil, &wrapped); err != nil {
		return nil, err
	}
	if wrapped.Event == nil {
		return nil, fmt.Errorf("tip: empty event payload")
	}
	return wrapped.Event, nil
}

// DeleteEvent removes one event by UUID.
func (c *Client) DeleteEvent(uuid string) error {
	return c.do(http.MethodDelete, "/events/"+url.PathEscape(uuid), nil, nil)
}

// Search runs a query remotely.
func (c *Client) Search(q SearchQuery) ([]*misp.Event, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	var wrapped []misp.Wrapped
	if err := c.do(http.MethodPost, "/events/search", body, &wrapped); err != nil {
		return nil, err
	}
	return unwrap(wrapped), nil
}

// EventsPage fetches one page of up to limit events updated at or after
// t, resuming strictly past the cursor (t, afterUUID) when afterUUID is
// non-empty. The second result reports whether more pages remain (from
// the X-CAISP-More response header).
func (c *Client) EventsPage(t time.Time, afterUUID string, limit int) ([]*misp.Event, bool, error) {
	q := url.Values{}
	if !t.IsZero() {
		q.Set("since", t.UTC().Format(time.RFC3339))
	}
	if afterUUID != "" {
		q.Set("after", afterUUID)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/events"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var wrapped []misp.Wrapped
	hdr, err := c.doHeader(http.MethodGet, path, nil, &wrapped)
	if err != nil {
		return nil, false, err
	}
	return unwrap(wrapped), hdr.Get(MoreHeader) == "true", nil
}

// EventsSince lists events updated at or after t, paging through the
// remote instance until the backlog is exhausted.
func (c *Client) EventsSince(t time.Time) ([]*misp.Event, error) {
	var (
		out    []*misp.Event
		cursor = t
		after  string
	)
	for {
		events, more, err := c.EventsPage(cursor, after, syncPageSize)
		if err != nil {
			return out, err
		}
		out = append(out, events...)
		if !more || len(events) == 0 {
			return out, nil
		}
		last := events[len(events)-1]
		cursor, after = last.Timestamp.Time, last.UUID
	}
}

// Export retrieves one event in the requested format.
func (c *Client) Export(uuid, format string) ([]byte, error) {
	req, err := c.request(http.MethodGet,
		"/events/"+url.PathEscape(uuid)+"/export?format="+url.QueryEscape(format), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tip: export status %s: %s", resp.Status, data)
	}
	return data, nil
}

// ImportSTIX uploads a STIX 2.0 bundle for storage; it returns the UUID of
// the stored event.
func (c *Client) ImportSTIX(bundle []byte) (string, error) {
	var resp struct {
		UUID string `json:"uuid"`
	}
	if err := c.do(http.MethodPost, "/import/stix", bundle, &resp); err != nil {
		return "", err
	}
	return resp.UUID, nil
}

// Stats fetches instance counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	if err := c.do(http.MethodGet, "/stats", nil, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

func (c *Client) do(method, path string, body []byte, out any) error {
	_, err := c.doHeader(method, path, body, out)
	return err
}

// doHeader is do plus access to the response headers (pagination state).
func (c *Client) doHeader(method, path string, body []byte, out any) (http.Header, error) {
	req, err := c.request(method, path, body)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("tip: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, fmt.Errorf("tip: read response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("tip: %s %s: %s (status %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("tip: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return resp.Header, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return nil, fmt.Errorf("tip: decode response: %w", err)
	}
	return resp.Header, nil
}

func (c *Client) request(method, path string, body []byte) (*http.Request, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.baseURL+path, reader)
	if err != nil {
		return nil, fmt.Errorf("tip: build request: %w", err)
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", c.apiKey)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req, nil
}

func unwrap(wrapped []misp.Wrapped) []*misp.Event {
	out := make([]*misp.Event, 0, len(wrapped))
	for _, w := range wrapped {
		if w.Event != nil {
			out = append(out, w.Event)
		}
	}
	return out
}
