package tip

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/storage"
)

// defaultRequestTimeout bounds each request issued by a Client when the
// caller's context carries no deadline of its own. Without it a hung
// remote (accepted connection, no response) would wedge a mesh sync
// worker forever; with it the worker gets an error and backs off.
const defaultRequestTimeout = 30 * time.Second

// Client talks to a TIP instance's REST API — the role PyMISP plays in the
// paper's information-sharing process (§IV-A). Every method takes a
// context; when the context has no deadline the client applies its
// per-request timeout (WithRequestTimeout, 30s by default) so no call can
// block indefinitely on an unresponsive peer.
type Client struct {
	baseURL    string
	apiKey     string
	http       *http.Client
	reqTimeout time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRequestTimeout sets the deadline applied to each request whose
// context does not already carry one. Zero disables the default and
// leaves deadline control entirely to the caller's context.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.reqTimeout = d }
}

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, TLS configuration, test doubles).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// NewClient builds a client for the instance at baseURL.
func NewClient(baseURL, apiKey string, opts ...ClientOption) *Client {
	c := &Client{
		baseURL:    baseURL,
		apiKey:     apiKey,
		http:       &http.Client{},
		reqTimeout: defaultRequestTimeout,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// withDeadline applies the client's default per-request timeout when ctx
// has none of its own.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := ctx.Deadline(); !ok && c.reqTimeout > 0 {
		return context.WithTimeout(ctx, c.reqTimeout)
	}
	return ctx, func() {}
}

// AddEvent stores an event remotely and returns the correlated UUIDs.
func (c *Client) AddEvent(ctx context.Context, e *misp.Event) ([]string, error) {
	body, err := misp.MarshalWrapped(e)
	if err != nil {
		return nil, err
	}
	var resp struct {
		UUID       string   `json:"uuid"`
		Correlated []string `json:"correlated"`
	}
	if err := c.do(ctx, http.MethodPost, "/events", body, &resp); err != nil {
		return nil, err
	}
	return resp.Correlated, nil
}

// AddEvents stores a batch of events remotely through the group-commit
// endpoint and returns the UUIDs actually stored. Per-event rejections do
// not fail the call; they are reported as a joined error alongside the
// stored UUIDs.
func (c *Client) AddEvents(ctx context.Context, events []*misp.Event) ([]string, error) {
	wrapped := make([]misp.Wrapped, 0, len(events))
	for _, e := range events {
		wrapped = append(wrapped, misp.Wrapped{Event: e})
	}
	body, err := json.Marshal(wrapped)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Stored   []string `json:"stored"`
		Rejected []string `json:"rejected"`
	}
	if err := c.do(ctx, http.MethodPost, "/events/batch", body, &resp); err != nil {
		return nil, err
	}
	if len(resp.Rejected) > 0 {
		return resp.Stored, fmt.Errorf("tip: batch rejected %d event(s): %s",
			len(resp.Rejected), strings.Join(resp.Rejected, "; "))
	}
	return resp.Stored, nil
}

// GetEvent fetches one event by UUID.
func (c *Client) GetEvent(ctx context.Context, uuid string) (*misp.Event, error) {
	var wrapped misp.Wrapped
	if err := c.do(ctx, http.MethodGet, "/events/"+url.PathEscape(uuid), nil, &wrapped); err != nil {
		return nil, err
	}
	if wrapped.Event == nil {
		return nil, fmt.Errorf("tip: empty event payload")
	}
	return wrapped.Event, nil
}

// DeleteEvent removes one event by UUID.
func (c *Client) DeleteEvent(ctx context.Context, uuid string) error {
	return c.do(ctx, http.MethodDelete, "/events/"+url.PathEscape(uuid), nil, nil)
}

// Search runs a query remotely.
func (c *Client) Search(ctx context.Context, q SearchQuery) ([]*misp.Event, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	var wrapped []misp.Wrapped
	if err := c.do(ctx, http.MethodPost, "/events/search", body, &wrapped); err != nil {
		return nil, err
	}
	return unwrap(wrapped), nil
}

// EventsPage fetches one page of up to limit events updated at or after
// t, resuming strictly past the cursor (t, afterUUID) when afterUUID is
// non-empty. The second result reports whether more pages remain (from
// the X-CAISP-More response header). The underlying transport negotiates
// gzip transparently, so large pages travel compressed on the wire.
func (c *Client) EventsPage(ctx context.Context, t time.Time, afterUUID string, limit int) ([]*misp.Event, bool, error) {
	q := url.Values{}
	if !t.IsZero() {
		q.Set("since", t.UTC().Format(time.RFC3339))
	}
	if afterUUID != "" {
		q.Set("after", afterUUID)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/events"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var wrapped []misp.Wrapped
	hdr, err := c.doHeader(ctx, http.MethodGet, path, nil, &wrapped)
	if err != nil {
		return nil, false, err
	}
	return unwrap(wrapped), hdr.Get(MoreHeader) == "true", nil
}

// ChangesPage fetches one page of the remote's ingest-sequence change
// feed, strictly after afterSeq. It returns the events, the sequence to
// resume the next page after (from the X-CAISP-Seq header) and whether
// more entries remain. The feed is what mesh replication cursors page
// over — see Service.ChangesPage for why it is sound where the
// (timestamp, uuid) index is not.
func (c *Client) ChangesPage(ctx context.Context, afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error) {
	q := url.Values{}
	if afterSeq > 0 {
		q.Set("after", strconv.FormatUint(afterSeq, 10))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/events/changes"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var wrapped []misp.Wrapped
	hdr, err := c.doHeader(ctx, http.MethodGet, path, nil, &wrapped)
	if err != nil {
		return nil, afterSeq, false, err
	}
	next, err := strconv.ParseUint(hdr.Get(SeqHeader), 10, 64)
	if err != nil {
		return nil, afterSeq, false, fmt.Errorf("tip: bad %s header %q", SeqHeader, hdr.Get(SeqHeader))
	}
	return unwrap(wrapped), next, hdr.Get(MoreHeader) == "true", nil
}

// changeItem decodes one change-page element: a wrapped event or an
// EventTombstone deletion marker, optionally carrying the event's
// replication provenance (absent from servers that predate it).
type changeItem struct {
	Event          *misp.Event     `json:"Event"`
	EventTombstone *wireTombstone  `json:"EventTombstone"`
	Provenance     *obs.Provenance `json:"Provenance"`
}

// Changes is ChangesPage with deletions included: tombstone items on
// the page decode into event-less storage.Change entries carrying the
// deleted UUID and deletion time. Wire items carry no per-entry
// sequence, so Change.Seq is zero; the page cursor rides in the
// returned next sequence as usual.
func (c *Client) Changes(ctx context.Context, afterSeq uint64, limit int) ([]storage.Change, uint64, bool, error) {
	q := url.Values{}
	if afterSeq > 0 {
		q.Set("after", strconv.FormatUint(afterSeq, 10))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/events/changes"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var items []changeItem
	hdr, err := c.doHeader(ctx, http.MethodGet, path, nil, &items)
	if err != nil {
		return nil, afterSeq, false, err
	}
	next, err := strconv.ParseUint(hdr.Get(SeqHeader), 10, 64)
	if err != nil {
		return nil, afterSeq, false, fmt.Errorf("tip: bad %s header %q", SeqHeader, hdr.Get(SeqHeader))
	}
	out := make([]storage.Change, 0, len(items))
	for _, item := range items {
		switch {
		case item.Event != nil:
			out = append(out, storage.Change{UUID: item.Event.UUID, Event: item.Event, Prov: item.Provenance})
		case item.EventTombstone != nil && item.EventTombstone.UUID != "":
			out = append(out, storage.Change{
				UUID:      item.EventTombstone.UUID,
				DeletedAt: time.Unix(item.EventTombstone.DeletedAt, 0).UTC(),
			})
		}
	}
	return out, next, hdr.Get(MoreHeader) == "true", nil
}

// EventsSince lists events updated at or after t, paging through the
// remote instance until the backlog is exhausted.
func (c *Client) EventsSince(ctx context.Context, t time.Time) ([]*misp.Event, error) {
	var (
		out    []*misp.Event
		cursor = t
		after  string
	)
	for {
		events, more, err := c.EventsPage(ctx, cursor, after, syncPageSize)
		if err != nil {
			return out, err
		}
		out = append(out, events...)
		if !more || len(events) == 0 {
			return out, nil
		}
		last := events[len(events)-1]
		cursor, after = last.Timestamp.Time, last.UUID
	}
}

// Export retrieves one event in the requested format.
func (c *Client) Export(ctx context.Context, uuid, format string) ([]byte, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := c.request(ctx, http.MethodGet,
		"/events/"+url.PathEscape(uuid)+"/export?format="+url.QueryEscape(format), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("tip: export status %s: %s", resp.Status, data)
	}
	return data, nil
}

// ImportSTIX uploads a STIX 2.0 bundle for storage; it returns the UUID of
// the stored event.
func (c *Client) ImportSTIX(ctx context.Context, bundle []byte) (string, error) {
	var resp struct {
		UUID string `json:"uuid"`
	}
	if err := c.do(ctx, http.MethodPost, "/import/stix", bundle, &resp); err != nil {
		return "", err
	}
	return resp.UUID, nil
}

// Stats fetches instance counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	_, err := c.doHeader(ctx, method, path, body, out)
	return err
}

// doHeader is do plus access to the response headers (pagination state).
func (c *Client) doHeader(ctx context.Context, method, path string, body []byte, out any) (http.Header, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := c.request(ctx, method, path, body)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("tip: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, fmt.Errorf("tip: read response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("tip: %s %s: %s (status %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("tip: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return resp.Header, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return nil, fmt.Errorf("tip: decode response: %w", err)
	}
	return resp.Header, nil
}

func (c *Client) request(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, reader)
	if err != nil {
		return nil, fmt.Errorf("tip: build request: %w", err)
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", c.apiKey)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req, nil
}

func unwrap(wrapped []misp.Wrapped) []*misp.Event {
	out := make([]*misp.Event, 0, len(wrapped))
	for _, w := range wrapped {
		if w.Event != nil {
			out = append(out, w.Event)
		}
	}
	return out
}
