package tip

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// seedEvents stores n events with identical timestamps — the worst case
// for a time-based cursor, where only the UUID tiebreak prevents pages
// from skipping or repeating entries.
func seedEvents(t *testing.T, s *Service, n int) map[string]bool {
	t.Helper()
	batch := make([]*misp.Event, n)
	for i := range batch {
		batch[i] = sampleEvent(t, "evt", "h.example")
	}
	if _, err := s.AddEvents(batch); err != nil {
		t.Fatal(err)
	}
	uuids := make(map[string]bool, n)
	for _, e := range batch {
		uuids[e.UUID] = true
	}
	return uuids
}

func TestEventsPageCursorCoversAllTies(t *testing.T) {
	s := newService(t)
	want := seedEvents(t, s, 23)
	var (
		got    = make(map[string]bool)
		cursor time.Time
		after  string
		pages  int
	)
	for {
		events, more, err := s.EventsPage(cursor, after, 5)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, e := range events {
			if got[e.UUID] {
				t.Fatalf("page %d repeated event %s", pages, e.UUID)
			}
			got[e.UUID] = true
		}
		if !more || len(events) == 0 {
			break
		}
		last := events[len(events)-1]
		cursor, after = last.Timestamp.Time, last.UUID
	}
	if len(got) != len(want) {
		t.Fatalf("paged %d events across %d pages, want %d", len(got), pages, len(want))
	}
	if pages != 5 {
		t.Fatalf("pages = %d, want 5 for 23 events at limit 5", pages)
	}
}

func TestHTTPListEventsPagination(t *testing.T) {
	s := newService(t)
	seedEvents(t, s, 7)
	srv := httptest.NewServer(NewAPI(s, ""))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events?limit=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(MoreHeader); got != "true" {
		t.Fatalf("%s = %q, want true with 7 events at limit 3", MoreHeader, got)
	}

	// The full list fits the default cap: no more pages.
	resp, err = http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(MoreHeader); got != "false" {
		t.Fatalf("%s = %q, want false without a limit", MoreHeader, got)
	}

	for _, bad := range []string{"limit=0", "limit=-3", "limit=x"} {
		resp, err := http.Get(srv.URL + "/events?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestClientEventsSincePagesThroughBacklog(t *testing.T) {
	s := newService(t)
	want := seedEvents(t, s, 12)
	srv := httptest.NewServer(NewAPI(s, ""))
	defer srv.Close()
	c := NewClient(srv.URL, "")

	page, more, err := c.EventsPage(t.Context(), time.Time{}, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 5 || !more {
		t.Fatalf("EventsPage = %d events, more=%v; want 5, true", len(page), more)
	}

	all, err := c.EventsSince(t.Context(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(want) {
		t.Fatalf("EventsSince = %d events, want %d", len(all), len(want))
	}
	for _, e := range all {
		if !want[e.UUID] {
			t.Fatalf("unexpected event %s", e.UUID)
		}
	}
}

func TestSyncFromPagesThroughRemote(t *testing.T) {
	old := syncPageSize
	syncPageSize = 5
	t.Cleanup(func() { syncPageSize = old })
	remote := newService(t, WithName("remote"))
	want := seedEvents(t, remote, 17)
	srv := httptest.NewServer(NewAPI(remote, ""))
	defer srv.Close()

	local := newService(t, WithName("local"))
	n, err := local.SyncFrom(t.Context(), NewClient(srv.URL, ""), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || local.Len() != len(want) {
		t.Fatalf("SyncFrom imported %d (stored %d), want %d", n, local.Len(), len(want))
	}
}

func TestStatsCarriesDurabilityCounters(t *testing.T) {
	s := newService(t)
	st := s.Stats()
	// Memory-only store: counters exist and are zero.
	if st.WALBytes != 0 || st.WALSegments != 0 || st.Compactions != 0 || st.LastCompactionMS != 0 {
		t.Fatalf("memory-only durability stats not zero: %+v", st)
	}
}
