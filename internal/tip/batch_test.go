package tip

import (
	"net/http/httptest"
	"testing"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/misp"
)

func TestAddEventsStoresBatchAndPublishes(t *testing.T) {
	broker := bus.NewBroker()
	t.Cleanup(broker.Close)
	sub := broker.Subscribe(TopicEventAdd)
	s := newService(t, WithBroker(broker))

	batch := []*misp.Event{
		sampleEvent(t, "a", "a.example"),
		sampleEvent(t, "b", "b.example"),
		sampleEvent(t, "c", "c.example"),
	}
	stored, err := s.AddEvents(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 3 || s.Len() != 3 {
		t.Fatalf("stored = %d, len = %d", len(stored), s.Len())
	}
	for range batch {
		msg := <-sub.C()
		if msg.Topic != TopicEventAdd {
			t.Fatalf("topic = %q", msg.Topic)
		}
		if _, err := misp.UnmarshalWrapped(msg.Payload); err != nil {
			t.Fatalf("published payload undecodable: %v", err)
		}
	}
}

func TestAddEventsPartialFailure(t *testing.T) {
	s := newService(t)
	bad := sampleEvent(t, "bad", "bad.example")
	bad.UUID = "not-a-uuid"
	stored, err := s.AddEvents([]*misp.Event{
		sampleEvent(t, "good-1", "g1.example"),
		bad,
		nil,
		sampleEvent(t, "good-2", "g2.example"),
	})
	if err == nil {
		t.Fatal("invalid events produced no error")
	}
	if len(stored) != 2 || s.Len() != 2 {
		t.Fatalf("valid subset not stored: stored=%d len=%d", len(stored), s.Len())
	}
}

func TestAddEventsEditTopic(t *testing.T) {
	broker := bus.NewBroker()
	t.Cleanup(broker.Close)
	edits := broker.Subscribe(TopicEventEdit)
	s := newService(t, WithBroker(broker))

	e := sampleEvent(t, "evt", "evt.example")
	if _, err := s.AddEvents([]*misp.Event{e}); err != nil {
		t.Fatal(err)
	}
	// Re-storing the same UUID must announce an edit, not an add.
	if _, err := s.AddEvents([]*misp.Event{e}); err != nil {
		t.Fatal(err)
	}
	msg := <-edits.C()
	if msg.Topic != TopicEventEdit {
		t.Fatalf("topic = %q", msg.Topic)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestHTTPBatchRoundTrip(t *testing.T) {
	s := newService(t)
	srv := httptest.NewServer(NewAPI(s, "key"))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, "key")

	batch := []*misp.Event{
		sampleEvent(t, "a", "a.example"),
		sampleEvent(t, "b", "b.example"),
	}
	uuids, err := client.AddEvents(t.Context(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(uuids) != 2 {
		t.Fatalf("stored uuids = %v", uuids)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	for _, u := range uuids {
		if _, err := client.GetEvent(t.Context(), u); err != nil {
			t.Fatalf("stored event %s unreadable: %v", u, err)
		}
	}
}

func TestHTTPBatchPartialRejection(t *testing.T) {
	s := newService(t)
	srv := httptest.NewServer(NewAPI(s, ""))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, "")

	bad := sampleEvent(t, "bad", "bad.example")
	bad.UUID = "not-a-uuid"
	uuids, err := client.AddEvents(t.Context(), []*misp.Event{sampleEvent(t, "good", "good.example"), bad})
	if err == nil {
		t.Fatal("rejection not reported")
	}
	if len(uuids) != 1 || s.Len() != 1 {
		t.Fatalf("valid subset not stored: %v, len=%d", uuids, s.Len())
	}
}

func TestHTTPBatchRejectsNonArray(t *testing.T) {
	s := newService(t)
	srv := httptest.NewServer(NewAPI(s, ""))
	t.Cleanup(srv.Close)
	resp, err := srv.Client().Post(srv.URL+"/events/batch", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("empty body status = %d", resp.StatusCode)
	}
}
