package tip

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestChangesPageEndToEnd drives the ingest-sequence feed over real
// HTTP through the client, with every event sharing one timestamp —
// the case the (timestamp, uuid) cursor cannot page soundly on a mesh.
func TestChangesPageEndToEnd(t *testing.T) {
	s := newService(t)
	want := seedEvents(t, s, 23)
	srv := httptest.NewServer(NewAPI(s, ""))
	defer srv.Close()
	c := NewClient(srv.URL, "")

	var (
		got   = make(map[string]bool)
		after uint64
		pages int
	)
	for {
		events, next, more, err := c.ChangesPage(t.Context(), after, 5)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, e := range events {
			if got[e.UUID] {
				t.Fatalf("page %d repeated event %s", pages, e.UUID)
			}
			got[e.UUID] = true
		}
		if !more {
			break
		}
		after = next
		if len(events) == 0 {
			t.Fatal("non-final page returned no events")
		}
	}
	if len(got) != len(want) || pages != 5 {
		t.Fatalf("paged %d events in %d pages, want %d in 5", len(got), pages, len(want))
	}

	// Past the head: an empty page, more=false, and the cursor holds.
	events, next, more, err := c.ChangesPage(t.Context(), 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 || more || next != 1000 {
		t.Fatalf("past-head page: %d events, more=%v, next=%d", len(events), more, next)
	}
}

func TestChangesEndpointRejectsBadParams(t *testing.T) {
	s := newService(t)
	srv := httptest.NewServer(NewAPI(s, ""))
	defer srv.Close()
	for _, bad := range []string{"after=-1", "after=x", "limit=0", "limit=x"} {
		resp, err := http.Get(srv.URL + "/events/changes?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestEventListGzip checks the negotiated compression on both list
// surfaces: large pages travel gzip-encoded, small ones and clients
// without Accept-Encoding get identity.
func TestEventListGzip(t *testing.T) {
	s := newService(t)
	seedEvents(t, s, 200) // well past gzipMinBytes encoded
	srv := httptest.NewServer(NewAPI(s, ""))
	defer srv.Close()

	// Raw transport: no transparent decompression, headers stay visible.
	raw := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	get := func(path, accept string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequestWithContext(t.Context(), http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept-Encoding", accept)
		}
		resp, err := raw.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	for _, path := range []string{"/events", "/events/changes"} {
		resp, body := get(path, "gzip")
		if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("%s: Content-Encoding = %q, want gzip", path, enc)
		}
		zr, err := gzip.NewReader(strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: decompress: %v", path, err)
		}
		if !strings.Contains(string(plain), `"Event"`) {
			t.Fatalf("%s: decompressed body is not an event list", path)
		}

		resp, body = get(path, "")
		if enc := resp.Header.Get("Content-Encoding"); enc != "" {
			t.Fatalf("%s without Accept-Encoding: Content-Encoding = %q", path, enc)
		}
		if !strings.Contains(string(body), `"Event"`) {
			t.Fatalf("%s: identity body is not an event list", path)
		}
	}

	// A page below the threshold stays identity even when gzip is offered.
	resp, _ := get("/events?limit=1", "gzip")
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("small page compressed: Content-Encoding = %q", enc)
	}
}

// TestClientTransparentGzip confirms the default client decompresses
// negotiated pages invisibly: EventsPage over a large backlog returns
// intact events.
func TestClientTransparentGzip(t *testing.T) {
	s := newService(t)
	want := seedEvents(t, s, 300)
	srv := httptest.NewServer(NewAPI(s, ""))
	defer srv.Close()
	c := NewClient(srv.URL, "")
	events, _, err := c.EventsPage(t.Context(), time.Time{}, "", 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for _, e := range events {
		if !want[e.UUID] {
			t.Fatalf("unknown event %s", e.UUID)
		}
	}
}
