package tip

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/stix"
	"github.com/caisplatform/caisp/internal/storage"
)

var now = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

func newService(t *testing.T, opts ...Option) *Service {
	t.Helper()
	store, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return NewService(store, opts...)
}

func sampleEvent(t testing.TB, info, value string) *misp.Event {
	t.Helper()
	e := misp.NewEvent(info, now)
	e.AddAttribute("domain", "Network activity", value, now)
	return e
}

func TestAddGetDelete(t *testing.T) {
	s := newService(t)
	e := sampleEvent(t, "evt", "evil.example")
	correlated, err := s.AddEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(correlated) != 0 {
		t.Fatalf("first event correlated with %v", correlated)
	}
	got, err := s.GetEvent(e.UUID)
	if err != nil || got.Info != "evt" {
		t.Fatalf("GetEvent = %+v, %v", got, err)
	}
	if err := s.DeleteEvent(e.UUID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetEvent(e.UUID); err == nil {
		t.Fatal("deleted event still readable")
	}
	if _, err := s.AddEvent(nil); err == nil {
		t.Fatal("nil event accepted")
	}
}

func TestAutomaticCorrelation(t *testing.T) {
	s := newService(t)
	a := sampleEvent(t, "a", "shared.example")
	if _, err := s.AddEvent(a); err != nil {
		t.Fatal(err)
	}
	b := sampleEvent(t, "b", "shared.example")
	correlated, err := s.AddEvent(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(correlated) != 1 || correlated[0] != a.UUID {
		t.Fatalf("correlated = %v, want [%s]", correlated, a.UUID)
	}
}

func TestBusPublicationOnAddAndEdit(t *testing.T) {
	broker := bus.NewBroker()
	defer broker.Close()
	sub := broker.Subscribe("misp.")
	s := newService(t, WithBroker(broker), WithName("test-instance"))

	e := sampleEvent(t, "evt", "evil.example")
	if _, err := s.AddEvent(e); err != nil {
		t.Fatal(err)
	}
	msg := <-sub.C()
	if msg.Topic != TopicEventAdd {
		t.Fatalf("topic = %q", msg.Topic)
	}
	decoded, err := misp.UnmarshalWrapped(msg.Payload)
	if err != nil || decoded.UUID != e.UUID {
		t.Fatalf("payload decode = %+v, %v", decoded, err)
	}
	// Re-adding the same UUID is an edit.
	e.Info = "evt v2"
	if _, err := s.AddEvent(e); err != nil {
		t.Fatal(err)
	}
	msg = <-sub.C()
	if msg.Topic != TopicEventEdit {
		t.Fatalf("edit topic = %q", msg.Topic)
	}
}

func TestSearch(t *testing.T) {
	s := newService(t)
	a := sampleEvent(t, "a", "one.example")
	a.AddTag("tlp:red")
	b := sampleEvent(t, "b", "two.example")
	b.AddAttribute("ip-dst", "Network activity", "203.0.113.7", now)
	for _, e := range []*misp.Event{a, b} {
		if _, err := s.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		name string
		q    SearchQuery
		want int
	}{
		{name: "by value", q: SearchQuery{Value: "one.example"}, want: 1},
		{name: "by type", q: SearchQuery{Type: "ip-dst"}, want: 1},
		{name: "by tag", q: SearchQuery{Tag: "tlp:red"}, want: 1},
		{name: "by since match", q: SearchQuery{Since: now.Add(-time.Hour)}, want: 2},
		{name: "by since future", q: SearchQuery{Since: now.Add(time.Hour)}, want: 0},
		{name: "value and tag", q: SearchQuery{Value: "one.example", Tag: "tlp:red"}, want: 1},
		{name: "value and wrong tag", q: SearchQuery{Value: "one.example", Tag: "tlp:green"}, want: 0},
		{name: "all", q: SearchQuery{}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := s.Search(tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tt.want {
				t.Fatalf("got %d events, want %d", len(got), tt.want)
			}
		})
	}
}

func TestExportFormats(t *testing.T) {
	e := sampleEvent(t, "export me", "evil.example")
	e.AddAttribute("vulnerability", "External analysis", "CVE-2017-9805", now)

	mispData, ct, err := Export(e, FormatMISPJSON)
	if err != nil || ct != "application/json" {
		t.Fatalf("misp export: %v %q", err, ct)
	}
	if back, err := misp.UnmarshalWrapped(mispData); err != nil || back.UUID != e.UUID {
		t.Fatalf("misp export round trip failed: %v", err)
	}

	stixData, _, err := Export(e, FormatSTIX2)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := stix.ParseBundle(stixData)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.ByType(stix.TypeVulnerability)) != 1 {
		t.Fatalf("stix export lost the vulnerability: %d objects", len(bundle.Objects))
	}

	csvData, ct, err := Export(e, FormatCSV)
	if err != nil || ct != "text/csv" {
		t.Fatalf("csv export: %v %q", err, ct)
	}
	if !strings.Contains(string(csvData), "evil.example") || !strings.Contains(string(csvData), "CVE-2017-9805") {
		t.Fatalf("csv export missing values:\n%s", csvData)
	}

	if _, _, err := Export(e, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestImportSTIX(t *testing.T) {
	v := stix.NewVulnerability("CVE-2017-9805", "struts", now)
	bundle := stix.NewBundle(v)
	data, err := json.Marshal(bundle)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ImportSTIX(data, now)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.FindAttribute("vulnerability"); got == nil || got.Value != "CVE-2017-9805" {
		t.Fatalf("import lost the vulnerability: %+v", e.Attributes)
	}
	if _, err := ImportSTIX([]byte(`{"bad":`), now); err == nil {
		t.Fatal("garbage bundle accepted")
	}
}

func apiServer(t *testing.T, apiKey string) (*httptest.Server, *Service) {
	t.Helper()
	s := newService(t)
	srv := httptest.NewServer(NewAPI(s, apiKey))
	t.Cleanup(srv.Close)
	return srv, s
}

func TestHTTPRoundTrip(t *testing.T) {
	srv, _ := apiServer(t, "secret-key")
	client := NewClient(srv.URL, "secret-key")

	e := sampleEvent(t, "via http", "http.example")
	if _, err := client.AddEvent(t.Context(), e); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetEvent(t.Context(), e.UUID)
	if err != nil || got.Info != "via http" {
		t.Fatalf("GetEvent = %+v, %v", got, err)
	}
	results, err := client.Search(t.Context(), SearchQuery{Value: "http.example"})
	if err != nil || len(results) != 1 {
		t.Fatalf("Search = %d results, %v", len(results), err)
	}
	listed, err := client.EventsSince(t.Context(), time.Time{})
	if err != nil || len(listed) != 1 {
		t.Fatalf("EventsSince = %d, %v", len(listed), err)
	}
	exported, err := client.Export(t.Context(), e.UUID, FormatSTIX2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stix.ParseBundle(exported); err != nil {
		t.Fatalf("exported bundle invalid: %v", err)
	}
	st, err := client.Stats(t.Context())
	if err != nil || st.Events != 1 {
		t.Fatalf("Stats = %+v, %v", st, err)
	}
	if err := client.DeleteEvent(t.Context(), e.UUID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetEvent(t.Context(), e.UUID); err == nil {
		t.Fatal("deleted event still served")
	}
}

func TestHTTPAuthentication(t *testing.T) {
	srv, _ := apiServer(t, "secret-key")
	bad := NewClient(srv.URL, "wrong-key")
	if _, err := bad.Stats(t.Context()); err == nil || !strings.Contains(err.Error(), "401") && !strings.Contains(err.Error(), "API key") {
		t.Fatalf("wrong key accepted: %v", err)
	}
	missing := NewClient(srv.URL, "")
	if _, err := missing.Stats(t.Context()); err == nil {
		t.Fatal("missing key accepted")
	}
	// Open instance (no key) accepts anonymous calls.
	open, _ := apiServer(t, "")
	anon := NewClient(open.URL, "")
	if _, err := anon.Stats(t.Context()); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := apiServer(t, "")
	client := NewClient(srv.URL, "")
	if _, err := client.GetEvent(t.Context(), "00000000-0000-0000-0000-000000000000"); err == nil {
		t.Fatal("missing event served")
	}
	if err := client.DeleteEvent(t.Context(), "00000000-0000-0000-0000-000000000000"); err == nil {
		t.Fatal("missing event deleted")
	}
	// Bad payloads.
	resp, err := http.Post(srv.URL+"/events", "application/json", strings.NewReader(`{"junk":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad event status = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/events", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/events?since=not-a-time")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since status = %d", resp.StatusCode)
	}
}

func TestHTTPImportSTIX(t *testing.T) {
	srv, service := apiServer(t, "")
	client := NewClient(srv.URL, "")
	v := stix.NewVulnerability("CVE-2019-0001", "test vuln", now)
	data, err := json.Marshal(stix.NewBundle(v))
	if err != nil {
		t.Fatal(err)
	}
	uuid, err := client.ImportSTIX(t.Context(), data)
	if err != nil {
		t.Fatal(err)
	}
	if uuid == "" {
		t.Fatal("no uuid returned")
	}
	if service.Len() != 1 {
		t.Fatalf("service has %d events", service.Len())
	}
}

func TestSyncBetweenInstances(t *testing.T) {
	srvA, serviceA := apiServer(t, "")
	_, serviceB := apiServer(t, "")

	// Instance A holds three events; B pulls them.
	var latest time.Time
	for i, value := range []string{"a.example", "b.example", "c.example"} {
		e := misp.NewEvent("evt", now.Add(time.Duration(i)*time.Minute))
		e.AddAttribute("domain", "Network activity", value, now)
		if _, err := serviceA.AddEvent(e); err != nil {
			t.Fatal(err)
		}
		latest = e.Timestamp.Time
	}
	clientA := NewClient(srvA.URL, "")
	imported, err := serviceB.SyncFrom(t.Context(), clientA, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if imported != 3 || serviceB.Len() != 3 {
		t.Fatalf("imported %d, B has %d", imported, serviceB.Len())
	}
	// Incremental sync: only events at/after the last timestamp.
	e := misp.NewEvent("late", latest.Add(time.Hour))
	e.AddAttribute("domain", "Network activity", "late.example", latest.Add(time.Hour))
	if _, err := serviceA.AddEvent(e); err != nil {
		t.Fatal(err)
	}
	imported, err = serviceB.SyncFrom(t.Context(), clientA, latest.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if imported != 1 || serviceB.Len() != 4 {
		t.Fatalf("incremental imported %d, B has %d", imported, serviceB.Len())
	}
	if serviceA.Stats().Events != 4 {
		t.Fatalf("A stats = %+v", serviceA.Stats())
	}
}

func TestSyncToPushesEvents(t *testing.T) {
	_, producer := apiServer(t, "")
	srvConsumer, consumer := apiServer(t, "push-key")

	for i, value := range []string{"p1.example", "p2.example"} {
		e := misp.NewEvent("pushed", now.Add(time.Duration(i)*time.Minute))
		e.AddAttribute("domain", "Network activity", value, now)
		if _, err := producer.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	exported, err := producer.SyncTo(t.Context(), NewClient(srvConsumer.URL, "push-key"), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if exported != 2 || consumer.Len() != 2 {
		t.Fatalf("exported %d, consumer has %d", exported, consumer.Len())
	}
	// A bad key fails fast with a useful error.
	if _, err := producer.SyncTo(t.Context(), NewClient(srvConsumer.URL, "wrong"), time.Time{}); err == nil {
		t.Fatal("push with wrong key succeeded")
	}
}

func TestSyncToRespectsDistribution(t *testing.T) {
	_, producer := apiServer(t, "")
	srvConsumer, consumer := apiServer(t, "")

	private := misp.NewEvent("org-only intel", now)
	private.Distribution = misp.DistributionOrganisation
	private.AddAttribute("domain", "Network activity", "private.example", now)
	shared := misp.NewEvent("community intel", now)
	shared.AddAttribute("domain", "Network activity", "shared.example", now)
	for _, e := range []*misp.Event{private, shared} {
		if _, err := producer.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	exported, err := producer.SyncTo(t.Context(), NewClient(srvConsumer.URL, ""), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if exported != 1 || consumer.Len() != 1 {
		t.Fatalf("exported %d, consumer has %d (org-only event must stay home)", exported, consumer.Len())
	}
	if _, err := consumer.GetEvent(private.UUID); err == nil {
		t.Fatal("org-only event leaked")
	}
}

func TestHTTPExportFormatsAndErrors(t *testing.T) {
	srv, service := apiServer(t, "")
	e := sampleEvent(t, "exportable", "export.example")
	if _, err := service.AddEvent(e); err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.URL, "")
	// Every supported format over HTTP.
	for _, format := range ExportFormats {
		data, err := client.Export(t.Context(), e.UUID, format)
		if err != nil || len(data) == 0 {
			t.Fatalf("export %s: %v", format, err)
		}
	}
	if _, err := client.Export(t.Context(), e.UUID, "protobuf"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := client.Export(t.Context(), "00000000-0000-0000-0000-000000000000", FormatMISPJSON); err == nil {
		t.Fatal("missing event exported")
	}
}

func TestHTTPSearchBadBody(t *testing.T) {
	srv, _ := apiServer(t, "")
	resp, err := http.Post(srv.URL+"/events/search", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad search status = %d", resp.StatusCode)
	}
	resp2, err := http.Post(srv.URL+"/import/stix", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad import status = %d", resp2.StatusCode)
	}
}

func TestClientConnectionErrors(t *testing.T) {
	dead := NewClient("http://127.0.0.1:1", "")
	if _, err := dead.Stats(t.Context()); err == nil {
		t.Fatal("dead endpoint succeeded")
	}
	if _, err := dead.EventsSince(t.Context(), time.Time{}); err == nil {
		t.Fatal("dead list succeeded")
	}
	if _, err := dead.AddEvent(t.Context(), sampleEvent(t, "x", "x.example")); err == nil {
		t.Fatal("dead add succeeded")
	}
	store, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	local := NewService(store)
	if _, err := local.SyncFrom(t.Context(), dead, time.Time{}); err == nil {
		t.Fatal("sync from dead endpoint succeeded")
	}
}
