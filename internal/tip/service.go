// Package tip implements the threat-intelligence-platform instance at the
// heart of the Operational Module — the stand-in for the paper's MISP
// deployment. It stores MISP-format events in the embedded store, performs
// automatic correlation on insert, publishes every stored OSINT event on
// the message bus for the heuristic component (the paper's zeroMQ
// mechanism, §IV-A), exposes the MISP-like REST API with export modules
// (MISP JSON, STIX 2.0, CSV) and synchronizes events between instances.
package tip

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/storage"
)

// Bus topics published by the service.
const (
	// TopicEventAdd announces newly stored events (wrapped MISP JSON).
	TopicEventAdd = "misp.event.add"
	// TopicEventEdit announces re-stored (updated) events.
	TopicEventEdit = "misp.event.edit"
	// TopicEventPrefix subscribes to both adds and edits (prefix matching).
	TopicEventPrefix = "misp.event."
)

// Service is one TIP instance.
type Service struct {
	store  *storage.Store
	broker *bus.Broker
	logger *slog.Logger
	name   string
	prov   *obs.ProvTable // nil disables provenance tracking

	storeOps *obs.CounterVec // caisp_tip_store_total{op}; nil without WithMetrics
}

// Option configures a Service.
type Option interface{ apply(*Service) }

type brokerOption struct{ b *bus.Broker }

func (o brokerOption) apply(s *Service) { s.broker = o.b }

// WithBroker attaches a message bus; stored events are published on it.
func WithBroker(b *bus.Broker) Option { return brokerOption{b: b} }

type loggerOption struct{ l *slog.Logger }

func (o loggerOption) apply(s *Service) { s.logger = o.l }

// WithLogger sets the service logger.
func WithLogger(l *slog.Logger) Option { return loggerOption{l: l} }

type nameOption string

func (o nameOption) apply(s *Service) { s.name = string(o) }

// WithName labels the instance (log and stats output).
func WithName(name string) Option { return nameOption(name) }

type provOption struct{ t *obs.ProvTable }

func (o provOption) apply(s *Service) { s.prov = o.t }

// WithProvenance attaches the cross-node trace table: local ingests are
// recorded as origins under the instance name, and the change feed
// serves each event's provenance (origin node, origin ingest seq,
// per-hop pull timestamps) alongside the event so mesh peers can extend
// the path. The table is shared with the node's mesh engine, which
// overwrites entries for events that arrived by replication. Nil
// disables provenance.
func WithProvenance(t *obs.ProvTable) Option { return provOption{t: t} }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(s *Service) {
	if o.reg == nil {
		return
	}
	s.storeOps = o.reg.CounterVec("caisp_tip_store_total",
		"Events stored through the TIP, by operation (add or edit).", "op")
	o.reg.GaugeFunc("caisp_tip_events",
		"Events currently held by the TIP store.",
		func() float64 { return float64(s.store.Len()) })
}

// WithMetrics registers the service's caisp_tip_* families into reg (nil
// disables instrumentation). The store and broker register their own
// families through their respective WithMetrics options.
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg: reg} }

// NewService wraps a store.
func NewService(store *storage.Store, opts ...Option) *Service {
	s := &Service{
		store:  store,
		logger: slog.Default(),
		name:   "tip",
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// AddEvent validates and stores an event, returning the UUIDs of already
// stored events it correlates with (sharing at least one attribute value —
// MISP's automatic correlation). New and updated events are announced on
// the bus. The store keeps a private copy; the caller retains ownership
// of e.
func (s *Service) AddEvent(e *misp.Event) (correlated []string, err error) {
	if e == nil {
		return nil, fmt.Errorf("tip: nil event")
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	topic := TopicEventAdd
	if s.store.Has(e.UUID) {
		topic = TopicEventEdit
	}
	correlated = s.store.Correlated(e)
	if err := s.store.Put(e); err != nil {
		return nil, err
	}
	// Record this node as the revision's origin. When the caller is the
	// mesh importer, the engine overwrites the entry with the forwarded
	// provenance right after the batch lands.
	s.prov.RecordLocal(e.UUID, s.name, time.Now())
	s.publish(topic, e)
	s.countStore(topic)
	s.logger.Debug("event stored", "instance", s.name, "uuid", e.UUID, "topic", topic, "correlated", len(correlated))
	return correlated, nil
}

// AddEvents stores a batch of events through the store's group-commit
// path (one WAL write and fsync for the whole batch instead of one per
// event). Unlike AddEvent it is partial-failure tolerant: events that fail
// validation are skipped and their errors aggregated with errors.Join,
// while the valid remainder is still stored and announced on the bus. It
// returns the events actually stored. Correlation is computed against the
// state before the batch; events inside one batch correlate with each
// other on subsequent lookups through the store's indexes.
func (s *Service) AddEvents(events []*misp.Event) (stored []*misp.Event, err error) {
	var errs []error
	valid := make([]*misp.Event, 0, len(events))
	topics := make([]string, 0, len(events))
	for _, e := range events {
		if e == nil {
			errs = append(errs, fmt.Errorf("tip: nil event"))
			continue
		}
		if verr := e.Validate(); verr != nil {
			errs = append(errs, verr)
			continue
		}
		topic := TopicEventAdd
		if s.store.Has(e.UUID) {
			topic = TopicEventEdit
		}
		valid = append(valid, e)
		topics = append(topics, topic)
	}
	if len(valid) > 0 {
		if perr := s.store.PutBatch(valid); perr != nil {
			return nil, errors.Join(append(errs, perr)...)
		}
		now := time.Now()
		for i, e := range valid {
			s.prov.RecordLocal(e.UUID, s.name, now)
			s.publish(topics[i], e)
			s.countStore(topics[i])
		}
		s.logger.Debug("event batch stored", "instance", s.name,
			"stored", len(valid), "rejected", len(errs))
	}
	return valid, errors.Join(errs...)
}

// GetEvent fetches one event by UUID as a shared frozen view (DESIGN.md
// §8): the result must not be mutated.
func (s *Service) GetEvent(uuid string) (*misp.Event, error) {
	return s.store.Get(uuid)
}

// WrappedJSONFor returns the {"Event": …} wire encoding of an event,
// served from the store's encode-once cache when e is a stored revision
// (as returned by GetEvent/Search/EventsSince). The bytes are read-only.
func (s *Service) WrappedJSONFor(e *misp.Event) ([]byte, error) {
	return s.store.WrappedJSONFor(e)
}

// DeleteEvent removes one event by UUID. The deletion tombstones the
// UUID in the change feed, so replication peers drop their copies too.
func (s *Service) DeleteEvent(uuid string) error {
	return s.store.Delete(uuid)
}

// DeleteEventAt removes one event, recording at as the deletion time on
// its tombstone — the entry point replication uses to re-apply a peer's
// deletion at its original time so newest-wins stays transitive across
// mesh hops.
func (s *Service) DeleteEventAt(uuid string, at time.Time) error {
	return s.store.DeleteAt(uuid, at)
}

// SearchQuery selects events; zero fields are ignored, set fields AND.
type SearchQuery struct {
	// Value matches an exact attribute value.
	Value string `json:"value,omitempty"`
	// Type matches an attribute type.
	Type string `json:"type,omitempty"`
	// Tag matches an event tag.
	Tag string `json:"tag,omitempty"`
	// Since keeps events stamped at or after this instant.
	Since time.Time `json:"since,omitempty"`
}

// Search runs a query against the store. Results are shared frozen views
// in UUID order; only the criteria the index lookup did not already answer
// are re-checked per candidate.
func (s *Service) Search(q SearchQuery) ([]*misp.Event, error) {
	var (
		candidates []*misp.Event
		err        error
	)
	// The most selective indexed lookup narrows the candidate set and
	// fully answers its own criterion; checkValue/checkType/checkTag track
	// what remains to filter below.
	checkValue, checkType, checkTag := q.Value != "", q.Type != "", q.Tag != ""
	switch {
	case q.Value != "":
		candidates, err = s.store.SearchValue(q.Value)
		checkValue = false
	case q.Type != "":
		candidates, err = s.store.SearchType(q.Type)
		checkType = false
	case q.Tag != "":
		candidates, err = s.store.SearchTag(q.Tag)
		checkTag = false
	default:
		candidates, err = s.store.All()
	}
	if err != nil {
		return nil, err
	}
	out := candidates[:0:0]
	for _, e := range candidates {
		if checkValue && !hasValue(e, q.Value) {
			continue
		}
		if checkType && !hasType(e, q.Type) {
			continue
		}
		if checkTag && !e.HasTag(q.Tag) {
			continue
		}
		if !q.Since.IsZero() && e.Timestamp.Before(q.Since) {
			continue
		}
		out = append(out, e)
	}
	// Every candidate source returns UUID order, so out is already sorted.
	return out, nil
}

// EventsSince lists events updated at or after t.
func (s *Service) EventsSince(t time.Time) ([]*misp.Event, error) {
	return s.store.UpdatedSince(t)
}

// EventsPage lists up to limit events updated at or after t in
// (timestamp, uuid) order, resuming strictly past the cursor
// (t, afterUUID) when afterUUID is non-empty. The second result reports
// whether more pages remain.
func (s *Service) EventsPage(t time.Time, afterUUID string, limit int) ([]*misp.Event, bool, error) {
	return s.store.UpdatedSincePage(t, afterUUID, limit)
}

// ChangesPage lists up to limit events from the node's ingest-sequence
// change feed, strictly after afterSeq, plus the sequence to resume from
// and whether more entries remain. This is the feed the mesh replicates
// over: unlike EventsPage's (timestamp, uuid) order, an event this node
// imports late still lands past every cursor already handed out, so a
// peer paging the feed can never skip it.
func (s *Service) ChangesPage(afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error) {
	return s.store.ChangesPage(afterSeq, limit)
}

// Changes is ChangesPage with deletions included: tombstoned UUIDs
// yield deletion markers so a replication peer can drop its copy
// instead of keeping a resurrected revision forever. When provenance is
// enabled each live entry also carries its cross-node trace context;
// events the table has forgotten (evicted, or recovered from a WAL that
// predates the table) get origin-only provenance synthesized from the
// change log so downstream hops still learn the origin node and seq.
func (s *Service) Changes(afterSeq uint64, limit int) ([]storage.Change, uint64, bool, error) {
	changes, next, more, err := s.store.Changes(afterSeq, limit)
	if err != nil || s.prov == nil {
		return changes, next, more, err
	}
	for i := range changes {
		if changes[i].Event == nil {
			continue
		}
		p := s.prov.Lookup(changes[i].UUID)
		if p == nil {
			p = &obs.Provenance{Origin: s.name}
		}
		if p.OriginSeq == 0 && p.Origin == s.name {
			// The group-commit path does not learn per-event sequences;
			// the change log does. Fill the origin seq at the wire.
			p.OriginSeq = changes[i].Seq
		}
		changes[i].Prov = p
	}
	return changes, next, more, nil
}

// Provenance returns the attached cross-node trace table (nil when
// provenance is disabled).
func (s *Service) Provenance() *obs.ProvTable { return s.prov }

// Name reports the instance name — the node identity provenance and
// the fleet status view publish.
func (s *Service) Name() string { return s.name }

// StoreSeq reports the store's ingest-sequence high-water mark.
func (s *Service) StoreSeq() uint64 { return s.store.Seq() }

// Len reports the number of stored events.
func (s *Service) Len() int { return s.store.Len() }

// Stats summarizes the instance, including the durability counters of
// the underlying store (WAL footprint, compaction progress).
type Stats struct {
	Name        string `json:"name"`
	Events      int    `json:"events"`
	WALOps      int    `json:"wal_ops"`
	WALBytes    int64  `json:"wal_bytes"`
	WALSegments int    `json:"wal_segments"`
	Compactions int64  `json:"compactions"`
	// Tombstones counts retained deletion markers in the change feed.
	Tombstones int `json:"tombstones"`
	// LastCompactionMS is the wall time of the latest snapshot in
	// milliseconds (0 when none ran yet).
	LastCompactionMS float64 `json:"last_compaction_ms"`
	// BusPublished / BusDropped expose the attached broker's fan-out
	// counters; drop-oldest losses from lagging subscribers are otherwise
	// silent. Zero when no broker is attached.
	BusPublished int   `json:"bus_published"`
	BusDropped   int64 `json:"bus_dropped"`
}

// Stats returns instance counters.
func (s *Service) Stats() Stats {
	d := s.store.Durability()
	st := Stats{
		Name:             s.name,
		Events:           s.store.Len(),
		WALOps:           d.WALOps,
		WALBytes:         d.WALBytes,
		WALSegments:      d.WALSegments,
		Compactions:      d.Compactions,
		Tombstones:       d.Tombstones,
		LastCompactionMS: float64(d.LastCompactionDuration) / float64(time.Millisecond),
	}
	if s.broker != nil {
		st.BusPublished = s.broker.Published()
		st.BusDropped = s.broker.Dropped()
	}
	return st
}

// syncPageSize is how many events SyncFrom pulls per request, bounding
// the memory held for one remote page on both sides of the link. A
// variable so tests can force multi-page pulls with small corpora.
var syncPageSize = 500

// SyncFrom pulls events updated since t from a remote instance and imports
// them through the group-commit batch path — MISP's pull synchronization.
// The pull pages through the remote's time index (syncPageSize events per
// request) so neither side materializes the full backlog at once; each
// page lands in one group-committed batch. The import is partial-failure
// tolerant: remote events that fail validation are skipped and reported
// in the returned error while the valid remainder still lands. It returns
// how many events were imported.
//
// SyncFrom is the one-shot serial primitive; continuous multi-peer
// replication with durable cursors and echo suppression lives in
// internal/mesh.
func (s *Service) SyncFrom(ctx context.Context, remote *Client, t time.Time) (int, error) {
	var (
		imported int
		errs     []error
		cursor   = t
		after    string
	)
	for {
		events, more, err := remote.EventsPage(ctx, cursor, after, syncPageSize)
		if err != nil {
			return imported, errors.Join(append(errs, fmt.Errorf("tip: sync pull: %w", err))...)
		}
		if len(events) > 0 {
			stored, err := s.AddEvents(events)
			imported += len(stored)
			if err != nil {
				errs = append(errs, fmt.Errorf("tip: sync import: %w", err))
			}
			last := events[len(events)-1]
			cursor, after = last.Timestamp.Time, last.UUID
		}
		if !more || len(events) == 0 {
			break
		}
	}
	return imported, errors.Join(errs...)
}

// SyncTo pushes local events updated since t to a remote instance —
// MISP's push synchronization, the counterpart of SyncFrom. Events marked
// DistributionOrganisation never leave the instance (MISP's "your
// organisation only" level). It returns how many events were exported.
func (s *Service) SyncTo(ctx context.Context, remote *Client, t time.Time) (int, error) {
	events, err := s.EventsSince(t)
	if err != nil {
		return 0, err
	}
	exported := 0
	for _, e := range events {
		if e.Distribution == misp.DistributionOrganisation {
			continue
		}
		if _, err := remote.AddEvent(ctx, e); err != nil {
			return exported, fmt.Errorf("tip: sync push %s: %w", e.UUID, err)
		}
		exported++
	}
	return exported, nil
}

// publish announces a just-stored event on the bus, reusing the store's
// encode-once wire encoding so the same bytes serve the bus and the HTTP
// read paths. If the stored revision is already gone (deleted or replaced
// concurrently), the caller's copy is encoded as a fallback.
func (s *Service) publish(topic string, e *misp.Event) {
	if s.broker == nil {
		return
	}
	data, err := s.store.WrappedJSON(e.UUID)
	if err != nil {
		data, err = misp.MarshalWrapped(e)
		if err != nil {
			s.logger.Warn("publish encode failed", "uuid", e.UUID, "error", err)
			return
		}
	}
	s.broker.Publish(topic, data)
}

// countStore bumps the store-operation counter, mapping the bus topic to
// its operation label.
func (s *Service) countStore(topic string) {
	if s.storeOps == nil {
		return
	}
	op := "add"
	if topic == TopicEventEdit {
		op = "edit"
	}
	s.storeOps.With(op).Inc()
}

func hasValue(e *misp.Event, value string) bool {
	for _, a := range e.Attributes {
		if a.Value == value {
			return true
		}
	}
	for _, o := range e.Objects {
		for _, a := range o.Attributes {
			if a.Value == value {
				return true
			}
		}
	}
	return false
}

func hasType(e *misp.Event, typ string) bool {
	for _, a := range e.Attributes {
		if a.Type == typ {
			return true
		}
	}
	for _, o := range e.Objects {
		for _, a := range o.Attributes {
			if a.Type == typ {
				return true
			}
		}
	}
	return false
}

// MarshalStats renders stats as JSON (used by the HTTP layer).
func MarshalStats(st Stats) []byte {
	data, err := json.Marshal(st)
	if err != nil {
		return []byte(`{}`)
	}
	return data
}
