// Package clock abstracts time for the platform. Production code uses the
// system clock; tests and the deterministic feed generator use a fake clock
// so that timeliness-sensitive heuristics (modified, valid_from, valid_until)
// are reproducible.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time and timer primitives used by the platform.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers the current time after d.
	After(d time.Duration) <-chan time.Time
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock for tests. The zero value is not usable;
// construct with NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewFake returns a fake clock frozen at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After returns a channel that fires once Advance moves the clock past d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := f.now.Add(d)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, waiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing any timers that come due.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var remaining []waiter
	var due []waiter
	for _, w := range f.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

var _ Clock = (*Fake)(nil)
var _ Clock = realClock{}
