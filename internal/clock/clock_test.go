package clock

import (
	"testing"
	"time"
)

func TestRealClockMonotonic(t *testing.T) {
	c := Real()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("time went backwards: %v then %v", a, b)
	}
}

func TestFakeNowFrozen(t *testing.T) {
	start := time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", f.Now(), start)
	}
	f.Advance(90 * time.Minute)
	want := start.Add(90 * time.Minute)
	if !f.Now().Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", f.Now(), want)
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	f.Advance(1 * time.Second)
	select {
	case at := <-ch:
		if !at.Equal(time.Unix(10, 0)) {
			t.Fatalf("fired at %v, want %v", at, time.Unix(10, 0))
		}
	case <-time.After(time.Second):
		t.Fatal("timer never fired after due Advance")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestFakeMultipleWaiters(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch1 := f.After(1 * time.Second)
	ch2 := f.After(5 * time.Second)
	f.Advance(2 * time.Second)
	select {
	case <-ch1:
	default:
		t.Fatal("first waiter not fired")
	}
	select {
	case <-ch2:
		t.Fatal("second waiter fired early")
	default:
	}
	f.Advance(3 * time.Second)
	select {
	case <-ch2:
	default:
		t.Fatal("second waiter not fired")
	}
}
