package worker

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/correlate"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
)

var evalTime = time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)

// distributedRig wires a TIP with a TCP publish socket (the "MISP
// instance") and a worker (the "heuristic component") as separate
// components talking only over the network, as in the paper's deployment.
type distributedRig struct {
	service  *tip.Service
	listener *bus.Listener
	worker   *Worker
	riocs    *riocCollector
	cancel   context.CancelFunc
	runDone  chan struct{}
}

type riocCollector struct {
	mu    sync.Mutex
	items []heuristic.RIoC
}

func (c *riocCollector) add(r heuristic.RIoC) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = append(c.items, r)
}

func (c *riocCollector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *riocCollector) first() heuristic.RIoC {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.items[0]
}

func newRig(t *testing.T) *distributedRig {
	t.Helper()
	store, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })

	broker := bus.NewBroker()
	t.Cleanup(broker.Close)
	listener, err := broker.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { listener.Close() })

	service := tip.NewService(store, tip.WithBroker(broker), tip.WithName("misp-instance"))
	apiServer := httptest.NewServer(tip.NewAPI(service, "worker-key"))
	t.Cleanup(apiServer.Close)

	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		t.Fatal(err)
	}
	riocs := &riocCollector{}
	w, err := New(Config{
		BusAddr:   listener.Addr(),
		TIP:       tip.NewClient(apiServer.URL, "worker-key"),
		Collector: collector,
		RIoCSink:  riocs.add,
		Now:       func() time.Time { return evalTime },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-runDone
	})
	// Pub/sub delivers only to attached subscribers: wait for the worker's
	// TCP subscription before any test publishes.
	waitFor(t, func() bool { return broker.TCPConns() == 1 })
	return &distributedRig{
		service: service, listener: listener, worker: w,
		riocs: riocs, cancel: cancel, runDone: runDone,
	}
}

// strutsCIoC builds the use-case cIoC as the input module would store it.
func strutsCIoC(t *testing.T) *misp.Event {
	t.Helper()
	e, err := normalize.New("CVE-2017-9805", normalize.CategoryVulnExploit, "vuln-advisories", normalize.SourceOSINT,
		time.Date(2017, 9, 13, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	e.Context = map[string]string{
		"description": "Apache Struts REST plugin XStream RCE",
		"cvss-vector": "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
		"products":    "apache struts,apache",
		"os":          "debian",
		"published":   "2017-09-13",
		"references":  "https://capec.mitre.example/248,https://cve.mitre.example/CVE-2017-9805",
	}
	ciocs := correlate.New().Correlate([]normalize.Event{e})
	if len(ciocs) != 1 {
		t.Fatalf("ciocs = %d", len(ciocs))
	}
	me, err := correlate.ToMISP(&ciocs[0], evalTime)
	if err != nil {
		t.Fatal(err)
	}
	return me
}

func TestDistributedHeuristicComponent(t *testing.T) {
	rig := newRig(t)

	// The "MISP instance" stores a cIoC; the publish socket fans it out to
	// the remote worker, which scores it and writes the eIoC back over the
	// REST API.
	if _, err := rig.service.AddEvent(strutsCIoC(t)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for rig.worker.Stats().Enriched == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never enriched: %+v", rig.worker.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The rIoC reproduces the paper's use case.
	if rig.riocs.len() != 1 {
		t.Fatalf("riocs = %d", rig.riocs.len())
	}
	r := rig.riocs.first()
	if r.CVE != "CVE-2017-9805" || r.ThreatScore != 2.7407 {
		t.Fatalf("rIoC = %+v", r)
	}
	if len(r.NodeIDs) != 1 || r.NodeIDs[0] != "node4" {
		t.Fatalf("nodes = %v", r.NodeIDs)
	}

	// The stored event became an eIoC with the threat-score attribute.
	waitFor(t, func() bool {
		events, err := rig.service.Search(tip.SearchQuery{Tag: "caisp:eioc"})
		return err == nil && len(events) == 1
	})
	events, err := rig.service.Search(tip.SearchQuery{Tag: "caisp:eioc"})
	if err != nil || len(events) != 1 {
		t.Fatalf("eIoC search: %d, %v", len(events), err)
	}
	found := false
	for _, a := range events[0].Attributes {
		if strings.HasPrefix(a.Value, "threat-score:2.7407") {
			found = true
		}
	}
	if !found {
		t.Fatalf("threat-score attribute missing: %+v", events[0].Attributes)
	}

	// The edit publication (TopicEventEdit) must not loop back into the
	// worker: received counts only adds.
	st := rig.worker.Stats()
	if st.Enriched != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWorkerSkipsNonCIoCs(t *testing.T) {
	rig := newRig(t)
	plain := misp.NewEvent("infrastructure data", evalTime)
	plain.AddAttribute("ip-dst", "Network activity", "10.0.0.14", evalTime)
	if _, err := rig.service.AddEvent(plain); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rig.worker.Stats().Received >= 1 })
	st := rig.worker.Stats()
	if st.Skipped == 0 || st.Enriched != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWorkerIdempotentPerUUID(t *testing.T) {
	rig := newRig(t)
	cioc := strutsCIoC(t)
	if _, err := rig.service.AddEvent(cioc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rig.worker.Stats().Enriched == 1 })

	// Analyze again directly: processed set blocks duplicates via handle,
	// and Analyze itself is safe to re-run but the worker counts it once.
	before := rig.worker.Stats().Enriched
	data, err := misp.MarshalWrapped(cioc)
	if err != nil {
		t.Fatal(err)
	}
	rig.worker.handle(data)
	if rig.worker.Stats().Enriched != before {
		t.Fatalf("duplicate enrichment: %+v", rig.worker.Stats())
	}
}

func TestNewValidation(t *testing.T) {
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		t.Fatal(err)
	}
	client := tip.NewClient("http://127.0.0.1:1", "")
	if _, err := New(Config{TIP: client, Collector: collector}); err == nil {
		t.Fatal("missing bus address accepted")
	}
	if _, err := New(Config{BusAddr: "x", Collector: collector}); err == nil {
		t.Fatal("missing client accepted")
	}
	if _, err := New(Config{BusAddr: "x", TIP: client}); err == nil {
		t.Fatal("missing collector accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
