// Package worker implements the heuristic component as a standalone
// process, matching the paper's deployment where the MISP instance and the
// heuristic analysis run separately and communicate over zeroMQ (§IV-A):
// the worker subscribes to a TIP's TCP publish socket, converts each
// incoming cIoC to STIX 2.0, computes the threat score against its local
// infrastructure knowledge, writes the enriched event back through the TIP
// REST API, and emits rIoCs to an optional sink.
package worker

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/ringset"
	"github.com/caisplatform/caisp/internal/tip"
)

// maxProcessedTracked bounds the processed-UUID memory; older entries are
// evicted FIFO (re-analysis of an evicted event is idempotent).
const maxProcessedTracked = 1 << 16

// shardQueueDepth is the per-shard buffer between the dispatcher and an
// analyzer goroutine.
const shardQueueDepth = 64

// Config parameterizes a Worker.
type Config struct {
	// BusAddr is the TIP's TCP publish socket ("host:port").
	BusAddr string
	// TIP is the client for writing enriched events back.
	TIP *tip.Client
	// Collector supplies the infrastructure context for scoring.
	Collector *infra.Collector
	// RIoCSink receives reduced IoCs (nil discards them).
	RIoCSink func(heuristic.RIoC)
	// Now fixes the evaluation clock; nil uses time.Now.
	Now func() time.Time
	// Logger receives worker logs; nil uses slog.Default().
	Logger *slog.Logger
	// Parallelism sets how many analyzer goroutines score events
	// concurrently; values below 1 use GOMAXPROCS. Events are sharded by
	// UUID so the same event never races with itself.
	Parallelism int
	// Metrics registers the worker's caisp_worker_* families into this
	// registry; nil disables instrumentation.
	Metrics *obs.Registry
}

// Stats counts worker activity.
type Stats struct {
	Received  int `json:"received"`
	Skipped   int `json:"skipped"`
	Enriched  int `json:"enriched"`
	RIoCs     int `json:"riocs"`
	Failures  int `json:"failures"`
	Reconnect int `json:"reconnects"`
}

// Worker is a running heuristic component.
type Worker struct {
	cfg         Config
	engine      *heuristic.Engine
	logger      *slog.Logger
	parallelism int

	mu        sync.Mutex
	stats     Stats
	processed *ringset.Set

	analyzeDur *obs.Histogram // caisp_worker_analyze_seconds; nil without Metrics

	client *bus.Client
	done   chan struct{}
}

// New validates the configuration and builds a worker. The bus
// subscription opens immediately (so nothing published while the caller
// prepares is lost); call Run to process events and Stop — or cancel
// Run's context — to release the connection.
func New(cfg Config) (*Worker, error) {
	if cfg.BusAddr == "" {
		return nil, fmt.Errorf("worker: bus address required")
	}
	if cfg.TIP == nil {
		return nil, fmt.Errorf("worker: TIP client required")
	}
	if cfg.Collector == nil {
		return nil, fmt.Errorf("worker: infrastructure collector required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	parallelism := cfg.Parallelism
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	w := &Worker{
		cfg: cfg,
		engine: heuristic.NewEngine(
			heuristic.WithInfrastructure(cfg.Collector),
			heuristic.WithNow(cfg.Now),
			heuristic.WithMetrics(cfg.Metrics),
			heuristic.WithLogger(cfg.Logger),
		),
		logger:      cfg.Logger,
		parallelism: parallelism,
		processed:   ringset.New(maxProcessedTracked),
		client:      bus.Dial(cfg.BusAddr, tip.TopicEventAdd),
		done:        make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		w.analyzeDur = reg.Histogram("caisp_worker_analyze_seconds",
			"Full analysis of one cIoC: STIX conversion, scoring, write-back.")
		counter := func(name, help string, field func(Stats) int) {
			reg.CounterFunc(name, help, func() float64 { return float64(field(w.Stats())) })
		}
		counter("caisp_worker_received_total", "Bus payloads received.",
			func(s Stats) int { return s.Received })
		counter("caisp_worker_skipped_total", "Payloads skipped (filtered, duplicate or unscorable).",
			func(s Stats) int { return s.Skipped })
		counter("caisp_worker_enriched_total", "Events enriched and written back to the TIP.",
			func(s Stats) int { return s.Enriched })
		counter("caisp_worker_riocs_total", "Reduced IoCs emitted to the sink.",
			func(s Stats) int { return s.RIoCs })
		counter("caisp_worker_failures_total", "Decode or analysis failures.",
			func(s Stats) int { return s.Failures })
		counter("caisp_worker_reconnects_total", "Bus reconnections.",
			func(s Stats) int { return s.Reconnect })
	}
	return w, nil
}

// Run processes bus events until ctx is cancelled, fanning the heuristic
// analysis out over a pool of Parallelism goroutines sharded by event
// UUID (the serial decode stage is cheap next to scoring). The
// subscription was opened by New (the reconnecting client buffers across
// the gap), so no event published between New and Run is lost.
func (w *Worker) Run(ctx context.Context) {
	defer close(w.done)

	shards := make([]chan *misp.Event, w.parallelism)
	var wg sync.WaitGroup
	for i := range shards {
		shards[i] = make(chan *misp.Event, shardQueueDepth)
		ch := shards[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for me := range ch {
				w.process(me)
			}
		}()
	}
	defer func() {
		for _, ch := range shards {
			close(ch)
		}
		wg.Wait()
	}()

	for {
		select {
		case <-ctx.Done():
			w.client.Close()
			return
		case msg, ok := <-w.client.C():
			if !ok {
				return
			}
			me, err := w.receive(msg.Payload)
			if err != nil || me == nil {
				continue
			}
			select {
			case shards[shardOf(me.UUID, len(shards))] <- me:
			case <-ctx.Done():
				w.client.Close()
				return
			}
		}
	}
}

// shardOf maps an event UUID onto an analyzer shard (FNV-1a).
func shardOf(uuid string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(uuid); i++ {
		h = (h ^ uint32(uuid[i])) * 16777619
	}
	return int(h % uint32(n))
}

// Stop closes the bus subscription and waits for Run to exit. Only valid
// after Run has been started.
func (w *Worker) Stop() {
	w.client.Close()
	<-w.done
}

// Stats returns a snapshot of the worker counters.
func (w *Worker) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Reconnect = w.client.Reconnects()
	return st
}

// handle processes one published event payload synchronously — the
// single-goroutine path used by tests and batch tools; Run splits the
// same work into receive (dispatcher) and process (analyzer shard).
func (w *Worker) handle(payload []byte) {
	me, err := w.receive(payload)
	if err != nil || me == nil {
		return
	}
	w.process(me)
}

// receive decodes and pre-filters one payload; it returns (nil, nil) for
// events that need no analysis.
func (w *Worker) receive(payload []byte) (*misp.Event, error) {
	w.mu.Lock()
	w.stats.Received++
	w.mu.Unlock()

	me, err := misp.UnmarshalWrapped(payload)
	if err != nil {
		w.fail("undecodable payload", err)
		return nil, err
	}
	if !me.HasTag("caisp:cioc") || me.HasTag("caisp:eioc") {
		w.mu.Lock()
		w.stats.Skipped++
		w.mu.Unlock()
		return nil, nil
	}
	return me, nil
}

// process runs the idempotency check and analysis for one decoded event.
func (w *Worker) process(me *misp.Event) {
	w.mu.Lock()
	fresh := w.processed.Add(me.UUID)
	if !fresh {
		w.stats.Skipped++
	}
	w.mu.Unlock()
	if !fresh {
		return
	}
	if err := w.Analyze(me); err != nil {
		w.fail("analysis failed", err)
	}
}

// Analyze scores one stored cIoC event, writes the eIoC back to the TIP
// and emits rIoCs. Exported for synchronous use in tests and batch tools.
func (w *Worker) Analyze(me *misp.Event) error {
	if w.analyzeDur != nil {
		defer func(start time.Time) {
			w.analyzeDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	bundle, err := misp.ToSTIX(me)
	if err != nil {
		return err
	}
	now := w.cfg.Now().UTC()
	scored := 0
	var topScore float64
	for _, obj := range bundle.Objects {
		res, err := w.engine.Evaluate(obj)
		if err != nil {
			continue // object type without a heuristic
		}
		scored++
		heuristic.Enrich(obj, res)
		if res.Score > topScore {
			topScore = res.Score
		}
		rioc, err := heuristic.Reduce(obj, res, w.cfg.Collector, now)
		if err != nil {
			return err
		}
		if rioc != nil {
			if w.cfg.RIoCSink != nil {
				w.cfg.RIoCSink(*rioc)
			}
			w.mu.Lock()
			w.stats.RIoCs++
			w.mu.Unlock()
		}
	}
	if scored == 0 {
		w.mu.Lock()
		w.stats.Skipped++
		w.mu.Unlock()
		return nil
	}
	me.AddAttribute("comment", "Other",
		"threat-score:"+strconv.FormatFloat(topScore, 'f', 4, 64), now)
	me.AddTag("caisp:eioc")
	if _, err := w.cfg.TIP.AddEvent(context.Background(), me); err != nil {
		return fmt.Errorf("worker: write back %s: %w", me.UUID, err)
	}
	w.mu.Lock()
	w.stats.Enriched++
	w.mu.Unlock()
	return nil
}

func (w *Worker) fail(msg string, err error) {
	w.mu.Lock()
	w.stats.Failures++
	w.mu.Unlock()
	w.logger.Warn(msg, "error", err)
}
