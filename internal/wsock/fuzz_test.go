package wsock

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestReadFrameNeverPanics feeds the frame decoder random bytes: it must
// return an error or a frame, never panic or over-allocate.
func TestReadFrameNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = readFrame(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameRoundTripQuick checks write→read identity for random payloads,
// masked and unmasked.
func TestFrameRoundTripQuick(t *testing.T) {
	f := func(payload []byte, mask bool) bool {
		var buf bytes.Buffer
		in := frame{fin: true, opcode: OpBinary, payload: payload}
		if err := writeFrame(&buf, in, mask); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return out.fin && out.opcode == OpBinary && bytes.Equal(out.payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReadFrameOversizedRejected ensures length-bomb headers are refused
// before any allocation happens.
func TestReadFrameOversizedRejected(t *testing.T) {
	// 127-length marker with an 8-byte length far beyond maxPayload.
	raw := []byte{0x82, 127, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("length bomb accepted")
	}
}
