package wsock

import "encoding/binary"

// PreparedFrame is a complete server-to-client WebSocket frame — header
// and payload assembled once into a single contiguous byte slice — that
// can be written verbatim to any number of connections. Server frames are
// never masked (RFC 6455 §5.1), so the same bytes are shareable across
// every client of a broadcast: one JSON encode plus one frame assembly
// per message, regardless of fan-out width.
type PreparedFrame struct {
	data       []byte
	payloadOff int
	opcode     Opcode
}

// PrepareText assembles a text frame for broadcast. The payload is copied
// once; the caller may reuse its buffer afterwards.
func PrepareText(payload []byte) *PreparedFrame { return prepareFrame(OpText, payload) }

// PrepareBinary assembles a binary frame for broadcast.
func PrepareBinary(payload []byte) *PreparedFrame { return prepareFrame(OpBinary, payload) }

func prepareFrame(op Opcode, payload []byte) *PreparedFrame {
	var hdr [10]byte
	hdr[0] = 0x80 | byte(op) // FIN + opcode
	n := 2
	length := len(payload)
	switch {
	case length < 126:
		hdr[1] = byte(length)
	case length <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(length))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(length))
		n = 10
	}
	data := make([]byte, n+length)
	copy(data, hdr[:n])
	copy(data[n:], payload)
	return &PreparedFrame{data: data, payloadOff: n, opcode: op}
}

// Payload returns the payload portion of the prepared frame. Callers must
// treat it as immutable.
func (pf *PreparedFrame) Payload() []byte { return pf.data[pf.payloadOff:] }

// Len reports the total wire length of the frame.
func (pf *PreparedFrame) Len() int { return len(pf.data) }
