package wsock

import (
	"sync"
)

// Hub fans text messages out to a set of WebSocket connections, evicting
// any connection whose write fails. The dashboard uses one Hub to push
// rIoCs and alarms to every connected browser session.
type Hub struct {
	mu    sync.Mutex
	conns map[*Conn]bool
	sent  int
}

// NewHub constructs an empty hub.
func NewHub() *Hub {
	return &Hub{conns: make(map[*Conn]bool)}
}

// Add registers a connection for broadcasts.
func (h *Hub) Add(c *Conn) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.conns[c] = true
}

// Remove unregisters (but does not close) a connection.
func (h *Hub) Remove(c *Conn) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.conns, c)
}

// Len reports the number of registered connections.
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// Sent reports the number of successfully delivered messages.
func (h *Hub) Sent() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sent
}

// Broadcast sends a text payload to every connection; failed connections
// are closed and evicted. It returns the number of successful deliveries.
func (h *Hub) Broadcast(payload []byte) int {
	h.mu.Lock()
	conns := make([]*Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()

	delivered := 0
	var dead []*Conn
	for _, c := range conns {
		if err := c.WriteText(payload); err != nil {
			dead = append(dead, c)
			continue
		}
		delivered++
	}

	h.mu.Lock()
	h.sent += delivered
	for _, c := range dead {
		delete(h.conns, c)
	}
	h.mu.Unlock()
	for _, c := range dead {
		c.Close()
	}
	return delivered
}

// CloseAll closes and evicts every connection.
func (h *Hub) CloseAll() {
	h.mu.Lock()
	conns := make([]*Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.conns = make(map[*Conn]bool)
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
