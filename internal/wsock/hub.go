package wsock

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/obs"
)

// Hub defaults; see the corresponding options.
const (
	DefaultShards       = 8
	DefaultQueueDepth   = 64
	DefaultWriteTimeout = 10 * time.Second
)

// Hub fans broadcast frames out to a set of WebSocket connections. The
// dashboard uses one Hub to push rIoCs and alarms to every connected
// browser session.
//
// The hub is sharded: connections are spread round-robin across N shards,
// each with its own lock, fan-out goroutine and broadcast queue, and every
// connection gets a bounded send queue drained by a dedicated writer
// goroutine. Broadcast therefore costs O(shards) on the caller's
// goroutine — it assembles the frame once (encode-once: header + payload
// shared by every client) and enqueues it once per shard — while writes
// happen off-path, bounded by the write timeout. A client that cannot keep
// up (full queue, write timeout, write error) is evicted and closed
// without ever delaying the others.
type Hub struct {
	shards []*shard
	next   atomic.Uint64 // round-robin shard assignment

	sent     atomic.Int64 // successful frame deliveries
	evicted  atomic.Int64 // connections dropped by the hub
	maxQueue atomic.Int64 // deepest client queue seen on the last fan-out

	queueDepth   int
	writeTimeout time.Duration
	serial       bool

	reg         *obs.Registry
	queueGauge  *obs.GaugeVec     // caisp_wsock_queue_depth{shard}
	evictedVec  *obs.CounterVec   // caisp_wsock_evicted_total{shard,reason}
	pushSeconds *obs.HistogramVec // caisp_wsock_push_seconds{shard}

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// shard owns a subset of the hub's connections.
type shard struct {
	hub   *Hub
	label string

	mu      sync.Mutex
	clients map[*Conn]*client

	bcast chan *PreparedFrame
}

// client is one registered connection plus its writer state.
type client struct {
	conn  *Conn
	shard *shard
	send  chan queued   // bounded; nil in serial mode
	dead  chan struct{} // closed exactly once by stop
	once  sync.Once
}

// queued is one frame waiting in a client's send queue. at is zero unless
// push-latency metrics are enabled.
type queued struct {
	pf *PreparedFrame
	at time.Time
}

// HubOption configures a Hub.
type HubOption interface{ applyHub(*Hub) }

type shardsOption int

func (o shardsOption) applyHub(h *Hub) {
	if o > 0 {
		h.shards = make([]*shard, int(o))
	}
}

// WithShards sets the number of hub shards (default DefaultShards). More
// shards parallelize fan-out across cores; one shard serializes it.
func WithShards(n int) HubOption { return shardsOption(n) }

type queueDepthOption int

func (o queueDepthOption) applyHub(h *Hub) {
	if o > 0 {
		h.queueDepth = int(o)
	}
}

// WithQueueDepth bounds each client's send queue (default
// DefaultQueueDepth). A broadcast finding the queue full evicts the
// client — drop-slowest, never block-everyone.
func WithQueueDepth(n int) HubOption { return queueDepthOption(n) }

type hubWriteTimeoutOption time.Duration

func (o hubWriteTimeoutOption) applyHub(h *Hub) { h.writeTimeout = time.Duration(o) }

// WithHubWriteTimeout bounds every client write (default
// DefaultWriteTimeout); a timed-out write evicts the connection. Zero
// disables deadlines (writes to a dead peer may then block their writer
// goroutine until eviction aborts it).
func WithHubWriteTimeout(d time.Duration) HubOption { return hubWriteTimeoutOption(d) }

type serialOption struct{}

func (serialOption) applyHub(h *Hub) { h.serial = true }

// WithSerialBroadcast restores the pre-sharding behavior — every write
// performed serially on the broadcaster's goroutine — as the ablation
// baseline for BenchmarkFanout. Queues and writer goroutines are
// disabled; a stalled client blocks everyone behind it (up to the write
// timeout).
func WithSerialBroadcast() HubOption { return serialOption{} }

type hubMetricsOption struct{ reg *obs.Registry }

func (o hubMetricsOption) applyHub(h *Hub) { h.reg = o.reg }

// WithHubMetrics registers the hub's caisp_wsock_* families (per-shard
// queue depth, evictions by reason, push latency) into reg. Nil disables
// instrumentation.
func WithHubMetrics(reg *obs.Registry) HubOption { return hubMetricsOption{reg: reg} }

// NewHub constructs a hub and starts its shard fan-out goroutines.
// Callers should Close it when done.
func NewHub(opts ...HubOption) *Hub {
	h := &Hub{
		queueDepth:   DefaultQueueDepth,
		writeTimeout: DefaultWriteTimeout,
		done:         make(chan struct{}),
	}
	for _, o := range opts {
		o.applyHub(h)
	}
	if h.shards == nil {
		h.shards = make([]*shard, DefaultShards)
	}
	if h.reg != nil {
		h.queueGauge = h.reg.GaugeVec("caisp_wsock_queue_depth",
			"Deepest client send queue observed during the shard's last fan-out.",
			"shard")
		h.evictedVec = h.reg.CounterVec("caisp_wsock_evicted_total",
			"Connections evicted by the hub (reason: slow, timeout, error).",
			"shard", "reason")
		h.pushSeconds = h.reg.HistogramVec("caisp_wsock_push_seconds",
			"Per-client push latency from broadcast enqueue to completed write.",
			nil, "shard")
	}
	for i := range h.shards {
		s := &shard{
			hub:     h,
			label:   strconv.Itoa(i),
			clients: make(map[*Conn]*client),
			bcast:   make(chan *PreparedFrame, h.queueDepth),
		}
		h.shards[i] = s
		if !h.serial {
			h.wg.Add(1)
			go s.run()
		}
	}
	return h
}

// Add registers a connection for broadcasts, arms its write timeout, and
// (in sharded mode) starts its writer goroutine.
func (h *Hub) Add(c *Conn) {
	select {
	case <-h.done:
		_ = c.Close()
		return
	default:
	}
	if h.writeTimeout > 0 {
		c.SetWriteTimeout(h.writeTimeout)
	}
	s := h.shards[h.next.Add(1)%uint64(len(h.shards))]
	cl := &client{conn: c, shard: s, dead: make(chan struct{})}
	if !h.serial {
		cl.send = make(chan queued, h.queueDepth)
	}
	s.mu.Lock()
	s.clients[c] = cl
	s.mu.Unlock()
	if !h.serial {
		go cl.writeLoop()
	}
}

// Remove unregisters (but does not close) a connection. Its writer
// goroutine, if any, is stopped.
func (h *Hub) Remove(c *Conn) {
	for _, s := range h.shards {
		s.mu.Lock()
		cl, ok := s.clients[c]
		if ok {
			delete(s.clients, c)
		}
		s.mu.Unlock()
		if ok {
			cl.stop(false, "")
			return
		}
	}
}

// Len reports the number of registered connections.
func (h *Hub) Len() int {
	n := 0
	for _, s := range h.shards {
		s.mu.Lock()
		n += len(s.clients)
		s.mu.Unlock()
	}
	return n
}

// Sent reports the number of successfully delivered frames.
func (h *Hub) Sent() int { return int(h.sent.Load()) }

// Evicted reports the number of connections the hub has dropped for being
// slow, timing out, or failing a write.
func (h *Hub) Evicted() int { return int(h.evicted.Load()) }

// QueueSaturation reports the fill fraction [0,1] of the deepest client
// queue seen during the most recent fan-out — the hub's health signal: a
// value near 1 means the next broadcast starts evicting slow clients.
func (h *Hub) QueueSaturation() float64 {
	if h.queueDepth <= 0 {
		return 0
	}
	return float64(h.maxQueue.Load()) / float64(h.queueDepth)
}

// Broadcast assembles payload into a text frame once and fans it out to
// every connection. It returns the number of connections the frame was
// routed toward (in serial mode: delivered to). Failed and stalled
// connections are evicted and closed.
func (h *Hub) Broadcast(payload []byte) int {
	return h.BroadcastPrepared(PrepareText(payload))
}

// BroadcastPrepared fans a pre-assembled frame out to every connection —
// the encode-once hot path: O(shards) work on the caller's goroutine.
func (h *Hub) BroadcastPrepared(pf *PreparedFrame) int {
	if h.serial {
		return h.broadcastSerial(pf)
	}
	routed := 0
	for _, s := range h.shards {
		s.mu.Lock()
		n := len(s.clients)
		s.mu.Unlock()
		if n == 0 {
			continue
		}
		routed += n
		select {
		case s.bcast <- pf:
		case <-h.done:
			return routed
		}
	}
	return routed
}

// broadcastSerial is the WithSerialBroadcast ablation: synchronous writes
// on the caller's goroutine, one client after another.
func (h *Hub) broadcastSerial(pf *PreparedFrame) int {
	delivered := 0
	for _, s := range h.shards {
		s.mu.Lock()
		clients := make([]*client, 0, len(s.clients))
		for _, cl := range s.clients {
			clients = append(clients, cl)
		}
		s.mu.Unlock()
		for _, cl := range clients {
			if err := cl.conn.WritePrepared(pf); err != nil {
				cl.evict(err)
				continue
			}
			h.sent.Add(1)
			delivered++
		}
	}
	return delivered
}

// run is a shard's fan-out loop: it takes each broadcast frame once and
// enqueues it onto every resident client queue, evicting any client whose
// queue is already full (drop-slowest policy).
func (s *shard) run() {
	h := s.hub
	defer h.wg.Done()
	for {
		select {
		case <-h.done:
			return
		case pf := <-s.bcast:
			var at time.Time
			if h.pushSeconds != nil {
				at = time.Now()
			}
			maxDepth := 0
			s.mu.Lock()
			for conn, cl := range s.clients {
				select {
				case cl.send <- queued{pf: pf, at: at}:
					if d := len(cl.send); d > maxDepth {
						maxDepth = d
					}
				default:
					delete(s.clients, conn)
					cl.stop(true, "slow")
				}
			}
			s.mu.Unlock()
			h.maxQueue.Store(int64(maxDepth))
			if h.queueGauge != nil {
				h.queueGauge.With(s.label).Set(float64(maxDepth))
			}
		}
	}
}

// writeLoop drains one client's send queue onto its connection.
func (cl *client) writeLoop() {
	h := cl.shard.hub
	for {
		select {
		case <-cl.dead:
			return
		case <-h.done:
			return
		case q := <-cl.send:
			if err := cl.conn.WritePrepared(q.pf); err != nil {
				cl.evict(err)
				return
			}
			h.sent.Add(1)
			if !q.at.IsZero() {
				h.pushSeconds.With(cl.shard.label).Observe(time.Since(q.at).Seconds())
			}
		}
	}
}

// evict detaches the client from its shard and stops it, classifying err
// as a timeout or a generic write error.
func (cl *client) evict(err error) {
	s := cl.shard
	s.mu.Lock()
	delete(s.clients, cl.conn)
	s.mu.Unlock()
	reason := "error"
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		reason = "timeout"
	}
	cl.stop(true, reason)
}

// stop shuts the client down exactly once: the writer goroutine exits,
// and — when closeConn is set — the connection's in-flight I/O is aborted
// and the connection closed in the background (never on a shard or
// broadcast goroutine). A non-empty reason records an eviction. stop is
// idempotent and safe from any goroutine, so a connection racing between
// Broadcast's fan-out, its writer's failure path, Remove and CloseAll is
// torn down exactly once.
func (cl *client) stop(closeConn bool, reason string) {
	cl.once.Do(func() {
		close(cl.dead)
		h := cl.shard.hub
		if reason != "" {
			h.evicted.Add(1)
			if h.evictedVec != nil {
				h.evictedVec.With(cl.shard.label, reason).Inc()
			}
			// An evicted client may have a write in flight on a dead peer;
			// abort unblocks it so the close below cannot stall.
			cl.conn.abort()
		}
		if closeConn {
			go func() { _ = cl.conn.Close() }()
		}
	})
}

// CloseAll closes and evicts every connection. The hub remains usable.
func (h *Hub) CloseAll() {
	for _, s := range h.shards {
		s.mu.Lock()
		clients := make([]*client, 0, len(s.clients))
		for _, cl := range s.clients {
			clients = append(clients, cl)
		}
		s.clients = make(map[*Conn]*client)
		s.mu.Unlock()
		for _, cl := range clients {
			cl.stop(true, "")
		}
	}
}

// Close drops every connection and stops the shard goroutines. The hub
// must not be used afterwards; Broadcast becomes a no-op.
func (h *Hub) Close() {
	h.closeOnce.Do(func() { close(h.done) })
	h.CloseAll()
	h.wg.Wait()
}
