package wsock

import (
	"bytes"
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// benchHub builds a hub with n in-memory clients (slow of them stalled)
// and returns it with a delivery counter covering the fast clients.
func benchHub(b *testing.B, n, slow int, opts ...HubOption) (*Hub, *atomic.Int64, func()) {
	b.Helper()
	hub := NewHub(opts...)
	var received atomic.Int64
	var closers []io.Closer
	for i := 0; i < n; i++ {
		sc, cc := net.Pipe()
		wbuf := 0
		if i < slow {
			wbuf = 16 // stalled peers absorb almost nothing before blocking
		}
		conn := NewConnBuffered(sc, false, 0, wbuf)
		hub.Add(conn)
		closers = append(closers, cc, sc)
		if i >= slow {
			go func(cc net.Conn) {
				r := newCountingReader(cc, &received)
				_, _ = io.Copy(io.Discard, r)
			}(cc)
		}
	}
	cleanup := func() {
		hub.Close()
		for _, c := range closers {
			c.Close()
		}
	}
	return hub, &received, cleanup
}

// countingReader counts delivered frames by scanning for them is too
// costly; instead it counts bytes and the benchmark divides by the frame
// size (payloads are fixed-size, so byte counts map 1:1 to frames).
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func newCountingReader(r io.Reader, n *atomic.Int64) *countingReader {
	return &countingReader{r: r, n: n}
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// BenchmarkFanout measures one full broadcast — encode-once frame
// assembly plus delivery to every fast client — across the
// serial-vs-sharded ablation and a fast-vs-slow client mix. ns/op is the
// per-message fan-out completion time; allocs/op demonstrates the
// encode-once property (flat in client count).
func BenchmarkFanout(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 256)
	frameBytes := int64(PrepareText(payload).Len())

	cases := []struct {
		name    string
		clients int
		slow    int
		opts    []HubOption
	}{
		{"serial/c64", 64, 0, []HubOption{WithSerialBroadcast()}},
		{"sharded/c64", 64, 0, nil},
		{"sharded/c1024", 1024, 0, nil},
		{"sharded/c4096", 4096, 0, nil},
		{"serial-slowmix/c64", 64, 1, []HubOption{WithSerialBroadcast(), WithHubWriteTimeout(20 * time.Millisecond)}},
		{"sharded-slowmix/c64", 64, 1, []HubOption{WithQueueDepth(4)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			opts := append([]HubOption{WithQueueDepth(64)}, tc.opts...)
			hub, received, cleanup := benchHub(b, tc.clients, tc.slow, opts...)
			defer cleanup()
			fast := int64(tc.clients - tc.slow)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target := received.Load() + fast*frameBytes
				hub.Broadcast(payload)
				// Wait for full fan-out so ns/op is completion time, not
				// enqueue time; stalled clients are excluded (they are being
				// evicted or timing out — exactly the isolation under test).
				deadline := time.Now().Add(5 * time.Second)
				for received.Load() < target {
					if time.Now().After(deadline) {
						b.Fatalf("fan-out stalled: %d/%d bytes", received.Load(), target)
					}
					runtime.Gosched()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(fast)*float64(b.N)/b.Elapsed().Seconds(), "deliveries/s")
		})
	}
}
