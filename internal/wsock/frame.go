// Package wsock is a minimal RFC 6455 WebSocket implementation — server
// upgrade, client dial, frame codec and a broadcast hub. The paper's
// dashboard receives reduced IoCs over "specific web sockets, developed
// relying on the socket.io library" (§IV-A); this package provides the
// equivalent push channel using only the standard library.
package wsock

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcode identifies a WebSocket frame type.
type Opcode byte

// Frame opcodes from RFC 6455 §5.2.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// ErrClosed is returned once the peer has sent (or we have sent) a close
// frame.
var ErrClosed = errors.New("wsock: connection closed")

const maxPayload = 32 << 20 // 32 MiB

// frame is one wire frame.
type frame struct {
	fin     bool
	opcode  Opcode
	payload []byte
}

// readFrame parses a single frame, unmasking if needed.
func readFrame(r io.Reader) (frame, error) {
	return readFrameInto(r, nil)
}

// ReadFrameInto decodes the next frame from r, reusing buf for the
// payload when it is large enough (a fresh slice is allocated otherwise).
// Unlike ReadMessage it performs no control-frame handling or
// reassembly — it is the allocation-free read path for load-harness
// clients that consume server broadcasts at six-figure connection counts.
// The returned payload aliases buf and is only valid until the next call.
func ReadFrameInto(r io.Reader, buf []byte) (Opcode, []byte, error) {
	f, err := readFrameInto(r, buf)
	if err != nil {
		return 0, nil, err
	}
	return f.opcode, f.payload, nil
}

func readFrameInto(r io.Reader, buf []byte) (frame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	f := frame{
		fin:    hdr[0]&0x80 != 0,
		opcode: Opcode(hdr[0] & 0x0f),
	}
	if hdr[0]&0x70 != 0 {
		return frame{}, fmt.Errorf("wsock: reserved bits set")
	}
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return frame{}, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return frame{}, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxPayload {
		return frame{}, fmt.Errorf("wsock: frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(r, mask[:]); err != nil {
			return frame{}, err
		}
	}
	if uint64(cap(buf)) >= length {
		f.payload = buf[:length]
	} else {
		f.payload = make([]byte, length)
	}
	if _, err := io.ReadFull(r, f.payload); err != nil {
		return frame{}, err
	}
	if masked {
		for i := range f.payload {
			f.payload[i] ^= mask[i%4]
		}
	}
	return f, nil
}

// writeFrame emits a frame, masking the payload when mask is true (clients
// must mask, servers must not).
func writeFrame(w io.Writer, f frame, mask bool) error {
	var hdr [14]byte
	n := 2
	hdr[0] = byte(f.opcode)
	if f.fin {
		hdr[0] |= 0x80
	}
	length := len(f.payload)
	switch {
	case length < 126:
		hdr[1] = byte(length)
	case length <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(length))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(length))
		n = 10
	}
	payload := f.payload
	if mask {
		hdr[1] |= 0x80
		var key [4]byte
		if _, err := rand.Read(key[:]); err != nil {
			return fmt.Errorf("wsock: mask key: %w", err)
		}
		copy(hdr[n:n+4], key[:])
		n += 4
		payload = make([]byte, length)
		for i, b := range f.payload {
			payload[i] = b ^ key[i%4]
		}
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}
