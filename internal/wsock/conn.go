package wsock

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// magicGUID is the key-acceptance constant from RFC 6455 §1.3.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Conn is an established WebSocket connection. Reads must come from a
// single goroutine; writes are internally serialized.
type Conn struct {
	conn   net.Conn
	rw     *bufio.ReadWriter
	client bool // true: this side masks its frames

	// writeTimeout bounds each write syscall burst; 0 disables deadlines.
	// Atomic so the hub can arm it after the connection is established.
	writeTimeout atomic.Int64

	writeMu sync.Mutex
	closed  bool
	lastArm time.Time // last deadline arming; writeMu held

	fragOp  Opcode
	fragBuf []byte
}

// NewConn wraps an already-established transport (TCP, net.Pipe, …) in a
// WebSocket connection without performing the HTTP upgrade — both sides
// must agree out-of-band that the byte stream speaks RFC 6455 frames.
// client selects masking: true for the connecting side, false for the
// accepting side. Load harnesses use this to drive the hub over in-memory
// pipes at client counts no kernel socket table could hold.
func NewConn(nc net.Conn, client bool) *Conn {
	return NewConnBuffered(nc, client, 0, 0)
}

// NewConnBuffered is NewConn with explicit bufio buffer sizes (≤0 picks
// the bufio default). Small buffers keep per-connection memory flat when
// a single process holds 100k+ connections.
func NewConnBuffered(nc net.Conn, client bool, readBuf, writeBuf int) *Conn {
	if readBuf <= 0 {
		readBuf = 4096
	}
	if writeBuf <= 0 {
		writeBuf = 4096
	}
	return &Conn{
		conn:   nc,
		rw:     bufio.NewReadWriter(bufio.NewReaderSize(nc, readBuf), bufio.NewWriterSize(nc, writeBuf)),
		client: client,
	}
}

// SetWriteTimeout bounds every subsequent write (data, ping and close
// frames) to d; a write that cannot complete in time fails with a
// net.Error whose Timeout() is true. Zero (the default) disables the
// deadline and restores write-forever semantics. Safe for concurrent use.
func (c *Conn) SetWriteTimeout(d time.Duration) { c.writeTimeout.Store(int64(d)) }

// armWriteDeadline applies the configured write timeout to the underlying
// transport. Arming is amortized: a deadline set within the last quarter
// of the timeout is reused, so steady-state writes skip the per-write
// timer/syscall cost and an individual write waits between 0.75·d and d
// before failing. Callers hold writeMu.
func (c *Conn) armWriteDeadline() {
	d := time.Duration(c.writeTimeout.Load())
	if d <= 0 || c.conn == nil {
		return
	}
	now := time.Now()
	if now.Sub(c.lastArm) < d/4 {
		return
	}
	c.lastArm = now
	_ = c.conn.SetWriteDeadline(now.Add(d))
}

// abort moves the transport deadline into the past, failing any blocked
// or future read/write immediately. The hub uses it to cut loose a
// stalled client without waiting out its write timeout.
func (c *Conn) abort() {
	if c.conn != nil {
		_ = c.conn.SetDeadline(time.Unix(1, 0))
	}
}

// Accept upgrades an HTTP request to a WebSocket connection (server side).
func Accept(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		return nil, fmt.Errorf("wsock: not a websocket upgrade request")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		return nil, fmt.Errorf("wsock: unsupported websocket version %q", r.Header.Get("Sec-WebSocket-Version"))
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return nil, fmt.Errorf("wsock: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, fmt.Errorf("wsock: response writer does not support hijacking")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsock: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &Conn{conn: conn, rw: rw, client: false}, nil
}

// Dial establishes a client WebSocket connection to a ws:// URL.
func Dial(rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("wsock: parse url: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("wsock: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("wsock: dial: %w", err)
	}
	var keyRaw [16]byte
	if _, err := rand.Read(keyRaw[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyRaw[:])
	path := u.RequestURI()
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n",
		path, u.Host, key)
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	status, err := rw.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wsock: read handshake: %w", err)
	}
	if !strings.Contains(status, "101") {
		conn.Close()
		return nil, fmt.Errorf("wsock: handshake rejected: %s", strings.TrimSpace(status))
	}
	var acceptHdr string
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if name, val, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(name), "Sec-WebSocket-Accept") {
			acceptHdr = strings.TrimSpace(val)
		}
	}
	if acceptHdr != acceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("wsock: bad Sec-WebSocket-Accept")
	}
	return &Conn{conn: conn, rw: rw, client: true}, nil
}

// ReadMessage returns the next complete data message, transparently
// answering pings and handling fragmentation. After a close frame it
// returns ErrClosed.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	for {
		f, err := readFrame(c.rw.Reader)
		if err != nil {
			return 0, nil, err
		}
		switch f.opcode {
		case OpPing:
			if err := c.write(frame{fin: true, opcode: OpPong, payload: f.payload}); err != nil {
				return 0, nil, err
			}
		case OpPong:
			// Unsolicited pongs are ignored.
		case OpClose:
			_ = c.writeCloseLocked(f.payload)
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if f.fin {
				return f.opcode, f.payload, nil
			}
			c.fragOp = f.opcode
			c.fragBuf = append(c.fragBuf[:0], f.payload...)
		case OpContinuation:
			if c.fragOp == 0 {
				return 0, nil, fmt.Errorf("wsock: continuation without start")
			}
			c.fragBuf = append(c.fragBuf, f.payload...)
			if len(c.fragBuf) > maxPayload {
				return 0, nil, fmt.Errorf("wsock: fragmented message too large")
			}
			if f.fin {
				op := c.fragOp
				c.fragOp = 0
				msg := make([]byte, len(c.fragBuf))
				copy(msg, c.fragBuf)
				return op, msg, nil
			}
		default:
			return 0, nil, fmt.Errorf("wsock: unexpected opcode %#x", f.opcode)
		}
	}
}

// WriteText sends a text message.
func (c *Conn) WriteText(payload []byte) error {
	return c.write(frame{fin: true, opcode: OpText, payload: payload})
}

// WriteBinary sends a binary message.
func (c *Conn) WriteBinary(payload []byte) error {
	return c.write(frame{fin: true, opcode: OpBinary, payload: payload})
}

// Ping sends a ping frame.
func (c *Conn) Ping(payload []byte) error {
	return c.write(frame{fin: true, opcode: OpPing, payload: payload})
}

// Close sends a close frame and closes the underlying connection.
func (c *Conn) Close() error {
	err := c.writeCloseLocked(nil)
	c.conn.Close()
	return err
}

// WritePrepared writes a pre-assembled broadcast frame. On server
// connections the shared bytes go to the wire verbatim — no per-client
// encode, mask or copy; client connections fall back to the masking path
// since RFC 6455 forbids unmasked client frames.
func (c *Conn) WritePrepared(pf *PreparedFrame) error {
	if c.client {
		return c.write(frame{fin: true, opcode: pf.opcode, payload: pf.Payload()})
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.armWriteDeadline()
	if _, err := c.rw.Write(pf.data); err != nil {
		return err
	}
	return c.rw.Flush()
}

func (c *Conn) write(f frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.armWriteDeadline()
	if err := writeFrame(c.rw.Writer, f, c.client); err != nil {
		return err
	}
	return c.rw.Flush()
}

func (c *Conn) writeCloseLocked(payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.armWriteDeadline()
	if err := writeFrame(c.rw.Writer, frame{fin: true, opcode: OpClose, payload: payload}, c.client); err != nil {
		return err
	}
	return c.rw.Flush()
}

// acceptKey computes the Sec-WebSocket-Accept value for a client key.
func acceptKey(key string) string {
	sum := sha1.Sum([]byte(key + magicGUID))
	return base64.StdEncoding.EncodeToString(sum[:])
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}
