package wsock

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pipeClient is one in-memory hub client: the server half is registered
// with the hub, the client half is driven by the test.
type pipeClient struct {
	server *Conn
	client net.Conn
}

// newPipeClient registers a fresh net.Pipe-backed connection with the
// hub. writeBuf bounds the server-side bufio buffer, controlling how many
// bytes a stalled peer can absorb before writes block.
func newPipeClient(h *Hub, writeBuf int) *pipeClient {
	sc, cc := net.Pipe()
	conn := NewConnBuffered(sc, false, 0, writeBuf)
	h.Add(conn)
	return &pipeClient{server: conn, client: cc}
}

// drainCount reads frames off the client half, counting data messages.
func (p *pipeClient) drainCount(counter *atomic.Int64) {
	r := bufio.NewReader(p.client)
	var buf [4096]byte
	for {
		op, _, err := ReadFrameInto(r, buf[:])
		if err != nil {
			return
		}
		if op == OpText || op == OpBinary {
			counter.Add(1)
		}
	}
}

// TestWriteTimeoutOnStalledPeer pins the satellite fix: WriteText, Ping
// and WritePrepared on a deliberately unread connection must fail with a
// timeout instead of blocking forever.
func TestWriteTimeoutOnStalledPeer(t *testing.T) {
	sc, cc := net.Pipe() // nothing ever reads cc
	defer cc.Close()
	defer sc.Close()
	conn := NewConnBuffered(sc, false, 0, 16)
	conn.SetWriteTimeout(50 * time.Millisecond)

	payload := bytes.Repeat([]byte("x"), 256)
	start := time.Now()
	var err error
	// The first writes may land in the bufio buffer; a blocked flush must
	// still surface the deadline.
	for i := 0; i < 10 && err == nil; i++ {
		err = conn.WriteText(payload)
	}
	if err == nil {
		t.Fatal("writes to an unread connection never failed")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error = %v, want net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", elapsed)
	}
	if err := conn.Ping(nil); err == nil {
		t.Fatal("ping after stalled write succeeded")
	}
}

// TestSlowClientDoesNotDelayOthers is the isolation acceptance property:
// with one stalled reader among N clients, the remaining N−1 receive
// every broadcast promptly — delivery never waits out the stalled
// client's write timeout — and the stalled client is evicted.
func TestSlowClientDoesNotDelayOthers(t *testing.T) {
	hub := NewHub(WithQueueDepth(8), WithHubWriteTimeout(10*time.Second))
	defer hub.Close()

	const fast = 8
	var received atomic.Int64
	clients := make([]*pipeClient, 0, fast)
	for i := 0; i < fast; i++ {
		p := newPipeClient(hub, 0)
		clients = append(clients, p)
		go p.drainCount(&received)
	}
	stalled := newPipeClient(hub, 16) // 16-byte buffer: blocks immediately
	defer stalled.client.Close()
	waitFor(t, func() bool { return hub.Len() == fast+1 })

	// Paced pushes: fast writers drain each frame in microseconds, so their
	// queues stay shallow, while the stalled client's blocked writer lets
	// its queue fill past the bound and trip the drop-slowest eviction.
	const messages = 40
	payload := bytes.Repeat([]byte("r"), 1024)
	start := time.Now()
	for i := 0; i < messages; i++ {
		hub.Broadcast(payload)
		time.Sleep(time.Millisecond)
	}
	waitFor(t, func() bool { return received.Load() == fast*messages })
	elapsed := time.Since(start)

	// The stalled client's write timeout is 10s; fast delivery finishing in
	// a fraction of that proves no head-of-line blocking.
	if elapsed > 3*time.Second {
		t.Fatalf("fast clients took %v with one stalled peer", elapsed)
	}
	waitFor(t, func() bool { return hub.Evicted() == 1 })
	if hub.Len() != fast {
		t.Fatalf("Len = %d after eviction, want %d (a fast client was evicted)", hub.Len(), fast)
	}
	for _, p := range clients {
		p.client.Close()
	}
}

// TestSerialBroadcastAblation pins the WithSerialBroadcast baseline:
// synchronous delivery with the same eviction semantics.
func TestSerialBroadcastAblation(t *testing.T) {
	hub := NewHub(WithSerialBroadcast(), WithHubWriteTimeout(100*time.Millisecond))
	defer hub.Close()
	var received atomic.Int64
	for i := 0; i < 3; i++ {
		p := newPipeClient(hub, 0)
		defer p.client.Close()
		go p.drainCount(&received)
	}
	stalled := newPipeClient(hub, 16)
	defer stalled.client.Close()

	payload := bytes.Repeat([]byte("s"), 1024)
	for i := 0; i < 6; i++ {
		hub.Broadcast(payload)
	}
	waitFor(t, func() bool { return received.Load() == 3*6 })
	// Serial mode can only shed the stalled client via the write timeout.
	waitFor(t, func() bool { return hub.Evicted() == 1 && hub.Len() == 3 })
}

// TestEvictionIdempotentUnderChurn is the -race regression for the old
// snapshot/dead-sweep eviction race: concurrent Add, Remove, Broadcast
// and CloseAll must tear every connection down exactly once, without
// panics or deadlocks.
func TestEvictionIdempotentUnderChurn(t *testing.T) {
	hub := NewHub(WithShards(4), WithQueueDepth(2), WithHubWriteTimeout(time.Second))
	defer hub.Close()

	var mu sync.Mutex
	var conns []*Conn
	var clientEnds []net.Conn
	addOne := func(stalled bool) {
		sc, cc := net.Pipe()
		conn := NewConnBuffered(sc, false, 0, 16)
		if !stalled {
			go func() { _, _ = io.Copy(io.Discard, cc) }()
		}
		hub.Add(conn)
		mu.Lock()
		conns = append(conns, conn)
		clientEnds = append(clientEnds, cc)
		mu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) { // adders: a mix of healthy and stalled peers
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					addOne(rng.Intn(4) == 0)
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() { // remover
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
				mu.Lock()
				if len(conns) > 0 {
					hub.Remove(conns[rng.Intn(len(conns))])
				}
				mu.Unlock()
			}
		}
	}()
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func() { // broadcasters
			defer wg.Done()
			payload := bytes.Repeat([]byte("c"), 128)
			for {
				select {
				case <-stop:
					return
				default:
					hub.Broadcast(payload)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // periodic CloseAll — the old code double-closed here
		defer wg.Done()
		for i := 0; i < 10; i++ {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				hub.CloseAll()
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	hub.CloseAll()
	if n := hub.Len(); n != 0 {
		t.Fatalf("Len after final CloseAll = %d", n)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, cc := range clientEnds {
		cc.Close()
	}
}

// TestBroadcastEncodeOnceAllocs is the encode-once acceptance assertion:
// one frame assembly per broadcast, with per-broadcast allocations flat in
// the client count.
func TestBroadcastEncodeOnceAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("a"), 512)
	allocsWith := func(clients int) float64 {
		hub := NewHub(WithQueueDepth(256))
		defer hub.Close()
		for i := 0; i < clients; i++ {
			p := newPipeClient(hub, 0)
			defer p.client.Close()
			go func(cc net.Conn) { _, _ = io.Copy(io.Discard, cc) }(p.client)
		}
		waitFor(t, func() bool { return hub.Len() == clients })
		pf := PrepareText(payload)
		return testing.AllocsPerRun(50, func() {
			target := hub.Sent() + clients
			hub.BroadcastPrepared(pf)
			for hub.Sent() < target {
				runtime.Gosched()
			}
		})
	}
	one := allocsWith(1)
	many := allocsWith(64)
	t.Logf("allocs per broadcast: 1 client = %.1f, 64 clients = %.1f", one, many)
	if many > one+3 {
		t.Fatalf("broadcast allocations scale with clients: 1 → %.1f, 64 → %.1f", one, many)
	}
	if many > 8 {
		t.Fatalf("broadcast allocates %.1f times per message", many)
	}
}

// TestPreparedFrameWireCompatible checks a prepared frame decodes
// identically to one produced by the per-write encoder, across the three
// length encodings.
func TestPreparedFrameWireCompatible(t *testing.T) {
	for _, n := range []int{0, 1, 125, 126, 65535, 65536} {
		payload := bytes.Repeat([]byte("p"), n)
		pf := PrepareText(payload)
		var direct bytes.Buffer
		if err := writeFrame(&direct, frame{fin: true, opcode: OpText, payload: payload}, false); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pf.data, direct.Bytes()) {
			t.Fatalf("prepared frame (len %d) differs from writeFrame output", n)
		}
		got, err := readFrame(bytes.NewReader(pf.data))
		if err != nil {
			t.Fatal(err)
		}
		if !got.fin || got.opcode != OpText || !bytes.Equal(got.payload, payload) {
			t.Fatalf("prepared frame (len %d) did not round-trip", n)
		}
		if !bytes.Equal(pf.Payload(), payload) {
			t.Fatalf("Payload() mismatch at len %d", n)
		}
	}
}

// TestHubRemoveKeepsConnectionOpen pins the Remove contract: the
// connection is unregistered but stays writable by its owner.
func TestHubRemoveKeepsConnectionOpen(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	p := newPipeClient(hub, 0)
	defer p.client.Close()
	var received atomic.Int64
	go p.drainCount(&received)
	waitFor(t, func() bool { return hub.Len() == 1 })
	hub.Remove(p.server)
	if hub.Len() != 0 {
		t.Fatalf("Len after Remove = %d", hub.Len())
	}
	if err := p.server.WriteText([]byte("direct")); err != nil {
		t.Fatalf("write after Remove failed: %v", err)
	}
	waitFor(t, func() bool { return received.Load() == 1 })
	if hub.Evicted() != 0 {
		t.Fatalf("Remove counted as eviction: %d", hub.Evicted())
	}
}
