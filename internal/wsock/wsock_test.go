package wsock

import (
	"bufio"
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// echoServer upgrades requests and echoes every data message back.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Accept(w, r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		defer conn.Close()
		for {
			op, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			var werr error
			if op == OpText {
				werr = conn.WriteText(payload)
			} else {
				werr = conn.WriteBinary(payload)
			}
			if werr != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http")
}

func TestEchoTextAndBinary(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.WriteText([]byte("hello dashboard")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(payload) != "hello dashboard" {
		t.Fatalf("echo = %v %q", op, payload)
	}

	bin := []byte{0x00, 0xff, 0x10, 0x80}
	if err := conn.WriteBinary(bin); err != nil {
		t.Fatal(err)
	}
	op, payload, err = conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(payload, bin) {
		t.Fatalf("binary echo = %v %v", op, payload)
	}
}

func TestEchoLargeMessage(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// >64 KiB forces the 8-byte extended length path.
	big := bytes.Repeat([]byte("x"), 70000)
	if err := conn.WriteText(big); err != nil {
		t.Fatal(err)
	}
	_, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != len(big) {
		t.Fatalf("len = %d, want %d", len(payload), len(big))
	}
}

func TestEchoQuick(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f := func(payload []byte) bool {
		if err := conn.WriteBinary(payload); err != nil {
			return false
		}
		_, got, err := conn.ReadMessage()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPingAnsweredTransparently(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server echo loop calls ReadMessage, which must answer our ping
	// without surfacing it; a following text echo proves liveness.
	if err := conn.Ping([]byte("are-you-there")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText([]byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	_, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "after-ping" {
		t.Fatalf("echo after ping = %q", payload)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteText([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestServerSeesClientClose(t *testing.T) {
	done := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Accept(w, r)
		if err != nil {
			done <- err
			return
		}
		_, _, err = conn.ReadMessage()
		done <- err
	}))
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("server read error = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never observed close")
	}
}

func TestAcceptRejectsPlainRequests(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Accept(w, r); err != nil {
			http.Error(w, "nope", http.StatusBadRequest)
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestDialRejectsBadScheme(t *testing.T) {
	if _, err := Dial("http://example.invalid"); err == nil {
		t.Fatal("http scheme accepted")
	}
	if _, err := Dial("::bad::"); err == nil {
		t.Fatal("garbage url accepted")
	}
}

func TestAcceptKeyKnownVector(t *testing.T) {
	// RFC 6455 §1.3 example.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	const want = "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}

func TestFragmentedMessageReassembled(t *testing.T) {
	// Drive the codec directly: write continuation frames into a pipe-like
	// buffer and read them back as one message.
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{fin: false, opcode: OpText, payload: []byte("hel")}, false); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frame{fin: false, opcode: OpContinuation, payload: []byte("lo ")}, false); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frame{fin: true, opcode: OpContinuation, payload: []byte("world")}, false); err != nil {
		t.Fatal(err)
	}
	conn := connFromBuffer(&buf)
	op, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(payload) != "hello world" {
		t.Fatalf("reassembled = %v %q", op, payload)
	}
}

func TestContinuationWithoutStartRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{fin: true, opcode: OpContinuation, payload: []byte("x")}, false); err != nil {
		t.Fatal(err)
	}
	conn := connFromBuffer(&buf)
	if _, _, err := conn.ReadMessage(); err == nil {
		t.Fatal("orphan continuation accepted")
	}
}

func TestMaskedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := []byte("masked payload")
	if err := writeFrame(&buf, frame{fin: true, opcode: OpText, payload: want}, true); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.payload, want) {
		t.Fatalf("unmasked = %q, want %q", f.payload, want)
	}
}

func TestHubBroadcast(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Accept(w, r)
		if err != nil {
			return
		}
		hub.Add(conn)
		// Server side reads to keep the connection alive (answers pings,
		// observes close).
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				hub.Remove(conn)
				return
			}
		}
	}))
	defer srv.Close()

	var conns []*Conn
	for i := 0; i < 3; i++ {
		c, err := Dial(wsURL(srv))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns = append(conns, c)
	}
	waitFor(t, func() bool { return hub.Len() == 3 })

	if n := hub.Broadcast([]byte(`{"rioc":"new"}`)); n != 3 {
		t.Fatalf("Broadcast routed to %d, want 3", n)
	}
	for _, c := range conns {
		_, payload, err := c.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if string(payload) != `{"rioc":"new"}` {
			t.Fatalf("payload = %q", payload)
		}
	}
	// Writes complete on per-client writer goroutines; the delivery counter
	// trails the client-side reads by a scheduling instant.
	waitFor(t, func() bool { return hub.Sent() == 3 })
	hub.CloseAll()
	if hub.Len() != 0 {
		t.Fatalf("Len after CloseAll = %d", hub.Len())
	}
}

func TestHubEvictsDeadConnections(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Accept(w, r)
		if err != nil {
			return
		}
		hub.Add(conn)
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}))
	defer srv.Close()
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hub.Len() == 1 })
	c.Close()
	// After the client closes, the server write path fails eventually; one
	// or two broadcasts flush it out.
	waitFor(t, func() bool {
		hub.Broadcast([]byte("ping"))
		return hub.Len() == 0
	})
}

func TestHubConcurrentBroadcast(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	srv := echoHubServer(t, hub)
	var conns []*Conn
	for i := 0; i < 4; i++ {
		c, err := Dial(wsURL(srv))
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		go func(c *Conn) {
			for {
				if _, _, err := c.ReadMessage(); err != nil {
					return
				}
			}
		}(c)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	waitFor(t, func() bool { return hub.Len() == 4 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				hub.Broadcast([]byte("concurrent"))
			}
		}()
	}
	wg.Wait()
}

func echoHubServer(t *testing.T, hub *Hub) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Accept(w, r)
		if err != nil {
			return
		}
		hub.Add(conn)
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				hub.Remove(conn)
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// connFromBuffer builds a read-only Conn over pre-encoded frames; tests
// using it never trigger writes.
func connFromBuffer(buf *bytes.Buffer) *Conn {
	return &Conn{
		rw: bufio.NewReadWriter(bufio.NewReader(buf), bufio.NewWriter(buf)),
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
