package correlate

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
)

// partition renders a cluster set as sorted member-ID signatures, the
// identity-free view two correlators must agree on.
func partition(cs []ComposedIoC) []string {
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		ids := make([]string, 0, len(c.Events))
		for _, e := range c.Events {
			ids = append(ids, e.ID)
		}
		sort.Strings(ids)
		out = append(out, c.Category+"|"+strings.Join(ids, ","))
	}
	sort.Strings(out)
	return out
}

// randomStream generates a deduplicated event stream with heavy key
// overlap (shared registered domains, /24 neighbours, shared campaigns)
// across a few categories and spread-out sighting times.
func randomStream(t testing.TB, rng *rand.Rand, n int) []normalize.Event {
	t.Helper()
	categories := []string{normalize.CategoryMalwareDomain, normalize.CategoryBotnetC2}
	seenIDs := make(map[string]bool)
	var out []normalize.Event
	for len(out) < n {
		cat := categories[rng.Intn(len(categories))]
		var value string
		switch rng.Intn(3) {
		case 0:
			value = fmt.Sprintf("h%d.dom%d.example", rng.Intn(50), rng.Intn(8))
		case 1:
			value = fmt.Sprintf("203.0.%d.%d", rng.Intn(3), 1+rng.Intn(200))
		default:
			value = fmt.Sprintf("http://h%d.dom%d.example/p%d", rng.Intn(50), rng.Intn(8), rng.Intn(9))
		}
		at := seen.Add(time.Duration(rng.Intn(72)) * time.Hour)
		e, err := normalize.New(value, cat, "feed", normalize.SourceOSINT, at)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(4) == 0 {
			e.Context = map[string]string{"campaign": fmt.Sprintf("op-%d", rng.Intn(4))}
		}
		if seenIDs[e.ID] {
			continue // the platform dedups by event ID before correlation
		}
		seenIDs[e.ID] = true
		out = append(out, e)
	}
	return out
}

// TestIncrementalMatchesBatchPartition is the tentpole property: any
// stream, fed one-at-a-time or in random batch splits, must end in the
// same cluster partition the batch Correlator computes over the whole
// stream — with and without a time window.
func TestIncrementalMatchesBatchPartition(t *testing.T) {
	windows := []time.Duration{0, 2 * time.Hour, 24 * time.Hour}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		stream := randomStream(t, rng, 40+rng.Intn(80))
		for _, w := range windows {
			var opts []Option
			if w > 0 {
				opts = append(opts, WithTimeWindow(w))
			}
			want := partition(New(opts...).Correlate(stream))

			// One event per Add.
			single := NewIncremental(opts...)
			for _, e := range stream {
				single.Add([]normalize.Event{e})
			}
			if got := partition(single.Clusters()); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d window %v: one-at-a-time partition diverged\ngot  %v\nwant %v",
					trial, w, got, want)
			}

			// Random batch splits.
			batched := NewIncremental(opts...)
			for lo := 0; lo < len(stream); {
				hi := lo + 1 + rng.Intn(10)
				if hi > len(stream) {
					hi = len(stream)
				}
				batched.Add(stream[lo:hi])
				lo = hi
			}
			if got := partition(batched.Clusters()); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d window %v: batched partition diverged\ngot  %v\nwant %v",
					trial, w, got, want)
			}
		}
	}
}

func TestIncrementalStableUUIDAcrossGrowth(t *testing.T) {
	inc := NewIncremental()
	d1 := inc.Add([]normalize.Event{ev(t, "a.evil.example", normalize.CategoryMalwareDomain)})
	if len(d1.New) != 1 || len(d1.Updated) != 0 || len(d1.Removed) != 0 {
		t.Fatalf("first add delta = %+v", d1)
	}
	id := d1.New[0].ID
	hash := d1.New[0].ContentHash
	if id == "" || hash == "" {
		t.Fatal("cluster emitted without ID or content hash")
	}

	d2 := inc.Add([]normalize.Event{ev(t, "b.evil.example", normalize.CategoryMalwareDomain)})
	if len(d2.New) != 0 || len(d2.Updated) != 1 || len(d2.Removed) != 0 {
		t.Fatalf("growth delta = %+v", d2)
	}
	grown := d2.Updated[0]
	if grown.ID != id {
		t.Fatalf("cluster identity changed on growth: %s → %s", id, grown.ID)
	}
	if grown.ContentHash == hash {
		t.Fatal("content hash unchanged although membership grew")
	}
	if len(grown.Events) != 2 {
		t.Fatalf("grown cluster has %d members, want 2", len(grown.Events))
	}

	// Replaying a known event is a no-op delta.
	d3 := inc.Add([]normalize.Event{ev(t, "a.evil.example", normalize.CategoryMalwareDomain)})
	if !d3.Empty() {
		t.Fatalf("duplicate add produced delta %+v", d3)
	}
}

func TestIncrementalMergeRetractsAbsorbed(t *testing.T) {
	inc := NewIncremental()
	dA := inc.Add([]normalize.Event{ev(t, "a.x.example", normalize.CategoryMalwareDomain)})
	older := dA.New[0].ID
	b := ev(t, "c.y.example", normalize.CategoryMalwareDomain)
	b.Context = map[string]string{"campaign": "op"}
	dB := inc.Add([]normalize.Event{b})
	younger := dB.New[0].ID

	// The bridge shares the registered domain with A and the campaign
	// with B, so the two emitted clusters must merge.
	bridge := ev(t, "d.x.example", normalize.CategoryMalwareDomain)
	bridge.Context = map[string]string{"campaign": "op"}
	d := inc.Add([]normalize.Event{bridge})
	if len(d.Updated) != 1 || len(d.Removed) != 1 || len(d.New) != 0 {
		t.Fatalf("merge delta = %+v", d)
	}
	if d.Updated[0].ID != older {
		t.Fatalf("survivor = %s, want the older cluster %s", d.Updated[0].ID, older)
	}
	if d.Removed[0] != younger {
		t.Fatalf("removed = %s, want the younger cluster %s", d.Removed[0], younger)
	}
	if len(d.Updated[0].Events) != 3 {
		t.Fatalf("survivor has %d members, want 3", len(d.Updated[0].Events))
	}
	st := inc.Stats()
	if st.Clusters != 1 || st.Merges != 1 {
		t.Fatalf("stats = %+v, want 1 live cluster and 1 merge", st)
	}
}

func TestIncrementalMinClusterSizeGate(t *testing.T) {
	inc := NewIncremental(WithMinClusterSize(2))
	d1 := inc.Add([]normalize.Event{ev(t, "solo.evil.example", normalize.CategoryMalwareDomain)})
	if !d1.Empty() {
		t.Fatalf("singleton emitted below the size gate: %+v", d1)
	}
	// Crossing the threshold emits the cluster as New, not Updated.
	d2 := inc.Add([]normalize.Event{ev(t, "pair.evil.example", normalize.CategoryMalwareDomain)})
	if len(d2.New) != 1 || len(d2.Updated) != 0 {
		t.Fatalf("threshold crossing delta = %+v", d2)
	}
	if len(d2.New[0].Events) != 2 {
		t.Fatalf("emitted cluster size = %d", len(d2.New[0].Events))
	}
}

func TestIncrementalSeedMergesPostRestartSighting(t *testing.T) {
	// Simulate recovery: a pre-crash cluster is seeded under its persisted
	// identity, then a new sighting sharing its registered domain arrives.
	pre := []normalize.Event{
		ev(t, "a.evil.example", normalize.CategoryMalwareDomain),
		ev(t, "b.evil.example", normalize.CategoryMalwareDomain),
	}
	inc := NewIncremental()
	if absorbed := inc.Seed("persisted-uuid-1", pre); len(absorbed) != 0 {
		t.Fatalf("clean seed absorbed %v", absorbed)
	}
	d := inc.Add([]normalize.Event{ev(t, "c.evil.example", normalize.CategoryMalwareDomain)})
	if len(d.New) != 0 || len(d.Updated) != 1 {
		t.Fatalf("post-restart sighting delta = %+v", d)
	}
	if d.Updated[0].ID != "persisted-uuid-1" {
		t.Fatalf("sighting merged into %s, want the pre-crash identity", d.Updated[0].ID)
	}
	if len(d.Updated[0].Events) != 3 {
		t.Fatalf("cluster has %d members, want 3", len(d.Updated[0].Events))
	}
}

func TestIncrementalSeedRetractsStaleDuplicate(t *testing.T) {
	members := []normalize.Event{ev(t, "dup.evil.example", normalize.CategoryMalwareDomain)}
	inc := NewIncremental()
	if absorbed := inc.Seed("older-uuid", members); len(absorbed) != 0 {
		t.Fatalf("first seed absorbed %v", absorbed)
	}
	// A second persisted cluster with the same members is a stale
	// duplicate (e.g. crash mid-retraction): seeding it must retract it.
	absorbed := inc.Seed("stale-uuid", members)
	if len(absorbed) != 1 || absorbed[0] != "stale-uuid" {
		t.Fatalf("stale duplicate seed absorbed %v, want [stale-uuid]", absorbed)
	}
	if st := inc.Stats(); st.Clusters != 1 {
		t.Fatalf("live clusters = %d, want 1", st.Clusters)
	}
}

// TestRecorrelateAllConvergesWithIncremental feeds the same split stream
// through the default streaming mode and the WithRecorrelateAll ablation
// and applies both delta sequences to a simulated store: the surviving
// membership sets must be identical (identities may differ — the ablation
// derives them from the minimum member).
func TestRecorrelateAllConvergesWithIncremental(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		stream := randomStream(t, rng, 60)
		var splits [][]normalize.Event
		for lo := 0; lo < len(stream); {
			hi := lo + 1 + rng.Intn(8)
			if hi > len(stream) {
				hi = len(stream)
			}
			splits = append(splits, stream[lo:hi])
			lo = hi
		}
		apply := func(inc *Incremental) map[string]ComposedIoC {
			store := make(map[string]ComposedIoC)
			for _, batch := range splits {
				d := inc.Add(batch)
				for _, id := range d.Removed {
					delete(store, id)
				}
				for _, c := range d.New {
					if _, dup := store[c.ID]; dup {
						t.Fatalf("trial %d: cluster %s added twice", trial, c.ID)
					}
					store[c.ID] = c
				}
				for _, c := range d.Updated {
					if _, known := store[c.ID]; !known {
						t.Fatalf("trial %d: update for unknown cluster %s", trial, c.ID)
					}
					store[c.ID] = c
				}
			}
			return store
		}
		fast := apply(NewIncremental())
		slow := apply(NewIncremental(WithRecorrelateAll(true)))
		toPartition := func(m map[string]ComposedIoC) []string {
			var cs []ComposedIoC
			for _, c := range m {
				cs = append(cs, c)
			}
			return partition(cs)
		}
		got, want := toPartition(fast), toPartition(slow)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: modes diverged\nincremental   %v\nrecorrelate   %v", trial, got, want)
		}
	}
}

func TestIncrementalTimeWindowChainBreak(t *testing.T) {
	w := 2 * time.Hour
	mk := func(path string, at time.Duration) normalize.Event {
		e := ev(t, "http://evil.example/"+path, normalize.CategoryMalwareDomain)
		e.FirstSeen, e.LastSeen = seen.Add(at), seen.Add(at)
		return e
	}
	inc := NewIncremental(WithTimeWindow(w))
	inc.Add([]normalize.Event{mk("a", 0)})
	inc.Add([]normalize.Event{mk("b", time.Hour)})     // chains with a
	inc.Add([]normalize.Event{mk("c", 4 * time.Hour)}) // 3h gap > window: new cluster
	inc.Add([]normalize.Event{mk("d", 5 * time.Hour)}) // chains with c
	clusters := inc.Clusters()
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (chain break)", len(clusters))
	}
	// A late arrival at 6.5h is within the window of d (5h) but not of
	// the first chain: it grows the later cluster without bridging —
	// exactly what the batch correlator computes over the full stream.
	d := inc.Add([]normalize.Event{mk("late", 6*time.Hour + 30*time.Minute)})
	if len(d.Updated) != 1 || len(d.Removed) != 0 || len(d.Updated[0].Events) != 3 {
		t.Fatalf("late-arrival delta = %+v", d)
	}
	// An arrival inside the gap, within the window of both sides (1.5h to
	// b and to c), bridges the chains and retracts the absorbed identity.
	d = inc.Add([]normalize.Event{mk("bridge", 2*time.Hour + 30*time.Minute)})
	if len(d.Updated) != 1 || len(d.Removed) != 1 {
		t.Fatalf("bridging delta = %+v", d)
	}
	if got := inc.Clusters(); len(got) != 1 || len(got[0].Events) != 6 {
		t.Fatalf("bridged clusters = %+v", got)
	}
}

func TestMembersFromMISPRoundTrip(t *testing.T) {
	events := []normalize.Event{
		ev(t, "evil.example", normalize.CategoryMalwareDomain),
		ev(t, "http://evil.example/mal", normalize.CategoryMalwareDomain),
	}
	inc := NewIncremental()
	d := inc.Add(events)
	me, err := ToMISP(&d.New[0], seen)
	if err != nil {
		t.Fatal(err)
	}
	if got := ClusterContentOf(me); got != d.New[0].ContentHash {
		t.Fatalf("ClusterContentOf = %q, want %q", got, d.New[0].ContentHash)
	}
	if got := CategoryOf(me); got != normalize.CategoryMalwareDomain {
		t.Fatalf("CategoryOf = %q", got)
	}
	members := MembersFromMISP(me)
	if len(members) != 2 {
		t.Fatalf("reconstructed %d members, want 2", len(members))
	}
	wantIDs := map[string]bool{events[0].ID: true, events[1].ID: true}
	for _, m := range members {
		if !wantIDs[m.ID] {
			t.Fatalf("reconstructed member %s (%s) not in original set", m.ID, m.Value)
		}
		if m.Source != "feed" {
			t.Fatalf("reconstructed source = %q, want feed", m.Source)
		}
		if !m.LastSeen.Equal(seen) {
			t.Fatalf("reconstructed sighting time = %v, want %v", m.LastSeen, seen)
		}
	}
	// Non-cIoC events reconstruct to nothing.
	plain := misp.NewEvent("infrastructure sighting", seen)
	plain.AddAttribute("domain", "Network activity", "x.example", seen)
	if got := MembersFromMISP(plain); got != nil {
		t.Fatalf("non-cIoC reconstructed %v", got)
	}
}
