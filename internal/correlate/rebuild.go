package correlate

import (
	"strings"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
)

const (
	categoryTagPrefix       = "caisp:category=\""
	clusterContentTagPrefix = "caisp:cluster-content=\""
)

// rebuildableAttr lists the MISP attribute types that carry member
// indicator values (the inverse of the attributeType map). Context-bearing
// attributes — comments, classification text, cvss vectors, reference
// links — are skipped during reconstruction.
var rebuildableAttr = func() map[string]bool {
	out := make(map[string]bool, len(attributeType))
	for _, t := range attributeType {
		out[t] = true
	}
	return out
}()

// CategoryOf extracts the threat category a composed IoC was stored with,
// or "" if the event carries no category tag.
func CategoryOf(e *misp.Event) string {
	for _, t := range e.Tags {
		if v, ok := strings.CutPrefix(t.Name, categoryTagPrefix); ok {
			return strings.TrimSuffix(v, "\"")
		}
	}
	return ""
}

// ClusterContentOf extracts the membership content hash of a stored
// composed IoC, or "" if absent (events predating the streaming
// correlator).
func ClusterContentOf(e *misp.Event) string {
	for _, t := range e.Tags {
		if v, ok := strings.CutPrefix(t.Name, clusterContentTagPrefix); ok {
			return strings.TrimSuffix(v, "\"")
		}
	}
	return ""
}

// MembersFromMISP reconstructs the normalized member events of a stored
// composed IoC so the streaming correlator's index can be rebuilt after a
// restart. Reconstruction is lossy in context (description, cvss, …) but
// lossless in what correlation needs: normalize.New re-derives the same
// deterministic event ID from (value, category), and the attribute
// timestamp restores the sighting time used by time-window chains.
// Returns nil for events that are not composed IoCs.
func MembersFromMISP(e *misp.Event) []normalize.Event {
	if !e.HasTag("caisp:cioc") {
		return nil
	}
	category := CategoryOf(e)
	if category == "" {
		return nil
	}
	var out []normalize.Event
	for i := range e.Attributes {
		a := &e.Attributes[i]
		if !rebuildableAttr[a.Type] {
			continue
		}
		source := sourceFromComment(a.Comment)
		ev, err := normalize.New(a.Value, category, source, normalize.SourceOSINT, a.Timestamp.Time)
		if err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// sourceFromComment recovers the first feed name from an attribute comment
// written by attributeComment ("… | sources: a, b").
func sourceFromComment(comment string) string {
	for _, part := range strings.Split(comment, " | ") {
		if rest, ok := strings.CutPrefix(part, "sources: "); ok {
			if first, _, found := strings.Cut(rest, ","); found {
				return strings.TrimSpace(first)
			}
			return strings.TrimSpace(rest)
		}
	}
	return ""
}
