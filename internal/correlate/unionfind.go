// Package correlate implements the aggregation and correlation stage of the
// OSINT Data Collector (paper §III-A1): security events are grouped by
// threat category, interconnections between events inside each group are
// found, and each connected sub-set of events is composed into a single
// composed IoC (cIoC).
package correlate

// unionFind is a disjoint-set forest over string keys with path compression
// and union by rank.
type unionFind struct {
	parent map[string]string
	rank   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{
		parent: make(map[string]string),
		rank:   make(map[string]int),
	}
}

// add registers a key as its own singleton set if unknown.
func (u *unionFind) add(key string) {
	if _, ok := u.parent[key]; !ok {
		u.parent[key] = key
	}
}

// find returns the set representative for key, compressing paths.
func (u *unionFind) find(key string) string {
	u.add(key)
	root := key
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[key] != root {
		key, u.parent[key] = u.parent[key], root
	}
	return root
}

// union merges the sets containing a and b.
func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// connected reports whether a and b are in the same set.
func (u *unionFind) connected(a, b string) bool {
	return u.find(a) == u.find(b)
}

// components groups all registered keys by their representative.
func (u *unionFind) components() map[string][]string {
	out := make(map[string][]string)
	for key := range u.parent {
		root := u.find(key)
		out[root] = append(out[root], key)
	}
	return out
}
