package correlate

import (
	"net"
	"net/url"
	"sort"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/uuid"
)

// ComposedIoC (cIoC) is the result of composing a correlated sub-set of
// security events of one threat category into a single indicator of
// compromise.
type ComposedIoC struct {
	// ID identifies the cluster. The batch Correlator derives it from the
	// member event IDs; the streaming Incremental correlator instead uses a
	// stable cluster UUID (derived from the seed member) that survives
	// membership growth — see ContentHash for the membership-sensitive hash.
	ID string `json:"id"`
	// ContentHash is deterministic over the member event IDs: it changes
	// whenever membership changes, so downstream consumers can detect
	// whether an edit under the same ID actually altered the cluster.
	ContentHash string `json:"content_hash,omitempty"`
	// Category is the shared threat category of the members.
	Category string `json:"category"`
	// Events are the member events, sorted by ID for determinism.
	Events []normalize.Event `json:"events"`
	// CorrelationKeys are the shared keys that connected the members.
	CorrelationKeys []string `json:"correlation_keys,omitempty"`
	// FirstSeen / LastSeen bound the members' observation windows.
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
}

// Values returns the member indicator values of the given type.
func (c *ComposedIoC) Values(typ normalize.IoCType) []string {
	var out []string
	for _, e := range c.Events {
		if e.Type == typ {
			out = append(out, e.Value)
		}
	}
	return out
}

// Sources returns the union of member sources, sorted.
func (c *ComposedIoC) Sources() []string {
	set := make(map[string]bool)
	for _, e := range c.Events {
		for _, s := range e.Sources() {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Correlator aggregates events by category and clusters events that share a
// correlation key. The zero value is not usable; construct with New.
type Correlator struct {
	minClusterSize int
	timeWindow     time.Duration
	// recorrelateAll is only meaningful for the streaming Incremental
	// correlator (WithRecorrelateAll ablation); the batch path ignores it.
	recorrelateAll bool
	// registry is only meaningful for the streaming Incremental correlator
	// (WithMetrics); the batch path ignores it.
	registry *obs.Registry
}

// Option configures a Correlator.
type Option interface{ apply(*Correlator) }

type minClusterOption int

func (o minClusterOption) apply(c *Correlator) { c.minClusterSize = int(o) }

// WithMinClusterSize discards clusters smaller than n events (n ≥ 1).
// The default of 1 keeps singletons: an uncorrelated event still becomes a
// (single-member) cIoC, as every OSINT datum must reach the heuristic stage.
func WithMinClusterSize(n int) Option { return minClusterOption(n) }

type timeWindowOption time.Duration

func (o timeWindowOption) apply(c *Correlator) { c.timeWindow = time.Duration(o) }

// WithTimeWindow only connects events whose observation times lie within d
// of each other (chained: a key seen repeatedly keeps its cluster alive as
// long as consecutive sightings stay within d). Zero, the default, imposes
// no temporal constraint.
func WithTimeWindow(d time.Duration) Option { return timeWindowOption(d) }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(c *Correlator) { c.registry = o.reg }

// WithMetrics registers the streaming correlator's caisp_correlate_*
// families into reg (Add latency histogram plus cluster-churn views).
// The batch Correlator ignores this option; a nil registry disables
// instrumentation.
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg: reg} }

// New constructs a Correlator.
func New(opts ...Option) *Correlator {
	c := &Correlator{minClusterSize: 1}
	for _, o := range opts {
		o.apply(c)
	}
	if c.minClusterSize < 1 {
		c.minClusterSize = 1
	}
	return c
}

// Correlate aggregates events by threat category, connects events within a
// category that share a correlation key, and composes each connected
// cluster into a cIoC. Output is sorted by (category, ID) for determinism.
func (c *Correlator) Correlate(events []normalize.Event) []ComposedIoC {
	byCategory := make(map[string][]normalize.Event)
	for _, e := range events {
		byCategory[e.Category] = append(byCategory[e.Category], e)
	}

	var out []ComposedIoC
	for category, group := range byCategory {
		out = append(out, c.correlateGroup(category, group)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (c *Correlator) correlateGroup(category string, group []normalize.Event) []ComposedIoC {
	uf := newUnionFind()
	byID := make(map[string]normalize.Event, len(group))
	keyOwners := make(map[string][]string) // correlation key -> event IDs

	for _, e := range group {
		uf.add(e.ID)
		byID[e.ID] = e
		for _, key := range CorrelationKeys(e) {
			keyOwners[key] = append(keyOwners[key], e.ID)
		}
	}
	for _, owners := range keyOwners {
		if c.timeWindow <= 0 {
			for i := 1; i < len(owners); i++ {
				uf.union(owners[0], owners[i])
			}
			continue
		}
		// Temporal constraint: sort the key's sightings and union only
		// consecutive ones within the window.
		sort.Slice(owners, func(i, j int) bool {
			return byID[owners[i]].LastSeen.Before(byID[owners[j]].LastSeen)
		})
		for i := 1; i < len(owners); i++ {
			prev, cur := byID[owners[i-1]], byID[owners[i]]
			if cur.LastSeen.Sub(prev.LastSeen) <= c.timeWindow {
				uf.union(owners[i-1], owners[i])
			}
		}
	}

	var out []ComposedIoC
	for _, memberIDs := range uf.components() {
		if len(memberIDs) < c.minClusterSize {
			continue
		}
		sort.Strings(memberIDs)
		cioc := ComposedIoC{Category: category}
		keySet := make(map[string]int)
		for _, id := range memberIDs {
			e := byID[id]
			cioc.Events = append(cioc.Events, e)
			for _, k := range CorrelationKeys(e) {
				keySet[k]++
			}
			if cioc.FirstSeen.IsZero() || e.FirstSeen.Before(cioc.FirstSeen) {
				cioc.FirstSeen = e.FirstSeen
			}
			if e.LastSeen.After(cioc.LastSeen) {
				cioc.LastSeen = e.LastSeen
			}
		}
		// Only keys shared by at least two members explain the clustering.
		for k, n := range keySet {
			if n >= 2 {
				cioc.CorrelationKeys = append(cioc.CorrelationKeys, k)
			}
		}
		sort.Strings(cioc.CorrelationKeys)
		cioc.ID = composedID(memberIDs)
		cioc.ContentHash = cioc.ID
		out = append(out, cioc)
	}
	return out
}

// CorrelationKeys extracts the connection points of an event: values that,
// when shared with another event of the same category, link the two. A URL
// contributes its host; an IP contributes itself and its /24; a domain its
// registered suffix pair; context entries like campaign/malware/cve
// contribute tagged keys.
func CorrelationKeys(e normalize.Event) []string {
	var keys []string
	addHost := func(host string) {
		host = strings.ToLower(host)
		if ip := net.ParseIP(host); ip != nil {
			keys = append(keys, "ip:"+ip.String())
			if v4 := ip.To4(); v4 != nil {
				keys = append(keys, "net24:"+v4.Mask(net.CIDRMask(24, 32)).String())
			}
			return
		}
		keys = append(keys, "host:"+host)
		if reg := registeredDomain(host); reg != "" && reg != host {
			keys = append(keys, "domain:"+reg)
		} else if reg != "" {
			keys = append(keys, "domain:"+reg)
		}
	}

	switch e.Type {
	case normalize.TypeDomain:
		addHost(e.Value)
	case normalize.TypeIPv4, normalize.TypeIPv6:
		addHost(e.Value)
	case normalize.TypeURL:
		if u, err := url.Parse(e.Value); err == nil && u.Host != "" {
			addHost(u.Hostname())
		}
	case normalize.TypeMD5, normalize.TypeSHA1, normalize.TypeSHA256, normalize.TypeSHA512:
		keys = append(keys, "hash:"+e.Value)
	case normalize.TypeCVE:
		keys = append(keys, "cve:"+e.Value)
	case normalize.TypeEmail:
		if _, dom, ok := strings.Cut(e.Value, "@"); ok {
			addHost(dom)
		}
	case normalize.TypeFilename:
		keys = append(keys, "filename:"+strings.ToLower(e.Value))
	}

	for _, ctxKey := range []string{"campaign", "malware", "actor", "cve"} {
		if v, ok := e.Context[ctxKey]; ok && v != "" {
			keys = append(keys, ctxKey+":"+strings.ToLower(v))
		}
	}
	return keys
}

// registeredDomain approximates the registrable domain as the last two DNS
// labels ("a.b.evil.example" → "evil.example"). Good enough to correlate
// subdomains of a campaign without a public-suffix list.
func registeredDomain(host string) string {
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		return host
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

func composedID(memberIDs []string) string {
	return uuid.NewV5(uuid.NamespaceCAISP, []byte("cioc\x00"+strings.Join(memberIDs, ","))).String()
}
