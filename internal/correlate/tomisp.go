package correlate

import (
	"fmt"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
)

// attributeType maps a normalized IoC type onto the MISP attribute type the
// operational module stores.
var attributeType = map[normalize.IoCType]string{
	normalize.TypeIPv4:     "ip-dst",
	normalize.TypeIPv6:     "ip-dst",
	normalize.TypeCIDR:     "ip-dst",
	normalize.TypeDomain:   "domain",
	normalize.TypeURL:      "url",
	normalize.TypeEmail:    "email-dst",
	normalize.TypeMD5:      "md5",
	normalize.TypeSHA1:     "sha1",
	normalize.TypeSHA256:   "sha256",
	normalize.TypeSHA512:   "sha512",
	normalize.TypeCVE:      "vulnerability",
	normalize.TypeFilename: "filename",
}

var attributeCategory = map[normalize.IoCType]string{
	normalize.TypeIPv4:     "Network activity",
	normalize.TypeIPv6:     "Network activity",
	normalize.TypeCIDR:     "Network activity",
	normalize.TypeDomain:   "Network activity",
	normalize.TypeURL:      "Network activity",
	normalize.TypeEmail:    "Payload delivery",
	normalize.TypeMD5:      "Payload delivery",
	normalize.TypeSHA1:     "Payload delivery",
	normalize.TypeSHA256:   "Payload delivery",
	normalize.TypeSHA512:   "Payload delivery",
	normalize.TypeCVE:      "External analysis",
	normalize.TypeFilename: "Payload delivery",
}

// ToMISP renders a composed IoC as a MISP event, ready for storage in the
// operational module. Member events become attributes; the cIoC category
// and correlation keys become tags; per-event context rides along as
// attribute comments.
func ToMISP(c *ComposedIoC, now time.Time) (*misp.Event, error) {
	if len(c.Events) == 0 {
		return nil, fmt.Errorf("correlate: composed IoC %s has no events", c.ID)
	}
	e := misp.NewEvent(composedInfo(c), now)
	e.UUID = c.ID // the cIoC identity carries through storage
	e.AddTag("caisp:category=\"" + c.Category + "\"")
	e.AddTag("caisp:cioc")
	// The membership-sensitive hash rides as a tag (tags with the caisp:
	// prefix are invisible to STIX conversion, so the heuristic features
	// are unaffected). Consumers use it to detect real membership changes
	// behind a stable event UUID.
	if c.ContentHash != "" {
		e.AddTag(clusterContentTagPrefix + c.ContentHash + "\"")
	}
	for _, key := range c.CorrelationKeys {
		e.AddTag("caisp:correlated-by=\"" + key + "\"")
	}
	for _, ev := range c.Events {
		typ, ok := attributeType[ev.Type]
		if !ok {
			typ = "text"
		}
		category, ok := attributeCategory[ev.Type]
		if !ok {
			category = "Other"
		}
		at := ev.LastSeen
		if at.IsZero() {
			at = now
		}
		// Advisories carry their own publication date; the attribute
		// timestamp (which becomes the STIX created/modified instant and
		// drives the timeliness heuristics) uses it when available.
		if published, ok := ev.Context["published"]; ok && typ == "vulnerability" {
			if ts, err := time.Parse("2006-01-02", published); err == nil {
				at = ts.UTC()
			}
		}
		attr := e.AddAttribute(typ, category, ev.Value, at)
		attr.Comment = attributeComment(ev)
		// NLP classification verdicts ride to SIEM consumers ("the
		// prediction confidence of the classifier can be included in the
		// data sent to SIEMs", §II-A).
		if class, ok := ev.Context["classified_as"]; ok {
			e.AddAttribute("text", "Other",
				"classification:"+class+" confidence:"+ev.Context["classifier_confidence"], at)
		}
		if typ == "vulnerability" {
			if v, ok := ev.Context["cvss-vector"]; ok {
				e.AddAttribute("cvss-vector", "External analysis", v, at)
			}
			// Context that the heuristic's accuracy features consume rides
			// along as prefixed text attributes (see misp.ToSTIX).
			if v, ok := ev.Context["os"]; ok {
				e.AddAttribute("text", "Other", "os:"+v, at)
			}
			if v, ok := ev.Context["products"]; ok {
				e.AddAttribute("text", "Other", "products:"+v, at)
			}
			if refs, ok := ev.Context["references"]; ok {
				for _, ref := range strings.Split(refs, ",") {
					if ref = strings.TrimSpace(ref); ref != "" {
						e.AddAttribute("link", "External analysis", ref, at)
					}
				}
			}
		}
	}
	return e, nil
}

func composedInfo(c *ComposedIoC) string {
	primary := c.Events[0].Value
	if len(c.Events) == 1 {
		return fmt.Sprintf("cIoC [%s] %s", c.Category, primary)
	}
	return fmt.Sprintf("cIoC [%s] %s (+%d correlated)", c.Category, primary, len(c.Events)-1)
}

func attributeComment(ev normalize.Event) string {
	var parts []string
	if desc, ok := ev.Context["description"]; ok {
		parts = append(parts, desc)
	}
	if srcs := ev.Sources(); len(srcs) > 0 {
		parts = append(parts, "sources: "+strings.Join(srcs, ", "))
	}
	return strings.Join(parts, " | ")
}
