package correlate

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
)

var seen = time.Date(2019, 6, 24, 10, 0, 0, 0, time.UTC)

func ev(t testing.TB, value, category string) normalize.Event {
	t.Helper()
	e, err := normalize.New(value, category, "feed", normalize.SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestUnionFindBasics(t *testing.T) {
	uf := newUnionFind()
	uf.union("a", "b")
	uf.union("c", "d")
	if !uf.connected("a", "b") || !uf.connected("c", "d") {
		t.Fatal("direct unions not connected")
	}
	if uf.connected("a", "c") {
		t.Fatal("independent sets connected")
	}
	uf.union("b", "c")
	if !uf.connected("a", "d") {
		t.Fatal("transitive union not connected")
	}
	comps := uf.components()
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
}

func TestUnionFindQuickInvariants(t *testing.T) {
	// Property: after a random sequence of unions, connectivity is an
	// equivalence relation consistent with components().
	f := func(pairs []struct{ A, B uint8 }) bool {
		uf := newUnionFind()
		for _, p := range pairs {
			uf.union(fmt.Sprint(p.A%16), fmt.Sprint(p.B%16))
		}
		comps := uf.components()
		for root, members := range comps {
			for _, m := range members {
				if uf.find(m) != root {
					return false
				}
			}
		}
		// Reflexive + symmetric spot check.
		for _, p := range pairs {
			a, b := fmt.Sprint(p.A%16), fmt.Sprint(p.B%16)
			if !uf.connected(a, a) || uf.connected(a, b) != uf.connected(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelateGroupsByCategory(t *testing.T) {
	events := []normalize.Event{
		ev(t, "a.example", normalize.CategoryMalwareDomain),
		ev(t, "b.example", normalize.CategoryPhishing),
	}
	out := New().Correlate(events)
	if len(out) != 2 {
		t.Fatalf("got %d cIoCs, want 2 (different categories never merge)", len(out))
	}
	if out[0].Category == out[1].Category {
		t.Fatal("categories collapsed")
	}
}

func TestCorrelateConnectsSharedHost(t *testing.T) {
	events := []normalize.Event{
		ev(t, "evil.example", normalize.CategoryMalwareDomain),
		ev(t, "http://evil.example/dropper", normalize.CategoryMalwareDomain),
		ev(t, "unrelated.other", normalize.CategoryMalwareDomain),
	}
	out := New().Correlate(events)
	if len(out) != 2 {
		t.Fatalf("got %d cIoCs, want 2", len(out))
	}
	var big ComposedIoC
	for _, c := range out {
		if len(c.Events) == 2 {
			big = c
		}
	}
	if len(big.Events) != 2 {
		t.Fatalf("no 2-member cluster found: %+v", out)
	}
	if len(big.CorrelationKeys) == 0 {
		t.Fatal("cluster has no explaining correlation keys")
	}
	found := false
	for _, k := range big.CorrelationKeys {
		if k == "host:evil.example" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected host key, got %v", big.CorrelationKeys)
	}
}

func TestCorrelateConnectsSubdomainsViaRegisteredDomain(t *testing.T) {
	events := []normalize.Event{
		ev(t, "c2.evil.example", normalize.CategoryBotnetC2),
		ev(t, "drop.evil.example", normalize.CategoryBotnetC2),
	}
	out := New().Correlate(events)
	if len(out) != 1 || len(out[0].Events) != 2 {
		t.Fatalf("subdomains not correlated: %+v", out)
	}
}

func TestCorrelateConnectsSameSubnet(t *testing.T) {
	events := []normalize.Event{
		ev(t, "203.0.113.7", normalize.CategoryScanner),
		ev(t, "203.0.113.200", normalize.CategoryScanner),
		ev(t, "198.51.100.1", normalize.CategoryScanner),
	}
	out := New().Correlate(events)
	if len(out) != 2 {
		t.Fatalf("got %d cIoCs, want 2 (two /24 groups)", len(out))
	}
}

func TestCorrelateContextKeys(t *testing.T) {
	a := ev(t, "alpha.example", normalize.CategoryMalwareDomain)
	a.Context = map[string]string{"malware": "Emotet"}
	b, err := normalize.New("deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
		normalize.CategoryMalwareDomain, "feed2", normalize.SourceOSINT, seen)
	if err != nil {
		t.Fatal(err)
	}
	b.Context = map[string]string{"malware": "emotet"} // case-insensitive
	out := New().Correlate([]normalize.Event{a, b})
	if len(out) != 1 || len(out[0].Events) != 2 {
		t.Fatalf("context correlation failed: %+v", out)
	}
}

func TestCorrelateMinClusterSize(t *testing.T) {
	events := []normalize.Event{
		ev(t, "lonely.example", normalize.CategoryMalwareDomain),
		ev(t, "pair.example", normalize.CategoryMalwareDomain),
		ev(t, "http://pair.example/x", normalize.CategoryMalwareDomain),
	}
	out := New(WithMinClusterSize(2)).Correlate(events)
	if len(out) != 1 {
		t.Fatalf("got %d cIoCs, want only the pair", len(out))
	}
	if len(out[0].Events) != 2 {
		t.Fatalf("cluster size = %d", len(out[0].Events))
	}
	// Degenerate option value falls back to 1.
	out = New(WithMinClusterSize(0)).Correlate(events)
	if len(out) != 2 {
		t.Fatalf("min size 0: got %d cIoCs, want 2", len(out))
	}
}

func TestCorrelateDeterministic(t *testing.T) {
	events := []normalize.Event{
		ev(t, "a.example", normalize.CategoryMalwareDomain),
		ev(t, "http://a.example/1", normalize.CategoryMalwareDomain),
		ev(t, "203.0.113.9", normalize.CategoryScanner),
		ev(t, "203.0.113.77", normalize.CategoryScanner),
	}
	first := New().Correlate(events)
	// Same events, different order.
	shuffled := []normalize.Event{events[3], events[1], events[0], events[2]}
	second := New().Correlate(shuffled)
	if !reflect.DeepEqual(ids(first), ids(second)) {
		t.Fatalf("correlation not order-independent:\n%v\n%v", ids(first), ids(second))
	}
}

func ids(cs []ComposedIoC) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}

func TestComposedIoCWindowAndAccessors(t *testing.T) {
	a := ev(t, "evil.example", normalize.CategoryMalwareDomain)
	a.FirstSeen = seen.Add(-time.Hour)
	a.LastSeen = seen.Add(-time.Hour)
	b := ev(t, "http://evil.example/x", normalize.CategoryMalwareDomain)
	b.FirstSeen = seen.Add(2 * time.Hour)
	b.LastSeen = seen.Add(2 * time.Hour)
	out := New().Correlate([]normalize.Event{a, b})
	if len(out) != 1 {
		t.Fatalf("want single cluster, got %d", len(out))
	}
	c := out[0]
	if !c.FirstSeen.Equal(seen.Add(-time.Hour)) || !c.LastSeen.Equal(seen.Add(2*time.Hour)) {
		t.Fatalf("window wrong: %v – %v", c.FirstSeen, c.LastSeen)
	}
	if got := c.Values(normalize.TypeDomain); len(got) != 1 || got[0] != "evil.example" {
		t.Fatalf("Values(domain) = %v", got)
	}
	if got := c.Sources(); len(got) != 1 || got[0] != "feed" {
		t.Fatalf("Sources() = %v", got)
	}
}

func TestCorrelationKeysPerType(t *testing.T) {
	tests := []struct {
		value   string
		wantKey string
	}{
		{value: "evil.example", wantKey: "host:evil.example"},
		{value: "203.0.113.7", wantKey: "ip:203.0.113.7"},
		{value: "203.0.113.7", wantKey: "net24:203.0.113.0"},
		{value: "http://evil.example/x", wantKey: "host:evil.example"},
		{value: "user@evil.example", wantKey: "host:evil.example"},
		{value: "CVE-2017-9805", wantKey: "cve:CVE-2017-9805"},
		{value: "dropper.exe", wantKey: "filename:dropper.exe"},
	}
	for _, tt := range tests {
		e := ev(t, tt.value, normalize.CategoryUnknown)
		keys := CorrelationKeys(e)
		found := false
		for _, k := range keys {
			if k == tt.wantKey {
				found = true
			}
		}
		if !found {
			t.Errorf("CorrelationKeys(%q) = %v, missing %q", tt.value, keys, tt.wantKey)
		}
	}
}

func TestToMISP(t *testing.T) {
	events := []normalize.Event{
		ev(t, "evil.example", normalize.CategoryMalwareDomain),
		ev(t, "http://evil.example/mal", normalize.CategoryMalwareDomain),
	}
	out := New().Correlate(events)
	if len(out) != 1 {
		t.Fatalf("want single cluster, got %d", len(out))
	}
	me, err := ToMISP(&out[0], seen)
	if err != nil {
		t.Fatal(err)
	}
	if err := me.Validate(); err != nil {
		t.Fatalf("composed MISP event invalid: %v", err)
	}
	if me.UUID != out[0].ID {
		t.Fatalf("event uuid %s, want cIoC id %s", me.UUID, out[0].ID)
	}
	if !me.HasTag("caisp:cioc") || !me.HasTag("caisp:category=\""+normalize.CategoryMalwareDomain+"\"") {
		t.Fatalf("tags missing: %+v", me.Tags)
	}
	if got := me.FindAttribute("domain"); got == nil || got.Value != "evil.example" {
		t.Fatalf("domain attribute missing: %+v", me.Attributes)
	}
	if got := me.FindAttribute("url"); got == nil {
		t.Fatal("url attribute missing")
	}
}

func TestToMISPCVEWithVector(t *testing.T) {
	e := ev(t, "CVE-2017-9805", normalize.CategoryVulnExploit)
	e.Context = map[string]string{"cvss-vector": "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"}
	out := New().Correlate([]normalize.Event{e})
	me, err := ToMISP(&out[0], seen)
	if err != nil {
		t.Fatal(err)
	}
	if got := me.FindAttribute("vulnerability"); got == nil || got.Value != "CVE-2017-9805" {
		t.Fatalf("vulnerability attribute missing: %+v", me.Attributes)
	}
	if got := me.FindAttribute("cvss-vector"); got == nil {
		t.Fatal("cvss vector attribute missing")
	}
}

func TestToMISPEmptyFails(t *testing.T) {
	if _, err := ToMISP(&ComposedIoC{ID: "x"}, seen); err == nil {
		t.Fatal("empty cIoC converted")
	}
}

func TestCorrelateTimeWindow(t *testing.T) {
	early := ev(t, "evil.example", normalize.CategoryMalwareDomain)
	early.FirstSeen, early.LastSeen = seen, seen
	mid := ev(t, "http://evil.example/a", normalize.CategoryMalwareDomain)
	mid.FirstSeen, mid.LastSeen = seen.Add(time.Hour), seen.Add(time.Hour)
	late := ev(t, "http://evil.example/b", normalize.CategoryMalwareDomain)
	late.FirstSeen, late.LastSeen = seen.Add(100*time.Hour), seen.Add(100*time.Hour)
	events := []normalize.Event{early, mid, late}

	// Without a window all three share the host key → one cluster.
	if got := New().Correlate(events); len(got) != 1 {
		t.Fatalf("unwindowed clusters = %d", len(got))
	}
	// With a 2h window the late URL is disconnected.
	windowed := New(WithTimeWindow(2 * time.Hour)).Correlate(events)
	if len(windowed) != 2 {
		t.Fatalf("windowed clusters = %d, want 2", len(windowed))
	}
	sizes := []int{len(windowed[0].Events), len(windowed[1].Events)}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("cluster sizes = %v", sizes)
	}
	// Chaining: sightings 1h apart repeatedly stay connected across a
	// total span exceeding the window.
	var chain []normalize.Event
	for i := 0; i < 5; i++ {
		e := ev(t, fmt.Sprintf("http://evil.example/p%d", i), normalize.CategoryMalwareDomain)
		e.FirstSeen = seen.Add(time.Duration(i) * time.Hour)
		e.LastSeen = e.FirstSeen
		chain = append(chain, e)
	}
	if got := New(WithTimeWindow(90 * time.Minute)).Correlate(chain); len(got) != 1 {
		t.Fatalf("chained clusters = %d, want 1", len(got))
	}
}
