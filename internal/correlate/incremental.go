package correlate

import (
	"sort"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/uuid"
)

// Incremental is a stateful streaming correlator: it maintains, per threat
// category, a correlation-key → cluster inverted index on top of a
// union-find forest, so that correlating one more flushed batch costs
// amortized O(events × keys) instead of O(history). Each Add returns the
// delta against the previously emitted cluster set — brand-new clusters,
// clusters that grew or merged (same stable UUID, new membership), and
// clusters that were absorbed into a survivor and must be retracted.
//
// Cluster identity is decoupled from membership: a cluster's UUID is
// derived from its seed (first) member and never changes as members join,
// while the membership-sensitive composedID travels as ContentHash. When
// two emitted clusters merge, the older one (by creation order) survives
// and the younger UUID is reported in Delta.Removed.
//
// All methods are safe for concurrent use.
type Incremental struct {
	mu  sync.Mutex
	cfg Correlator
	// cats holds the per-category streaming state.
	cats map[string]*catState
	// seq orders cluster creation: on merge the lowest-seq cluster survives,
	// so identities stay sticky for downstream stores and dashboards.
	seq uint64

	stats IncrementalStats

	addDur *obs.Histogram // caisp_correlate_add_seconds; nil without WithMetrics

	// Recorrelate-all ablation state (WithRecorrelateAll): the full event
	// history plus the previously emitted (uuid → content hash) map.
	history []normalize.Event
	known   map[string]bool
	prev    map[string]string
}

// catState is the streaming index of one threat category.
type catState struct {
	uf   *unionFind
	byID map[string]normalize.Event
	// chains indexes, per correlation key, the sightings of that key sorted
	// by (LastSeen, event ID). With no time window only the first sighting
	// is kept (any newcomer unions with it); with a window the whole chain
	// is kept so a newcomer unions with its temporal neighbours only.
	chains map[string]*keyChain
	// clusters maps the current union-find root to the cluster rooted there.
	clusters map[string]*cluster
}

type keyChain struct {
	sightings []keySighting
}

type keySighting struct {
	ts time.Time
	id string
}

// cluster is the mutable book-keeping record behind one emitted cIoC.
type cluster struct {
	uuid     string
	seq      uint64
	category string
	members  []string
	// emitted records that the cluster has been reported in a Delta (as New)
	// and so must be retracted via Delta.Removed if later absorbed.
	emitted bool
	// absorbed marks a cluster merged into a survivor; it is dead state kept
	// only because the dirty set of the in-flight Add may still hold it.
	absorbed bool
}

// Delta is the result of one Add: the changes to the emitted cluster set.
type Delta struct {
	// New are clusters emitted for the first time.
	New []ComposedIoC
	// Updated are previously emitted clusters whose membership changed
	// (grown or merged); they keep their stable UUID.
	Updated []ComposedIoC
	// Removed are UUIDs of previously emitted clusters that were absorbed
	// into a survivor (which appears in New or Updated).
	Removed []string
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool {
	return len(d.New) == 0 && len(d.Updated) == 0 && len(d.Removed) == 0
}

// IncrementalStats are cumulative counters of the streaming correlator.
type IncrementalStats struct {
	// Events is the number of distinct events ingested.
	Events int `json:"events"`
	// Clusters is the number of currently emitted (live) clusters.
	Clusters int `json:"clusters"`
	// New / Updated / Merges count emitted deltas: first-time emissions,
	// in-place growth emissions, and absorbed-cluster retractions.
	New     int64 `json:"new"`
	Updated int64 `json:"updated"`
	Merges  int64 `json:"merges"`
}

type recorrelateAllOption bool

func (o recorrelateAllOption) apply(c *Correlator) { c.recorrelateAll = bool(o) }

// WithRecorrelateAll switches Incremental into the ablation mode that
// re-runs the batch Correlator over the full accumulated history on every
// Add — the O(history) behaviour the streaming index replaces. Deltas are
// produced by diffing successive runs, so the mode is functionally
// equivalent (stable identities use the minimum member event ID as seed)
// and exists for benchmarking. Batch Correlator ignores this option.
func WithRecorrelateAll(on bool) Option { return recorrelateAllOption(on) }

// NewIncremental constructs a streaming correlator. It honours the same
// options as New (WithMinClusterSize, WithTimeWindow) plus
// WithRecorrelateAll.
func NewIncremental(opts ...Option) *Incremental {
	cfg := Correlator{minClusterSize: 1}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.minClusterSize < 1 {
		cfg.minClusterSize = 1
	}
	inc := &Incremental{
		cfg:   cfg,
		cats:  make(map[string]*catState),
		known: make(map[string]bool),
		prev:  make(map[string]string),
	}
	if reg := cfg.registry; reg != nil {
		inc.addDur = reg.Histogram("caisp_correlate_add_seconds",
			"Incremental.Add latency per flushed batch.")
		reg.GaugeFunc("caisp_correlate_clusters",
			"Currently emitted (live) clusters.",
			func() float64 { return float64(inc.Stats().Clusters) })
		reg.CounterFunc("caisp_correlate_events_total",
			"Distinct events folded into the streaming index.",
			func() float64 { return float64(inc.Stats().Events) })
		reg.CounterFunc("caisp_correlate_cluster_new_total",
			"Clusters emitted for the first time.",
			func() float64 { return float64(inc.Stats().New) })
		reg.CounterFunc("caisp_correlate_cluster_updated_total",
			"In-place cluster growth emissions.",
			func() float64 { return float64(inc.Stats().Updated) })
		reg.CounterFunc("caisp_correlate_cluster_merges_total",
			"Absorbed-cluster retractions.",
			func() float64 { return float64(inc.Stats().Merges) })
	}
	return inc
}

// clusterUUID derives the stable identity of a cluster from its category
// and seed member. It is independent of later membership changes.
func clusterUUID(category, seedEventID string) string {
	return uuid.NewV5(uuid.NamespaceCAISP,
		[]byte("cluster\x00"+category+"\x00"+seedEventID)).String()
}

func (inc *Incremental) cat(category string) *catState {
	cs := inc.cats[category]
	if cs == nil {
		cs = &catState{
			uf:       newUnionFind(),
			byID:     make(map[string]normalize.Event),
			chains:   make(map[string]*keyChain),
			clusters: make(map[string]*cluster),
		}
		inc.cats[category] = cs
	}
	return cs
}

// Add folds a batch of events into the streaming index and returns the
// delta of emitted clusters. Events already known (same normalized ID) are
// ignored. Output slices are sorted for determinism.
func (inc *Incremental) Add(events []normalize.Event) Delta {
	if inc.addDur != nil {
		defer func(start time.Time) {
			inc.addDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.cfg.recorrelateAll {
		return inc.addRecorrelateAll(events)
	}

	dirty := make(map[*cluster]bool)
	var removed []string
	for _, e := range events {
		cs := inc.cat(e.Category)
		if _, ok := cs.byID[e.ID]; ok {
			continue
		}
		inc.stats.Events++
		cs.byID[e.ID] = e
		cs.uf.add(e.ID)
		cl := &cluster{
			uuid:     clusterUUID(e.Category, e.ID),
			seq:      inc.nextSeq(),
			category: e.Category,
			members:  []string{e.ID},
		}
		cs.clusters[e.ID] = cl
		dirty[cl] = true
		for _, key := range CorrelationKeys(e) {
			inc.link(cs, key, e, dirty, &removed)
		}
	}
	return inc.composeDelta(dirty, removed)
}

func (inc *Incremental) nextSeq() uint64 {
	inc.seq++
	return inc.seq
}

// link records the sighting of key by event e and unions e with the
// sightings the batch correlator would connect it to: all of them when no
// time window is configured, otherwise only the temporal neighbours within
// the window. Inserting into the sorted chain preserves batch semantics —
// a newcomer between two chained sightings can only shrink gaps, and if it
// is out of range of a neighbour, so was everything beyond it.
func (inc *Incremental) link(cs *catState, key string, e normalize.Event, dirty map[*cluster]bool, removed *[]string) {
	ch := cs.chains[key]
	if ch == nil {
		ch = &keyChain{}
		cs.chains[key] = ch
	}
	s := keySighting{ts: e.LastSeen, id: e.ID}
	if inc.cfg.timeWindow <= 0 {
		// No temporal constraint: every sighting of the key is one set, so
		// a single representative suffices and chains stay O(1) per key.
		if len(ch.sightings) == 0 {
			ch.sightings = append(ch.sightings, s)
			return
		}
		inc.unionClusters(cs, ch.sightings[0].id, e.ID, dirty, removed)
		return
	}
	i := sort.Search(len(ch.sightings), func(i int) bool {
		si := ch.sightings[i]
		if !si.ts.Equal(s.ts) {
			return si.ts.After(s.ts)
		}
		return si.id >= s.id
	})
	if i > 0 && s.ts.Sub(ch.sightings[i-1].ts) <= inc.cfg.timeWindow {
		inc.unionClusters(cs, ch.sightings[i-1].id, e.ID, dirty, removed)
	}
	if i < len(ch.sightings) && ch.sightings[i].ts.Sub(s.ts) <= inc.cfg.timeWindow {
		inc.unionClusters(cs, ch.sightings[i].id, e.ID, dirty, removed)
	}
	ch.sightings = append(ch.sightings, keySighting{})
	copy(ch.sightings[i+1:], ch.sightings[i:])
	ch.sightings[i] = s
}

// unionClusters merges the clusters containing events a and b. The older
// cluster (lowest creation seq) keeps its identity; if the absorbed side
// was already emitted its UUID is appended to removed and counted as a
// merge.
func (inc *Incremental) unionClusters(cs *catState, a, b string, dirty map[*cluster]bool, removed *[]string) {
	ra, rb := cs.uf.find(a), cs.uf.find(b)
	if ra == rb {
		return
	}
	ca, cb := cs.clusters[ra], cs.clusters[rb]
	cs.uf.union(a, b)
	root := cs.uf.find(a)
	surv, abs := ca, cb
	if cb.seq < ca.seq {
		surv, abs = cb, ca
	}
	surv.members = append(surv.members, abs.members...)
	abs.absorbed = true
	delete(cs.clusters, ra)
	delete(cs.clusters, rb)
	cs.clusters[root] = surv
	dirty[surv] = true
	if abs.emitted {
		*removed = append(*removed, abs.uuid)
		inc.stats.Merges++
	}
}

// composeDelta turns the dirty cluster set of one Add into a sorted Delta,
// applying the minimum-cluster-size gate and flipping emitted flags.
func (inc *Incremental) composeDelta(dirty map[*cluster]bool, removed []string) Delta {
	var d Delta
	for cl := range dirty {
		if cl.absorbed || len(cl.members) < inc.cfg.minClusterSize {
			continue
		}
		c := inc.compose(cl)
		if cl.emitted {
			d.Updated = append(d.Updated, c)
			inc.stats.Updated++
		} else {
			cl.emitted = true
			d.New = append(d.New, c)
			inc.stats.New++
		}
	}
	sortComposed(d.New)
	sortComposed(d.Updated)
	sort.Strings(removed)
	d.Removed = removed
	inc.stats.Clusters += len(d.New) - len(removed)
	return d
}

// compose renders the current state of a cluster as a cIoC. ID is the
// stable cluster UUID; ContentHash is the membership-sensitive composedID.
func (inc *Incremental) compose(cl *cluster) ComposedIoC {
	cs := inc.cat(cl.category)
	memberIDs := append([]string(nil), cl.members...)
	sort.Strings(memberIDs)
	c := ComposedIoC{ID: cl.uuid, Category: cl.category}
	keySet := make(map[string]int)
	for _, id := range memberIDs {
		e := cs.byID[id]
		c.Events = append(c.Events, e)
		for _, k := range CorrelationKeys(e) {
			keySet[k]++
		}
		if c.FirstSeen.IsZero() || e.FirstSeen.Before(c.FirstSeen) {
			c.FirstSeen = e.FirstSeen
		}
		if e.LastSeen.After(c.LastSeen) {
			c.LastSeen = e.LastSeen
		}
	}
	for k, n := range keySet {
		if n >= 2 {
			c.CorrelationKeys = append(c.CorrelationKeys, k)
		}
	}
	sort.Strings(c.CorrelationKeys)
	c.ContentHash = composedID(memberIDs)
	return c
}

func sortComposed(cs []ComposedIoC) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Category != cs[j].Category {
			return cs[i].Category < cs[j].Category
		}
		return cs[i].ID < cs[j].ID
	})
}

// Seed restores one persisted cluster into the index during recovery: the
// given events become a cluster under the given UUID, marked emitted so
// later growth is reported as Updated, not New. Seeded members are always
// one set regardless of keys (they were correlated before the restart).
// If seeding links the cluster to previously seeded ones (shared members
// or correlation keys), the younger emitted identities are absorbed and
// returned so the caller can retract them from its store. Call Seed in
// store order (oldest first) so surviving identities match pre-crash ones.
func (inc *Incremental) Seed(clusterID string, events []normalize.Event) (absorbed []string) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if len(events) == 0 {
		return nil
	}
	category := events[0].Category
	cs := inc.cat(category)

	if inc.cfg.recorrelateAll {
		for _, e := range events {
			if !inc.known[e.ID] {
				inc.known[e.ID] = true
				inc.history = append(inc.history, e)
				inc.stats.Events++
			}
		}
		// Emitted identity in ablation mode is derived from membership, so
		// replaying history reproduces it; just record the current state.
		full := inc.recorrelateHistory()
		next := make(map[string]string, len(full))
		for id, c := range full {
			next[id] = c.ContentHash
		}
		for id := range inc.prev {
			if _, ok := next[id]; !ok {
				absorbed = append(absorbed, id)
			}
		}
		inc.prev = next
		inc.stats.Clusters = len(next)
		sort.Strings(absorbed)
		return absorbed
	}

	var fresh []string    // events new to the index
	var existing []string // events already owned by another cluster
	for _, e := range events {
		if _, ok := cs.byID[e.ID]; ok {
			existing = append(existing, e.ID)
			continue
		}
		inc.stats.Events++
		cs.byID[e.ID] = e
		cs.uf.add(e.ID)
		fresh = append(fresh, e.ID)
	}
	dirty := make(map[*cluster]bool)
	var removed []string
	staleDuplicate := false
	if len(fresh) > 0 {
		for i := 1; i < len(fresh); i++ {
			cs.uf.union(fresh[0], fresh[i])
		}
		cl := &cluster{
			uuid:     clusterID,
			seq:      inc.nextSeq(),
			category: category,
			members:  fresh,
			emitted:  true,
		}
		cs.clusters[cs.uf.find(fresh[0])] = cl
		inc.stats.Clusters++
		// Duplicated members across persisted clusters mean the clusters
		// were already one: fold them together, oldest identity wins.
		for _, id := range existing {
			inc.unionClusters(cs, fresh[0], id, dirty, &removed)
		}
		for _, id := range fresh {
			e := cs.byID[id]
			for _, key := range CorrelationKeys(e) {
				inc.link(cs, key, e, dirty, &removed)
			}
		}
	} else {
		// Every member already belongs to an older cluster: the persisted
		// record is a stale duplicate (e.g. a crash mid-retraction). Fold
		// its owners together and retract the duplicate identity itself.
		for i := 1; i < len(existing); i++ {
			inc.unionClusters(cs, existing[0], existing[i], dirty, &removed)
		}
		staleDuplicate = true
	}
	inc.stats.Clusters -= len(removed)
	if staleDuplicate {
		removed = append(removed, clusterID)
	}
	sort.Strings(removed)
	return removed
}

// Clusters snapshots every currently emitted cluster, sorted by
// (category, ID).
func (inc *Incremental) Clusters() []ComposedIoC {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	var out []ComposedIoC
	if inc.cfg.recorrelateAll {
		for _, c := range inc.recorrelateHistory() {
			out = append(out, c)
		}
		sortComposed(out)
		return out
	}
	for _, cs := range inc.cats {
		for _, cl := range cs.clusters {
			if cl.emitted {
				out = append(out, inc.compose(cl))
			}
		}
	}
	sortComposed(out)
	return out
}

// LastSightings reports, for every currently emitted cluster, the most
// recent member sighting (the maximum member LastSeen — the same value
// compose publishes as the cIoC's LastSeen). One O(total members) pass
// under the lock; the indicator-lifecycle engine calls it once per
// re-score scan and uses the result as the sighting-driven refresh
// clock for decayed eIoC scores, so a key re-observed since the last
// composition resets decay without waiting for a membership change.
func (inc *Incremental) LastSightings() map[string]time.Time {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	out := make(map[string]time.Time)
	for _, cs := range inc.cats {
		for _, cl := range cs.clusters {
			if cl.absorbed || !cl.emitted {
				continue
			}
			var last time.Time
			for _, id := range cl.members {
				if e, ok := cs.byID[id]; ok && e.LastSeen.After(last) {
					last = e.LastSeen
				}
			}
			out[cl.uuid] = last
		}
	}
	return out
}

// Stats snapshots the correlator's cumulative counters.
func (inc *Incremental) Stats() IncrementalStats {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.stats
}

// addRecorrelateAll is the ablation Add: append to history, re-correlate
// everything with the batch Correlator, and diff against the previous
// emission. Cost is O(history) per call by construction.
func (inc *Incremental) addRecorrelateAll(events []normalize.Event) Delta {
	for _, e := range events {
		if !inc.known[e.ID] {
			inc.known[e.ID] = true
			inc.history = append(inc.history, e)
			inc.stats.Events++
		}
	}
	cur := inc.recorrelateHistory()
	var d Delta
	for id, c := range cur {
		prevHash, ok := inc.prev[id]
		switch {
		case !ok:
			d.New = append(d.New, c)
			inc.stats.New++
		case prevHash != c.ContentHash:
			d.Updated = append(d.Updated, c)
			inc.stats.Updated++
		}
	}
	for id := range inc.prev {
		if _, ok := cur[id]; !ok {
			d.Removed = append(d.Removed, id)
			inc.stats.Merges++
		}
	}
	next := make(map[string]string, len(cur))
	for id, c := range cur {
		next[id] = c.ContentHash
	}
	inc.prev = next
	inc.stats.Clusters = len(next)
	sortComposed(d.New)
	sortComposed(d.Updated)
	sort.Strings(d.Removed)
	return d
}

// recorrelateHistory runs the batch Correlator over the full history and
// rewrites cluster identities to be membership-stable: the seed is the
// minimum member event ID, which only changes when clusters merge — and a
// merge retracts the losing identity just like the streaming path does.
func (inc *Incremental) recorrelateHistory() map[string]ComposedIoC {
	batch := New(WithMinClusterSize(inc.cfg.minClusterSize), WithTimeWindow(inc.cfg.timeWindow))
	full := batch.Correlate(inc.history)
	out := make(map[string]ComposedIoC, len(full))
	for _, c := range full {
		// Events are sorted by ID, so Events[0] is the minimum member.
		id := clusterUUID(c.Category, c.Events[0].ID)
		c.ContentHash = c.ID
		c.ID = id
		out[id] = c
	}
	return out
}
