package dedup

import (
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/obs"
)

// Stats counts the deduper's decisions.
type Stats struct {
	// Seen is the total number of events offered.
	Seen int `json:"seen"`
	// Unique is the number of events admitted as new.
	Unique int `json:"unique"`
	// Duplicates is the number of events folded into existing ones.
	Duplicates int `json:"duplicates"`
	// BloomNegatives counts fast-path admissions (filter said "new").
	BloomNegatives int `json:"bloom_negatives"`
	// BloomFalsePositives counts filter hits that the exact set refuted.
	BloomFalsePositives int `json:"bloom_false_positives"`
}

// ReductionRatio is the fraction of offered events dropped as duplicates.
func (s Stats) ReductionRatio() float64 {
	if s.Seen == 0 {
		return 0
	}
	return float64(s.Duplicates) / float64(s.Seen)
}

// Option configures a Deduper.
type Option interface {
	apply(*options)
}

type options struct {
	expectedItems int
	fpRate        float64
	useBloom      bool
	registry      *obs.Registry
}

type expectedItemsOption int

func (o expectedItemsOption) apply(opts *options) { opts.expectedItems = int(o) }

// WithExpectedItems sizes the Bloom filter for n items.
func WithExpectedItems(n int) Option { return expectedItemsOption(n) }

type fpRateOption float64

func (o fpRateOption) apply(opts *options) { opts.fpRate = float64(o) }

// WithFalsePositiveRate sets the Bloom filter's target false-positive rate.
func WithFalsePositiveRate(rate float64) Option { return fpRateOption(rate) }

type bloomOption bool

func (o bloomOption) apply(opts *options) { opts.useBloom = bool(o) }

// WithBloom toggles the Bloom-filter fast path (used by the ablation bench).
func WithBloom(enabled bool) Option { return bloomOption(enabled) }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(opts *options) { opts.registry = o.reg }

// WithMetrics registers the deduper's caisp_dedup_* families into reg:
// scrape-time views over the decision counters plus an Offer latency
// histogram. A nil registry disables instrumentation.
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg: reg} }

// Deduper drops events whose deterministic ID was already admitted and
// merges the duplicate's observation window and context into the retained
// event. Safe for concurrent use.
type Deduper struct {
	mu     sync.Mutex
	bloom  *Bloom
	byID   map[string]*normalize.Event
	stats  Stats
	useBlm bool

	offerDur *obs.Histogram // nil without WithMetrics
}

// New constructs a Deduper.
func New(opts ...Option) *Deduper {
	cfg := options{expectedItems: 100000, fpRate: 0.001, useBloom: true}
	for _, o := range opts {
		o.apply(&cfg)
	}
	d := &Deduper{
		byID:   make(map[string]*normalize.Event),
		useBlm: cfg.useBloom,
	}
	if cfg.useBloom {
		d.bloom = NewBloom(cfg.expectedItems, cfg.fpRate)
	}
	if reg := cfg.registry; reg != nil {
		d.offerDur = reg.Histogram("caisp_dedup_offer_seconds",
			"Deduper.Offer latency (bloom probe + exact check + merge).")
		reg.CounterFunc("caisp_dedup_seen_total",
			"Events offered to the deduper.",
			func() float64 { return float64(d.Stats().Seen) })
		reg.CounterFunc("caisp_dedup_unique_total",
			"Events admitted as new.",
			func() float64 { return float64(d.Stats().Unique) })
		reg.CounterFunc("caisp_dedup_duplicates_total",
			"Events folded into existing ones.",
			func() float64 { return float64(d.Stats().Duplicates) })
		reg.CounterFunc("caisp_dedup_bloom_false_positives_total",
			"Bloom filter hits refuted by the exact set.",
			func() float64 { return float64(d.Stats().BloomFalsePositives) })
	}
	return d
}

// Offer submits an event. It returns (event, true) when the event is new —
// the returned copy is the stored one — and (stored, false) when it was a
// duplicate that has been merged into the previously stored event.
func (d *Deduper) Offer(e normalize.Event) (normalize.Event, bool) {
	if d.offerDur != nil {
		defer func(start time.Time) {
			d.offerDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Seen++

	if d.useBlm && !d.bloom.MayContain(e.ID) {
		// Definitely new.
		d.stats.BloomNegatives++
		d.admit(e)
		return e, true
	}
	if existing, ok := d.byID[e.ID]; ok {
		d.stats.Duplicates++
		// Merge cannot fail here: IDs are equal by construction.
		_ = normalize.Merge(existing, e)
		return *existing, false
	}
	if d.useBlm {
		d.stats.BloomFalsePositives++
	}
	d.admit(e)
	return e, true
}

// Contains reports whether an event with the given ID has been admitted.
func (d *Deduper) Contains(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.byID[id]
	return ok
}

// Get returns the stored event for id, if any.
func (d *Deduper) Get(id string) (normalize.Event, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.byID[id]
	if !ok {
		return normalize.Event{}, false
	}
	return *e, true
}

// Len returns the number of unique events admitted.
func (d *Deduper) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byID)
}

// Stats returns a snapshot of the decision counters.
func (d *Deduper) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Events returns a snapshot of all unique events, in unspecified order.
func (d *Deduper) Events() []normalize.Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]normalize.Event, 0, len(d.byID))
	for _, e := range d.byID {
		out = append(out, *e)
	}
	return out
}

func (d *Deduper) admit(e normalize.Event) {
	stored := e
	d.byID[e.ID] = &stored
	if d.useBlm {
		d.bloom.Add(e.ID)
	}
	d.stats.Unique++
}
