package dedup

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
)

var seen = time.Date(2019, 6, 24, 10, 0, 0, 0, time.UTC)

func mustEvent(t testing.TB, value, source string, at time.Time) normalize.Event {
	t.Helper()
	e, err := normalize.New(value, normalize.CategoryMalwareDomain, source, normalize.SourceOSINT, at)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBloomBasics(t *testing.T) {
	b := NewBloom(1000, 0.01)
	keys := []string{"a", "b", "c", "evil.example", "203.0.113.7"}
	for _, k := range keys {
		b.Add(k)
	}
	for _, k := range keys {
		if !b.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	if b.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(keys))
	}
}

func TestBloomNoFalseNegativesQuick(t *testing.T) {
	b := NewBloom(500, 0.01)
	added := make(map[string]bool)
	f := func(s string) bool {
		b.Add(s)
		added[s] = true
		return b.MayContain(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	const n = 10000
	b := NewBloom(n, 0.01)
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("present-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	// Allow generous slack over the 1% design point.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestBloomDegenerateParams(t *testing.T) {
	b := NewBloom(0, 2.0) // both invalid; must not panic
	b.Add("x")
	if !b.MayContain("x") {
		t.Fatal("false negative after degenerate construction")
	}
}

func TestOfferAdmitsNewAndFoldsDuplicates(t *testing.T) {
	d := New()
	a := mustEvent(t, "evil.example", "feed-a", seen)
	stored, isNew := d.Offer(a)
	if !isNew {
		t.Fatal("first offer reported duplicate")
	}
	if stored.ID != a.ID {
		t.Fatalf("stored id %s, want %s", stored.ID, a.ID)
	}

	dup := mustEvent(t, "EVIL[.]example", "feed-b", seen.Add(3*time.Hour))
	merged, isNew := d.Offer(dup)
	if isNew {
		t.Fatal("duplicate admitted as new")
	}
	if !merged.LastSeen.Equal(seen.Add(3 * time.Hour)) {
		t.Fatalf("window not merged: %+v", merged)
	}
	if got := merged.Sources(); len(got) != 2 {
		t.Fatalf("sources not merged: %v", got)
	}

	stats := d.Stats()
	if stats.Seen != 2 || stats.Unique != 1 || stats.Duplicates != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestOfferDistinctValues(t *testing.T) {
	d := New()
	for i := 0; i < 100; i++ {
		e := mustEvent(t, fmt.Sprintf("host-%d.example", i), "feed", seen)
		if _, isNew := d.Offer(e); !isNew {
			t.Fatalf("distinct event %d reported duplicate", i)
		}
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	if got := d.Stats().ReductionRatio(); got != 0 {
		t.Fatalf("ReductionRatio = %f, want 0", got)
	}
}

func TestReductionRatio(t *testing.T) {
	d := New()
	e := mustEvent(t, "evil.example", "feed", seen)
	d.Offer(e)
	for i := 0; i < 9; i++ {
		d.Offer(mustEvent(t, "evil.example", fmt.Sprintf("feed-%d", i), seen))
	}
	if got := d.Stats().ReductionRatio(); got != 0.9 {
		t.Fatalf("ReductionRatio = %f, want 0.9", got)
	}
	var zero Stats
	if zero.ReductionRatio() != 0 {
		t.Fatal("empty stats ratio non-zero")
	}
}

func TestContainsAndGet(t *testing.T) {
	d := New()
	e := mustEvent(t, "evil.example", "feed", seen)
	if d.Contains(e.ID) {
		t.Fatal("Contains before Offer")
	}
	d.Offer(e)
	if !d.Contains(e.ID) {
		t.Fatal("Contains after Offer = false")
	}
	got, ok := d.Get(e.ID)
	if !ok || got.Value != "evil.example" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := d.Get("missing"); ok {
		t.Fatal("Get(missing) = ok")
	}
}

func TestEventsSnapshotIsCopy(t *testing.T) {
	d := New()
	d.Offer(mustEvent(t, "evil.example", "feed", seen))
	snap := d.Events()
	if len(snap) != 1 {
		t.Fatalf("snapshot size %d", len(snap))
	}
	snap[0].Value = "mutated"
	again := d.Events()
	if again[0].Value != "evil.example" {
		t.Fatal("snapshot aliases internal state")
	}
}

func TestDeduperWithoutBloom(t *testing.T) {
	d := New(WithBloom(false))
	e := mustEvent(t, "evil.example", "feed", seen)
	if _, isNew := d.Offer(e); !isNew {
		t.Fatal("first offer duplicate")
	}
	if _, isNew := d.Offer(e); isNew {
		t.Fatal("second offer new")
	}
	stats := d.Stats()
	if stats.BloomNegatives != 0 || stats.BloomFalsePositives != 0 {
		t.Fatalf("bloom counters moved with bloom disabled: %+v", stats)
	}
}

func TestDeduperConcurrent(t *testing.T) {
	d := New(WithExpectedItems(1000), WithFalsePositiveRate(0.001))
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Every goroutine offers the same 100 values repeatedly.
				e := mustEvent(t, fmt.Sprintf("host-%d.example", i%100), fmt.Sprintf("feed-%d", g), seen)
				d.Offer(e)
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 100 {
		t.Fatalf("Len = %d, want 100", d.Len())
	}
	stats := d.Stats()
	if stats.Seen != goroutines*perG {
		t.Fatalf("Seen = %d, want %d", stats.Seen, goroutines*perG)
	}
	if stats.Unique != 100 {
		t.Fatalf("Unique = %d, want 100", stats.Unique)
	}
}

func TestOfferIdempotencyQuick(t *testing.T) {
	// Property: offering any event twice never increases Unique twice.
	d := New()
	f := func(host uint16) bool {
		e := mustEvent(t, fmt.Sprintf("h%d.example", host), "feed", seen)
		before := d.Stats().Unique
		_, first := d.Offer(e)
		_, second := d.Offer(e)
		after := d.Stats().Unique
		if second {
			return false // second offer must never be "new"
		}
		if first && after != before+1 {
			return false
		}
		if !first && after != before {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
