// Package dedup implements the deduplication stage of the OSINT Data
// Collector: "the component resorts of a deduplicator mechanism that
// compares the data received with the data already stored …, looking for
// security events equal to the received ones, and erases the duplicated
// ones" (paper §III-A1). A Bloom filter answers the common "definitely new"
// case without touching the exact-set index; the exact set confirms
// candidate duplicates and folds their observation windows together.
package dedup

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Bloom is a fixed-size Bloom filter over string keys. It is not safe for
// concurrent use; the Deduper serializes access.
type Bloom struct {
	bits   []uint64
	nbits  uint64
	hashes int
	added  int
}

// NewBloom sizes a filter for the expected number of items at the target
// false-positive probability.
func NewBloom(expectedItems int, falsePositiveRate float64) *Bloom {
	if expectedItems < 1 {
		expectedItems = 1
	}
	if falsePositiveRate <= 0 || falsePositiveRate >= 1 {
		falsePositiveRate = 0.01
	}
	nbits := uint64(math.Ceil(-float64(expectedItems) * math.Log(falsePositiveRate) / (math.Ln2 * math.Ln2)))
	if nbits < 64 {
		nbits = 64
	}
	hashes := int(math.Round(float64(nbits) / float64(expectedItems) * math.Ln2))
	if hashes < 1 {
		hashes = 1
	}
	return &Bloom{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: hashes,
	}
}

// Add inserts key into the filter.
func (b *Bloom) Add(key string) {
	h1, h2 := hashPair(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.added++
}

// MayContain reports whether key might be in the filter. False positives
// are possible; false negatives are not.
func (b *Bloom) MayContain(key string) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of Add calls.
func (b *Bloom) Len() int { return b.added }

// hashPair derives two independent 64-bit hashes for double hashing.
func hashPair(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], h1)
	h.Write(buf[:])
	h2 := h.Sum64() | 1 // odd so it is coprime with power-of-two moduli
	return h1, h2
}
