package sessions

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2019, 6, 24, 9, 0, 0, 0, time.UTC)

func mkSession(id, user string, actions ...string) Session {
	s := Session{ID: id, User: user}
	for i, name := range actions {
		s.Actions = append(s.Actions, Action{Name: name, At: t0.Add(time.Duration(i) * time.Minute)})
	}
	return s
}

// corpus builds a population of ordinary sessions plus one clearly
// anomalous one.
func corpus(t *testing.T) *Analyzer {
	t.Helper()
	a := NewAnalyzer()
	for i := 0; i < 20; i++ {
		user := fmt.Sprintf("user%d", i%5)
		if err := a.Add(mkSession(fmt.Sprintf("s%02d", i), user,
			"login", "read-mail", "browse", "logout")); err != nil {
			t.Fatal(err)
		}
	}
	// The attacker blends in at first (shared login→read-mail transition)
	// before the unusual steps.
	if err := a.Add(mkSession("s-evil", "mallory",
		"login", "read-mail", "sudo", "dump-database", "exfiltrate", "clear-logs")); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAddValidation(t *testing.T) {
	a := NewAnalyzer()
	if err := a.Add(Session{ID: "", User: "u", Actions: []Action{{Name: "x"}}}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := a.Add(Session{ID: "s", User: "", Actions: []Action{{Name: "x"}}}); err == nil {
		t.Fatal("empty user accepted")
	}
	if err := a.Add(Session{ID: "s", User: "u"}); err == nil {
		t.Fatal("empty session accepted")
	}
}

func TestCommonPatterns(t *testing.T) {
	a := corpus(t)
	summary := a.Summarize(3)
	if summary.Sessions != 21 || summary.Users != 6 {
		t.Fatalf("summary header = %+v", summary)
	}
	if len(summary.Common) != 3 {
		t.Fatalf("common = %d", len(summary.Common))
	}
	// The routine transitions dominate.
	top := summary.Common[0]
	if !strings.Contains(top.Pattern, "→") || top.Count < 20 {
		t.Fatalf("top pattern = %+v", top)
	}
}

func TestAbnormalSessionRanksFirst(t *testing.T) {
	a := corpus(t)
	summary := a.Summarize(5)
	if len(summary.Abnormal) == 0 {
		t.Fatal("no abnormal ranking")
	}
	if summary.Abnormal[0].SessionID != "s-evil" {
		t.Fatalf("most abnormal = %+v, want s-evil", summary.Abnormal[0])
	}
	if summary.Abnormal[0].Value <= summary.Abnormal[1].Value {
		t.Fatal("anomalous session does not stand out")
	}
	if len(summary.Abnormal[0].RarePatterns) == 0 {
		t.Fatal("no rare patterns reported")
	}
	found := false
	for _, p := range summary.Abnormal[0].RarePatterns {
		if strings.Contains(p, "exfiltrate") || strings.Contains(p, "dump-database") || strings.Contains(p, "sudo") {
			found = true
		}
	}
	if !found {
		t.Fatalf("rare patterns miss the attack steps: %v", summary.Abnormal[0].RarePatterns)
	}
}

func TestScoreUnseenSession(t *testing.T) {
	a := corpus(t)
	fresh := mkSession("probe", "eve", "never-seen", "also-never-seen")
	score := a.ScoreSession(fresh)
	baseline := a.ScoreSession(mkSession("routine", "alice", "login", "read-mail", "browse", "logout"))
	if score.Value <= baseline.Value {
		t.Fatalf("unseen transitions score %.2f not above routine %.2f", score.Value, baseline.Value)
	}
}

func TestSingleActionSession(t *testing.T) {
	a := NewAnalyzer()
	if err := a.Add(mkSession("s1", "u", "login")); err != nil {
		t.Fatal(err)
	}
	summary := a.Summarize(5)
	if summary.Sessions != 1 || len(summary.Common) != 1 {
		t.Fatalf("summary = %+v", summary)
	}
	if !strings.HasPrefix(summary.Common[0].Pattern, "^ →") {
		t.Fatalf("pseudo-bigram missing: %+v", summary.Common[0])
	}
}

func TestCompare(t *testing.T) {
	a := corpus(t)
	cmp, err := a.Compare("s00", "s-evil")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Shared) == 0 {
		t.Fatal("no shared transitions (both start with login)")
	}
	if len(cmp.OnlyB) == 0 {
		t.Fatal("attack transitions not reported as unique")
	}
	if cmp.ScoreB <= cmp.ScoreA {
		t.Fatalf("scores not ordered: %.2f vs %.2f", cmp.ScoreA, cmp.ScoreB)
	}
	if _, err := a.Compare("s00", "ghost"); err == nil {
		t.Fatal("unknown session accepted")
	}
}

func TestSessionLookup(t *testing.T) {
	a := corpus(t)
	if _, ok := a.Session("s00"); !ok {
		t.Fatal("stored session not found")
	}
	if _, ok := a.Session("ghost"); ok {
		t.Fatal("phantom session found")
	}
	if a.Len() != 21 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestRender(t *testing.T) {
	a := corpus(t)
	text := a.Summarize(3).Render()
	for _, want := range []string{"21 sessions", "6 users", "s-evil", "Most common transitions"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}

func TestSummarizeDegenerateTopK(t *testing.T) {
	a := corpus(t)
	summary := a.Summarize(0) // falls back to 5
	if len(summary.Common) == 0 {
		t.Fatal("topK fallback broken")
	}
	empty := NewAnalyzer()
	es := empty.Summarize(5)
	if es.Sessions != 0 || len(es.Common) != 0 || len(es.Abnormal) != 0 {
		t.Fatalf("empty summary = %+v", es)
	}
}

func TestConcurrentAddAndSummarize(t *testing.T) {
	a := NewAnalyzer()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = a.Add(mkSession(fmt.Sprintf("g%d-%d", g, i), "u", "login", "work", "logout"))
				a.Summarize(3)
			}
		}(g)
	}
	wg.Wait()
	if a.Len() != 100 {
		t.Fatalf("Len = %d", a.Len())
	}
}
