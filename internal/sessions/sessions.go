// Package sessions implements the visualization enhancement of §II-B:
// "a visual summary of user activities that reveals common/abnormal
// patterns in a large set of user sessions, compares multiple sessions of
// interest, and investigates in depth of individual sessions."
//
// Sessions are sequences of named actions. The analyzer profiles action
// bigrams across the whole corpus; common patterns are the most frequent
// bigrams, and a session's abnormality is the mean rarity (negative log
// relative frequency) of its bigrams — sessions made of transitions nobody
// else performs rank highest.
package sessions

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Action is one step of a session.
type Action struct {
	// Name identifies the activity ("login", "download", "sudo", …).
	Name string `json:"name"`
	// At is when the action happened.
	At time.Time `json:"at"`
}

// Session is one user's activity sequence.
type Session struct {
	// ID identifies the session.
	ID string `json:"id"`
	// User is the acting principal.
	User string `json:"user"`
	// Actions are the ordered steps.
	Actions []Action `json:"actions"`
}

// Start returns the first action's time (zero for empty sessions).
func (s *Session) Start() time.Time {
	if len(s.Actions) == 0 {
		return time.Time{}
	}
	return s.Actions[0].At
}

// bigrams enumerates consecutive action-name pairs; single-action sessions
// yield a start-anchored pseudo-bigram so they still profile.
func (s *Session) bigrams() []string {
	if len(s.Actions) == 0 {
		return nil
	}
	if len(s.Actions) == 1 {
		return []string{"^ → " + s.Actions[0].Name}
	}
	out := make([]string, 0, len(s.Actions)-1)
	for i := 1; i < len(s.Actions); i++ {
		out = append(out, s.Actions[i-1].Name+" → "+s.Actions[i].Name)
	}
	return out
}

// PatternCount is one bigram with its corpus frequency.
type PatternCount struct {
	Pattern string `json:"pattern"`
	Count   int    `json:"count"`
}

// Score ranks one session's abnormality.
type Score struct {
	SessionID string  `json:"session_id"`
	User      string  `json:"user"`
	Value     float64 `json:"value"`
	// RarePatterns lists the session's rarest transitions, rarest first.
	RarePatterns []string `json:"rare_patterns,omitempty"`
}

// Summary is the §II-B visual summary.
type Summary struct {
	Sessions int `json:"sessions"`
	Users    int `json:"users"`
	// Common are the most frequent transitions across the corpus.
	Common []PatternCount `json:"common"`
	// Abnormal ranks sessions by descending abnormality.
	Abnormal []Score `json:"abnormal"`
}

// Analyzer accumulates sessions and profiles them. Safe for concurrent
// use.
type Analyzer struct {
	mu       sync.RWMutex
	sessions []Session
	counts   map[string]int
	total    int
}

// NewAnalyzer builds an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{counts: make(map[string]int)}
}

// Add records a session. Sessions without actions are rejected.
func (a *Analyzer) Add(s Session) error {
	if s.ID == "" || s.User == "" {
		return fmt.Errorf("sessions: session needs id and user")
	}
	if len(s.Actions) == 0 {
		return fmt.Errorf("sessions: session %s has no actions", s.ID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sessions = append(a.sessions, s)
	for _, bg := range s.bigrams() {
		a.counts[bg]++
		a.total++
	}
	return nil
}

// Len reports the number of recorded sessions.
func (a *Analyzer) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.sessions)
}

// Session returns a stored session by id.
func (a *Analyzer) Session(id string) (Session, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, s := range a.sessions {
		if s.ID == id {
			return s, true
		}
	}
	return Session{}, false
}

// rarity is the negative log relative frequency of a bigram. Caller holds
// at least a read lock.
func (a *Analyzer) rarity(bigram string) float64 {
	count := a.counts[bigram]
	if count == 0 || a.total == 0 {
		count = 1 // unseen patterns are maximally rare
	}
	return -math.Log(float64(count) / float64(a.total))
}

// ScoreSession computes a session's abnormality against the corpus
// profile: the mean rarity of its transitions.
func (a *Analyzer) ScoreSession(s Session) Score {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.scoreLocked(s)
}

func (a *Analyzer) scoreLocked(s Session) Score {
	bgs := s.bigrams()
	score := Score{SessionID: s.ID, User: s.User}
	if len(bgs) == 0 || a.total == 0 {
		return score
	}
	type rated struct {
		pattern string
		rarity  float64
	}
	var sum float64
	ratings := make([]rated, 0, len(bgs))
	for _, bg := range bgs {
		r := a.rarity(bg)
		sum += r
		ratings = append(ratings, rated{pattern: bg, rarity: r})
	}
	score.Value = sum / float64(len(bgs))
	sort.Slice(ratings, func(i, j int) bool {
		if ratings[i].rarity != ratings[j].rarity {
			return ratings[i].rarity > ratings[j].rarity
		}
		return ratings[i].pattern < ratings[j].pattern
	})
	for i := 0; i < len(ratings) && i < 3; i++ {
		score.RarePatterns = append(score.RarePatterns, ratings[i].pattern)
	}
	return score
}

// Summarize builds the visual summary: the topK most common transitions
// and the topK most abnormal sessions.
func (a *Analyzer) Summarize(topK int) Summary {
	if topK < 1 {
		topK = 5
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	users := make(map[string]bool)
	for _, s := range a.sessions {
		users[s.User] = true
	}
	summary := Summary{Sessions: len(a.sessions), Users: len(users)}

	common := make([]PatternCount, 0, len(a.counts))
	for p, c := range a.counts {
		common = append(common, PatternCount{Pattern: p, Count: c})
	}
	sort.Slice(common, func(i, j int) bool {
		if common[i].Count != common[j].Count {
			return common[i].Count > common[j].Count
		}
		return common[i].Pattern < common[j].Pattern
	})
	if len(common) > topK {
		common = common[:topK]
	}
	summary.Common = common

	scores := make([]Score, 0, len(a.sessions))
	for _, s := range a.sessions {
		scores = append(scores, a.scoreLocked(s))
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Value != scores[j].Value {
			return scores[i].Value > scores[j].Value
		}
		return scores[i].SessionID < scores[j].SessionID
	})
	if len(scores) > topK {
		scores = scores[:topK]
	}
	summary.Abnormal = scores
	return summary
}

// Comparison contrasts two sessions of interest (§II-B: "compares multiple
// sessions of interest").
type Comparison struct {
	OnlyA  []string `json:"only_a"`
	OnlyB  []string `json:"only_b"`
	Shared []string `json:"shared"`
	ScoreA float64  `json:"score_a"`
	ScoreB float64  `json:"score_b"`
}

// Compare diffs the transition sets of two stored sessions.
func (a *Analyzer) Compare(idA, idB string) (Comparison, error) {
	sa, okA := a.Session(idA)
	sb, okB := a.Session(idB)
	if !okA || !okB {
		return Comparison{}, fmt.Errorf("sessions: unknown session (%s: %v, %s: %v)", idA, okA, idB, okB)
	}
	setA := toSet(sa.bigrams())
	setB := toSet(sb.bigrams())
	var cmp Comparison
	for p := range setA {
		if setB[p] {
			cmp.Shared = append(cmp.Shared, p)
		} else {
			cmp.OnlyA = append(cmp.OnlyA, p)
		}
	}
	for p := range setB {
		if !setA[p] {
			cmp.OnlyB = append(cmp.OnlyB, p)
		}
	}
	sort.Strings(cmp.OnlyA)
	sort.Strings(cmp.OnlyB)
	sort.Strings(cmp.Shared)
	cmp.ScoreA = a.ScoreSession(sa).Value
	cmp.ScoreB = a.ScoreSession(sb).Value
	return cmp, nil
}

// Render prints the summary as text.
func (s Summary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "User-activity summary: %d sessions, %d users\n\n", s.Sessions, s.Users)
	sb.WriteString("Most common transitions:\n")
	for _, p := range s.Common {
		fmt.Fprintf(&sb, "  %-40s ×%d\n", p.Pattern, p.Count)
	}
	sb.WriteString("\nMost abnormal sessions:\n")
	for _, sc := range s.Abnormal {
		fmt.Fprintf(&sb, "  %-12s user=%-10s score=%.2f rare: %s\n",
			sc.SessionID, sc.User, sc.Value, strings.Join(sc.RarePatterns, "; "))
	}
	return sb.String()
}

func toSet(items []string) map[string]bool {
	out := make(map[string]bool, len(items))
	for _, it := range items {
		out[it] = true
	}
	return out
}
