package bus

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestReadFrameNeverPanics feeds the bus frame decoder random bytes.
func TestReadFrameNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = readFrame(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestBusFrameRoundTripQuick checks write→read identity for random topics
// and payloads.
func TestBusFrameRoundTripQuick(t *testing.T) {
	f := func(topicRaw [8]byte, payload []byte) bool {
		topic := string(bytes.ToValidUTF8(topicRaw[:], nil))
		var buf bytes.Buffer
		if err := writeFrame(&buf, Message{Topic: topic, Payload: payload}); err != nil {
			return false
		}
		m, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return m.Topic == topic && bytes.Equal(m.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReadFrameLengthBombRejected ensures a huge declared frame length is
// refused before allocation.
func TestReadFrameLengthBombRejected(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x02}
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("length bomb accepted")
	}
}
