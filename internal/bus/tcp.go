package bus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire format: a subscriber connects over TCP and sends one line
// "SUB <topic-prefix>\n" (the prefix may be empty). The broker then streams
// frames:
//
//	uint32 frameLen | uint16 topicLen | topic | payload
//
// frameLen covers topicLen+topic+payload. Frames are never fragmented
// across publishes.

const maxFrame = 64 << 20 // 64 MiB: larger frames indicate a protocol error

// Listener accepts TCP subscribers for a broker.
type Listener struct {
	broker *Broker
	ln     net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[*serverConn]bool
	done   chan struct{}
}

// ListenTCP starts serving broker subscriptions on addr (e.g.
// "127.0.0.1:0"). The returned Listener reports the bound address via Addr.
func (b *Broker) ListenTCP(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bus: listen %s: %w", addr, err)
	}
	l := &Listener{broker: b, ln: ln, conns: make(map[*serverConn]bool), done: make(chan struct{})}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound listen address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting subscribers and closes existing connections.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]*serverConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = map[*serverConn]bool{}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.close()
	}
	<-l.done
	return err
}

func (l *Listener) acceptLoop() {
	defer close(l.done)
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		go l.handle(conn)
	}
}

func (l *Listener) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	// Handshake: "SUB <prefix>\n".
	line, err := r.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	if len(line) < 4 || line[:4] != "SUB " {
		conn.Close()
		return
	}
	prefix := line[4 : len(line)-1]
	sc := &serverConn{conn: conn, topicPrefix: prefix, out: make(chan Message, 256)}
	l.broker.mu.Lock()
	if l.broker.closed {
		l.broker.mu.Unlock()
		conn.Close()
		return
	}
	l.broker.conns[sc] = true
	l.broker.mu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		sc.close()
	} else {
		l.conns[sc] = true
		l.mu.Unlock()
	}

	sc.writeLoop()

	l.broker.mu.Lock()
	delete(l.broker.conns, sc)
	l.broker.mu.Unlock()
	l.mu.Lock()
	delete(l.conns, sc)
	l.mu.Unlock()
}

// serverConn is one TCP subscriber held by the broker.
type serverConn struct {
	conn        net.Conn
	topicPrefix string
	out         chan Message

	mu     sync.Mutex
	closed bool
}

func (c *serverConn) prefix() string { return c.topicPrefix }

// send enqueues for the connection's writer, dropping the oldest frame when
// the subscriber lags.
func (c *serverConn) send(m Message) {
	// The lock is held across the enqueue so close() cannot close the
	// channel between the closed check and the send.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	for {
		select {
		case c.out <- m:
			return
		default:
		}
		select {
		case <-c.out:
		default:
		}
	}
}

func (c *serverConn) writeLoop() {
	w := bufio.NewWriter(c.conn)
	for m := range c.out {
		if err := writeFrame(w, m); err != nil {
			break
		}
		if len(c.out) == 0 {
			if err := w.Flush(); err != nil {
				break
			}
		}
	}
	c.close()
}

func (c *serverConn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.out)
	c.mu.Unlock()
	c.conn.Close()
}

func writeFrame(w io.Writer, m Message) error {
	topic := []byte(m.Topic)
	frameLen := 2 + len(topic) + len(m.Payload)
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameLen))
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(topic)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(topic); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

func readFrame(r io.Reader) (Message, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	frameLen := binary.BigEndian.Uint32(hdr[0:4])
	topicLen := binary.BigEndian.Uint16(hdr[4:6])
	if frameLen > maxFrame || uint32(topicLen)+2 > frameLen {
		return Message{}, errors.New("bus: malformed frame header")
	}
	body := make([]byte, frameLen-2)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	return Message{
		Topic:   string(body[:topicLen]),
		Payload: body[topicLen:],
	}, nil
}

// Client is a reconnecting TCP subscriber. Messages arrive on C; the client
// redials with exponential backoff when the connection drops, until Close.
type Client struct {
	addr   string
	prefix string
	ch     chan Message

	mu        sync.Mutex
	closed    bool
	conn      net.Conn
	reconnect int
	done      chan struct{}
	quit      chan struct{}
}

// Dial starts a subscriber for topicPrefix against a broker listener.
func Dial(addr, topicPrefix string) *Client {
	c := &Client{
		addr:   addr,
		prefix: topicPrefix,
		ch:     make(chan Message, 256),
		done:   make(chan struct{}),
		quit:   make(chan struct{}),
	}
	go c.run()
	return c
}

// C returns the receive channel; it closes when the client is closed.
func (c *Client) C() <-chan Message { return c.ch }

// Reconnects reports how many times the client redialed after a drop.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnect
}

// Close stops the client.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.quit)
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	<-c.done
}

func (c *Client) run() {
	defer close(c.done)
	defer close(c.ch)
	backoff := 10 * time.Millisecond
	first := true
	for {
		if c.isClosed() {
			return
		}
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			if !c.sleep(backoff) {
				return
			}
			backoff = minDuration(backoff*2, 2*time.Second)
			continue
		}
		if !first {
			c.mu.Lock()
			c.reconnect++
			c.mu.Unlock()
		}
		first = false
		backoff = 10 * time.Millisecond

		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		c.mu.Unlock()

		if _, err := fmt.Fprintf(conn, "SUB %s\n", c.prefix); err != nil {
			conn.Close()
			continue
		}
		r := bufio.NewReader(conn)
		for {
			m, err := readFrame(r)
			if err != nil {
				conn.Close()
				break
			}
			select {
			case c.ch <- m:
			default:
				// Drop oldest to keep the newest flowing.
				select {
				case <-c.ch:
				default:
				}
				c.ch <- m
			}
		}
	}
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return !c.isClosed()
	case <-c.quit:
		return false
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
