// Package bus implements the asynchronous publish/subscribe channel the
// paper builds on zeroMQ: the MISP instance publishes every stored event in
// real time and the heuristic component subscribes to start its analysis
// (§IV-A). The broker fans out topic-tagged frames to in-process
// subscribers and to TCP subscribers; topic matching is prefix-based, as in
// zeroMQ. Slow subscribers drop the oldest queued messages rather than
// blocking publishers.
package bus

import (
	"sync"
	"sync/atomic"

	"github.com/caisplatform/caisp/internal/obs"
)

// Message is one published datum.
type Message struct {
	Topic   string
	Payload []byte
}

// Subscription receives messages whose topic starts with its prefix.
type Subscription struct {
	prefix string
	ch     chan Message
	broker *Broker

	mu      sync.Mutex
	dropped int
	closed  bool
}

// C returns the subscription's receive channel. It is closed when the
// subscription or the broker shuts down.
func (s *Subscription) C() <-chan Message { return s.ch }

// Dropped reports how many messages were discarded because the subscriber
// lagged behind.
func (s *Subscription) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close cancels the subscription.
func (s *Subscription) Close() {
	s.broker.unsubscribe(s)
}

// deliver enqueues without blocking: when the buffer is full the oldest
// message is dropped to make room.
func (s *Subscription) deliver(m Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- m:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped++
			s.broker.droppedTotal.Add(1)
		default:
		}
	}
}

func (s *Subscription) markClosed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// Broker is an in-process topic bus; ListenTCP extends it over the network.
type Broker struct {
	mu     sync.Mutex
	subs   map[*Subscription]bool
	conns  map[*serverConn]bool
	closed bool

	published int
	bufSize   int

	// droppedTotal aggregates drop-oldest losses across all subscriptions
	// (including closed ones), so backpressure stays visible after the
	// lagging subscriber is gone.
	droppedTotal atomic.Int64
}

// Option configures a Broker.
type Option interface{ apply(*Broker) }

type bufSizeOption int

func (o bufSizeOption) apply(b *Broker) { b.bufSize = int(o) }

// WithBuffer sets the per-subscription queue length (default 256).
func WithBuffer(n int) Option { return bufSizeOption(n) }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(b *Broker) { b.registerMetrics(o.reg) }

// WithMetrics registers the broker's caisp_bus_* families into reg. The
// drop counter is fed by the same atomic deliver bumps at drop time, so
// losses are visible on the very next scrape — not only when a stats
// snapshot is polled. A nil registry registers nothing.
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg: reg} }

// registerMetrics installs scrape-time views over the broker counters.
func (b *Broker) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("caisp_bus_published_total",
		"Messages accepted by Broker.Publish.",
		func() float64 { return float64(b.Published()) })
	reg.CounterFunc("caisp_bus_dropped_total",
		"Messages discarded broker-wide by the drop-oldest policy (live; bumped at drop time).",
		func() float64 { return float64(b.Dropped()) })
	reg.GaugeFunc("caisp_bus_subscribers",
		"Currently attached in-process subscriptions.",
		func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.subs))
		})
	reg.GaugeFunc("caisp_bus_tcp_conns",
		"Currently attached TCP subscriber connections.",
		func() float64 { return float64(b.TCPConns()) })
}

// NewBroker constructs a Broker.
func NewBroker(opts ...Option) *Broker {
	b := &Broker{
		subs:    make(map[*Subscription]bool),
		conns:   make(map[*serverConn]bool),
		bufSize: 256,
	}
	for _, o := range opts {
		o.apply(b)
	}
	if b.bufSize < 1 {
		b.bufSize = 1
	}
	return b
}

// Subscribe registers a prefix subscription. The empty prefix receives
// every message.
func (b *Broker) Subscribe(topicPrefix string) *Subscription {
	sub := &Subscription{
		prefix: topicPrefix,
		ch:     make(chan Message, b.bufSize),
		broker: b,
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		sub.markClosed()
		return sub
	}
	b.subs[sub] = true
	return sub
}

// Publish fans the message out to all matching subscribers. It never
// blocks on slow consumers.
func (b *Broker) Publish(topic string, payload []byte) {
	msg := Message{Topic: topic, Payload: payload}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.published++
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		if hasPrefix(topic, s.prefix) {
			subs = append(subs, s)
		}
	}
	conns := make([]*serverConn, 0, len(b.conns))
	for c := range b.conns {
		if hasPrefix(topic, c.prefix()) {
			conns = append(conns, c)
		}
	}
	b.mu.Unlock()

	for _, s := range subs {
		s.deliver(msg)
	}
	for _, c := range conns {
		c.send(msg)
	}
}

// TCPConns reports the number of connected TCP subscribers — deployments
// use it to confirm remote components are attached before publishing
// (pub/sub delivers only to present subscribers).
func (b *Broker) TCPConns() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.conns)
}

// Published returns the number of accepted Publish calls.
func (b *Broker) Published() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}

// Dropped returns the total number of messages discarded broker-wide
// because subscribers lagged behind (drop-oldest policy).
func (b *Broker) Dropped() int64 {
	return b.droppedTotal.Load()
}

// Close shuts the broker down: all subscriptions are closed and TCP
// connections terminated.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	conns := make([]*serverConn, 0, len(b.conns))
	for c := range b.conns {
		conns = append(conns, c)
	}
	b.subs = map[*Subscription]bool{}
	b.conns = map[*serverConn]bool{}
	b.mu.Unlock()

	for _, s := range subs {
		s.markClosed()
	}
	for _, c := range conns {
		c.close()
	}
}

func (b *Broker) unsubscribe(s *Subscription) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
	s.markClosed()
}

func hasPrefix(topic, prefix string) bool {
	return len(topic) >= len(prefix) && topic[:len(prefix)] == prefix
}
