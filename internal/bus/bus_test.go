package bus

import (
	"strings"

	"fmt"
	"github.com/caisplatform/caisp/internal/obs"
	"sync"
	"testing"
	"time"
)

func recvOne(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("channel closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for message")
		return Message{}
	}
}

func expectNone(t *testing.T, ch <-chan Message) {
	t.Helper()
	select {
	case m := <-ch:
		t.Fatalf("unexpected message on %q", m.Topic)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestInProcessPubSub(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub := b.Subscribe("misp.")
	b.Publish("misp.event", []byte("hello"))
	m := recvOne(t, sub.C())
	if m.Topic != "misp.event" || string(m.Payload) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestPrefixFiltering(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	all := b.Subscribe("")
	misp := b.Subscribe("misp.")
	other := b.Subscribe("alarms.")

	b.Publish("misp.event", []byte("x"))
	recvOne(t, all.C())
	recvOne(t, misp.C())
	expectNone(t, other.C())
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	sub := b.Subscribe("")
	sub.Close()
	b.Publish("t", []byte("x"))
	if _, ok := <-sub.C(); ok {
		t.Fatal("message delivered after Close")
	}
}

func TestSlowSubscriberDropsOldest(t *testing.T) {
	b := NewBroker(WithBuffer(4))
	defer b.Close()
	sub := b.Subscribe("")
	for i := 0; i < 10; i++ {
		b.Publish("t", []byte{byte(i)})
	}
	if sub.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", sub.Dropped())
	}
	// The surviving messages are the newest four.
	first := recvOne(t, sub.C())
	if first.Payload[0] != 6 {
		t.Fatalf("oldest surviving = %d, want 6", first.Payload[0])
	}
}

func TestBrokerCloseClosesSubscribers(t *testing.T) {
	b := NewBroker()
	sub := b.Subscribe("")
	b.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscription channel not closed")
	}
	// Publishing and subscribing after close are safe no-ops.
	b.Publish("t", nil)
	dead := b.Subscribe("x")
	if _, ok := <-dead.C(); ok {
		t.Fatal("post-close subscription delivered")
	}
}

func TestPublishedCounter(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.Publish("t", nil)
	}
	if b.Published() != 5 {
		t.Fatalf("Published = %d", b.Published())
	}
}

func TestTCPDelivery(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	l, err := b.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	client := Dial(l.Addr(), "misp.")
	defer client.Close()

	// Give the client a moment to connect before publishing.
	waitForConns(t, b, 1)
	b.Publish("misp.event.add", []byte(`{"uuid":"u1"}`))
	b.Publish("alarms.new", []byte("filtered-out"))
	b.Publish("misp.event.edit", []byte(`{"uuid":"u2"}`))

	m1 := recvOne(t, client.C())
	if m1.Topic != "misp.event.add" || string(m1.Payload) != `{"uuid":"u1"}` {
		t.Fatalf("got %+v", m1)
	}
	m2 := recvOne(t, client.C())
	if m2.Topic != "misp.event.edit" {
		t.Fatalf("got %+v, want edit (alarms filtered)", m2)
	}
}

func TestTCPMultipleSubscribers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	l, err := b.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	c1 := Dial(l.Addr(), "")
	defer c1.Close()
	c2 := Dial(l.Addr(), "")
	defer c2.Close()
	waitForConns(t, b, 2)

	b.Publish("t", []byte("fanout"))
	if string(recvOne(t, c1.C()).Payload) != "fanout" {
		t.Fatal("c1 missed")
	}
	if string(recvOne(t, c2.C()).Payload) != "fanout" {
		t.Fatal("c2 missed")
	}
}

func TestTCPClientReconnects(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	l, err := b.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()

	client := Dial(addr, "")
	defer client.Close()
	waitForConns(t, b, 1)
	b.Publish("t", []byte("before"))
	if string(recvOne(t, client.C()).Payload) != "before" {
		t.Fatal("pre-restart message lost")
	}

	// Kill the listener (drops the connection), then restart on the same
	// address.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var l2 *Listener
	for {
		l2, err = b.ListenTCP(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer l2.Close()

	// Wait for the client to have redialed (not just for the stale server
	// connection to still be registered).
	deadline = time.Now().Add(5 * time.Second)
	for client.Reconnects() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitForConns(t, b, 1)
	b.Publish("t", []byte("after"))
	if string(recvOne(t, client.C()).Payload) != "after" {
		t.Fatal("post-restart message lost")
	}
	if client.Reconnects() < 1 {
		t.Fatalf("Reconnects = %d, want ≥ 1", client.Reconnects())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf writableBuffer
	msgs := []Message{
		{Topic: "t", Payload: []byte("payload")},
		{Topic: "", Payload: nil},
		{Topic: "misp.event", Payload: make([]byte, 4096)},
	}
	for _, m := range msgs {
		if err := writeFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Topic != want.Topic || len(got.Payload) != len(want.Payload) {
			t.Fatalf("frame mismatch: %+v vs %+v", got, want)
		}
	}
}

func TestReadFrameRejectsMalformedHeader(t *testing.T) {
	var buf writableBuffer
	// topicLen (10) exceeds frameLen (4): impossible.
	buf.data = []byte{0, 0, 0, 4, 0, 10, 'x', 'x', 'x', 'x'}
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("malformed header accepted")
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := NewBroker(WithBuffer(10000))
	defer b.Close()
	sub := b.Subscribe("")
	var wg sync.WaitGroup
	const publishers, per = 8, 100
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(fmt.Sprintf("topic-%d", p), []byte{byte(i)})
			}
		}(p)
	}
	wg.Wait()
	if b.Published() != publishers*per {
		t.Fatalf("Published = %d", b.Published())
	}
	received := 0
	for {
		select {
		case <-sub.C():
			received++
		default:
			if received != publishers*per {
				t.Fatalf("received %d, want %d", received, publishers*per)
			}
			return
		}
	}
}

// writableBuffer is a minimal io.ReadWriter for frame tests.
type writableBuffer struct {
	data []byte
}

func (b *writableBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writableBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func waitForConns(t *testing.T, b *Broker, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		have := len(b.conns)
		b.mu.Unlock()
		if have >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d TCP conns after 5s, want %d", have, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDropCounterLiveOnMetrics asserts that a dropped publish is visible
// on the metrics surface immediately — at the moment of the drop, not
// only when a stats snapshot is later polled.
func TestDropCounterLiveOnMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBroker(WithBuffer(1), WithMetrics(reg))
	defer b.Close()
	sub := b.Subscribe("")
	defer sub.Close()

	scrape := func() string {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if out := scrape(); !strings.Contains(out, "caisp_bus_dropped_total 0") {
		t.Fatalf("pre-drop exposition:\n%s", out)
	}

	b.Publish("t", []byte("first"))
	b.Publish("t", []byte("second")) // evicts "first" from the 1-slot buffer

	// No Stats() poll in between: the scrape alone must see the drop.
	if out := scrape(); !strings.Contains(out, "caisp_bus_dropped_total 1") {
		t.Fatalf("post-drop exposition:\n%s", out)
	}
	if !strings.Contains(scrape(), "caisp_bus_published_total 2") {
		t.Fatal("published counter not live")
	}
}
