package misp

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
)

var now = time.Date(2017, 9, 13, 10, 0, 0, 0, time.UTC)

func sampleEvent(t *testing.T) *Event {
	t.Helper()
	e := NewEvent("OSINT - Apache Struts RCE campaign", now)
	e.ThreatLevelID = ThreatLevelHigh
	e.Orgc = &Org{UUID: "6ba7b810-9dad-11d1-80b4-00c04fd430c8", Name: "CAISP"}
	e.AddAttribute("vulnerability", "External analysis", "CVE-2017-9805", now).Comment = "Apache Struts REST plugin RCE"
	e.AddAttribute("cvss-vector", "External analysis", "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", now)
	e.AddAttribute("domain", "Network activity", "struts-exploit.example", now)
	e.AddAttribute("ip-dst", "Network activity", "203.0.113.7", now)
	e.AddAttribute("sha256", "Payload delivery", strings.Repeat("ab", 32), now)
	e.AddTag("tlp:white")
	return e
}

func TestEventJSONRoundTrip(t *testing.T) {
	e := sampleEvent(t)
	data, err := MarshalWrapped(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Event"`) {
		t.Fatalf("wrapped encoding missing Event envelope: %s", data)
	}
	back, err := UnmarshalWrapped(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.UUID != e.UUID || back.Info != e.Info || len(back.Attributes) != len(e.Attributes) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, e)
	}
	if !back.Timestamp.Equal(now) {
		t.Fatalf("timestamp = %v, want %v", back.Timestamp, now)
	}
}

func TestUnmarshalWrappedBareForm(t *testing.T) {
	e := sampleEvent(t)
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalWrapped(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.UUID != e.UUID {
		t.Fatalf("bare decode uuid = %q, want %q", back.UUID, e.UUID)
	}
}

func TestUnmarshalWrappedRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalWrapped([]byte(`{"neither":"thing"}`)); err == nil {
		t.Fatal("decode of non-event succeeded")
	}
	if _, err := UnmarshalWrapped([]byte(`not json`)); err == nil {
		t.Fatal("decode of non-JSON succeeded")
	}
}

func TestUnixTimeIntegerForm(t *testing.T) {
	var ts UnixTime
	if err := json.Unmarshal([]byte(`1505296800`), &ts); err != nil {
		t.Fatal(err)
	}
	if ts.Unix() != 1505296800 {
		t.Fatalf("unix = %d", ts.Unix())
	}
	if err := json.Unmarshal([]byte(`"0"`), &ts); err != nil {
		t.Fatal(err)
	}
	if !ts.IsZero() {
		t.Fatal("zero timestamp not zero")
	}
	if err := json.Unmarshal([]byte(`"forever"`), &ts); err == nil {
		t.Fatal("bad timestamp decoded")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Event)
		want   string
	}{
		{name: "bad uuid", mutate: func(e *Event) { e.UUID = "nope" }, want: "invalid uuid"},
		{name: "empty info", mutate: func(e *Event) { e.Info = "" }, want: "empty info"},
		{name: "bad date", mutate: func(e *Event) { e.Date = "13/09/2017" }, want: "bad date"},
		{name: "bad threat level", mutate: func(e *Event) { e.ThreatLevelID = 9 }, want: "threat_level_id"},
		{name: "bad analysis", mutate: func(e *Event) { e.Analysis = -1 }, want: "bad analysis"},
		{name: "empty attribute value", mutate: func(e *Event) { e.Attributes[0].Value = "" }, want: "empty type or value"},
		{name: "bad attribute uuid", mutate: func(e *Event) { e.Attributes[0].UUID = "x" }, want: "invalid uuid"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := sampleEvent(t)
			tt.mutate(e)
			err := e.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tt.want)
			}
		})
	}
	if err := sampleEvent(t).Validate(); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
}

func TestEventHelpers(t *testing.T) {
	e := sampleEvent(t)
	if got := e.FindAttribute("vulnerability"); got == nil || got.Value != "CVE-2017-9805" {
		t.Fatalf("FindAttribute = %+v", got)
	}
	if got := e.FindAttribute("yara"); got != nil {
		t.Fatalf("FindAttribute(yara) = %+v, want nil", got)
	}
	if got := e.AttributeValues("domain"); len(got) != 1 || got[0] != "struts-exploit.example" {
		t.Fatalf("AttributeValues = %v", got)
	}
	e.AddTag("tlp:white") // duplicate must be ignored
	count := 0
	for _, tag := range e.Tags {
		if tag.Name == "tlp:white" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate tag stored %d times", count)
	}
	if !e.HasTag("tlp:white") || e.HasTag("tlp:red") {
		t.Fatal("HasTag misbehaves")
	}
}

func TestToSTIXProducesExpectedSDOs(t *testing.T) {
	e := sampleEvent(t)
	b, err := ToSTIX(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := stix.ValidateBundle(b); err != nil {
		t.Fatalf("converted bundle invalid: %v", err)
	}
	vulns := b.ByType(stix.TypeVulnerability)
	if len(vulns) != 1 {
		t.Fatalf("got %d vulnerabilities, want 1", len(vulns))
	}
	v := vulns[0].(*stix.Vulnerability)
	if v.Name != "CVE-2017-9805" {
		t.Fatalf("vulnerability name = %q", v.Name)
	}
	if vec, ok := v.ExtraString("x_caisp_cvss_vector"); !ok || !strings.HasPrefix(vec, "CVSS:3.0/") {
		t.Fatalf("cvss vector not preserved: %q %v", vec, ok)
	}
	if uuidProp, ok := v.ExtraString("x_misp_event_uuid"); !ok || uuidProp != e.UUID {
		t.Fatalf("x_misp_event_uuid = %q, want %q", uuidProp, e.UUID)
	}
	wantRef := false
	for _, ref := range v.ExternalReferences {
		if ref.SourceName == "cve" && ref.ExternalID == "CVE-2017-9805" {
			wantRef = true
		}
	}
	if !wantRef {
		t.Fatalf("missing cve external reference: %+v", v.ExternalReferences)
	}

	inds := b.ByType(stix.TypeIndicator)
	if len(inds) != 3 {
		t.Fatalf("got %d indicators, want 3 (domain, ip, sha256)", len(inds))
	}
	var patterns []string
	for _, o := range inds {
		patterns = append(patterns, o.(*stix.Indicator).Pattern)
	}
	joined := strings.Join(patterns, "\n")
	for _, want := range []string{
		"[domain-name:value = 'struts-exploit.example']",
		"[ipv4-addr:value = '203.0.113.7']",
		"[file:hashes.'SHA-256' = '" + strings.Repeat("ab", 32) + "']",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing pattern %q in:\n%s", want, joined)
		}
	}

	idents := b.ByType(stix.TypeIdentity)
	if len(idents) != 1 || idents[0].(*stix.Identity).Name != "CAISP" {
		t.Fatalf("identity conversion wrong: %+v", idents)
	}
}

func TestToSTIXDeterministicIDs(t *testing.T) {
	e := sampleEvent(t)
	b1, err := ToSTIX(e)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ToSTIX(e)
	if err != nil {
		t.Fatal(err)
	}
	v1 := b1.ByType(stix.TypeVulnerability)[0].GetCommon().ID
	v2 := b2.ByType(stix.TypeVulnerability)[0].GetCommon().ID
	if v1 != v2 {
		t.Fatalf("vulnerability ids differ across conversions: %s vs %s", v1, v2)
	}
}

func TestToSTIXMalwareTag(t *testing.T) {
	e := NewEvent("Emotet drop", now)
	e.AddTag(tagMalware)
	e.AddAttribute("domain", "Network activity", "emotet-c2.example", now)
	b, err := ToSTIX(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ByType(stix.TypeMalware)) != 1 {
		t.Fatalf("malware SDO missing")
	}
	rels := b.ByType(stix.TypeRelationship)
	if len(rels) != 1 {
		t.Fatalf("got %d relationships, want 1", len(rels))
	}
	rel := rels[0].(*stix.Relationship)
	if rel.RelationshipType != "indicates" {
		t.Fatalf("relationship type = %q", rel.RelationshipType)
	}
}

func TestToSTIXEmptyEventFails(t *testing.T) {
	e := NewEvent("empty", now)
	if _, err := ToSTIX(e); err == nil {
		t.Fatal("empty event converted successfully")
	}
}

func TestFromSTIXRoundTrip(t *testing.T) {
	e := sampleEvent(t)
	b, err := ToSTIX(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSTIX(b, now)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.FindAttribute("vulnerability"); got == nil || got.Value != "CVE-2017-9805" {
		t.Fatalf("vulnerability attribute lost: %+v", got)
	}
	if got := back.FindAttribute("domain"); got == nil || got.Value != "struts-exploit.example" {
		t.Fatalf("domain attribute lost: %+v", got)
	}
	if got := back.FindAttribute("ip-dst"); got == nil || got.Value != "203.0.113.7" {
		t.Fatalf("ip attribute lost: %+v", got)
	}
	if got := back.FindAttribute("sha256"); got == nil {
		t.Fatal("sha256 attribute lost")
	}
	if got := back.FindAttribute("cvss-vector"); got == nil {
		t.Fatal("cvss vector lost")
	}
	if back.Orgc == nil || back.Orgc.Name != "CAISP" {
		t.Fatalf("orgc lost: %+v", back.Orgc)
	}
}

func TestFromSTIXUnrecognisedPatternKept(t *testing.T) {
	ind := stix.NewIndicator("[x:y > 5 AND a:b = 'c']", []string{"malicious-activity"}, now)
	b := stix.NewBundle(ind)
	e, err := FromSTIX(b, now)
	if err != nil {
		t.Fatal(err)
	}
	got := e.FindAttribute("stix2-pattern")
	if got == nil || got.Value != "[x:y > 5 AND a:b = 'c']" {
		t.Fatalf("complex pattern not preserved: %+v", got)
	}
}

func TestFromSTIXEmptyBundleFails(t *testing.T) {
	if _, err := FromSTIX(stix.NewBundle(), now); err == nil {
		t.Fatal("empty bundle converted successfully")
	}
}

func TestPatternToAttribute(t *testing.T) {
	tests := []struct {
		give      string
		wantType  string
		wantValue string
		wantOK    bool
	}{
		{give: "[domain-name:value = 'evil.example']", wantType: "domain", wantValue: "evil.example", wantOK: true},
		{give: "[ipv4-addr:value = '10.0.0.1']", wantType: "ip-dst", wantValue: "10.0.0.1", wantOK: true},
		{give: "[url:value = 'http://x.example/a']", wantType: "url", wantValue: "http://x.example/a", wantOK: true},
		{give: "[file:hashes.'SHA-256' = 'abcd']", wantType: "sha256", wantValue: "abcd", wantOK: true},
		{give: "[x:y != 'v']", wantOK: false},
		{give: "[x:y > 5]", wantOK: false},
		{give: "[a:b = 'x' AND c:d = 'y']", wantOK: false},
		{give: "not a pattern", wantOK: false},
	}
	for _, tt := range tests {
		typ, val, ok := patternToAttribute(tt.give)
		if ok != tt.wantOK {
			t.Errorf("patternToAttribute(%q) ok = %v, want %v", tt.give, ok, tt.wantOK)
			continue
		}
		if ok && (typ != tt.wantType || val != tt.wantValue) {
			t.Errorf("patternToAttribute(%q) = %q,%q want %q,%q", tt.give, typ, val, tt.wantType, tt.wantValue)
		}
	}
}

func TestVulnerabilityObjectConversion(t *testing.T) {
	e := NewEvent("advisory with MISP object", now)
	obj := e.AddObject("vulnerability", "vulnerability")
	obj.AddAttribute("vulnerability", "External analysis", "CVE-2017-9805", now).Comment = "struts RCE"
	obj.AddAttribute("cvss-vector", "External analysis", "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", now)
	obj.AddAttribute("text", "Other", "os:debian", now)
	obj.AddAttribute("text", "Other", "products:apache struts,apache", now)
	obj.AddAttribute("link", "External analysis", "https://capec.mitre.example/248", now)

	b, err := ToSTIX(e)
	if err != nil {
		t.Fatal(err)
	}
	vulns := b.ByType(stix.TypeVulnerability)
	if len(vulns) != 1 {
		t.Fatalf("vulnerabilities = %d", len(vulns))
	}
	v := vulns[0].(*stix.Vulnerability)
	if v.Name != "CVE-2017-9805" || v.Description != "struts RCE" {
		t.Fatalf("sdo = %+v", v)
	}
	if vec, _ := v.ExtraString("x_caisp_cvss_vector"); !strings.HasPrefix(vec, "CVSS:3.0/") {
		t.Fatalf("cvss lost: %q", vec)
	}
	if osName, _ := v.ExtraString("x_caisp_os"); osName != "debian" {
		t.Fatalf("os lost: %q", osName)
	}
	if products, _ := v.ExtraString("x_caisp_products"); products == "" {
		t.Fatal("products lost")
	}
	known := 0
	for _, ref := range v.ExternalReferences {
		if ref.SourceName == "cve" || ref.SourceName == "capec" {
			known++
		}
	}
	if known < 2 {
		t.Fatalf("references = %+v", v.ExternalReferences)
	}
	// Objects without a vulnerability id are skipped.
	e2 := NewEvent("empty object", now)
	e2.AddObject("vulnerability", "vulnerability")
	e2.AddAttribute("domain", "Network activity", "x.example", now)
	b2, err := ToSTIX(e2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.ByType(stix.TypeVulnerability)) != 0 {
		t.Fatal("id-less object converted")
	}
}

func TestObjectValidation(t *testing.T) {
	e := sampleEvent(t)
	obj := e.AddObject("vulnerability", "vulnerability")
	obj.AddAttribute("vulnerability", "External analysis", "CVE-2020-0001", now)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	e.Objects[0].UUID = "broken"
	if err := e.Validate(); err == nil {
		t.Fatal("bad object uuid accepted")
	}
	e.Objects[0].UUID = e.UUID // valid uuid again
	e.Objects[0].Name = ""
	if err := e.Validate(); err == nil {
		t.Fatal("empty object name accepted")
	}
}

func TestTLPMarkingApplied(t *testing.T) {
	e := sampleEvent(t) // carries tlp:white
	b, err := ToSTIX(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range b.Objects {
		refs := obj.GetCommon().ObjectMarkingRefs
		if len(refs) != 1 || refs[0] != stix.TLPWhiteID {
			t.Fatalf("%s markings = %v", obj.GetCommon().ID, refs)
		}
	}
	// Unknown TLP levels and untagged events leave markings empty.
	e2 := NewEvent("untagged", now)
	e2.AddAttribute("domain", "Network activity", "x.example", now)
	b2, err := ToSTIX(e2)
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.Objects[0].GetCommon().ObjectMarkingRefs; len(got) != 0 {
		t.Fatalf("untagged markings = %v", got)
	}
}
