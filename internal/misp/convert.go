package misp

import (
	"fmt"
	"net/url"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
)

// Attribute types and the STIX pattern object path each maps to. This is
// the subset of MISP's attribute taxonomy exercised by OSINT feeds.
var attributePatternPaths = map[string]string{
	"ip-src":    "ipv4-addr:value",
	"ip-dst":    "ipv4-addr:value",
	"domain":    "domain-name:value",
	"hostname":  "domain-name:value",
	"url":       "url:value",
	"md5":       "file:hashes.'MD5'",
	"sha1":      "file:hashes.'SHA-1'",
	"sha256":    "file:hashes.'SHA-256'",
	"sha512":    "file:hashes.'SHA-512'",
	"filename":  "file:name",
	"email-src": "email-addr:value",
	"email-dst": "email-addr:value",
}

// Taxonomy tags the converter understands when deriving SDO types.
const (
	tagMalware       = "caisp:sdo=\"malware\""
	tagAttackPattern = "caisp:sdo=\"attack-pattern\""
	tagTool          = "caisp:sdo=\"tool\""
)

// ToSTIX converts a MISP event to a STIX 2.0 bundle:
//
//   - an identity SDO for the creating organisation, if any;
//   - one vulnerability SDO per vulnerability attribute (CVE id in an
//     external reference, CVSS vector comments preserved as custom
//     properties);
//   - one indicator SDO per detection-grade attribute (to_ids), with a STIX
//     pattern derived from the attribute type;
//   - a malware / attack-pattern / tool SDO when the event is tagged with
//     the corresponding caisp taxonomy tag;
//   - relationships linking indicators to the SDO they indicate.
//
// Event tags become labels on every produced SDO, and each SDO carries
// x_misp_event_uuid so enrichment results can be written back to the stored
// MISP event.
func ToSTIX(e *Event) (*stix.Bundle, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	bundle := stix.NewBundle()
	now := e.Timestamp.Time
	if now.IsZero() {
		now = time.Now().UTC()
	}
	labels := tagLabels(e.Tags)

	var primary stix.Object
	switch {
	case e.HasTag(tagMalware):
		m := stix.NewMalware(e.Info, orDefault(labels, "malware"), now)
		primary = m
	case e.HasTag(tagAttackPattern):
		primary = stix.NewAttackPattern(e.Info, now)
	case e.HasTag(tagTool):
		primary = stix.NewTool(e.Info, orDefault(labels, "tool"), now)
	}
	if primary != nil {
		decorate(primary, e, labels)
		bundle.Add(primary)
	}

	if e.Orgc != nil {
		ident := stix.NewIdentity(e.Orgc.Name, "organization", now)
		ident.ID = stix.DeterministicID(stix.TypeIdentity, e.Orgc.UUID)
		decorate(ident, e, nil)
		bundle.Add(ident)
	}

	for i := range e.Attributes {
		attr := &e.Attributes[i]
		at := attr.Timestamp.Time
		if at.IsZero() {
			at = now
		}
		switch attr.Type {
		case "vulnerability":
			v := stix.NewVulnerability(attr.Value, attr.Comment, at)
			v.ID = stix.DeterministicID(stix.TypeVulnerability, attr.Value)
			v.ExternalReferences = append(v.ExternalReferences, stix.ExternalReference{
				SourceName: "cve",
				ExternalID: attr.Value,
			})
			decorate(v, e, labels)
			bundle.Add(v)
		case "cvss-vector":
			// Attached to the most recent vulnerability SDO as a custom
			// property; standalone vectors are dropped.
			if v := lastVulnerability(bundle); v != nil {
				v.SetExtra("x_caisp_cvss_vector", attr.Value)
			}
		case "link":
			// Reference URLs enrich the most recent vulnerability SDO's
			// external references; the source name is inferred from the URL
			// so the heuristic's known-source inventory check applies.
			if v := lastVulnerability(bundle); v != nil {
				v.ExternalReferences = append(v.ExternalReferences, stix.ExternalReference{
					SourceName: refSourceFromURL(attr.Value),
					URL:        attr.Value,
				})
			}
		case "text":
			// Prefixed context attributes ("os:debian", "products:apache")
			// decorate the most recent vulnerability SDO so the heuristic's
			// accuracy features can consume them.
			if osName, ok := strings.CutPrefix(attr.Value, "os:"); ok {
				if v := lastVulnerability(bundle); v != nil {
					v.SetExtra("x_caisp_os", osName)
				}
			} else if products, ok := strings.CutPrefix(attr.Value, "products:"); ok {
				if v := lastVulnerability(bundle); v != nil {
					v.SetExtra("x_caisp_products", products)
				}
			}
		default:
			path, ok := attributePatternPaths[attr.Type]
			if !ok || !attr.ToIDS {
				continue
			}
			pattern := fmt.Sprintf("[%s = '%s']", path, escapePatternLiteral(attr.Value))
			ind := stix.NewIndicator(pattern, orDefault(labels, "malicious-activity"), at)
			ind.ID = stix.DeterministicID(stix.TypeIndicator, attr.Type+":"+attr.Value)
			ind.Name = attr.Value
			ind.Description = attr.Comment
			decorate(ind, e, labels)
			ind.SetExtra("x_misp_attribute_uuid", attr.UUID)
			ind.SetExtra("x_misp_attribute_type", attr.Type)
			bundle.Add(ind)
			if primary != nil {
				rel := stix.NewRelationship("indicates", ind.ID, primary.GetCommon().ID, at)
				bundle.Add(rel)
			}
		}
	}
	// Template-grouped MISP objects (how real MISP instances model
	// vulnerabilities) convert to SDOs as well.
	for i := range e.Objects {
		if sdo := vulnerabilityFromObject(&e.Objects[i], e, labels, now); sdo != nil {
			bundle.Add(sdo)
		}
	}
	if len(bundle.Objects) == 0 {
		return nil, fmt.Errorf("misp: event %s converts to an empty bundle", e.UUID)
	}
	applyTLPMarkings(e, bundle)
	return bundle, nil
}

// applyTLPMarkings maps the event's tlp:* tag onto STIX object markings:
// every SDO references the predefined TLP marking definition.
func applyTLPMarkings(e *Event, bundle *stix.Bundle) {
	var markingID string
	for _, tag := range e.Tags {
		if level, ok := strings.CutPrefix(tag.Name, "tlp:"); ok {
			if m := stix.TLPMarking(strings.ToLower(level)); m != nil {
				markingID = m.ID
			}
			break
		}
	}
	if markingID == "" {
		return
	}
	for _, obj := range bundle.Objects {
		c := obj.GetCommon()
		c.ObjectMarkingRefs = append(c.ObjectMarkingRefs, markingID)
	}
}

// vulnerabilityFromObject builds a vulnerability SDO from a MISP
// "vulnerability" object: the id attribute names the CVE; cvss-vector,
// prefixed text attributes and link references decorate it.
func vulnerabilityFromObject(obj *Object, e *Event, labels []string, now time.Time) *stix.Vulnerability {
	if obj.Name != "vulnerability" {
		return nil
	}
	idAttr := obj.FindAttribute("vulnerability")
	if idAttr == nil || idAttr.Value == "" {
		return nil
	}
	at := idAttr.Timestamp.Time
	if at.IsZero() {
		at = now
	}
	v := stix.NewVulnerability(idAttr.Value, idAttr.Comment, at)
	v.ID = stix.DeterministicID(stix.TypeVulnerability, idAttr.Value)
	v.ExternalReferences = append(v.ExternalReferences, stix.ExternalReference{
		SourceName: "cve",
		ExternalID: idAttr.Value,
	})
	for _, a := range obj.Attributes {
		switch a.Type {
		case "cvss-vector":
			v.SetExtra("x_caisp_cvss_vector", a.Value)
		case "text":
			if osName, ok := strings.CutPrefix(a.Value, "os:"); ok {
				v.SetExtra("x_caisp_os", osName)
			} else if products, ok := strings.CutPrefix(a.Value, "products:"); ok {
				v.SetExtra("x_caisp_products", products)
			}
		case "link":
			v.ExternalReferences = append(v.ExternalReferences, stix.ExternalReference{
				SourceName: refSourceFromURL(a.Value),
				URL:        a.Value,
			})
		case "comment":
			if v.Description == "" {
				v.Description = a.Value
			}
		}
	}
	decorate(v, e, labels)
	return v
}

// FromSTIX converts a STIX bundle into a MISP event. Indicators with
// single-comparison equality patterns become typed attributes;
// vulnerabilities become vulnerability attributes; other SDO names are kept
// as text attributes so no information is dropped silently.
func FromSTIX(b *stix.Bundle, now time.Time) (*Event, error) {
	if len(b.Objects) == 0 {
		return nil, fmt.Errorf("misp: empty bundle")
	}
	info := "Imported STIX bundle " + b.ID
	if name := firstName(b); name != "" {
		info = name
	}
	e := NewEvent(info, now)
	for _, obj := range b.Objects {
		c := obj.GetCommon()
		at := c.Modified.Time
		if at.IsZero() {
			at = now
		}
		switch o := obj.(type) {
		case *stix.Vulnerability:
			a := e.AddAttribute("vulnerability", "External analysis", o.Name, at)
			a.Comment = o.Description
			if vec, ok := o.ExtraString("x_caisp_cvss_vector"); ok {
				e.AddAttribute("cvss-vector", "External analysis", vec, at)
			}
		case *stix.Indicator:
			typ, value, ok := patternToAttribute(o.Pattern)
			if !ok {
				a := e.AddAttribute("stix2-pattern", "Network activity", o.Pattern, at)
				a.Comment = o.Description
				continue
			}
			a := e.AddAttribute(typ, categoryForType(typ), value, at)
			a.Comment = o.Description
		case *stix.Malware:
			e.AddTag(tagMalware)
			e.AddAttribute("malware-type", "Payload delivery", o.Name, at)
		case *stix.AttackPattern:
			e.AddTag(tagAttackPattern)
			e.AddAttribute("text", "Attribution", o.Name, at)
		case *stix.Tool:
			e.AddTag(tagTool)
			e.AddAttribute("text", "Attribution", o.Name, at)
		case *stix.Identity:
			if e.Orgc == nil {
				e.Orgc = &Org{UUID: idUUID(o.ID), Name: o.Name}
			}
		case *stix.Relationship, *stix.Sighting:
			// Structural objects carry no attribute payload.
		default:
			name := firstNameOf(obj)
			if name != "" {
				e.AddAttribute("text", "Other", name, at)
			}
		}
		for _, l := range c.Labels {
			e.AddTag("caisp:label=\"" + l + "\"")
		}
	}
	if len(e.Attributes) == 0 {
		return nil, fmt.Errorf("misp: bundle %s yields no attributes", b.ID)
	}
	return e, nil
}

// patternToAttribute recognises single-equality patterns of the form
// [path = 'value'] and maps them back to a MISP attribute type.
func patternToAttribute(pattern string) (typ, value string, ok bool) {
	s := strings.TrimSpace(pattern)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return "", "", false
	}
	s = strings.TrimSpace(s[1 : len(s)-1])
	path, rest, found := strings.Cut(s, "=")
	if !found || strings.ContainsAny(path, "<>!") {
		return "", "", false
	}
	path = strings.TrimSpace(path)
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "'") || !strings.HasSuffix(rest, "'") || strings.Contains(rest[1:len(rest)-1], "'") {
		return "", "", false
	}
	value = strings.ReplaceAll(rest[1:len(rest)-1], `\\`, `\`)
	for attrType, p := range attributePatternPaths {
		if p == path {
			// Prefer the canonical type for paths shared by several MISP
			// types (ip-src/ip-dst → ip-dst, domain/hostname → domain).
			switch path {
			case "ipv4-addr:value":
				return "ip-dst", value, true
			case "domain-name:value":
				return "domain", value, true
			case "email-addr:value":
				return "email-dst", value, true
			}
			return attrType, value, true
		}
	}
	return "", "", false
}

func categoryForType(typ string) string {
	switch typ {
	case "md5", "sha1", "sha256", "sha512", "filename":
		return "Payload delivery"
	case "vulnerability":
		return "External analysis"
	default:
		return "Network activity"
	}
}

func decorate(obj stix.Object, e *Event, labels []string) {
	c := obj.GetCommon()
	if len(labels) > 0 && len(c.Labels) == 0 {
		c.Labels = labels
	}
	c.SetExtra("x_misp_event_uuid", e.UUID)
	if _, ok := c.ExtraString("x_caisp_source_type"); !ok {
		// Events flowing through the TIP originate from OSINT collection
		// unless explicitly marked otherwise.
		c.SetExtra("x_caisp_source_type", "osint")
	}
}

func tagLabels(tags []Tag) []string {
	var out []string
	for _, t := range tags {
		if strings.HasPrefix(t.Name, "caisp:label=") {
			out = append(out, strings.Trim(strings.TrimPrefix(t.Name, "caisp:label="), `"`))
			continue
		}
		if !strings.HasPrefix(t.Name, "caisp:") {
			out = append(out, t.Name)
		}
	}
	return out
}

func orDefault(labels []string, fallback string) []string {
	if len(labels) > 0 {
		return labels
	}
	return []string{fallback}
}

func lastVulnerability(b *stix.Bundle) *stix.Vulnerability {
	for i := len(b.Objects) - 1; i >= 0; i-- {
		if v, ok := b.Objects[i].(*stix.Vulnerability); ok {
			return v
		}
	}
	return nil
}

func firstName(b *stix.Bundle) string {
	for _, obj := range b.Objects {
		if name := firstNameOf(obj); name != "" {
			return name
		}
	}
	return ""
}

func firstNameOf(obj stix.Object) string {
	switch o := obj.(type) {
	case *stix.Vulnerability:
		return o.Name
	case *stix.Malware:
		return o.Name
	case *stix.AttackPattern:
		return o.Name
	case *stix.Tool:
		return o.Name
	case *stix.Campaign:
		return o.Name
	case *stix.ThreatActor:
		return o.Name
	case *stix.Indicator:
		return o.Name
	default:
		return ""
	}
}

func idUUID(id string) string {
	_, u, err := stix.ParseID(id)
	if err != nil {
		return ""
	}
	return u.String()
}

// refSourceFromURL guesses the reference source name from well-known hosts.
func refSourceFromURL(rawURL string) string {
	lower := strings.ToLower(rawURL)
	for _, known := range []string{"capec", "cve", "nvd", "cwe", "exploit-db"} {
		if strings.Contains(lower, known) {
			return known
		}
	}
	if u, err := url.Parse(rawURL); err == nil && u.Host != "" {
		return u.Host
	}
	return "link"
}

func escapePatternLiteral(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, `'`, `\'`)
}
