package misp

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func cloneFixture() *Event {
	now := time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)
	e := NewEvent("clone fixture", now)
	e.Orgc = &Org{UUID: "9d1a9f30-9a4a-4a8e-b360-7f7a1ce7cbb1", Name: "caisp"}
	a := e.AddAttribute("domain", "Network activity", "evil.example", now)
	a.Tags = []Tag{{Name: "tlp:amber", Colour: "#ffbf00"}}
	e.AddAttribute("ip-dst", "Network activity", "203.0.113.7", now)
	o := e.AddObject("vulnerability", "vulnerability")
	o.AddAttribute("vulnerability", "External analysis", "CVE-2017-9805", now)
	e.AddTag("caisp:cioc")
	return e
}

func TestCloneIsDeep(t *testing.T) {
	orig := cloneFixture()
	cp := orig.Clone()
	if !reflect.DeepEqual(orig, cp) {
		t.Fatalf("clone differs from original:\n%+v\n%+v", orig, cp)
	}
	// Mutating every nested level of the copy must leave the original alone.
	cp.Info = "mutated"
	cp.Orgc.Name = "mutated"
	cp.Attributes[0].Value = "mutated.example"
	cp.Attributes[0].Tags[0].Name = "tlp:red"
	cp.Objects[0].Attributes[0].Value = "CVE-0000-0000"
	cp.Tags[0].Name = "mutated"
	if orig.Info != "clone fixture" || orig.Orgc.Name != "caisp" {
		t.Fatalf("original scalar mutated: %+v", orig)
	}
	if orig.Attributes[0].Value != "evil.example" || orig.Attributes[0].Tags[0].Name != "tlp:amber" {
		t.Fatalf("original attribute mutated: %+v", orig.Attributes[0])
	}
	if orig.Objects[0].Attributes[0].Value != "CVE-2017-9805" {
		t.Fatalf("original object attribute mutated: %+v", orig.Objects[0])
	}
	if orig.Tags[0].Name != "caisp:cioc" {
		t.Fatalf("original tag mutated: %+v", orig.Tags)
	}
}

func TestCloneMatchesJSONRoundTrip(t *testing.T) {
	orig := cloneFixture()
	cp := orig.Clone()
	want, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("wire forms differ:\n%s\n%s", want, got)
	}
}

func TestCloneNilAndEmpty(t *testing.T) {
	var nilEvent *Event
	if nilEvent.Clone() != nil {
		t.Fatal("nil clone not nil")
	}
	e := &Event{UUID: "x"}
	cp := e.Clone()
	if cp.Attributes != nil || cp.Objects != nil || cp.Tags != nil || cp.Orgc != nil {
		t.Fatalf("empty slices materialized: %+v", cp)
	}
}
