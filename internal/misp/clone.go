package misp

// Clone returns a deep copy of the event. It replaces the JSON
// marshal/unmarshal round trip the event store used for isolation: a
// hand-written copy allocates an order of magnitude less and keeps
// sub-second timestamp precision that the MISP wire encoding would
// truncate. Under the store's snapshot-isolated read path (DESIGN.md §8)
// Clone runs only on the write side (Put/PutBatch freeze a private copy)
// and in storage.GetClone for callers that mutate; plain reads share the
// frozen revision and never copy.
func (e *Event) Clone() *Event {
	if e == nil {
		return nil
	}
	cp := *e
	if e.Orgc != nil {
		org := *e.Orgc
		cp.Orgc = &org
	}
	cp.Attributes = cloneAttributes(e.Attributes)
	cp.Tags = cloneTags(e.Tags)
	if e.Objects != nil {
		cp.Objects = make([]Object, len(e.Objects))
		for i := range e.Objects {
			cp.Objects[i] = e.Objects[i]
			cp.Objects[i].Attributes = cloneAttributes(e.Objects[i].Attributes)
		}
	}
	return &cp
}

func cloneAttributes(attrs []Attribute) []Attribute {
	if attrs == nil {
		return nil
	}
	out := make([]Attribute, len(attrs))
	copy(out, attrs)
	for i := range out {
		out[i].Tags = cloneTags(attrs[i].Tags)
	}
	return out
}

func cloneTags(tags []Tag) []Tag {
	if tags == nil {
		return nil
	}
	out := make([]Tag, len(tags))
	copy(out, tags)
	return out
}
