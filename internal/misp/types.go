// Package misp implements the MISP core format: events, attributes, objects
// and tags, together with conversion to and from STIX 2.0. The operational
// module of the platform stores every composed IoC as a MISP event (the
// paper relies on a MISP instance for storage and sharing) and converts it
// to STIX 2.0 for the heuristic analysis.
package misp

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/caisplatform/caisp/internal/uuid"
)

// Threat levels as defined by MISP.
const (
	ThreatLevelHigh      = 1
	ThreatLevelMedium    = 2
	ThreatLevelLow       = 3
	ThreatLevelUndefined = 4
)

// Analysis states as defined by MISP.
const (
	AnalysisInitial  = 0
	AnalysisOngoing  = 1
	AnalysisComplete = 2
)

// Distribution levels as defined by MISP.
const (
	DistributionOrganisation = 0
	DistributionCommunity    = 1
	DistributionConnected    = 2
	DistributionAll          = 3
)

// Event is a MISP event: the unit of storage and sharing. JSON field names
// follow the MISP core format (UpperCamel for nested entities, snake_case
// for scalars).
type Event struct {
	UUID          string      `json:"uuid"`
	Info          string      `json:"info"`
	Date          string      `json:"date"` // YYYY-MM-DD
	ThreatLevelID int         `json:"threat_level_id"`
	Analysis      int         `json:"analysis"`
	Distribution  int         `json:"distribution"`
	Published     bool        `json:"published"`
	Timestamp     UnixTime    `json:"timestamp"`
	Orgc          *Org        `json:"Orgc,omitempty"`
	Attributes    []Attribute `json:"Attribute,omitempty"`
	Objects       []Object    `json:"Object,omitempty"`
	Tags          []Tag       `json:"Tag,omitempty"`
}

// Org identifies the organisation that created an event.
type Org struct {
	UUID string `json:"uuid"`
	Name string `json:"name"`
}

// Attribute is a single datum of an event (an IoC value, a CVE id, …).
type Attribute struct {
	UUID      string   `json:"uuid"`
	Type      string   `json:"type"`
	Category  string   `json:"category"`
	Value     string   `json:"value"`
	Comment   string   `json:"comment,omitempty"`
	ToIDS     bool     `json:"to_ids"`
	Timestamp UnixTime `json:"timestamp"`
	Tags      []Tag    `json:"Tag,omitempty"`
}

// Object groups attributes under a template (e.g. "vulnerability", "file").
type Object struct {
	UUID         string      `json:"uuid"`
	Name         string      `json:"name"`
	MetaCategory string      `json:"meta-category,omitempty"`
	Description  string      `json:"description,omitempty"`
	Attributes   []Attribute `json:"Attribute,omitempty"`
}

// Tag labels an event or attribute.
type Tag struct {
	Name   string `json:"name"`
	Colour string `json:"colour,omitempty"`
}

// UnixTime is MISP's string-encoded Unix timestamp.
type UnixTime struct {
	time.Time
}

// UT wraps a time.Time as a MISP timestamp.
func UT(t time.Time) UnixTime { return UnixTime{t.UTC()} }

// MarshalJSON encodes the timestamp as a decimal string, MISP style.
func (t UnixTime) MarshalJSON() ([]byte, error) {
	if t.IsZero() {
		return []byte(`"0"`), nil
	}
	return []byte(`"` + strconv.FormatInt(t.Unix(), 10) + `"`), nil
}

// UnmarshalJSON accepts both string-encoded and bare integer timestamps.
func (t *UnixTime) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	if s == "" || s == "0" || s == "null" {
		t.Time = time.Time{}
		return nil
	}
	secs, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("misp: bad timestamp %q: %w", s, err)
	}
	t.Time = time.Unix(secs, 0).UTC()
	return nil
}

// NewEvent builds an empty event stamped at now.
func NewEvent(info string, now time.Time) *Event {
	return &Event{
		UUID:          uuid.NewV4().String(),
		Info:          info,
		Date:          now.UTC().Format("2006-01-02"),
		ThreatLevelID: ThreatLevelUndefined,
		Analysis:      AnalysisInitial,
		Distribution:  DistributionCommunity,
		Timestamp:     UT(now),
	}
}

// AddAttribute appends a new attribute and returns a pointer to it.
func (e *Event) AddAttribute(typ, category, value string, now time.Time) *Attribute {
	e.Attributes = append(e.Attributes, Attribute{
		UUID:      uuid.NewV4().String(),
		Type:      typ,
		Category:  category,
		Value:     value,
		ToIDS:     defaultToIDS(typ),
		Timestamp: UT(now),
	})
	return &e.Attributes[len(e.Attributes)-1]
}

// AddObject appends a template-grouped object to the event and returns a
// pointer to it for attribute population.
func (e *Event) AddObject(name, metaCategory string) *Object {
	e.Objects = append(e.Objects, Object{
		UUID:         uuid.NewV4().String(),
		Name:         name,
		MetaCategory: metaCategory,
	})
	return &e.Objects[len(e.Objects)-1]
}

// AddAttribute appends an attribute to the object and returns a pointer to
// it.
func (o *Object) AddAttribute(typ, category, value string, now time.Time) *Attribute {
	o.Attributes = append(o.Attributes, Attribute{
		UUID:      uuid.NewV4().String(),
		Type:      typ,
		Category:  category,
		Value:     value,
		ToIDS:     defaultToIDS(typ),
		Timestamp: UT(now),
	})
	return &o.Attributes[len(o.Attributes)-1]
}

// FindAttribute returns the object's first attribute of the given type, or
// nil.
func (o *Object) FindAttribute(typ string) *Attribute {
	for i := range o.Attributes {
		if o.Attributes[i].Type == typ {
			return &o.Attributes[i]
		}
	}
	return nil
}

// AddTag appends a tag to the event if not already present.
func (e *Event) AddTag(name string) {
	for _, t := range e.Tags {
		if t.Name == name {
			return
		}
	}
	e.Tags = append(e.Tags, Tag{Name: name})
}

// HasTag reports whether the event carries the named tag.
func (e *Event) HasTag(name string) bool {
	for _, t := range e.Tags {
		if t.Name == name {
			return true
		}
	}
	return false
}

// FindAttribute returns the first attribute of the given type, or nil.
func (e *Event) FindAttribute(typ string) *Attribute {
	for i := range e.Attributes {
		if e.Attributes[i].Type == typ {
			return &e.Attributes[i]
		}
	}
	return nil
}

// AttributeValues returns all values of attributes of the given type.
func (e *Event) AttributeValues(typ string) []string {
	var out []string
	for _, a := range e.Attributes {
		if a.Type == typ {
			out = append(out, a.Value)
		}
	}
	return out
}

// Validate checks structural invariants of the event.
func (e *Event) Validate() error {
	if !uuid.IsValid(e.UUID) {
		return fmt.Errorf("misp: event has invalid uuid %q", e.UUID)
	}
	if e.Info == "" {
		return fmt.Errorf("misp: event %s has empty info", e.UUID)
	}
	if _, err := time.Parse("2006-01-02", e.Date); err != nil {
		return fmt.Errorf("misp: event %s has bad date %q", e.UUID, e.Date)
	}
	if e.ThreatLevelID < ThreatLevelHigh || e.ThreatLevelID > ThreatLevelUndefined {
		return fmt.Errorf("misp: event %s has bad threat_level_id %d", e.UUID, e.ThreatLevelID)
	}
	if e.Analysis < AnalysisInitial || e.Analysis > AnalysisComplete {
		return fmt.Errorf("misp: event %s has bad analysis %d", e.UUID, e.Analysis)
	}
	for _, a := range e.Attributes {
		if err := validateAttribute(&a, e.UUID); err != nil {
			return err
		}
	}
	for _, o := range e.Objects {
		if !uuid.IsValid(o.UUID) {
			return fmt.Errorf("misp: object of event %s has invalid uuid %q", e.UUID, o.UUID)
		}
		if o.Name == "" {
			return fmt.Errorf("misp: object %s has empty name", o.UUID)
		}
		for _, a := range o.Attributes {
			if err := validateAttribute(&a, e.UUID); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateAttribute(a *Attribute, eventUUID string) error {
	if !uuid.IsValid(a.UUID) {
		return fmt.Errorf("misp: attribute of event %s has invalid uuid %q", eventUUID, a.UUID)
	}
	if a.Type == "" || a.Value == "" {
		return fmt.Errorf("misp: attribute %s has empty type or value", a.UUID)
	}
	return nil
}

// Wrapped is the network framing used by MISP APIs: {"Event": {...}}.
type Wrapped struct {
	Event *Event `json:"Event"`
}

// MarshalWrapped encodes the event inside the {"Event": …} envelope.
func MarshalWrapped(e *Event) ([]byte, error) {
	return json.Marshal(Wrapped{Event: e})
}

// UnmarshalWrapped decodes an event from either the wrapped or the bare form.
func UnmarshalWrapped(data []byte) (*Event, error) {
	var w Wrapped
	if err := json.Unmarshal(data, &w); err == nil && w.Event != nil {
		return w.Event, nil
	}
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("misp: decode event: %w", err)
	}
	if e.UUID == "" {
		return nil, fmt.Errorf("misp: decoded event has no uuid")
	}
	return &e, nil
}

// defaultToIDS mirrors MISP's defaults: detection-grade network indicators
// default to exportable, free-text context does not.
func defaultToIDS(typ string) bool {
	switch typ {
	case "ip-src", "ip-dst", "domain", "hostname", "url", "md5", "sha1",
		"sha256", "sha512", "filename", "email-src", "email-dst":
		return true
	default:
		return false
	}
}
