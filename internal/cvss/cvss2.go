package cvss

import (
	"fmt"
	"math"
	"strings"
)

// V2 holds the six base metrics of a CVSS v2.0 vector.
type V2 struct {
	AccessVector     string // L, A, N
	AccessComplexity string // H, M, L
	Authentication   string // M, S, N
	Confidentiality  string // N, P, C
	Integrity        string // N, P, C
	Availability     string // N, P, C
}

// ParseV2 parses a CVSS v2 vector such as "AV:N/AC:L/Au:N/C:P/I:P/A:P",
// with or without a surrounding "CVSS2#" or parenthesised form.
func ParseV2(vector string) (V2, error) {
	s := strings.TrimPrefix(vector, "CVSS2#")
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	var v V2
	seen := make(map[string]bool, 6)
	for _, part := range strings.Split(s, "/") {
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return V2{}, fmt.Errorf("cvss: malformed metric %q in %q", part, vector)
		}
		if seen[name] {
			return V2{}, fmt.Errorf("cvss: duplicate metric %q in %q", name, vector)
		}
		seen[name] = true
		switch name {
		case "AV":
			if !oneOf(val, "L", "A", "N") {
				return V2{}, badValue(name, val, vector)
			}
			v.AccessVector = val
		case "AC":
			if !oneOf(val, "H", "M", "L") {
				return V2{}, badValue(name, val, vector)
			}
			v.AccessComplexity = val
		case "Au":
			if !oneOf(val, "M", "S", "N") {
				return V2{}, badValue(name, val, vector)
			}
			v.Authentication = val
		case "C":
			if !oneOf(val, "N", "P", "C") {
				return V2{}, badValue(name, val, vector)
			}
			v.Confidentiality = val
		case "I":
			if !oneOf(val, "N", "P", "C") {
				return V2{}, badValue(name, val, vector)
			}
			v.Integrity = val
		case "A":
			if !oneOf(val, "N", "P", "C") {
				return V2{}, badValue(name, val, vector)
			}
			v.Availability = val
		default:
			// Ignore temporal/environmental metrics.
		}
	}
	for _, m := range []struct{ name, val string }{
		{"AV", v.AccessVector}, {"AC", v.AccessComplexity},
		{"Au", v.Authentication}, {"C", v.Confidentiality},
		{"I", v.Integrity}, {"A", v.Availability},
	} {
		if m.val == "" {
			return V2{}, fmt.Errorf("cvss: missing base metric %s in %q", m.name, vector)
		}
	}
	return v, nil
}

// BaseScore computes the CVSS v2.0 base score (0.0–10.0, one decimal).
func (v V2) BaseScore() float64 {
	impact := 10.41 * (1 - (1-cia2(v.Confidentiality))*(1-cia2(v.Integrity))*(1-cia2(v.Availability)))
	exploitability := 20 * v.avWeight() * v.acWeight() * v.auWeight()
	fImpact := 1.176
	if impact == 0 {
		fImpact = 0
	}
	score := (0.6*impact + 0.4*exploitability - 1.5) * fImpact
	return math.Round(score*10) / 10
}

// Severity returns the conventional v2 severity band
// (low <4.0, medium <7.0, high ≥7.0).
func (v V2) Severity() Severity {
	score := v.BaseScore()
	switch {
	case score < 4.0:
		return SeverityLow
	case score < 7.0:
		return SeverityMedium
	default:
		return SeverityHigh
	}
}

// String reconstructs the canonical v2 base vector.
func (v V2) String() string {
	return fmt.Sprintf("AV:%s/AC:%s/Au:%s/C:%s/I:%s/A:%s",
		v.AccessVector, v.AccessComplexity, v.Authentication,
		v.Confidentiality, v.Integrity, v.Availability)
}

func (v V2) avWeight() float64 {
	switch v.AccessVector {
	case "L":
		return 0.395
	case "A":
		return 0.646
	default: // N
		return 1.0
	}
}

func (v V2) acWeight() float64 {
	switch v.AccessComplexity {
	case "H":
		return 0.35
	case "M":
		return 0.61
	default: // L
		return 0.71
	}
}

func (v V2) auWeight() float64 {
	switch v.Authentication {
	case "M":
		return 0.45
	case "S":
		return 0.56
	default: // N
		return 0.704
	}
}

func cia2(val string) float64 {
	switch val {
	case "P":
		return 0.275
	case "C":
		return 0.660
	default: // N
		return 0
	}
}
