package cvss

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseV3KnownScores(t *testing.T) {
	tests := []struct {
		give     string
		want     float64
		wantBand Severity
	}{
		// CVE-2017-9805 (Apache Struts RCE) — the paper's §IV use case,
		// assessed high with CVSS v3.0 = 8.1.
		{give: "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", want: 8.1, wantBand: SeverityHigh},
		// Heartbleed-style info leak.
		{give: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", want: 7.5, wantBand: SeverityHigh},
		// Full critical (e.g. EternalBlue banding).
		{give: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", want: 9.8, wantBand: SeverityCritical},
		// Scope changed critical (e.g. Spectre-class escape to host).
		{give: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", want: 10.0, wantBand: SeverityCritical},
		// Low-impact local vector.
		{give: "CVSS:3.1/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", want: 1.8, wantBand: SeverityLow},
		// Zero impact → zero score.
		{give: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", want: 0.0, wantBand: SeverityNone},
		// Scope-changed with privileges required (PR weight shifts).
		{give: "CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H", want: 9.9, wantBand: SeverityCritical},
		// Medium band.
		{give: "CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:L/I:L/A:N", want: 5.4, wantBand: SeverityMedium},
		// Physical access vector.
		{give: "CVSS:3.1/AV:P/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", want: 6.8, wantBand: SeverityMedium},
		// User interaction required XSS-like with scope change.
		{give: "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", want: 6.1, wantBand: SeverityMedium},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			v, err := ParseV3(tt.give)
			if err != nil {
				t.Fatalf("ParseV3: %v", err)
			}
			if got := v.BaseScore(); got != tt.want {
				t.Errorf("BaseScore() = %.1f, want %.1f", got, tt.want)
			}
			if got := v.Severity(); got != tt.wantBand {
				t.Errorf("Severity() = %v, want %v", got, tt.wantBand)
			}
		})
	}
}

func TestParseV3Errors(t *testing.T) {
	tests := []string{
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H",         // missing A
		"CVSS:3.1/AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",     // bad AV
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/A:H", // duplicate
		"CVSS:3.1/AVN/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",      // malformed pair
		"",
	}
	for _, give := range tests {
		if _, err := ParseV3(give); err == nil {
			t.Errorf("ParseV3(%q) succeeded, want error", give)
		}
	}
}

func TestParseV3RoundTrip(t *testing.T) {
	const give = "CVSS:3.1/AV:A/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:N"
	v, err := ParseV3(give)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != give {
		t.Fatalf("String() = %q, want %q", v.String(), give)
	}
	back, err := ParseV3(v.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != v {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, v)
	}
}

func TestParseV2KnownScores(t *testing.T) {
	tests := []struct {
		give string
		want float64
	}{
		// CVE-2002-0392-style full network compromise.
		{give: "AV:N/AC:L/Au:N/C:C/I:C/A:C", want: 10.0},
		// Classic partial-impact remote (many web CVEs).
		{give: "AV:N/AC:L/Au:N/C:P/I:P/A:P", want: 7.5},
		// Local low-complexity info leak.
		{give: "AV:L/AC:L/Au:N/C:P/I:N/A:N", want: 2.1},
		// No impact.
		{give: "AV:N/AC:L/Au:N/C:N/I:N/A:N", want: 0.0},
		// With CVSS2# prefix.
		{give: "CVSS2#AV:N/AC:M/Au:N/C:P/I:N/A:N", want: 4.3},
		// Parenthesised NVD style.
		{give: "(AV:N/AC:L/Au:S/C:P/I:P/A:P)", want: 6.5},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			v, err := ParseV2(tt.give)
			if err != nil {
				t.Fatalf("ParseV2: %v", err)
			}
			if got := v.BaseScore(); got != tt.want {
				t.Errorf("BaseScore() = %.1f, want %.1f", got, tt.want)
			}
		})
	}
}

func TestParseV2Errors(t *testing.T) {
	tests := []string{
		"AV:N/AC:L/Au:N/C:C/I:C",          // missing A
		"AV:Q/AC:L/Au:N/C:C/I:C/A:C",      // bad AV
		"AV:N/AV:N/AC:L/Au:N/C:C/I:C/A:C", // duplicate
		"",
	}
	for _, give := range tests {
		if _, err := ParseV2(give); err == nil {
			t.Errorf("ParseV2(%q) succeeded, want error", give)
		}
	}
}

func TestRateBands(t *testing.T) {
	tests := []struct {
		score float64
		want  Severity
	}{
		{0, SeverityNone},
		{0.1, SeverityLow},
		{3.9, SeverityLow},
		{4.0, SeverityMedium},
		{6.9, SeverityMedium},
		{7.0, SeverityHigh},
		{8.9, SeverityHigh},
		{9.0, SeverityCritical},
		{10.0, SeverityCritical},
	}
	for _, tt := range tests {
		if got := Rate(tt.score); got != tt.want {
			t.Errorf("Rate(%.1f) = %v, want %v", tt.score, got, tt.want)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityCritical.String() != "critical" || SeverityNone.String() != "none" {
		t.Fatal("unexpected severity names")
	}
	if Severity(99).String() != "Severity(99)" {
		t.Fatalf("unknown severity formatting = %q", Severity(99).String())
	}
}

// randomV3 builds an arbitrary but valid v3 metric set from a random source.
func randomV3(r *rand.Rand) V3 {
	pick := func(opts ...string) string { return opts[r.Intn(len(opts))] }
	return V3{
		AttackVector:       pick("N", "A", "L", "P"),
		AttackComplexity:   pick("L", "H"),
		PrivilegesRequired: pick("N", "L", "H"),
		UserInteraction:    pick("N", "R"),
		Scope:              pick("U", "C"),
		Confidentiality:    pick("H", "L", "N"),
		Integrity:          pick("H", "L", "N"),
		Availability:       pick("H", "L", "N"),
	}
}

func TestV3ScoreBoundsQuick(t *testing.T) {
	cfg := &quick.Config{
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomV3(r))
		},
	}
	f := func(v V3) bool {
		s := v.BaseScore()
		if s < 0 || s > 10 {
			return false
		}
		// Parse(String()) must reproduce the metrics and the score.
		back, err := ParseV3(v.String())
		return err == nil && back == v && back.BaseScore() == s
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestV2ScoreBoundsQuick(t *testing.T) {
	cfg := &quick.Config{
		Values: func(args []reflect.Value, r *rand.Rand) {
			pick := func(opts ...string) string { return opts[r.Intn(len(opts))] }
			args[0] = reflect.ValueOf(V2{
				AccessVector:     pick("L", "A", "N"),
				AccessComplexity: pick("H", "M", "L"),
				Authentication:   pick("M", "S", "N"),
				Confidentiality:  pick("N", "P", "C"),
				Integrity:        pick("N", "P", "C"),
				Availability:     pick("N", "P", "C"),
			})
		},
	}
	f := func(v V2) bool {
		s := v.BaseScore()
		if s < 0 || s > 10 {
			return false
		}
		back, err := ParseV2(v.String())
		return err == nil && back == v
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
