// Package cvss implements parsing and base-score computation for the Common
// Vulnerability Scoring System, versions 3.x and 2.0. The heuristic engine
// uses CVSS severity bands to score the `cve` feature of vulnerability IoCs
// (Table IV of the paper) without any network dependency on NVD.
package cvss

import (
	"fmt"
	"math"
	"strings"
)

// Severity is a qualitative severity rating band.
type Severity int

// Severity bands as defined by the CVSS v3.x specification (and the
// conventional banding applied to v2 scores).
const (
	SeverityNone Severity = iota + 1
	SeverityLow
	SeverityMedium
	SeverityHigh
	SeverityCritical
)

// String returns the lower-case band name.
func (s Severity) String() string {
	switch s {
	case SeverityNone:
		return "none"
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Rate maps a CVSS v3.x base score to its qualitative severity band.
func Rate(score float64) Severity {
	switch {
	case score <= 0:
		return SeverityNone
	case score < 4.0:
		return SeverityLow
	case score < 7.0:
		return SeverityMedium
	case score < 9.0:
		return SeverityHigh
	default:
		return SeverityCritical
	}
}

// V3 holds the eight base metrics of a CVSS v3.x vector.
type V3 struct {
	AttackVector       string // N, A, L, P
	AttackComplexity   string // L, H
	PrivilegesRequired string // N, L, H
	UserInteraction    string // N, R
	Scope              string // U, C
	Confidentiality    string // H, L, N
	Integrity          string // H, L, N
	Availability       string // H, L, N
}

// ParseV3 parses a CVSS v3.0 or v3.1 vector string such as
// "CVSS:3.0/AV:N/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H". The "CVSS:3.x/" prefix is
// optional. All eight base metrics must be present.
func ParseV3(vector string) (V3, error) {
	var v V3
	s := vector
	if rest, ok := strings.CutPrefix(s, "CVSS:3.0/"); ok {
		s = rest
	} else if rest, ok := strings.CutPrefix(s, "CVSS:3.1/"); ok {
		s = rest
	}
	seen := make(map[string]bool, 8)
	for _, part := range strings.Split(s, "/") {
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return V3{}, fmt.Errorf("cvss: malformed metric %q in %q", part, vector)
		}
		if seen[name] {
			return V3{}, fmt.Errorf("cvss: duplicate metric %q in %q", name, vector)
		}
		seen[name] = true
		switch name {
		case "AV":
			if !oneOf(val, "N", "A", "L", "P") {
				return V3{}, badValue(name, val, vector)
			}
			v.AttackVector = val
		case "AC":
			if !oneOf(val, "L", "H") {
				return V3{}, badValue(name, val, vector)
			}
			v.AttackComplexity = val
		case "PR":
			if !oneOf(val, "N", "L", "H") {
				return V3{}, badValue(name, val, vector)
			}
			v.PrivilegesRequired = val
		case "UI":
			if !oneOf(val, "N", "R") {
				return V3{}, badValue(name, val, vector)
			}
			v.UserInteraction = val
		case "S":
			if !oneOf(val, "U", "C") {
				return V3{}, badValue(name, val, vector)
			}
			v.Scope = val
		case "C":
			if !oneOf(val, "H", "L", "N") {
				return V3{}, badValue(name, val, vector)
			}
			v.Confidentiality = val
		case "I":
			if !oneOf(val, "H", "L", "N") {
				return V3{}, badValue(name, val, vector)
			}
			v.Integrity = val
		case "A":
			if !oneOf(val, "H", "L", "N") {
				return V3{}, badValue(name, val, vector)
			}
			v.Availability = val
		default:
			// Temporal and environmental metrics are accepted and ignored;
			// only the base score is needed by the heuristics.
		}
	}
	for _, m := range []struct {
		name string
		val  string
	}{
		{"AV", v.AttackVector}, {"AC", v.AttackComplexity},
		{"PR", v.PrivilegesRequired}, {"UI", v.UserInteraction},
		{"S", v.Scope}, {"C", v.Confidentiality},
		{"I", v.Integrity}, {"A", v.Availability},
	} {
		if m.val == "" {
			return V3{}, fmt.Errorf("cvss: missing base metric %s in %q", m.name, vector)
		}
	}
	return v, nil
}

// BaseScore computes the CVSS v3.1 base score (0.0–10.0, one decimal).
func (v V3) BaseScore() float64 {
	iss := 1 - (1-cia(v.Confidentiality))*(1-cia(v.Integrity))*(1-cia(v.Availability))
	var impact float64
	if v.Scope == "C" {
		impact = 7.52*(iss-0.029) - 3.25*math.Pow(iss-0.02, 15)
	} else {
		impact = 6.42 * iss
	}
	exploitability := 8.22 * v.avWeight() * v.acWeight() * v.prWeight() * v.uiWeight()
	if impact <= 0 {
		return 0
	}
	var score float64
	if v.Scope == "C" {
		score = math.Min(1.08*(impact+exploitability), 10)
	} else {
		score = math.Min(impact+exploitability, 10)
	}
	return roundUp1(score)
}

// Severity returns the qualitative band of the base score.
func (v V3) Severity() Severity { return Rate(v.BaseScore()) }

// String reconstructs the canonical v3.1 base vector.
func (v V3) String() string {
	return fmt.Sprintf("CVSS:3.1/AV:%s/AC:%s/PR:%s/UI:%s/S:%s/C:%s/I:%s/A:%s",
		v.AttackVector, v.AttackComplexity, v.PrivilegesRequired,
		v.UserInteraction, v.Scope, v.Confidentiality, v.Integrity,
		v.Availability)
}

func (v V3) avWeight() float64 {
	switch v.AttackVector {
	case "N":
		return 0.85
	case "A":
		return 0.62
	case "L":
		return 0.55
	default: // P
		return 0.2
	}
}

func (v V3) acWeight() float64 {
	if v.AttackComplexity == "L" {
		return 0.77
	}
	return 0.44
}

func (v V3) prWeight() float64 {
	switch v.PrivilegesRequired {
	case "N":
		return 0.85
	case "L":
		if v.Scope == "C" {
			return 0.68
		}
		return 0.62
	default: // H
		if v.Scope == "C" {
			return 0.5
		}
		return 0.27
	}
}

func (v V3) uiWeight() float64 {
	if v.UserInteraction == "N" {
		return 0.85
	}
	return 0.62
}

func cia(val string) float64 {
	switch val {
	case "H":
		return 0.56
	case "L":
		return 0.22
	default: // N
		return 0
	}
}

// roundUp1 implements the CVSS v3.1 "Roundup" function: the smallest number,
// specified to one decimal place, that is equal to or higher than its input.
func roundUp1(x float64) float64 {
	i := int(math.Round(x * 100000))
	if i%10000 == 0 {
		return float64(i) / 100000
	}
	return (math.Floor(float64(i)/10000) + 1) / 10
}

func oneOf(val string, allowed ...string) bool {
	for _, a := range allowed {
		if val == a {
			return true
		}
	}
	return false
}

func badValue(name, val, vector string) error {
	return fmt.Errorf("cvss: invalid value %q for metric %s in %q", val, name, vector)
}
