package subscribe

// The bench-subs suite: indexed evaluation vs the WithLinearScan ablation
// across pattern-set sizes — the EXPERIMENTS.md §X11 numbers. Pattern
// populations model a SIEM detection estate: mostly point lookups
// (equality/IN, hash-dispatched) with small ordered/LIKE/CIDR tails that
// land in per-path candidate lists.

import (
	"fmt"
	"testing"

	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/stixpattern"
)

// seedPatterns registers n patterns: 88% equality, 8% IN, 2% ordered
// threat-score gates, 1% LIKE, 1% CIDR.
func seedPatterns(b *testing.B, e *Engine, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		var src string
		switch {
		case i%100 < 88:
			src = fmt.Sprintf("[domain-name:value = 'd%d.example']", i)
		case i%100 < 96:
			src = fmt.Sprintf("[ipv4-addr:value IN ('10.%d.%d.1', '10.%d.%d.2')]",
				i/251%251, i%251, i/251%251, i%251)
		case i%100 < 98:
			src = fmt.Sprintf("[x-caisp:threat-score >= 0.%d]", 1+i%9)
		case i%100 < 99:
			src = fmt.Sprintf("[url:value LIKE '%%/kit-%d/%%.bin']", i)
		default:
			src = fmt.Sprintf("[ipv4-addr:value ISSUBSET '192.%d.%d.0/24']", i/251%251, i%251)
		}
		if _, err := e.Register("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchObs builds the event stream: "point" events carry one domain (the
// hash-dispatch fast path, ~10% drawn from the registered value space);
// "mixed" events additionally carry an IP and a threat score, pulling in
// the per-path ordered/CIDR candidate tails.
func benchObs(n int, mixed bool) []stixpattern.Observation {
	out := make([]stixpattern.Observation, 256)
	for i := range out {
		fields := map[string][]string{}
		if i%10 == 0 {
			fields["domain-name:value"] = []string{fmt.Sprintf("d%d.example", (i*37)%max(n, 1))}
		} else {
			fields["domain-name:value"] = []string{fmt.Sprintf("miss%d.example", i)}
		}
		if mixed {
			fields["ipv4-addr:value"] = []string{fmt.Sprintf("10.%d.%d.1", i%251, (i*13)%251)}
			fields["x-caisp:threat-score"] = []string{fmt.Sprintf("0.%d", i%10)}
		}
		out[i] = obsOf(fields)
	}
	return out
}

func benchEvaluate(b *testing.B, n int, linear, mixed bool) {
	opts := []Option{WithMetrics(obs.NewRegistry()), WithMaxPerClient(n + 1)}
	if linear {
		opts = append(opts, WithLinearScan())
	}
	e := NewEngine(opts...)
	defer e.Close()
	seedPatterns(b, e, n)
	stream := benchObs(n, mixed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate(stream[i%len(stream)])
	}
	b.StopTimer()
	if snap := e.EvalSnapshot(); snap.Candidates != nil && snap.Candidates.Count > 0 {
		b.ReportMetric(snap.Candidates.Sum/float64(snap.Candidates.Count), "cands/op")
		b.ReportMetric(float64(snap.Matches)/float64(snap.Evaluated), "matches/op")
	}
}

func BenchmarkSubsIndexed(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("point-%d", n), func(b *testing.B) { benchEvaluate(b, n, false, false) })
	}
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("mixed-%d", n), func(b *testing.B) { benchEvaluate(b, n, false, true) })
	}
}

func BenchmarkSubsLinear(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("point-%d", n), func(b *testing.B) { benchEvaluate(b, n, true, false) })
	}
}

// BenchmarkSubsRegister measures registration cost (parse + decompose +
// index insert) with 10k patterns already standing.
func BenchmarkSubsRegister(b *testing.B) {
	e := NewEngine(WithMaxPerClient(1 << 20))
	defer e.Close()
	seedPatterns(b, e, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := e.Register("bench", fmt.Sprintf("[domain-name:value = 'r%d.example']", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Unsubscribe(sub.ID); err != nil {
			b.Fatal(err)
		}
	}
}
