package subscribe

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPersistRestoresSubscriptionsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subscriptions.json")

	e := NewEngine(WithPersistPath(path))
	s1, err := e.Register("alice", `[domain-name:value = 'evil.example']`)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Register("bob", `[ipv4-addr:value = '10.0.0.1']`)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	// A fresh engine on the same sidecar is the restarted daemon: the
	// standing patterns come back under their original handles.
	e = NewEngine(WithPersistPath(path))
	defer e.Close()
	if e.Len() != 2 {
		t.Fatalf("restored %d subscriptions, want 2", e.Len())
	}
	for _, orig := range []*Subscription{s1, s2} {
		got, ok := e.Get(orig.ID)
		if !ok {
			t.Fatalf("subscription %s not restored", orig.ID)
		}
		if got.Pattern != orig.Pattern || got.ClientID != orig.ClientID {
			t.Fatalf("restored %+v, want %+v", got, orig)
		}
		if !got.CreatedAt.Equal(orig.CreatedAt) {
			t.Fatalf("creation stamp drifted: %s vs %s", got.CreatedAt, orig.CreatedAt)
		}
	}

	// Restored patterns are live, not just listed.
	if n := e.EvaluateMISP(ciocEvent(t), StageCIoC, -1); n != 1 {
		t.Fatalf("restored pattern matched %d times, want 1", n)
	}
}

func TestPersistTracksUnsubscribe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subscriptions.json")
	e := NewEngine(WithPersistPath(path))
	s1, err := e.Register("alice", `[domain-name:value = 'a.example']`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("alice", `[domain-name:value = 'b.example']`); err != nil {
		t.Fatal(err)
	}
	if err := e.Unsubscribe(s1.ID); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e = NewEngine(WithPersistPath(path))
	defer e.Close()
	if e.Len() != 1 {
		t.Fatalf("restored %d subscriptions, want 1 after unsubscribe", e.Len())
	}
	if _, ok := e.Get(s1.ID); ok {
		t.Fatal("unsubscribed pattern came back after restart")
	}
}

func TestPersistToleratesBrokenSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subscriptions.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt sidecar must not brick the daemon: boot empty instead.
	e := NewEngine(WithPersistPath(path))
	defer e.Close()
	if e.Len() != 0 {
		t.Fatalf("engine restored %d subscriptions from garbage", e.Len())
	}
	// And the engine still registers + persists over it.
	if _, err := e.Register("alice", `[domain-name:value = 'a.example']`); err != nil {
		t.Fatal(err)
	}
}

func TestPersistSkipsEntriesOverQuota(t *testing.T) {
	path := filepath.Join(t.TempDir(), "subscriptions.json")
	e := NewEngine(WithPersistPath(path))
	for _, v := range []string{"a", "b", "c"} {
		if _, err := e.Register("alice", `[domain-name:value = '`+v+`.example']`); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	// The restarted daemon enforces a tighter per-client quota: the
	// overflow is skipped with a warning, the rest still load.
	e = NewEngine(WithPersistPath(path), WithMaxPerClient(2))
	defer e.Close()
	if e.Len() != 2 {
		t.Fatalf("restored %d subscriptions under quota 2", e.Len())
	}
}
