package subscribe

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/stixpattern"
	"github.com/caisplatform/caisp/internal/wsock"
)

func obsOf(fields map[string][]string) stixpattern.Observation {
	return stixpattern.Observation{At: time.Unix(1700000000, 0), Fields: fields}
}

func mustRegister(t *testing.T, e *Engine, client, pattern string) *Subscription {
	t.Helper()
	sub, err := e.Register(client, pattern)
	if err != nil {
		t.Fatalf("Register(%q): %v", pattern, err)
	}
	return sub
}

func matchIDs(ms []Match) []string {
	ids := make([]string, len(ms))
	for i, m := range ms {
		ids[i] = m.SubscriptionID
	}
	sort.Strings(ids)
	return ids
}

func TestRegisterEvaluateMatrix(t *testing.T) {
	e := NewEngine()
	defer e.Close()

	eqDomain := mustRegister(t, e, "siem", "[domain-name:value = 'evil.example']")
	inIP := mustRegister(t, e, "siem", "[ipv4-addr:value IN ('10.0.0.1', '10.0.0.2')]")
	cidr := mustRegister(t, e, "soc", "[ipv4-addr:value ISSUBSET '198.51.100.0/24']")
	like := mustRegister(t, e, "soc", "[url:value LIKE '%/payload/%']")
	neg := mustRegister(t, e, "soc", "[domain-name:value NOT = 'ok.example']")
	score := mustRegister(t, e, "soc", "[x-caisp:threat-score >= 0.5]")
	numEq := mustRegister(t, e, "soc", "[x:port = 443]")

	tests := []struct {
		name   string
		fields map[string][]string
		want   []string
	}{
		{"domain eq + negated", map[string][]string{"domain-name:value": {"evil.example"}},
			[]string{eqDomain.ID, neg.ID}},
		{"negated only", map[string][]string{"domain-name:value": {"other.example"}},
			[]string{neg.ID}},
		{"negated misses its excluded value", map[string][]string{"domain-name:value": {"ok.example"}},
			nil},
		{"in hit", map[string][]string{"ipv4-addr:value": {"10.0.0.2"}},
			[]string{inIP.ID}},
		{"cidr hit", map[string][]string{"ipv4-addr:value": {"198.51.100.77"}},
			[]string{cidr.ID}},
		{"cidr miss", map[string][]string{"ipv4-addr:value": {"203.0.113.9"}}, nil},
		{"like hit", map[string][]string{"url:value": {"http://x/payload/a.bin"}},
			[]string{like.ID}},
		{"ordered score hit", map[string][]string{"x-caisp:threat-score": {"0.75"}},
			[]string{score.ID}},
		{"ordered score boundary miss", map[string][]string{"x-caisp:threat-score": {"0.49"}}, nil},
		{"numeric eq canonical form", map[string][]string{"x:port": {"0443.0"}},
			[]string{numEq.ID}},
		{"no fields", map[string][]string{}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := matchIDs(e.Evaluate(obsOf(tt.fields)))
			want := append([]string(nil), tt.want...)
			sort.Strings(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("Evaluate = %v, want %v", got, want)
			}
		})
	}
}

func TestUnsubscribeRemovesFromIndex(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	sub := mustRegister(t, e, "c", "[domain-name:value = 'evil.example']")
	keep := mustRegister(t, e, "c", "[domain-name:value = 'evil.example']")
	o := obsOf(map[string][]string{"domain-name:value": {"evil.example"}})
	if got := len(e.Evaluate(o)); got != 2 {
		t.Fatalf("before unsubscribe: %d matches, want 2", got)
	}
	if err := e.Unsubscribe(sub.ID); err != nil {
		t.Fatal(err)
	}
	if got := matchIDs(e.Evaluate(o)); len(got) != 1 || got[0] != keep.ID {
		t.Fatalf("after unsubscribe: matches %v, want only %s", got, keep.ID)
	}
	if err := e.Unsubscribe(sub.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unsubscribe: %v, want ErrNotFound", err)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
}

func TestRegisterValidation(t *testing.T) {
	e := NewEngine(WithMaxPatternBytes(64), WithMaxPerClient(2))
	defer e.Close()

	// Syntax error carries the parser position.
	_, err := e.Register("c", "[domain-name:value = ]")
	var serr *stixpattern.SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("syntax error = %T (%v), want *SyntaxError", err, err)
	}

	// Oversized patterns are rejected before parsing.
	long := "[domain-name:value = '" + string(make([]byte, 64)) + "']"
	_, err = e.Register("c", long)
	var tooLarge *PatternTooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("oversize error = %T (%v), want *PatternTooLargeError", err, err)
	}

	// The per-client cap yields ClientLimitError; other clients unaffected.
	mustRegister(t, e, "c", "[a:b = 'x']")
	mustRegister(t, e, "c", "[a:b = 'y']")
	_, err = e.Register("c", "[a:b = 'z']")
	var limit *ClientLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("limit error = %T (%v), want *ClientLimitError", err, err)
	}
	mustRegister(t, e, "other", "[a:b = 'z']")
}

// TestIndexedAgreesWithLinear is the soundness property: for random pattern
// populations and observations, the indexed engine returns exactly the
// matches the linear-scan ablation finds.
func TestIndexedAgreesWithLinear(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	indexed := NewEngine()
	linear := NewEngine(WithLinearScan())
	defer indexed.Close()
	defer linear.Close()

	domains := []string{"a.example", "b.example", "c.example", "d.example"}
	patterns := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		switch r.Intn(6) {
		case 0:
			patterns = append(patterns, fmt.Sprintf("[domain-name:value = '%s']", domains[r.Intn(len(domains))]))
		case 1:
			patterns = append(patterns, fmt.Sprintf("[ipv4-addr:value IN ('10.0.0.%d', '10.0.0.%d')]", r.Intn(8), r.Intn(8)))
		case 2:
			patterns = append(patterns, fmt.Sprintf("[ipv4-addr:value ISSUBSET '10.0.0.%d/30']", r.Intn(8)&^3))
		case 3:
			patterns = append(patterns, fmt.Sprintf("[domain-name:value LIKE '%%.%s']", []string{"example", "test"}[r.Intn(2)]))
		case 4:
			patterns = append(patterns, fmt.Sprintf("[x:score > %d]", r.Intn(4)))
		case 5:
			patterns = append(patterns, fmt.Sprintf("[domain-name:value NOT = '%s' AND x:score <= %d]",
				domains[r.Intn(len(domains))], r.Intn(4)))
		}
	}
	for _, src := range patterns {
		a := mustRegister(t, indexed, "c", src)
		b := mustRegister(t, linear, "c", src)
		// Same registration order: pair by pattern text via map below.
		_ = a
		_ = b
	}

	patternOf := func(ms []Match) []string {
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = m.Pattern
		}
		sort.Strings(out)
		return out
	}
	for i := 0; i < 200; i++ {
		fields := map[string][]string{}
		if r.Intn(2) == 0 {
			fields["domain-name:value"] = []string{domains[r.Intn(len(domains))]}
		}
		if r.Intn(2) == 0 {
			fields["ipv4-addr:value"] = []string{fmt.Sprintf("10.0.0.%d", r.Intn(8))}
		}
		if r.Intn(2) == 0 {
			fields["x:score"] = []string{fmt.Sprintf("%d", r.Intn(5))}
		}
		o := obsOf(fields)
		got, want := patternOf(indexed.Evaluate(o)), patternOf(linear.Evaluate(o))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("obs %v:\nindexed: %v\nlinear:  %v", fields, got, want)
		}
	}
}

func ciocEvent(t *testing.T) *misp.Event {
	t.Helper()
	now := time.Unix(1700000000, 0).UTC()
	me := &misp.Event{UUID: "11111111-2222-4333-8444-555555555555", Info: "cIoC: malware-infection", Timestamp: misp.UT(now)}
	me.AddTag("caisp:cioc")
	me.AddTag(`caisp:category="malware-infection"`)
	a := me.AddAttribute("domain", "Network activity", "evil.example", now)
	a.ToIDS = true
	return me
}

func TestEvaluateMISPPushesPreparedFrames(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	sub := mustRegister(t, e, "siem", "[domain-name:value = 'evil.example']")
	mustRegister(t, e, "siem", "[x-caisp:category = 'malware-infection']")

	sc, cc := net.Pipe()
	defer cc.Close()
	e.AddWatcher(wsock.NewConn(sc, false))

	frames := make(chan []byte, 4)
	go func() {
		for {
			op, payload, err := wsock.ReadFrameInto(cc, make([]byte, 4096))
			if err != nil {
				close(frames)
				return
			}
			if op == wsock.OpText {
				frames <- append([]byte(nil), payload...)
			}
		}
	}()

	if n := e.EvaluateMISP(ciocEvent(t), StageCIoC, -1); n != 2 {
		t.Fatalf("EvaluateMISP = %d matches, want 2", n)
	}
	select {
	case payload := <-frames:
		var frame EventFrame
		if err := json.Unmarshal(payload, &frame); err != nil {
			t.Fatalf("bad frame %q: %v", payload, err)
		}
		if frame.Kind != "match" || frame.Stage != StageCIoC {
			t.Fatalf("frame kind/stage = %q/%q", frame.Kind, frame.Stage)
		}
		if len(frame.Matches) != 2 {
			t.Fatalf("frame has %d matches, want 2", len(frame.Matches))
		}
		found := false
		for _, m := range frame.Matches {
			if m.SubscriptionID == sub.ID && m.ClientID == "siem" {
				found = true
			}
		}
		if !found {
			t.Fatalf("frame matches %+v missing subscription %s", frame.Matches, sub.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no match frame delivered")
	}

	// Per-subscription match counters surface in snapshots.
	got, ok := e.Get(sub.ID)
	if !ok || got.Matches != 1 {
		t.Fatalf("Get(%s) = %+v, want Matches=1", sub.ID, got)
	}
}

func TestEvaluateMISPThreatScore(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	mustRegister(t, e, "siem", "[x-caisp:threat-score >= 0.5]")

	me := ciocEvent(t)
	if n := e.EvaluateMISP(me, StageCIoC, -1); n != 0 {
		t.Fatalf("unscored event matched score pattern (%d)", n)
	}
	if n := e.EvaluateMISP(me, StageEIoC, 0.75); n != 1 {
		t.Fatalf("scored event matches = %d, want 1", n)
	}
	// Stored eIoCs carry the score as a comment attribute; bus-driven
	// evaluation recovers it without the caller passing a score.
	me.AddAttribute("comment", "Other", "threat-score:0.7500", time.Unix(1700000100, 0))
	me.AddTag("caisp:eioc")
	if n := e.EvaluateMISP(me, StageEIoC, -1); n != 1 {
		t.Fatalf("recovered-score matches = %d, want 1", n)
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(WithMetrics(reg))
	defer e.Close()
	mustRegister(t, e, "c", "[domain-name:value = 'evil.example']")
	if _, err := e.Register("c", "[[["); err == nil {
		t.Fatal("garbage pattern registered")
	}
	e.Evaluate(obsOf(map[string][]string{"domain-name:value": {"evil.example"}}))

	var buf []string
	for _, name := range reg.Names() {
		buf = append(buf, name)
	}
	for _, want := range []string{
		"caisp_subs_registered", "caisp_subs_eval_seconds",
		"caisp_subs_matches_total", "caisp_subs_candidates_per_event",
		"caisp_subs_rejected_total",
	} {
		found := false
		for _, name := range buf {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("metric %s not registered (have %v)", want, buf)
		}
	}
	snap := e.EvalSnapshot()
	if snap.Eval == nil || snap.Eval.Count != 1 {
		t.Fatalf("eval histogram snapshot = %+v, want 1 observation", snap.Eval)
	}
	if snap.Matches != 1 || snap.Registered != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestChurnUnderIngest exercises concurrent register/unsubscribe against
// live evaluation — run under -race via `make race`.
func TestChurnUnderIngest(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	for i := 0; i < 32; i++ {
		mustRegister(t, e, "seed", fmt.Sprintf("[domain-name:value = 'd%d.example']", i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				o := obsOf(map[string][]string{
					"domain-name:value": {fmt.Sprintf("d%d.example", i%40)},
				})
				e.Evaluate(o)
				i++
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := fmt.Sprintf("churn-%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := e.Register(client, fmt.Sprintf("[domain-name:value = 'd%d.example']", i%40))
				if err != nil {
					t.Error(err)
					return
				}
				if err := e.Unsubscribe(sub.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e.Len() != 32 {
		t.Fatalf("after churn: %d subscriptions, want the 32 seeds", e.Len())
	}
	if st := e.Stats(); st.Registered != 32 || st.Clients != 1 {
		t.Fatalf("Stats = %+v, want 32 seed subscriptions for 1 client", st)
	}
}
