package subscribe

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Subscription persistence: standing STIX-pattern detections are part of
// the node's durable state — a tipd restart mid mesh catch-up must not
// silently drop them. With WithPersistPath set, the engine mirrors the
// live pattern set to one small JSON sidecar on every register and
// unsubscribe, and replays the sidecar on boot with the original
// subscription IDs and creation stamps, so handles clients hold across
// the restart stay valid. Match counters are runtime state and restart
// at zero.

// WithPersistPath enables persistence at path. The file is loaded during
// NewEngine (before the first event is evaluated) and rewritten
// atomically (temp file + rename) after each mutation.
func WithPersistPath(path string) Option {
	return func(e *Engine) { e.persistPath = path }
}

// persistedSubscription is the sidecar record for one standing pattern.
type persistedSubscription struct {
	ID        string     `json:"id"`
	ClientID  string     `json:"client_id"`
	Pattern   string     `json:"pattern"`
	CreatedAt time.Time  `json:"created_at"`
	ExpiresAt *time.Time `json:"expires_at,omitempty"`
}

// loadPersisted replays the sidecar into the empty engine. Entries that
// no longer parse (or exceed the current quotas) are skipped with a log
// line rather than failing boot: a standing detection set must not brick
// the daemon.
func (e *Engine) loadPersisted() {
	if e.persistPath == "" {
		return
	}
	data, err := os.ReadFile(e.persistPath)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		e.logger.Warn("subscriptions: load failed", "path", e.persistPath, "error", err)
		return
	}
	var recs []persistedSubscription
	if err := json.Unmarshal(data, &recs); err != nil {
		e.logger.Warn("subscriptions: decode failed", "path", e.persistPath, "error", err)
		return
	}
	restored := 0
	now := e.now().UTC()
	for _, rec := range recs {
		if rec.ID == "" || rec.Pattern == "" {
			continue
		}
		if rec.ExpiresAt != nil && !now.Before(*rec.ExpiresAt) {
			// The TTL ran out while the daemon was down; don't resurrect.
			continue
		}
		if _, err := e.register(rec.ID, rec.CreatedAt, rec.ExpiresAt, rec.ClientID, rec.Pattern); err != nil {
			e.logger.Warn("subscriptions: skipped on reload",
				"id", rec.ID, "client", rec.ClientID, "error", err)
			continue
		}
		restored++
	}
	if restored > 0 {
		e.logger.Info("subscriptions restored", "count", restored, "path", e.persistPath)
	}
}

// persist mirrors the live pattern set to the sidecar. persistMu orders
// concurrent writers so the file always reflects some consistent
// snapshot; the snapshot itself is taken under the engine read lock.
func (e *Engine) persist() {
	if e.persistPath == "" {
		return
	}
	e.persistMu.Lock()
	defer e.persistMu.Unlock()

	e.mu.RLock()
	recs := make([]persistedSubscription, 0, len(e.subs))
	for _, sub := range e.subs {
		recs = append(recs, persistedSubscription{
			ID:        sub.ID,
			ClientID:  sub.ClientID,
			Pattern:   sub.Pattern,
			CreatedAt: sub.CreatedAt,
			ExpiresAt: sub.ExpiresAt,
		})
	}
	e.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].CreatedAt.Equal(recs[j].CreatedAt) {
			return recs[i].CreatedAt.Before(recs[j].CreatedAt)
		}
		return recs[i].ID < recs[j].ID
	})

	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		e.logger.Warn("subscriptions: encode failed", "error", err)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(e.persistPath), ".subs-*")
	if err != nil {
		e.logger.Warn("subscriptions: persist failed", "error", err)
		return
	}
	_, werr := tmp.Write(append(data, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		e.logger.Warn("subscriptions: persist failed",
			"write", werr, "sync", serr, "close", cerr)
		return
	}
	if err := os.Rename(tmp.Name(), e.persistPath); err != nil {
		os.Remove(tmp.Name())
		e.logger.Warn("subscriptions: persist failed", "error", err)
	}
}
