package subscribe

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/wsock"
)

func newTestAPI(t *testing.T, opts ...Option) (*Engine, *httptest.Server) {
	t.Helper()
	e := NewEngine(opts...)
	srv := httptest.NewServer(NewAPI(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAPILifecycle(t *testing.T) {
	e, srv := newTestAPI(t)

	resp := postJSON(t, srv.URL+"/subscriptions",
		`{"client_id": "siem", "pattern": "[domain-name:value = 'evil.example']"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", resp.StatusCode)
	}
	sub := decode[Subscription](t, resp)
	if sub.ID == "" || sub.ClientID != "siem" {
		t.Fatalf("register response = %+v", sub)
	}

	listResp, err := http.Get(srv.URL + "/subscriptions?client=siem")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	if subs := decode[[]Subscription](t, listResp); len(subs) != 1 || subs[0].ID != sub.ID {
		t.Fatalf("list = %+v", subs)
	}

	statsResp, err := http.Get(srv.URL + "/subscriptions/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	if st := decode[Stats](t, statsResp); st.Registered != 1 {
		t.Fatalf("stats = %+v", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/subscriptions/"+sub.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d, want 204", delResp.StatusCode)
	}
	if e.Len() != 0 {
		t.Fatalf("engine still holds %d subscriptions", e.Len())
	}

	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/subscriptions/"+sub.ID, nil)
	delResp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d, want 404", delResp.StatusCode)
	}
}

// TestAPIMatchStream covers the full register → push lifecycle over a real
// HTTP server: WebSocket handshake on /ws/matches, hello greeting, then an
// encode-once match frame when an admitted event satisfies the pattern.
func TestAPIMatchStream(t *testing.T) {
	e, srv := newTestAPI(t)
	mustRegister(t, e, "siem", "[domain-name:value = 'evil.example']")

	conn, err := wsock.Dial("ws" + strings.TrimPrefix(srv.URL, "http") + "/ws/matches")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	_, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	var hello wsHello
	if err := json.Unmarshal(payload, &hello); err != nil || hello.Kind != "hello" || hello.Registered != 1 {
		t.Fatalf("greeting = %q (%v)", payload, err)
	}

	if n := e.EvaluateMISP(ciocEvent(t), StageCIoC, -1); n != 1 {
		t.Fatalf("EvaluateMISP = %d, want 1", n)
	}
	done := make(chan EventFrame, 1)
	go func() {
		if _, payload, err := conn.ReadMessage(); err == nil {
			var frame EventFrame
			if json.Unmarshal(payload, &frame) == nil {
				done <- frame
			}
		}
	}()
	select {
	case frame := <-done:
		if frame.Kind != "match" || len(frame.Matches) != 1 || frame.Matches[0].ClientID != "siem" {
			t.Fatalf("frame = %+v", frame)
		}
		if frame.PushedUnixNano == 0 {
			t.Fatal("frame missing push timestamp")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no match frame on /ws/matches")
	}
}

func TestAPIStructuredErrors(t *testing.T) {
	_, srv := newTestAPI(t, WithMaxPatternBytes(48), WithMaxPerClient(1))

	// Syntax error: 400 with the parser's byte offset.
	resp := postJSON(t, srv.URL+"/subscriptions",
		`{"client_id": "c", "pattern": "[domain-name:value = ]"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("syntax status = %d, want 400", resp.StatusCode)
	}
	if e := decode[apiError](t, resp); e.Position == nil || *e.Position != 21 {
		t.Fatalf("syntax error body = %+v, want position 21", e)
	}

	// Oversize: 400 with length and limit.
	long := strings.Repeat("x", 48)
	resp = postJSON(t, srv.URL+"/subscriptions",
		`{"client_id": "c", "pattern": "[a:b = '`+long+`']"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize status = %d, want 400", resp.StatusCode)
	}
	if e := decode[apiError](t, resp); e.Limit != 48 || e.Length <= 48 {
		t.Fatalf("oversize error body = %+v", e)
	}

	// Missing pattern.
	resp = postJSON(t, srv.URL+"/subscriptions", `{"client_id": "c"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-pattern status = %d, want 400", resp.StatusCode)
	}

	// Quota: second registration for the same client is 429.
	resp = postJSON(t, srv.URL+"/subscriptions", `{"client_id": "c", "pattern": "[a:b = 'x']"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first register status = %d, want 201", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/subscriptions", `{"client_id": "c", "pattern": "[a:b = 'y']"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota status = %d, want 429", resp.StatusCode)
	}
	if e := decode[apiError](t, resp); e.Limit != 1 {
		t.Fatalf("quota error body = %+v", e)
	}
}
