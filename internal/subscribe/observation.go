package subscribe

import (
	"encoding/json"
	"strconv"
	"time"

	"github.com/caisplatform/caisp/internal/correlate"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/stixpattern"
	"github.com/caisplatform/caisp/internal/wsock"
)

// Extension object paths the platform adds beyond the members' own STIX
// fields, so patterns can select on cluster category and analyzer score:
//
//	[x-caisp:category = 'vulnerability-exploitation']
//	[x-caisp:threat-score >= 0.5]
const (
	PathCategory    = "x-caisp:category"
	PathThreatScore = "x-caisp:threat-score"
)

// EventFrame is the WebSocket payload pushed to /ws/matches watchers: one
// admitted event and every subscription it satisfied. The frame is JSON- and
// WebSocket-encoded once and fanned out prepared.
type EventFrame struct {
	Kind  string `json:"kind"` // "match"
	Stage Stage  `json:"stage"`
	Event string `json:"event_uuid"`
	Info  string `json:"info"`
	// At is the admitted event's MISP timestamp; PushedUnixNano stamps hub
	// submission so consumers can measure push lag.
	At             time.Time `json:"at"`
	PushedUnixNano int64     `json:"pushed_unix_nano"`
	Matches        []Match   `json:"matches"`
}

// ObservationFromMISP projects a stored MISP event onto STIX object paths.
// For admitted cIoCs the cluster members rebuild exactly as the correlator
// stored them; for other events (e.g. raw events posted to tipd) each
// attribute value normalizes individually. threatScore < 0 means unscored.
func ObservationFromMISP(me *misp.Event, threatScore float64) stixpattern.Observation {
	fields := make(map[string][]string, 8)
	members := correlate.MembersFromMISP(me)
	if members == nil {
		for i := range me.Attributes {
			a := &me.Attributes[i]
			if a.Type == "comment" {
				continue
			}
			ev, err := normalize.New(a.Value, "", "", normalize.SourceOSINT, a.Timestamp.Time)
			if err != nil {
				continue
			}
			members = append(members, ev)
		}
	}
	for _, m := range members {
		for path, vals := range m.ObservationFields() {
			fields[path] = append(fields[path], vals...)
		}
	}
	if cat := correlate.CategoryOf(me); cat != "" {
		fields[PathCategory] = []string{cat}
	}
	if threatScore < 0 {
		// Stored eIoCs carry the score as a comment attribute; recover it
		// so bus-driven evaluation (tipd) sees the same fields as in-core
		// dispatch.
		threatScore, _ = ThreatScoreOf(me)
	}
	if threatScore >= 0 {
		fields[PathThreatScore] = []string{strconv.FormatFloat(threatScore, 'f', -1, 64)}
	}
	return stixpattern.Observation{At: me.Timestamp.Time, Fields: fields}
}

// ThreatScoreOf recovers the analyzer score written back into a stored eIoC
// ("threat-score:0.6250" comment attribute). Returns -1, false when absent.
// When the lifecycle engine has landed a decayed score it wins: standing
// score-gated detections see the same freshness-adjusted value the
// dashboard ranks by.
func ThreatScoreOf(me *misp.Event) (float64, bool) {
	if f, ok := heuristic.DecayedScoreOf(me); ok {
		return f, true
	}
	if f, ok := heuristic.BaseScoreOf(me); ok {
		return f, true
	}
	return -1, false
}

// EvaluateMISP evaluates an admitted MISP event against the live pattern
// set and, on any match, pushes one encode-once frame to every watcher.
// It returns the number of matched subscriptions.
func (e *Engine) EvaluateMISP(me *misp.Event, stage Stage, threatScore float64) int {
	if e.count.Load() == 0 {
		return 0
	}
	matches := e.Evaluate(ObservationFromMISP(me, threatScore))
	if len(matches) == 0 {
		return 0
	}
	frame := EventFrame{
		Kind:    "match",
		Stage:   stage,
		Event:   me.UUID,
		Info:    me.Info,
		At:      me.Timestamp.Time,
		Matches: matches,
	}
	frame.PushedUnixNano = time.Now().UnixNano()
	payload, err := json.Marshal(frame)
	if err != nil {
		e.logger.Warn("subscribe: encode match frame", "error", err)
		return len(matches)
	}
	e.hub.BroadcastPrepared(wsock.PrepareText(payload))
	return len(matches)
}
