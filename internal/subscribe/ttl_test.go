package subscribe

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/obs"
)

// fakeClock is a settable clock shared with the engine via WithNow.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTTLExpiryStopsMatchingBeforeSweep(t *testing.T) {
	clk := &fakeClock{t: time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)}
	for _, linear := range []bool{false, true} {
		opts := []Option{WithNow(clk.now)}
		if linear {
			opts = append(opts, WithLinearScan())
		}
		e := NewEngine(opts...)
		ttl, err := e.RegisterTTL("c", "[domain-name:value = 'evil.example']", time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if ttl.ExpiresAt == nil || !ttl.ExpiresAt.Equal(clk.now().Add(time.Hour)) {
			t.Fatalf("linear=%v ExpiresAt = %v, want now+1h", linear, ttl.ExpiresAt)
		}
		keep := mustRegister(t, e, "c", "[domain-name:value = 'evil.example']")
		if keep.ExpiresAt != nil {
			t.Fatalf("plain Register set ExpiresAt = %v", keep.ExpiresAt)
		}

		o := obsOf(map[string][]string{"domain-name:value": {"evil.example"}})
		if got := len(e.Evaluate(o)); got != 2 {
			t.Fatalf("linear=%v before expiry: %d matches, want 2", linear, got)
		}
		clk.advance(time.Hour) // deadline is inclusive: now == ExpiresAt is expired
		if got := matchIDs(e.Evaluate(o)); len(got) != 1 || got[0] != keep.ID {
			t.Fatalf("linear=%v after expiry: matches %v, want only %s", linear, got, keep.ID)
		}
		// The expired record is still registered until a sweep runs.
		if e.Len() != 2 {
			t.Fatalf("linear=%v Len = %d before sweep, want 2", linear, e.Len())
		}
		if n := e.Sweep(); n != 1 {
			t.Fatalf("linear=%v Sweep = %d, want 1", linear, n)
		}
		if e.Len() != 1 {
			t.Fatalf("linear=%v Len = %d after sweep, want 1", linear, e.Len())
		}
		if _, ok := e.Get(ttl.ID); ok {
			t.Fatalf("linear=%v expired subscription still retrievable", linear)
		}
		if n := e.Sweep(); n != 0 {
			t.Fatalf("linear=%v second Sweep = %d, want 0", linear, n)
		}
		e.Close()
		clk.advance(-time.Hour)
	}
}

func TestTTLSweepCounter(t *testing.T) {
	clk := &fakeClock{t: time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)}
	reg := obs.NewRegistry()
	e := NewEngine(WithNow(clk.now), WithMetrics(reg))
	defer e.Close()
	for i := 0; i < 3; i++ {
		if _, err := e.RegisterTTL("c", "[domain-name:value = 'evil.example']", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister(t, e, "c", "[url:value = 'http://x/']")
	clk.advance(2 * time.Minute)
	if n := e.Sweep(); n != 3 {
		t.Fatalf("Sweep = %d, want 3", n)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "caisp_subs_expired_total 3") {
		t.Fatalf("metrics missing caisp_subs_expired_total 3:\n%s", buf.String())
	}
}

func TestTTLPersistenceRoundTrip(t *testing.T) {
	clk := &fakeClock{t: time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)}
	path := filepath.Join(t.TempDir(), "subs.json")
	e := NewEngine(WithNow(clk.now), WithPersistPath(path))
	short, err := e.RegisterTTL("c", "[domain-name:value = 'a.example']", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	long, err := e.RegisterTTL("c", "[domain-name:value = 'b.example']", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Restart after the short TTL lapsed: only the long one comes back,
	// deadline intact.
	clk.advance(time.Hour)
	e2 := NewEngine(WithNow(clk.now), WithPersistPath(path))
	defer e2.Close()
	if _, ok := e2.Get(short.ID); ok {
		t.Fatal("expired subscription resurrected across restart")
	}
	got, ok := e2.Get(long.ID)
	if !ok {
		t.Fatal("unexpired TTL subscription lost across restart")
	}
	if got.ExpiresAt == nil || !got.ExpiresAt.Equal(*long.ExpiresAt) {
		t.Fatalf("ExpiresAt = %v, want %v", got.ExpiresAt, long.ExpiresAt)
	}
}

func TestTTLBackgroundSweeper(t *testing.T) {
	clk := &fakeClock{t: time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)}
	e := NewEngine(WithNow(clk.now), WithSweepInterval(time.Millisecond))
	defer e.Close()
	if _, err := e.RegisterTTL("c", "[domain-name:value = 'a.example']", time.Minute); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Minute)
	deadline := time.Now().Add(2 * time.Second)
	for e.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background sweeper never removed expired subscription; Len = %d", e.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
