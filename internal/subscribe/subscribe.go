// Package subscribe is the platform's streaming detection engine: clients
// register standing STIX 2 patterns over REST and receive match frames over
// WebSocket whenever an admitted cIoC/eIoC satisfies one. This is the
// SIEM-integration surface — a standing set of machine-readable detections
// evaluated continuously against live intelligence.
//
// The core is a pattern index built at registration time. Each parsed
// pattern's comparison expressions decompose into (object-path,
// operator-class, value) keys:
//
//   - non-negated equality and IN predicates hash-dispatch: an exact
//     (path, value) probe finds them in O(1) regardless of how many
//     patterns are registered;
//   - ordered, CIDR, LIKE, MATCHES, negated and != predicates land in a
//     per-path candidate list, sized by how many such patterns watch that
//     path.
//
// Per admitted event the engine probes the index with the event's observed
// fields and runs the full evaluator only on candidates, so evaluation cost
// scales with matching candidates, not registered patterns. The index is
// sound because the evaluator treats absent object paths as false (even for
// negated comparisons): a pattern can only match an observation if at least
// one of its comparisons sees a present path, and every comparison's path
// is indexed.
package subscribe

import (
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/stixpattern"
	"github.com/caisplatform/caisp/internal/uuid"
	"github.com/caisplatform/caisp/internal/wsock"
)

// Registration limits (overridable via options).
const (
	DefaultMaxPatternBytes = 4096
	DefaultMaxPerClient    = 1024
)

// DefaultMatchQueueDepth sizes each watcher's send queue. Batch admission
// pushes match frames in microsecond bursts (one flush can admit hundreds
// of events), far faster than a TCP peer drains them — the hub's
// drop-slowest eviction would cut healthy watchers off mid-burst at the
// wsock default of 64. Queue entries are frame pointers, so depth is cheap.
// Override with WithHubOptions(wsock.WithQueueDepth(n)).
const DefaultMatchQueueDepth = 4096

// Stage labels which admission point produced a matched event.
type Stage string

// Admission stages.
const (
	StageCIoC Stage = "cioc" // composed cluster admitted by the correlator
	StageEIoC Stage = "eioc" // scored event admitted by the analyzer
)

// ErrNotFound reports an unsubscribe for an unknown subscription ID.
var ErrNotFound = errors.New("subscribe: no such subscription")

// PatternTooLargeError rejects a registration whose pattern source exceeds
// the engine's length cap.
type PatternTooLargeError struct {
	Length, Limit int
}

// Error describes the violated cap.
func (e *PatternTooLargeError) Error() string {
	return fmt.Sprintf("subscribe: pattern is %d bytes, limit %d", e.Length, e.Limit)
}

// ClientLimitError rejects a registration that would push a client past its
// subscription quota. The API layer maps it to 429.
type ClientLimitError struct {
	ClientID string
	Limit    int
}

// Error describes the exhausted quota.
func (e *ClientLimitError) Error() string {
	return fmt.Sprintf("subscribe: client %q has reached the subscription limit (%d)", e.ClientID, e.Limit)
}

// Subscription is the REST representation of one registered pattern — a
// plain-data snapshot, freely copyable.
type Subscription struct {
	ID        string    `json:"id"`
	ClientID  string    `json:"client_id"`
	Pattern   string    `json:"pattern"`
	CreatedAt time.Time `json:"created_at"`
	// ExpiresAt is the TTL deadline; nil means the subscription lives
	// until explicitly unsubscribed. Past the deadline the pattern stops
	// matching immediately (lazy skip on the hot path) and the next
	// sweep removes it.
	ExpiresAt *time.Time `json:"expires_at,omitempty"`
	// Matches is the number of admitted events this subscription matched
	// at snapshot time.
	Matches int64 `json:"matches"`
}

// subscription is the engine's live record: the public data plus parsed
// form, index keys and the match counter. Always held by pointer.
type subscription struct {
	Subscription
	parsed  *stixpattern.Pattern
	slot    int      // dense index into Engine.slots
	eqKeys  []string // equality-index keys this pattern occupies
	pathVal []string // per-path candidate lists this pattern occupies
	matched atomic.Int64
}

// Match reports one subscription satisfied by an admitted event.
type Match struct {
	SubscriptionID string `json:"subscription_id"`
	ClientID       string `json:"client_id"`
	Pattern        string `json:"pattern"`
}

// Engine owns the live pattern set, its index, and the WebSocket hub that
// match frames fan out on.
type Engine struct {
	linear      bool
	maxBytes    int
	maxPer      int
	logger      *slog.Logger
	now         func() time.Time
	hub         *wsock.Hub
	evalSeconds *obs.Histogram
	candidates  *obs.Histogram
	matchTotal  *obs.Counter
	rejected    *obs.CounterVec
	expiredCnt  *obs.Counter
	// sweepEvery, when positive, starts a background goroutine that
	// removes TTL-expired subscriptions on that cadence.
	sweepEvery time.Duration
	sweepStop  chan struct{}
	sweepWG    sync.WaitGroup
	closeOnce  sync.Once
	// hubOpts accumulates hub options until NewEngine builds the hub.
	hubOpts []wsock.HubOption
	// persistPath, when non-empty, is the JSON sidecar the live pattern
	// set is mirrored to on every mutation and reloaded from on boot.
	persistPath string
	persistMu   sync.Mutex

	count     atomic.Int64 // live subscriptions, read lock-free on the hot path
	evaluated atomic.Int64
	matches   atomic.Int64

	mu       sync.RWMutex
	subs     map[string]*subscription
	byClient map[string]map[string]*subscription
	slots    []*subscription // dense storage; index lists hold slot numbers
	free     []int
	eq       map[string][]int // (path \x00 value) → candidate slots
	byPath   map[string][]int // path → candidate slots for non-hashable ops
}

// Option configures an Engine.
type Option func(*Engine)

// WithMetrics registers the caisp_subs_* families on reg.
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) {
		reg.GaugeFunc("caisp_subs_registered",
			"Live STIX-pattern subscriptions.",
			func() float64 { return float64(e.count.Load()) })
		e.evalSeconds = reg.Histogram("caisp_subs_eval_seconds",
			"Per-event subscription evaluation latency: index probe plus full evaluator runs on candidates.")
		e.candidates = reg.Histogram("caisp_subs_candidates_per_event",
			"Candidate patterns the index selects per admitted event.", obs.SizeBuckets...)
		e.matchTotal = reg.Counter("caisp_subs_matches_total",
			"Subscription matches pushed to watchers.")
		e.rejected = reg.CounterVec("caisp_subs_rejected_total",
			"Registrations rejected, by reason (syntax, too_large, limit).", "reason")
		e.expiredCnt = reg.Counter("caisp_subs_expired_total",
			"TTL-expired subscriptions removed by the sweep.")
	}
}

// WithSweepInterval starts a background goroutine removing TTL-expired
// subscriptions every d. Zero (the default) leaves sweeping to explicit
// Sweep calls; expired patterns stop matching immediately either way.
func WithSweepInterval(d time.Duration) Option {
	return func(e *Engine) { e.sweepEvery = d }
}

// WithHubMetrics additionally registers the match hub's caisp_wsock_*
// families on reg. Standalone daemons (tipd, subload) want this; inside
// caispd the dashboard hub already owns those families, so the match hub
// must stay unregistered to keep the one-registration metric contract.
func WithHubMetrics(reg *obs.Registry) Option {
	return func(e *Engine) { e.hubOpts = append(e.hubOpts, wsock.WithHubMetrics(reg)) }
}

// WithLinearScan disables the index: every registered pattern runs the full
// evaluator on every event. This is the O(all-patterns) ablation that
// `make bench-subs` compares against; never enable it in production.
func WithLinearScan() Option {
	return func(e *Engine) { e.linear = true }
}

// WithMaxPatternBytes caps registered pattern source length.
func WithMaxPatternBytes(n int) Option {
	return func(e *Engine) { e.maxBytes = n }
}

// WithMaxPerClient caps live subscriptions per client ID.
func WithMaxPerClient(n int) Option {
	return func(e *Engine) { e.maxPer = n }
}

// WithLogger sets the engine's logger.
func WithLogger(l *slog.Logger) Option {
	return func(e *Engine) {
		if l != nil {
			e.logger = l
		}
	}
}

// WithNow injects a clock for deterministic tests.
func WithNow(now func() time.Time) Option {
	return func(e *Engine) {
		if now != nil {
			e.now = now
		}
	}
}

// WithHubOptions forwards options to the match-push hub.
func WithHubOptions(opts ...wsock.HubOption) Option {
	return func(e *Engine) { e.hubOpts = append(e.hubOpts, opts...) }
}

// NewEngine builds an empty engine and its match-push hub.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		maxBytes: DefaultMaxPatternBytes,
		maxPer:   DefaultMaxPerClient,
		logger:   slog.Default(),
		now:      time.Now,
		subs:     make(map[string]*subscription),
		byClient: make(map[string]map[string]*subscription),
		eq:       make(map[string][]int),
		byPath:   make(map[string][]int),
	}
	for _, opt := range opts {
		opt(e)
	}
	hubOpts := append([]wsock.HubOption{wsock.WithQueueDepth(DefaultMatchQueueDepth)}, e.hubOpts...)
	e.hub = wsock.NewHub(hubOpts...)
	e.loadPersisted()
	if e.sweepEvery > 0 {
		e.sweepStop = make(chan struct{})
		e.sweepWG.Add(1)
		go e.sweepLoop()
	}
	return e
}

func (e *Engine) sweepLoop() {
	defer e.sweepWG.Done()
	t := time.NewTicker(e.sweepEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.Sweep()
		case <-e.sweepStop:
			return
		}
	}
}

// Close stops the expiry sweeper and shuts down the match-push hub.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.sweepStop != nil {
			close(e.sweepStop)
			e.sweepWG.Wait()
		}
		e.hub.Close()
	})
}

// AddWatcher attaches a WebSocket connection to the match stream.
func (e *Engine) AddWatcher(c *wsock.Conn) { e.hub.Add(c) }

// RemoveWatcher detaches a connection.
func (e *Engine) RemoveWatcher(c *wsock.Conn) { e.hub.Remove(c) }

// Watchers returns the number of attached match-stream connections.
func (e *Engine) Watchers() int { return e.hub.Len() }

// Len returns the number of live subscriptions.
func (e *Engine) Len() int { return int(e.count.Load()) }

// Register parses, validates, indexes and stores a pattern for clientID.
func (e *Engine) Register(clientID, pattern string) (*Subscription, error) {
	return e.RegisterTTL(clientID, pattern, 0)
}

// RegisterTTL is Register with a bounded lifetime: the subscription
// expires ttl after registration, at which point it stops matching and
// the next sweep removes it. A ttl of zero or less means no expiry.
func (e *Engine) RegisterTTL(clientID, pattern string, ttl time.Duration) (*Subscription, error) {
	var expiresAt *time.Time
	if ttl > 0 {
		t := e.now().UTC().Add(ttl)
		expiresAt = &t
	}
	sub, err := e.register(uuid.NewV4().String(), time.Time{}, expiresAt, clientID, pattern)
	if err != nil {
		return nil, err
	}
	e.persist()
	return sub, nil
}

// register is Register with caller-controlled identity: the persistence
// loader replays saved subscriptions through it with their original IDs
// and creation stamps so client-held handles stay valid across restarts.
// A zero createdAt means "now".
func (e *Engine) register(id string, createdAt time.Time, expiresAt *time.Time, clientID, pattern string) (*Subscription, error) {
	if clientID == "" {
		clientID = "default"
	}
	if len(pattern) > e.maxBytes {
		e.reject("too_large")
		return nil, &PatternTooLargeError{Length: len(pattern), Limit: e.maxBytes}
	}
	parsed, err := stixpattern.Parse(pattern)
	if err != nil {
		e.reject("syntax")
		return nil, err
	}
	eqKeys, pathKeys := decompose(parsed.Root)
	if createdAt.IsZero() {
		createdAt = e.now().UTC()
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.byClient[clientID]) >= e.maxPer {
		e.reject("limit")
		return nil, &ClientLimitError{ClientID: clientID, Limit: e.maxPer}
	}
	sub := &subscription{
		Subscription: Subscription{
			ID:        id,
			ClientID:  clientID,
			Pattern:   pattern,
			CreatedAt: createdAt,
			ExpiresAt: expiresAt,
		},
		parsed:  parsed,
		eqKeys:  eqKeys,
		pathVal: pathKeys,
	}
	if n := len(e.free); n > 0 {
		sub.slot = e.free[n-1]
		e.free = e.free[:n-1]
		e.slots[sub.slot] = sub
	} else {
		sub.slot = len(e.slots)
		e.slots = append(e.slots, sub)
	}
	for _, k := range eqKeys {
		e.eq[k] = append(e.eq[k], sub.slot)
	}
	for _, k := range pathKeys {
		e.byPath[k] = append(e.byPath[k], sub.slot)
	}
	e.subs[sub.ID] = sub
	cl := e.byClient[clientID]
	if cl == nil {
		cl = make(map[string]*subscription)
		e.byClient[clientID] = cl
	}
	cl[sub.ID] = sub
	e.count.Add(1)
	return sub.snapshot(), nil
}

// expiredAt reports whether the subscription's TTL deadline has passed.
func (s *subscription) expiredAt(now time.Time) bool {
	return s.ExpiresAt != nil && !now.Before(*s.ExpiresAt)
}

// Sweep removes every TTL-expired subscription and returns how many it
// dropped. Expired patterns already stop matching before the sweep (the
// hot path skips them), so the sweep only reclaims index and map space.
func (e *Engine) Sweep() int {
	now := e.now().UTC()
	e.mu.RLock()
	var doomed []string
	for id, sub := range e.subs {
		if sub.expiredAt(now) {
			doomed = append(doomed, id)
		}
	}
	e.mu.RUnlock()
	if len(doomed) == 0 {
		return 0
	}
	n := 0
	for _, id := range doomed {
		if e.unsubscribe(id) == nil {
			n++
		}
	}
	if n > 0 {
		if e.expiredCnt != nil {
			e.expiredCnt.Add(int64(n))
		}
		e.logger.Info("subscriptions expired", "count", n)
		e.persist()
	}
	return n
}

// Unsubscribe removes a subscription and its index entries.
func (e *Engine) Unsubscribe(id string) error {
	if err := e.unsubscribe(id); err != nil {
		return err
	}
	e.persist()
	return nil
}

func (e *Engine) unsubscribe(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	sub, ok := e.subs[id]
	if !ok {
		return ErrNotFound
	}
	delete(e.subs, id)
	cl := e.byClient[sub.ClientID]
	delete(cl, id)
	if len(cl) == 0 {
		delete(e.byClient, sub.ClientID)
	}
	for _, k := range sub.eqKeys {
		e.eq[k] = dropSlot(e.eq[k], sub.slot)
		if len(e.eq[k]) == 0 {
			delete(e.eq, k)
		}
	}
	for _, k := range sub.pathVal {
		e.byPath[k] = dropSlot(e.byPath[k], sub.slot)
		if len(e.byPath[k]) == 0 {
			delete(e.byPath, k)
		}
	}
	e.slots[sub.slot] = nil
	e.free = append(e.free, sub.slot)
	e.count.Add(-1)
	return nil
}

// List snapshots subscriptions, optionally filtered to one client.
func (e *Engine) List(clientID string) []*Subscription {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*Subscription
	if clientID != "" {
		for _, sub := range e.byClient[clientID] {
			out = append(out, sub.snapshot())
		}
	} else {
		for _, sub := range e.subs {
			out = append(out, sub.snapshot())
		}
	}
	return out
}

// Get snapshots one subscription by ID.
func (e *Engine) Get(id string) (*Subscription, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sub, ok := e.subs[id]
	if !ok {
		return nil, false
	}
	return sub.snapshot(), true
}

func (s *subscription) snapshot() *Subscription {
	out := s.Subscription
	out.Matches = s.matched.Load()
	return &out
}

// Stats summarises engine state for the REST stats endpoint.
type Stats struct {
	Registered int   `json:"registered"`
	Clients    int   `json:"clients"`
	EqKeys     int   `json:"indexed_eq_keys"`
	PathKeys   int   `json:"indexed_path_keys"`
	Watchers   int   `json:"watchers"`
	Evaluated  int64 `json:"events_evaluated"`
	Matches    int64 `json:"matches"`
}

// Stats returns current engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	st := Stats{
		Registered: len(e.subs),
		Clients:    len(e.byClient),
		EqKeys:     len(e.eq),
		PathKeys:   len(e.byPath),
	}
	e.mu.RUnlock()
	st.Watchers = e.hub.Len()
	st.Evaluated = e.evaluated.Load()
	st.Matches = e.matches.Load()
	return st
}

// EvalSnapshot bundles the evaluation histograms and counters so load
// harnesses (cmd/subload) can report percentiles without scraping the
// Prometheus text endpoint. Histograms are nil without WithMetrics.
type EvalSnapshot struct {
	Registered int
	Evaluated  int64
	Matches    int64
	Eval       *obs.HistogramSnapshot
	Candidates *obs.HistogramSnapshot
}

// EvalSnapshot returns current evaluation statistics.
func (e *Engine) EvalSnapshot() EvalSnapshot {
	s := EvalSnapshot{
		Registered: e.Len(),
		Evaluated:  e.evaluated.Load(),
		Matches:    e.matches.Load(),
	}
	if e.evalSeconds != nil {
		s.Eval = e.evalSeconds.Snapshot()
		s.Candidates = e.candidates.Snapshot()
	}
	return s
}

func (e *Engine) reject(reason string) {
	if e.rejected != nil {
		e.rejected.With(reason).Inc()
	}
}

// Evaluate runs the observation against the live pattern set and returns
// every satisfied subscription. Evaluation errors (e.g. a CIDR comparison
// against a non-IP value) disqualify only the erroring pattern.
func (e *Engine) Evaluate(o stixpattern.Observation) []Match {
	if e.count.Load() == 0 {
		return nil
	}
	start := time.Now()
	e.evaluated.Add(1)
	now := e.now()

	var out []Match
	ncand := 0
	e.mu.RLock()
	if e.linear {
		for _, sub := range e.subs {
			if sub.expiredAt(now) {
				continue
			}
			ncand++
			if ok, err := sub.parsed.MatchOne(o); err == nil && ok {
				sub.matched.Add(1)
				out = append(out, Match{SubscriptionID: sub.ID, ClientID: sub.ClientID, Pattern: sub.Pattern})
			}
		}
	} else {
		seen := make(map[int]struct{}, 8)
		try := func(slots []int) {
			for _, slot := range slots {
				if _, dup := seen[slot]; dup {
					continue
				}
				seen[slot] = struct{}{}
				sub := e.slots[slot]
				if sub.expiredAt(now) {
					continue
				}
				ncand++
				if ok, err := sub.parsed.MatchOne(o); err == nil && ok {
					sub.matched.Add(1)
					out = append(out, Match{SubscriptionID: sub.ID, ClientID: sub.ClientID, Pattern: sub.Pattern})
				}
			}
		}
		for path, values := range o.Fields {
			try(e.byPath[path])
			for _, v := range values {
				try(e.eq[path+"\x00"+v])
				// Numeric literals compare by value, not text: "0443.0"
				// equals literal 443. Probe the canonical float form too so
				// the hash index agrees with the evaluator.
				if canon, ok := canonicalNumber(v); ok && canon != v {
					try(e.eq[path+"\x00"+canon])
				}
			}
		}
	}
	e.mu.RUnlock()

	e.matches.Add(int64(len(out)))
	if e.evalSeconds != nil {
		e.evalSeconds.Observe(time.Since(start).Seconds())
		e.candidates.Observe(float64(ncand))
		e.matchTotal.Add(int64(len(out)))
	}
	return out
}

// decompose walks a parsed pattern and derives its index keys: eq keys for
// hash-dispatchable predicates, path keys for everything else. Keys are
// deduplicated per pattern.
func decompose(root stixpattern.ObservationExpr) (eqKeys, pathKeys []string) {
	eqSet := make(map[string]struct{})
	pathSet := make(map[string]struct{})
	var walkCmp func(stixpattern.CompareExpr)
	walkCmp = func(expr stixpattern.CompareExpr) {
		switch c := expr.(type) {
		case stixpattern.BoolCombine:
			walkCmp(c.Left)
			walkCmp(c.Right)
		case stixpattern.Comparison:
			base := basePath(c.Path)
			if !c.Negated && c.Op == stixpattern.OpEq && len(c.Values) == 1 {
				eqSet[base+"\x00"+literalText(c.Values[0])] = struct{}{}
				return
			}
			if !c.Negated && c.Op == stixpattern.OpIn {
				for _, lit := range c.Values {
					eqSet[base+"\x00"+literalText(lit)] = struct{}{}
				}
				return
			}
			pathSet[base] = struct{}{}
		}
	}
	var walkObs func(stixpattern.ObservationExpr)
	walkObs = func(expr stixpattern.ObservationExpr) {
		switch o := expr.(type) {
		case stixpattern.ObsTest:
			walkCmp(o.Expr)
		case stixpattern.ObsCombine:
			walkObs(o.Left)
			walkObs(o.Right)
		case stixpattern.ObsQualified:
			walkObs(o.Expr)
		}
	}
	walkObs(root)
	for k := range eqSet {
		eqKeys = append(eqKeys, k)
	}
	for k := range pathSet {
		pathKeys = append(pathKeys, k)
	}
	return eqKeys, pathKeys
}

// basePath strips a trailing [N]/[*] index selector: the evaluator resolves
// selector paths against the base path's value list, and observations key
// their fields by base path.
func basePath(path string) string {
	if i := strings.LastIndexByte(path, '['); i > 0 && strings.HasSuffix(path, "]") {
		return path[:i]
	}
	return path
}

// literalText mirrors Literal.text(): the comparable string form the
// evaluator uses for equality.
func literalText(l stixpattern.Literal) string {
	switch l.Kind {
	case stixpattern.LitString:
		return l.Str
	case stixpattern.LitNumber:
		return strconv.FormatFloat(l.Num, 'f', -1, 64)
	case stixpattern.LitTimestamp:
		return l.Time.UTC().Format(time.RFC3339Nano)
	default:
		return ""
	}
}

// canonicalNumber reduces an observed value to the canonical form numeric
// literals index under.
func canonicalNumber(v string) (string, bool) {
	if len(v) == 0 || len(v) > 64 {
		return "", false
	}
	c := v[0]
	if c != '-' && c != '+' && c != '.' && (c < '0' || c > '9') {
		return "", false
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return "", false
	}
	return strconv.FormatFloat(f, 'f', -1, 64), true
}

// dropSlot removes one occurrence of slot via swap-remove.
func dropSlot(slots []int, slot int) []int {
	for i, s := range slots {
		if s == slot {
			slots[i] = slots[len(slots)-1]
			return slots[:len(slots)-1]
		}
	}
	return slots
}
