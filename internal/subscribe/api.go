package subscribe

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/caisplatform/caisp/internal/stixpattern"
	"github.com/caisplatform/caisp/internal/wsock"
)

// API is the HTTP front of the subscription engine, mounted on both tipd
// and caispd:
//
//	POST   /subscriptions            register {"client_id": ..., "pattern": ...}
//	GET    /subscriptions?client=ID  list subscriptions (optionally one client's)
//	GET    /subscriptions/stats      engine counters
//	DELETE /subscriptions/{id}       unsubscribe
//	GET    /ws/matches               WebSocket match stream
//
// Registration failures are structured: syntax errors return 400 with the
// parser's byte offset, oversized patterns 400 with the cap, exhausted
// per-client quotas 429.
type API struct {
	engine *Engine
	mux    *http.ServeMux
}

// NewAPI builds the HTTP handler around an engine.
func NewAPI(e *Engine) *API {
	a := &API{engine: e, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /subscriptions", a.handleRegister)
	a.mux.HandleFunc("GET /subscriptions", a.handleList)
	a.mux.HandleFunc("GET /subscriptions/stats", a.handleStats)
	a.mux.HandleFunc("DELETE /subscriptions/{id}", a.handleUnsubscribe)
	a.mux.HandleFunc("GET /ws/matches", a.handleWS)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// registerRequest is the POST /subscriptions body. TTL, when present, is
// a Go duration string ("30m", "24h"); the subscription expires that long
// after registration.
type registerRequest struct {
	ClientID string `json:"client_id"`
	Pattern  string `json:"pattern"`
	TTL      string `json:"ttl,omitempty"`
}

// apiError is the structured error body.
type apiError struct {
	Error string `json:"error"`
	// Position is the byte offset of a pattern syntax error.
	Position *int `json:"position,omitempty"`
	// Length/Limit describe cap violations (pattern size, client quota).
	Length int `json:"length,omitempty"`
	Limit  int `json:"limit,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (a *API) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Pattern == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing pattern"})
		return
	}
	var ttl time.Duration
	if req.TTL != "" {
		d, err := time.ParseDuration(req.TTL)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad ttl: " + err.Error()})
			return
		}
		if d <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad ttl: must be positive"})
			return
		}
		ttl = d
	}
	sub, err := a.engine.RegisterTTL(req.ClientID, req.Pattern, ttl)
	if err != nil {
		var serr *stixpattern.SyntaxError
		var tooLarge *PatternTooLargeError
		var limit *ClientLimitError
		switch {
		case errors.As(err, &serr):
			pos := serr.Pos
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Position: &pos})
		case errors.As(err, &tooLarge):
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Length: tooLarge.Length, Limit: tooLarge.Limit})
		case errors.As(err, &limit):
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error(), Limit: limit.Limit})
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusCreated, sub)
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	subs := a.engine.List(r.URL.Query().Get("client"))
	if subs == nil {
		subs = []*Subscription{}
	}
	writeJSON(w, http.StatusOK, subs)
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.engine.Stats())
}

func (a *API) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.engine.Unsubscribe(id); err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// wsHello greets each new match-stream watcher.
type wsHello struct {
	Kind       string `json:"kind"` // "hello"
	Registered int    `json:"registered"`
}

func (a *API) handleWS(w http.ResponseWriter, r *http.Request) {
	conn, err := wsock.Accept(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a.engine.AddWatcher(conn)
	// Reader loop: answers pings, detects close, evicts on error.
	go func() {
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				a.engine.RemoveWatcher(conn)
				_ = conn.Close()
				return
			}
		}
	}()
	if data, err := json.Marshal(wsHello{Kind: "hello", Registered: a.engine.Len()}); err == nil {
		_ = conn.WriteText(data)
	}
}
